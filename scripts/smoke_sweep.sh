#!/bin/sh
# Reduced-scale config x scheduler sweep through drsd (DESIGN.md §14):
#
#   1. build drsd + drsctl,
#   2. start the daemon and run every builtin-architecture x scheduler
#      point as a run-job submission (one deduped job-spec family),
#   3. SIGTERM, restart a fresh daemon, and run the identical grid
#      again — a full recompute, since the default store is in-memory,
#   4. byte-compare every point's result body across the two rounds
#      (the determinism contract extended over the arch_config/sched
#      spec fields), and assert the grid's content addresses are
#      pairwise distinct (no two device-model points collapse).
#
# Plain POSIX sh + grep; no jq. Exits nonzero on any violation.
set -eu

ADDR="127.0.0.1:${DRSD_PORT:-8322}"
ARCHS="gtx780 modern-mid modern-big"
SCHEDS="gto lrr wasp"
WORK=$(mktemp -d)
DAEMON_PID=""
trap 'kill "$DAEMON_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

echo "== build"
go build -o "$WORK/drsd" ./cmd/drsd
go build -o "$WORK/drsctl" ./cmd/drsctl

start_daemon() {
    "$WORK/drsd" -addr "$ADDR" -workers 2 -queue 32 -drain 60s \
        >"$WORK/drsd.$1.log" 2>&1 &
    DAEMON_PID=$!
    i=0
    until "$WORK/drsctl" -addr "http://$ADDR" health >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "drsd never became healthy (round $1)" >&2
            cat "$WORK/drsd.$1.log" >&2
            exit 1
        fi
        sleep 0.1
    done
}

stop_daemon() {
    kill -TERM "$DAEMON_PID"
    if ! wait "$DAEMON_PID"; then
        echo "drsd exited nonzero on SIGTERM (round $1)" >&2
        cat "$WORK/drsd.$1.log" >&2
        exit 1
    fi
}

run_grid() {
    round=$1
    for arch in $ARCHS; do
        for sched in $SCHEDS; do
            "$WORK/drsctl" -addr "http://$ADDR" submit -wait \
                -kind run -scene conference -arch drs -bounce 1 \
                -tris 500 -w 48 -h 36 \
                -arch-config "$arch" -sched "$sched" \
                >"$WORK/body.$round.$arch.$sched" 2>"$WORK/err.$round.$arch.$sched" || {
                echo "round $round $arch/$sched failed:" >&2
                cat "$WORK/err.$round.$arch.$sched" >&2
                exit 1
            }
            test -s "$WORK/body.$round.$arch.$sched" || {
                echo "round $round $arch/$sched: empty result body" >&2
                exit 1
            }
        done
    done
}

echo "== round 1: $(echo $ARCHS | wc -w) archs x $(echo $SCHEDS | wc -w) schedulers"
start_daemon 1
run_grid 1
stop_daemon 1

echo "== round 2: fresh daemon, full recompute"
start_daemon 2
run_grid 2
stop_daemon 2

echo "== byte-compare rounds, collect addresses"
: >"$WORK/ids"
for arch in $ARCHS; do
    for sched in $SCHEDS; do
        cmp "$WORK/body.1.$arch.$sched" "$WORK/body.2.$arch.$sched" || {
            echo "$arch/$sched: recompute produced different bytes" >&2
            exit 1
        }
        grep -o '"id":"[0-9a-f]*"' "$WORK/body.1.$arch.$sched" | head -1 >>"$WORK/ids"
    done
done

points=$(wc -l <"$WORK/ids")
unique=$(sort -u "$WORK/ids" | wc -l)
if [ "$points" != "$unique" ]; then
    echo "grid points share content addresses ($unique unique of $points):" >&2
    sort "$WORK/ids" >&2
    exit 1
fi

echo "smoke_sweep: OK ($points grid points, distinct addresses, byte-identical across restart)"
