#!/bin/sh
# End-to-end smoke test of the drsd job service (DESIGN.md §9):
#
#   1. build drsd + drsctl,
#   2. start the daemon and wait for /healthz,
#   3. fire 8 concurrent *identical* Figure-10 submissions through
#      drsctl -wait,
#   4. assert the dedup contract over real HTTP: exactly one workload
#      build, 7 deduped submissions, and byte-identical result bodies
#      for all 8 clients,
#   5. SIGTERM the daemon and assert a clean drain (exit 0).
#
# Plain POSIX sh + grep; no jq. Exits nonzero on any violation.
set -eu

ADDR="127.0.0.1:${DRSD_PORT:-8321}"
CLIENTS=8
WORK=$(mktemp -d)
trap 'kill "$DAEMON_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

echo "== build"
go build -o "$WORK/drsd" ./cmd/drsd
go build -o "$WORK/drsctl" ./cmd/drsctl

echo "== start drsd on $ADDR"
"$WORK/drsd" -addr "$ADDR" -workers 2 -queue 16 -drain 60s \
    >"$WORK/drsd.log" 2>&1 &
DAEMON_PID=$!

i=0
until "$WORK/drsctl" -addr "http://$ADDR" health >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "drsd never became healthy" >&2
        cat "$WORK/drsd.log" >&2
        exit 1
    fi
    sleep 0.1
done

echo "== submit $CLIENTS concurrent identical fig10 jobs"
n=0
while [ "$n" -lt "$CLIENTS" ]; do
    "$WORK/drsctl" -addr "http://$ADDR" submit -wait \
        -kind fig10 -scene conference -tris 500 -w 48 -h 36 \
        -bounces 2 -cmp-bounces 1 \
        >"$WORK/body.$n" 2>"$WORK/err.$n" &
    eval "CLIENT_$n=\$!"
    n=$((n + 1))
done
n=0
while [ "$n" -lt "$CLIENTS" ]; do
    eval "pid=\$CLIENT_$n"
    if ! wait "$pid"; then
        echo "client $n failed:" >&2
        cat "$WORK/err.$n" >&2
        exit 1
    fi
    n=$((n + 1))
done

echo "== assert byte-identical result bodies"
test -s "$WORK/body.0" || { echo "empty result body" >&2; exit 1; }
n=1
while [ "$n" -lt "$CLIENTS" ]; do
    cmp "$WORK/body.0" "$WORK/body.$n" || {
        echo "client $n received different bytes than client 0" >&2
        exit 1
    }
    n=$((n + 1))
done

echo "== assert dedup metrics"
"$WORK/drsctl" -addr "http://$ADDR" metrics >"$WORK/metrics.json"
for want in \
    '"service/workload_builds":1' \
    '"service/jobs_submitted":1' \
    '"service/jobs_deduped":7' \
    '"service/jobs_completed":1' \
    '"service/jobs_failed":0'; do
    grep -q "$want" "$WORK/metrics.json" || {
        echo "metrics missing $want:" >&2
        cat "$WORK/metrics.json" >&2
        exit 1
    }
done

echo "== SIGTERM, assert clean drain"
kill -TERM "$DAEMON_PID"
if ! wait "$DAEMON_PID"; then
    echo "drsd exited nonzero on SIGTERM:" >&2
    cat "$WORK/drsd.log" >&2
    exit 1
fi
grep -q "drained cleanly" "$WORK/drsd.log" || {
    echo "drsd did not report a clean drain:" >&2
    cat "$WORK/drsd.log" >&2
    exit 1
}

echo "smoke_drsd: OK ($CLIENTS clients, 1 build, identical bytes, clean drain)"
