#!/bin/sh
# End-to-end smoke test of the distributed drsd cluster (DESIGN.md §12):
#
#   1. build drsd + drsctl,
#   2. start 3 workers, each with a persistent store and the full peer
#      list, and wait until all are healthy,
#   3. compute the fig10 spec's content address locally (drsctl id) and
#      its owner order (GET /v1/shard/{id}),
#   4. fire 8 concurrent identical read-through submissions, then
#      SIGKILL the job's primary owner mid-grid: every client fails over
#      down the owner order and the surviving owner's singleflight
#      collapses the stampede,
#   5. assert: all 8 clients got byte-identical bodies, the survivors
#      executed the job exactly once between them, and the artifact is
#      now served from a surviving store (drsctl artifact),
#   6. restart the killed worker over its old store dir (index replay +
#      orphan sweep run for real) and resubmit through it — byte-identical,
#   7. SIGTERM everything and assert clean drains.
#
# Plain POSIX sh + grep/sed; curl only for the shard-placement lookup.
# Exits nonzero on any violation.
set -eu

BASE_PORT="${DRSD_CLUSTER_PORT:-8331}"
CLIENTS=8
WORK=$(mktemp -d)
PIDS=""
trap 'for p in $PIDS; do kill -9 "$p" 2>/dev/null || true; done; rm -rf "$WORK"' EXIT

echo "== build"
go build -o "$WORK/drsd" ./cmd/drsd
go build -o "$WORK/drsctl" ./cmd/drsctl

PEERS=""
i=0
while [ "$i" -lt 3 ]; do
    PEERS="${PEERS:+$PEERS,}http://127.0.0.1:$((BASE_PORT + i))"
    i=$((i + 1))
done

start_worker() { # $1 = index
    port=$((BASE_PORT + $1))
    mkdir -p "$WORK/store.$1"
    "$WORK/drsd" -addr "127.0.0.1:$port" -workers 2 -queue 16 -drain 60s \
        -store "$WORK/store.$1" \
        -peers "$PEERS" -self "http://127.0.0.1:$port" \
        >>"$WORK/drsd.$1.log" 2>&1 &
    eval "WPID_$1=\$!"
    PIDS="$PIDS $!"
}

wait_healthy() { # $1 = index
    j=0
    until "$WORK/drsctl" -addr "http://127.0.0.1:$((BASE_PORT + $1))" health >/dev/null 2>&1; do
        j=$((j + 1))
        if [ "$j" -gt 100 ]; then
            echo "worker $1 never became healthy" >&2
            cat "$WORK/drsd.$1.log" >&2
            exit 1
        fi
        sleep 0.1
    done
}

echo "== start 3 workers with stores + shard routing"
i=0
while [ "$i" -lt 3 ]; do
    start_worker "$i"
    i=$((i + 1))
done
i=0
while [ "$i" -lt 3 ]; do
    wait_healthy "$i"
    i=$((i + 1))
done

SPEC_FLAGS="-kind fig10 -scene conference -tris 500 -w 48 -h 36 -bounces 2 -cmp-bounces 1"

echo "== resolve content address and owner"
# shellcheck disable=SC2086
JOB_ID=$("$WORK/drsctl" id $SPEC_FLAGS)
curl -sf "http://127.0.0.1:$BASE_PORT/v1/shard/$JOB_ID" >"$WORK/shard.json"
OWNER_URL=$(sed 's/.*"owners":\["\([^"]*\)".*/\1/' "$WORK/shard.json")
VICTIM=""
i=0
while [ "$i" -lt 3 ]; do
    if [ "http://127.0.0.1:$((BASE_PORT + i))" = "$OWNER_URL" ]; then
        VICTIM="$i"
    fi
    i=$((i + 1))
done
if [ -z "$VICTIM" ]; then
    echo "owner $OWNER_URL is not one of our workers:" >&2
    cat "$WORK/shard.json" >&2
    exit 1
fi
echo "   id: $JOB_ID"
echo "   owner (victim): worker $VICTIM ($OWNER_URL)"

echo "== fire $CLIENTS concurrent identical fig10 submits, SIGKILL the owner mid-grid"
n=0
while [ "$n" -lt "$CLIENTS" ]; do
    # shellcheck disable=SC2086
    "$WORK/drsctl" -peers "$PEERS" submit -wait $SPEC_FLAGS \
        >"$WORK/body.$n" 2>"$WORK/err.$n" &
    eval "CLIENT_$n=\$!"
    n=$((n + 1))
done

# All clients walk the same owner order, so by now they are parked on
# the primary owner's ?wait=1. Kill it -9 while the grid is in flight:
# the clients' transport errors trigger failover to the next owner,
# whose singleflight collapses all of them into one fresh execution.
sleep 0.3
eval "vpid=\$WPID_$VICTIM"
kill -9 "$vpid" 2>/dev/null || true
echo "   killed worker $VICTIM (pid $vpid)"

n=0
while [ "$n" -lt "$CLIENTS" ]; do
    eval "pid=\$CLIENT_$n"
    if ! wait "$pid"; then
        echo "client $n failed:" >&2
        cat "$WORK/err.$n" >&2
        exit 1
    fi
    n=$((n + 1))
done

echo "== assert byte-identical result bodies"
test -s "$WORK/body.0" || { echo "empty result body" >&2; exit 1; }
n=1
while [ "$n" -lt "$CLIENTS" ]; do
    cmp "$WORK/body.0" "$WORK/body.$n" || {
        echo "client $n received different bytes than client 0" >&2
        exit 1
    }
    n=$((n + 1))
done

echo "== assert exactly one execution among the survivors"
STARTED=0
i=0
while [ "$i" -lt 3 ]; do
    [ "$i" = "$VICTIM" ] && { i=$((i + 1)); continue; }
    "$WORK/drsctl" -addr "http://127.0.0.1:$((BASE_PORT + i))" metrics >"$WORK/metrics.$i.json"
    s=$(grep -o '"service/jobs_started":[0-9]*' "$WORK/metrics.$i.json" | grep -o '[0-9]*$' || true)
    STARTED=$((STARTED + ${s:-0}))
    i=$((i + 1))
done
if [ "$STARTED" -ne 1 ]; then
    echo "surviving-cluster jobs_started = $STARTED, want exactly 1" >&2
    cat "$WORK"/metrics.*.json >&2
    exit 1
fi

echo "== assert the artifact is served from a surviving store"
"$WORK/drsctl" -peers "$PEERS" artifact "$JOB_ID" >"$WORK/artifact.body" 2>"$WORK/artifact.err"
cmp "$WORK/body.0" "$WORK/artifact.body" || {
    echo "stored artifact differs from the submitted result" >&2
    exit 1
}
grep -q "artifact source: peer-store" "$WORK/artifact.err" || {
    echo "artifact was not served from a peer store:" >&2
    cat "$WORK/artifact.err" >&2
    exit 1
}

echo "== restart the killed owner over its old store dir"
start_worker "$VICTIM"
wait_healthy "$VICTIM"
# Read-through resubmission: the client finds the committed artifact on
# the surviving owner's store — byte-identical, no recompute anywhere.
# shellcheck disable=SC2086
"$WORK/drsctl" -peers "$PEERS" submit -wait $SPEC_FLAGS \
    >"$WORK/body.restart" 2>/dev/null
cmp "$WORK/body.0" "$WORK/body.restart" || {
    echo "post-restart result differs" >&2
    exit 1
}

echo "== SIGTERM all workers, assert clean drains"
i=0
while [ "$i" -lt 3 ]; do
    eval "kill -TERM \$WPID_$i" 2>/dev/null || true
    i=$((i + 1))
done
i=0
while [ "$i" -lt 3 ]; do
    eval "wait \$WPID_$i" 2>/dev/null || true
    grep -q "drained cleanly" "$WORK/drsd.$i.log" || {
        echo "worker $i did not report a clean drain:" >&2
        cat "$WORK/drsd.$i.log" >&2
        exit 1
    }
    i=$((i + 1))
done

echo "smoke_cluster: OK ($CLIENTS clients, 3 workers, owner SIGKILLed mid-grid, 1 execution, identical bytes)"
