// Ablation benchmarks for the design choices DESIGN.md calls out:
// warp scheduling policy, speculative traversal, Kernel 1's if-body
// burst bounds, and the L1 texture cache size behind the backup-row
// thrashing observation. Each runs one configuration pair and reports
// the two outcomes as custom metrics.
package main

import (
	"testing"

	"repro/internal/bvh"
	"repro/internal/geom"
	"repro/internal/harness"
	"repro/internal/kernels"
	"repro/internal/render"
	"repro/internal/scene"
	"repro/internal/simt"
)

// ablationWorkload builds one incoherent-bounce workload shared by the
// ablation benches.
func ablationWorkload(b *testing.B) (*kernels.SceneData, []geom.Ray) {
	b.Helper()
	s := scene.Generate(scene.ConferenceRoom, 12000)
	bv, err := bvh.Build(s.Tris, bvh.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	cam := render.CameraFor(scene.ConferenceRoom, 192, 144)
	res, err := render.Render(s, bv, cam, render.Config{
		Width: 192, Height: 144, SamplesPerPixel: 1, MaxDepth: 3, CaptureTraces: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	return kernels.NewSceneData(bv), res.Traces.Bounce(3).Rays
}

// BenchmarkAblationScheduler compares greedy-then-oldest (Table 1)
// against round-robin scheduling for the DRS kernel.
func BenchmarkAblationScheduler(b *testing.B) {
	data, rays := ablationWorkload(b)
	for i := 0; i < b.N; i++ {
		for _, pol := range []simt.SchedPolicy{simt.SchedGTO, simt.SchedRR} {
			opt := harness.DefaultOptions()
			opt.Simt.Scheduler = pol
			r, err := harness.Run(harness.ArchDRS, rays, data, opt)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.Mrays, pol.String()+"-Mrays")
		}
	}
}

// BenchmarkAblationSpeculation compares the Aila kernel with and
// without speculative traversal (the optimization Kernel 1 removes).
func BenchmarkAblationSpeculation(b *testing.B) {
	data, rays := ablationWorkload(b)
	for i := 0; i < b.N; i++ {
		for _, spec := range []bool{true, false} {
			opt := harness.DefaultOptions()
			opt.Aila.Speculative = spec
			r, err := harness.Run(harness.ArchAila, rays, data, opt)
			if err != nil {
				b.Fatal(err)
			}
			name := "spec-on"
			if !spec {
				name = "spec-off"
			}
			b.ReportMetric(r.SIMDEff*100, name+"-eff-%")
		}
	}
}

// BenchmarkAblationLeafBurst sweeps Kernel 1's if-body burst bound:
// small bursts raise rdctrl frequency, large bursts raise intra-body
// divergence.
func BenchmarkAblationLeafBurst(b *testing.B) {
	data, rays := ablationWorkload(b)
	for i := 0; i < b.N; i++ {
		for _, burst := range []int{1, 4, 16} {
			opt := harness.DefaultOptions()
			opt.WhileIf = kernels.WhileIfConfig{InnerBurst: burst, LeafBurst: burst}
			r, err := harness.Run(harness.ArchDRS, rays, data, opt)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.SIMDEff*100, metricName("burst", burst, "eff-%"))
		}
	}
}

// BenchmarkAblationTexCache halves and doubles the L1 texture cache to
// expose the working-set sensitivity behind the paper's backup-row
// thrashing note (§4.2).
func BenchmarkAblationTexCache(b *testing.B) {
	data, rays := ablationWorkload(b)
	for i := 0; i < b.N; i++ {
		for _, kb := range []int{12, 48, 96} {
			opt := harness.DefaultOptions()
			opt.Simt.Mem.L1TexKB = kb
			r, err := harness.Run(harness.ArchDRS, rays, data, opt)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.GPU.L1TexMissRate*100, metricName("l1t", kb, "miss-%"))
		}
	}
}

func metricName(prefix string, v int, suffix string) string {
	digits := ""
	if v == 0 {
		digits = "0"
	}
	for v > 0 {
		digits = string(rune('0'+v%10)) + digits
		v /= 10
	}
	return prefix + digits + "-" + suffix
}
