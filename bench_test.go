// Benchmarks regenerating the paper's tables and figures. Each bench
// runs the corresponding experiment at a reduced default scale (use
// cmd/drsbench for full parameter control, -paper for paper scale) and
// reports the headline quantity of that artifact as custom metrics.
// With -v the full text tables are logged.
package main

import (
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/scene"
)

// benchParams keeps the benches at a scale where the whole suite runs
// in a few minutes.
func benchParams() experiments.Params {
	p := experiments.DefaultParams()
	p.Tris = 12000
	p.Width = 192
	p.Height = 144
	p.Bounces = 4
	return p
}

// BenchmarkFigure2 regenerates Figure 2: the per-bounce SIMD efficiency
// of the baseline kernel on the conference room scene. Reported metric:
// the overall efficiency collapse from B1 to B4 in percentage points.
func BenchmarkFigure2(b *testing.B) {
	p := benchParams()
	p.Bounces = 8
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure2(p)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) > 3 {
			b.ReportMetric(rows[0].Eff*100, "B1-eff-%")
			b.ReportMetric(rows[3].Eff*100, "B4-eff-%")
		}
		if i == 0 && b.N == 1 {
			b.Log("\n" + experiments.RenderFigure2(rows))
		}
	}
}

// BenchmarkFigure8 regenerates Figure 8's backup-row sweep (and the
// data behind Figure 9) on the conference room scene. Reported metric:
// DRS 1-row Mrays/s on bounce 2 and Aila's on the same bounce.
func BenchmarkFigure8(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Figure8(p, 2, []scene.Benchmark{scene.ConferenceRoom})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if c.Bounce != 2 {
				continue
			}
			switch c.Config {
			case "1-row (no extra bank)":
				b.ReportMetric(c.Mrays, "drs-Mrays")
			case "aila":
				b.ReportMetric(c.Mrays, "aila-Mrays")
			}
		}
		if i == 0 && b.N == 1 {
			b.Log("\n" + experiments.RenderFigure8(cells, 2))
		}
	}
}

// BenchmarkFigure9 regenerates Figure 9: the rdctrl warp-issue stall
// rate versus backup-row count (conference room). Reported metric: the
// stall rate of the 1-row and 8-row configurations on bounce 2.
func BenchmarkFigure9(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Figure8(p, 2, []scene.Benchmark{scene.ConferenceRoom})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if c.Bounce != 2 {
				continue
			}
			switch c.Config {
			case "1-row":
				b.ReportMetric(c.StallRate*100, "stall-1row-%")
			case "8-row":
				b.ReportMetric(c.StallRate*100, "stall-8row-%")
			}
		}
		if i == 0 && b.N == 1 {
			b.Log("\n" + experiments.RenderFigure9(cells, 2))
		}
	}
}

// BenchmarkTable2 regenerates Table 2: performance under 6/9/12/18
// swap buffers (fairy forest). Reported metric: mean swap cycles at 6
// and 18 buffers — the paper's 31.6 vs 22.0 ordering.
func BenchmarkTable2(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Table2(p, 2, []scene.Benchmark{scene.FairyForest})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if c.Bounce != 2 {
				continue
			}
			switch c.Buffers {
			case 6:
				b.ReportMetric(c.MeanSwapCycles, "swap6-cyc")
			case 18:
				b.ReportMetric(c.MeanSwapCycles, "swap18-cyc")
			}
		}
		if i == 0 && b.N == 1 {
			b.Log("\n" + experiments.RenderTable2(cells, 2))
		}
	}
}

// BenchmarkFigure10 regenerates Figure 10: SIMD efficiency with
// utilization breakdown for Aila/DMK/TBC/DRS (conference room).
// Reported metric: overall efficiencies.
func BenchmarkFigure10(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Figure10(p, 3, []scene.Benchmark{scene.ConferenceRoom})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if c.Bounce != 0 {
				continue
			}
			b.ReportMetric(c.Eff*100, c.Arch.String()+"-eff-%")
		}
		if i == 0 && b.N == 1 {
			b.Log("\n" + experiments.RenderFigure10(cells, 3))
		}
	}
}

// BenchmarkFigure11 regenerates Figure 11: performance and speedups of
// DMK, TBC and DRS over Aila (conference room). Reported metric: the
// DRS overall speedup factor.
func BenchmarkFigure11(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Figure10(p, 3, []scene.Benchmark{scene.ConferenceRoom})
		if err != nil {
			b.Fatal(err)
		}
		var aila, drs float64
		for _, c := range cells {
			if c.Bounce != 0 {
				continue
			}
			switch c.Arch {
			case harness.ArchAila:
				aila = c.Mrays
			case harness.ArchDRS:
				drs = c.Mrays
			}
		}
		if aila > 0 {
			b.ReportMetric(drs/aila, "drs-speedup-x")
		}
		if i == 0 && b.N == 1 {
			b.Log("\n" + experiments.RenderFigure11(cells, 3))
		}
	}
}

// benchFigure10Par measures the Figure 10 grid at a fixed scheduler
// worker count: the cellsched wall-clock comparison recorded in
// BENCH_cellsched.json. The workload is cached once outside the timed
// loop so the benchmark isolates simulation scheduling, not scene
// builds.
func benchFigure10Par(b *testing.B, par int) {
	p := benchParams()
	p.Bounces = 2
	p.Options.Parallelism = par
	p.Cache = experiments.NewWorkloadCache()
	if _, err := p.Cache.Get(scene.ConferenceRoom, p); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Figure10(p, 2, []scene.Benchmark{scene.ConferenceRoom})
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) == 0 {
			b.Fatal("no cells")
		}
	}
}

func BenchmarkFigure10Par1(b *testing.B) { benchFigure10Par(b, 1) }
func BenchmarkFigure10Par2(b *testing.B) { benchFigure10Par(b, 2) }
func BenchmarkFigure10Par4(b *testing.B) { benchFigure10Par(b, 4) }

// BenchmarkOverheadModel regenerates the §4.5 hardware overhead
// arithmetic. Reported metric: DRS storage bytes per SMX.
func BenchmarkOverheadModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		txt := experiments.Overhead(core.DefaultConfig())
		if len(txt) == 0 {
			b.Fatal("empty overhead report")
		}
		if i == 0 && b.N == 1 {
			b.Log("\n" + txt)
		}
	}
}
