// Differential pin of the simulator core against pre-SoA-refactor
// golden output: the reduced-scale Figure 10 and Table 2 tables must
// regenerate byte for byte at every scheduler parallelism, on the SoA
// engine exactly as on the per-warp-object engine that produced the
// goldens. Any diff is a semantic change to the simulated device — the
// epoch-barrier engine leaves no room for noise.
//
// Regenerate consciously with:
//
//	go test -run TestSimtCoreGolden -update-simtcore .
package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
	"repro/internal/scene"
)

var updateSimtcore = flag.Bool("update-simtcore", false,
	"rewrite testdata/simtcore_golden_*.txt from the current simulator")

// simtcoreParams is the fixed reduced-scale workload the goldens pin.
// Small enough for tier-1 (a few seconds per run), large enough that
// all four architectures shuffle, compact and respawn for thousands of
// cycles per SMX.
func simtcoreParams(par int) experiments.Params {
	p := experiments.DefaultParams()
	p.Tris = 1500
	p.Width = 80
	p.Height = 60
	p.Bounces = 2
	p.Options.Parallelism = par
	return p
}

func simtcoreTables(t *testing.T, par int, cache *experiments.WorkloadCache) (fig10, table2 string) {
	t.Helper()
	p := simtcoreParams(par)
	p.Cache = cache
	cells10, err := experiments.Figure10(p, 2, []scene.Benchmark{scene.ConferenceRoom})
	if err != nil {
		t.Fatal(err)
	}
	cellsT2, err := experiments.Table2(p, 2, []scene.Benchmark{scene.FairyForest})
	if err != nil {
		t.Fatal(err)
	}
	return experiments.RenderFigure10(cells10, 2), experiments.RenderTable2(cellsT2, 2)
}

// TestSimtCoreCheckDeterminism runs the reduced-scale Figure 10 with
// the harness's run-twice assertion enabled at every scheduler
// parallelism: each device simulation executes twice and any snapshot
// divergence (stats, hits, cycles) fails inside the harness. This is
// the dynamic complement to the byte-compared goldens — it would catch
// a nondeterminism the fixed golden workload happens not to excite.
func TestSimtCoreCheckDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("reduced-scale device simulation; skipped with -short")
	}
	cache := experiments.NewWorkloadCache()
	for _, par := range []int{1, 2, 4} {
		p := simtcoreParams(par)
		p.Cache = cache
		p.Options.CheckDeterminism = true
		if _, err := experiments.Figure10(p, 2, []scene.Benchmark{scene.ConferenceRoom}); err != nil {
			t.Fatalf("par %d: determinism check failed: %v", par, err)
		}
	}
}

func TestSimtCoreGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("reduced-scale device simulation; skipped with -short")
	}
	goldens := map[string]string{}
	cache := experiments.NewWorkloadCache()
	for _, par := range []int{1, 2, 4} {
		fig10, table2 := simtcoreTables(t, par, cache)
		if prev, ok := goldens["fig10"]; ok && prev != fig10 {
			t.Fatalf("fig10 output differs between -par values (par=%d)", par)
		}
		if prev, ok := goldens["table2"]; ok && prev != table2 {
			t.Fatalf("table2 output differs between -par values (par=%d)", par)
		}
		goldens["fig10"], goldens["table2"] = fig10, table2
	}

	for name, got := range goldens {
		path := filepath.Join("testdata", "simtcore_golden_"+name+".txt")
		if *updateSimtcore {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("rewrote %s (%d bytes)", path, len(got))
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read golden: %v (regenerate with -update-simtcore)", err)
		}
		if got != string(want) {
			t.Errorf("%s diverged from pre-refactor golden %s;\ngot:\n%s\nwant:\n%s",
				name, path, got, want)
		}
	}
}
