// Command drsd is the deterministic simulation job daemon: an
// HTTP/JSON front end over internal/service. It accepts simulation and
// experiment specs, content-addresses them so identical concurrent
// submissions share one execution, runs them on a bounded worker pool
// with a process-wide workload cache, and streams epoch-barrier
// progress over SSE.
//
// Shutdown is graceful: SIGINT/SIGTERM stops admission (submissions
// get 503), in-flight and queued jobs drain up to -drain, and the
// process exits 0 on a clean drain, 1 if jobs had to be canceled.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8321", "listen address")
		workers    = flag.Int("workers", 2, "job worker pool size (each job fans out on the cell scheduler per its spec)")
		queue      = flag.Int("queue", 16, "admission queue depth; submissions beyond it are rejected with 429")
		jobTimeout = flag.Duration("job-timeout", 10*time.Minute, "default per-job execution deadline (specs may set their own)")
		drain      = flag.Duration("drain", 30*time.Second, "graceful shutdown deadline: how long to let admitted jobs finish before canceling them")
		retries    = flag.Int("retries", 3, "max execution attempts per job (only transient failures retry)")
		epochEvery = flag.Int64("epoch-events", 16, "emit one SSE progress event per N epoch barriers on observed runs")
	)
	flag.Parse()

	svc := service.New(service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		DefaultTimeout:  *jobTimeout,
		MaxAttempts:     *retries,
		EpochEventEvery: *epochEvery,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("drsd: listen: %v", err)
	}
	srv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- srv.Serve(ln)
	}()
	log.Printf("drsd: listening on %s (%d workers, queue %d)", ln.Addr(), *workers, *queue)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		log.Fatalf("drsd: serve: %v", err)
	case got := <-sig:
		log.Printf("drsd: %v: draining (deadline %s)", got, *drain)
	}

	// Stop admitting and let everything already accepted finish, then
	// shut the HTTP server down — in that order, so clients blocked on
	// ?wait=1 receive their results before their connections close.
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drain)
	defer cancelDrain()
	drainErr := svc.Drain(drainCtx)

	shutCtx, cancelShut := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShut()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("drsd: http shutdown: %v", err)
	}
	if drainErr != nil {
		log.Printf("drsd: %v", drainErr)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "drsd: drained cleanly")
}
