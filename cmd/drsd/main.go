// Command drsd is the deterministic simulation job daemon: an
// HTTP/JSON front end over internal/service. It accepts simulation and
// experiment specs, content-addresses them so identical concurrent
// submissions share one execution, runs them on a bounded worker pool
// with a process-wide workload cache, and streams epoch-barrier
// progress over SSE.
//
// With -store DIR results also land in a persistent content-addressed
// artifact store: restarts serve previously computed specs without
// re-executing, every read is digest-verified (corruption falls back
// to recomputation), and -store-max-bytes / -store-max-age bound it
// with oldest-first eviction.
//
// With -peers (a comma-separated list of every worker's base URL,
// including this one's, named again by -self) the daemon serves as one
// shard of a cluster: submissions for content addresses another worker
// owns under rendezvous hashing are forwarded to that owner, so
// identical specs converge on one process — and one execution —
// cluster-wide. GET /v1/artifacts/{id} exposes the store to peers and
// GET /v1/shard/{id} reports an id's owner order.
//
// Shutdown is graceful: SIGINT/SIGTERM stops admission (submissions
// get 503), in-flight and queued jobs drain up to -drain, and the
// process exits 0 on a clean drain, 1 if jobs had to be canceled.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/artifact"
	"repro/internal/service"
	"repro/internal/shard"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8321", "listen address")
		workers    = flag.Int("workers", 2, "job worker pool size (each job fans out on the cell scheduler per its spec)")
		queue      = flag.Int("queue", 16, "admission queue depth; submissions beyond it are rejected with 429")
		jobTimeout = flag.Duration("job-timeout", 10*time.Minute, "default per-job execution deadline (specs may set their own)")
		drain      = flag.Duration("drain", 30*time.Second, "graceful shutdown deadline: how long to let admitted jobs finish before canceling them")
		retries    = flag.Int("retries", 3, "max execution attempts per job (only transient failures retry)")
		epochEvery = flag.Int64("epoch-events", 16, "emit one SSE progress event per N epoch barriers on observed runs")

		storeDir  = flag.String("store", "", "persistent artifact store directory (empty = results live in memory only)")
		storeMax  = flag.Int64("store-max-bytes", 0, "store size cap in bytes; oldest artifacts evict first (0 = unbounded)")
		storeAge  = flag.Duration("store-max-age", 0, "store age cap; older artifacts evict (0 = unbounded)")
		peersFlag = flag.String("peers", "", "comma-separated base URLs of every cluster worker (including this one); enables shard routing")
		selfFlag  = flag.String("self", "", "this worker's base URL within -peers (required with -peers)")
	)
	flag.Parse()

	cfg := service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		DefaultTimeout:  *jobTimeout,
		MaxAttempts:     *retries,
		EpochEventEvery: *epochEvery,
	}
	var store *artifact.Store
	if *storeDir != "" {
		var err error
		store, err = artifact.Open(artifact.Config{
			Dir:      *storeDir,
			MaxBytes: *storeMax,
			MaxAge:   *storeAge,
		})
		if err != nil {
			log.Fatalf("drsd: opening artifact store: %v", err)
		}
		defer store.Close()
		cfg.Store = store
		log.Printf("drsd: artifact store %s (%d artifacts, %d bytes)", *storeDir, store.Len(), store.Bytes())
	}
	svc := service.New(cfg)

	handler := http.Handler(svc.Handler())
	if *peersFlag != "" {
		var peers []string
		for _, p := range strings.Split(*peersFlag, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
		router, err := shard.NewRouter(peers)
		if err != nil {
			log.Fatalf("drsd: -peers: %v", err)
		}
		if *selfFlag == "" {
			log.Fatal("drsd: -peers requires -self (this worker's base URL within the peer set)")
		}
		proxy, err := shard.Wrap(handler, router, *selfFlag, nil)
		if err != nil {
			log.Fatalf("drsd: shard routing: %v", err)
		}
		handler = proxy
		log.Printf("drsd: shard %s of %d-worker cluster", *selfFlag, len(peers))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("drsd: listen: %v", err)
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- srv.Serve(ln)
	}()
	log.Printf("drsd: listening on %s (%d workers, queue %d)", ln.Addr(), *workers, *queue)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		log.Fatalf("drsd: serve: %v", err)
	case got := <-sig:
		log.Printf("drsd: %v: draining (deadline %s)", got, *drain)
	}

	// Stop admitting and let everything already accepted finish, then
	// shut the HTTP server down — in that order, so clients blocked on
	// ?wait=1 receive their results before their connections close.
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drain)
	defer cancelDrain()
	drainErr := svc.Drain(drainCtx)

	shutCtx, cancelShut := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShut()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("drsd: http shutdown: %v", err)
	}
	if drainErr != nil {
		log.Printf("drsd: %v", drainErr)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "drsd: drained cleanly")
}
