package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseBench(t *testing.T) {
	out := map[string][]metrics{}
	p := writeTemp(t, "bench.txt", `goos: linux
BenchmarkFigure10Par1 	       1	3141978836 ns/op	312056856 B/op	 1527550 allocs/op
BenchmarkFigure10Par1-4 	       1	3034775805 ns/op	312040680 B/op	 1527495 allocs/op
BenchmarkDivergeSplit 	    1444	    775294 ns/op	       0 B/op	       0 allocs/op
PASS
`)
	f, err := os.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	parseBench(f, out)
	if got := len(out["Figure10Par1"]); got != 2 {
		t.Fatalf("Figure10Par1 samples = %d, want 2 (the -4 suffix must fold in)", got)
	}
	if out["Figure10Par1"][0].AllocsOp != 1527550 {
		t.Errorf("allocs/op = %v", out["Figure10Par1"][0].AllocsOp)
	}
	if out["DivergeSplit"][0].NsOp != 775294 {
		t.Errorf("ns/op = %v", out["DivergeSplit"][0].NsOp)
	}
}

func TestMedian(t *testing.T) {
	m := median([]metrics{
		{NsOp: 3, AllocsOp: 30},
		{NsOp: 1, AllocsOp: 10},
		{NsOp: 2, AllocsOp: 20},
	})
	if m.NsOp != 2 || m.AllocsOp != 20 {
		t.Errorf("median = %+v", m)
	}
	m = median([]metrics{{NsOp: 1}, {NsOp: 3}})
	if m.NsOp != 2 {
		t.Errorf("even-count median = %v", m.NsOp)
	}
}

func TestRatioDelta(t *testing.T) {
	if d := ratioDelta(110, 100); d != 0.1 {
		t.Errorf("delta = %v", d)
	}
	if d := ratioDelta(0, 0); d != 0 {
		t.Errorf("zero/zero = %v", d)
	}
	if d := ratioDelta(5, 0); d != 1 {
		t.Errorf("nonzero over zero baseline = %v (must read as regressed)", d)
	}
}
