// Command perfcheck compares `go test -bench -benchmem` output against
// the committed baseline in BENCH_simtcore.json and enforces the CI
// perf budget: an allocation-count regression beyond the tolerance
// fails (allocs/op is deterministic for these benchmarks, so the gate
// is noise-free); wall-clock deltas are printed but advisory-only,
// because shared runners jitter. It is a stdlib-only stand-in for
// benchstat, which this module deliberately does not depend on.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkFigure10Par1 -benchmem -count 3 . | tee out.txt
//	go run ./cmd/perfcheck -baseline BENCH_simtcore.json out.txt [more.txt...]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// metrics is one benchmark's recorded (or measured) per-op numbers.
type metrics struct {
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
}

// baseline mirrors the comparator-relevant part of BENCH_simtcore.json:
// "after" holds the committed post-SoA medians that CI measures against.
type baseline struct {
	After map[string]metrics `json:"after"`
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_simtcore.json", "committed baseline JSON (its \"after\" block is the reference)")
	maxAllocRegress := flag.Float64("max-alloc-regress", 0.10, "fail when allocs/op exceeds baseline by more than this fraction")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "perfcheck: no benchmark output files given")
		os.Exit(2)
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfcheck:", err)
		os.Exit(2)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "perfcheck: %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}
	if len(base.After) == 0 {
		fmt.Fprintf(os.Stderr, "perfcheck: %s has no \"after\" block\n", *baselinePath)
		os.Exit(2)
	}

	samples := map[string][]metrics{}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfcheck:", err)
			os.Exit(2)
		}
		parseBench(f, samples)
		f.Close()
	}
	if len(samples) == 0 {
		fmt.Fprintln(os.Stderr, "perfcheck: no Benchmark lines found in input")
		os.Exit(2)
	}

	failed := false
	names := make([]string, 0, len(samples))
	for n := range samples { //drslint:allow map-range -- keys collected then sorted; output order comes from sort.Strings
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		got := median(samples[name])
		want, ok := base.After[name]
		if !ok {
			fmt.Printf("%-16s no baseline entry; skipped\n", name)
			continue
		}
		wallDelta := ratioDelta(got.NsOp, want.NsOp)
		fmt.Printf("%-16s wall %s vs %s (%+.1f%%, advisory)\n",
			name, fmtNs(got.NsOp), fmtNs(want.NsOp), 100*wallDelta)
		allocDelta := ratioDelta(got.AllocsOp, want.AllocsOp)
		fmt.Printf("%-16s allocs/op %.0f vs %.0f (%+.1f%%, budget %+.0f%%)\n",
			"", got.AllocsOp, want.AllocsOp, 100*allocDelta, 100**maxAllocRegress)
		if allocDelta > *maxAllocRegress {
			fmt.Printf("%-16s FAIL: allocation regression exceeds budget\n", "")
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("perfcheck: within budget")
}

// parseBench extracts per-op metrics from `go test -bench` output lines
// ("BenchmarkFoo-8  3  123 ns/op  45 B/op  6 allocs/op"); the -N
// GOMAXPROCS suffix is stripped so names match the baseline keys.
func parseBench(f *os.File, out map[string][]metrics) {
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var m metrics
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsOp, seen = v, true
			case "B/op":
				m.BOp, seen = v, true
			case "allocs/op":
				m.AllocsOp, seen = v, true
			}
		}
		if seen {
			out[name] = append(out[name], m)
		}
	}
}

// median reduces repeated -count runs field-wise, so one outlier run
// cannot fail (or pass) the gate.
func median(ms []metrics) metrics {
	pick := func(get func(metrics) float64) float64 {
		vs := make([]float64, len(ms))
		for i, m := range ms {
			vs[i] = get(m)
		}
		sort.Float64s(vs)
		n := len(vs)
		if n%2 == 1 {
			return vs[n/2]
		}
		return (vs[n/2-1] + vs[n/2]) / 2
	}
	return metrics{
		NsOp:     pick(func(m metrics) float64 { return m.NsOp }),
		BOp:      pick(func(m metrics) float64 { return m.BOp }),
		AllocsOp: pick(func(m metrics) float64 { return m.AllocsOp }),
	}
}

// ratioDelta returns (got-want)/want, treating a zero baseline as
// regressed only when got is nonzero.
func ratioDelta(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return 1
	}
	return (got - want) / want
}

func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	}
	return fmt.Sprintf("%.0fns", ns)
}
