// Command drsctl is the client for the drsd job daemon.
//
//	drsctl [-addr URL] submit [flags]   submit a job (see submit -help)
//	drsctl [-addr URL] status <id>      job status
//	drsctl [-addr URL] result <id>      result artifact
//	drsctl [-addr URL] watch <id>       stream SSE progress events
//	drsctl [-addr URL] jobs             list jobs in admission order
//	drsctl [-addr URL] metrics          canonical metrics snapshot
//	drsctl [-addr URL] health           daemon liveness / drain state
//
// Exit codes: 0 success, 1 remote or transport error, 2 usage.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"repro/internal/service"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: drsctl [-addr URL] submit|status|result|watch|jobs|metrics|health [args]")
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8321", "drsd base URL")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	c := client{base: *addr}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "submit":
		c.submit(rest)
	case "status":
		c.show(rest, "status", "/v1/jobs/%s")
	case "result":
		c.show(rest, "result", "/v1/jobs/%s/result")
	case "watch":
		c.watch(rest)
	case "jobs":
		c.get("/v1/jobs")
	case "metrics":
		c.get("/metrics")
	case "health":
		c.get("/healthz")
	default:
		usage()
		os.Exit(2)
	}
}

type client struct{ base string }

func fail(err error) {
	fmt.Fprintln(os.Stderr, "drsctl:", err)
	os.Exit(1)
}

// emit prints a response body and exits 1 on a non-2xx status after
// printing it (error bodies are JSON and worth seeing).
func emit(body []byte, code int) {
	os.Stdout.Write(body)
	if len(body) > 0 && body[len(body)-1] != '\n' {
		fmt.Println()
	}
	if code < 200 || code >= 300 {
		fmt.Fprintf(os.Stderr, "drsctl: HTTP %d\n", code)
		os.Exit(1)
	}
}

func (c client) get(path string) {
	resp, err := http.Get(c.base + path)
	if err != nil {
		fail(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fail(err)
	}
	emit(body, resp.StatusCode)
}

// show handles the one-ID subcommands (status, result).
func (c client) show(args []string, name, pattern string) {
	if len(args) != 1 {
		fmt.Fprintf(os.Stderr, "usage: drsctl %s <job-id>\n", name)
		os.Exit(2)
	}
	c.get(fmt.Sprintf(pattern, args[0]))
}

func (c client) submit(args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var (
		wait     = fs.Bool("wait", false, "block until the job finishes and print the result artifact")
		specFile = fs.String("spec", "", "read the job spec JSON from this file (- = stdin) instead of building it from flags")

		kind    = fs.String("kind", service.KindRun, "job kind: run|fig10|table2")
		scen    = fs.String("scene", "conference", "benchmark scene (empty on grid jobs = all four)")
		arch    = fs.String("arch", "drs", "architecture for run jobs: aila|drs|dmk|tbc")
		policy  = fs.String("policy", "", "reordering policy for run jobs (any registered name; overrides -arch)")
		bounce  = fs.Int("bounce", 1, "trace bounce for run jobs")
		tris    = fs.Int("tris", 0, "triangle budget (0 = service default)")
		width   = fs.Int("w", 0, "trace render width (0 = service default)")
		height  = fs.Int("h", 0, "trace render height (0 = service default)")
		spp     = fs.Int("spp", 0, "samples per pixel (0 = service default)")
		rays    = fs.Int("rays", 0, "cap rays per bounce (0 = no cap)")
		bounces = fs.Int("bounces", 0, "bounces to simulate on grid jobs (0 = service default)")
		sweepB  = fs.Int("sweep-bounces", 0, "per-bounce rows for table2 (0 = service default)")
		cmpB    = fs.Int("cmp-bounces", 0, "per-bounce rows for fig10 (0 = service default)")
		par     = fs.Int("par", 0, "cell scheduler workers inside the job (0 = GOMAXPROCS)")
		observe = fs.Bool("observe", false, "attach the metrics registry and epoch progress stream (run jobs)")
		timeout = fs.Int64("timeout-ms", 0, "per-job execution deadline in ms (0 = server default)")
	)
	fs.Parse(args)

	var payload []byte
	switch {
	case *specFile == "-":
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fail(err)
		}
		payload = data
	case *specFile != "":
		data, err := os.ReadFile(*specFile)
		if err != nil {
			fail(err)
		}
		payload = data
	default:
		spec := service.JobSpec{
			Kind:             *kind,
			Scene:            *scen,
			Arch:             *arch,
			Policy:           *policy,
			Bounce:           *bounce,
			Tris:             *tris,
			Width:            *width,
			Height:           *height,
			SPP:              *spp,
			MaxRaysPerBounce: *rays,
			Bounces:          *bounces,
			SweepBounces:     *sweepB,
			CmpBounces:       *cmpB,
			Parallelism:      *par,
			Observe:          *observe,
			TimeoutMS:        *timeout,
		}
		archSet, sceneSet := false, false
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "arch":
				archSet = true
			case "scene":
				sceneSet = true
			}
		})
		if *policy != "" && !archSet {
			// -policy names the reordering strategy directly; only an
			// explicit -arch should conflict with it, not the default.
			spec.Arch = ""
		}
		if *kind != service.KindRun {
			// Grid jobs reject run-only fields; drop the run defaults
			// (and the scene default, unless -scene was given
			// explicitly — an empty scene means all four benchmarks).
			spec.Arch = ""
			spec.Policy = ""
			spec.Bounce = 0
			if !sceneSet {
				spec.Scene = ""
			}
		}
		data, err := json.Marshal(spec)
		if err != nil {
			fail(err)
		}
		payload = data
	}

	url := c.base + "/v1/jobs"
	if *wait {
		url += "?wait=1"
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		fail(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fail(err)
	}
	emit(body, resp.StatusCode)
}

// watch streams a job's SSE events to stdout until the stream ends.
func (c client) watch(args []string) {
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: drsctl watch <job-id>")
		os.Exit(2)
	}
	resp, err := http.Get(c.base + "/v1/jobs/" + args[0] + "/events")
	if err != nil {
		fail(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		emit(body, resp.StatusCode)
		return
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line != "" {
			fmt.Println(line)
		}
	}
	if err := sc.Err(); err != nil {
		fail(err)
	}
}
