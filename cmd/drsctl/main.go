// Command drsctl is the client for the drsd job daemon.
//
//	drsctl [-addr URL] submit [flags]   submit a job (see submit -help)
//	drsctl id [flags]                   print a spec's content address (no daemon)
//	drsctl [-addr URL] status <id>      job status
//	drsctl [-addr URL] result <id>      result artifact
//	drsctl [-addr URL] artifact <id>    persistent-store artifact
//	drsctl [-addr URL] watch <id>       stream SSE progress events
//	drsctl [-addr URL] jobs             list jobs in admission order
//	drsctl [-addr URL] metrics          canonical metrics snapshot
//	drsctl [-addr URL] health           daemon liveness / drain state
//
// With -peers (comma-separated worker base URLs) submit and artifact
// resolve through the shard layer in cost order: the local -store
// cache, then the content address's owning workers' stores, and only
// then an actual submission — walking the rendezvous failover order
// past dead workers. -store names a client-side cache directory; it
// must not be a running daemon's store.
//
// Exit codes: 0 success, 1 remote or transport error, 2 usage,
// 3 job unknown (HTTP 404), 4 artifact evicted from the persistent
// store (HTTP 410; resubmit the spec to recompute identical bytes).
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"repro/internal/artifact"
	"repro/internal/service"
	"repro/internal/shard"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: drsctl [-addr URL] [-peers URLS] [-store DIR] submit|id|status|result|artifact|watch|jobs|metrics|health [args]")
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8321", "drsd base URL")
	peers := flag.String("peers", "", "comma-separated base URLs of every cluster worker; submit/artifact resolve through the shard layer")
	storeDir := flag.String("store", "", "client-side artifact cache directory (not a daemon's store)")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(exitUsage)
	}
	c := client{base: *addr, peers: *peers, storeDir: *storeDir}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "submit":
		c.submit(rest)
	case "id":
		printID(rest)
	case "status":
		c.show(rest, "status", "/v1/jobs/%s")
	case "result":
		c.show(rest, "result", "/v1/jobs/%s/result")
	case "artifact":
		c.artifact(rest)
	case "watch":
		c.watch(rest)
	case "jobs":
		c.get("/v1/jobs")
	case "metrics":
		c.get("/metrics")
	case "health":
		c.get("/healthz")
	default:
		usage()
		os.Exit(exitUsage)
	}
}

type client struct {
	base     string
	peers    string
	storeDir string
}

// sharded builds the read-through shard client when -peers was given.
func (c client) sharded() *shard.Client {
	if c.peers == "" {
		return nil
	}
	var workers []string
	for _, p := range strings.Split(c.peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			workers = append(workers, p)
		}
	}
	router, err := shard.NewRouter(workers)
	if err != nil {
		fail(fmt.Errorf("-peers: %w", err))
	}
	sc := &shard.Client{Router: router}
	if c.storeDir != "" {
		store, err := artifact.Open(artifact.Config{Dir: c.storeDir})
		if err != nil {
			fail(fmt.Errorf("-store: %w", err))
		}
		// The process exits right after the command; the store's
		// append-only index tolerates that without a Close.
		sc.Local = store
	}
	return sc
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "drsctl:", err)
	os.Exit(exitRemote)
}

// emit prints a response body and exits with the contract code for the
// status (error bodies are JSON and worth seeing, so they print first).
func emit(body []byte, code int) {
	os.Stdout.Write(body)
	if len(body) > 0 && body[len(body)-1] != '\n' {
		fmt.Println()
	}
	if ec := exitCodeFor(code); ec != exitOK {
		fmt.Fprintf(os.Stderr, "drsctl: HTTP %d\n", code)
		os.Exit(ec)
	}
}

func (c client) get(path string) {
	resp, err := http.Get(c.base + path)
	if err != nil {
		fail(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fail(err)
	}
	emit(body, resp.StatusCode)
}

// show handles the one-ID subcommands (status, result).
func (c client) show(args []string, name, pattern string) {
	if len(args) != 1 {
		fmt.Fprintf(os.Stderr, "usage: drsctl %s <job-id>\n", name)
		os.Exit(exitUsage)
	}
	c.get(fmt.Sprintf(pattern, args[0]))
}

// artifact fetches a stored artifact: through the shard layer with
// -peers (local cache, then owners in failover order), else from the
// -addr daemon's store endpoint.
func (c client) artifact(args []string) {
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: drsctl artifact <job-id>")
		os.Exit(exitUsage)
	}
	sc := c.sharded()
	if sc == nil {
		c.get("/v1/artifacts/" + args[0])
		return
	}
	res, ok, err := sc.FetchArtifact(context.Background(), args[0])
	if err != nil {
		fail(err)
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "drsctl: artifact not stored on any owner")
		os.Exit(exitUnknown)
	}
	fmt.Fprintf(os.Stderr, "drsctl: artifact source: %s\n", sourceLabel(res))
	emit(res.Body, res.Status)
}

func sourceLabel(res *shard.Result) string {
	if res.Worker != "" {
		return res.Source + " " + res.Worker
	}
	return res.Source
}

// specFlags registers the job-spec flags shared by submit and id.
type specFlags struct {
	fs       *flag.FlagSet
	specFile *string

	kind, scen, arch, policy               *string
	archCfg, sched                         *string
	bounce, tris, width, height, spp, rays *int
	bounces, sweepB, cmpB, par             *int
	observe                                *bool
	timeout                                *int64
}

func newSpecFlags(fs *flag.FlagSet) *specFlags {
	return &specFlags{
		fs:       fs,
		specFile: fs.String("spec", "", "read the job spec JSON from this file (- = stdin) instead of building it from flags"),
		kind:     fs.String("kind", service.KindRun, "job kind: run|fig10|table2"),
		scen:     fs.String("scene", "conference", "benchmark scene (empty on grid jobs = all four)"),
		arch:     fs.String("arch", "drs", "architecture for run jobs: aila|drs|dmk|tbc"),
		policy:   fs.String("policy", "", "reordering policy for run jobs (any registered name; overrides -arch)"),
		archCfg:  fs.String("arch-config", "", "builtin device model for the job (see drsbench -list-archs; empty = gtx780)"),
		sched:    fs.String("sched", "", "warp-scheduler policy for the job (see drsbench -list-scheds; empty = gto)"),
		bounce:   fs.Int("bounce", 1, "trace bounce for run jobs"),
		tris:     fs.Int("tris", 0, "triangle budget (0 = service default)"),
		width:    fs.Int("w", 0, "trace render width (0 = service default)"),
		height:   fs.Int("h", 0, "trace render height (0 = service default)"),
		spp:      fs.Int("spp", 0, "samples per pixel (0 = service default)"),
		rays:     fs.Int("rays", 0, "cap rays per bounce (0 = no cap)"),
		bounces:  fs.Int("bounces", 0, "bounces to simulate on grid jobs (0 = service default)"),
		sweepB:   fs.Int("sweep-bounces", 0, "per-bounce rows for table2 (0 = service default)"),
		cmpB:     fs.Int("cmp-bounces", 0, "per-bounce rows for fig10 (0 = service default)"),
		par:      fs.Int("par", 0, "cell scheduler workers inside the job (0 = GOMAXPROCS)"),
		observe:  fs.Bool("observe", false, "attach the metrics registry and epoch progress stream (run jobs)"),
		timeout:  fs.Int64("timeout-ms", 0, "per-job execution deadline in ms (0 = server default)"),
	}
}

// payload materializes the spec JSON: the -spec file/stdin verbatim,
// or the flag-built spec.
func (sf *specFlags) payload() []byte {
	switch {
	case *sf.specFile == "-":
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fail(err)
		}
		return data
	case *sf.specFile != "":
		data, err := os.ReadFile(*sf.specFile)
		if err != nil {
			fail(err)
		}
		return data
	}
	spec := service.JobSpec{
		Kind:             *sf.kind,
		Scene:            *sf.scen,
		Arch:             *sf.arch,
		Policy:           *sf.policy,
		ArchConfig:       *sf.archCfg,
		Sched:            *sf.sched,
		Bounce:           *sf.bounce,
		Tris:             *sf.tris,
		Width:            *sf.width,
		Height:           *sf.height,
		SPP:              *sf.spp,
		MaxRaysPerBounce: *sf.rays,
		Bounces:          *sf.bounces,
		SweepBounces:     *sf.sweepB,
		CmpBounces:       *sf.cmpB,
		Parallelism:      *sf.par,
		Observe:          *sf.observe,
		TimeoutMS:        *sf.timeout,
	}
	archSet, sceneSet := false, false
	sf.fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "arch":
			archSet = true
		case "scene":
			sceneSet = true
		}
	})
	if *sf.policy != "" && !archSet {
		// -policy names the reordering strategy directly; only an
		// explicit -arch should conflict with it, not the default.
		spec.Arch = ""
	}
	if *sf.kind != service.KindRun {
		// Grid jobs reject run-only fields; drop the run defaults
		// (and the scene default, unless -scene was given
		// explicitly — an empty scene means all four benchmarks).
		spec.Arch = ""
		spec.Policy = ""
		spec.Bounce = 0
		if !sceneSet {
			spec.Scene = ""
		}
	}
	data, err := json.Marshal(spec)
	if err != nil {
		fail(err)
	}
	return data
}

// printID computes a spec's content address locally — the same
// normalization and canonical encoding the daemon applies — so scripts
// can find an id's owners (GET /v1/shard/{id}) before submitting.
func printID(args []string) {
	fs := flag.NewFlagSet("id", flag.ExitOnError)
	sf := newSpecFlags(fs)
	fs.Parse(args)
	spec, err := service.DecodeSpec(sf.payload())
	if err != nil {
		fmt.Fprintln(os.Stderr, "drsctl:", err)
		os.Exit(exitUsage)
	}
	fmt.Println(spec.ID())
}

func (c client) submit(args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	wait := fs.Bool("wait", false, "block until the job finishes and print the result artifact")
	sf := newSpecFlags(fs)
	fs.Parse(args)
	payload := sf.payload()

	if sc := c.sharded(); sc != nil {
		// Read-through submission: local store, owning shards' stores,
		// then a blocking submit walking the failover order.
		res, err := sc.Submit(context.Background(), payload)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "drsctl: artifact source: %s\n", sourceLabel(res))
		emit(res.Body, res.Status)
		return
	}

	url := c.base + "/v1/jobs"
	if *wait {
		url += "?wait=1"
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		fail(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fail(err)
	}
	emit(body, resp.StatusCode)
}

// watch streams a job's SSE events to stdout until the stream ends.
func (c client) watch(args []string) {
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: drsctl watch <job-id>")
		os.Exit(exitUsage)
	}
	resp, err := http.Get(c.base + "/v1/jobs/" + args[0] + "/events")
	if err != nil {
		fail(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		emit(body, resp.StatusCode)
		return
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line != "" {
			fmt.Println(line)
		}
	}
	if err := sc.Err(); err != nil {
		fail(err)
	}
}
