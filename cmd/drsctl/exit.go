package main

import "net/http"

// drsctl exit-code contract. Scripts branch on these: a 3 means the
// daemon never saw the job (submit it), a 4 means it ran but the
// artifact was evicted from the persistent store (resubmitting the
// spec recomputes byte-identical output).
const (
	exitOK      = 0 // 2xx response
	exitRemote  = 1 // transport failure or any other non-2xx
	exitUsage   = 2 // bad command line, decided before any request
	exitUnknown = 3 // HTTP 404: job unknown to the daemon
	exitEvicted = 4 // HTTP 410: artifact evicted from the store
)

// exitCodeFor maps a response status to the contract above.
func exitCodeFor(status int) int {
	switch {
	case status >= 200 && status < 300:
		return exitOK
	case status == http.StatusNotFound:
		return exitUnknown
	case status == http.StatusGone:
		return exitEvicted
	default:
		return exitRemote
	}
}
