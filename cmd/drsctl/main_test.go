package main

import (
	"net/http"
	"testing"
)

// TestExitCodeContract pins the drsctl exit-code table scripts rely
// on: 0 success, 1 remote error, 3 job unknown, 4 artifact evicted.
// (2 = usage never reaches exitCodeFor — it is decided before any
// request is made.)
func TestExitCodeContract(t *testing.T) {
	cases := []struct {
		name   string
		status int
		want   int
	}{
		{"ok", http.StatusOK, exitOK},
		{"accepted-async-submit", http.StatusAccepted, exitOK},
		{"no-content", http.StatusNoContent, exitOK},
		{"bad-request", http.StatusBadRequest, exitRemote},
		{"job-unknown", http.StatusNotFound, exitUnknown},
		{"conflict-canceled", http.StatusConflict, exitRemote},
		{"artifact-evicted", http.StatusGone, exitEvicted},
		{"rejected-invalid", http.StatusUnprocessableEntity, exitRemote},
		{"queue-full", http.StatusTooManyRequests, exitRemote},
		{"job-failed", http.StatusInternalServerError, exitRemote},
		{"draining", http.StatusServiceUnavailable, exitRemote},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := exitCodeFor(tc.status); got != tc.want {
				t.Fatalf("exitCodeFor(%d) = %d, want %d", tc.status, got, tc.want)
			}
		})
	}
	// The contract values themselves are API: renumbering them breaks
	// every script that branches on $?.
	if exitOK != 0 || exitRemote != 1 || exitUsage != 2 || exitUnknown != 3 || exitEvicted != 4 {
		t.Fatal("exit-code constants renumbered; scripts branch on these values")
	}
}
