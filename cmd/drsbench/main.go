// Command drsbench regenerates the paper's tables and figures on the
// simulated GPU. Each experiment prints the rows of the corresponding
// paper artifact; -exp selects which one (or "all").
//
// Scale flags trade fidelity for runtime: the defaults finish in
// minutes; -paper approaches the paper's 2M-ray workloads.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/scene"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment: table1|fig2|fig8|fig9|table2|fig10|fig11|overhead|all")
		tris   = flag.Int("tris", 20000, "triangle budget per scene (0 = paper full scale)")
		width  = flag.Int("w", 320, "trace render width")
		height = flag.Int("h", 240, "trace render height")
		spp    = flag.Int("spp", 1, "samples per pixel for trace generation")
		rays   = flag.Int("rays", 0, "cap rays per bounce (0 = no cap)")
		smx    = flag.Int("smx", 0, "SMX count override (0 = Table 1's 15)")
		sweepB = flag.Int("sweepbounces", 4, "bounces for the fig8/table2 sweeps")
		cmpB   = flag.Int("cmpbounces", 3, "per-bounce rows for fig10/fig11")
		scen   = flag.String("scene", "", "restrict to one scene (conference|fairy|sponza|plants)")
		paper  = flag.Bool("paper", false, "use paper-scale parameters (slow)")
		asJSON = flag.Bool("json", false, "emit raw experiment cells as JSON instead of tables")
	)
	flag.Parse()

	p := experiments.DefaultParams()
	if *paper {
		p = experiments.PaperParams()
	}
	if *tris != 20000 || !*paper {
		p.Tris = *tris
	}
	if !*paper {
		p.Width, p.Height, p.SPP = *width, *height, *spp
		p.MaxRaysPerBounce = *rays
	}
	if *smx > 0 {
		p.Options.Simt.NumSMX = *smx
	}
	var scenes []scene.Benchmark
	if *scen != "" {
		for _, b := range scene.Benchmarks {
			if b.String() == *scen {
				scenes = []scene.Benchmark{b}
			}
		}
		if scenes == nil {
			fmt.Fprintf(os.Stderr, "unknown scene %q\n", *scen)
			os.Exit(2)
		}
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false
	//drslint:allow wallclock -- wall time reports real CLI runtime, not simulated state
	start := time.Now()

	if want("table1") {
		fmt.Println(experiments.Table1(p))
		ran = true
	}
	if want("overhead") {
		fmt.Println(experiments.Overhead(core.DefaultConfig()))
		ran = true
	}
	emit := func(name string, cells any, text func() string) {
		if *asJSON {
			out, err := json.MarshalIndent(map[string]any{"experiment": name, "cells": cells}, "", "  ")
			exitOn(err)
			fmt.Println(string(out))
			return
		}
		fmt.Println(text())
	}
	if want("fig2") {
		rows, err := experiments.Figure2(p)
		exitOn(err)
		emit("fig2", rows, func() string { return experiments.RenderFigure2(rows) })
		ran = true
	}
	if want("fig8") || want("fig9") {
		cells, err := experiments.Figure8(p, *sweepB, scenes)
		exitOn(err)
		if want("fig8") {
			emit("fig8", cells, func() string { return experiments.RenderFigure8(cells, *sweepB) })
		}
		if want("fig9") {
			emit("fig9", cells, func() string { return experiments.RenderFigure9(cells, *sweepB) })
		}
		ran = true
	}
	if want("table2") {
		cells, err := experiments.Table2(p, *sweepB, scenes)
		exitOn(err)
		emit("table2", cells, func() string { return experiments.RenderTable2(cells, *sweepB) })
		ran = true
	}
	if want("fig10") || want("fig11") {
		cells, err := experiments.Figure10(p, *cmpB, scenes)
		exitOn(err)
		if want("fig10") {
			emit("fig10", cells, func() string { return experiments.RenderFigure10(cells, *cmpB) })
		}
		if want("fig11") {
			emit("fig11", cells, func() string { return experiments.RenderFigure11(cells, *cmpB) })
		}
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; valid: table1 fig2 fig8 fig9 table2 fig10 fig11 overhead all\n", *exp)
		os.Exit(2)
	}
	if *exp == "all" {
		//drslint:allow wallclock -- wall time reports real CLI runtime, not simulated state
		fmt.Printf("completed in %s\n", time.Since(start).Round(time.Millisecond))
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "drsbench:", err)
		os.Exit(1)
	}
}
