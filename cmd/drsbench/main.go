// Command drsbench regenerates the paper's tables and figures on the
// simulated GPU. Each experiment prints the rows of the corresponding
// paper artifact; -exp selects which one (or "all").
//
// Scale flags trade fidelity for runtime: the defaults finish in
// minutes; -paper approaches the paper's 2M-ray workloads.
//
// The device engine is the deterministic epoch-barrier engine by
// default, so every run of the same configuration produces identical
// cycle counts; -repeat N re-runs the selected experiments and exits
// nonzero if any cell diverges, and -engine free selects the legacy
// free-running engine (whose timing jitters across runs).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/archconfig"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/scene"
	"repro/internal/simt"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table1|fig2|fig8|fig9|table2|fig10|fig11|overhead|policies|sweeps|all (all = the paper artifacts; policies and sweeps run only when named)")
		tris    = flag.Int("tris", 20000, "triangle budget per scene (0 = paper full scale)")
		width   = flag.Int("w", 320, "trace render width")
		height  = flag.Int("h", 240, "trace render height")
		spp     = flag.Int("spp", 1, "samples per pixel for trace generation")
		rays    = flag.Int("rays", 0, "cap rays per bounce (0 = no cap)")
		smx     = flag.Int("smx", 0, "SMX count override (0 = Table 1's 15)")
		sweepB  = flag.Int("sweepbounces", 4, "bounces for the fig8/table2 sweeps")
		cmpB    = flag.Int("cmpbounces", 3, "per-bounce rows for fig10/fig11")
		scen    = flag.String("scene", "", "restrict to one scene (conference|fairy|sponza|plants)")
		paper   = flag.Bool("paper", false, "use paper-scale parameters (slow)")
		asJSON  = flag.Bool("json", false, "emit raw experiment cells as JSON instead of tables")
		engine  = flag.String("engine", "epoch", "execution engine: epoch (deterministic barrier) or free (legacy free-running)")
		par     = flag.Int("par", 0, "experiment cell scheduler workers (0 = GOMAXPROCS, 1 = sequential); output is byte-identical at any value")
		repeat  = flag.Int("repeat", 1, "run the selected experiments N times; exit 1 if any cell diverges between runs")
		timeout = flag.Duration("timeout", 0, "abort after this wall-clock duration (0 = no limit); a timed-out run exits with code 3, distinct from divergence failures (1)")

		policyFlag   = flag.String("policy", "", "reordering policy: restricts -exp policies to one policy, or selects the observed run's policy (see -list-policies)")
		listPolicies = flag.Bool("list-policies", false, "print the registered reordering policies and exit")

		archCfg    = flag.String("arch-config", "", "device model for every selected experiment: a builtin name (see -list-archs) or @path to a JSON config; supersedes -smx")
		schedFlag  = flag.String("sched", "", "warp-scheduler policy for every selected experiment (see -list-scheds); empty = device default (gto)")
		listArchs  = flag.Bool("list-archs", false, "print the builtin device models and exit")
		listScheds = flag.Bool("list-scheds", false, "print the registered warp schedulers and exit")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file (flushed on clean exit and on -timeout expiry)")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit (after a final GC)")

		statsJSON = flag.String("stats-json", "", "observed-run mode: write the full metrics registry dump (flat JSON) to this file")
		traceOut  = flag.String("trace", "", "observed-run mode: write a Chrome trace (chrome://tracing / Perfetto) of per-SMX occupancy and stall phases to this file")
		archFlag  = flag.String("arch", "drs", "architecture for the observed run: aila|drs|dmk|tbc (superseded by -policy)")
		bounce    = flag.Int("bounce", 2, "trace bounce whose rays the observed run simulates")
		seriesCap = flag.Int("series-cap", 0, "epoch time-series ring capacity for the observed run (0 = default)")
	)
	flag.Parse()

	if *listPolicies {
		fmt.Print(experiments.PolicyCatalog())
		return
	}
	if *listArchs {
		fmt.Print(experiments.ArchCatalog())
		return
	}
	if *listScheds {
		fmt.Print(experiments.SchedCatalog())
		return
	}

	p := experiments.DefaultParams()
	if *paper {
		p = experiments.PaperParams()
	}
	if *tris != 20000 || !*paper {
		p.Tris = *tris
	}
	if !*paper {
		p.Width, p.Height, p.SPP = *width, *height, *spp
		p.MaxRaysPerBounce = *rays
	}
	if *smx > 0 {
		p.Options.Simt.NumSMX = *smx
	}
	if *par < 0 {
		fmt.Fprintf(os.Stderr, "-par must be >= 0\n")
		os.Exit(2)
	}
	p.Options.Parallelism = *par
	switch *engine {
	case "epoch":
		p.Options.Simt.Engine = simt.EngineEpoch
	case "free":
		p.Options.Simt.Engine = simt.EngineFree
	default:
		fmt.Fprintf(os.Stderr, "unknown engine %q; valid: epoch free\n", *engine)
		os.Exit(2)
	}
	// The device model applies after the scalar device overrides so a
	// named config fully determines the device; a bad name or a config
	// the validator rejects is a usage error, reported once, here.
	if *archCfg != "" {
		ac, err := resolveArchConfig(*archCfg)
		if err == nil {
			p.Options, err = harness.ApplyArch(ac, p.Options)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "drsbench: %v\n", err)
			os.Exit(2)
		}
	}
	if *schedFlag != "" {
		if _, err := harness.Schedulers().New(*schedFlag); err != nil {
			fmt.Fprintf(os.Stderr, "drsbench: %v\n", err)
			os.Exit(2)
		}
		p.Options.Sched = *schedFlag
	}
	var scenes []scene.Benchmark
	if *scen != "" {
		for _, b := range scene.Benchmarks {
			if b.String() == *scen {
				scenes = []scene.Benchmark{b}
			}
		}
		if scenes == nil {
			fmt.Fprintf(os.Stderr, "unknown scene %q\n", *scen)
			os.Exit(2)
		}
	}
	if *repeat < 1 {
		fmt.Fprintf(os.Stderr, "-repeat must be >= 1\n")
		os.Exit(2)
	}
	if *timeout < 0 {
		fmt.Fprintf(os.Stderr, "-timeout must be >= 0\n")
		os.Exit(2)
	}

	flushProfiles = startProfiles(*cpuprofile, *memprofile)
	defer flushProfiles()

	// The timeout rides the same context plumbing the service layer
	// uses: scheduler workers stop claiming cells and in-flight device
	// runs abort at their next epoch barrier.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Observed-run mode: -stats-json / -trace run one instrumented
	// simulation (scene, architecture and bounce selected by flags)
	// instead of the experiment suite, and write machine-readable
	// artifacts. -repeat re-runs it and byte-compares the artifacts.
	if *statsJSON != "" || *traceOut != "" {
		runObserved(ctx, p, observedSpec{
			scene:     pickScene(scenes),
			arch:      *archFlag,
			policy:    *policyFlag,
			bounce:    *bounce,
			seriesCap: *seriesCap,
			statsJSON: *statsJSON,
			traceOut:  *traceOut,
			repeat:    *repeat,
		})
		return
	}

	if *policyFlag != "" {
		if _, err := harness.Policies().New(*policyFlag); err != nil {
			fmt.Fprintf(os.Stderr, "drsbench: %v\n", err)
			os.Exit(2)
		}
	}

	sel := selection{exp: *exp, sweepB: *sweepB, cmpB: *cmpB, scenes: scenes, policy: *policyFlag}
	//drslint:allow wallclock -- wall time reports real CLI runtime, not simulated state
	start := time.Now()

	results, cache, err := sel.run(ctx, p)
	exitOn(err)
	if len(results) == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; valid: table1 fig2 fig8 fig9 table2 fig10 fig11 overhead policies sweeps all\n", *exp)
		os.Exit(2)
	}
	for _, r := range results {
		if *asJSON && r.cells != nil {
			out, err := json.MarshalIndent(map[string]any{"experiment": r.name, "cells": r.cells}, "", "  ")
			exitOn(err)
			fmt.Println(string(out))
			continue
		}
		fmt.Println(r.text)
	}

	// Determinism check: every repeat must reproduce the first run's
	// cells and rendered tables byte for byte.
	if *repeat > 1 {
		ref := make(map[string][]byte, len(results))
		for _, r := range results {
			fp, err := r.fingerprint()
			exitOn(err)
			ref[r.name] = fp
		}
		for i := 2; i <= *repeat; i++ {
			again, _, err := sel.run(ctx, p)
			exitOn(err)
			for _, r := range again {
				fp, err := r.fingerprint()
				exitOn(err)
				if !bytes.Equal(fp, ref[r.name]) {
					fmt.Fprintf(os.Stderr,
						"drsbench: determinism violation: run %d of %s diverged from run 1 on the %s engine\n",
						i, r.name, *engine)
					flushProfiles()
					os.Exit(1)
				}
			}
			fmt.Fprintf(os.Stderr, "repeat %d/%d: identical\n", i, *repeat)
		}
		fmt.Fprintf(os.Stderr, "determinism check passed: %d runs bit-identical (%s engine)\n", *repeat, *engine)
	}

	if *exp == "all" {
		st := cache.Stats()
		fmt.Fprintf(os.Stderr, "workloads: %d built, %d cache hits\n", st.Builds, st.Hits)
		//drslint:allow wallclock -- wall time reports real CLI runtime, not simulated state
		fmt.Printf("completed in %s\n", time.Since(start).Round(time.Millisecond))
	}
}

// expResult is one experiment's output for one run: the raw cells (nil
// for text-only experiments) and the rendered table.
type expResult struct {
	name  string
	cells any
	text  string
}

// fingerprint serializes everything the determinism check compares.
func (r expResult) fingerprint() ([]byte, error) {
	return json.Marshal(map[string]any{"cells": r.cells, "text": r.text})
}

// selection is the set of experiments chosen on the command line.
type selection struct {
	exp    string
	sweepB int
	cmpB   int
	scenes []scene.Benchmark
	policy string // restrict -exp policies to one policy ("" = all)
}

// want reports whether the named experiment was selected. "all" covers
// the paper artifacts only; the cross-policy comparison and the
// architecture sweep run when named explicitly, so -exp all keeps
// regenerating the committed results_*.txt byte for byte.
func (s selection) want(name string) bool {
	if s.exp == "all" {
		return name != "policies" && name != "sweeps"
	}
	return s.exp == name
}

// run executes every selected experiment once, in a fixed order. One
// workload cache is shared across the whole selection, so a suite run
// builds each scene's render+BVH+traces exactly once; each -repeat
// iteration gets a fresh cache so repeats exercise the full pipeline.
func (s selection) run(ctx context.Context, p experiments.Params) ([]expResult, *experiments.WorkloadCache, error) {
	p.Cache = experiments.NewWorkloadCache()
	var out []expResult
	if s.want("table1") {
		out = append(out, expResult{name: "table1", text: experiments.Table1(p)})
	}
	if s.want("overhead") {
		out = append(out, expResult{name: "overhead", text: experiments.Overhead(core.DefaultConfig())})
	}
	if s.want("fig2") {
		rows, err := experiments.Figure2Ctx(ctx, p)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, expResult{"fig2", rows, experiments.RenderFigure2(rows)})
	}
	if s.want("fig8") || s.want("fig9") {
		cells, err := experiments.Figure8Ctx(ctx, p, s.sweepB, s.scenes)
		if err != nil {
			return nil, nil, err
		}
		if s.want("fig8") {
			out = append(out, expResult{"fig8", cells, experiments.RenderFigure8(cells, s.sweepB)})
		}
		if s.want("fig9") {
			out = append(out, expResult{"fig9", cells, experiments.RenderFigure9(cells, s.sweepB)})
		}
	}
	if s.want("table2") {
		cells, err := experiments.Table2Ctx(ctx, p, s.sweepB, s.scenes)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, expResult{"table2", cells, experiments.RenderTable2(cells, s.sweepB)})
	}
	if s.want("policies") {
		var pols []string
		if s.policy != "" {
			pols = []string{s.policy}
		}
		cells, err := experiments.PoliciesFigureCtx(ctx, p, s.cmpB, s.scenes, pols)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, expResult{"policies", cells, experiments.RenderPolicies(cells, s.cmpB)})
	}
	if s.want("sweeps") {
		cells, err := experiments.SweepsFigureCtx(ctx, p, s.sweepB, s.scenes)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, expResult{"sweeps", cells, experiments.RenderSweeps(cells)})
	}
	if s.want("fig10") || s.want("fig11") {
		cells, err := experiments.Figure10Ctx(ctx, p, s.cmpB, s.scenes)
		if err != nil {
			return nil, nil, err
		}
		if s.want("fig10") {
			out = append(out, expResult{"fig10", cells, experiments.RenderFigure10(cells, s.cmpB)})
		}
		if s.want("fig11") {
			out = append(out, expResult{"fig11", cells, experiments.RenderFigure11(cells, s.cmpB)})
		}
	}
	return out, p.Cache, nil
}

// flushProfiles finalizes -cpuprofile/-memprofile. It must run on every
// exit path — exitOn's os.Exit calls bypass defers, and a timed-out run
// is exactly the one being profiled — so exitOn calls it explicitly
// before exiting.
var flushProfiles = func() {}

// startProfiles begins CPU profiling (if requested) and returns the
// idempotent flush that stops it and writes the allocation profile.
func startProfiles(cpu, mem string) func() {
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fmt.Fprintln(os.Stderr, "drsbench:", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "drsbench:", err)
			os.Exit(2)
		}
		cpuF = f
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "drsbench:", err)
				return
			}
			runtime.GC() // settle live heap so inuse numbers are meaningful
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "drsbench:", err)
			}
			f.Close()
		}
	}
}

func exitOn(err error) {
	if err == nil {
		return
	}
	flushProfiles()
	// A -timeout expiry is an operational condition, not a determinism
	// or simulation failure; give it its own exit code so CI wrappers
	// can tell the two apart.
	if errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "drsbench: timed out:", err)
		os.Exit(3)
	}
	fmt.Fprintln(os.Stderr, "drsbench:", err)
	os.Exit(1)
}

// resolveArchConfig maps the -arch-config flag to a device model: a
// leading @ reads and decodes a JSON config file, anything else is a
// builtin name (archconfig.Names / -list-archs).
func resolveArchConfig(v string) (archconfig.Config, error) {
	if strings.HasPrefix(v, "@") {
		return archconfig.DecodeFile(strings.TrimPrefix(v, "@"))
	}
	return archconfig.Builtin(v)
}
