package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/scene"
)

// observedSpec describes one instrumented run of the observed-run mode
// (-stats-json / -trace).
type observedSpec struct {
	scene     scene.Benchmark
	arch      string
	policy    string // non-empty: run this registry policy instead of arch
	bounce    int
	seriesCap int
	statsJSON string
	traceOut  string
	repeat    int
}

// pickScene returns the -scene selection, defaulting to the conference
// room (the paper's headline benchmark).
func pickScene(scenes []scene.Benchmark) scene.Benchmark {
	if len(scenes) > 0 {
		return scenes[0]
	}
	return scene.ConferenceRoom
}

// policyName resolves what the observed run simulates: -policy wins,
// otherwise the legacy -arch spelling (the four architecture names are
// registered policies, so both route through the same registry and an
// unknown name fails in exactly one place).
func (s observedSpec) policyName() string {
	if s.policy != "" {
		return s.policy
	}
	return s.arch
}

// runObserved performs the instrumented run(s) and writes the requested
// artifacts. With repeat > 1 every run's serialized artifacts must be
// byte-identical or the process exits 1 — the metrics dump is the
// determinism fingerprint, not a float-rounded table.
func runObserved(ctx context.Context, p experiments.Params, spec observedSpec) {
	name := spec.policyName()
	if _, err := harness.Policies().New(name); err != nil {
		exitOn(err)
	}
	p.Options.Observe = true
	p.Options.SeriesCap = spec.seriesCap

	w, err := experiments.BuildWorkload(spec.scene, p)
	exitOn(err)
	rays := w.BounceRays(spec.bounce, p)
	if len(rays) == 0 {
		exitOn(fmt.Errorf("scene %s bounce %d has no rays; lower -bounce", spec.scene, spec.bounce))
	}
	fmt.Fprintf(os.Stderr, "observed run: %s on %s bounce %d, %d rays\n",
		name, spec.scene, spec.bounce, len(rays))

	var refStats, refTrace []byte
	for i := 1; i <= spec.repeat; i++ {
		res, err := harness.RunNamedCtx(ctx, name, rays, w.Data, p.Options)
		exitOn(err)
		stats, err := json.Marshal(res.Metrics)
		exitOn(err)
		var traceBytes []byte
		if spec.traceOut != "" {
			tr, err := res.ChromeTrace()
			exitOn(err)
			var buf bytes.Buffer
			exitOn(tr.WriteJSON(&buf))
			traceBytes = buf.Bytes()
		}
		if i == 1 {
			refStats, refTrace = stats, traceBytes
			if res.Series != nil && res.Series.Dropped() > 0 {
				fmt.Fprintf(os.Stderr, "note: series ring dropped %d early epochs (raise -series-cap to keep them)\n",
					res.Series.Dropped())
			}
			continue
		}
		if !bytes.Equal(stats, refStats) || !bytes.Equal(traceBytes, refTrace) {
			fmt.Fprintf(os.Stderr, "drsbench: determinism violation: observed run %d diverged from run 1\n", i)
			flushProfiles()
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "repeat %d/%d: identical\n", i, spec.repeat)
	}
	if spec.repeat > 1 {
		fmt.Fprintf(os.Stderr, "determinism check passed: %d observed runs bit-identical\n", spec.repeat)
	}

	if spec.statsJSON != "" {
		exitOn(writeFileAtomic(spec.statsJSON, indentJSON(refStats)))
		fmt.Fprintf(os.Stderr, "wrote %s (%d metrics)\n", spec.statsJSON, countJSONKeys(refStats))
	}
	if spec.traceOut != "" {
		exitOn(writeFileAtomic(spec.traceOut, refTrace))
		fmt.Fprintf(os.Stderr, "wrote %s (open in Perfetto or chrome://tracing)\n", spec.traceOut)
	}
}

// indentJSON pretty-prints the canonical one-line dump for human
// eyeballs; key order (and so byte content) is unchanged.
func indentJSON(b []byte) []byte {
	var buf bytes.Buffer
	if err := json.Indent(&buf, b, "", "  "); err != nil {
		return b
	}
	buf.WriteByte('\n')
	return buf.Bytes()
}

func countJSONKeys(b []byte) int {
	var m map[string]int64
	if err := json.Unmarshal(b, &m); err != nil {
		return 0
	}
	return len(m)
}

// writeFileAtomic writes via a temp file + rename so a crashed run
// never leaves a half-written artifact.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
