// Command renderimg path-traces one of the benchmark scenes on the CPU
// and writes a PPM image — a quick visual check that the procedural
// scenes, BVH, and renderer substrates behave.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bvh"
	"repro/internal/render"
	"repro/internal/scene"
	"repro/internal/trace"
)

func main() {
	var (
		scen   = flag.String("scene", "conference", "scene: conference|fairy|sponza|plants")
		tris   = flag.Int("tris", 50000, "triangle budget (0 = paper full scale)")
		width  = flag.Int("w", 640, "render width")
		height = flag.Int("h", 480, "render height")
		spp    = flag.Int("spp", 16, "samples per pixel")
		out    = flag.String("o", "out.ppm", "output PPM path")
	)
	flag.Parse()

	var bench scene.Benchmark
	found := false
	for _, b := range scene.Benchmarks {
		if b.String() == *scen {
			bench, found = b, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown scene %q\n", *scen)
		os.Exit(2)
	}

	s := scene.Generate(bench, *tris)
	fmt.Printf("scene %s: %d triangles, %d lights\n", bench, len(s.Tris), len(s.Lights))
	bv, err := bvh.Build(s.Tris, bvh.DefaultOptions())
	exitOn(err)
	cam := render.CameraFor(bench, *width, *height)
	res, err := render.Render(s, bv, cam, render.Config{
		Width: *width, Height: *height, SamplesPerPixel: *spp,
		MaxDepth: trace.MaxBounces,
	})
	exitOn(err)
	f, err := os.Create(*out)
	exitOn(err)
	err = render.WritePPM(f, res.Image)
	cerr := f.Close()
	exitOn(err)
	exitOn(cerr)
	fmt.Printf("wrote %s (%dx%d, %d spp)\n", *out, *width, *height, *spp)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "renderimg:", err)
		os.Exit(1)
	}
}
