// Command drslint is the repo's determinism and kernel-program linter.
// It runs two independent passes and exits nonzero if either finds
// anything:
//
//   - Program verification: every registered kernel variant is built
//     against every benchmark scene, statically verified (successor
//     ranges, reconvergence points vs the computed immediate
//     post-dominators, reachability, memory and operand budgets,
//     architecture capabilities), and then dynamically explored — Step
//     is driven from the entry block and every observed transition and
//     memory emission is cross-checked against the declared program.
//
//   - Source lint: the determinism lint over the repo's non-test Go
//     sources (map iteration feeding simulation state, wall-clock and
//     global-RNG reads, goroutine captured-variable writes).
//
// Usage:
//
//	drslint [-mode all|prog|src] [-json] [-tris N] [-steps N] [src roots...]
//
// With -json the findings are emitted as one machine-readable object.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/bvh"
	"repro/internal/geom"
	"repro/internal/kernels"
	"repro/internal/progcheck"
	"repro/internal/rng"
	"repro/internal/scene"
	"repro/internal/simt"
	"repro/internal/vec"
)

// kernelVariant is one (name, caps, builder) row of the registry. The
// builder constructs the kernel with verification disabled — drslint
// reports findings itself rather than letting MustVerify panic.
type kernelVariant struct {
	name  string
	caps  progcheck.Caps
	build func(data *kernels.SceneData, pool *kernels.Pool, slots int) simt.Kernel
}

var variants = []kernelVariant{
	{"aila", progcheck.Caps{}, func(d *kernels.SceneData, p *kernels.Pool, n int) simt.Kernel {
		return kernels.NewAila(d, p, n, kernels.AilaConfig{Speculative: true, SkipVerify: true})
	}},
	{"aila-nospec", progcheck.Caps{}, func(d *kernels.SceneData, p *kernels.Pool, n int) simt.Kernel {
		return kernels.NewAila(d, p, n, kernels.AilaConfig{SkipVerify: true})
	}},
	{"aila-anyhit", progcheck.Caps{}, func(d *kernels.SceneData, p *kernels.Pool, n int) simt.Kernel {
		return kernels.NewAila(d, p, n, kernels.AilaConfig{Speculative: true, AnyHit: true, SkipVerify: true})
	}},
	{"whileif", progcheck.Caps{Gate: true, CtrlTag: true}, func(d *kernels.SceneData, p *kernels.Pool, n int) simt.Kernel {
		return kernels.NewWhileIfConfigured(d, p, n, kernels.WhileIfConfig{SkipVerify: true})
	}},
	{"whileif-anyhit", progcheck.Caps{Gate: true, CtrlTag: true}, func(d *kernels.SceneData, p *kernels.Pool, n int) simt.Kernel {
		return kernels.NewWhileIfConfigured(d, p, n, kernels.WhileIfConfig{AnyHit: true, SkipVerify: true})
	}},
}

// report is the -json output shape.
type report struct {
	Program []progcheck.Finding    `json:"program"`
	Source  []progcheck.SrcFinding `json:"source"`
	// Explored summarizes dynamic coverage per kernel x scene, so a
	// clean run can be judged for how much it actually exercised.
	Explored []exploreSummary `json:"explored,omitempty"`
}

type exploreSummary struct {
	Kernel string `json:"kernel"`
	Scene  string `json:"scene"`
	Steps  int    `json:"steps"`
	Blocks int    `json:"blocks"`
	Edges  int    `json:"edges"`
}

// sceneRays generates a deterministic ray set spanning the scene
// bounds: origins jittered across the box, directions on the unit
// sphere. Seeded PCG — identical on every run and platform.
func sceneRays(s *scene.Scene, n int) []geom.Ray {
	r := rng.NewPCG32(0x5EED, 0xCAFE)
	span := s.Bounds.Max.Sub(s.Bounds.Min)
	ones := vec.New(1, 1, 1)
	rays := make([]geom.Ray, n)
	for i := range rays {
		o := s.Bounds.Min.Add(span.Mul(vecRand(r)))
		d := vecRand(r).Scale(2).Sub(ones)
		for d.Len2() < 1e-4 {
			d = vecRand(r).Scale(2).Sub(ones)
		}
		rays[i] = geom.NewRay(o, d.Norm())
	}
	return rays
}

func vecRand(r *rng.PCG32) vec.V3 {
	return vec.New(r.Float32(), r.Float32(), r.Float32())
}

func main() {
	var (
		mode    = flag.String("mode", "all", "which passes to run: all, prog (kernel programs), or src (source lint)")
		jsonOut = flag.Bool("json", false, "emit findings as a single JSON object")
		tris    = flag.Int("tris", 2000, "triangle budget per benchmark scene for program exploration")
		steps   = flag.Int("steps", 0, "total Step budget per kernel x scene exploration (0 = progcheck default)")
		slots   = flag.Int("slots", 256, "kernel slots (threads) to build and drive per exploration")
	)
	flag.Parse()
	if *mode != "all" && *mode != "prog" && *mode != "src" {
		fmt.Fprintf(os.Stderr, "drslint: unknown -mode %q; valid: all, prog, src\n", *mode)
		os.Exit(2)
	}

	var rep report
	fail := false

	if *mode == "all" || *mode == "prog" {
		progFindings, summaries, err := runProg(*tris, *steps, *slots)
		if err != nil {
			fmt.Fprintln(os.Stderr, "drslint:", err)
			os.Exit(2)
		}
		rep.Program = progFindings
		rep.Explored = summaries
		fail = fail || len(progFindings) > 0
	}

	if *mode == "all" || *mode == "src" {
		roots := flag.Args()
		if len(roots) == 0 {
			roots = []string{"internal", "cmd"}
		}
		srcFindings, err := progcheck.LintDirs(roots...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "drslint:", err)
			os.Exit(2)
		}
		rep.Source = srcFindings
		fail = fail || len(srcFindings) > 0
	}

	if *jsonOut {
		// Stable shape for machine consumers: empty arrays, not null.
		if rep.Program == nil {
			rep.Program = []progcheck.Finding{}
		}
		if rep.Source == nil {
			rep.Source = []progcheck.SrcFinding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "drslint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range rep.Program {
			fmt.Println(f.String())
		}
		for _, f := range rep.Source {
			fmt.Println(f.String())
		}
		if !fail {
			fmt.Printf("drslint: clean (%d kernel/scene explorations)\n", len(rep.Explored))
		}
	}
	if fail {
		os.Exit(1)
	}
}

// runProg verifies and explores every kernel variant against every
// benchmark scene.
func runProg(tris, stepBudget, slots int) ([]progcheck.Finding, []exploreSummary, error) {
	var findings []progcheck.Finding
	var summaries []exploreSummary
	for _, b := range scene.Benchmarks {
		sc := scene.Generate(b, tris)
		bv, err := bvh.Build(sc.Tris, bvh.DefaultOptions())
		if err != nil {
			return nil, nil, fmt.Errorf("bvh %s: %w", b, err)
		}
		data := kernels.NewSceneData(bv)
		rays := sceneRays(sc, slots)
		for _, v := range variants {
			pool := &kernels.Pool{Rays: rays}
			k := v.build(data, pool, slots)
			name := v.name + "@" + b.String()
			findings = append(findings, progcheck.Verify(name, k, v.caps)...)
			fs, cov := progcheck.Explore(name, k, progcheck.ExploreConfig{
				MaxTotalSteps: stepBudget,
				Slots:         slots,
			})
			findings = append(findings, fs...)
			summaries = append(summaries, exploreSummary{
				Kernel: v.name, Scene: b.String(),
				Steps: cov.Steps, Blocks: cov.BlocksVisited, Edges: cov.EdgesObserved,
			})
		}
	}
	return findings, summaries, nil
}
