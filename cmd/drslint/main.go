// Command drslint is the repo's determinism and kernel-program linter.
// It runs three independent passes and exits nonzero if any finds
// anything:
//
//   - Program verification (-mode prog): every registered kernel
//     variant is built against every benchmark scene, statically
//     verified (successor ranges, reconvergence points vs the computed
//     immediate post-dominators, reachability, memory and operand
//     budgets, architecture capabilities), and then dynamically
//     explored — Step is driven from the entry block and every observed
//     transition and memory emission is cross-checked against the
//     declared program.
//
//   - Source lint (-mode src): the file-granular syntactic determinism
//     lint over the repo's non-test Go sources (map iteration feeding
//     simulation state, wall-clock and global-RNG reads, goroutine
//     captured-variable writes).
//
//   - Graph analysis (-mode graph): the type-aware whole-program pass
//     (internal/srcgraph) — a static call graph over internal/ + cmd/,
//     determinism-hazard findings for any function reachable from an
//     engine/harness entry point or //drslint:hotpath root, plus the
//     spec-hash drift and metrics-registration completeness verifiers.
//
// Usage:
//
//	drslint [-mode all|prog|src|graph] [-json] [-tris N] [-steps N] [src roots...]
//
// With -json the findings are emitted as one machine-readable object.
//
// The exit code is a bitmask identifying which checks failed: 1 =
// kernel-program findings, 2 = source-lint findings, 4 = graph
// determinism hazards, 8 = spec-hash drift, 16 = metrics-registration
// gaps. Internal errors (load or build failures) exit 32.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/bvh"
	"repro/internal/kernels"
	"repro/internal/progcheck"
	"repro/internal/scene"
	"repro/internal/simt"
	"repro/internal/srcgraph"
)

// Exit-code bits, one per check family; the process exit status is the
// OR of every bit whose check produced findings.
const (
	exitProg        = 1 << iota // kernel program verification/exploration
	exitSrc                     // syntactic source lint
	exitGraphHazard             // interprocedural determinism hazards
	exitSpecHash                // spec-hash drift
	exitMetricsReg              // metrics-registration gaps
	exitInternal                // load/build/usage failure (32)
)

// kernelVariant is one (name, caps, builder) row of the registry. The
// builder constructs the kernel with verification disabled — drslint
// reports findings itself rather than letting MustVerify panic.
type kernelVariant struct {
	name  string
	caps  progcheck.Caps
	build func(data *kernels.SceneData, pool *kernels.Pool, slots int) simt.Kernel
}

var variants = []kernelVariant{
	{"aila", progcheck.Caps{}, func(d *kernels.SceneData, p *kernels.Pool, n int) simt.Kernel {
		return kernels.NewAila(d, p, n, kernels.AilaConfig{Speculative: true, SkipVerify: true})
	}},
	{"aila-nospec", progcheck.Caps{}, func(d *kernels.SceneData, p *kernels.Pool, n int) simt.Kernel {
		return kernels.NewAila(d, p, n, kernels.AilaConfig{SkipVerify: true})
	}},
	{"aila-anyhit", progcheck.Caps{}, func(d *kernels.SceneData, p *kernels.Pool, n int) simt.Kernel {
		return kernels.NewAila(d, p, n, kernels.AilaConfig{Speculative: true, AnyHit: true, SkipVerify: true})
	}},
	{"whileif", progcheck.Caps{Gate: true, CtrlTag: true}, func(d *kernels.SceneData, p *kernels.Pool, n int) simt.Kernel {
		return kernels.NewWhileIfConfigured(d, p, n, kernels.WhileIfConfig{SkipVerify: true})
	}},
	{"whileif-anyhit", progcheck.Caps{Gate: true, CtrlTag: true}, func(d *kernels.SceneData, p *kernels.Pool, n int) simt.Kernel {
		return kernels.NewWhileIfConfigured(d, p, n, kernels.WhileIfConfig{AnyHit: true, SkipVerify: true})
	}},
}

// report is the -json output shape.
type report struct {
	Program []progcheck.Finding    `json:"program"`
	Source  []progcheck.SrcFinding `json:"source"`
	Graph   *graphReport           `json:"graph,omitempty"`
	// Explored summarizes dynamic coverage per kernel x scene, so a
	// clean run can be judged for how much it actually exercised.
	Explored []exploreSummary `json:"explored,omitempty"`
}

// graphReport carries the graph pass's findings plus enough loader
// health (function count, root inventory) that a regression silently
// emptying the call graph is visible in CI diffs, not just a
// suspiciously green run.
type graphReport struct {
	Funcs    int                `json:"funcs"`
	DetRoots map[string]string  `json:"det_roots"`
	HotRoots map[string]string  `json:"hot_roots"`
	Findings []srcgraph.Finding `json:"findings"`
}

type exploreSummary struct {
	Kernel string `json:"kernel"`
	Scene  string `json:"scene"`
	Steps  int    `json:"steps"`
	Blocks int    `json:"blocks"`
	Edges  int    `json:"edges"`
}

func main() {
	var (
		mode    = flag.String("mode", "all", "which passes to run: all, prog (kernel programs), src (source lint), or graph (whole-program analysis)")
		jsonOut = flag.Bool("json", false, "emit findings as a single JSON object")
		tris    = flag.Int("tris", 2000, "triangle budget per benchmark scene for program exploration")
		steps   = flag.Int("steps", 0, "total Step budget per kernel x scene exploration (0 = progcheck default)")
		slots   = flag.Int("slots", 256, "kernel slots (threads) to build and drive per exploration")
	)
	flag.Parse()
	if *mode != "all" && *mode != "prog" && *mode != "src" && *mode != "graph" {
		fmt.Fprintf(os.Stderr, "drslint: unknown -mode %q; valid: all, prog, src, graph\n", *mode)
		os.Exit(exitInternal)
	}

	var rep report
	exit := 0

	if *mode == "all" || *mode == "prog" {
		progFindings, summaries, err := runProg(*tris, *steps, *slots)
		if err != nil {
			fmt.Fprintln(os.Stderr, "drslint:", err)
			os.Exit(exitInternal)
		}
		rep.Program = progFindings
		rep.Explored = summaries
		if len(progFindings) > 0 {
			exit |= exitProg
		}
	}

	if *mode == "all" || *mode == "src" {
		roots := flag.Args()
		if len(roots) == 0 {
			roots = []string{"internal", "cmd"}
		}
		srcFindings, err := progcheck.LintDirs(roots...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "drslint:", err)
			os.Exit(exitInternal)
		}
		rep.Source = srcFindings
		if len(srcFindings) > 0 {
			exit |= exitSrc
		}
	}

	if *mode == "all" || *mode == "graph" {
		gr, bits, err := runGraph()
		if err != nil {
			fmt.Fprintln(os.Stderr, "drslint:", err)
			os.Exit(exitInternal)
		}
		rep.Graph = gr
		exit |= bits
	}

	if *jsonOut {
		// Stable shape for machine consumers: empty arrays, not null.
		if rep.Program == nil {
			rep.Program = []progcheck.Finding{}
		}
		if rep.Source == nil {
			rep.Source = []progcheck.SrcFinding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "drslint:", err)
			os.Exit(exitInternal)
		}
	} else {
		for _, f := range rep.Program {
			fmt.Println(f.String())
		}
		for _, f := range rep.Source {
			fmt.Println(f.String())
		}
		if rep.Graph != nil {
			for _, f := range rep.Graph.Findings {
				fmt.Println(f.String())
			}
		}
		if exit == 0 {
			switch {
			case rep.Graph != nil && *mode == "graph":
				fmt.Printf("drslint: clean (graph: %d funcs, %d det roots, %d hot roots)\n",
					rep.Graph.Funcs, len(rep.Graph.DetRoots), len(rep.Graph.HotRoots))
			case rep.Graph != nil:
				fmt.Printf("drslint: clean (%d kernel/scene explorations; graph: %d funcs, %d det roots, %d hot roots)\n",
					len(rep.Explored), rep.Graph.Funcs, len(rep.Graph.DetRoots), len(rep.Graph.HotRoots))
			default:
				fmt.Printf("drslint: clean (%d kernel/scene explorations)\n", len(rep.Explored))
			}
		}
	}
	os.Exit(exit)
}

// runGraph loads the module, runs the whole-program analyses, and maps
// each finding onto its exit-code bit.
func runGraph() (*graphReport, int, error) {
	prog, err := srcgraph.Load(".", "./internal/...", "./cmd/...")
	if err != nil {
		return nil, 0, fmt.Errorf("graph load: %w", err)
	}
	g := srcgraph.BuildGraph(prog)
	det, hot := g.Roots()
	gr := &graphReport{
		Funcs:    g.NumFuncs(),
		DetRoots: det,
		HotRoots: hot,
		Findings: srcgraph.Analyze(prog),
	}
	if gr.Findings == nil {
		gr.Findings = []srcgraph.Finding{}
	}
	bits := 0
	for _, f := range gr.Findings {
		switch f.Check {
		case srcgraph.CheckSpecHash:
			bits |= exitSpecHash
		case srcgraph.CheckMetricsReg:
			bits |= exitMetricsReg
		default:
			bits |= exitGraphHazard
		}
	}
	return gr, bits, nil
}

// runProg verifies and explores every kernel variant against every
// benchmark scene.
func runProg(tris, stepBudget, slots int) ([]progcheck.Finding, []exploreSummary, error) {
	var findings []progcheck.Finding
	var summaries []exploreSummary
	for _, b := range scene.Benchmarks {
		sc := scene.Generate(b, tris)
		bv, err := bvh.Build(sc.Tris, bvh.DefaultOptions())
		if err != nil {
			return nil, nil, fmt.Errorf("bvh %s: %w", b, err)
		}
		data := kernels.NewSceneData(bv)
		rays := scene.ProbeRays(sc, slots)
		for _, v := range variants {
			pool := &kernels.Pool{Rays: rays}
			k := v.build(data, pool, slots)
			name := v.name + "@" + b.String()
			findings = append(findings, progcheck.Verify(name, k, v.caps)...)
			fs, cov := progcheck.Explore(name, k, progcheck.ExploreConfig{
				MaxTotalSteps: stepBudget,
				Slots:         slots,
			})
			findings = append(findings, fs...)
			summaries = append(summaries, exploreSummary{
				Kernel: v.name, Scene: b.String(),
				Steps: cov.Steps, Blocks: cov.BlocksVisited, Edges: cov.EdgesObserved,
			})
		}
	}
	return findings, summaries, nil
}
