// Command calibrate runs one architecture on one scene/bounce at a
// chosen scale and prints the key statistics, for model calibration.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bvh"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/kernels"
	"repro/internal/render"
	"repro/internal/reorder"
	"repro/internal/scene"
)

func main() {
	var (
		bench  = flag.String("scene", "conference", "scene")
		tris   = flag.Int("tris", 30000, "triangle budget")
		bounce = flag.Int("bounce", 2, "bounce number")
		width  = flag.Int("w", 320, "render width")
		height = flag.Int("h", 240, "render height")
		spp    = flag.Int("spp", 1, "samples per pixel")
		smx    = flag.Int("smx", 15, "number of SMXs")
		maxr   = flag.Int("rays", 0, "cap ray count (0 = all)")
		bindT  = flag.Int("bind", 0, "DRS bind threshold (0 = default)")
	)
	flag.Parse()
	var b scene.Benchmark
	for _, cand := range scene.Benchmarks {
		if cand.String() == *bench {
			b = cand
		}
	}
	s := scene.Generate(b, *tris)
	bv, err := bvh.Build(s.Tris, bvh.DefaultOptions())
	if err != nil {
		panic(err)
	}
	cam := render.CameraFor(b, *width, *height)
	res, err := render.Render(s, bv, cam, render.Config{
		Width: *width, Height: *height, SamplesPerPixel: *spp, MaxDepth: 8, CaptureTraces: true,
	})
	if err != nil {
		panic(err)
	}
	rays := res.Traces.Bounce(*bounce).Rays
	if *maxr > 0 && len(rays) > *maxr {
		rays = rays[:*maxr]
	}
	data := kernels.NewSceneData(bv)
	opt := harness.DefaultOptions()
	opt.Simt.NumSMX = *smx
	opt.Simt.MaxCycles = 1 << 26
	fmt.Printf("scene=%s tris=%d bounce=%d rays=%d coherence=%.3f\n",
		b, len(s.Tris), *bounce, len(rays), res.Traces.Bounce(*bounce).Coherence(32))
	ideal := flag.Lookup("ideal") != nil
	_ = ideal
	for _, run := range []struct {
		name  string
		arch  harness.Arch
		ideal bool
	}{{"aila", harness.ArchAila, false}, {"drs", harness.ArchDRS, false}, {"drs-i", harness.ArchDRS, true}} {
		arch := run.arch
		drsCfg := core.DefaultConfig()
		drsCfg.BindThreshold = *bindT
		drsCfg.Ideal = run.ideal
		opt.PolicyOverrides = []reorder.Policy{core.NewPolicy(drsCfg)}
		r, err := harness.Run(arch, rays, data, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v: %v\n", arch, err)
			continue
		}
		st := r.GPU.Stats
		bd := st.UtilizationBreakdown(32)
		fmt.Printf("%-5s Mrays=%7.1f eff=%.3f cycles=%d instrs=%d issueUtil=%.3f ctrlStall=%.3f W25:32=%.2f W1:8=%.2f l1tMiss=%.3f rfShuffle=%.3f\n",
			run.name, r.Mrays, r.SIMDEff, st.Cycles, st.WarpInstrs,
			float64(st.IssueSlotsUsed)/float64(st.IssueSlotsTotal),
			st.CtrlStallRate(), bd.W25to32, bd.W1to8,
			r.GPU.L1TexMissRate, r.GPU.RFShuffleShare)
		tot := st.SampledExec + st.SampledGate + st.SampledMem + st.SampledParked + st.SampledDone
		if tot > 0 {
			fmt.Printf("      census: exec=%.2f gate=%.2f mem=%.2f parked=%.2f done=%.2f\n",
				float64(st.SampledExec)/float64(tot), float64(st.SampledGate)/float64(tot),
				float64(st.SampledMem)/float64(tot), float64(st.SampledParked)/float64(tot),
				float64(st.SampledDone)/float64(tot))
		}
		if arch == harness.ArchDRS {
			fmt.Printf("      drs: remaps=%d swaps=%d meanSwap=%.1f\n",
				r.DRS.Remaps, r.DRS.SwapsCompleted, r.DRS.MeanSwapCycles())
		}
	}
	_ = core.DefaultConfig
}
