// Command tracegen renders a benchmark scene with the CPU path tracer
// and writes per-bounce ray trace streams to disk, mirroring the
// paper's methodology of capturing ray traces and streaming them into
// the traversal kernels.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bvh"
	"repro/internal/render"
	"repro/internal/scene"
	"repro/internal/trace"
)

func main() {
	var (
		scen   = flag.String("scene", "conference", "scene: conference|fairy|sponza|plants")
		tris   = flag.Int("tris", 20000, "triangle budget (0 = paper full scale)")
		width  = flag.Int("w", 320, "render width")
		height = flag.Int("h", 240, "render height")
		spp    = flag.Int("spp", 1, "samples per pixel")
		outDir = flag.String("o", "traces", "output directory")
	)
	flag.Parse()

	var bench scene.Benchmark
	found := false
	for _, b := range scene.Benchmarks {
		if b.String() == *scen {
			bench, found = b, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown scene %q\n", *scen)
		os.Exit(2)
	}

	s := scene.Generate(bench, *tris)
	bv, err := bvh.Build(s.Tris, bvh.DefaultOptions())
	exitOn(err)
	cam := render.CameraFor(bench, *width, *height)
	res, err := render.Render(s, bv, cam, render.Config{
		Width: *width, Height: *height, SamplesPerPixel: *spp,
		MaxDepth: trace.MaxBounces, CaptureTraces: true,
	})
	exitOn(err)

	exitOn(os.MkdirAll(*outDir, 0o755))
	for b := 1; b <= trace.MaxBounces; b++ {
		st := res.Traces.Bounce(b)
		if len(st.Rays) == 0 {
			continue
		}
		path := filepath.Join(*outDir, fmt.Sprintf("%s_b%d.rays", bench, b))
		f, err := os.Create(path)
		exitOn(err)
		err = st.Write(f)
		cerr := f.Close()
		exitOn(err)
		exitOn(cerr)
		fmt.Printf("%s: %d rays (coherence %.3f)\n", path, len(st.Rays), st.Coherence(32))
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}
