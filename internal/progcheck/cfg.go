package progcheck

import "math/bits"

// graph is the exit-augmented control-flow graph of a kernel program:
// nodes 0..n-1 are the program's basic blocks and node n is the virtual
// exit that simt.BlockExit edges target. The engine retires exiting
// lanes before divergence handling, so the exit node never participates
// in reconvergence, but it anchors the post-dominator dataflow.
type graph struct {
	n     int // number of real blocks; exit node id is n
	entry int
	succ  [][]int // successor lists over node ids (exit included)
}

// exit returns the virtual exit node id.
func (g *graph) exit() int { return g.n }

// newGraph builds the exit-augmented graph from per-block successor
// lists that use simt.BlockExit (-1) for lane retirement. Successor ids
// outside [0, n) other than BlockExit are dropped here; the range check
// in Verify reports them before any graph analysis runs.
func newGraph(n, entry int, succs [][]int, blockExit int) *graph {
	g := &graph{n: n, entry: entry, succ: make([][]int, n+1)}
	for b := 0; b < n && b < len(succs); b++ {
		seen := make(map[int]bool, len(succs[b]))
		for _, t := range succs[b] {
			if t == blockExit {
				t = g.exit()
			}
			if t < 0 || t > n || seen[t] {
				continue
			}
			seen[t] = true
			g.succ[b] = append(g.succ[b], t)
		}
	}
	return g
}

// bitset is a fixed-size bitset over graph nodes.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (s bitset) set(i int)      { s[i/64] |= 1 << uint(i%64) }
func (s bitset) has(i int) bool { return s[i/64]&(1<<uint(i%64)) != 0 }
func (s bitset) clear(i int)    { s[i/64] &^= 1 << uint(i%64) }

func (s bitset) fill() {
	for i := range s {
		s[i] = ^uint64(0)
	}
}

func (s bitset) copyFrom(o bitset) { copy(s, o) }

// intersect ands o into s, reporting whether s changed.
func (s bitset) intersect(o bitset) bool {
	changed := false
	for i := range s {
		v := s[i] & o[i]
		if v != s[i] {
			s[i] = v
			changed = true
		}
	}
	return changed
}

func (s bitset) equal(o bitset) bool {
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

func (s bitset) count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// reachableFrom returns the set of nodes reachable from start along
// successor edges (start included).
func (g *graph) reachableFrom(start int) bitset {
	seen := newBitset(g.n + 1)
	stack := []int{start}
	seen.set(start)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range g.succ[v] {
			if !seen.has(t) {
				seen.set(t)
				stack = append(stack, t)
			}
		}
	}
	return seen
}

// pred builds predecessor lists (over all nodes including exit).
func (g *graph) pred() [][]int {
	p := make([][]int, g.n+1)
	for v := 0; v <= g.n; v++ {
		for _, t := range g.succ[v] {
			p[t] = append(p[t], v)
		}
	}
	return p
}

// dominators computes the dominator set of every node with the
// classic iterative dataflow: dom(v) = {v} ∪ ∩ dom(pred(v)), seeded at
// the entry. Unreachable nodes keep the full set (callers filter on
// reachability first).
func (g *graph) dominators() []bitset {
	preds := g.pred()
	dom := make([]bitset, g.n+1)
	for v := range dom {
		dom[v] = newBitset(g.n + 1)
		if v == g.entry {
			dom[v].set(v)
		} else {
			dom[v].fill()
		}
	}
	tmp := newBitset(g.n + 1)
	for changed := true; changed; {
		changed = false
		for v := 0; v <= g.n; v++ {
			if v == g.entry {
				continue
			}
			tmp.fill()
			any := false
			for _, p := range preds[v] {
				tmp.intersect(dom[p])
				any = true
			}
			if !any {
				continue
			}
			tmp.set(v)
			if !tmp.equal(dom[v]) {
				dom[v].copyFrom(tmp)
				changed = true
			}
		}
	}
	return dom
}

// postDominators computes the post-dominator set of every node, seeded
// at the virtual exit: pdom(v) = {v} ∪ ∩ pdom(succ(v)). Nodes with no
// path to the exit keep the full set; canReachExit distinguishes them.
func (g *graph) postDominators() []bitset {
	pdom := make([]bitset, g.n+1)
	for v := range pdom {
		pdom[v] = newBitset(g.n + 1)
		if v == g.exit() {
			pdom[v].set(v)
		} else {
			pdom[v].fill()
		}
	}
	tmp := newBitset(g.n + 1)
	for changed := true; changed; {
		changed = false
		for v := g.n - 1; v >= 0; v-- {
			tmp.fill()
			any := false
			for _, t := range g.succ[v] {
				tmp.intersect(pdom[t])
				any = true
			}
			if !any {
				continue
			}
			tmp.set(v)
			if !tmp.equal(pdom[v]) {
				pdom[v].copyFrom(tmp)
				changed = true
			}
		}
	}
	return pdom
}

// canReachExit returns, for every node, whether some path reaches the
// virtual exit.
func (g *graph) canReachExit() bitset {
	preds := g.pred()
	seen := newBitset(g.n + 1)
	stack := []int{g.exit()}
	seen.set(g.exit())
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range preds[v] {
			if !seen.has(p) {
				seen.set(p)
				stack = append(stack, p)
			}
		}
	}
	return seen
}

// ipdom extracts the immediate post-dominator of v from the
// post-dominator sets: the strict post-dominator p whose own set equals
// v's strict set ({p} plus p's strict post-dominators). Returns -1 when
// v has no strict post-dominator or no path to the exit.
func ipdom(v int, pdom []bitset, reachesExit bitset) int {
	if !reachesExit.has(v) {
		return -1
	}
	n := len(pdom) - 1 // node count - 1 == exit id
	strict := newBitset(n + 1)
	strict.copyFrom(pdom[v])
	strict.clear(v)
	want := strict.count()
	if want == 0 {
		return -1
	}
	for p := 0; p <= n; p++ {
		if p != v && strict.has(p) && pdom[p].count() == want && pdom[p].equal(strict) {
			return p
		}
	}
	return -1
}
