// Package progcheck statically verifies kernel programs before they
// reach the simt engine, and lints the simulator's own Go source for
// determinism hazards (see srclint.go).
//
// Every architecture in this repo is expressed as a hand-authored
// basic-block SIMT program whose correctness rests on hand-declared
// invariants: BlockInfo.Reconv must be a true reconvergence point,
// declared MemInsts must bound the accesses Step emits, successors must
// be in range. The engine trusts all of it; a wrong declaration does
// not crash — it silently skews SIMD efficiency, cycle counts and the
// paper's figures. This package makes the invariants checkable:
//
//   - Verify runs the static checks over a kernel's block table and its
//     declared control-flow graph (simt.StaticCFG): successor ranges,
//     reachability, termination (every block can reach BlockExit),
//     memory budgets, and reconvergence points validated against an
//     independently computed immediate post-dominator tree.
//   - Explore (explore.go) drives Kernel.Step on a scratch instance and
//     cross-checks every observed transition and memory access against
//     the declared program.
//
// Kernel constructors and the harness call Verify at build time;
// cmd/drslint runs both passes across all registered kernels x scenes.
package progcheck

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/simt"
)

// Rule identifies one verifier diagnostic class.
type Rule string

// Program verification rules.
const (
	// RuleNoBlocks: the kernel declares an empty block table.
	RuleNoBlocks Rule = "no-blocks"
	// RuleEntryRange: the entry block id is out of range.
	RuleEntryRange Rule = "entry-range"
	// RuleInstCount: a block declares neither ALU nor memory
	// instructions (the engine would reject it).
	RuleInstCount Rule = "inst-count"
	// RuleMemBudget: a block declares more memory instruction slots than
	// simt.MaxMemPerStep, the capacity of a StepResult.
	RuleMemBudget Rule = "mem-budget"
	// RuleSrcOps: a block declares a negative or implausibly large
	// per-instruction source operand count.
	RuleSrcOps Rule = "src-ops"
	// RuleSuccRange: a declared successor is neither a block id nor
	// simt.BlockExit.
	RuleSuccRange Rule = "succ-range"
	// RuleNoSucc: a block declares no successors at all; a warp entering
	// it could never leave.
	RuleNoSucc Rule = "no-successors"
	// RuleUnreachable: a block cannot be reached from the entry.
	RuleUnreachable Rule = "unreachable"
	// RuleNoExitPath: no path from the block ever retires a lane; warps
	// reaching it would spin forever.
	RuleNoExitPath Rule = "no-exit-path"
	// RuleReconvRange: a divergent block's declared Reconv is out of
	// range.
	RuleReconvRange Rule = "reconv-range"
	// RuleReconvMissing: a block can diverge but declares no
	// reconvergence point (Reconv left at the zero value, and block 0 is
	// not a valid reconvergence point for it).
	RuleReconvMissing Rule = "reconv-missing"
	// RuleReconvIPDOM: a divergent block's declared Reconv is neither
	// the computed immediate post-dominator nor a dominating loop
	// header.
	RuleReconvIPDOM Rule = "reconv-ipdom"
	// RuleGateUnserved: a block is Gated but the attached architecture
	// installs no issue gate; the engine would silently run the block
	// ungated.
	RuleGateUnserved Rule = "gate-unserved"
	// RuleTagUnserved: a block carries an instruction tag the attached
	// architecture gives no meaning to, skewing the utilization
	// breakdown.
	RuleTagUnserved Rule = "tag-unserved"
	// RuleEdgeUndeclared (exploration): Step emitted a successor the
	// static CFG does not declare.
	RuleEdgeUndeclared Rule = "edge-undeclared"
	// RuleMemOverflow (exploration): Step emitted more memory accesses
	// than the block declares in MemInsts.
	RuleMemOverflow Rule = "mem-overflow"
)

// Finding is one verifier diagnostic.
type Finding struct {
	// Kernel names the program the finding is about (may be empty when
	// the caller did not label it).
	Kernel string `json:"kernel,omitempty"`
	// Rule classifies the diagnostic.
	Rule Rule `json:"rule"`
	// Block is the offending block id, or -1 for program-level findings.
	Block int `json:"block"`
	// Msg is the human-readable diagnostic.
	Msg string `json:"msg"`
}

func (f Finding) String() string {
	where := ""
	if f.Kernel != "" {
		where = f.Kernel + ": "
	}
	return fmt.Sprintf("%s%s: %s", where, f.Rule, f.Msg)
}

// Caps describes what the attached architecture can service, for the
// checks that depend on the kernel/architecture pairing. The zero value
// is a plain engine run with no hooks.
type Caps struct {
	// Gate is set when the architecture installs an issue gate
	// (simt.Hooks.Gate), giving Gated blocks their stall semantics.
	Gate bool
	// CtrlTag is set when the architecture gives TagCtrl instructions
	// meaning (the DRS rdctrl accounting).
	CtrlTag bool
}

// maxSrcOps is the sanity bound on declared per-instruction source
// operands (hardware reads at most a handful of operands per
// instruction; the register file model collects them one bank access
// each).
const maxSrcOps = 8

// MaxWarpWidth is the widest warp the verified engine supports: lane
// activity is a uint32 mask throughout (vote, ballot, divergence,
// retirement), and every property progcheck explores about Step
// behavior assumes at most 32 lanes. Device-model validation
// (internal/archconfig) cross-checks declared warp widths against this
// cap so a config cannot describe a machine the engine would silently
// mis-simulate.
const MaxWarpWidth = 32

// blockName formats "block 3 (leaf)" for diagnostics.
func blockName(blocks []simt.BlockInfo, b int) string {
	if b >= 0 && b < len(blocks) && blocks[b].Name != "" {
		return fmt.Sprintf("block %d (%s)", b, blocks[b].Name)
	}
	return fmt.Sprintf("block %d", b)
}

// nodeName formats a graph node for diagnostics, naming the virtual
// exit node.
func nodeName(blocks []simt.BlockInfo, node int) string {
	if node == len(blocks) {
		return "exit"
	}
	return blockName(blocks, node)
}

// Verify runs every static check over the kernel's program: the block
// table invariants, the architecture pairing in caps, and — when the
// kernel declares its control-flow graph via simt.StaticCFG — the CFG
// checks (successor ranges, reachability, termination, reconvergence
// points against the computed immediate post-dominator tree). The
// kernel is not executed. Findings come back sorted by block id.
func Verify(name string, k simt.Kernel, caps Caps) []Finding {
	var fs []Finding
	add := func(rule Rule, block int, format string, args ...any) {
		fs = append(fs, Finding{Kernel: name, Rule: rule, Block: block, Msg: fmt.Sprintf(format, args...)})
	}

	blocks := k.Blocks()
	if len(blocks) == 0 {
		add(RuleNoBlocks, -1, "kernel declares no blocks")
		return fs
	}
	entry := k.Entry()
	if entry < 0 || entry >= len(blocks) {
		add(RuleEntryRange, -1, "entry block %d out of range [0,%d)", entry, len(blocks))
		return fs
	}

	for b, info := range blocks {
		if info.Insts <= 0 && info.MemInsts <= 0 {
			add(RuleInstCount, b, "%s declares no instructions (Insts=%d, MemInsts=%d)",
				blockName(blocks, b), info.Insts, info.MemInsts)
		}
		if info.MemInsts < 0 || info.MemInsts > simt.MaxMemPerStep {
			add(RuleMemBudget, b, "%s declares %d memory instruction slots; a step carries at most %d",
				blockName(blocks, b), info.MemInsts, simt.MaxMemPerStep)
		}
		if info.SrcOps < 0 || info.SrcOps > maxSrcOps {
			add(RuleSrcOps, b, "%s declares %d source operands per instruction; expected 0..%d",
				blockName(blocks, b), info.SrcOps, maxSrcOps)
		}
		if info.Gated && !caps.Gate {
			add(RuleGateUnserved, b, "%s is gated but the architecture installs no issue gate; it would run ungated",
				blockName(blocks, b))
		}
		if info.Tag == simt.TagCtrl && !caps.CtrlTag {
			add(RuleTagUnserved, b, "%s is tagged as a control (rdctrl) block but the architecture has no control instruction accounting",
				blockName(blocks, b))
		}
	}

	if cfg, ok := k.(simt.StaticCFG); ok {
		fs = append(fs, verifyCFG(name, blocks, entry, cfg)...)
	}

	sort.SliceStable(fs, func(i, j int) bool { return fs[i].Block < fs[j].Block })
	return fs
}

// verifyCFG checks the declared control-flow graph.
func verifyCFG(name string, blocks []simt.BlockInfo, entry int, cfg simt.StaticCFG) []Finding {
	var fs []Finding
	add := func(rule Rule, block int, format string, args ...any) {
		fs = append(fs, Finding{Kernel: name, Rule: rule, Block: block, Msg: fmt.Sprintf(format, args...)})
	}

	n := len(blocks)
	succs := make([][]int, n)
	rangeOK := true
	for b := 0; b < n; b++ {
		succs[b] = cfg.Successors(b)
		if len(succs[b]) == 0 {
			add(RuleNoSucc, b, "%s declares no successors; a warp entering it could never leave",
				blockName(blocks, b))
			rangeOK = false
			continue
		}
		for _, t := range succs[b] {
			if t != simt.BlockExit && (t < 0 || t >= n) {
				add(RuleSuccRange, b, "%s declares successor %d; want a block in [0,%d) or BlockExit",
					blockName(blocks, b), t, n)
				rangeOK = false
			}
		}
	}
	if !rangeOK {
		// The graph analyses below assume a well-formed edge set; stop at
		// the structural errors.
		return fs
	}

	g := newGraph(n, entry, succs, simt.BlockExit)
	reach := g.reachableFrom(entry)
	for b := 0; b < n; b++ {
		if !reach.has(b) {
			add(RuleUnreachable, b, "%s is unreachable from entry %s",
				blockName(blocks, b), blockName(blocks, entry))
		}
	}
	reachesExit := g.canReachExit()
	for b := 0; b < n; b++ {
		if reach.has(b) && !reachesExit.has(b) {
			add(RuleNoExitPath, b, "no path from %s ever retires a lane (BlockExit unreachable); warps reaching it spin forever",
				blockName(blocks, b))
		}
	}

	pdom := g.postDominators()
	dom := g.dominators()
	for b := 0; b < n; b++ {
		if !reach.has(b) {
			continue
		}
		// The engine retires exiting lanes before divergence handling, so
		// only blocks with two or more distinct non-exit successors can
		// diverge.
		var nonExit []int
		for _, t := range g.succ[b] {
			if t != g.exit() {
				nonExit = append(nonExit, t)
			}
		}
		if len(nonExit) < 2 {
			continue
		}
		r := blocks[b].Reconv
		if r < 0 || r >= n {
			add(RuleReconvRange, b, "%s can diverge to %s but declares reconvergence block %d, out of range [0,%d)",
				blockName(blocks, b), succList(blocks, nonExit), r, n)
			continue
		}
		ip := ipdom(b, pdom, reachesExit)
		if ip >= 0 && ip < n && r == ip {
			continue // textbook: declared Reconv is the immediate post-dominator
		}
		// Loop-header reconvergence: persistent-thread kernels reconverge
		// at a dominating loop header (often the block itself) that every
		// divergent path re-enters — Aila's terminated-ray replacement
		// merges refilled lanes back at the inner loop, and the while-if
		// kernel's bodies all return to rdctrl. Sound because each pushed
		// stack entry runs until its pc reaches the header (or its lanes
		// retire, which removes them from every entry).
		headerOK := dom[b].has(r)
		if headerOK {
			for _, t := range nonExit {
				if !g.reachableFrom(t).has(r) {
					headerOK = false
					break
				}
			}
		}
		if headerOK {
			continue
		}
		ipName := "none (paths only merge at thread exit)"
		if ip >= 0 {
			ipName = nodeName(blocks, ip)
		}
		if r == 0 && ip != 0 {
			add(RuleReconvMissing, b, "%s can diverge to %s but declares no reconvergence point (Reconv is the zero value and block 0 is not a valid reconvergence point here); computed immediate post-dominator: %s",
				blockName(blocks, b), succList(blocks, nonExit), ipName)
		} else {
			add(RuleReconvIPDOM, b, "%s declares reconvergence at %s, but that is neither the computed immediate post-dominator (%s) nor a dominating loop header reachable from all successors",
				blockName(blocks, b), blockName(blocks, r), ipName)
		}
	}
	return fs
}

// succList formats a successor set for diagnostics.
func succList(blocks []simt.BlockInfo, succs []int) string {
	parts := make([]string, len(succs))
	for i, t := range succs {
		parts[i] = blockName(blocks, t)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// MustVerify panics if Verify reports findings; kernel constructors
// call it so a malformed program fails at build time rather than
// corrupting a simulation. The simulation harness exposes an opt-out
// (harness.Options.SkipProgCheck) for deliberately broken test
// programs, which are hand-built rather than constructed.
func MustVerify(name string, k simt.Kernel, caps Caps) {
	if fs := Verify(name, k, caps); len(fs) > 0 {
		msgs := make([]string, len(fs))
		for i, f := range fs {
			msgs[i] = f.String()
		}
		panic("progcheck: malformed kernel program:\n  " + strings.Join(msgs, "\n  "))
	}
}
