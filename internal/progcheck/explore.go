package progcheck

import (
	"fmt"

	"repro/internal/simt"
)

// ExploreConfig bounds the dynamic exploration of a kernel program.
type ExploreConfig struct {
	// MaxStepsPerSlot bounds the Step calls made for one slot (zero
	// means the default of 4096).
	MaxStepsPerSlot int
	// MaxTotalSteps bounds the Step calls across all slots (zero means
	// the default of 1 << 20).
	MaxTotalSteps int
	// Slots is the number of kernel slots to drive (zero means 64; the
	// explorer stops early when the total budget runs out).
	Slots int
}

func (c ExploreConfig) withDefaults() ExploreConfig {
	if c.MaxStepsPerSlot <= 0 {
		c.MaxStepsPerSlot = 4096
	}
	if c.MaxTotalSteps <= 0 {
		c.MaxTotalSteps = 1 << 20
	}
	if c.Slots <= 0 {
		c.Slots = 64
	}
	return c
}

// Coverage reports what the exploration observed, so callers can judge
// how much of the declared program the run exercised.
type Coverage struct {
	// Steps is the number of Step calls made.
	Steps int
	// BlocksVisited counts distinct blocks entered.
	BlocksVisited int
	// EdgesObserved counts distinct (block, successor) transitions.
	EdgesObserved int
}

// Explore drives Kernel.Step on a scratch kernel instance — one slot at
// a time, from the entry block, following each slot's successor chain —
// and cross-checks every observed transition against the declared
// program: successors must be declared in the static CFG, and emitted
// memory access counts must fit the block's MemInsts budget. The kernel
// instance is consumed (its pool drains and its contexts mutate); build
// a dedicated instance for exploration.
//
// Exploration is bounded, not exhaustive: it proves presence of
// violations, never absence. Distinct findings are deduplicated by
// (rule, block, successor).
func Explore(name string, k simt.Kernel, cfg ExploreConfig) ([]Finding, Coverage) {
	cfg = cfg.withDefaults()
	blocks := k.Blocks()
	n := len(blocks)
	var cov Coverage
	if n == 0 {
		return []Finding{{Kernel: name, Rule: RuleNoBlocks, Block: -1, Msg: "kernel declares no blocks"}}, cov
	}

	// Declared successor sets, when the kernel provides them.
	var declared []map[int]bool
	if scfg, ok := k.(simt.StaticCFG); ok {
		declared = make([]map[int]bool, n)
		for b := 0; b < n; b++ {
			declared[b] = make(map[int]bool)
			for _, t := range scfg.Successors(b) {
				declared[b][t] = true
			}
		}
	}

	var fs []Finding
	seen := make(map[Finding]bool)
	add := func(rule Rule, block int, format string, args ...any) {
		f := Finding{Kernel: name, Rule: rule, Block: block, Msg: fmt.Sprintf(format, args...)}
		if !seen[f] {
			seen[f] = true
			fs = append(fs, f)
		}
	}

	visited := make([]bool, n)
	edges := make(map[[2]int]bool)
	entry := k.Entry()
	if entry < 0 || entry >= n {
		return []Finding{{Kernel: name, Rule: RuleEntryRange, Block: -1,
			Msg: fmt.Sprintf("entry block %d out of range [0,%d)", entry, n)}}, cov
	}

	// Clamp to the kernel's slot count when it exposes one (all kernels
	// in this repo do); stepping a slot the kernel never allocated would
	// panic inside Step.
	if sized, ok := k.(interface{ NumSlots() int }); ok {
		if ns := sized.NumSlots(); cfg.Slots > ns {
			cfg.Slots = ns
		}
	}

	var res simt.StepResult
	total := 0
	for slot := 0; slot < cfg.Slots && total < cfg.MaxTotalSteps; slot++ {
		block := entry
		for step := 0; step < cfg.MaxStepsPerSlot && total < cfg.MaxTotalSteps; step++ {
			res = simt.StepResult{}
			k.Step(int32(slot), block, &res)
			total++
			if !visited[block] {
				visited[block] = true
				cov.BlocksVisited++
			}

			info := &blocks[block]
			if res.NMem < 0 || res.NMem > simt.MaxMemPerStep {
				add(RuleMemOverflow, block, "%s emitted NMem=%d; a step carries at most %d accesses",
					blockName(blocks, block), res.NMem, simt.MaxMemPerStep)
			} else if res.NMem > info.MemInsts {
				add(RuleMemOverflow, block, "%s emitted %d memory accesses but declares MemInsts=%d; the engine would drop the excess",
					blockName(blocks, block), res.NMem, info.MemInsts)
			}

			next := res.Next
			if next != simt.BlockExit && (next < 0 || next >= n) {
				add(RuleSuccRange, block, "%s stepped to successor %d, out of range [0,%d)",
					blockName(blocks, block), next, n)
				break
			}
			if declared != nil && !declared[block][next] {
				add(RuleEdgeUndeclared, block, "%s stepped to %s, an edge the static CFG does not declare",
					blockName(blocks, block), nodeNameOrExit(blocks, next))
			}
			if !edges[[2]int{block, next}] {
				edges[[2]int{block, next}] = true
				cov.EdgesObserved++
			}
			if next == simt.BlockExit {
				break
			}
			block = next
		}
	}
	cov.Steps = total
	return fs, cov
}

// nodeNameOrExit formats a successor for diagnostics, including the
// BlockExit pseudo-target.
func nodeNameOrExit(blocks []simt.BlockInfo, t int) string {
	if t == simt.BlockExit {
		return "BlockExit"
	}
	return blockName(blocks, t)
}
