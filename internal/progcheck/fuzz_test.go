package progcheck

import (
	"reflect"
	"testing"

	"repro/internal/simt"
)

// fuzzKernel is a kernel program decoded from fuzz bytes: an arbitrary
// (usually malformed) block table and declared CFG. Verify never calls
// Step, so the semantics are empty.
type fuzzKernel struct {
	blocks []simt.BlockInfo
	succs  [][]int
	entry  int
}

func (k *fuzzKernel) Blocks() []simt.BlockInfo                         { return k.blocks }
func (k *fuzzKernel) Entry() int                                       { return k.entry }
func (k *fuzzKernel) Step(slot int32, block int, res *simt.StepResult) {}
func (k *fuzzKernel) Successors(block int) []int                       { return k.succs[block] }

// decodeKernel builds a bounded fuzz kernel: up to 12 blocks, each with
// instruction counts, memory budgets, reconvergence points, gating and
// tags drawn from ranges that straddle every validity boundary, and up
// to 3 declared successors per block (including out-of-range ids and
// BlockExit).
func decodeKernel(data []byte) *fuzzKernel {
	if len(data) == 0 {
		return &fuzzKernel{entry: 0}
	}
	n := int(data[0]) % 13 // 0..12 blocks; 0 exercises RuleNoBlocks
	data = data[1:]
	k := &fuzzKernel{
		blocks: make([]simt.BlockInfo, n),
		succs:  make([][]int, n),
	}
	take := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	for b := 0; b < n; b++ {
		k.blocks[b] = simt.BlockInfo{
			Insts:    int(take()%6) - 1,         // -1..4
			MemInsts: int(take()%8) - 1,         // -1..6 (budget is 4)
			SrcOps:   int(take()%12) - 1,        // -1..10 (bound is 8)
			Reconv:   int(take()%byte(n+3)) - 2, // -2..n
			Gated:    take()&1 == 1,
			Tag:      simt.Tag(take() % 4),
		}
		ns := int(take()) % 4 // 0..3 successors; 0 exercises RuleNoSucc
		for s := 0; s < ns; s++ {
			// -2..n+1: BlockExit (-1), valid ids, and out-of-range on both
			// sides.
			k.succs[b] = append(k.succs[b], int(take()%byte(n+4))-2)
		}
	}
	k.entry = int(take()%byte(n+3)) - 1 // -1..n+1
	return k
}

// FuzzVerify drives the static kernel verifier with arbitrary block
// tables and CFGs. The verifier's contract: never panic or hang on any
// program (it runs on hand-authored tables before the engine trusts
// them), findings sorted by block with ids in [-1, numBlocks), stable
// across calls, and monotone in capabilities (granting an architecture
// capability can only remove findings, never add them).
func FuzzVerify(f *testing.F) {
	f.Add([]byte{0})                            // no blocks
	f.Add([]byte{1, 2, 1, 2, 2, 0, 0, 1, 0, 0}) // single self-loop block
	// Well-formed diamond: 0 -> {1,2} -> 3 -> exit, reconverging at 3.
	f.Add([]byte{4,
		2, 1, 2, 5, 0, 0, 2, 2, 3, // block 0: succs 1,2 (values are +2-biased)
		2, 0, 2, 5, 0, 0, 1, 5, // block 1: succ 3
		2, 0, 2, 5, 0, 0, 1, 5, // block 2: succ 3
		2, 0, 2, 5, 0, 0, 1, 1, // block 3: succ exit
		1})
	f.Add([]byte{3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		k := decodeKernel(data)
		fs := Verify("fuzz", k, Caps{})

		for i, fd := range fs {
			if fd.Block < -1 || fd.Block >= len(k.blocks) {
				t.Fatalf("finding %d: block id %d out of range [-1,%d)", i, fd.Block, len(k.blocks))
			}
			if i > 0 && fs[i-1].Block > fd.Block {
				t.Fatalf("findings not sorted by block: %d after %d", fd.Block, fs[i-1].Block)
			}
			if fd.Msg == "" || fd.Rule == "" {
				t.Fatalf("finding %d has empty rule or message: %+v", i, fd)
			}
		}

		again := Verify("fuzz", k, Caps{})
		if !reflect.DeepEqual(fs, again) {
			t.Fatalf("verifier not deterministic: %v vs %v", fs, again)
		}

		// Capabilities only relax checks: every finding under full caps
		// must also be reported under zero caps.
		full := Verify("fuzz", k, Caps{Gate: true, CtrlTag: true})
		if len(full) > len(fs) {
			t.Fatalf("granting capabilities added findings: %d with caps vs %d without", len(full), len(fs))
		}
		for _, fd := range full {
			if fd.Rule == RuleGateUnserved || fd.Rule == RuleTagUnserved {
				t.Fatalf("capability-dependent finding survived full caps: %+v", fd)
			}
		}

		// MustVerify must be consistent with Verify: panic iff findings.
		defer func() {
			if r := recover(); (r != nil) != (len(fs) > 0) {
				t.Fatalf("MustVerify panic=%v but Verify returned %d findings", r != nil, len(fs))
			}
		}()
		MustVerify("fuzz", k, Caps{})
	})
}
