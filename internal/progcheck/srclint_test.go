package progcheck

import "testing"

func findCheck(fs []SrcFinding, c SrcCheck) *SrcFinding {
	for i := range fs {
		if fs[i].Check == c {
			return &fs[i]
		}
	}
	return nil
}

func lint(t *testing.T, src string) []SrcFinding {
	t.Helper()
	fs, err := LintSource("fixture.go", src)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestLintMapRangeLocalMake(t *testing.T) {
	fs := lint(t, `package p
func f() int {
	m := make(map[int]int)
	best := 0
	for k := range m {
		if k > best {
			best = k
		}
	}
	return best
}
`)
	if findCheck(fs, CheckMapRange) == nil {
		t.Fatalf("map range over local make(map) not flagged: %v", fs)
	}
}

func TestLintMapRangeStructField(t *testing.T) {
	fs := lint(t, `package p
type sched struct {
	queues map[int][]int
}
func (s *sched) pick() int {
	for t := range s.queues {
		return t
	}
	return -1
}
`)
	if findCheck(fs, CheckMapRange) == nil {
		t.Fatalf("map range over struct field not flagged: %v", fs)
	}
}

func TestLintMapRangeAllowed(t *testing.T) {
	fs := lint(t, `package p
func f() int {
	m := make(map[int]int)
	n := 0
	//drslint:allow map-range -- pure count, order-insensitive
	for range m {
		n++
	}
	return n
}
`)
	if f := findCheck(fs, CheckMapRange); f != nil {
		t.Fatalf("allowed map range still flagged: %v", f)
	}
}

func TestLintSliceRangeNotFlagged(t *testing.T) {
	fs := lint(t, `package p
func f(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}
`)
	if len(fs) != 0 {
		t.Fatalf("slice range flagged: %v", fs)
	}
}

func TestLintWallClock(t *testing.T) {
	fs := lint(t, `package p
import "time"
func f() int64 {
	return time.Now().UnixNano()
}
`)
	if findCheck(fs, CheckWallClock) == nil {
		t.Fatalf("time.Now not flagged: %v", fs)
	}
}

func TestLintGlobalRand(t *testing.T) {
	fs := lint(t, `package p
import "math/rand"
func f() int {
	return rand.Intn(10)
}
`)
	if findCheck(fs, CheckGlobalRand) == nil {
		t.Fatalf("global rand.Intn not flagged: %v", fs)
	}
}

func TestLintSeededRandNotFlagged(t *testing.T) {
	fs := lint(t, `package p
import "math/rand"
func f() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(10)
}
`)
	if f := findCheck(fs, CheckGlobalRand); f != nil {
		t.Fatalf("seeded rand constructor flagged: %v", f)
	}
}

func TestLintGoroutineCapturedWrite(t *testing.T) {
	fs := lint(t, `package p
func f() int {
	total := 0
	done := make(chan struct{})
	go func() {
		total = 42
		close(done)
	}()
	<-done
	return total
}
`)
	if findCheck(fs, CheckGoCapturedWrite) == nil {
		t.Fatalf("goroutine captured write not flagged: %v", fs)
	}
}

func TestLintGoroutineIndexWriteNotFlagged(t *testing.T) {
	fs := lint(t, `package p
import "sync"
func f(n int) []int {
	out := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = i * i
		}(i)
	}
	wg.Wait()
	return out
}
`)
	if f := findCheck(fs, CheckGoCapturedWrite); f != nil {
		t.Fatalf("disjoint index write flagged: %v", f)
	}
}

func TestLintGoroutineLocalWriteNotFlagged(t *testing.T) {
	fs := lint(t, `package p
func f() {
	go func() {
		n := 0
		n++
		_ = n
	}()
}
`)
	if f := findCheck(fs, CheckGoCapturedWrite); f != nil {
		t.Fatalf("goroutine-local write flagged: %v", f)
	}
}

func TestLintSharedL2ConstructorInConcurrentFile(t *testing.T) {
	fs := lint(t, `package p
import (
	"sync"

	"repro/internal/memsys"
)
func run(n int) {
	l2 := memsys.NewL2(memsys.DefaultConfig())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l2.Access(0)
		}()
	}
	wg.Wait()
}
`)
	f := findCheck(fs, CheckSharedL2)
	if f == nil {
		t.Fatalf("memsys.NewL2 in goroutine-spawning file not flagged: %v", fs)
	}
	if f.Line != 8 {
		t.Errorf("finding at line %d, want 8 (the NewL2 call): %v", f.Line, f)
	}
}

func TestLintSharedL2AccessOnStructField(t *testing.T) {
	fs := lint(t, `package p
import "repro/internal/memsys"
type device struct {
	l2 *memsys.L2
}
func (d *device) run() {
	done := make(chan struct{})
	go func() {
		d.l2.Access(0x40)
		close(done)
	}()
	<-done
}
`)
	if findCheck(fs, CheckSharedL2) == nil {
		t.Fatalf("L2 field access in goroutine-spawning file not flagged: %v", fs)
	}
}

func TestLintSharedL2SequentialFileNotFlagged(t *testing.T) {
	fs := lint(t, `package p
import "repro/internal/memsys"
func miss() bool {
	l2 := memsys.NewL2(memsys.DefaultConfig())
	return !l2.Access(0)
}
`)
	if f := findCheck(fs, CheckSharedL2); f != nil {
		t.Fatalf("free-running L2 in sequential file flagged: %v", f)
	}
}

func TestLintSharedL2Allowed(t *testing.T) {
	fs := lint(t, `package p
import "repro/internal/memsys"
func run() *memsys.L2 {
	go func() {}()
	//drslint:allow shared-l2 -- single consumer, documented exception
	return memsys.NewL2(memsys.DefaultConfig())
}
`)
	if f := findCheck(fs, CheckSharedL2); f != nil {
		t.Fatalf("allowed shared-l2 use still flagged: %v", f)
	}
}

func TestLintSharedL2OrderedPortNotFlagged(t *testing.T) {
	fs := lint(t, `package p
import "repro/internal/memsys"
func run(n int) *memsys.OrderedL2 {
	o := memsys.NewOrderedL2(memsys.DefaultConfig(), n)
	go func() {}()
	o.Drain()
	return o
}
`)
	if f := findCheck(fs, CheckSharedL2); f != nil {
		t.Fatalf("ordered L2 flagged: %v", f)
	}
}

func TestLintSharedL2OtherPackageAccessNotFlagged(t *testing.T) {
	// A method named Access on an unrelated type must not trip the check.
	fs := lint(t, `package p
type gate struct{}
func (gate) Access(addr uint64) bool { return true }
func run() {
	g := gate{}
	go func() {}()
	g.Access(0)
}
`)
	if f := findCheck(fs, CheckSharedL2); f != nil {
		t.Fatalf("unrelated Access method flagged: %v", f)
	}
}

// TestLintRepoClean locks satellite (a): the shipped simulator sources
// carry no unsuppressed determinism findings.
func TestLintRepoClean(t *testing.T) {
	fs, err := LintDirs("..")
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("internal/... has determinism findings:\n%v", fs)
	}
}

func TestLintHotpathMapMake(t *testing.T) {
	fs := lint(t, `package p

//drslint:hotpath

func resolve() {
	seen := make(map[int]uint32, 4)
	seen[1] = 2
	_ = seen
}
`)
	f := findCheck(fs, CheckHotPathAlloc)
	if f == nil {
		t.Fatalf("make(map) in hotpath file not flagged: %v", fs)
	}
	if f.Line != 6 {
		t.Errorf("flagged line %d, want 6", f.Line)
	}
}

func TestLintHotpathMapLiteral(t *testing.T) {
	fs := lint(t, `package p

//drslint:hotpath

func f() map[int]int { return map[int]int{1: 2} }
`)
	if findCheck(fs, CheckHotPathAlloc) == nil {
		t.Fatalf("map literal in hotpath file not flagged: %v", fs)
	}
}

func TestLintHotpathFreshSliceAppend(t *testing.T) {
	fs := lint(t, `package p

//drslint:hotpath

func f(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

func g(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
`)
	var lines []int
	for _, f := range fs {
		if f.Check == CheckHotPathAlloc {
			lines = append(lines, f.Line)
		}
	}
	if len(lines) != 2 {
		t.Fatalf("want 2 fresh-slice append findings (make'd and var-nil), got %v: %v", lines, fs)
	}
}

// The pooled idiom — reslice a struct field to length zero, append,
// store back — is exactly what hot code should do and must pass.
func TestLintHotpathPooledResliceNotFlagged(t *testing.T) {
	fs := lint(t, `package p

//drslint:hotpath

type warp struct {
	uniqBuf []int
	stack   []int
}

func (w *warp) resolve(targets []int) {
	uniq := w.uniqBuf[:0]
	for _, t := range targets {
		uniq = append(uniq, t)
	}
	w.uniqBuf = uniq
	w.stack = append(w.stack, len(uniq))
}
`)
	if f := findCheck(fs, CheckHotPathAlloc); f != nil {
		t.Fatalf("pooled reslice/field append flagged: %v", f)
	}
}

func TestLintHotpathUntaggedFileNotFlagged(t *testing.T) {
	fs := lint(t, `package p

func f() map[int]int {
	out := make([]int, 0, 4)
	out = append(out, 1)
	_ = out
	return make(map[int]int)
}
`)
	if f := findCheck(fs, CheckHotPathAlloc); f != nil {
		t.Fatalf("untagged file flagged: %v", f)
	}
}

func TestLintHotpathAllowed(t *testing.T) {
	fs := lint(t, `package p

//drslint:hotpath

func launch() {
	//drslint:allow hotpath-alloc -- runs once per kernel launch, not per cycle
	m := make(map[int]int)
	_ = m
}
`)
	if f := findCheck(fs, CheckHotPathAlloc); f != nil {
		t.Fatalf("allowed hotpath alloc still flagged: %v", f)
	}
}

// Constructor-style make([]T, n) without append growth is allocation
// but not churn-by-growth; the check targets maps and append growth.
func TestLintHotpathPlainMakeSliceNotFlagged(t *testing.T) {
	fs := lint(t, `package p

//drslint:hotpath

func launchAll(n int) []int32 {
	slots := make([]int32, n)
	for i := range slots {
		slots[i] = int32(i)
	}
	return slots
}
`)
	if f := findCheck(fs, CheckHotPathAlloc); f != nil {
		t.Fatalf("make([]T, n) without growth flagged: %v", f)
	}
}

// Directive-parsing edge cases.

func TestLintAllowMultipleChecksOneLine(t *testing.T) {
	// One directive naming two checks suppresses both on the next line.
	fs := lint(t, `package p
import "time"
func f() int64 {
	m := make(map[int]int)
	var t0 int64
	//drslint:allow map-range wallclock -- seed helper: order-insensitive, stamps a log only
	for range m { t0 = time.Now().UnixNano() }
	return t0
}
`)
	if f := findCheck(fs, CheckMapRange); f != nil {
		t.Errorf("map-range not suppressed by multi-check allow: %v", f)
	}
	if f := findCheck(fs, CheckWallClock); f != nil {
		t.Errorf("wallclock not suppressed by multi-check allow: %v", f)
	}
}

func TestLintAllowTrailingOnStatementLine(t *testing.T) {
	// The directive as a trailing comment on the flagged line itself.
	fs := lint(t, `package p
func f() int {
	m := make(map[int]int)
	n := 0
	for range m { n++ } //drslint:allow map-range -- pure count, order-insensitive
	return n
}
`)
	if f := findCheck(fs, CheckMapRange); f != nil {
		t.Errorf("trailing same-line allow not honored: %v", f)
	}
}

func TestLintAllowReasonWithParenthetical(t *testing.T) {
	// Free text after -- is ignored entirely, including further dashes.
	fs := lint(t, `package p
func f() int {
	m := make(map[int]int)
	n := 0
	//drslint:allow map-range -- order-insensitive (see DESIGN -- static analysis)
	for range m { n++ }
	return n
}
`)
	if f := findCheck(fs, CheckMapRange); f != nil {
		t.Errorf("allow with parenthetical reason not honored: %v", f)
	}
}

func TestLintAllowInBlockCommentInert(t *testing.T) {
	// The grammar is line comments only: a /* */ block mentioning the
	// directive must not suppress anything.
	fs := lint(t, `package p
func f() int {
	m := make(map[int]int)
	n := 0
	/* //drslint:allow map-range -- not a real directive */
	for range m { n++ }
	return n
}
`)
	if findCheck(fs, CheckMapRange) == nil {
		t.Fatalf("block-comment pseudo-directive suppressed the finding: %v", fs)
	}
}

func TestLintHotpathInBlockCommentInert(t *testing.T) {
	fs := lint(t, `package p
/* //drslint:hotpath */
func f() map[int]int { return make(map[int]int) }
`)
	if f := findCheck(fs, CheckHotPathAlloc); f != nil {
		t.Fatalf("block-comment hotpath tag enabled the check: %v", f)
	}
}

// Function-granular hotpath directives (doc comment) and the extended
// wall-clock surface.

func TestLintHotpathFunctionGranular(t *testing.T) {
	// A doc-comment directive marks only its function, not the file.
	fs := lint(t, `package p

// step is per-cycle.
//
//drslint:hotpath
func step() map[int]int { return make(map[int]int) }

func setup() map[int]int { return make(map[int]int) }
`)
	var lines []int
	for _, f := range fs {
		if f.Check == CheckHotPathAlloc {
			lines = append(lines, f.Line)
		}
	}
	if len(lines) != 1 || lines[0] != 6 {
		t.Fatalf("want exactly one hotpath-alloc finding at line 6 (step only), got lines %v: %v", lines, fs)
	}
}

func TestLintWallClockTimerSurface(t *testing.T) {
	fs := lint(t, `package p
import "time"
func f(d time.Duration) {
	_ = time.Since(time.Now())
	t := time.NewTimer(d)
	defer t.Stop()
	<-time.Tick(d)
}
`)
	var lines []int
	for _, f := range fs {
		if f.Check == CheckWallClock {
			lines = append(lines, f.Line)
		}
	}
	// time.Since, time.Now, time.NewTimer, time.Tick: 4 sites.
	if len(lines) != 4 {
		t.Fatalf("want 4 wallclock findings (Since, Now, NewTimer, Tick), got %v: %v", lines, fs)
	}
}
