package progcheck

import (
	"strings"
	"testing"

	"repro/internal/simt"
)

// fakeKernel is a synthetic kernel for verifier fixtures: a static
// block table, a declared CFG, and a scripted Step that follows a
// per-block successor schedule.
type fakeKernel struct {
	blocks []simt.BlockInfo
	entry  int
	succs  [][]int
	// step, if set, overrides the default Step (which follows the first
	// declared successor).
	step func(slot int32, block int, res *simt.StepResult)
}

func (f *fakeKernel) Blocks() []simt.BlockInfo { return f.blocks }
func (f *fakeKernel) Entry() int               { return f.entry }
func (f *fakeKernel) NumSlots() int            { return 4 }

func (f *fakeKernel) Step(slot int32, block int, res *simt.StepResult) {
	if f.step != nil {
		f.step(slot, block, res)
		return
	}
	if len(f.succs[block]) > 0 {
		res.Next = f.succs[block][0]
	} else {
		res.Next = simt.BlockExit
	}
}

func (f *fakeKernel) Successors(block int) []int { return f.succs[block] }

// diamond returns a well-formed diamond program:
//
//	0 -> {1,2}; 1 -> 3; 2 -> 3; 3 -> exit, with Reconv(0)=3.
func diamond() *fakeKernel {
	return &fakeKernel{
		blocks: []simt.BlockInfo{
			{Name: "head", Insts: 1, Reconv: 3},
			{Name: "then", Insts: 1},
			{Name: "else", Insts: 1},
			{Name: "join", Insts: 1},
		},
		succs: [][]int{
			{1, 2},
			{3},
			{3},
			{simt.BlockExit},
		},
	}
}

func findRule(fs []Finding, r Rule) *Finding {
	for i := range fs {
		if fs[i].Rule == r {
			return &fs[i]
		}
	}
	return nil
}

func TestVerifyCleanDiamond(t *testing.T) {
	fs := Verify("diamond", diamond(), Caps{})
	if len(fs) != 0 {
		t.Fatalf("clean diamond produced findings: %v", fs)
	}
}

// TestVerifyMalformed feeds deliberately broken programs to the
// verifier; each must produce its one distinct diagnostic.
func TestVerifyMalformed(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(k *fakeKernel)
		rule    Rule
		msgPart string
	}{
		{
			name:    "bad successor",
			mutate:  func(k *fakeKernel) { k.succs[1] = []int{7} },
			rule:    RuleSuccRange,
			msgPart: "declares successor 7",
		},
		{
			name: "missing reconv on divergent block",
			mutate: func(k *fakeKernel) {
				// Move the divergence to block 1 (1 -> {2,3}) which
				// declares no Reconv; its zero value points at block 0,
				// which neither matches the IPDOM (3) nor dominates 1
				// as a loop header would.
				k.succs[0] = []int{1}
				k.succs[1] = []int{2, 3}
				k.succs[2] = []int{3}
				k.blocks[0].Reconv = 0
			},
			rule:    RuleReconvMissing,
			msgPart: "declares no reconvergence point",
		},
		{
			name:    "wrong ipdom",
			mutate:  func(k *fakeKernel) { k.blocks[0].Reconv = 2 },
			rule:    RuleReconvIPDOM,
			msgPart: "immediate post-dominator",
		},
		{
			name:    "reconv out of range",
			mutate:  func(k *fakeKernel) { k.blocks[0].Reconv = 9 },
			rule:    RuleReconvRange,
			msgPart: "out of range",
		},
		{
			name: "over-budget declared memory",
			mutate: func(k *fakeKernel) {
				k.blocks[2].MemInsts = simt.MaxMemPerStep + 3
			},
			rule:    RuleMemBudget,
			msgPart: "memory instruction slots",
		},
		{
			name:    "unreachable block",
			mutate:  func(k *fakeKernel) { k.succs[0] = []int{1}; k.succs[1] = []int{3} },
			rule:    RuleUnreachable,
			msgPart: "unreachable",
		},
		{
			name: "no path to exit",
			mutate: func(k *fakeKernel) {
				// join loops back to head forever.
				k.succs[3] = []int{0}
			},
			rule:    RuleNoExitPath,
			msgPart: "no path",
		},
		{
			name:    "no successors at all",
			mutate:  func(k *fakeKernel) { k.succs[1] = nil },
			rule:    RuleNoSucc,
			msgPart: "no successors",
		},
		{
			name:    "negative instruction count",
			mutate:  func(k *fakeKernel) { k.blocks[1].Insts = -2 },
			rule:    RuleInstCount,
			msgPart: "declares no instructions",
		},
		{
			name:    "absurd source operand count",
			mutate:  func(k *fakeKernel) { k.blocks[1].SrcOps = 99 },
			rule:    RuleSrcOps,
			msgPart: "source operands",
		},
		{
			name:    "gated block without a gate",
			mutate:  func(k *fakeKernel) { k.blocks[0].Gated = true },
			rule:    RuleGateUnserved,
			msgPart: "gate",
		},
		{
			name:    "ctrl tag without a co-processor",
			mutate:  func(k *fakeKernel) { k.blocks[0].Tag = simt.TagCtrl },
			rule:    RuleTagUnserved,
			msgPart: "control",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := diamond()
			tc.mutate(k)
			fs := Verify("fixture", k, Caps{})
			f := findRule(fs, tc.rule)
			if f == nil {
				t.Fatalf("expected a %s finding, got %v", tc.rule, fs)
			}
			if !strings.Contains(f.Msg, tc.msgPart) {
				t.Errorf("finding %q does not mention %q", f.Msg, tc.msgPart)
			}
		})
	}
}

// TestVerifyAcceptsLoopHeaderReconv locks in the persistent-threads
// idiom: a loop whose divergent branch reconverges at the loop header
// (which dominates it) instead of the textbook post-dominator.
func TestVerifyAcceptsLoopHeaderReconv(t *testing.T) {
	// 0 (header) -> {1, exit}; 1 -> {0, 2}; 2 -> {0}. Block 1 diverges;
	// its IPDOM is 0 only through 2, and declaring Reconv=0 must pass
	// because 0 dominates 1 and both successors reach 0.
	k := &fakeKernel{
		blocks: []simt.BlockInfo{
			{Name: "header", Insts: 1, Reconv: 0},
			{Name: "body", Insts: 1, Reconv: 0},
			{Name: "tail", Insts: 1},
		},
		succs: [][]int{
			{1, simt.BlockExit},
			{0, 2},
			{0},
		},
	}
	if fs := Verify("loop", k, Caps{}); len(fs) != 0 {
		t.Fatalf("loop-header reconvergence rejected: %v", fs)
	}
}

func TestVerifyEntryOutOfRange(t *testing.T) {
	k := diamond()
	k.entry = 11
	f := findRule(Verify("fixture", k, Caps{}), RuleEntryRange)
	if f == nil {
		t.Fatal("expected an entry-range finding")
	}
}

func TestVerifyEmptyProgram(t *testing.T) {
	k := &fakeKernel{}
	f := findRule(Verify("fixture", k, Caps{}), RuleNoBlocks)
	if f == nil {
		t.Fatal("expected a no-blocks finding")
	}
}

func TestVerifyCapsServeGatedBlocks(t *testing.T) {
	k := diamond()
	k.blocks[0].Gated = true
	k.blocks[0].Tag = simt.TagCtrl
	if fs := Verify("fixture", k, Caps{Gate: true, CtrlTag: true}); len(fs) != 0 {
		t.Fatalf("capable architecture still rejected gated program: %v", fs)
	}
}

func TestMustVerifyPanics(t *testing.T) {
	k := diamond()
	k.succs[1] = []int{7}
	defer func() {
		if recover() == nil {
			t.Fatal("MustVerify did not panic on a malformed program")
		}
	}()
	MustVerify("fixture", k, Caps{})
}

// TestExploreFlagsUndeclaredEdge drives a Step that branches to an
// edge the static CFG omits.
func TestExploreFlagsUndeclaredEdge(t *testing.T) {
	k := diamond()
	k.step = func(slot int32, block int, res *simt.StepResult) {
		switch block {
		case 0:
			res.Next = 3 // 0 -> 3 is not declared
		default:
			res.Next = simt.BlockExit
		}
	}
	fs, cov := Explore("fixture", k, ExploreConfig{})
	if f := findRule(fs, RuleEdgeUndeclared); f == nil {
		t.Fatalf("expected an edge-undeclared finding, got %v", fs)
	}
	if cov.Steps == 0 {
		t.Error("exploration made no steps")
	}
}

// TestExploreFlagsMemOverDeclared drives a Step that emits more memory
// accesses than the block declares.
func TestExploreFlagsMemOverDeclared(t *testing.T) {
	k := diamond()
	k.blocks[1].MemInsts = 1
	k.step = func(slot int32, block int, res *simt.StepResult) {
		if block == 1 {
			res.NMem = 2 // over the declared budget of 1
			res.Next = 3
			return
		}
		if len(k.succs[block]) > 0 {
			res.Next = k.succs[block][0]
		} else {
			res.Next = simt.BlockExit
		}
	}
	fs, _ := Explore("fixture", k, ExploreConfig{})
	f := findRule(fs, RuleMemOverflow)
	if f == nil {
		t.Fatalf("expected a mem-overflow finding, got %v", fs)
	}
	if !strings.Contains(f.Msg, "MemInsts") {
		t.Errorf("finding %q does not name the declared budget", f.Msg)
	}
}

// TestExploreFlagsRangeViolation drives a Step that jumps outside the
// block table.
func TestExploreFlagsRangeViolation(t *testing.T) {
	k := diamond()
	k.step = func(slot int32, block int, res *simt.StepResult) { res.Next = 42 }
	fs, _ := Explore("fixture", k, ExploreConfig{})
	if findRule(fs, RuleSuccRange) == nil {
		t.Fatalf("expected a succ-range finding, got %v", fs)
	}
}

func TestExploreCleanProgram(t *testing.T) {
	fs, cov := Explore("diamond", diamond(), ExploreConfig{})
	if len(fs) != 0 {
		t.Fatalf("clean program produced findings: %v", fs)
	}
	if cov.BlocksVisited == 0 || cov.EdgesObserved == 0 {
		t.Errorf("no coverage recorded: %+v", cov)
	}
}
