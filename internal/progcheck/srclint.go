package progcheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The simulator must be bit-reproducible: the same scene and seed must
// produce the same cycle counts on every run, or the paper's figures
// cannot be regenerated and regressions cannot be diffed. The source
// lint flags the Go constructs that most commonly break that:
//
//   - map-range: ranging over a map touches elements in randomized
//     order; if the loop body feeds simulation state (picks a winner,
//     mutates counters, launches warps), results differ run to run.
//   - wallclock / global-rand: time.Now and the global math/rand
//     functions smuggle ambient state into what must be a pure function
//     of the inputs.
//   - goroutine-captured-write: a `go func(){...}` that assigns to a
//     variable captured from the enclosing scope is a data race unless
//     externally synchronized; races are nondeterminism at best.
//   - shared-l2: constructing (memsys.NewL2) or directly accessing the
//     free-running mutex-serialized L2 in a file that spawns goroutines.
//     The mutex makes it race-free but serves requests in goroutine
//     scheduling order, so cache state — and every downstream cycle
//     count — varies run to run: the race-to-the-lock pattern the
//     epoch-barrier engine exists to eliminate. Concurrent code must
//     route L2 traffic through memsys.OrderedL2's per-SMX ports.
//   - hotpath-alloc: allocation churn in code tagged //drslint:hotpath
//     — a file-level tag marks every function in the file, a tag in one
//     function's doc comment marks just that function (the simulator's
//     per-cycle code: SMX stepping, warp divergence resolution, cache
//     access). A map allocated or a fresh local slice
//     grown by append on a path that runs every simulated cycle is pure
//     GC pressure at millions of cycles per experiment; hot code reuses
//     per-warp/per-port scratch buffers (x := s.buf[:0] ... s.buf = x)
//     instead. The check flags make(map...)/map literals and appends
//     that grow a slice freshly allocated in the same function; appends
//     to pooled reslices and struct-field targets pass.
//
// The analysis is deliberately syntactic (go/ast + go/parser, no type
// checker): map types are inferred from declarations visible in the
// same package — struct fields, package vars, and local `make(map...)`
// or map-literal declarations. That misses maps that arrive through
// interfaces or other packages, and a lint that can miss is fine: it is
// a tripwire, not a proof.
//
// Intentional, order-insensitive uses are suppressed with a comment on
// the statement or the line above it:
//
//	//drslint:allow map-range -- selection has a deterministic tie-break

// SrcCheck identifies one source-lint diagnostic class.
type SrcCheck string

// Source lint checks.
const (
	// CheckMapRange: range over a map in simulation code.
	CheckMapRange SrcCheck = "map-range"
	// CheckWallClock: wall-clock time read in simulation code.
	CheckWallClock SrcCheck = "wallclock"
	// CheckGlobalRand: use of math/rand's global (process-seeded)
	// functions.
	CheckGlobalRand SrcCheck = "global-rand"
	// CheckGoCapturedWrite: goroutine body assigns to a captured
	// variable.
	CheckGoCapturedWrite SrcCheck = "goroutine-captured-write"
	// CheckSharedL2: free-running memsys.L2 constructed or accessed in
	// a file that spawns goroutines.
	CheckSharedL2 SrcCheck = "shared-l2"
	// CheckHotPathAlloc: per-cycle allocation (map, or append growth of
	// a fresh local slice) in //drslint:hotpath-tagged code.
	CheckHotPathAlloc SrcCheck = "hotpath-alloc"
)

// HotpathDirective tags a file (or, in the srcgraph pass, a single
// function) as per-cycle hot-path code, enabling the hotpath-alloc
// check for it.
const HotpathDirective = "//drslint:hotpath"

// memsysImport is the import path of the memory-system package whose
// free-running L2 the shared-l2 check guards.
const memsysImport = "repro/internal/memsys"

// SrcFinding is one source-lint diagnostic.
type SrcFinding struct {
	// File is the path as given to LintDirs (module-relative when the
	// roots are).
	File string `json:"file"`
	// Line is the 1-based source line.
	Line int `json:"line"`
	// Check classifies the diagnostic.
	Check SrcCheck `json:"check"`
	// Msg is the human-readable diagnostic.
	Msg string `json:"msg"`
}

func (f SrcFinding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.File, f.Line, f.Check, f.Msg)
}

// AllowDirective is the suppression comment prefix.
const AllowDirective = "//drslint:allow "

// LintDirs lints every non-test .go file under the given roots
// (recursively) and returns the findings sorted by file and line.
func LintDirs(roots ...string) ([]SrcFinding, error) {
	var files []string
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if path == root {
					return nil // never skip the root itself (it may be ".")
				}
				if name := d.Name(); name == "testdata" || strings.HasPrefix(name, ".") {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(files)

	// Group by directory so same-package declarations (struct fields,
	// package vars) inform map-type inference.
	byDir := make(map[string][]string)
	var dirs []string
	for _, f := range files {
		d := filepath.Dir(f)
		if _, ok := byDir[d]; !ok {
			dirs = append(dirs, d)
		}
		byDir[d] = append(byDir[d], f)
	}
	sort.Strings(dirs)

	var all []SrcFinding
	for _, d := range dirs {
		fs, err := lintPackageFiles(byDir[d])
		if err != nil {
			return nil, err
		}
		all = append(all, fs...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].File != all[j].File {
			return all[i].File < all[j].File
		}
		return all[i].Line < all[j].Line
	})
	return all, nil
}

// LintSource lints a single file's source text (testing helper; the
// package context is just this file).
func LintSource(filename, src string) ([]SrcFinding, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	decls := collectDecls([]*ast.File{f})
	return lintFile(fset, filename, f, decls), nil
}

func lintPackageFiles(paths []string) ([]SrcFinding, error) {
	fset := token.NewFileSet()
	parsed := make([]*ast.File, 0, len(paths))
	names := make([]string, 0, len(paths))
	for _, p := range paths {
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("progcheck: parse %s: %w", p, err)
		}
		parsed = append(parsed, f)
		names = append(names, p)
	}
	decls := collectDecls(parsed)
	var all []SrcFinding
	for i, f := range parsed {
		all = append(all, lintFile(fset, names[i], f, decls)...)
	}
	return all, nil
}

// pkgDecls records which names the package declares with types the
// lint cares about: map-typed struct fields ("field") and package-level
// vars, and the same for the free-running *memsys.L2.
type pkgDecls struct {
	fields   map[string]bool // field names of map type anywhere in the package
	vars     map[string]bool // package-level var names of map type
	l2Fields map[string]bool // field names of (*)memsys.L2 type
	l2Vars   map[string]bool // package-level var names of (*)memsys.L2 type
}

func isMapType(e ast.Expr) bool {
	switch t := e.(type) {
	case *ast.MapType:
		return true
	case *ast.ParenExpr:
		return isMapType(t.X)
	}
	return false
}

// isL2Type reports whether a type expression evidently names the
// free-running L2: (*)memsys.L2 through the file's import binding, or
// bare (*)L2 inside package memsys itself.
func isL2Type(e ast.Expr, memsysNames map[string]bool, samePkg bool) bool {
	switch t := e.(type) {
	case *ast.StarExpr:
		return isL2Type(t.X, memsysNames, samePkg)
	case *ast.ParenExpr:
		return isL2Type(t.X, memsysNames, samePkg)
	case *ast.SelectorExpr:
		id, ok := t.X.(*ast.Ident)
		return ok && memsysNames[id.Name] && t.Sel.Name == "L2"
	case *ast.Ident:
		return samePkg && t.Name == "L2"
	}
	return false
}

func collectDecls(files []*ast.File) *pkgDecls {
	d := &pkgDecls{
		fields: make(map[string]bool), vars: make(map[string]bool),
		l2Fields: make(map[string]bool), l2Vars: make(map[string]bool),
	}
	for _, f := range files {
		memsysNames := importNames(f, memsysImport)
		samePkg := f.Name.Name == "memsys"
		ast.Inspect(f, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.StructType:
				for _, fl := range t.Fields.List {
					if isMapType(fl.Type) {
						for _, name := range fl.Names {
							d.fields[name.Name] = true
						}
					}
					if isL2Type(fl.Type, memsysNames, samePkg) {
						for _, name := range fl.Names {
							d.l2Fields[name.Name] = true
						}
					}
				}
			case *ast.GenDecl:
				if t.Tok == token.VAR {
					for _, spec := range t.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						if vs.Type != nil && isMapType(vs.Type) {
							for _, name := range vs.Names {
								d.vars[name.Name] = true
							}
						}
						if vs.Type != nil && isL2Type(vs.Type, memsysNames, samePkg) {
							for _, name := range vs.Names {
								d.l2Vars[name.Name] = true
							}
						}
					}
				}
			}
			return true
		})
	}
	return d
}

// lintFile runs all checks over one file.
func lintFile(fset *token.FileSet, path string, f *ast.File, decls *pkgDecls) []SrcFinding {
	allowed := collectAllows(f, fset)
	var fs []SrcFinding
	add := func(pos token.Pos, check SrcCheck, format string, args ...any) {
		line := fset.Position(pos).Line
		if allowed[line][check] || allowed[line-1][check] {
			return
		}
		fs = append(fs, SrcFinding{File: path, Line: line, Check: check, Msg: fmt.Sprintf(format, args...)})
	}

	// Names bound to the math/rand, time, and memsys imports in this file.
	randNames := importNames(f, "math/rand", "math/rand/v2")
	timeNames := importNames(f, "time")
	memsysNames := importNames(f, memsysImport)
	// The shared-l2 check applies at file granularity: any file that
	// spawns a goroutine is a concurrent code path, and the free-running
	// L2 must not appear anywhere in it (even outside the go statement —
	// the handle inevitably flows into the workers). Package memsys
	// itself defines the type and is exempt by construction: it spawns
	// no goroutines.
	concurrent := fileSpawnsGoroutines(f)
	sharedL2Suppress := strings.TrimSpace(AllowDirective) + " shared-l2 -- <why the scheduler cannot reorder its accesses>"
	// The hotpath-alloc check is enabled by the //drslint:hotpath tag at
	// either granularity: a file-level tag (a free-standing comment)
	// marks every function in the file as per-cycle code; a tag in one
	// function's doc comment marks just that function.
	fileHot := fileTaggedHotpath(f)
	hotSuppress := strings.TrimSpace(AllowDirective) + " hotpath-alloc -- <why this allocation is off the per-cycle path>"

	var walk func(n ast.Node, hot bool, localMaps, localL2, freshSlices map[string]bool)
	walk = func(n ast.Node, hot bool, localMaps, localL2, freshSlices map[string]bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.FuncDecl:
				if t.Body != nil {
					// Fresh local scopes per function.
					walk(t.Body, fileHot || docTaggedHotpath(t.Doc),
						make(map[string]bool), make(map[string]bool), make(map[string]bool))
					return false
				}
			case *ast.AssignStmt:
				// Track locals declared as maps: x := make(map[...]...),
				// x := map[...]...{} — locals bound to the free-running
				// L2: x := memsys.NewL2(...) — and locals holding freshly
				// allocated slices (as opposed to pooled reslices like
				// x := s.buf[:0], which the hot-path check permits).
				if t.Tok == token.DEFINE {
					for i, lhs := range t.Lhs {
						id, ok := lhs.(*ast.Ident)
						if !ok || i >= len(t.Rhs) {
							continue
						}
						if exprMakesMap(t.Rhs[i]) {
							localMaps[id.Name] = true
						}
						if isNewL2Call(t.Rhs[i], memsysNames) {
							localL2[id.Name] = true
						}
						if exprMakesFreshSlice(t.Rhs[i]) {
							freshSlices[id.Name] = true
						} else {
							delete(freshSlices, id.Name)
						}
					}
				}
			case *ast.GenDecl:
				if t.Tok == token.VAR {
					for _, spec := range t.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok && vs.Type != nil {
							if isMapType(vs.Type) {
								for _, name := range vs.Names {
									localMaps[name.Name] = true
								}
							}
							if isL2Type(vs.Type, memsysNames, false) {
								for _, name := range vs.Names {
									localL2[name.Name] = true
								}
							}
							// var x []T appends from nil: every growth
							// allocates.
							if at, ok := vs.Type.(*ast.ArrayType); ok && at.Len == nil && len(vs.Values) == 0 {
								for _, name := range vs.Names {
									freshSlices[name.Name] = true
								}
							}
						}
					}
				}
			case *ast.RangeStmt:
				if rangesOverMap(t.X, decls, localMaps) {
					add(t.For, CheckMapRange,
						"range over map %s iterates in randomized order; simulation state fed from it diverges run to run (sort the keys, add a deterministic tie-break, or suppress with %q)",
						exprString(t.X), strings.TrimSpace(AllowDirective)+" map-range -- <why it is order-insensitive>")
				}
			case *ast.CompositeLit:
				if hot && t.Type != nil && isMapType(t.Type) {
					add(t.Pos(), CheckHotPathAlloc,
						"map literal allocates in //drslint:hotpath code; per-cycle map churn is GC pressure — use reusable scratch arrays (cf. simt.Warp's uniqBuf/maskBuf) or suppress with %q",
						hotSuppress)
				}
			case *ast.CallExpr:
				if hot {
					if id, ok := t.Fun.(*ast.Ident); ok && id.Obj == nil {
						switch {
						case id.Name == "make" && len(t.Args) > 0 && isMapType(t.Args[0]):
							add(t.Pos(), CheckHotPathAlloc,
								"make(map) allocates in //drslint:hotpath code; per-cycle map churn is GC pressure — use reusable scratch arrays (cf. simt.Warp's uniqBuf/maskBuf) or suppress with %q",
								hotSuppress)
						case id.Name == "append" && len(t.Args) > 0:
							if base, ok := t.Args[0].(*ast.Ident); ok && freshSlices[base.Name] {
								add(t.Pos(), CheckHotPathAlloc,
									"append grows %q, a slice freshly allocated in this function, in //drslint:hotpath code; reuse a pooled buffer (x := s.buf[:0] ... s.buf = x) or suppress with %q",
									base.Name, hotSuppress)
							}
						}
					}
				}
				if !concurrent {
					break
				}
				if isNewL2Call(t, memsysNames) {
					add(t.Pos(), CheckSharedL2,
						"memsys.NewL2 builds the free-running L2, whose mutex serves requests in goroutine scheduling order; concurrent code must route L2 traffic through memsys.NewOrderedL2's per-SMX ports so cache state is schedule-independent (or suppress with %q)",
						sharedL2Suppress)
				} else if sel, ok := t.Fun.(*ast.SelectorExpr); ok &&
					sel.Sel.Name == "Access" && receiverIsL2(sel.X, decls, localL2) {
					add(t.Pos(), CheckSharedL2,
						"%s.Access hits the free-running L2 from a file that spawns goroutines; hit/miss state then depends on scheduler interleaving — use the ordered epoch port instead (or suppress with %q)",
						exprString(sel.X), sharedL2Suppress)
				}
			case *ast.SelectorExpr:
				if id, ok := t.X.(*ast.Ident); ok && id.Obj == nil {
					if timeNames[id.Name] && WallClockFuncs[t.Sel.Name] {
						add(t.Pos(), CheckWallClock,
							"%s.%s reads or schedules against the wall clock; simulation code must be a pure function of its inputs",
							id.Name, t.Sel.Name)
					}
					if randNames[id.Name] && GlobalRandFuncs[t.Sel.Name] {
						add(t.Pos(), CheckGlobalRand,
							"%s.%s uses the process-global RNG; use a seeded generator (internal/rng) instead",
							id.Name, t.Sel.Name)
					}
				}
			case *ast.GoStmt:
				if lit, ok := t.Call.Fun.(*ast.FuncLit); ok {
					checkGoroutineWrites(lit, add)
					// Still lint the body for L2 uses and the other checks;
					// checkGoroutineWrites only covers captured assignments.
					walk(lit.Body, hot, localMaps, localL2, freshSlices)
				}
				return false // checked; don't re-trigger on nested nodes
			}
			return true
		})
	}
	walk(f, fileHot, make(map[string]bool), make(map[string]bool), make(map[string]bool))
	return fs
}

// fileTaggedHotpath reports whether the file carries a file-level
// //drslint:hotpath tag: the directive in any comment group that is not
// a function's doc comment (a doc-comment directive marks only that
// function — see docTaggedHotpath).
func fileTaggedHotpath(f *ast.File) bool {
	funcDocs := make(map[*ast.CommentGroup]bool)
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Doc != nil {
			funcDocs[fd.Doc] = true
		}
	}
	for _, cg := range f.Comments {
		if funcDocs[cg] {
			continue
		}
		for _, c := range cg.List {
			if c.Text == HotpathDirective || strings.HasPrefix(c.Text, HotpathDirective+" ") {
				return true
			}
		}
	}
	return false
}

// docTaggedHotpath reports whether a function's doc comment carries the
// //drslint:hotpath directive, marking that one function as per-cycle
// code.
func docTaggedHotpath(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == HotpathDirective || strings.HasPrefix(c.Text, HotpathDirective+" ") {
			return true
		}
	}
	return false
}

// exprMakesFreshSlice reports whether an expression evidently allocates
// a new slice: make([]T, ...) or a slice composite literal. Reslices of
// pooled storage (s.buf[:0]) and values read from fields or calls are
// not fresh — appending to them reuses capacity.
func exprMakesFreshSlice(e ast.Expr) bool {
	switch t := e.(type) {
	case *ast.CallExpr:
		if id, ok := t.Fun.(*ast.Ident); ok && id.Name == "make" && len(t.Args) > 0 {
			at, ok := t.Args[0].(*ast.ArrayType)
			return ok && at.Len == nil
		}
	case *ast.CompositeLit:
		if at, ok := t.Type.(*ast.ArrayType); ok {
			return at.Len == nil
		}
	}
	return false
}

// fileSpawnsGoroutines reports whether the file contains any go
// statement.
func fileSpawnsGoroutines(f *ast.File) bool {
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			found = true
		}
		return !found
	})
	return found
}

// isNewL2Call reports whether the expression is a call to memsys.NewL2
// through this file's import binding.
func isNewL2Call(e ast.Expr, memsysNames map[string]bool) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "NewL2" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Obj == nil && memsysNames[id.Name]
}

// receiverIsL2 reports whether a method-call receiver is evidently the
// free-running L2, from local bindings, package vars, or struct fields
// declared with (*)memsys.L2 type.
func receiverIsL2(x ast.Expr, decls *pkgDecls, localL2 map[string]bool) bool {
	switch t := x.(type) {
	case *ast.Ident:
		return localL2[t.Name] || decls.l2Vars[t.Name]
	case *ast.SelectorExpr:
		return decls.l2Fields[t.Sel.Name]
	case *ast.ParenExpr:
		return receiverIsL2(t.X, decls, localL2)
	}
	return false
}

// WallClockFuncs is the package-level API of time that reads the wall
// clock or schedules against it. Everything here makes behavior depend
// on real elapsed time: Now/Since/Until read the clock directly, and
// the timer and ticker constructors (NewTimer, NewTicker, Tick, After,
// AfterFunc) deliver events whose order against simulation progress is
// scheduler- and load-dependent. Shared by the syntactic lint and the
// srcgraph interprocedural pass.
var WallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"NewTimer": true, "NewTicker": true, "Tick": true,
	"After": true, "AfterFunc": true,
}

// GlobalRandFuncs is the package-level API of math/rand (and v2) that
// draws from the shared, process-seeded source. Shared by the syntactic
// lint and the srcgraph interprocedural pass.
var GlobalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint32": true, "Uint64": true, "Uint32N": true, "Uint64N": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true,
}

// importNames returns the identifiers the file binds to any of the
// given import paths (honoring renames; "_" and "." are skipped).
func importNames(f *ast.File, paths ...string) map[string]bool {
	want := make(map[string]bool, len(paths))
	for _, p := range paths {
		want[p] = true
	}
	names := make(map[string]bool)
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || !want[p] {
			continue
		}
		name := path.Base(p)
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name != "_" && name != "." {
			names[name] = true
		}
	}
	return names
}

// exprMakesMap reports whether an expression evidently produces a map:
// make(map[...]...), a map composite literal, or a conversion to one.
func exprMakesMap(e ast.Expr) bool {
	switch t := e.(type) {
	case *ast.CallExpr:
		if id, ok := t.Fun.(*ast.Ident); ok && id.Name == "make" && len(t.Args) > 0 {
			return isMapType(t.Args[0])
		}
	case *ast.CompositeLit:
		return t.Type != nil && isMapType(t.Type)
	}
	return false
}

// exprString renders the small expression forms the lint reports on
// (identifiers and selector chains) for diagnostics.
func exprString(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		return exprString(t.X) + "." + t.Sel.Name
	case *ast.ParenExpr:
		return "(" + exprString(t.X) + ")"
	}
	return "<expr>"
}

// rangesOverMap reports whether the ranged expression is evidently a
// map, from local declarations, package-level vars, or struct fields
// declared with map types anywhere in the package.
func rangesOverMap(x ast.Expr, decls *pkgDecls, localMaps map[string]bool) bool {
	switch t := x.(type) {
	case *ast.Ident:
		return localMaps[t.Name] || decls.vars[t.Name]
	case *ast.SelectorExpr:
		return decls.fields[t.Sel.Name]
	case *ast.ParenExpr:
		return rangesOverMap(t.X, decls, localMaps)
	}
	return false
}

// checkGoroutineWrites flags plain assignments to identifiers the
// goroutine body captured from the enclosing scope. Writes through an
// index expression (results[i] = ...) are allowed — the worker-per-
// element idiom is disjoint by construction; a captured scalar write is
// a race.
func checkGoroutineWrites(lit *ast.FuncLit, add func(token.Pos, SrcCheck, string, ...any)) {
	local := make(map[string]bool)
	if lit.Type.Params != nil {
		for _, p := range lit.Type.Params.List {
			for _, name := range p.Names {
				local[name.Name] = true
			}
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.AssignStmt:
			if t.Tok == token.DEFINE {
				for _, lhs := range t.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						local[id.Name] = true
					}
				}
				return true
			}
			for _, lhs := range t.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" || local[id.Name] {
					continue
				}
				add(id.Pos(), CheckGoCapturedWrite,
					"goroutine assigns to captured variable %q; unsynchronized shared writes race (pass it as a parameter, write a disjoint element, or guard with sync)",
					id.Name)
			}
		case *ast.RangeStmt:
			if t.Tok == token.DEFINE {
				if id, ok := t.Key.(*ast.Ident); ok {
					local[id.Name] = true
				}
				if id, ok := t.Value.(*ast.Ident); ok {
					local[id.Name] = true
				}
			}
		case *ast.GenDecl:
			if t.Tok == token.VAR {
				for _, spec := range t.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, name := range vs.Names {
							local[name.Name] = true
						}
					}
				}
			}
		case *ast.FuncLit:
			// Nested literals get their own pass only via go statements;
			// treat their params as local to avoid false positives.
			if t.Type.Params != nil {
				for _, p := range t.Type.Params.List {
					for _, name := range p.Names {
						local[name.Name] = true
					}
				}
			}
		}
		return true
	})
}

// AllowsByLine maps line -> suppressed checks from //drslint:allow
// comments, using the same grammar the lint applies: the directive
// suppresses the named checks on its own line and the line below it.
// Exported so the srcgraph pass honors the same suppressions.
func AllowsByLine(f *ast.File, fset *token.FileSet) map[int]map[SrcCheck]bool {
	return collectAllows(f, fset)
}

// collectAllows maps line -> suppressed checks from //drslint:allow
// comments.
func collectAllows(f *ast.File, fset *token.FileSet) map[int]map[SrcCheck]bool {
	allows := make(map[int]map[SrcCheck]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, AllowDirective) {
				continue
			}
			rest := strings.TrimPrefix(text, AllowDirective)
			if i := strings.Index(rest, "--"); i >= 0 {
				rest = rest[:i]
			}
			line := fset.Position(c.Pos()).Line
			if allows[line] == nil {
				allows[line] = make(map[SrcCheck]bool)
			}
			for _, name := range strings.Fields(rest) {
				allows[line][SrcCheck(name)] = true
			}
		}
	}
	return allows
}
