package srcgraph

import (
	"fmt"
	"go/ast"
	"sort"

	"repro/internal/progcheck"
)

func sprintf(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// CheckHazards builds the call graph and reports every determinism
// hazard that is reachable from a root:
//
//   - map-range, wallclock and global-rand fire in any function
//     reachable from a determinism root (engine entry points, harness
//     Run* API, and every hot function — per-cycle code is on the
//     determinism path by construction);
//   - hotpath-alloc fires in any function reachable from a
//     //drslint:hotpath root.
//
// Line-level //drslint:allow suppressions use the same grammar as the
// syntactic lint; a //drslint:allow in a function's doc comment
// suppresses the named checks for the whole function.
func CheckHazards(prog *Program) []Finding {
	g := BuildGraph(prog)
	return g.findings()
}

// detKind reports whether a check propagates from determinism roots
// (as opposed to hot roots only).
func detKind(check string) bool { return check != CheckHotPathAlloc }

func (g *Graph) findings() []Finding {
	hot := g.propagate(func(n *funcNode) bool { return n.hotRoot })
	// Hot code runs every simulated cycle inside the engine: it is on
	// the determinism path whether or not an engine entry point
	// reaches it in the static graph.
	det := g.propagate(func(n *funcNode) bool { return n.detRoot || n.hotRoot })

	// Line-level suppressions, collected lazily per file.
	allowCache := make(map[*ast.File]map[int]map[progcheck.SrcCheck]bool)
	allows := func(f *ast.File) map[int]map[progcheck.SrcCheck]bool {
		m, ok := allowCache[f]
		if !ok {
			m = progcheck.AllowsByLine(f, g.prog.Fset)
			allowCache[f] = m
		}
		return m
	}

	var out []Finding
	for _, id := range g.order {
		n := g.nodes[id]
		if len(n.hazards) == 0 {
			continue
		}
		var via reach
		sort.Slice(n.hazards, func(i, j int) bool { return n.hazards[i].pos < n.hazards[j].pos })
		for _, h := range n.hazards {
			if detKind(h.check) {
				via = det
			} else {
				via = hot
			}
			if _, reached := via[id]; !reached {
				continue
			}
			if n.allow[h.check] {
				continue
			}
			file, line := g.prog.Rel(h.pos)
			if la := allows(n.file); la[line][progcheck.SrcCheck(h.check)] || la[line-1][progcheck.SrcCheck(h.check)] {
				continue
			}
			chain := via.chain(id)
			out = append(out, Finding{
				File:  file,
				Line:  line,
				Check: h.check,
				Func:  id,
				Root:  chain[0],
				Chain: chain,
				Msg:   h.msg,
			})
		}
	}
	SortFindings(out)
	return out
}

// Roots returns the ids of the graph's determinism and hot roots with
// the rule that made each one a root — drslint -json exposes this so a
// loader regression that silently drops every root is visible.
func (g *Graph) Roots() (det, hot map[string]string) {
	det = make(map[string]string)
	hot = make(map[string]string)
	for _, id := range g.order {
		n := g.nodes[id]
		if n.hotRoot {
			hot[id] = n.rootWhy
		}
		if n.detRoot {
			det[id] = n.rootWhy
		}
	}
	return det, hot
}

// NumFuncs reports the number of functions in the graph (loader
// health: zero or near-zero means the pass silently checked nothing).
func (g *Graph) NumFuncs() int { return len(g.nodes) }
