package srcgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/progcheck"
)

// funcNode is one function (or method) declared in the module, with
// the call edges and hazard sites found in its body. Function literals
// are attributed to their enclosing declaration: a hazard inside a
// closure fires when the declaring function is reachable, which over-
// rather than under-approximates where the closure may run.
type funcNode struct {
	id   string
	pkg  *Package
	decl *ast.FuncDecl
	file *ast.File

	// callees holds resolved outgoing edges, by function id. Interface
	// calls are expanded by class-hierarchy analysis in BuildGraph;
	// calls through plain function values are unresolvable and absent.
	callees map[string]bool

	// hazards are the determinism-hazard sites in the body, pending the
	// reachability verdict.
	hazards []hazard

	// hotRoot/detRoot mark the function as a propagation root; rootWhy
	// says which rule made it one (for diagnostics).
	hotRoot bool
	detRoot bool
	rootWhy string

	// allow holds function-wide suppressions from //drslint:allow
	// directives in the doc comment.
	allow map[string]bool
}

// hazard is one potential finding, held until reachability decides
// whether it fires.
type hazard struct {
	pos   token.Pos
	check string
	msg   string
}

// ifaceCall records an unresolved interface method call for the CHA
// expansion: every module type implementing iface contributes its
// method named name as a callee of from.
type ifaceCall struct {
	from  *funcNode
	iface *types.Interface
	name  string
}

// Graph is the static call graph over a loaded program.
type Graph struct {
	prog  *Program
	nodes map[string]*funcNode
	order []string // node ids, sorted for deterministic iteration
}

// detRootRule matches built-in determinism roots: the engine entry
// points and the harness Run* API. Everything these reach must be a
// pure function of its inputs — that is the bit-reproducibility
// contract drsd's content-addressed dedup depends on.
type detRootRule struct {
	pkgSuffix    string // import path suffix, e.g. "internal/simt"
	namePrefix   string // function name prefix ("RunGPU" matches RunGPUCtx too)
	exportedOnly bool
	why          string
}

var detRootRules = []detRootRule{
	{"internal/simt", "RunGPU", true, "engine entry point"},
	{"internal/harness", "Run", true, "harness entry point"},
}

// BuildGraph constructs the call graph: one node per declared function
// with a body, direct edges for static calls and references, and
// class-hierarchy edges for interface method calls.
func BuildGraph(prog *Program) *Graph {
	g := &Graph{prog: prog, nodes: make(map[string]*funcNode)}
	var ifaceCalls []ifaceCall

	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			fileHot := fileTaggedHotpath(file)
			for _, d := range file.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[decl.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &funcNode{
					id:      funcID(obj),
					pkg:     pkg,
					decl:    decl,
					file:    file,
					callees: make(map[string]bool),
					allow:   make(map[string]bool),
				}
				applyDirectives(n, decl.Doc)
				if fileHot && !n.hotRoot {
					n.hotRoot = true
					n.rootWhy = "file-level " + progcheck.HotpathDirective + " tag"
				}
				for _, r := range detRootRules {
					if !strings.HasSuffix(pkg.Path, r.pkgSuffix) {
						continue
					}
					if !strings.HasPrefix(obj.Name(), r.namePrefix) {
						continue
					}
					if r.exportedOnly && !obj.Exported() {
						continue
					}
					if decl.Recv != nil {
						continue // the rules name package-level entry points
					}
					n.detRoot = true
					if n.rootWhy == "" {
						n.rootWhy = r.why
					}
				}
				ifaceCalls = append(ifaceCalls, collectBody(n)...)
				g.nodes[n.id] = n
			}
		}
	}

	g.expandInterfaceCalls(ifaceCalls)

	g.order = make([]string, 0, len(g.nodes))
	//drslint:allow map-range -- collected ids are sorted before use
	for id := range g.nodes {
		g.order = append(g.order, id)
	}
	sort.Strings(g.order)
	return g
}

// funcID renders a stable, fully qualified function identity that is
// identical whether the *types.Func came from source type-checking or
// from imported export data: "pkgpath.Func" or "pkgpath.(*Recv).Method".
func funcID(fn *types.Func) string {
	if orig := fn.Origin(); orig != nil {
		fn = orig
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		star := ""
		if p, pok := t.(*types.Pointer); pok {
			t = p.Elem()
			star = "*"
		}
		if named, nok := t.(*types.Named); nok && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Path() + ".(" + star + named.Obj().Name() + ")." + fn.Name()
		}
		return fn.FullName()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Name()
}

// applyDirectives reads //drslint:hotpath and //drslint:allow from a
// function's doc comment. A doc-comment allow suppresses the named
// checks for the entire function body.
func applyDirectives(n *funcNode, doc *ast.CommentGroup) {
	if doc == nil {
		return
	}
	for _, c := range doc.List {
		text := c.Text
		if text == progcheck.HotpathDirective || strings.HasPrefix(text, progcheck.HotpathDirective+" ") {
			n.hotRoot = true
			n.rootWhy = progcheck.HotpathDirective + " directive"
		}
		if strings.HasPrefix(text, progcheck.AllowDirective) {
			rest := strings.TrimPrefix(text, progcheck.AllowDirective)
			if i := strings.Index(rest, "--"); i >= 0 {
				rest = rest[:i]
			}
			for _, name := range strings.Fields(rest) {
				n.allow[name] = true
			}
		}
	}
}

// fileTaggedHotpath reports whether the file carries a file-level
// //drslint:hotpath tag: the directive in any comment that is not a
// function's doc comment (those are function-granular roots instead).
func fileTaggedHotpath(f *ast.File) bool {
	funcDocs := make(map[*ast.CommentGroup]bool)
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Doc != nil {
			funcDocs[fd.Doc] = true
		}
	}
	for _, cg := range f.Comments {
		if funcDocs[cg] {
			continue
		}
		for _, c := range cg.List {
			if c.Text == progcheck.HotpathDirective || strings.HasPrefix(c.Text, progcheck.HotpathDirective+" ") {
				return true
			}
		}
	}
	return false
}

// expandInterfaceCalls resolves recorded interface method calls by
// class-hierarchy analysis: an edge to M on every module-declared named
// type whose (pointer) method set implements the called interface.
func (g *Graph) expandInterfaceCalls(calls []ifaceCall) {
	if len(calls) == 0 {
		return
	}
	var named []*types.Named
	for _, pkg := range g.prog.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if n, ok := tn.Type().(*types.Named); ok {
				named = append(named, n)
			}
		}
	}
	for _, call := range calls {
		for _, n := range named {
			ptr := types.NewPointer(n)
			if !types.Implements(n, call.iface) && !types.Implements(ptr, call.iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(ptr, true, n.Obj().Pkg(), call.name)
			if m, ok := obj.(*types.Func); ok {
				call.from.callees[funcID(m)] = true
			}
		}
	}
}

// collectBody walks one function body, resolving every referenced
// function into a call edge (a reference that is not a direct call —
// a method value handed to a scheduler, say — may still be invoked
// from here, so it counts as an edge) and recording hazard sites.
// Interface method references are returned for CHA expansion.
func collectBody(n *funcNode) []ifaceCall {
	info := n.pkg.Info
	var ifaceCalls []ifaceCall

	// freshSlices tracks locals bound to freshly allocated slices, for
	// the append-growth variant of hotpath-alloc (same tracking as the
	// syntactic lint, per whole declaration).
	freshSlices := make(map[string]bool)

	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		switch t := node.(type) {
		case *ast.Ident:
			fn, ok := info.Uses[t].(*types.Func)
			if !ok {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if ok && sig.Recv() != nil {
				if iface, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
					ifaceCalls = append(ifaceCalls, ifaceCall{from: n, iface: iface, name: fn.Name()})
					return true
				}
			}
			n.callees[funcID(fn)] = true
			n.noteAmbientFunc(t, fn)
		case *ast.RangeStmt:
			if tv, ok := info.Types[t.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					n.addHazard(t.For, CheckMapRange,
						"range over map %s iterates in randomized order; state fed from it diverges run to run (sort the keys, add a deterministic tie-break, or suppress with %q)",
						types.ExprString(t.X), strings.TrimSpace(progcheck.AllowDirective)+" map-range -- <why it is order-insensitive>")
				}
			}
		case *ast.AssignStmt:
			if t.Tok == token.DEFINE {
				for i, lhs := range t.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || i >= len(t.Rhs) {
						continue
					}
					if exprMakesFreshSlice(info, t.Rhs[i]) {
						freshSlices[id.Name] = true
					} else {
						delete(freshSlices, id.Name)
					}
				}
			}
		case *ast.GenDecl:
			if t.Tok == token.VAR {
				for _, spec := range t.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok && vs.Type != nil && len(vs.Values) == 0 {
						if at, ok := vs.Type.(*ast.ArrayType); ok && at.Len == nil {
							for _, name := range vs.Names {
								freshSlices[name.Name] = true
							}
						}
					}
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[t]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					n.addHazard(t.Pos(), CheckHotPathAlloc,
						"map literal allocates on the per-cycle path; use reusable scratch arrays (cf. simt.Warp's uniqBuf/maskBuf) or suppress with %q", hotSuppressHint)
				}
			}
		case *ast.CallExpr:
			if id, ok := t.Fun.(*ast.Ident); ok {
				if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					switch b.Name() {
					case "make":
						if len(t.Args) > 0 {
							if tv, ok := info.Types[t.Args[0]]; ok {
								if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
									n.addHazard(t.Pos(), CheckHotPathAlloc,
										"make(map) allocates on the per-cycle path; use reusable scratch arrays (cf. simt.Warp's uniqBuf/maskBuf) or suppress with %q", hotSuppressHint)
								}
							}
						}
					case "append":
						if len(t.Args) > 0 {
							if base, ok := t.Args[0].(*ast.Ident); ok && freshSlices[base.Name] {
								n.addHazard(t.Pos(), CheckHotPathAlloc,
									"append grows %q, a slice freshly allocated in this function, on the per-cycle path; reuse a pooled buffer (x := s.buf[:0] ... s.buf = x) or suppress with %q",
									base.Name, hotSuppressHint)
							}
						}
					}
				}
			}
		}
		return true
	})
	return ifaceCalls
}

var hotSuppressHint = strings.TrimSpace(progcheck.AllowDirective) + " hotpath-alloc -- <why this allocation is off the per-cycle path>"

// noteAmbientFunc records the hazards that live in the callee itself:
// wall-clock reads and the process-global RNG. These fire at the
// reference site (the standard library is not scanned), whether the
// function is called or merely captured.
func (n *funcNode) noteAmbientFunc(at *ast.Ident, fn *types.Func) {
	pkg := fn.Pkg()
	if pkg == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return // methods (e.g. Time.Sub) are not the ambient package API
	}
	switch pkg.Path() {
	case "time":
		if progcheck.WallClockFuncs[fn.Name()] {
			n.addHazard(at.Pos(), CheckWallClock,
				"time.%s reads or schedules against the wall clock; code on a determinism path must be a pure function of its inputs", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if progcheck.GlobalRandFuncs[fn.Name()] {
			n.addHazard(at.Pos(), CheckGlobalRand,
				"%s.%s uses the process-global RNG; use a seeded generator (internal/rng) instead", pkg.Name(), fn.Name())
		}
	}
}

func (n *funcNode) addHazard(pos token.Pos, check, format string, args ...any) {
	n.hazards = append(n.hazards, hazard{pos: pos, check: check, msg: sprintf(format, args...)})
}

// exprMakesFreshSlice reports whether an expression allocates a new
// slice: make([]T, ...) or a slice literal. Type-aware version of the
// syntactic lint's helper.
func exprMakesFreshSlice(info *types.Info, e ast.Expr) bool {
	switch t := e.(type) {
	case *ast.CallExpr:
		id, ok := t.Fun.(*ast.Ident)
		if !ok || len(t.Args) == 0 {
			return false
		}
		if b, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin || b.Name() != "make" {
			return false
		}
		if tv, ok := info.Types[t.Args[0]]; ok {
			_, isSlice := tv.Type.Underlying().(*types.Slice)
			return isSlice
		}
	case *ast.CompositeLit:
		if tv, ok := info.Types[t]; ok {
			_, isSlice := tv.Type.Underlying().(*types.Slice)
			return isSlice
		}
	}
	return false
}

// reach is the BFS result for one fact: for every reached function,
// the edge it was discovered through, so findings can print a witness
// chain back to the root.
type reach map[string]string // node id -> parent id ("" for roots)

// propagate runs a deterministic multi-source BFS from the roots
// selected by isRoot.
func (g *Graph) propagate(isRoot func(*funcNode) bool) reach {
	r := make(reach)
	var frontier []string
	for _, id := range g.order {
		if isRoot(g.nodes[id]) {
			r[id] = ""
			frontier = append(frontier, id)
		}
	}
	for len(frontier) > 0 {
		var next []string
		for _, id := range frontier {
			n := g.nodes[id]
			callees := make([]string, 0, len(n.callees))
			//drslint:allow map-range -- collected ids are sorted before use
			for c := range n.callees {
				callees = append(callees, c)
			}
			sort.Strings(callees)
			for _, c := range callees {
				if _, seen := r[c]; seen {
					continue
				}
				if _, ok := g.nodes[c]; !ok {
					continue // callee outside the module
				}
				r[c] = id
				next = append(next, c)
			}
		}
		frontier = next
	}
	return r
}

// chain reconstructs the witness path from the root down to id.
func (r reach) chain(id string) []string {
	var rev []string
	for cur := id; ; {
		rev = append(rev, cur)
		parent, ok := r[cur]
		if !ok || parent == "" {
			break
		}
		cur = parent
	}
	out := make([]string, len(rev))
	for i, s := range rev {
		out[len(rev)-1-i] = s
	}
	return out
}
