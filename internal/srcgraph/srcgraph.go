// Package srcgraph is the type-aware, whole-program layer of the
// determinism lint. Where internal/progcheck's source lint judges one
// file at a time from syntax alone, srcgraph type-checks the module
// (go/types over export data from the go build cache — no external
// dependencies), builds a static call graph over every package, marks
// the functions where the determinism contract is rooted, and
// propagates hazard facts along call edges. A map iteration in an
// untagged helper three calls below the engine loop is then a finding,
// not a blind spot.
//
// Three analyses share the loaded program:
//
//   - Interprocedural hazards (hazards.go): map-range, wallclock,
//     global-rand and hotpath-alloc sites are collected per function
//     with full type information (a range over a map-typed parameter is
//     seen as such), and reported when the enclosing function is
//     reachable from a determinism root (engine entry points, harness
//     Run* API, //drslint:hotpath functions) or — for allocation churn
//     — from a hot root. Each finding carries the witness call chain
//     from the root.
//
//   - Spec-hash drift (speccheck.go): every struct with a Canonical
//     content-address encoder is cross-checked field by field against
//     what that encoder actually emits; a field that exists on the spec
//     but not in the encoding would merge distinct jobs under one
//     content address.
//
//   - Metrics registration (metricscheck.go): every struct that carries
//     `metrics:"..."` field tags must be reached by a RegisterStruct
//     call, directly or as a nested field of a registered struct;
//     otherwise the tags are dead annotation and the counters silently
//     never appear in snapshots.
//
// Roots and suppressions are function-granular. A function is a hot
// root when its doc comment carries //drslint:hotpath (the file-level
// tag is still honored and marks every function in the file); a
// //drslint:allow directive in a function's doc comment suppresses a
// check for the whole function, and the line-level grammar from
// internal/progcheck keeps working unchanged, so one suppression
// satisfies both passes.
//
// Like the syntactic lint, this is a tripwire, not a proof: calls
// through plain function values cannot be resolved statically and
// interface calls are expanded by implements-based class-hierarchy
// analysis, which over- rather than under-approximates the cone.
package srcgraph

import (
	"fmt"
	"sort"
	"strings"
)

// Check identifiers. The hazard checks reuse internal/progcheck's
// names so an existing //drslint:allow suppression covers both passes.
const (
	// CheckMapRange, CheckWallClock, CheckGlobalRand, CheckHotPathAlloc
	// mirror the progcheck source-lint classes, enforced
	// interprocedurally from the determinism/hot roots.
	CheckMapRange     = "map-range"
	CheckWallClock    = "wallclock"
	CheckGlobalRand   = "global-rand"
	CheckHotPathAlloc = "hotpath-alloc"
	// CheckSpecHash flags drift between a content-addressed spec struct
	// and its canonical encoder.
	CheckSpecHash = "spec-hash"
	// CheckMetricsReg flags metrics-tagged structs never reached by a
	// RegisterStruct call.
	CheckMetricsReg = "metrics-registration"
)

// Finding is one graph-pass diagnostic.
type Finding struct {
	// File is the module-relative path of the hazard site.
	File string `json:"file"`
	// Line is the 1-based source line.
	Line int `json:"line"`
	// Check classifies the diagnostic (see the Check* constants).
	Check string `json:"check"`
	// Func is the fully qualified function containing the hazard
	// (empty for the struct-level completeness checks).
	Func string `json:"func,omitempty"`
	// Root is the determinism or hot root that reaches Func.
	Root string `json:"root,omitempty"`
	// Chain is the witness call path from Root to Func, inclusive.
	Chain []string `json:"chain,omitempty"`
	// Msg is the human-readable diagnostic.
	Msg string `json:"msg"`
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s:%d: %s: %s", f.File, f.Line, f.Check, f.Msg)
	if len(f.Chain) > 1 {
		s += fmt.Sprintf(" (reached via %s)", strings.Join(f.Chain, " -> "))
	}
	return s
}

// Analyze runs every graph check over a loaded program and returns the
// findings sorted by file, line and check.
func Analyze(prog *Program) []Finding {
	var all []Finding
	all = append(all, CheckHazards(prog)...)
	all = append(all, CheckSpecHashDrift(prog)...)
	all = append(all, CheckMetricsRegistration(prog)...)
	SortFindings(all)
	return all
}

// SortFindings orders findings by file, line, check and message.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Msg < b.Msg
	})
}
