package srcgraph

import (
	"strings"
	"testing"

	"repro/internal/progcheck"
)

// The specimen module under testdata is a self-contained miniature of
// the repo: an engine package whose import path matches the det-root
// rules, a content-addressed spec with deliberate drift, and a metrics
// registry with one orphaned struct. Every analyzer must fire on it —
// these are the negative tests CI's zero-findings budget leans on: a
// loader regression that silently empties the call graph fails here,
// not as a suspiciously green lint run.

const specimenDir = "testdata/specimen"

func loadSpecimen(t *testing.T) *Program {
	t.Helper()
	prog, err := Load(specimenDir)
	if err != nil {
		t.Fatalf("load specimen: %v", err)
	}
	return prog
}

func byCheck(fs []Finding, check string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Check == check {
			out = append(out, f)
		}
	}
	return out
}

// TestInterproceduralHazards is the acceptance demonstration: a
// map-range and a hot-path alloc in untagged helpers two calls below
// their roots are flagged by the graph pass, each with its witness
// chain.
func TestInterproceduralHazards(t *testing.T) {
	prog := loadSpecimen(t)
	fs := CheckHazards(prog)

	mr := byCheck(fs, CheckMapRange)
	if len(mr) != 1 {
		t.Fatalf("want exactly 1 map-range finding, got %d: %v", len(mr), mr)
	}
	wantChain := []string{
		"specimen/internal/simt.RunGPU",
		"specimen/internal/simt.helperA",
		"specimen/internal/simt.helperB",
	}
	if got := mr[0].Chain; strings.Join(got, " ") != strings.Join(wantChain, " ") {
		t.Errorf("map-range chain = %v, want %v", got, wantChain)
	}
	if mr[0].File != "internal/simt/engine.go" {
		t.Errorf("map-range file = %q", mr[0].File)
	}

	ha := byCheck(fs, CheckHotPathAlloc)
	if len(ha) != 1 {
		t.Fatalf("want exactly 1 hotpath-alloc finding, got %d: %v", len(ha), ha)
	}
	wantChain = []string{
		"specimen/internal/simt.stepOnce",
		"specimen/internal/simt.mid",
		"specimen/internal/simt.leafAlloc",
	}
	if got := ha[0].Chain; strings.Join(got, " ") != strings.Join(wantChain, " ") {
		t.Errorf("hotpath-alloc chain = %v, want %v", got, wantChain)
	}

	if wc := byCheck(fs, CheckWallClock); len(wc) != 1 || wc[0].Func != "specimen/internal/simt.stampNow" {
		t.Errorf("want 1 wallclock finding in stampNow, got %v", wc)
	}
	if gr := byCheck(fs, CheckGlobalRand); len(gr) != 1 || gr[0].Func != "specimen/internal/simt.jitter" {
		t.Errorf("want 1 global-rand finding in jitter, got %v", gr)
	}

	// The line-allowed range in sortedTotal must be suppressed even
	// though sortedTotal is reachable from the root.
	for _, f := range fs {
		if f.Func == "specimen/internal/simt.sortedTotal" {
			t.Errorf("suppressed range in sortedTotal still reported: %v", f)
		}
	}
}

// TestLegacyPassMissesUntaggedHelpers proves the other half of the
// acceptance demonstration: the file-granular syntactic lint does not
// see either seeded site (the map arrives as a parameter, and no
// file-level hotpath tag exists), so the graph pass is the only line
// of defense.
func TestLegacyPassMissesUntaggedHelpers(t *testing.T) {
	fs, err := progcheck.LintDirs(specimenDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		if f.Check == progcheck.CheckMapRange {
			t.Errorf("legacy pass unexpectedly flags map-range (the demonstration requires it to miss): %v", f)
		}
		if f.Check == progcheck.CheckHotPathAlloc {
			t.Errorf("legacy pass unexpectedly flags hotpath-alloc (the demonstration requires it to miss): %v", f)
		}
	}
}

func TestSpecimenRoots(t *testing.T) {
	prog := loadSpecimen(t)
	g := BuildGraph(prog)
	det, hot := g.Roots()
	if why := det["specimen/internal/simt.RunGPU"]; why == "" {
		t.Errorf("RunGPU not a det root; det roots: %v", det)
	}
	if why := hot["specimen/internal/simt.stepOnce"]; !strings.Contains(why, "directive") {
		t.Errorf("stepOnce not a directive hot root; hot roots: %v", hot)
	}
	// The doc-comment directive must not promote the whole file.
	if _, ok := hot["specimen/internal/simt.helperA"]; ok {
		t.Error("helperA became a hot root from a doc-comment directive on stepOnce")
	}
}

func TestSpecHashDrift(t *testing.T) {
	prog := loadSpecimen(t)
	fs := CheckSpecHashDrift(prog)
	if len(fs) != 2 {
		t.Fatalf("want exactly 2 spec-hash findings, got %d: %v", len(fs), fs)
	}
	var jobSpec, fullSpec []Finding
	for _, f := range fs {
		if strings.Contains(f.Msg, "JobSpec") {
			jobSpec = append(jobSpec, f)
		}
		if strings.Contains(f.Msg, "FullSpec") {
			fullSpec = append(fullSpec, f)
		}
	}
	if len(jobSpec) != 1 || !strings.Contains(jobSpec[0].Msg, "Debug") {
		t.Errorf("want exactly 1 JobSpec finding naming Debug, got %v", jobSpec)
	}
	if len(fullSpec) != 1 || !strings.Contains(fullSpec[0].Msg, "Extra") {
		t.Errorf("want exactly 1 FullSpec finding naming Extra, got %v", fullSpec)
	}
}

func TestMetricsRegistration(t *testing.T) {
	prog := loadSpecimen(t)
	fs := CheckMetricsRegistration(prog)
	if len(fs) != 1 {
		t.Fatalf("want exactly 1 metrics-registration finding, got %d: %v", len(fs), fs)
	}
	if !strings.Contains(fs[0].Msg, "specimen/internal/stats.Orphan") {
		t.Errorf("finding does not name the orphan: %v", fs[0])
	}
}

// TestRealTreeClean locks the tentpole's green state: the shipped
// sources carry no unsuppressed graph findings, and the loader health
// counters prove the pass actually analyzed the module.
func TestRealTreeClean(t *testing.T) {
	prog, err := Load("../..", "./internal/...", "./cmd/...")
	if err != nil {
		t.Fatal(err)
	}
	g := BuildGraph(prog)
	if n := g.NumFuncs(); n < 500 {
		t.Errorf("suspiciously small call graph: %d funcs", n)
	}
	det, hot := g.Roots()
	if len(det) < 4 {
		t.Errorf("want >= 4 det roots (engine + harness entry points), got %v", det)
	}
	if len(hot) < 10 {
		t.Errorf("want >= 10 hot roots (per-cycle directives), got %v", hot)
	}
	if fs := Analyze(prog); len(fs) != 0 {
		t.Errorf("real tree has graph findings:\n%v", fs)
	}
}

// TestHotConeCoversPerCycleCallees pins the reason function-granular
// tags could replace the file tags: propagation covers the tagged
// functions' whole callee cones, including the memory hierarchy.
func TestHotConeCoversPerCycleCallees(t *testing.T) {
	prog, err := Load("../..", "./internal/...", "./cmd/...")
	if err != nil {
		t.Fatal(err)
	}
	g := BuildGraph(prog)
	hot := g.propagate(func(n *funcNode) bool { return n.hotRoot })
	for _, want := range []string{
		"repro/internal/simt.(*SMX).issueMem",
		"repro/internal/simt.(*SMX).resolve",
		"repro/internal/simt.(*warpState).retireLanes",
		"repro/internal/memsys.(*SMXMem).WarpAccessEx",
		"repro/internal/memsys.(*cache).access",
		"repro/internal/memsys.(*L2Port).Reset",
	} {
		if _, ok := hot[want]; !ok {
			t.Errorf("%s not hot-reachable", want)
		}
	}
}
