package srcgraph

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the analyzed module.
type Package struct {
	// Path is the import path.
	Path string
	// Dir is the absolute source directory.
	Dir string
	// Files holds the parsed non-test sources, sorted by filename.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the per-file type facts (uses, defs, selections,
	// expression types) the analyses resolve identifiers through.
	Info *types.Info
}

// Program is a loaded module: every package matched by the load
// patterns, parsed and type-checked, plus the shared position table.
type Program struct {
	// Fset maps positions for every parsed file.
	Fset *token.FileSet
	// Dir is the absolute module root; findings report paths relative
	// to it.
	Dir string
	// Pkgs lists the module's packages sorted by import path.
	Pkgs []*Package
}

// Rel renders a position as a module-relative "path:line" pair.
func (p *Program) Rel(pos token.Pos) (file string, line int) {
	position := p.Fset.Position(pos)
	file = position.Filename
	if r, err := filepath.Rel(p.Dir, file); err == nil && !strings.HasPrefix(r, "..") {
		file = filepath.ToSlash(r)
	}
	return file, position.Line
}

// listedPkg is one row of the `go list` output the loader consumes.
type listedPkg struct {
	path     string
	export   string // compiled export data in the build cache
	dir      string
	inModule bool
	goFiles  []string
}

// Load type-checks the module rooted at dir. Patterns follow the go
// command ("./...", "./internal/..."); they default to "./...". Only
// packages belonging to the module itself are parsed from source —
// dependencies (the standard library; the module has no others) are
// imported from the compiled export data `go list -export` places in
// the build cache, so loading is fully offline and needs nothing
// beyond the toolchain.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("srcgraph: resolve %s: %w", dir, err)
	}
	pkgs, err := goList(abs, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.export != "" {
			exports[p.path] = p.export
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("srcgraph: no export data for %q", path)
		}
		return os.Open(f)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", lookup)
	prog := &Program{Fset: fset, Dir: abs}

	var modPkgs []*listedPkg
	for _, p := range pkgs {
		if p.inModule {
			modPkgs = append(modPkgs, p)
		}
	}
	sort.Slice(modPkgs, func(i, j int) bool { return modPkgs[i].path < modPkgs[j].path })

	for _, lp := range modPkgs {
		files := make([]*ast.File, 0, len(lp.goFiles))
		for _, name := range lp.goFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("srcgraph: parse %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Uses:       make(map[*ast.Ident]types.Object),
			Defs:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Types:      make(map[ast.Expr]types.TypeAndValue),
		}
		conf := types.Config{Importer: imp}
		tp, err := conf.Check(lp.path, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("srcgraph: type-check %s: %w", lp.path, err)
		}
		prog.Pkgs = append(prog.Pkgs, &Package{
			Path:  lp.path,
			Dir:   lp.dir,
			Files: files,
			Types: tp,
			Info:  info,
		})
	}
	return prog, nil
}

// goList invokes `go list -deps -export` in dir and parses the
// tab-separated rows. -export compiles (or reuses from the build
// cache) each dependency's export data, which is what lets the loader
// type-check against the standard library without golang.org/x/tools.
func goList(dir string, patterns []string) ([]*listedPkg, error) {
	format := "{{.ImportPath}}\t{{.Export}}\t{{.Dir}}\t{{if .Module}}{{.Module.Path}}{{end}}\t{{join .GoFiles \",\"}}"
	args := append([]string{"list", "-deps", "-export", "-f", format}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr strings.Builder
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("srcgraph: go list %s: %s", strings.Join(patterns, " "), msg)
	}
	var pkgs []*listedPkg
	for _, line := range strings.Split(strings.TrimRight(string(out), "\n"), "\n") {
		cols := strings.Split(line, "\t")
		if len(cols) != 5 {
			return nil, fmt.Errorf("srcgraph: unexpected go list row %q", line)
		}
		p := &listedPkg{
			path:   cols[0],
			export: cols[1],
			dir:    cols[2],
			// Module packages are parsed from source; everything else
			// (the standard library) comes from export data. The dir
			// check keeps a dependency module, should one ever appear,
			// on the export-data side.
			inModule: cols[3] != "" && strings.HasPrefix(cols[2], dir),
		}
		if cols[4] != "" {
			p.goFiles = strings.Split(cols[4], ",")
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
