package srcgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strings"

	"repro/internal/progcheck"
)

// Spec-hash drift check.
//
// A job's content address is the SHA-256 of its canonical encoding
// (service.JobSpec.Canonical). The dedup registry, the artifact-store
// roadmap item and every client equate "same address" with "same job" —
// so a spec field that exists on the struct but is invisible to the
// encoder merges distinct jobs under one address, which is a silent
// wrong-result bug, not a performance bug. This check finds every
// struct with a Canonical() []byte encoder, works out what that encoder
// actually emits, and requires the two field sets to agree:
//
//   - an unexported field is invisible to encoding/json entirely;
//   - a field tagged `json:"-"` is deliberately excluded — never valid
//     on a content-addressed spec;
//   - a field without an explicit json tag has its wire name (and so
//     the hash preimage) coupled to the Go identifier, where a rename
//     silently changes every job's address;
//   - an `omitempty` option makes the encoding non-total (a zero field
//     vanishes), so two field sets can collide on one preimage;
//   - if Canonical marshals a projection struct instead of the spec
//     itself, every exported spec field must have a same-named
//     counterpart in the projection.
//
// Suppress a finding with `//drslint:allow spec-hash -- <why>` on the
// field's line (or the line above it).

// CheckSpecHashDrift cross-checks every Canonical content-address
// encoder in the program against the struct it addresses.
func CheckSpecHashDrift(prog *Program) []Finding {
	var out []Finding
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Recv == nil || decl.Name.Name != "Canonical" || decl.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[decl.Name].(*types.Func)
				if !ok || !returnsBytes(fn) {
					continue
				}
				spec := receiverStruct(fn)
				if spec == nil {
					continue
				}
				out = append(out, checkCanonical(prog, pkg, decl, spec)...)
			}
		}
	}
	SortFindings(out)
	return out
}

// returnsBytes reports whether fn's single result is []byte — the
// shape of a content-address preimage encoder.
func returnsBytes(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	sl, ok := sig.Results().At(0).Type().Underlying().(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := sl.Elem().(*types.Basic)
	return ok && basic.Kind() == types.Byte
}

// receiverStruct returns the named struct type fn is a method of.
func receiverStruct(fn *types.Func) *types.Named {
	sig := fn.Type().(*types.Signature)
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// checkCanonical verifies one encoder: what struct does its
// json.Marshal call emit, and does that encoding cover the spec?
func checkCanonical(prog *Program, pkg *Package, decl *ast.FuncDecl, spec *types.Named) []Finding {
	specStruct := spec.Underlying().(*types.Struct)
	specName := spec.Obj().Name()

	encoded := findMarshalledStruct(pkg, decl)
	if encoded == nil {
		file, line := prog.Rel(decl.Pos())
		return suppressible(prog, pkg, decl.Pos(), Finding{
			File: file, Line: line, Check: CheckSpecHash,
			Msg: fmt.Sprintf("%s.Canonical has no statically visible json.Marshal of a struct; the spec-hash drift check cannot verify that every %s field reaches the content address (restructure the encoder or suppress with %q)",
				specName, specName, allowHint(CheckSpecHash)),
		})
	}

	var out []Finding
	// Field-level rules on the struct that is actually encoded.
	encStruct := encoded.Underlying().(*types.Struct)
	encNames := make(map[string]token.Pos) // wire name -> field pos
	for i := 0; i < encStruct.NumFields(); i++ {
		f := encStruct.Field(i)
		tag, hasTag := reflect.StructTag(encStruct.Tag(i)).Lookup("json")
		name, opts, _ := strings.Cut(tag, ",")
		file, line := prog.Rel(f.Pos())
		add := func(format string, args ...any) {
			out = append(out, suppressible(prog, pkg, f.Pos(), Finding{
				File: file, Line: line, Check: CheckSpecHash,
				Msg: fmt.Sprintf(format, args...),
			})...)
		}
		if !f.Exported() {
			if encoded == spec {
				add("field %s.%s is unexported, so it is invisible to the canonical encoder: state it carries is not part of the job's content address and distinct jobs can merge under one hash (export and tag it, or suppress with %q)",
					specName, f.Name(), allowHint(CheckSpecHash))
			}
			continue
		}
		if hasTag && name == "-" && tag != "-," {
			add("field %s.%s is tagged json:\"-\" and never reaches the canonical encoding; a spec field outside the content address merges distinct jobs under one hash (encode it or suppress with %q)",
				encoded.Obj().Name(), f.Name(), allowHint(CheckSpecHash))
			continue
		}
		if !hasTag {
			add("field %s.%s has no explicit json tag; its wire name — part of every job's hash preimage — is coupled to the Go identifier, and a rename silently re-addresses every job (pin it with a json tag or suppress with %q)",
				encoded.Obj().Name(), f.Name(), allowHint(CheckSpecHash))
		}
		for _, opt := range strings.Split(opts, ",") {
			if opt == "omitempty" {
				add("field %s.%s is tagged omitempty, making the canonical encoding non-total: a zero value vanishes from the preimage and two different field sets can share one content address (drop omitempty or suppress with %q)",
					encoded.Obj().Name(), f.Name(), allowHint(CheckSpecHash))
			}
		}
		wire := f.Name()
		if hasTag && name != "" && name != "-" {
			wire = name
		}
		if prev, dup := encNames[wire]; dup {
			_, prevLine := prog.Rel(prev)
			add("wire name %q is emitted by two fields of %s (first at line %d); the canonical encoding must map each field to a distinct key",
				wire, encoded.Obj().Name(), prevLine)
		} else {
			encNames[wire] = f.Pos()
		}
	}

	// Projection coverage: every exported spec field must survive into
	// the encoded struct.
	if encoded != spec {
		encFields := make(map[string]bool, encStruct.NumFields())
		for i := 0; i < encStruct.NumFields(); i++ {
			encFields[encStruct.Field(i).Name()] = true
		}
		for i := 0; i < specStruct.NumFields(); i++ {
			f := specStruct.Field(i)
			if !f.Exported() || encFields[f.Name()] {
				continue
			}
			file, line := prog.Rel(f.Pos())
			out = append(out, suppressible(prog, pkg, f.Pos(), Finding{
				File: file, Line: line, Check: CheckSpecHash,
				Msg: fmt.Sprintf("field %s.%s is absent from the %s projection that Canonical encodes; the field never reaches the content address and distinct jobs can merge under one hash (add it to the projection or suppress with %q)",
					specName, f.Name(), encoded.Obj().Name(), allowHint(CheckSpecHash)),
			})...)
		}
	}
	return out
}

// findMarshalledStruct locates the first json.Marshal call in the
// encoder body and resolves the named struct type it encodes.
func findMarshalledStruct(pkg *Package, decl *ast.FuncDecl) *types.Named {
	var found *types.Named
	ast.Inspect(decl.Body, func(node ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/json" || fn.Name() != "Marshal" {
			return true
		}
		t := pkg.Info.Types[call.Args[0]].Type
		for {
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
				continue
			}
			break
		}
		if named, ok := t.(*types.Named); ok {
			if _, isStruct := named.Underlying().(*types.Struct); isStruct {
				found = named
			}
		}
		return true
	})
	return found
}

// allowHint renders the suppression comment for a check.
func allowHint(check string) string {
	return strings.TrimSpace(progcheck.AllowDirective) + " " + check + " -- <why>"
}

// suppressible applies line-level //drslint:allow suppressions to a
// finding anchored at pos; it returns the finding in a slice, or an
// empty slice when suppressed.
func suppressible(prog *Program, pkg *Package, pos token.Pos, f Finding) []Finding {
	file := pkg.FileAt(pos)
	if file != nil {
		la := progcheck.AllowsByLine(file, prog.Fset)
		if la[f.Line][progcheck.SrcCheck(f.Check)] || la[f.Line-1][progcheck.SrcCheck(f.Check)] {
			return nil
		}
	}
	return []Finding{f}
}

// FileAt returns the parsed file containing pos, or nil.
func (p *Package) FileAt(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}
