package srcgraph

import (
	"fmt"
	"go/ast"
	"go/types"
	"reflect"
	"sort"
)

// Metrics-registration completeness check.
//
// A `metrics:"..."` field tag is an instruction to
// metrics.Registry.RegisterStruct — but the tag does nothing unless
// some RegisterStruct call actually reaches the struct. A Stats struct
// that grows tags without a registration (or loses its registration in
// a refactor) fails nothing: the counters silently never appear in
// snapshots, which are the repo's determinism fingerprints and golden
// regression artifacts. This check requires every struct type carrying
// metrics tags to be reached by a RegisterStruct call, either directly
// or as a nested struct field of a registered struct (RegisterStruct
// recurses through exported struct fields and arrays).
//
// Suppress with `//drslint:allow metrics-registration -- <why>` on the
// type declaration's line (or the line above it).

// CheckMetricsRegistration verifies that every metrics-tagged struct
// in the program is registered.
func CheckMetricsRegistration(prog *Program) []Finding {
	// Every named struct type carrying at least one metrics tag.
	type tagged struct {
		named *types.Named
		pkg   *Package
	}
	var taggedTypes []tagged
	for _, pkg := range prog.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if _, has := reflect.StructTag(st.Tag(i)).Lookup("metrics"); has {
					taggedTypes = append(taggedTypes, tagged{named: named, pkg: pkg})
					break
				}
			}
		}
	}
	if len(taggedTypes) == 0 {
		return nil
	}

	// Struct types handed to a RegisterStruct call anywhere in the
	// program, plus the closure RegisterStruct itself walks: exported
	// struct fields and arrays of structs, recursively.
	registered := make(map[string]bool) // qualified type name
	var mark func(t types.Type)
	marked := make(map[types.Type]bool)
	mark = func(t types.Type) {
		if marked[t] {
			return
		}
		marked[t] = true
		if p, ok := t.(*types.Pointer); ok {
			mark(p.Elem())
			return
		}
		if named, ok := t.(*types.Named); ok {
			if _, isStruct := named.Underlying().(*types.Struct); isStruct {
				registered[qualifiedName(named)] = true
			}
			t = named.Underlying()
		}
		st, ok := t.(*types.Struct)
		if !ok {
			return
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				continue // RegisterStruct skips unexported fields
			}
			ft := f.Type()
			if arr, isArr := ft.Underlying().(*types.Array); isArr {
				ft = arr.Elem()
			}
			if _, isStruct := ft.Underlying().(*types.Struct); isStruct {
				mark(ft)
			}
		}
	}

	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(node ast.Node) bool {
				call, ok := node.(*ast.CallExpr)
				if !ok || len(call.Args) < 2 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "RegisterStruct" {
					return true
				}
				if _, isFunc := pkg.Info.Uses[sel.Sel].(*types.Func); !isFunc {
					return true
				}
				if tv, ok := pkg.Info.Types[call.Args[1]]; ok && tv.Type != nil {
					mark(tv.Type)
				}
				return true
			})
		}
	}

	sort.Slice(taggedTypes, func(i, j int) bool {
		return qualifiedName(taggedTypes[i].named) < qualifiedName(taggedTypes[j].named)
	})

	var out []Finding
	for _, t := range taggedTypes {
		q := qualifiedName(t.named)
		if registered[q] {
			continue
		}
		pos := t.named.Obj().Pos()
		file, line := prog.Rel(pos)
		out = append(out, suppressible(prog, t.pkg, pos, Finding{
			File: file, Line: line, Check: CheckMetricsReg,
			Msg: fmt.Sprintf("struct %s carries metrics field tags but no RegisterStruct call ever reaches it (directly or as a nested field of a registered struct); its counters will silently never appear in snapshots — register it or suppress with %q",
				q, allowHint(CheckMetricsReg)),
		})...)
	}
	SortFindings(out)
	return out
}

// qualifiedName renders "pkgpath.TypeName", the cross-package-unit
// identity key (object pointers differ between a package type-checked
// from source and the same package seen through export data).
func qualifiedName(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}
