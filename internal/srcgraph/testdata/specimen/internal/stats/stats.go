// Package stats seeds the metrics-registration analyzer: Registered is
// wired up (and carries Inner through a nested exported field), Orphan
// is the gap the analyzer must flag.
package stats

import "specimen/internal/metrics"

// Inner is registered transitively through Registered.
type Inner struct {
	N int64 `metrics:"n"`
}

// Registered is handed to RegisterStruct in Wire.
type Registered struct {
	Hits  int64 `metrics:"hits"`
	Inner Inner
}

// Orphan carries metrics tags but is never registered.
type Orphan struct {
	Misses int64 `metrics:"misses"`
}

// Wire registers the stats structs.
func Wire(r *metrics.Registry) {
	r.RegisterStruct("spec", &Registered{})
}
