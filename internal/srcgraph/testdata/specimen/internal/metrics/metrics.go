// Package metrics is a minimal registry clone: just enough surface for
// the metrics-registration analyzer to resolve RegisterStruct calls.
package metrics

// Registry collects named counters.
type Registry struct {
	names []string
}

// RegisterStruct registers v's metrics-tagged fields under prefix (the
// real registry reflects over the struct; the clone only needs the
// call shape the analyzer matches on).
func (r *Registry) RegisterStruct(prefix string, v any) {
	r.names = append(r.names, prefix)
}
