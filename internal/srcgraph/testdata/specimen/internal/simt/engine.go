// Package simt is a miniature engine mirroring the shape of the real
// one, used by the srcgraph tests to pin each analyzer's behavior. The
// det-root rules match this package path (suffix internal/simt), and
// every seeded hazard below must keep firing: a loader regression that
// silently emptied the call graph would otherwise be indistinguishable
// from a clean run.
package simt

import (
	"math/rand"
	"time"
)

// State is the engine's per-run state.
type State struct {
	Cells   map[int]int
	scratch map[int]int
	Stamp   int64
}

// RunGPU is a determinism root by rule: exported, package-level, in a
// package whose import path ends in internal/simt.
func RunGPU(s *State) int {
	return helperA(s) + sortedTotal(s)
}

// helperA is deliberately untagged: one call below the root.
func helperA(s *State) int {
	s.Stamp = stampNow()
	return helperB(s.Cells) + jitter()
}

// helperB ranges over a map two calls below the determinism root. The
// legacy file-granular lint cannot see this (the map arrives as a
// parameter and the file carries no file-level tag); the graph pass
// must flag it with the witness chain RunGPU -> helperA -> helperB.
func helperB(cells map[int]int) int {
	sum := 0
	for k := range cells {
		sum += k
	}
	return sum
}

// stampNow reads the wall clock two calls below the root.
func stampNow() int64 {
	return time.Now().UnixNano()
}

// jitter draws from the process-global RNG.
func jitter() int {
	return rand.Intn(8)
}

// stepOnce is a function-granular hot root: only its doc comment
// carries the directive, so the rest of the file stays untagged.
//
//drslint:hotpath
func stepOnce(s *State) {
	mid(s)
}

// mid is untagged, between the hot root and the allocation.
func mid(s *State) {
	leafAlloc(s)
}

// leafAlloc allocates a map two calls below the hot root.
func leafAlloc(s *State) {
	s.scratch = make(map[int]int, 4)
}

// sortedTotal pins the suppression grammar: the range is
// order-insensitive and carries a line-level allow, so neither pass may
// report it.
func sortedTotal(s *State) int {
	n := 0
	//drslint:allow map-range -- pure sum, order-insensitive
	for _, v := range s.Cells {
		n += v
	}
	return n
}
