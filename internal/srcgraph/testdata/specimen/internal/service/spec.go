// Package service clones the JobSpec/Canonical shape so the spec-hash
// drift analyzer has pinned positive and negative cases.
package service

import "encoding/json"

// JobSpec is content-addressed: Canonical's bytes are hashed into the
// job's identity. Debug is deliberately excluded from the encoding —
// the drift the analyzer must flag.
type JobSpec struct {
	Scene string `json:"scene"`
	Seed  int64  `json:"seed"`
	Debug string `json:"-"`
}

// Canonical returns the canonical encoding of the spec.
func (s *JobSpec) Canonical() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		panic(err)
	}
	return b
}

// WireSpec is the projection FullSpec.Canonical actually encodes; it
// deliberately drops Extra.
type WireSpec struct {
	Scene string `json:"scene"`
}

// FullSpec has a field its projection misses — the analyzer must name
// Extra.
type FullSpec struct {
	Scene string `json:"scene"`
	Extra int    `json:"extra"`
}

// Canonical encodes the projection, not the spec itself.
func (s *FullSpec) Canonical() []byte {
	w := WireSpec{Scene: s.Scene}
	b, err := json.Marshal(w)
	if err != nil {
		panic(err)
	}
	return b
}
