module specimen

go 1.24
