package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/reorder"
	"repro/internal/scene"
	"repro/internal/tbc"
)

// tinyParams keeps experiment tests fast: small scenes, low-res traces,
// a scaled-down device.
func tinyParams() Params {
	p := DefaultParams()
	p.Tris = 3000
	p.Width = 64
	p.Height = 48
	p.Bounces = 3
	p.Options.Simt.NumSMX = 2
	p.Options.AilaWarps = 8
	drsCfg := core.DefaultConfig()
	drsCfg.WarpsOverride = 8
	tbcCfg := tbc.DefaultConfig()
	tbcCfg.WarpsPerBlock = 4
	p.Options.PolicyOverrides = []reorder.Policy{core.NewPolicy(drsCfg), tbc.NewPolicy(tbcCfg)}
	return p
}

func TestBuildWorkload(t *testing.T) {
	p := tinyParams()
	w, err := BuildWorkload(scene.ConferenceRoom, p)
	if err != nil {
		t.Fatal(err)
	}
	if w.Traces.TotalRays() == 0 {
		t.Fatalf("no rays captured")
	}
	if len(w.BounceRays(1, p)) != 64*48 {
		t.Errorf("bounce 1 rays = %d", len(w.BounceRays(1, p)))
	}
	p.MaxRaysPerBounce = 100
	if got := len(w.BounceRays(1, p)); got != 100 {
		t.Errorf("cap not applied: %d", got)
	}
}

func TestFigure2(t *testing.T) {
	p := tinyParams()
	rows, err := Figure2(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("too few rows: %d", len(rows))
	}
	// Premise of Figure 2: primary bounces are more efficient than
	// later ones.
	if rows[0].Eff <= rows[len(rows)-1].Eff {
		t.Errorf("B1 eff %.3f not above B%d eff %.3f",
			rows[0].Eff, rows[len(rows)-1].Bounce, rows[len(rows)-1].Eff)
	}
	for _, r := range rows {
		sum := r.Breakdown.W1to8 + r.Breakdown.W9to16 + r.Breakdown.W17to24 + r.Breakdown.W25to32
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("B%d breakdown sums to %.3f", r.Bounce, sum)
		}
	}
	txt := RenderFigure2(rows)
	if !strings.Contains(txt, "Figure 2") || !strings.Contains(txt, "B1") {
		t.Errorf("render missing content:\n%s", txt)
	}
}

func TestTable1(t *testing.T) {
	txt := Table1(DefaultParams())
	for _, want := range []string{"980 MHz", "Greedy-Then-Oldest", "65536", "1536 KB"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, txt)
		}
	}
}

func TestFigure8AndRenderers(t *testing.T) {
	p := tinyParams()
	cells, err := Figure8(p, 2, []scene.Benchmark{scene.ConferenceRoom})
	if err != nil {
		t.Fatal(err)
	}
	// 7 configs x 2 bounces.
	if len(cells) != 14 {
		t.Fatalf("cells = %d, want 14", len(cells))
	}
	for _, c := range cells {
		if c.Mrays <= 0 {
			t.Errorf("%s B%d %s: nonpositive Mrays", c.Scene, c.Bounce, c.Config)
		}
	}
	txt := RenderFigure8(cells, 2)
	if !strings.Contains(txt, "ideal") || !strings.Contains(txt, "aila") {
		t.Errorf("figure 8 render missing configs:\n%s", txt)
	}
	txt9 := RenderFigure9(cells, 2)
	if !strings.Contains(txt9, "stall rate") {
		t.Errorf("figure 9 render:\n%s", txt9)
	}
}

func TestTable2Runner(t *testing.T) {
	p := tinyParams()
	cells, err := Table2(p, 1, []scene.Benchmark{scene.FairyForest})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(Table2Buffers) {
		t.Fatalf("cells = %d", len(cells))
	}
	txt := RenderTable2(cells, 1)
	if !strings.Contains(txt, "#18") {
		t.Errorf("table 2 render missing buffer column:\n%s", txt)
	}
}

func TestFigure10And11(t *testing.T) {
	p := tinyParams()
	p.Bounces = 2
	cells, err := Figure10(p, 2, []scene.Benchmark{scene.ConferenceRoom})
	if err != nil {
		t.Fatal(err)
	}
	// 4 archs x (2 bounces + overall).
	if len(cells) != 12 {
		t.Fatalf("cells = %d, want 12", len(cells))
	}
	// DRS overall efficiency must beat Aila overall.
	var ailaEff, drsEff float64
	for _, c := range cells {
		if c.Bounce != 0 {
			continue
		}
		switch c.Arch {
		case harness.ArchAila:
			ailaEff = c.Eff
		case harness.ArchDRS:
			drsEff = c.Eff
		}
	}
	if drsEff <= ailaEff {
		t.Errorf("DRS overall eff %.3f not above Aila %.3f", drsEff, ailaEff)
	}
	t10 := RenderFigure10(cells, 2)
	if !strings.Contains(t10, "drs") || !strings.Contains(t10, "SI") {
		t.Errorf("figure 10 render:\n%s", t10)
	}
	t11 := RenderFigure11(cells, 2)
	if !strings.Contains(t11, "drs x") || !strings.Contains(t11, "all") {
		t.Errorf("figure 11 render:\n%s", t11)
	}
}

func TestOverheadNumbers(t *testing.T) {
	txt := Overhead(core.DefaultConfig())
	// The paper's arithmetic: 744 B swap buffers, 488 B state table,
	// ~1.4 KB total, 0.55% of the register file, 114.75 KB DMK spawn
	// memory, 2.5 KB TBC warp buffer, 0.11% die area.
	for _, want := range []string{"744 B", "488 B", "~1.4 KB", "0.55%", "114.75 KB", "2.5 KB", "0.11%"} {
		if !strings.Contains(txt, want) {
			t.Errorf("overhead missing %q:\n%s", want, txt)
		}
	}
}

// TestPoliciesFigure: the cross-policy grid covers every policy with a
// per-bounce row plus overall, the speedup denominator (noop) is
// present, and the output is byte-identical across scheduler worker
// counts — the same guarantee the paper figures carry.
func TestPoliciesFigure(t *testing.T) {
	p := tinyParams()
	p.Bounces = 2
	pols := []string{"noop", "ser", "drs"}
	cells, err := PoliciesFigure(p, 2, []scene.Benchmark{scene.ConferenceRoom}, pols)
	if err != nil {
		t.Fatal(err)
	}
	// 3 policies x (2 bounces + overall).
	if len(cells) != 9 {
		t.Fatalf("cells = %d, want 9", len(cells))
	}
	for _, c := range cells {
		if c.Mrays <= 0 {
			t.Errorf("%s B%d %s: nonpositive Mrays", c.Scene, c.Bounce, c.Policy)
		}
	}
	txt := RenderPolicies(cells, 2)
	for _, want := range []string{"noop", "ser", "drs", "x noop", "all", "1.00x"} {
		if !strings.Contains(txt, want) {
			t.Errorf("policies render missing %q:\n%s", want, txt)
		}
	}

	p2 := p
	p2.Options.Parallelism = 3
	p2.Cache = NewWorkloadCache()
	again, err := PoliciesFigure(p2, 2, []scene.Benchmark{scene.ConferenceRoom}, pols)
	if err != nil {
		t.Fatal(err)
	}
	if RenderPolicies(again, 2) != txt {
		t.Fatalf("policies figure not byte-identical across worker counts")
	}
}

func TestPolicyCatalog(t *testing.T) {
	txt := PolicyCatalog()
	for _, name := range harness.Policies().Names() {
		if !strings.Contains(txt, name) {
			t.Errorf("catalog missing %q:\n%s", name, txt)
		}
	}
}
