package experiments

import (
	"context"
	"fmt"

	"repro/internal/cellsched"
	"repro/internal/harness"
	"repro/internal/scene"
	"repro/internal/simt"
)

// PolicyCell is one policy/scene/bounce measurement of the cross-policy
// comparison figure.
type PolicyCell struct {
	Scene  scene.Benchmark
	Policy string
	Bounce int // 0 = overall (all bounces merged)
	Rays   int
	Eff    float64
	Mrays  float64
	// Reorders, RaysMoved, CostCycles are the policy's generic
	// reordering counters (reorder.Stats), comparable across methods.
	Reorders   int64
	RaysMoved  int64
	CostCycles int64
}

// ComparisonPolicies lists the policies the cross-policy figure runs,
// in presentation order: the no-op denominator first, then ahead-of-time
// sorting, then the divergence-time reorderers in rough order of
// hardware ambition.
var ComparisonPolicies = []string{"noop", "sort", "tbc", "dmk", "ser", "drs"}

// policyResult is one (scene, policy, bounce) cell outcome plus the raw
// stats the overall row aggregates from.
type policyResult struct {
	ok    bool // false: the bounce stream was empty, cell skipped
	cell  PolicyCell
	stats simt.Stats
	rays  int
	cost  int64
}

// PoliciesFigure runs the cross-policy comparison: the given policies
// (nil = ComparisonPolicies) over the given scenes (nil = all four), per
// bounce plus overall, with speedups normalized to the explicit no-op
// baseline. Policy configurations come from Params.Options
// (PolicyOverrides or registry defaults), so the same scaled-down
// machine serves every method.
//
// Every (scene, policy, bounce) simulation is an independent scheduler
// cell; the grid runs on Options.Parallelism workers and the rows are
// assembled positionally in the canonical scene/policy/bounce order, so
// the output is byte-identical at any worker count.
func PoliciesFigure(p Params, perBounce int, scenes []scene.Benchmark, policies []string) ([]PolicyCell, error) {
	return PoliciesFigureCtx(context.Background(), p, perBounce, scenes, policies)
}

// PoliciesFigureCtx is PoliciesFigure with cancellation: scheduler
// workers stop claiming cells once ctx is done and in-flight device
// runs abort at their next epoch barrier. An uncancelled call is
// byte-identical to PoliciesFigure.
func PoliciesFigureCtx(ctx context.Context, p Params, perBounce int, scenes []scene.Benchmark, policies []string) ([]PolicyCell, error) {
	if perBounce <= 0 {
		perBounce = 3
	}
	if scenes == nil {
		scenes = scene.Benchmarks
	}
	if policies == nil {
		policies = ComparisonPolicies
	}
	bounces := p.Bounces
	if bounces <= 0 {
		bounces = 8
	}
	p = p.ensureCache()

	grid := workloadCells[policyResult](p, scenes)
	prefetch := len(grid)
	for _, b := range scenes {
		for _, pol := range policies {
			for bounce := 1; bounce <= bounces; bounce++ {
				grid = append(grid, cellsched.Cell[policyResult]{
					Key: fmt.Sprintf("policies/%s/%s/B%d", b, pol, bounce),
					Run: func() (policyResult, error) {
						w, err := p.workload(b)
						if err != nil {
							return policyResult{}, err
						}
						if len(w.BounceRays(bounce, p)) == 0 {
							return policyResult{}, nil
						}
						res, err := w.simulateNamedCtx(ctx, pol, bounce, p)
						if err != nil {
							return policyResult{}, fmt.Errorf("policies %s %s B%d: %w", b, pol, bounce, err)
						}
						return policyResult{
							ok:    true,
							stats: res.GPU.Stats,
							rays:  res.Rays,
							cost:  res.Reorder.CostCycles,
							cell: PolicyCell{
								Scene: b, Policy: pol, Bounce: bounce,
								Rays: res.Rays, Eff: res.SIMDEff, Mrays: res.Mrays,
								Reorders:   res.Reorder.Reorders,
								RaysMoved:  res.Reorder.RaysMoved,
								CostCycles: res.Reorder.CostCycles,
							},
						}, nil
					},
				})
			}
		}
	}
	results, err := cellsched.RunCtx(ctx, grid, p.par())
	if err != nil {
		return nil, err
	}
	results = results[prefetch:]

	var cells []PolicyCell
	i := 0
	for _, b := range scenes {
		for _, pol := range policies {
			var overall simt.Stats
			var cycleSum, costSum int64
			var reorders, moved int64
			overallRays := 0
			for bounce := 1; bounce <= bounces; bounce++ {
				r := results[i]
				i++
				if !r.ok {
					continue
				}
				overall.Add(r.stats)
				// Like Figure 11's overall row: total rays over the total
				// cycles of all bounce launches, plus any modeled
				// out-of-engine reordering cost.
				cycleSum += r.stats.Cycles
				costSum += r.cost
				overallRays += r.rays
				reorders += r.cell.Reorders
				moved += r.cell.RaysMoved
				if bounce <= perBounce {
					cells = append(cells, r.cell)
				}
			}
			overall.Cycles = cycleSum + costSum
			cells = append(cells, PolicyCell{
				Scene: b, Policy: pol, Bounce: 0,
				Rays:       overallRays,
				Eff:        overall.SIMDEfficiency(p.Options.Simt.WarpSize),
				Mrays:      overall.MraysPerSec(int64(overallRays), p.Options.Simt.ClockMHz),
				Reorders:   reorders,
				RaysMoved:  moved,
				CostCycles: costSum,
			})
		}
	}
	return cells, nil
}

// policyKey indexes PolicyCells for the renderer.
type policyKey struct {
	scene  scene.Benchmark
	policy string
	bounce int
}

func indexPolicyCells(cells []PolicyCell) map[policyKey]PolicyCell {
	m := make(map[policyKey]PolicyCell, len(cells))
	for _, c := range cells {
		k := policyKey{c.Scene, c.Policy, c.Bounce}
		if _, ok := m[k]; !ok {
			m[k] = c
		}
	}
	return m
}

// RenderPolicies prints the cross-policy comparison: per scene and
// bounce, each policy's SIMD efficiency, performance, speedup over the
// explicit no-op baseline, and reordering activity.
func RenderPolicies(cells []PolicyCell, perBounce int) string {
	out := "Cross-policy comparison: reordering policies vs the no-op baseline\n"
	header := []string{"scene", "bounce", "policy", "SIMD eff", "Mrays/s", "x noop", "reorders", "rays moved", "cost cyc"}
	idx := indexPolicyCells(cells)
	// Column order follows the cells' first-appearance order, so a
	// restricted -policy run renders exactly what it measured.
	var order []string
	seen := map[string]bool{}
	for _, c := range cells {
		if !seen[c.Policy] {
			seen[c.Policy] = true
			order = append(order, c.Policy)
		}
	}
	var rows [][]string
	for _, b := range scene.Benchmarks {
		for bounce := 1; bounce <= perBounce+1; bounce++ {
			bn := bounce
			label := fmt.Sprintf("B%d", bounce)
			if bounce == perBounce+1 {
				bn = 0
				label = "all"
			}
			noop, haveNoop := idx[policyKey{b, "noop", bn}]
			for _, pol := range order {
				c, ok := idx[policyKey{b, pol, bn}]
				if !ok {
					continue
				}
				speed := "-"
				if haveNoop && noop.Mrays > 0 {
					speed = fmt.Sprintf("%.2fx", c.Mrays/noop.Mrays)
				}
				rows = append(rows, []string{
					b.String(), label, pol,
					pct(c.Eff), f1(c.Mrays), speed,
					fmt.Sprintf("%d", c.Reorders),
					fmt.Sprintf("%d", c.RaysMoved),
					fmt.Sprintf("%d", c.CostCycles),
				})
			}
		}
	}
	return out + table(header, rows)
}

// PolicyCatalog renders the registry as a table: every registered
// policy name with its one-line summary, in registration order.
func PolicyCatalog() string {
	header := []string{"policy", "description"}
	var rows [][]string
	reg := harness.Policies()
	for _, name := range reg.Names() {
		r, _ := reg.Lookup(name)
		rows = append(rows, []string{name, r.Summary})
	}
	return table(header, rows)
}
