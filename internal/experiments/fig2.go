package experiments

import (
	"context"
	"fmt"

	"repro/internal/cellsched"
	"repro/internal/harness"
	"repro/internal/scene"
	"repro/internal/simt"
)

// Fig2Row is one bounce's SIMD efficiency and utilization breakdown of
// Aila's kernel (Figure 2 uses the conference room benchmark).
type Fig2Row struct {
	Bounce    int
	Rays      int
	Eff       float64
	Breakdown simt.Breakdown
	Mrays     float64
}

// fig2Result is one bounce's cell outcome; ok is false when the bounce
// stream was empty.
type fig2Result struct {
	ok  bool
	row Fig2Row
}

// Figure2 reproduces Figure 2: per-bounce SIMD efficiency and Wm:n
// utilization breakdown of the baseline (Aila) kernel on the
// conference room benchmark, bounces 1..8. Each bounce is a scheduler
// cell; rows assemble in bounce order and stop at the first empty
// bounce, matching the sequential loop exactly.
func Figure2(p Params) ([]Fig2Row, error) {
	return Figure2Ctx(context.Background(), p)
}

// Figure2Ctx is Figure2 with cancellation: scheduler workers stop
// claiming cells once ctx is done and in-flight device runs abort at
// their next epoch barrier. An uncancelled call is byte-identical to
// Figure2.
func Figure2Ctx(ctx context.Context, p Params) ([]Fig2Row, error) {
	p = p.ensureCache()
	w, err := p.workload(scene.ConferenceRoom)
	if err != nil {
		return nil, err
	}
	bounces := p.Bounces
	if bounces <= 0 || bounces > len(w.Traces.Streams) {
		bounces = len(w.Traces.Streams)
	}
	grid := make([]cellsched.Cell[fig2Result], 0, bounces)
	for b := 1; b <= bounces; b++ {
		grid = append(grid, cellsched.Cell[fig2Result]{
			Key: fmt.Sprintf("fig2/B%d", b),
			Run: func() (fig2Result, error) {
				if len(w.BounceRays(b, p)) == 0 {
					return fig2Result{}, nil
				}
				res, err := w.simulateCtx(ctx, harness.ArchAila, b, p)
				if err != nil {
					return fig2Result{}, err
				}
				st := res.GPU.Stats
				return fig2Result{ok: true, row: Fig2Row{
					Bounce:    b,
					Rays:      res.Rays,
					Eff:       res.SIMDEff,
					Breakdown: st.UtilizationBreakdown(p.Options.Simt.WarpSize),
					Mrays:     res.Mrays,
				}}, nil
			},
		})
	}
	results, err := cellsched.RunCtx(ctx, grid, p.par())
	if err != nil {
		return nil, err
	}
	var rows []Fig2Row
	for _, r := range results {
		if !r.ok {
			break
		}
		rows = append(rows, r.row)
	}
	return rows, nil
}

// RenderFigure2 prints Figure 2's rows as a text table.
func RenderFigure2(rows []Fig2Row) string {
	header := []string{"bounce", "rays", "SIMD eff", "W1:8", "W9:16", "W17:24", "W25:32", "Mrays/s"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("B%d", r.Bounce),
			fmt.Sprintf("%d", r.Rays),
			pct(r.Eff),
			pct(r.Breakdown.W1to8),
			pct(r.Breakdown.W9to16),
			pct(r.Breakdown.W17to24),
			pct(r.Breakdown.W25to32),
			f1(r.Mrays),
		})
	}
	return "Figure 2: SIMD efficiency and utilization breakdown of Aila's kernel (conference room)\n" +
		table(header, out)
}

// Table1 renders the GPU microarchitectural parameters (Table 1).
func Table1(p Params) string {
	cfg := p.Options.Simt
	header := []string{"parameter", "value"}
	rows := [][]string{
		{"SMX Clock Frequency", fmt.Sprintf("%d MHz", cfg.ClockMHz)},
		{"SIMD lanes", fmt.Sprintf("%d", cfg.WarpSize)},
		{"SMXs/GPU", fmt.Sprintf("%d", cfg.NumSMX)},
		{"Warp Scheduler", "Greedy-Then-Oldest"},
		{"Warp Schedulers/SMX", fmt.Sprintf("%d", cfg.SchedulersPerSMX)},
		{"Inst. Dispatch Units/SMX", fmt.Sprintf("%d", cfg.SchedulersPerSMX*cfg.DispatchPerScheduler)},
		{"Registers/SMX", fmt.Sprintf("%d", cfg.RF.RegsPerSMX)},
		{"L1 Data Cache", fmt.Sprintf("%d KB", cfg.Mem.L1DataKB)},
		{"L1 Texture Cache", fmt.Sprintf("%d KB", cfg.Mem.L1TexKB)},
		{"L2 Cache", fmt.Sprintf("%d KB", cfg.Mem.L2KB)},
	}
	return "Table 1: GPU microarchitectural parameters\n" + table(header, rows)
}
