package experiments

import (
	"context"
	"fmt"

	"repro/internal/cellsched"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/scene"
)

// Fig8Config names one bar group of Figure 8's backup-row sweep.
type Fig8Config struct {
	Label string
	// Aila selects the software baseline instead of the DRS.
	Aila bool
	DRS  core.Config
}

// Fig8Configs returns the configurations Figure 8 compares: one backup
// row without the extra register bank, 1/2/4/8 backup rows with it,
// the idealized DRS, and Aila's software method.
func Fig8Configs() []Fig8Config {
	mk := func(label string, rows int, extra, ideal bool) Fig8Config {
		c := core.DefaultConfig()
		c.BackupRows = rows
		c.ExtraBank = extra
		c.Ideal = ideal
		return Fig8Config{Label: label, DRS: c}
	}
	return []Fig8Config{
		mk("1-row (no extra bank)", 1, false, false),
		mk("1-row", 1, true, false),
		mk("2-row", 2, true, false),
		mk("4-row", 4, true, false),
		mk("8-row", 8, true, false),
		mk("ideal", 1, true, true),
		{Label: "aila", Aila: true},
	}
}

// Fig8Cell is one measurement of the sweep.
type Fig8Cell struct {
	Scene  scene.Benchmark
	Bounce int
	Config string
	Mrays  float64
	// StallRate is the rdctrl warp-issue stall rate (Figure 9 reports
	// this for the conference room and fairy forest benchmarks).
	StallRate float64
}

// fig8Result is one cell outcome; ok is false when the bounce stream
// was empty and the cell was skipped.
type fig8Result struct {
	ok   bool
	cell Fig8Cell
}

// Figure8 reproduces Figures 8 and 9: simulated ray tracing performance
// for the first `bounces` bounces of each scene under each backup-row
// configuration, including the idealized DRS and Aila's method. The
// paper evaluates bounces 1-4 with 2M rays each. Cells run on the
// scheduler (Options.Parallelism workers) and assemble positionally,
// so output is identical at any worker count.
func Figure8(p Params, bounces int, scenes []scene.Benchmark) ([]Fig8Cell, error) {
	return Figure8Ctx(context.Background(), p, bounces, scenes)
}

// Figure8Ctx is Figure8 with cancellation: scheduler workers stop
// claiming cells once ctx is done and in-flight device runs abort at
// their next epoch barrier. An uncancelled call is byte-identical to
// Figure8.
func Figure8Ctx(ctx context.Context, p Params, bounces int, scenes []scene.Benchmark) ([]Fig8Cell, error) {
	if bounces <= 0 {
		bounces = 4
	}
	if scenes == nil {
		scenes = scene.Benchmarks
	}
	p = p.ensureCache()

	grid := workloadCells[fig8Result](p, scenes)
	prefetch := len(grid)
	for _, b := range scenes {
		for _, cfg := range Fig8Configs() {
			pp := p
			arch := harness.ArchDRS
			if cfg.Aila {
				arch = harness.ArchAila
			} else {
				pp.Options.Policy = core.NewPolicy(cfg.DRS)
			}
			for bounce := 1; bounce <= bounces; bounce++ {
				grid = append(grid, cellsched.Cell[fig8Result]{
					Key: fmt.Sprintf("fig8/%s/%s/B%d", b, cfg.Label, bounce),
					Run: func() (fig8Result, error) {
						w, err := pp.workload(b)
						if err != nil {
							return fig8Result{}, err
						}
						if len(w.BounceRays(bounce, pp)) == 0 {
							return fig8Result{}, nil
						}
						res, err := w.simulateCtx(ctx, arch, bounce, pp)
						if err != nil {
							return fig8Result{}, fmt.Errorf("fig8 %s %s B%d: %w", b, cfg.Label, bounce, err)
						}
						return fig8Result{ok: true, cell: Fig8Cell{
							Scene:     b,
							Bounce:    bounce,
							Config:    cfg.Label,
							Mrays:     res.Mrays,
							StallRate: res.GPU.Stats.CtrlStallRate(),
						}}, nil
					},
				})
			}
		}
	}
	results, err := cellsched.RunCtx(ctx, grid, p.par())
	if err != nil {
		return nil, err
	}
	var cells []Fig8Cell
	for _, r := range results[prefetch:] {
		if r.ok {
			cells = append(cells, r.cell)
		}
	}
	return cells, nil
}

// fig8Key indexes Fig8Cells for the renderers.
type fig8Key struct {
	scene  scene.Benchmark
	config string
	bounce int
}

func indexFig8Cells(cells []Fig8Cell) map[fig8Key]Fig8Cell {
	m := make(map[fig8Key]Fig8Cell, len(cells))
	for _, c := range cells {
		k := fig8Key{c.Scene, c.Config, c.Bounce}
		if _, ok := m[k]; !ok {
			m[k] = c
		}
	}
	return m
}

// RenderFigure8 prints the Mrays/s sweep, one table per scene with one
// row per configuration and one column per bounce.
func RenderFigure8(cells []Fig8Cell, bounces int) string {
	out := "Figure 8: simulated ray tracing performance (Mrays/s) by backup-row configuration\n"
	idx := indexFig8Cells(cells)
	for _, b := range scene.Benchmarks {
		var rows [][]string
		for _, cfg := range Fig8Configs() {
			row := []string{cfg.Label}
			found := false
			for bounce := 1; bounce <= bounces; bounce++ {
				v := ""
				if c, ok := idx[fig8Key{b, cfg.Label, bounce}]; ok {
					v = f1(c.Mrays)
					found = true
				}
				row = append(row, v)
			}
			if found {
				rows = append(rows, row)
			}
		}
		if len(rows) == 0 {
			continue
		}
		header := []string{b.String()}
		for bounce := 1; bounce <= bounces; bounce++ {
			header = append(header, fmt.Sprintf("B%d", bounce))
		}
		out += table(header, rows) + "\n"
	}
	return out
}

// RenderFigure9 prints the rdctrl warp-issue stall rates for the
// conference room and fairy forest benchmarks (Figure 9).
func RenderFigure9(cells []Fig8Cell, bounces int) string {
	out := "Figure 9: warp issue stall rate of the rdctrl instruction\n"
	idx := indexFig8Cells(cells)
	for _, b := range []scene.Benchmark{scene.ConferenceRoom, scene.FairyForest} {
		var rows [][]string
		for _, cfg := range Fig8Configs() {
			if cfg.Aila || cfg.DRS.Ideal {
				continue
			}
			row := []string{cfg.Label}
			found := false
			for bounce := 1; bounce <= bounces; bounce++ {
				v := ""
				if c, ok := idx[fig8Key{b, cfg.Label, bounce}]; ok {
					v = pct(c.StallRate)
					found = true
				}
				row = append(row, v)
			}
			if found {
				rows = append(rows, row)
			}
		}
		if len(rows) == 0 {
			continue
		}
		header := []string{b.String()}
		for bounce := 1; bounce <= bounces; bounce++ {
			header = append(header, fmt.Sprintf("B%d", bounce))
		}
		out += table(header, rows) + "\n"
	}
	return out
}
