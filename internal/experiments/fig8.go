package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/scene"
)

// Fig8Config names one bar group of Figure 8's backup-row sweep.
type Fig8Config struct {
	Label string
	// Aila selects the software baseline instead of the DRS.
	Aila bool
	DRS  core.Config
}

// Fig8Configs returns the configurations Figure 8 compares: one backup
// row without the extra register bank, 1/2/4/8 backup rows with it,
// the idealized DRS, and Aila's software method.
func Fig8Configs() []Fig8Config {
	mk := func(label string, rows int, extra, ideal bool) Fig8Config {
		c := core.DefaultConfig()
		c.BackupRows = rows
		c.ExtraBank = extra
		c.Ideal = ideal
		return Fig8Config{Label: label, DRS: c}
	}
	return []Fig8Config{
		mk("1-row (no extra bank)", 1, false, false),
		mk("1-row", 1, true, false),
		mk("2-row", 2, true, false),
		mk("4-row", 4, true, false),
		mk("8-row", 8, true, false),
		mk("ideal", 1, true, true),
		{Label: "aila", Aila: true},
	}
}

// Fig8Cell is one measurement of the sweep.
type Fig8Cell struct {
	Scene  scene.Benchmark
	Bounce int
	Config string
	Mrays  float64
	// StallRate is the rdctrl warp-issue stall rate (Figure 9 reports
	// this for the conference room and fairy forest benchmarks).
	StallRate float64
}

// Figure8 reproduces Figures 8 and 9: simulated ray tracing performance
// for the first `bounces` bounces of each scene under each backup-row
// configuration, including the idealized DRS and Aila's method. The
// paper evaluates bounces 1-4 with 2M rays each.
func Figure8(p Params, bounces int, scenes []scene.Benchmark) ([]Fig8Cell, error) {
	if bounces <= 0 {
		bounces = 4
	}
	if scenes == nil {
		scenes = scene.Benchmarks
	}
	var cells []Fig8Cell
	for _, b := range scenes {
		w, err := BuildWorkload(b, p)
		if err != nil {
			return nil, err
		}
		for _, cfg := range Fig8Configs() {
			pp := p
			pp.Options.DRS = cfg.DRS
			arch := harness.ArchDRS
			if cfg.Aila {
				arch = harness.ArchAila
			}
			for bounce := 1; bounce <= bounces; bounce++ {
				if len(w.BounceRays(bounce, pp)) == 0 {
					continue
				}
				res, err := w.simulate(arch, bounce, pp)
				if err != nil {
					return nil, fmt.Errorf("fig8 %s %s B%d: %w", b, cfg.Label, bounce, err)
				}
				cells = append(cells, Fig8Cell{
					Scene:     b,
					Bounce:    bounce,
					Config:    cfg.Label,
					Mrays:     res.Mrays,
					StallRate: res.GPU.Stats.CtrlStallRate(),
				})
			}
		}
	}
	return cells, nil
}

// RenderFigure8 prints the Mrays/s sweep, one table per scene with one
// row per configuration and one column per bounce.
func RenderFigure8(cells []Fig8Cell, bounces int) string {
	out := "Figure 8: simulated ray tracing performance (Mrays/s) by backup-row configuration\n"
	for _, b := range scene.Benchmarks {
		var rows [][]string
		for _, cfg := range Fig8Configs() {
			row := []string{cfg.Label}
			found := false
			for bounce := 1; bounce <= bounces; bounce++ {
				v := ""
				for _, c := range cells {
					if c.Scene == b && c.Config == cfg.Label && c.Bounce == bounce {
						v = f1(c.Mrays)
						found = true
					}
				}
				row = append(row, v)
			}
			if found {
				rows = append(rows, row)
			}
		}
		if len(rows) == 0 {
			continue
		}
		header := []string{b.String()}
		for bounce := 1; bounce <= bounces; bounce++ {
			header = append(header, fmt.Sprintf("B%d", bounce))
		}
		out += table(header, rows) + "\n"
	}
	return out
}

// RenderFigure9 prints the rdctrl warp-issue stall rates for the
// conference room and fairy forest benchmarks (Figure 9).
func RenderFigure9(cells []Fig8Cell, bounces int) string {
	out := "Figure 9: warp issue stall rate of the rdctrl instruction\n"
	for _, b := range []scene.Benchmark{scene.ConferenceRoom, scene.FairyForest} {
		var rows [][]string
		for _, cfg := range Fig8Configs() {
			if cfg.Aila || cfg.DRS.Ideal {
				continue
			}
			row := []string{cfg.Label}
			found := false
			for bounce := 1; bounce <= bounces; bounce++ {
				v := ""
				for _, c := range cells {
					if c.Scene == b && c.Config == cfg.Label && c.Bounce == bounce {
						v = pct(c.StallRate)
						found = true
					}
				}
				row = append(row, v)
			}
			if found {
				rows = append(rows, row)
			}
		}
		if len(rows) == 0 {
			continue
		}
		header := []string{b.String()}
		for bounce := 1; bounce <= bounces; bounce++ {
			header = append(header, fmt.Sprintf("B%d", bounce))
		}
		out += table(header, rows) + "\n"
	}
	return out
}
