package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hwcost"
	"repro/internal/kernels"
)

// Overhead reproduces the §4.5 hardware overhead comparison: the DRS's
// storage and area cost next to the DMK's spawn memory and TBC's warp
// buffer requirements.
func Overhead(drsCfg core.Config) string {
	d := hwcost.DRS(drsCfg.SwapBuffers, drsCfg.Rows())
	dmkBytes := hwcost.DMKSpawnBytes(54, kernels.RayRegisters)
	tbcBytes := hwcost.TBCWarpBufferBytes()

	header := []string{"item", "value"}
	rows := [][]string{
		{"DRS swap buffers", fmt.Sprintf("%d B (%d buffers x %d lanes x 32b)",
			d.SwapBufferBytes, drsCfg.SwapBuffers, hwcost.WarpSize-1)},
		{"DRS ray state table", fmt.Sprintf("%d B (%d rows x %d x 2b)",
			d.RayStateTableBytes, drsCfg.Rows(), hwcost.WarpSize)},
		{"DRS total per SMX", fmt.Sprintf("~%.1f KB", float64(d.TotalPerSMXBytes)/1024)},
		{"DRS share of register file", fmt.Sprintf("%.2f%% of %d KB", d.RegFileFraction*100, hwcost.RegFileKBPerSM)},
		{"DRS area per core", fmt.Sprintf("%.3f mm^2 (TSMC 28nm, from the paper's synthesis)", d.AreaPerCoreMM2)},
		{"DRS area, whole GPU", fmt.Sprintf("%.2f%% of %.0f mm^2", d.TotalAreaFraction*100, hwcost.DieAreaMM2)},
		{"DRS max frequency", fmt.Sprintf("%.1f GHz (%.2f ns critical path)", d.MaxFreqGHz, hwcost.DRSCycleNS)},
		{"DMK spawn memory per SMX", fmt.Sprintf("%.2f KB (54 warps x 32 x 17 x 32b, metadata excluded)", float64(dmkBytes)/1024)},
		{"TBC warp buffer per SMX", fmt.Sprintf("%.1f KB (plus a per-SIMD-lane addressable register file)", float64(tbcBytes)/1024)},
	}
	return "Section 4.5: hardware overhead\n" + table(header, rows)
}
