// Package experiments reproduces the paper's evaluation section: each
// table and figure has a runner that builds the workload (procedural
// scene, BVH, path-traced per-bounce ray streams), simulates the
// relevant architectures, and returns the rows the paper reports,
// plus a text renderer that prints them.
//
// Scale: the paper traces 2M rays per bounce from 640x480x64spp renders
// of 174K-1.1M triangle scenes through GPGPU-Sim. Params scales
// everything down so the suite runs in minutes by default; PaperParams
// approaches the original scale for long runs. EXPERIMENTS.md records
// the parameters used for the committed results.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/bvh"
	"repro/internal/geom"
	"repro/internal/harness"
	"repro/internal/kernels"
	"repro/internal/render"
	"repro/internal/scene"
	"repro/internal/trace"
)

// Params controls experiment scale.
type Params struct {
	// Tris is the per-scene triangle budget (0 = the paper's full
	// count for that scene).
	Tris int
	// Width, Height, SPP control the render that generates ray traces.
	Width, Height, SPP int
	// MaxRaysPerBounce caps each bounce's stream (0 = no cap). The
	// paper uses 2M rays per bounce for the sensitivity studies.
	MaxRaysPerBounce int
	// Bounces is how many bounces to simulate (per figure this may be
	// further restricted; the paper renders 8).
	Bounces int
	// Options carries the device and architecture configuration,
	// including Parallelism, the cell scheduler's worker count.
	Options harness.Options
	// Cache shares workload builds across runners. nil makes each
	// runner use a private per-call cache (every scene still built once
	// per call); the suite driver passes one shared cache so all
	// figures reuse the same scene builds.
	Cache *WorkloadCache
}

// DefaultParams returns a configuration that runs the full suite in
// minutes: scaled scenes, quarter-resolution traces, the Table 1 GPU.
func DefaultParams() Params {
	opt := harness.DefaultOptions()
	opt.Simt.MaxCycles = 1 << 28
	return Params{
		Tris:             20000,
		Width:            320,
		Height:           240,
		SPP:              1,
		MaxRaysPerBounce: 0,
		Bounces:          trace.MaxBounces,
		Options:          opt,
	}
}

// PaperParams approaches the paper's scale: full scene budgets,
// 640x480 renders, and 2M-ray bounce caps. Expect long runtimes.
func PaperParams() Params {
	p := DefaultParams()
	p.Tris = 0
	p.Width = 640
	p.Height = 480
	p.SPP = 64
	p.MaxRaysPerBounce = 2_000_000
	return p
}

// Validate rejects parameter combinations that cannot produce a
// meaningful workload: a zero-sized render traces no rays, and negative
// budgets or out-of-range bounce counts are always caller bugs. The
// builders call it up front so a malformed request fails with a named
// parameter instead of an empty-stream error (or a panic) downstream.
func (p Params) Validate() error {
	switch {
	case p.Width <= 0 || p.Height <= 0:
		return fmt.Errorf("experiments: render size %dx%d must be positive in both dimensions", p.Width, p.Height)
	case p.SPP <= 0:
		return fmt.Errorf("experiments: samples per pixel %d must be positive", p.SPP)
	case p.Tris < 0:
		return fmt.Errorf("experiments: triangle budget %d must not be negative (0 selects the paper's full count)", p.Tris)
	case p.MaxRaysPerBounce < 0:
		return fmt.Errorf("experiments: per-bounce ray cap %d must not be negative (0 disables the cap)", p.MaxRaysPerBounce)
	case p.Bounces < 0 || p.Bounces > trace.MaxBounces:
		return fmt.Errorf("experiments: bounce count %d out of range [0,%d]", p.Bounces, trace.MaxBounces)
	}
	return nil
}

// Workload is a scene prepared for simulation.
type Workload struct {
	Benchmark scene.Benchmark
	Scene     *scene.Scene
	BVH       *bvh.BVH
	Data      *kernels.SceneData
	Traces    *trace.Set
}

// BuildWorkload generates the procedural scene, builds its BVH, and
// captures per-bounce ray traces with the CPU path tracer.
func BuildWorkload(b scene.Benchmark, p Params) (*Workload, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := scene.Generate(b, p.Tris)
	bv, err := bvh.Build(s.Tris, bvh.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", b, err)
	}
	cam := render.CameraFor(b, p.Width, p.Height)
	res, err := render.Render(s, bv, cam, render.Config{
		Width:           p.Width,
		Height:          p.Height,
		SamplesPerPixel: p.SPP,
		MaxDepth:        trace.MaxBounces,
		CaptureTraces:   true,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: render %s: %w", b, err)
	}
	return &Workload{
		Benchmark: b,
		Scene:     s,
		BVH:       bv,
		Data:      kernels.NewSceneData(bv),
		Traces:    res.Traces,
	}, nil
}

// BounceRays returns bounce b's ray stream, capped per Params.
func (w *Workload) BounceRays(b int, p Params) []geom.Ray {
	rays := w.Traces.Bounce(b).Rays
	if p.MaxRaysPerBounce > 0 && len(rays) > p.MaxRaysPerBounce {
		rays = rays[:p.MaxRaysPerBounce]
	}
	return rays
}

// simulate runs one architecture on one bounce stream.
func (w *Workload) simulate(arch harness.Arch, bounce int, p Params) (*harness.Result, error) {
	return w.simulateCtx(context.Background(), arch, bounce, p)
}

// simulateCtx is simulate with cancellation threaded into the engine:
// an in-flight device run aborts at its next epoch barrier once ctx is
// done.
func (w *Workload) simulateCtx(ctx context.Context, arch harness.Arch, bounce int, p Params) (*harness.Result, error) {
	rays := w.BounceRays(bounce, p)
	if len(rays) == 0 {
		return nil, fmt.Errorf("experiments: %s bounce %d has no rays", w.Benchmark, bounce)
	}
	return harness.RunCtx(ctx, arch, rays, w.Data, p.Options)
}

// simulateNamedCtx runs one named reordering policy (resolved through
// the harness registry) on one bounce stream.
func (w *Workload) simulateNamedCtx(ctx context.Context, policy string, bounce int, p Params) (*harness.Result, error) {
	rays := w.BounceRays(bounce, p)
	if len(rays) == 0 {
		return nil, fmt.Errorf("experiments: %s bounce %d has no rays", w.Benchmark, bounce)
	}
	return harness.RunNamedCtx(ctx, policy, rays, w.Data, p.Options)
}

// table renders rows of columns with a header as aligned text.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	for i, wdt := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", wdt))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
