package experiments

import (
	"context"
	"fmt"

	"repro/internal/archconfig"
	"repro/internal/cellsched"
	"repro/internal/harness"
	"repro/internal/scene"
	"repro/internal/simt"
)

// SweepCell is one (architecture, scheduler, scene, policy) outcome of
// the cross-architecture sweep: all simulated bounces merged, like the
// policies figure's overall rows.
type SweepCell struct {
	Arch   string
	Sched  string
	Scene  scene.Benchmark
	Policy string
	Rays   int
	Cycles int64
	Eff    float64
	Mrays  float64
}

// SweepArchs lists the device models the sweep runs, in presentation
// order: the paper's GTX 780 first, then the two modern shapes.
var SweepArchs = []string{"gtx780", "modern-mid", "modern-big"}

// SweepScheds lists the warp schedulers the sweep crosses with each
// architecture.
var SweepScheds = []string{"gto", "lrr", "wasp"}

// SweepPolicies lists the reordering policies measured under each
// (architecture, scheduler) point: the Aila baseline and DRS, so every
// point yields a drs-over-aila speedup.
var SweepPolicies = []string{"aila", "drs"}

// SweepScenes is the default scene pair: one indoor and one outdoor
// benchmark keeps the full grid (3 archs x 3 schedulers x 2 scenes x
// 2 policies x bounces) tractable at full scale.
var SweepScenes = []scene.Benchmark{scene.ConferenceRoom, scene.CrytekSponza}

// sweepResult is one (arch, sched, scene, policy, bounce) simulation
// outcome before the overall aggregation.
type sweepResult struct {
	ok    bool // false: the bounce stream was empty, cell skipped
	stats simt.Stats
	rays  int
	cost  int64
}

// sweepDev is one architecture point: the options with the device
// model applied, plus the figures the aggregation needs from the
// config itself.
type sweepDev struct {
	opt      harness.Options
	clockMHz int
	warpSize int
}

// SweepsFigure runs the cross-architecture x scheduler sweep: every
// builtin device model in SweepArchs crossed with every warp scheduler
// in SweepScheds, measuring the Aila baseline and DRS (SweepPolicies)
// on each point and reporting the merged-bounce efficiency, rate, and
// drs-over-aila speedup. Scenes defaults to SweepScenes; bounces <= 0
// selects 4.
//
// Every (arch, sched, scene, policy, bounce) simulation is an
// independent scheduler cell; the grid runs on Options.Parallelism
// workers and rows are assembled positionally in canonical order, so
// the output is byte-identical at any worker count (drsbench -par N).
func SweepsFigure(p Params, bounces int, scenes []scene.Benchmark) ([]SweepCell, error) {
	return SweepsFigureCtx(context.Background(), p, bounces, scenes)
}

// SweepsFigureCtx is SweepsFigure with cancellation: workers stop
// claiming cells once ctx is done and in-flight device runs abort at
// their next epoch barrier.
func SweepsFigureCtx(ctx context.Context, p Params, bounces int, scenes []scene.Benchmark) ([]SweepCell, error) {
	if bounces <= 0 {
		bounces = 4
	}
	if scenes == nil {
		scenes = SweepScenes
	}
	p = p.ensureCache()

	// Resolve every architecture point up front: a bad builtin name or
	// a config the validator rejects fails the whole figure before any
	// cell runs.
	devs := make(map[string]sweepDev, len(SweepArchs))
	for _, a := range SweepArchs {
		ac, err := archconfig.Builtin(a)
		if err != nil {
			return nil, fmt.Errorf("sweeps: %w", err)
		}
		opt, err := harness.ApplyArch(ac, p.Options)
		if err != nil {
			return nil, fmt.Errorf("sweeps %s: %w", a, err)
		}
		devs[a] = sweepDev{opt: opt, clockMHz: ac.ClockMHz, warpSize: ac.WarpWidth}
	}

	grid := workloadCells[sweepResult](p, scenes)
	prefetch := len(grid)
	for _, a := range SweepArchs {
		for _, sched := range SweepScheds {
			for _, b := range scenes {
				for _, pol := range SweepPolicies {
					for bounce := 1; bounce <= bounces; bounce++ {
						pp := p
						pp.Options = devs[a].opt
						pp.Options.Sched = sched
						grid = append(grid, cellsched.Cell[sweepResult]{
							Key: fmt.Sprintf("sweeps/%s/%s/%s/%s/B%d", a, sched, b, pol, bounce),
							Run: func() (sweepResult, error) {
								w, err := p.workload(b)
								if err != nil {
									return sweepResult{}, err
								}
								if len(w.BounceRays(bounce, pp)) == 0 {
									return sweepResult{}, nil
								}
								res, err := w.simulateNamedCtx(ctx, pol, bounce, pp)
								if err != nil {
									return sweepResult{}, fmt.Errorf("sweeps %s/%s %s %s B%d: %w", a, sched, b, pol, bounce, err)
								}
								return sweepResult{
									ok:    true,
									stats: res.GPU.Stats,
									rays:  res.Rays,
									cost:  res.Reorder.CostCycles,
								}, nil
							},
						})
					}
				}
			}
		}
	}
	results, err := cellsched.RunCtx(ctx, grid, p.par())
	if err != nil {
		return nil, err
	}
	results = results[prefetch:]

	var cells []SweepCell
	i := 0
	for _, a := range SweepArchs {
		dev := devs[a]
		for _, sched := range SweepScheds {
			for _, b := range scenes {
				for _, pol := range SweepPolicies {
					var overall simt.Stats
					var cycleSum, costSum int64
					rays := 0
					for bounce := 1; bounce <= bounces; bounce++ {
						r := results[i]
						i++
						if !r.ok {
							continue
						}
						overall.Add(r.stats)
						cycleSum += r.stats.Cycles
						costSum += r.cost
						rays += r.rays
					}
					// Like the policies figure's overall row: total rays
					// over the total cycles of all bounce launches plus
					// any modeled out-of-engine reordering cost, at the
					// architecture's own clock and warp width.
					overall.Cycles = cycleSum + costSum
					cells = append(cells, SweepCell{
						Arch: a, Sched: sched, Scene: b, Policy: pol,
						Rays:   rays,
						Cycles: overall.Cycles,
						Eff:    overall.SIMDEfficiency(dev.warpSize),
						Mrays:  overall.MraysPerSec(int64(rays), dev.clockMHz),
					})
				}
			}
		}
	}
	return cells, nil
}

// sweepKey indexes SweepCells for the renderer.
type sweepKey struct {
	arch   string
	sched  string
	scene  scene.Benchmark
	policy string
}

// RenderSweeps prints the sweep: per architecture, scheduler, and
// scene, each policy's merged-bounce SIMD efficiency and rate, with
// DRS's speedup over the Aila baseline on the same point.
func RenderSweeps(cells []SweepCell) string {
	out := "Architecture x scheduler sweep: aila vs drs across device models\n"
	header := []string{"arch", "sched", "scene", "policy", "SIMD eff", "Mrays/s", "x aila"}
	idx := make(map[sweepKey]SweepCell, len(cells))
	for _, c := range cells {
		k := sweepKey{c.Arch, c.Sched, c.Scene, c.Policy}
		if _, ok := idx[k]; !ok {
			idx[k] = c
		}
	}
	var rows [][]string
	for _, a := range SweepArchs {
		for _, sched := range SweepScheds {
			for _, b := range scene.Benchmarks {
				aila, haveAila := idx[sweepKey{a, sched, b, "aila"}]
				for _, pol := range SweepPolicies {
					c, ok := idx[sweepKey{a, sched, b, pol}]
					if !ok {
						continue
					}
					speed := "-"
					if haveAila && aila.Mrays > 0 {
						speed = fmt.Sprintf("%.2fx", c.Mrays/aila.Mrays)
					}
					rows = append(rows, []string{
						a, sched, b.String(), pol,
						pct(c.Eff), f1(c.Mrays), speed,
					})
				}
			}
		}
	}
	return out + table(header, rows)
}

// ArchCatalog renders the builtin device models as a table: every
// config name with its headline shape and one-line summary, in catalog
// order. The same configs are checked in under testdata/archs/.
func ArchCatalog() string {
	header := []string{"arch", "smx", "warps", "sched", "clock", "l2", "description"}
	var rows [][]string
	for _, name := range archconfig.Names() {
		c, err := archconfig.Builtin(name)
		if err != nil {
			continue
		}
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%d", c.SMXCount),
			fmt.Sprintf("%dx%d", c.WarpsPerSMX, c.WarpWidth),
			c.Sched,
			fmt.Sprintf("%d MHz", c.ClockMHz),
			fmt.Sprintf("%d KB", c.L2KB),
			c.Summary,
		})
	}
	return table(header, rows)
}

// SchedCatalog renders the warp-scheduler registry as a table: every
// registered scheduler name with its one-line summary, in registration
// order.
func SchedCatalog() string {
	header := []string{"sched", "description"}
	var rows [][]string
	reg := harness.Schedulers()
	for _, name := range reg.Names() {
		r, _ := reg.Lookup(name)
		rows = append(rows, []string{name, r.Summary})
	}
	return table(header, rows)
}
