package experiments

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/scene"
	"repro/internal/simt"
)

// ArchCell is one architecture/scene/bounce measurement for the
// Figure 10/11 comparison (Aila vs DMK vs TBC vs DRS).
type ArchCell struct {
	Scene     scene.Benchmark
	Arch      harness.Arch
	Bounce    int // 0 = overall (all bounces merged)
	Rays      int
	Eff       float64
	Breakdown simt.Breakdown
	Mrays     float64
	// RFShuffleShare is the register file access share of ray
	// shuffling (§4.4, DRS only).
	RFShuffleShare float64
	// L1TexMissRate supports the sponza analysis of §4.4.
	L1TexMissRate float64
	// SpawnConflictShare is DMK's spawn-memory conflict cycles over
	// total cycles (§4.4 reports 7.95%-19.97%).
	SpawnConflictShare float64
}

// ComparisonArchs lists the four architectures of Figures 10 and 11.
var ComparisonArchs = []harness.Arch{
	harness.ArchAila, harness.ArchDMK, harness.ArchTBC, harness.ArchDRS,
}

// Figure10 reproduces Figures 10 and 11: SIMD efficiency with
// utilization breakdown and ray tracing performance for Aila's method,
// DMK, TBC and the DRS, per bounce plus overall. The paper shows
// bounces 1-3 and the overall result over all 8 bounces.
func Figure10(p Params, perBounce int, scenes []scene.Benchmark) ([]ArchCell, error) {
	if perBounce <= 0 {
		perBounce = 3
	}
	if scenes == nil {
		scenes = scene.Benchmarks
	}
	bounces := p.Bounces
	if bounces <= 0 {
		bounces = 8
	}
	var cells []ArchCell
	for _, b := range scenes {
		w, err := BuildWorkload(b, p)
		if err != nil {
			return nil, err
		}
		for _, arch := range ComparisonArchs {
			var overall simt.Stats
			var cycleSum int64
			overallRays := 0
			for bounce := 1; bounce <= bounces; bounce++ {
				if len(w.BounceRays(bounce, p)) == 0 {
					continue
				}
				res, err := w.simulate(arch, bounce, p)
				if err != nil {
					return nil, fmt.Errorf("fig10 %s %s B%d: %w", b, arch, bounce, err)
				}
				st := res.GPU.Stats
				overall.Add(st)
				// The paper's overall performance is total rays over the
				// total cycles of all 8 bounces (each bounce is a
				// separate kernel launch).
				cycleSum += st.Cycles
				overallRays += res.Rays
				if bounce <= perBounce {
					cells = append(cells, ArchCell{
						Scene: b, Arch: arch, Bounce: bounce,
						Rays: res.Rays, Eff: res.SIMDEff,
						Breakdown:          st.UtilizationBreakdown(p.Options.Simt.WarpSize),
						Mrays:              res.Mrays,
						RFShuffleShare:     res.GPU.RFShuffleShare,
						L1TexMissRate:      res.GPU.L1TexMissRate,
						SpawnConflictShare: spawnShare(st),
					})
				}
			}
			overall.Cycles = cycleSum
			cells = append(cells, ArchCell{
				Scene: b, Arch: arch, Bounce: 0,
				Rays: overallRays,
				Eff:  overall.SIMDEfficiency(p.Options.Simt.WarpSize),
				Breakdown: overall.UtilizationBreakdown(
					p.Options.Simt.WarpSize),
				Mrays: overall.MraysPerSec(int64(overallRays), p.Options.Simt.ClockMHz),
			})
		}
	}
	return cells, nil
}

func spawnShare(st simt.Stats) float64 {
	if st.Cycles == 0 {
		return 0
	}
	return float64(st.SpawnConflictCycles) / float64(st.Cycles)
}

// RenderFigure10 prints the SIMD efficiency / breakdown comparison.
func RenderFigure10(cells []ArchCell, perBounce int) string {
	out := "Figure 10: SIMD efficiency and utilization breakdown (Aila / DMK / TBC / DRS)\n"
	header := []string{"scene", "bounce", "arch", "SIMD eff", "W1:8", "W9:16", "W17:24", "W25:32", "SI"}
	var rows [][]string
	for _, b := range scene.Benchmarks {
		for bounce := 1; bounce <= perBounce+1; bounce++ {
			bn := bounce
			label := fmt.Sprintf("B%d", bounce)
			if bounce == perBounce+1 {
				bn = 0
				label = "all"
			}
			for _, arch := range ComparisonArchs {
				for _, c := range cells {
					if c.Scene == b && c.Arch == arch && c.Bounce == bn {
						rows = append(rows, []string{
							b.String(), label, arch.String(),
							pct(c.Eff),
							pct(c.Breakdown.W1to8), pct(c.Breakdown.W9to16),
							pct(c.Breakdown.W17to24), pct(c.Breakdown.W25to32),
							pct(c.Breakdown.SI),
						})
					}
				}
			}
		}
	}
	return out + table(header, rows)
}

// RenderFigure11 prints the performance and speedup comparison
// (speedups normalized to Aila's software method, as in Figure 11).
func RenderFigure11(cells []ArchCell, perBounce int) string {
	out := "Figure 11: ray tracing performance (Mrays/s) and speedup vs Aila\n"
	header := []string{"scene", "bounce", "aila", "dmk", "tbc", "drs", "dmk x", "tbc x", "drs x"}
	var rows [][]string
	get := func(b scene.Benchmark, arch harness.Arch, bounce int) (ArchCell, bool) {
		for _, c := range cells {
			if c.Scene == b && c.Arch == arch && c.Bounce == bounce {
				return c, true
			}
		}
		return ArchCell{}, false
	}
	for _, b := range scene.Benchmarks {
		for bounce := 1; bounce <= perBounce+1; bounce++ {
			bn := bounce
			label := fmt.Sprintf("B%d", bounce)
			if bounce == perBounce+1 {
				bn = 0
				label = "all"
			}
			aila, ok := get(b, harness.ArchAila, bn)
			if !ok {
				continue
			}
			dmk, _ := get(b, harness.ArchDMK, bn)
			tbc, _ := get(b, harness.ArchTBC, bn)
			drs, _ := get(b, harness.ArchDRS, bn)
			speed := func(v float64) string {
				if aila.Mrays == 0 {
					return "-"
				}
				return fmt.Sprintf("%.2fx", v/aila.Mrays)
			}
			rows = append(rows, []string{
				b.String(), label,
				f1(aila.Mrays), f1(dmk.Mrays), f1(tbc.Mrays), f1(drs.Mrays),
				speed(dmk.Mrays), speed(tbc.Mrays), speed(drs.Mrays),
			})
		}
	}
	return out + table(header, rows)
}
