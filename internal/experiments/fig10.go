package experiments

import (
	"context"
	"fmt"

	"repro/internal/cellsched"
	"repro/internal/harness"
	"repro/internal/scene"
	"repro/internal/simt"
)

// ArchCell is one architecture/scene/bounce measurement for the
// Figure 10/11 comparison (Aila vs DMK vs TBC vs DRS).
type ArchCell struct {
	Scene     scene.Benchmark
	Arch      harness.Arch
	Bounce    int // 0 = overall (all bounces merged)
	Rays      int
	Eff       float64
	Breakdown simt.Breakdown
	Mrays     float64
	// RFShuffleShare is the register file access share of ray
	// shuffling (§4.4, DRS only).
	RFShuffleShare float64
	// L1TexMissRate supports the sponza analysis of §4.4.
	L1TexMissRate float64
	// SpawnConflictShare is DMK's spawn-memory conflict cycles over
	// total cycles (§4.4 reports 7.95%-19.97%).
	SpawnConflictShare float64
}

// ComparisonArchs lists the four architectures of Figures 10 and 11.
var ComparisonArchs = []harness.Arch{
	harness.ArchAila, harness.ArchDMK, harness.ArchTBC, harness.ArchDRS,
}

// fig10Result is one (scene, arch, bounce) cell outcome plus the raw
// stats the overall row aggregates from.
type fig10Result struct {
	ok    bool // false: the bounce stream was empty, cell skipped
	cell  ArchCell
	stats simt.Stats
	rays  int
}

// Figure10 reproduces Figures 10 and 11: SIMD efficiency with
// utilization breakdown and ray tracing performance for Aila's method,
// DMK, TBC and the DRS, per bounce plus overall. The paper shows
// bounces 1-3 and the overall result over all 8 bounces.
//
// Every (scene, arch, bounce) simulation is an independent scheduler
// cell; the grid runs on Options.Parallelism workers and the rows are
// assembled positionally in the canonical scene/arch/bounce order, so
// the output is byte-identical at any worker count.
func Figure10(p Params, perBounce int, scenes []scene.Benchmark) ([]ArchCell, error) {
	return Figure10Ctx(context.Background(), p, perBounce, scenes)
}

// Figure10Ctx is Figure10 with cancellation: scheduler workers stop
// claiming cells once ctx is done and in-flight device runs abort at
// their next epoch barrier. An uncancelled call is byte-identical to
// Figure10.
func Figure10Ctx(ctx context.Context, p Params, perBounce int, scenes []scene.Benchmark) ([]ArchCell, error) {
	if perBounce <= 0 {
		perBounce = 3
	}
	if scenes == nil {
		scenes = scene.Benchmarks
	}
	bounces := p.Bounces
	if bounces <= 0 {
		bounces = 8
	}
	p = p.ensureCache()

	grid := workloadCells[fig10Result](p, scenes)
	prefetch := len(grid)
	for _, b := range scenes {
		for _, arch := range ComparisonArchs {
			for bounce := 1; bounce <= bounces; bounce++ {
				grid = append(grid, cellsched.Cell[fig10Result]{
					Key: fmt.Sprintf("fig10/%s/%s/B%d", b, arch, bounce),
					Run: func() (fig10Result, error) {
						w, err := p.workload(b)
						if err != nil {
							return fig10Result{}, err
						}
						if len(w.BounceRays(bounce, p)) == 0 {
							return fig10Result{}, nil
						}
						res, err := w.simulateCtx(ctx, arch, bounce, p)
						if err != nil {
							return fig10Result{}, fmt.Errorf("fig10 %s %s B%d: %w", b, arch, bounce, err)
						}
						st := res.GPU.Stats
						return fig10Result{
							ok:    true,
							stats: st,
							rays:  res.Rays,
							cell: ArchCell{
								Scene: b, Arch: arch, Bounce: bounce,
								Rays: res.Rays, Eff: res.SIMDEff,
								Breakdown:          st.UtilizationBreakdown(p.Options.Simt.WarpSize),
								Mrays:              res.Mrays,
								RFShuffleShare:     res.GPU.RFShuffleShare,
								L1TexMissRate:      res.GPU.L1TexMissRate,
								SpawnConflictShare: spawnShare(st),
							},
						}, nil
					},
				})
			}
		}
	}
	results, err := cellsched.RunCtx(ctx, grid, p.par())
	if err != nil {
		return nil, err
	}
	results = results[prefetch:]

	var cells []ArchCell
	i := 0
	for _, b := range scenes {
		for _, arch := range ComparisonArchs {
			var overall simt.Stats
			var cycleSum int64
			overallRays := 0
			for bounce := 1; bounce <= bounces; bounce++ {
				r := results[i]
				i++
				if !r.ok {
					continue
				}
				overall.Add(r.stats)
				// The paper's overall performance is total rays over the
				// total cycles of all 8 bounces (each bounce is a
				// separate kernel launch).
				cycleSum += r.stats.Cycles
				overallRays += r.rays
				if bounce <= perBounce {
					cells = append(cells, r.cell)
				}
			}
			overall.Cycles = cycleSum
			cells = append(cells, ArchCell{
				Scene: b, Arch: arch, Bounce: 0,
				Rays: overallRays,
				Eff:  overall.SIMDEfficiency(p.Options.Simt.WarpSize),
				Breakdown: overall.UtilizationBreakdown(
					p.Options.Simt.WarpSize),
				Mrays: overall.MraysPerSec(int64(overallRays), p.Options.Simt.ClockMHz),
			})
		}
	}
	return cells, nil
}

func spawnShare(st simt.Stats) float64 {
	if st.Cycles == 0 {
		return 0
	}
	return float64(st.SpawnConflictCycles) / float64(st.Cycles)
}

// archKey indexes ArchCells for the renderers: one map build per
// render instead of a linear scan over the cell slice per row.
type archKey struct {
	scene  scene.Benchmark
	arch   harness.Arch
	bounce int
}

func indexArchCells(cells []ArchCell) map[archKey]ArchCell {
	m := make(map[archKey]ArchCell, len(cells))
	for _, c := range cells {
		k := archKey{c.Scene, c.Arch, c.Bounce}
		if _, ok := m[k]; !ok { // first match wins, like the old scans
			m[k] = c
		}
	}
	return m
}

// RenderFigure10 prints the SIMD efficiency / breakdown comparison.
func RenderFigure10(cells []ArchCell, perBounce int) string {
	out := "Figure 10: SIMD efficiency and utilization breakdown (Aila / DMK / TBC / DRS)\n"
	header := []string{"scene", "bounce", "arch", "SIMD eff", "W1:8", "W9:16", "W17:24", "W25:32", "SI"}
	idx := indexArchCells(cells)
	var rows [][]string
	for _, b := range scene.Benchmarks {
		for bounce := 1; bounce <= perBounce+1; bounce++ {
			bn := bounce
			label := fmt.Sprintf("B%d", bounce)
			if bounce == perBounce+1 {
				bn = 0
				label = "all"
			}
			for _, arch := range ComparisonArchs {
				c, ok := idx[archKey{b, arch, bn}]
				if !ok {
					continue
				}
				rows = append(rows, []string{
					b.String(), label, arch.String(),
					pct(c.Eff),
					pct(c.Breakdown.W1to8), pct(c.Breakdown.W9to16),
					pct(c.Breakdown.W17to24), pct(c.Breakdown.W25to32),
					pct(c.Breakdown.SI),
				})
			}
		}
	}
	return out + table(header, rows)
}

// RenderFigure11 prints the performance and speedup comparison
// (speedups normalized to Aila's software method, as in Figure 11).
func RenderFigure11(cells []ArchCell, perBounce int) string {
	out := "Figure 11: ray tracing performance (Mrays/s) and speedup vs Aila\n"
	header := []string{"scene", "bounce", "aila", "dmk", "tbc", "drs", "dmk x", "tbc x", "drs x"}
	idx := indexArchCells(cells)
	var rows [][]string
	for _, b := range scene.Benchmarks {
		for bounce := 1; bounce <= perBounce+1; bounce++ {
			bn := bounce
			label := fmt.Sprintf("B%d", bounce)
			if bounce == perBounce+1 {
				bn = 0
				label = "all"
			}
			aila, ok := idx[archKey{b, harness.ArchAila, bn}]
			if !ok {
				continue
			}
			dmk := idx[archKey{b, harness.ArchDMK, bn}]
			tbc := idx[archKey{b, harness.ArchTBC, bn}]
			drs := idx[archKey{b, harness.ArchDRS, bn}]
			speed := func(v float64) string {
				if aila.Mrays == 0 {
					return "-"
				}
				return fmt.Sprintf("%.2fx", v/aila.Mrays)
			}
			rows = append(rows, []string{
				b.String(), label,
				f1(aila.Mrays), f1(dmk.Mrays), f1(tbc.Mrays), f1(drs.Mrays),
				speed(dmk.Mrays), speed(tbc.Mrays), speed(drs.Mrays),
			})
		}
	}
	return out + table(header, rows)
}
