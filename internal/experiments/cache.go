package experiments

import (
	"repro/internal/cellsched"
	"repro/internal/scene"
)

// workloadKey identifies one workload build: the benchmark plus every
// Params field that shapes the render, BVH and trace capture. Bounce
// caps and device options only affect simulation downstream of the
// build, so they are not part of the key.
type workloadKey struct {
	Benchmark          scene.Benchmark
	Tris               int
	Width, Height, SPP int
}

// WorkloadCache shares workload builds (procedural scene + BVH + path
// traced ray streams) across runners. Figures 2/8/9/10/11 and Table 2
// simulate the same scenes at the same render parameters, so a suite
// run with one shared cache builds each scene exactly once instead of
// once per figure. Safe for concurrent use by scheduler cells; builds
// are singleflighted (see cellsched.Cache). Workloads are immutable
// after construction, which is what makes sharing them safe.
type WorkloadCache struct {
	cache *cellsched.Cache[workloadKey, *Workload]
}

// NewWorkloadCache returns an empty cache.
func NewWorkloadCache() *WorkloadCache {
	return &WorkloadCache{cache: cellsched.NewCache[workloadKey, *Workload]()}
}

// Get returns the workload for benchmark b at p's render parameters,
// building it on the key's first request.
func (wc *WorkloadCache) Get(b scene.Benchmark, p Params) (*Workload, error) {
	key := workloadKey{
		Benchmark: b,
		Tris:      p.Tris,
		Width:     p.Width, Height: p.Height, SPP: p.SPP,
	}
	return wc.cache.Get(key, func() (*Workload, error) {
		return BuildWorkload(b, p)
	})
}

// Stats reports cache traffic; in a shared-cache suite run Builds must
// equal the number of distinct (scene, render params) workloads.
func (wc *WorkloadCache) Stats() cellsched.CacheStats {
	return wc.cache.Stats()
}

// ensureCache gives the runner a private cache when the caller did not
// supply a shared one, so each scene is still built exactly once per
// runner call (the pre-cache behavior) and the prefetch cells have
// somewhere to put their builds.
func (p Params) ensureCache() Params {
	if p.Cache == nil {
		p.Cache = NewWorkloadCache()
	}
	return p
}

// workload fetches benchmark b through the cache. Only call after
// ensureCache.
func (p Params) workload(b scene.Benchmark) (*Workload, error) {
	return p.Cache.Get(b, p)
}

// par is the cell scheduler's worker count (harness.Options.Parallelism;
// 0 means GOMAXPROCS).
func (p Params) par() int { return p.Options.Parallelism }

// workloadCells returns one prefetch cell per scene. Runners put these
// at the front of their grids so that with N workers the first N scene
// builds run concurrently, instead of every worker blocking on the
// singleflighted build of the first scene's simulation cells.
func workloadCells[T any](p Params, scenes []scene.Benchmark) []cellsched.Cell[T] {
	cells := make([]cellsched.Cell[T], len(scenes))
	for i, b := range scenes {
		cells[i] = cellsched.Cell[T]{
			Key: "workload/" + b.String(),
			Run: func() (T, error) {
				var zero T
				_, err := p.workload(b)
				return zero, err
			},
		}
	}
	return cells
}
