package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/cellsched"
	"repro/internal/harness"
	"repro/internal/scene"
)

// The scheduler's core guarantee, asserted end to end: Figure 10 run
// with N workers is byte-identical to the sequential run — both the
// raw cells (the "golden stats" JSON drsbench -json emits) and the
// rendered tables.
func TestFigure10ParallelByteIdentical(t *testing.T) {
	p := tinyParams()
	p.Bounces = 2
	p.Cache = NewWorkloadCache() // shared, so only par differs between runs
	run := func(par int) (cellsJSON []byte, t10, t11 string) {
		t.Helper()
		pp := p
		pp.Options.Parallelism = par
		cells, err := Figure10(pp, 2, []scene.Benchmark{scene.ConferenceRoom})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		js, err := json.Marshal(cells)
		if err != nil {
			t.Fatal(err)
		}
		return js, RenderFigure10(cells, 2), RenderFigure11(cells, 2)
	}
	refJSON, ref10, ref11 := run(1)
	for _, par := range []int{2, 4} {
		js, g10, g11 := run(par)
		if !bytes.Equal(js, refJSON) {
			t.Errorf("par=%d: cell JSON diverged from sequential run", par)
		}
		if g10 != ref10 {
			t.Errorf("par=%d: Figure 10 table diverged:\n%s\nvs\n%s", par, g10, ref10)
		}
		if g11 != ref11 {
			t.Errorf("par=%d: Figure 11 table diverged", par)
		}
	}
}

func TestTable2ParallelByteIdentical(t *testing.T) {
	p := tinyParams()
	p.Cache = NewWorkloadCache()
	run := func(par int) ([]byte, string) {
		t.Helper()
		pp := p
		pp.Options.Parallelism = par
		cells, err := Table2(pp, 1, []scene.Benchmark{scene.FairyForest})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		js, err := json.Marshal(cells)
		if err != nil {
			t.Fatal(err)
		}
		return js, RenderTable2(cells, 1)
	}
	refJSON, refTable := run(1)
	js, tbl := run(4)
	if !bytes.Equal(js, refJSON) {
		t.Error("par=4: cell JSON diverged from sequential run")
	}
	if tbl != refTable {
		t.Errorf("par=4: Table 2 diverged:\n%s\nvs\n%s", tbl, refTable)
	}
}

// Observed-mode runs attach the full metrics registry; its snapshot
// must also be schedule-independent when the simulations run as
// concurrent scheduler cells.
func TestObservedMetricsParallelIdentical(t *testing.T) {
	p := tinyParams()
	p.Options.Observe = true
	p.Cache = NewWorkloadCache()
	w, err := p.workload(scene.ConferenceRoom)
	if err != nil {
		t.Fatal(err)
	}
	type probe struct {
		arch   harness.Arch
		bounce int
	}
	probes := []probe{
		{harness.ArchAila, 1}, {harness.ArchAila, 2},
		{harness.ArchDRS, 1}, {harness.ArchDRS, 2},
	}
	run := func(par int) [][]byte {
		t.Helper()
		grid := make([]cellsched.Cell[[]byte], len(probes))
		for i, pr := range probes {
			grid[i] = cellsched.Cell[[]byte]{
				Key: fmt.Sprintf("observed/%s/B%d", pr.arch, pr.bounce),
				Run: func() ([]byte, error) {
					res, err := w.simulate(pr.arch, pr.bounce, p)
					if err != nil {
						return nil, err
					}
					return json.Marshal(res.Metrics)
				},
			}
		}
		out, err := cellsched.Run(grid, par)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		return out
	}
	ref := run(1)
	got := run(4)
	for i := range probes {
		if !bytes.Equal(got[i], ref[i]) {
			t.Errorf("%s B%d: observed metrics snapshot diverged between par=1 and par=4",
				probes[i].arch, probes[i].bounce)
		}
	}
}

// A suite run sharing one WorkloadCache must build each scene's
// render+BVH+traces exactly once across Figure2/Figure8/Table2/Figure10.
func TestSuiteSharedCacheBuildsOncePerScene(t *testing.T) {
	p := tinyParams()
	p.Bounces = 1
	p.Options.Parallelism = 4
	p.Cache = NewWorkloadCache()
	scenes := []scene.Benchmark{scene.ConferenceRoom, scene.FairyForest}

	if _, err := Figure2(p); err != nil {
		t.Fatal(err)
	}
	if _, err := Figure8(p, 1, scenes); err != nil {
		t.Fatal(err)
	}
	if _, err := Table2(p, 1, scenes); err != nil {
		t.Fatal(err)
	}
	if _, err := Figure10(p, 1, scenes); err != nil {
		t.Fatal(err)
	}

	st := p.Cache.Stats()
	if st.Builds != int64(len(scenes)) {
		t.Errorf("builds = %d, want %d (one per scene across the whole suite)",
			st.Builds, len(scenes))
	}
	if st.Misses != st.Builds {
		t.Errorf("misses = %d, builds = %d; every miss must build exactly once",
			st.Misses, st.Builds)
	}
	if st.Hits == 0 {
		t.Error("no cache hits despite four runners sharing the cache")
	}
}
