package experiments

import (
	"context"
	"fmt"

	"repro/internal/cellsched"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/scene"
)

// Table2Cell is one measurement of the swap-buffer sweep.
type Table2Cell struct {
	Scene   scene.Benchmark
	Bounce  int
	Buffers int
	Mrays   float64
	// MeanSwapCycles is the average clock cycles one batched ray swap
	// took (§4.3 reports 31.6/25.0/24.3/22.0 for 6/9/12/18 buffers).
	MeanSwapCycles float64
}

// Table2Buffers is the paper's swap-buffer sweep.
var Table2Buffers = []int{6, 9, 12, 18}

// table2Result is one cell outcome; ok is false when the bounce stream
// was empty and the cell was skipped.
type table2Result struct {
	ok   bool
	cell Table2Cell
}

// Table2 reproduces Table 2: ray tracing performance under 6, 9, 12
// and 18 swap buffers, for the first `bounces` bounces of each scene
// (the paper evaluates B1-B4). Cells run on the scheduler
// (Options.Parallelism workers) and assemble positionally, so output
// is identical at any worker count.
func Table2(p Params, bounces int, scenes []scene.Benchmark) ([]Table2Cell, error) {
	return Table2Ctx(context.Background(), p, bounces, scenes)
}

// Table2Ctx is Table2 with cancellation: scheduler workers stop
// claiming cells once ctx is done and in-flight device runs abort at
// their next epoch barrier. An uncancelled call is byte-identical to
// Table2.
func Table2Ctx(ctx context.Context, p Params, bounces int, scenes []scene.Benchmark) ([]Table2Cell, error) {
	if bounces <= 0 {
		bounces = 4
	}
	if scenes == nil {
		scenes = scene.Benchmarks
	}
	p = p.ensureCache()

	grid := workloadCells[table2Result](p, scenes)
	prefetch := len(grid)
	for _, b := range scenes {
		for _, bufs := range Table2Buffers {
			pp := p
			cfg := core.DefaultConfig()
			cfg.SwapBuffers = bufs
			pp.Options.Policy = core.NewPolicy(cfg)
			for bounce := 1; bounce <= bounces; bounce++ {
				grid = append(grid, cellsched.Cell[table2Result]{
					Key: fmt.Sprintf("table2/%s/#%d/B%d", b, bufs, bounce),
					Run: func() (table2Result, error) {
						w, err := pp.workload(b)
						if err != nil {
							return table2Result{}, err
						}
						if len(w.BounceRays(bounce, pp)) == 0 {
							return table2Result{}, nil
						}
						res, err := w.simulateCtx(ctx, harness.ArchDRS, bounce, pp)
						if err != nil {
							return table2Result{}, fmt.Errorf("table2 %s #%d B%d: %w", b, bufs, bounce, err)
						}
						return table2Result{ok: true, cell: Table2Cell{
							Scene:          b,
							Bounce:         bounce,
							Buffers:        bufs,
							Mrays:          res.Mrays,
							MeanSwapCycles: res.DRS.MeanSwapCycles(),
						}}, nil
					},
				})
			}
		}
	}
	results, err := cellsched.RunCtx(ctx, grid, p.par())
	if err != nil {
		return nil, err
	}
	var cells []Table2Cell
	for _, r := range results[prefetch:] {
		if r.ok {
			cells = append(cells, r.cell)
		}
	}
	return cells, nil
}

// table2Key indexes Table2Cells for the renderer.
type table2Key struct {
	scene   scene.Benchmark
	bounce  int
	buffers int
}

// RenderTable2 prints the swap-buffer sweep in the paper's layout:
// scenes and bounces as rows, buffer counts as columns.
func RenderTable2(cells []Table2Cell, bounces int) string {
	header := []string{"test", "bounce"}
	for _, bufs := range Table2Buffers {
		header = append(header, fmt.Sprintf("#%d", bufs))
	}
	idx := make(map[table2Key]Table2Cell, len(cells))
	for _, c := range cells {
		k := table2Key{c.Scene, c.Bounce, c.Buffers}
		if _, ok := idx[k]; !ok {
			idx[k] = c
		}
	}
	var rows [][]string
	for _, b := range scene.Benchmarks {
		for bounce := 1; bounce <= bounces; bounce++ {
			row := []string{b.String(), fmt.Sprintf("B%d", bounce)}
			found := false
			for _, bufs := range Table2Buffers {
				v := ""
				if c, ok := idx[table2Key{b, bounce, bufs}]; ok {
					v = f1(c.Mrays)
					found = true
				}
				row = append(row, v)
			}
			if found {
				rows = append(rows, row)
			}
		}
	}
	out := "Table 2: ray tracing performance (Mrays/s) by swap buffer count\n" + table(header, rows)

	// Mean swap durations, aggregated per buffer count (§4.3 text).
	out += "\nMean cycles per ray swap:\n"
	for _, bufs := range Table2Buffers {
		var sum float64
		n := 0
		for _, c := range cells {
			if c.Buffers == bufs && c.MeanSwapCycles > 0 {
				sum += c.MeanSwapCycles
				n++
			}
		}
		if n > 0 {
			out += fmt.Sprintf("  #%d buffers: %.1f cycles\n", bufs, sum/float64(n))
		}
	}
	return out
}
