package harness

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/scene"
)

// update regenerates the golden-stats file instead of comparing:
//
//	go test ./internal/harness -run TestGoldenStats -update
//
// Review the diff before committing — every changed counter is a
// behaviour change in the simulated device, not noise, because the
// epoch-barrier engine is bit-deterministic.
var update = flag.Bool("update", false, "rewrite testdata/golden_stats.json from the current simulator")

const goldenPath = "testdata/golden_stats.json"

// goldenRuns defines the fixed matrix the golden file pins: every
// architecture, which between them covers both traversal kernels
// (aila/dmk/tbc run the while-while kernel, drs runs Kernel 1's
// while-if kernel).
var goldenRuns = []Arch{ArchAila, ArchDRS, ArchDMK, ArchTBC}

// TestGoldenStats pins the full metrics registry dump for a tiny
// deterministic workload on all four architectures. The comparison is
// byte-exact: the epoch engine guarantees every counter is reproducible,
// so any diff means the device model changed and the golden file must be
// consciously regenerated with -update.
func TestGoldenStats(t *testing.T) {
	data, traces, _ := testWorkload(t, scene.ConferenceRoom, 1200)
	rays := traces.Bounce(2).Rays
	if len(rays) < 200 {
		t.Fatalf("workload too small: %d rays", len(rays))
	}
	if len(rays) > 500 {
		rays = rays[:500]
	}
	opt := smallOptions()
	opt.Observe = true

	got := make(map[string]json.RawMessage, len(goldenRuns))
	for _, arch := range goldenRuns {
		res, err := Run(arch, rays, data, opt)
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		if res.Metrics == nil || res.Metrics.Len() == 0 {
			t.Fatalf("%v: empty metrics snapshot", arch)
		}
		b, err := json.Marshal(res.Metrics)
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		got[arch.String()] = b
	}
	// encoding/json sorts map keys and the Snapshot marshaler emits
	// sorted paths, so this serialization is canonical.
	out, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, '\n')

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, out, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(out))
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden file: %v (regenerate with -update)", err)
	}
	if string(out) == string(want) {
		return
	}
	// Name the first diverging counter per arch before failing on the
	// byte mismatch — far more useful than a giant byte diff.
	var wantRuns map[string]json.RawMessage
	if err := json.Unmarshal(want, &wantRuns); err != nil {
		t.Fatalf("golden file corrupt: %v", err)
	}
	for _, arch := range goldenRuns {
		name := arch.String()
		var g, w map[string]int64
		if err := json.Unmarshal(got[name], &g); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(wantRuns[name], &w); err != nil {
			t.Fatalf("%s: golden entry corrupt: %v", name, err)
		}
		for path, wv := range w {
			if gv, ok := g[path]; !ok {
				t.Errorf("%s: counter %s missing from current run (golden has %d)", name, path, wv)
			} else if gv != wv {
				t.Errorf("%s: %s = %d, golden %d", name, path, gv, wv)
			}
		}
		for path, gv := range g {
			if _, ok := w[path]; !ok {
				t.Errorf("%s: new counter %s = %d not in golden file", name, path, gv)
			}
		}
	}
	t.Fatalf("metrics diverged from %s; if the change is intentional, regenerate with: go test ./internal/harness -run TestGoldenStats -update", goldenPath)
}
