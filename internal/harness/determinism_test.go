package harness

import (
	"testing"

	"repro/internal/scene"
	"repro/internal/simt"
)

// The quickstart configuration (conference room, incoherent secondary
// bounce, Aila then DRS) must produce bit-identical GPUResult.Stats —
// device cycles, L1Tex miss rate, register file counters — on every
// run. This is the go-test form of the ISSUE's determinism acceptance
// criterion; cmd/drsbench -repeat covers the full experiment matrix.
func TestQuickstartConfigurationBitReproducible(t *testing.T) {
	data, traces, _ := testWorkload(t, scene.ConferenceRoom, 1500)
	rays := traces.Bounce(3).Rays
	opt := smallOptions()
	opt.Simt.NumSMX = 5

	for _, arch := range []Arch{ArchAila, ArchDRS} {
		var ref *Result
		for i := 0; i < 3; i++ {
			res, err := Run(arch, rays, data, opt)
			if err != nil {
				t.Fatalf("%v run %d: %v", arch, i, err)
			}
			if ref == nil {
				ref = res
				continue
			}
			if res.GPU.Stats != ref.GPU.Stats {
				t.Fatalf("%v run %d: device stats diverged: cycles %d vs %d, mem txns %d vs %d",
					arch, i, res.GPU.Stats.Cycles, ref.GPU.Stats.Cycles,
					res.GPU.Stats.MemTransactions, ref.GPU.Stats.MemTransactions)
			}
			if res.GPU.L1TexMissRate != ref.GPU.L1TexMissRate {
				t.Fatalf("%v run %d: L1Tex miss rate diverged: %v vs %v",
					arch, i, res.GPU.L1TexMissRate, ref.GPU.L1TexMissRate)
			}
			if res.GPU.RFStats != ref.GPU.RFStats {
				t.Fatalf("%v run %d: RF counters diverged: %+v vs %+v",
					arch, i, res.GPU.RFStats, ref.GPU.RFStats)
			}
			for s := range res.GPU.PerSMX {
				if res.GPU.PerSMX[s] != ref.GPU.PerSMX[s] {
					t.Fatalf("%v run %d: SMX %d stats diverged", arch, i, s)
				}
			}
		}
	}
}

// The harness's determinism assertion mode must pass on the default
// (epoch) engine for all four architectures.
func TestCheckDeterminismPassesOnEpochEngine(t *testing.T) {
	data, traces, _ := testWorkload(t, scene.CrytekSponza, 1200)
	rays := traces.Bounce(2).Rays
	if len(rays) > 2000 {
		rays = rays[:2000]
	}
	opt := smallOptions()
	opt.Simt.NumSMX = 3
	opt.CheckDeterminism = true
	for _, arch := range []Arch{ArchAila, ArchDRS, ArchDMK, ArchTBC} {
		if _, err := Run(arch, rays, data, opt); err != nil {
			t.Errorf("%v: determinism check failed: %v", arch, err)
		}
	}
}

// The legacy free-running engine must still complete and produce
// correct hits (its timing is allowed to jitter; that is why it is no
// longer the default).
func TestFreeEngineStillTraces(t *testing.T) {
	data, traces, bv := testWorkload(t, scene.FairyForest, 1200)
	rays := traces.Bounce(2).Rays
	if len(rays) > 1500 {
		rays = rays[:1500]
	}
	opt := smallOptions()
	opt.Simt.Engine = simt.EngineFree
	opt.Simt.NumSMX = 3
	res, err := Run(ArchDRS, rays, data, opt)
	if err != nil {
		t.Fatal(err)
	}
	verifyHits(t, "free-engine/drs", rays, res.Hits, bv)
}
