package harness

import (
	"errors"
	"fmt"

	"repro/internal/reorder"
)

// OptionsError reports one invalid Options field. Run and RunCtx reject
// bad configurations up front with this typed error instead of letting
// them panic deep in the engine (a zero warp count used to surface as a
// divide-by-zero inside the scheduler); callers match it with
// errors.As or AsOptionsError.
type OptionsError struct {
	// Field names the offending option ("AilaWarps", "Simt.NumSMX").
	Field string
	// Reason says what is wrong with it.
	Reason string
}

func (e *OptionsError) Error() string {
	return fmt.Sprintf("harness: invalid options: %s: %s", e.Field, e.Reason)
}

// AsOptionsError unwraps err to an *OptionsError if there is one.
func AsOptionsError(err error) (*OptionsError, bool) {
	var oe *OptionsError
	ok := errors.As(err, &oe)
	return oe, ok
}

// MaxParallelism bounds Options.Parallelism: a worker-pool size beyond
// any plausible core count is a caller bug (or an unvalidated request),
// not a tuning choice.
const MaxParallelism = 4096

// Validate checks the options against the architecture they will run
// and returns a typed *OptionsError for the first rejected field. Run
// and RunCtx perform the same validation before building any device
// state, so a malformed configuration fails fast with a named field
// instead of panicking in the engine.
func (o Options) Validate(arch Arch) error {
	if arch < ArchAila || arch > ArchTBC {
		return &OptionsError{Field: "Arch", Reason: fmt.Sprintf("unknown architecture %d", arch)}
	}
	return o.ValidatePolicy(arch.String())
}

// ValidatePolicy is Validate for a named policy run: it resolves the
// name (unknown names fail with the registry's typed
// *reorder.UnknownPolicyError), asks the policy to validate its own
// configuration, and checks the harness-level fields.
func (o Options) ValidatePolicy(name string) error {
	pol, err := o.ResolvePolicy(name)
	if err != nil {
		return err
	}
	return o.validateResolved(pol)
}

// validateResolved checks an already-resolved policy plus the
// policy-independent options.
func (o Options) validateResolved(pol reorder.Policy) error {
	if err := pol.Validate(); err != nil {
		return &OptionsError{
			Field:  "Policy",
			Reason: fmt.Sprintf("%s configuration rejected: %v", pol.Name(), err),
		}
	}
	// The warp scheduler validates like the policy: the registry judges
	// the name (typed *warpsched.UnknownSchedulerError), the instance
	// judges its own configuration.
	sched, err := o.ResolveScheduler()
	if err != nil {
		return err
	}
	if sched != nil {
		if err := sched.Validate(); err != nil {
			return &OptionsError{
				Field:  "Sched",
				Reason: fmt.Sprintf("%s configuration rejected: %v", sched.Name(), err),
			}
		}
	}
	warps := pol.Warps()
	if warps <= 0 {
		if o.AilaWarps <= 0 {
			return &OptionsError{
				Field:  "AilaWarps",
				Reason: fmt.Sprintf("warp count %d must be positive for the %s policy (the paper uses 48)", o.AilaWarps, pol.Name()),
			}
		}
		warps = o.AilaWarps
	}
	if o.Parallelism < 0 || o.Parallelism > MaxParallelism {
		return &OptionsError{
			Field:  "Parallelism",
			Reason: fmt.Sprintf("worker count %d out of range [0,%d] (0 selects GOMAXPROCS)", o.Parallelism, MaxParallelism),
		}
	}
	if o.SeriesCap < 0 {
		return &OptionsError{
			Field:  "SeriesCap",
			Reason: fmt.Sprintf("series ring capacity %d must not be negative (0 selects the default)", o.SeriesCap),
		}
	}
	if o.Simt.EpochCycles < 0 {
		return &OptionsError{
			Field:  "Simt.EpochCycles",
			Reason: fmt.Sprintf("epoch length %d is below the floor of 1 device cycle (0 selects the default, which EpochLen clamps to the minimum L2-bound latency)", o.Simt.EpochCycles),
		}
	}
	// The device config has its own validator (warp size, SMX count,
	// clock, engine); surface its verdict under one field so callers see
	// the same typed error shape for every rejection. Substitute the
	// policy's warp count the same way runOnce will before validating.
	cfg := o.Simt
	cfg.MaxWarpsPerSMX = warps
	if err := cfg.Validate(); err != nil {
		return &OptionsError{Field: "Simt", Reason: err.Error()}
	}
	return nil
}
