package harness

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/archconfig"
	"repro/internal/core"
	"repro/internal/scene"
	"repro/internal/simt"
	"repro/internal/warpsched"
)

func mustBuiltin(t *testing.T, name string) archconfig.Config {
	t.Helper()
	ac, err := archconfig.Builtin(name)
	if err != nil {
		t.Fatal(err)
	}
	return ac
}

// Applying the gtx780 config to the default options must reproduce the
// hard-coded configuration exactly: same device, same warp budget, and
// a DRS override equal to the core defaults (i.e. a no-op).
func TestApplyArchGTX780Identity(t *testing.T) {
	base := DefaultOptions()
	got, err := ApplyArch(mustBuiltin(t, "gtx780"), base)
	if err != nil {
		t.Fatal(err)
	}
	// reflect.DeepEqual because simt.Config carries a func field.
	if !reflect.DeepEqual(got.Simt, base.Simt) {
		t.Errorf("device config changed:\n%+v\n%+v", got.Simt, base.Simt)
	}
	if got.AilaWarps != base.AilaWarps {
		t.Errorf("AilaWarps = %d, want %d", got.AilaWarps, base.AilaWarps)
	}
	if got.Sched != "gto" {
		t.Errorf("Sched = %q, want the config default gto", got.Sched)
	}
	if len(got.PolicyOverrides) != 1 {
		t.Fatalf("overrides = %d entries, want exactly the DRS budget", len(got.PolicyOverrides))
	}
	pol, err := got.ResolvePolicy("drs")
	if err != nil {
		t.Fatal(err)
	}
	if warps := pol.Warps(); warps != core.DefaultConfig().Warps() {
		t.Errorf("DRS override warp derivation = %d, want default %d", warps, core.DefaultConfig().Warps())
	}
}

// ApplyArch must keep the caller's runtime knobs (engine selection,
// cycle caps, an explicit scheduler choice, existing overrides) and
// only replace device shape.
func TestApplyArchPreservesRuntime(t *testing.T) {
	base := smallOptions()
	base.Simt.Engine = simt.EngineFree
	base.Simt.EpochCycles = 512
	base.Simt.MaxCycles = 123456
	base.Sched = "wasp"
	nOverrides := len(base.PolicyOverrides)

	got, err := ApplyArch(mustBuiltin(t, "modern-mid"), base)
	if err != nil {
		t.Fatal(err)
	}
	if got.Simt.Engine != simt.EngineFree || got.Simt.EpochCycles != 512 || got.Simt.MaxCycles != 123456 {
		t.Errorf("runtime knobs not preserved: %+v", got.Simt)
	}
	if got.Simt.NumSMX != 48 {
		t.Errorf("NumSMX = %d, want the config's 48", got.Simt.NumSMX)
	}
	if got.Sched != "wasp" {
		t.Errorf("explicit Sched overwritten: %q", got.Sched)
	}
	if len(got.PolicyOverrides) != nOverrides+1 {
		t.Errorf("overrides = %d, want base %d plus the arch DRS budget", len(got.PolicyOverrides), nOverrides)
	}
	if len(base.PolicyOverrides) != nOverrides {
		t.Error("base override slice mutated")
	}
	// First match wins: the base's own DRS override must still be the
	// one a drs run resolves.
	pol, err := got.ResolvePolicy("drs")
	if err != nil {
		t.Fatal(err)
	}
	if pol != base.PolicyOverrides[0] {
		t.Error("arch DRS budget shadowed the caller's explicit override")
	}
	if _, err := ApplyArch(archconfig.Config{Name: "Bad Name!"}, base); err == nil {
		t.Error("invalid config accepted")
	}
}

// The differential golden at reduced scale: each builtin architecture
// expressed as a config must reproduce the hard-coded run byte for
// byte. The device is shrunk identically on both sides (SMXCount in
// the config, Simt.NumSMX in the options) so the test stays fast; the
// full-scale version of this check is the committed results_*.txt
// comparison in CI.
func TestArchEquivalenceReduced(t *testing.T) {
	data, traces, _ := testWorkload(t, scene.ConferenceRoom, 1200)
	rays := traces.Bounce(2).Rays

	for _, name := range []string{"aila", "drs", "dmk", "tbc"} {
		t.Run(name, func(t *testing.T) {
			plain := DefaultOptions()
			plain.Simt.NumSMX = 2
			want, err := RunNamed(name, rays, data, plain)
			if err != nil {
				t.Fatal(err)
			}

			ac := mustBuiltin(t, name)
			ac.SMXCount = 2
			viaCfg, err := ApplyArch(ac, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunNamed(name, rays, data, viaCfg)
			if err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(got.GPU, want.GPU) {
				t.Errorf("GPU stats diverged:\n%+v\n%+v", *got.GPU, *want.GPU)
			}
			if !reflect.DeepEqual(got.Hits, want.Hits) {
				t.Error("hits diverged")
			}
			if got.Mrays != want.Mrays || got.SIMDEff != want.SIMDEff {
				t.Errorf("rates diverged: %v/%v vs %v/%v", got.Mrays, got.SIMDEff, want.Mrays, want.SIMDEff)
			}
			if got.Reorder != want.Reorder || got.DRS != want.DRS {
				t.Error("policy stats diverged")
			}
			// The config names gto explicitly; the hard-coded side runs
			// it implicitly. Identical schedule, same label.
			if got.Sched != "gto" || want.Sched != "gto" {
				t.Errorf("Sched = %q/%q, want gto/gto", got.Sched, want.Sched)
			}
		})
	}
}

// An explicit Sched "gto" must be byte-identical to the default (the
// registry policy wraps the same canonical scan the enum runs).
func TestRunSchedGTOByteIdentical(t *testing.T) {
	data, traces, _ := testWorkload(t, scene.ConferenceRoom, 1200)
	rays := traces.Bounce(2).Rays

	want, err := RunNamed("aila", rays, data, smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	opt := smallOptions()
	opt.Sched = "gto"
	got, err := RunNamed("aila", rays, data, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.GPU, want.GPU) {
		t.Errorf("explicit gto diverged from default:\n%+v\n%+v", *got.GPU, *want.GPU)
	}
	if !reflect.DeepEqual(got.Hits, want.Hits) {
		t.Error("hits diverged")
	}
	if want.Sched != "gto" || got.Sched != "gto" {
		t.Errorf("Sched labels = %q/%q", want.Sched, got.Sched)
	}
}

// The registry schedulers run end to end: deterministic (identical
// repeat runs), correct result label, and the same committed hits as
// GTO — scheduling changes timing, never results.
func TestRunSchedRegistryEndToEnd(t *testing.T) {
	data, traces, bv := testWorkload(t, scene.ConferenceRoom, 1200)
	rays := traces.Bounce(2).Rays

	base, err := RunNamed("aila", rays, data, smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"lrr", "wasp"} {
		t.Run(name, func(t *testing.T) {
			opt := smallOptions()
			opt.Sched = name
			a, err := RunNamed("aila", rays, data, opt)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunNamed("aila", rays, data, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a.GPU, b.GPU) {
				t.Errorf("%s nondeterministic:\n%+v\n%+v", name, *a.GPU, *b.GPU)
			}
			if a.Sched != name {
				t.Errorf("Result.Sched = %q, want %q", a.Sched, name)
			}
			if !reflect.DeepEqual(a.Hits, base.Hits) {
				t.Errorf("%s changed committed hits", name)
			}
			verifyHits(t, name, rays, a.Hits, bv)
		})
	}
}

// A pinned Scheduler instance with non-default configuration runs, and
// a Sched name contradicting the pin is rejected with a typed error.
func TestSchedulerPin(t *testing.T) {
	data, traces, _ := testWorkload(t, scene.ConferenceRoom, 600)
	rays := traces.Bounce(2).Rays

	opt := smallOptions()
	opt.Scheduler = warpsched.WaSP{Runners: 3, Distance: 16}
	res, err := RunNamed("aila", rays, data, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sched != "wasp" {
		t.Errorf("Result.Sched = %q, want wasp", res.Sched)
	}

	opt.Sched = "lrr"
	_, err = RunNamed("aila", rays, data, opt)
	oe, ok := AsOptionsError(err)
	if !ok || oe.Field != "Scheduler" {
		t.Fatalf("want Scheduler OptionsError, got %v", err)
	}

	opt.Sched = ""
	opt.Scheduler = warpsched.WaSP{Runners: 0, Distance: 16}
	_, err = RunNamed("aila", rays, data, opt)
	oe, ok = AsOptionsError(err)
	if !ok || oe.Field != "Sched" {
		t.Fatalf("want Sched OptionsError for invalid wasp config, got %v", err)
	}
}

// Unknown scheduler names fail with the registry's typed error at the
// harness boundary, before any device state is built.
func TestRunUnknownScheduler(t *testing.T) {
	data, traces, _ := testWorkload(t, scene.ConferenceRoom, 600)
	rays := traces.Bounce(2).Rays

	opt := smallOptions()
	opt.Sched = "fifo"
	_, err := RunNamed("aila", rays, data, opt)
	var ue *warpsched.UnknownSchedulerError
	if !errors.As(err, &ue) || ue.Name != "fifo" {
		t.Fatalf("want *warpsched.UnknownSchedulerError, got %v", err)
	}
}
