package harness

import (
	"fmt"

	"repro/internal/metrics"
)

// phase names for the per-epoch dominant warp-state slice, in fixed
// priority order for deterministic tie-breaks (an epoch whose census
// deltas tie reports the earlier phase).
var tracePhases = [...]struct {
	name string
	col  string
}{
	{"exec", "sampled_exec"},
	{"mem", "sampled_mem"},
	{"gate", "sampled_gate"},
	{"parked", "sampled_parked"},
}

// ChromeTrace converts the run's epoch time-series into a Chrome
// trace-event JSON document (chrome://tracing, Perfetto). One device
// cycle maps to one microsecond of trace time. Per SMX it emits:
//
//   - an "X" slice per epoch on the SMX's thread, named by the dominant
//     warp state in that epoch (exec/mem/gate/parked, from the sampled
//     warp-state census), carrying the issued-instruction delta;
//   - counter tracks for occupancy (live warps) and the epoch's L2
//     port queue depth;
//
// plus a device-wide counter of L2 accesses/misses per epoch. Requires
// an observed run on the epoch-barrier engine (Options.Observe with
// simt.EngineEpoch); the free engine records no time-series.
func (r *Result) ChromeTrace() (*metrics.Trace, error) {
	if r.Series == nil {
		return nil, fmt.Errorf("harness: no metrics series: run with Options.Observe")
	}
	if r.Series.Len() == 0 {
		return nil, fmt.Errorf("harness: empty epoch time-series: the Chrome trace needs the epoch-barrier engine (simt.EngineEpoch)")
	}
	s := r.Series
	n := r.Config.NumSMX
	t := metrics.NewTrace()
	t.ProcessName(0, "gpu/"+r.Arch.String())
	for i := 0; i < n; i++ {
		t.ThreadName(0, i, fmt.Sprintf("smx%d", i))
	}
	if s.Dropped() > 0 {
		// The ring evicted early epochs: mark the truncation instead of
		// silently rendering a partial timeline.
		firstCycle, _ := s.At(0)
		t.Instant(0, 0, fmt.Sprintf("series ring dropped %d earlier epochs", s.Dropped()), firstCycle)
	}

	// Column indices per SMX, resolved once.
	type smxCols struct {
		live, instrs, queue int
		phases              [len(tracePhases)]int
	}
	cols := make([]smxCols, n)
	for i := 0; i < n; i++ {
		p := fmt.Sprintf("smx%d", i)
		cols[i].live = s.ColumnIndex(p + "/live_warps")
		cols[i].instrs = s.ColumnIndex(p + "/warp_instrs")
		cols[i].queue = s.ColumnIndex(p + "/l2_queue")
		for k := range tracePhases {
			cols[i].phases[k] = s.ColumnIndex(p + "/" + tracePhases[k].col)
		}
	}
	l2Acc, l2Miss := s.ColumnIndex("l2/accesses"), s.ColumnIndex("l2/misses")

	prev := make([][]int64, n) // previous row's cumulative values per SMX
	var prevCycle int64
	var prevL2 [2]int64
	for k := 0; k < s.Len(); k++ {
		cycle, row := s.At(k)
		epochStart := prevCycle
		if k == 0 {
			// First retained epoch: its start is one epoch before its end
			// (all epochs have the same nominal length), floored at 0.
			epochStart = cycle - r.Config.EpochLen()
			if epochStart < 0 {
				epochStart = 0
			}
		}
		dur := cycle - epochStart
		if dur <= 0 {
			dur = 1
		}
		for i := 0; i < n; i++ {
			c := &cols[i]
			// Dominant warp state this epoch, by census delta.
			best, bestDelta := -1, int64(0)
			var deltas [len(tracePhases)]int64
			for pi := range tracePhases {
				if c.phases[pi] < 0 {
					continue
				}
				d := row[c.phases[pi]]
				if prev[i] != nil {
					d -= prev[i][c.phases[pi]]
				}
				deltas[pi] = d
				if d > bestDelta {
					best, bestDelta = pi, d
				}
			}
			issued := int64(0)
			if c.instrs >= 0 {
				issued = row[c.instrs]
				if prev[i] != nil {
					issued -= prev[i][c.instrs]
				}
			}
			name := "idle"
			if best >= 0 {
				name = tracePhases[best].name
			} else if issued > 0 {
				// Epochs shorter than the 64-cycle census interval have no
				// census delta; fall back on issue activity.
				name = "exec"
			}
			args := []metrics.Arg{{Name: "issued_instrs", Value: issued}}
			for pi := range tracePhases {
				args = append(args, metrics.Arg{Name: tracePhases[pi].col, Value: deltas[pi]})
			}
			t.Slice(0, i, name, epochStart, dur, args)
			if c.live >= 0 {
				t.Counter(0, fmt.Sprintf("smx%d occupancy", i), cycle,
					[]metrics.Arg{{Name: "active_warps", Value: row[c.live]}})
			}
			if c.queue >= 0 {
				t.Counter(0, fmt.Sprintf("smx%d l2 queue", i), cycle,
					[]metrics.Arg{{Name: "queued_reqs", Value: row[c.queue]}})
			}
			if prev[i] == nil {
				prev[i] = make([]int64, len(row))
			}
			copy(prev[i], row)
		}
		if l2Acc >= 0 && l2Miss >= 0 {
			acc, miss := row[l2Acc], row[l2Miss]
			t.Counter(0, "l2 traffic", cycle, []metrics.Arg{
				{Name: "hits", Value: (acc - prevL2[0]) - (miss - prevL2[1])},
				{Name: "misses", Value: miss - prevL2[1]},
			})
			prevL2[0], prevL2[1] = acc, miss
		}
		prevCycle = cycle
	}
	return t, nil
}
