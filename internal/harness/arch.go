package harness

import (
	"repro/internal/archconfig"
	"repro/internal/core"
	"repro/internal/reorder"
)

// ApplyArch returns base with the declarative device model ac applied:
// the engine/memory/register-file configuration comes from the config,
// the harness warp budget follows warps_per_smx, the DRS policy picks
// up the config's pool budgets (as a PolicyOverride, so an explicit
// override or pinned Options.Policy still wins), and the config's
// default scheduler fills Options.Sched when the caller has not chosen
// one. Runtime knobs that are not device shape — engine selection,
// epoch length, cycle cap, collector, parallelism, kernel flavor —
// are preserved from base.
//
// Applying the "gtx780" config (or any of the four builtin
// architectures' configs) to DefaultOptions reproduces the hard-coded
// configuration byte-for-byte; the arch-equivalence tests pin that.
func ApplyArch(ac archconfig.Config, base Options) (Options, error) {
	ac.Normalize()
	if err := ac.Validate(); err != nil {
		return Options{}, err
	}
	o := base
	dev := ac.Simt()
	// Preserve base's runtime (non-device) engine knobs.
	dev.Scheduler = base.Simt.Scheduler
	dev.SchedFactory = base.Simt.SchedFactory
	dev.Engine = base.Simt.Engine
	dev.EpochCycles = base.Simt.EpochCycles
	dev.MaxCycles = base.Simt.MaxCycles
	dev.Collector = base.Simt.Collector
	o.Simt = dev
	o.AilaWarps = ac.WarpsPerSMX
	if o.Sched == "" && o.Scheduler == nil {
		o.Sched = ac.Sched
	}
	// The DRS pool budgets ride along as a policy override. The slice
	// is cloned so base's backing array is never mutated, and the new
	// entry is appended last so base's own overrides (and a pinned
	// Options.Policy) take precedence; with the default budgets this
	// override is exactly core.DefaultConfig and changes nothing.
	overrides := make([]reorder.Policy, 0, len(o.PolicyOverrides)+1)
	overrides = append(overrides, o.PolicyOverrides...)
	o.PolicyOverrides = append(overrides, core.NewPolicy(ac.DRS()))
	return o, nil
}
