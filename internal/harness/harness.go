// Package harness wires complete simulated ray tracing runs: it
// partitions a ray stream across SMXs, instantiates the requested
// reordering policy per SMX, runs the device, and merges results (per
// the paper's methodology, traces of rays are streamed into the
// traversal kernels, and performance is reported in Mrays/s).
//
// Method dispatch goes through the reorder.Policy registry: every
// reordering technique — the paper's DRS, the DMK/TBC baselines, the
// SER-style window reorderer, global ray sorting, the explicit no-op —
// is a Policy resolved by name (Policies() lists them), and the harness
// itself contains no per-method code. The legacy Arch enum survives as
// names for the four architectures Figures 10 and 11 compare.
package harness

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/dmk"
	"repro/internal/geom"
	"repro/internal/kernels"
	"repro/internal/metrics"
	"repro/internal/progcheck"
	"repro/internal/raysort"
	"repro/internal/reorder"
	"repro/internal/ser"
	"repro/internal/simt"
	"repro/internal/tbc"
	"repro/internal/warpsched"
)

// Arch selects one of the four architectures Figures 10 and 11 compare.
// It survives the policy refactor as a closed enum over the legacy
// names; Run(arch, ...) is RunNamed(arch.String(), ...).
type Arch int

const (
	// ArchAila is the software baseline (while-while kernel).
	ArchAila Arch = iota
	// ArchDRS is the paper's dynamic ray shuffling architecture.
	ArchDRS
	// ArchDMK is the dynamic micro-kernel baseline.
	ArchDMK
	// ArchTBC is the thread block compaction baseline.
	ArchTBC
)

func (a Arch) String() string {
	switch a {
	case ArchAila:
		return "aila"
	case ArchDRS:
		return "drs"
	case ArchDMK:
		return "dmk"
	case ArchTBC:
		return "tbc"
	default:
		return "unknown"
	}
}

// archOf maps a policy name back to its legacy Arch value, or -1 for
// policies that postdate the enum. Result.Arch and the run/arch metric
// keep their historical values through this mapping.
func archOf(name string) Arch {
	for _, a := range []Arch{ArchAila, ArchDRS, ArchDMK, ArchTBC} {
		if a.String() == name {
			return a
		}
	}
	return Arch(-1)
}

// policies is the process-wide registry, built once. Registration
// order is the presentation order: the four legacy architectures, then
// the policies this framework added.
var policies = sync.OnceValue(func() *reorder.Registry {
	r := reorder.NewRegistry()
	r.MustRegister(reorder.Registration{
		Name:    "aila",
		Summary: reorder.NewAilaBaseline().Summary(),
		New:     func() reorder.Policy { return reorder.NewAilaBaseline() },
	})
	r.MustRegister(reorder.Registration{
		Name:    "drs",
		Summary: core.NewPolicy(core.DefaultConfig()).Summary(),
		New:     func() reorder.Policy { return core.NewPolicy(core.DefaultConfig()) },
	})
	r.MustRegister(reorder.Registration{
		Name:    "dmk",
		Summary: dmk.NewPolicy(dmk.DefaultConfig()).Summary(),
		New:     func() reorder.Policy { return dmk.NewPolicy(dmk.DefaultConfig()) },
	})
	r.MustRegister(reorder.Registration{
		Name:    "tbc",
		Summary: tbc.NewPolicy(tbc.DefaultConfig()).Summary(),
		New:     func() reorder.Policy { return tbc.NewPolicy(tbc.DefaultConfig()) },
	})
	r.MustRegister(reorder.Registration{
		Name:    "ser",
		Summary: ser.NewPolicy(ser.DefaultConfig()).Summary(),
		New:     func() reorder.Policy { return ser.NewPolicy(ser.DefaultConfig()) },
	})
	r.MustRegister(reorder.Registration{
		Name:    "sort",
		Summary: raysort.NewPolicy(raysort.DefaultConfig()).Summary(),
		New:     func() reorder.Policy { return raysort.NewPolicy(raysort.DefaultConfig()) },
	})
	r.MustRegister(reorder.Registration{
		Name:    "noop",
		Summary: reorder.NewNoop().Summary(),
		New:     func() reorder.Policy { return reorder.NewNoop() },
	})
	return r
})

// Policies returns the registry of every built-in reordering policy.
// It is the single source of the name→method mapping: CLIs list it,
// the service validates against it, and an unknown name fails here
// with a typed *reorder.UnknownPolicyError and nowhere else.
func Policies() *reorder.Registry { return policies() }

// Schedulers returns the registry of every built-in warp-scheduler
// policy (gto, lrr, wasp). Like Policies it is the single judge of
// scheduler names — drsbench flags and service job specs resolve
// through it and an unknown name fails with a typed
// *warpsched.UnknownSchedulerError and nowhere else.
func Schedulers() *warpsched.Registry { return warpsched.Builtin() }

// Options configures a run.
type Options struct {
	Simt simt.Config
	// AilaWarps is the number of warps spawned per SMX for policies
	// that accept the harness warp count (Policy.Warps() == 0; 48 in
	// the paper). Policies with their own machine sizing — DRS derives
	// warps from its row configuration — override it.
	AilaWarps int
	// Aila configures the while-while kernel for the policies that run
	// it (aila, noop, ser, sort). DMK and TBC always run the plain
	// non-speculative kernel, as they historically did.
	Aila kernels.AilaConfig
	// WhileIf configures Kernel 1 for the DRS policy.
	WhileIf kernels.WhileIfConfig
	// Policy pins the run to one configured policy instance. The run's
	// requested name must match Policy.Name(); use this to run a policy
	// with non-default configuration (e.g. core.NewPolicy(customCfg)).
	Policy reorder.Policy
	// PolicyOverrides supplies configured policy instances for named
	// lookups: a run asking for a name found here (first match wins)
	// uses the override instead of the registry default. Unlike Policy
	// it can hold several policies at once, so one Options can carry
	// custom configurations across a multi-policy grid.
	PolicyOverrides []reorder.Policy
	// Sched names the warp-scheduler policy for the run ("gto", "lrr",
	// "wasp"; Schedulers().Names() lists them). Empty keeps the device
	// default — the Simt.Scheduler enum, i.e. historical GTO — which is
	// byte-identical to an explicit "gto": both run the engine's
	// canonical greedy-then-oldest scan. A non-empty name is resolved
	// through the registry and devirtualized at NewSMX, overriding the
	// legacy enum.
	Sched string
	// Scheduler pins the run to one configured scheduler instance
	// (e.g. warpsched.WaSP{Runners: 4, Distance: 128}). When set, Sched
	// must be empty or match Scheduler.Name(). Use it for non-default
	// scheduler parameters, like Policy for reordering policies.
	Scheduler warpsched.Scheduler
	// SkipProgCheck disables the progcheck verification of the kernel
	// program at build time (both the constructors' self-check and the
	// harness's policy-capability check). Only for tests that run
	// deliberately malformed programs; real runs must verify.
	SkipProgCheck bool
	// CheckDeterminism is the harness's determinism assertion mode: the
	// whole simulation runs twice and Run fails if the two runs' device
	// stats (cycles, instruction counts, cache and register-file
	// counters) differ in any way. It doubles the runtime; use it when
	// validating engine changes. The epoch-barrier engine (the default
	// simt.EngineEpoch) must always pass; the legacy simt.EngineFree
	// engine is expected to fail it on multi-SMX configurations. With
	// Observe set the comparison also covers the full metrics registry,
	// naming the exact counter that diverged.
	CheckDeterminism bool
	// Observe attaches the unified metrics layer to the run: every
	// component registers its counters in a fresh registry
	// (Result.Metrics holds the end-of-run snapshot) and the
	// epoch-barrier engine samples the per-epoch time-series
	// (Result.Series) at every barrier. Adds no work to the simulated
	// hot paths; see internal/metrics.
	Observe bool
	// SeriesCap overrides the epoch time-series ring capacity
	// (0 = metrics.DefaultSeriesCap). The ring keeps the newest samples
	// and counts evictions.
	SeriesCap int
	// Parallelism is the worker-pool size the experiment cell scheduler
	// (internal/cellsched) uses to run independent Run simulations
	// concurrently: 0 means GOMAXPROCS, 1 forces the sequential path.
	// It never changes any result — each cell is an isolated device and
	// the scheduler assembles outputs in canonical cell order, so tables
	// and stats are byte-identical at every setting (drsbench -par N).
	// A single Run call ignores it; only grid runners consult it.
	Parallelism int
	// OnEpochSample, when set together with Observe, is invoked at every
	// epoch barrier with the device cycle and the sampled series row
	// (metrics.Series.OnSample). It runs on the engine goroutine with
	// all SMX workers parked; the row must be copied if retained. The
	// service layer feeds its live SSE progress streams from it. With
	// CheckDeterminism the hook fires for both runs.
	OnEpochSample func(cycle int64, row []int64)
}

// DefaultOptions returns the paper's configuration: Table 1 GPU,
// 48-warp Aila kernel with speculative traversal; policy configuration
// comes from each policy's own defaults (override with Policy or
// PolicyOverrides).
func DefaultOptions() Options {
	return Options{
		Simt:      simt.DefaultConfig(),
		AilaWarps: 48,
		Aila:      kernels.AilaConfig{Speculative: true},
	}
}

// ResolvePolicy maps a run name to the policy instance that will serve
// it: Options.Policy if set (its name must match), else the first
// matching entry of Options.PolicyOverrides, else the registry default
// for the name. Unknown names fail with *reorder.UnknownPolicyError —
// the registry is the only place a name is judged.
func (o Options) ResolvePolicy(name string) (reorder.Policy, error) {
	if o.Policy != nil {
		if o.Policy.Name() != name {
			return nil, &OptionsError{
				Field:  "Policy",
				Reason: fmt.Sprintf("configured policy %q cannot serve a %q run", o.Policy.Name(), name),
			}
		}
		return o.Policy, nil
	}
	for _, p := range o.PolicyOverrides {
		if p != nil && p.Name() == name {
			return p, nil
		}
	}
	return Policies().New(name)
}

// ResolveScheduler maps the options' scheduler request to the instance
// that will serve it: Options.Scheduler if set (Sched, when also set,
// must match its name), else the registry default for Options.Sched,
// else nil — meaning the legacy Simt.Scheduler enum stays in charge.
// Unknown names fail with *warpsched.UnknownSchedulerError — the
// registry is the only place a name is judged.
func (o Options) ResolveScheduler() (warpsched.Scheduler, error) {
	if o.Scheduler != nil {
		if o.Sched != "" && o.Sched != o.Scheduler.Name() {
			return nil, &OptionsError{
				Field:  "Scheduler",
				Reason: fmt.Sprintf("configured scheduler %q cannot serve a %q run", o.Scheduler.Name(), o.Sched),
			}
		}
		return o.Scheduler, nil
	}
	if o.Sched == "" {
		return nil, nil
	}
	return Schedulers().New(o.Sched)
}

// Result is a completed run.
type Result struct {
	// Arch is the legacy enum value for the four original
	// architectures, -1 for policies that postdate it; Policy is the
	// authoritative identity.
	Arch Arch
	// Policy is the name of the reordering policy that ran.
	Policy string
	// Sched is the name of the warp-scheduler policy that ran ("gto"
	// for the historical default, whether implicit or explicit).
	Sched string
	GPU   *simt.GPUResult
	// Hits holds the committed hit for every input ray, in input order
	// (stream-sorting policies map hits back through their permutation).
	Hits []geom.Hit
	// Rays is the number of rays traced.
	Rays int
	// Mrays is the simulated tracing rate in Mrays/s, including any
	// modeled reordering cost the engine did not already charge
	// (Reorder.CostCycles).
	Mrays float64
	// SIMDEff is the overall SIMD efficiency.
	SIMDEff float64
	// Reorder aggregates the per-SMX generic reordering stats every
	// policy reports, plus stream-level costs (the sort pre-pass).
	Reorder reorder.Stats
	// DRS aggregates the per-SMX DRS control stats (drs policy only).
	DRS core.Stats
	// DMKStats aggregates the per-SMX DMK stats (dmk policy only).
	DMKStats dmk.Stats
	// TBCStats aggregates the per-SMX TBC stats (tbc policy only).
	TBCStats tbc.Stats
	// SERStats aggregates the per-SMX SER stats (ser policy only).
	SERStats ser.Stats
	// Config is the effective device configuration the run used (after
	// per-policy warp-count adjustments).
	Config simt.Config
	// Metrics is the end-of-run snapshot of the unified registry
	// (Options.Observe only).
	Metrics *metrics.Snapshot
	// Series is the per-epoch time-series (Options.Observe on the
	// epoch-barrier engine; empty on the free engine, which has no
	// deterministic sampling points).
	Series *metrics.Series
}

// Run simulates tracing the given rays on the chosen architecture.
func Run(arch Arch, rays []geom.Ray, data *kernels.SceneData, opt Options) (*Result, error) {
	return RunCtx(context.Background(), arch, rays, data, opt)
}

// RunCtx is Run with cooperative cancellation: the options are
// validated up front (typed *OptionsError) and ctx is threaded into the
// engine, which observes it at every epoch barrier, so a deadline or a
// client disconnect stops a long simulation within one epoch.
// Cancellation returns only an error, never a partial result, so an
// uncancelled RunCtx is byte-identical to Run.
func RunCtx(ctx context.Context, arch Arch, rays []geom.Ray, data *kernels.SceneData, opt Options) (*Result, error) {
	if arch < ArchAila || arch > ArchTBC {
		return nil, &OptionsError{Field: "Arch", Reason: fmt.Sprintf("unknown architecture %d", arch)}
	}
	return RunNamedCtx(ctx, arch.String(), rays, data, opt)
}

// RunNamed simulates tracing the rays under the named reordering
// policy ("drs", "ser", "sort", ...; Policies().Names() lists them).
func RunNamed(name string, rays []geom.Ray, data *kernels.SceneData, opt Options) (*Result, error) {
	return RunNamedCtx(context.Background(), name, rays, data, opt)
}

// RunNamedCtx is RunNamed with cooperative cancellation. For the four
// legacy names it is byte-identical to the pre-registry harness.
func RunNamedCtx(ctx context.Context, name string, rays []geom.Ray, data *kernels.SceneData, opt Options) (*Result, error) {
	pol, err := opt.ResolvePolicy(name)
	if err != nil {
		return nil, err
	}
	if err := opt.validateResolved(pol); err != nil {
		return nil, err
	}
	res, err := runOnce(ctx, pol, rays, data, opt)
	if err != nil || !opt.CheckDeterminism {
		return res, err
	}
	again, err := runOnce(ctx, pol, rays, data, opt)
	if err != nil {
		return nil, fmt.Errorf("harness: determinism check re-run: %w", err)
	}
	if err := compareRuns(res, again); err != nil {
		return nil, fmt.Errorf("harness: determinism check failed for %s: %w", name, err)
	}
	return res, nil
}

// compareRuns reports the first divergence between two runs of the same
// configuration.
func compareRuns(a, b *Result) error {
	switch {
	case a.GPU.Stats != b.GPU.Stats:
		return fmt.Errorf("device stats diverged: cycles %d vs %d, instrs %d vs %d",
			a.GPU.Stats.Cycles, b.GPU.Stats.Cycles, a.GPU.Stats.WarpInstrs, b.GPU.Stats.WarpInstrs)
	case a.GPU.L1TexMissRate != b.GPU.L1TexMissRate:
		return fmt.Errorf("L1Tex miss rate diverged: %v vs %v", a.GPU.L1TexMissRate, b.GPU.L1TexMissRate)
	case a.GPU.RFStats != b.GPU.RFStats:
		return fmt.Errorf("register file counters diverged: %+v vs %+v", a.GPU.RFStats, b.GPU.RFStats)
	}
	if a.Metrics != nil && b.Metrics != nil {
		if d := a.Metrics.Diff(b.Metrics); d != "" {
			return fmt.Errorf("metrics registry diverged: %s", d)
		}
	}
	for i := range a.GPU.PerSMX {
		if a.GPU.PerSMX[i] != b.GPU.PerSMX[i] {
			return fmt.Errorf("SMX %d stats diverged: cycles %d vs %d",
				i, a.GPU.PerSMX[i].Cycles, b.GPU.PerSMX[i].Cycles)
		}
	}
	for i := range a.Hits {
		if a.Hits[i].TriIndex != b.Hits[i].TriIndex {
			return fmt.Errorf("hit %d diverged: tri %d vs %d", i, a.Hits[i].TriIndex, b.Hits[i].TriIndex)
		}
	}
	return nil
}

// runOnce performs one complete simulation under the resolved policy.
func runOnce(ctx context.Context, pol reorder.Policy, rays []geom.Ray, data *kernels.SceneData, opt Options) (*Result, error) {
	if len(rays) == 0 {
		return nil, fmt.Errorf("harness: empty ray stream")
	}
	name := pol.Name()
	cfg := opt.Simt
	if w := pol.Warps(); w > 0 {
		cfg.MaxWarpsPerSMX = w
	} else if opt.AilaWarps > 0 {
		cfg.MaxWarpsPerSMX = opt.AilaWarps
	}
	// Resolve the warp scheduler. A requested policy is devirtualized
	// through its factory at NewSMX; no request leaves the legacy enum
	// (historical GTO/RR) in charge, which an explicit "gto" matches
	// byte-for-byte — registry GTO and the enum run the same scan.
	sched, err := opt.ResolveScheduler()
	if err != nil {
		return nil, err
	}
	schedName := cfg.Scheduler.String()
	if sched != nil {
		cfg.SchedFactory = sched.Factory()
		schedName = sched.Name()
	}

	// Stream-level reordering happens before the device exists: a
	// sorting policy permutes the whole stream, the trace runs on the
	// permuted order, and the hits map back through the permutation.
	runRays := rays
	var perm []int
	var streamCost int64
	if ss, ok := pol.(reorder.StreamSorter); ok {
		perm, streamCost = ss.SortStream(rays)
		if len(perm) != len(rays) {
			return nil, fmt.Errorf("harness: policy %s returned a %d-entry permutation for %d rays", name, len(perm), len(rays))
		}
		sorted := make([]geom.Ray, len(rays))
		for i, oi := range perm {
			sorted[i] = rays[oi]
		}
		runRays = sorted
	}

	var col *metrics.Collector
	if opt.Observe {
		col = metrics.NewCollector(opt.SeriesCap)
		col.Registry.Const("run/rays", int64(len(rays)))
		col.Registry.Const("run/arch", int64(archOf(name)))
		col.Registry.Const("run/num_smx", int64(cfg.NumSMX))
		col.Registry.Const("run/epoch_cycles", cfg.EpochLen())
		if perm != nil {
			col.Registry.Const("run/sort_cost_cycles", streamCost)
		}
		col.Series.OnSample = opt.OnEpochSample
		cfg.Collector = col
	}

	// Kernel configurations with the harness-wide verification override
	// folded in; each policy picks the one its kernel needs.
	acfg := opt.Aila
	acfg.SkipVerify = acfg.SkipVerify || opt.SkipProgCheck
	wcfg := opt.WhileIf
	wcfg.SkipVerify = wcfg.SkipVerify || opt.SkipProgCheck
	var verify func(k simt.Kernel) error
	if !opt.SkipProgCheck {
		caps := pol.Caps()
		verify = func(k simt.Kernel) error {
			if fs := progcheck.Verify(name, k, caps); len(fs) > 0 {
				return fmt.Errorf("harness: kernel program rejected for %s: %s (run cmd/drslint for the full report, or set Options.SkipProgCheck for deliberately-broken test programs)", name, fs[0].Msg)
			}
			return nil
		}
	}

	type smxOut struct {
		inst  reorder.Instance
		start int
	}
	outs := make([]*smxOut, cfg.NumSMX)

	factory := func(id int) (simt.SMXProgram, error) {
		start, end := simt.Partition(len(runRays), cfg.NumSMX, id)
		pool := &kernels.Pool{Rays: runRays[start:end]}
		inst, err := pol.NewSMX(reorder.Env{
			SMXID:         id,
			Cfg:           cfg,
			Data:          data,
			Pool:          pool,
			Aila:          acfg,
			WhileIf:       wcfg,
			SkipProgCheck: opt.SkipProgCheck,
			Verify:        verify,
			Collector:     col,
			MetricsPrefix: fmt.Sprintf("smx%d/%s", id, name),
		})
		if err != nil {
			return simt.SMXProgram{}, err
		}
		outs[id] = &smxOut{inst: inst, start: start}
		return inst.Program(), nil
	}

	gpu, err := simt.RunGPUCtx(ctx, cfg, factory)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Arch:   archOf(name),
		Policy: name,
		Sched:  schedName,
		GPU:    gpu,
		Hits:   make([]geom.Hit, len(rays)),
		Rays:   len(rays),
		Config: cfg,
	}
	hits := res.Hits
	if perm != nil {
		hits = make([]geom.Hit, len(rays))
	}
	for _, o := range outs {
		copy(hits[o.start:], o.inst.Hits())
		if sr, ok := o.inst.(reorder.StatsReporter); ok {
			res.Reorder.Add(sr.ReorderStats())
		}
		if ts, ok := o.inst.(reorder.TypedStatser); ok {
			switch st := ts.TypedStats().(type) {
			case core.Stats:
				res.DRS.Add(st)
			case dmk.Stats:
				res.DMKStats.Add(st)
			case tbc.Stats:
				res.TBCStats.Add(st)
			case ser.Stats:
				res.SERStats.Add(st)
			}
		}
	}
	if perm != nil {
		for i, oi := range perm {
			res.Hits[oi] = hits[i]
		}
		res.Reorder.Add(reorder.Stats{Reorders: 1, RaysMoved: int64(len(rays)), CostCycles: streamCost})
	}
	// Fold modeled out-of-engine reordering cost into the throughput
	// figure. The zero-cost path must stay the exact historical float
	// expression, so only divert through the adjusted copy when a policy
	// actually charged something.
	if res.Reorder.CostCycles == 0 {
		res.Mrays = gpu.Stats.MraysPerSec(int64(len(rays)), cfg.ClockMHz)
	} else {
		charged := gpu.Stats
		charged.Cycles += res.Reorder.CostCycles
		res.Mrays = charged.MraysPerSec(int64(len(rays)), cfg.ClockMHz)
	}
	res.SIMDEff = gpu.Stats.SIMDEfficiency(cfg.WarpSize)
	if col != nil {
		res.Metrics = col.Registry.Snapshot()
		res.Series = col.Series
	}
	return res, nil
}
