// Package harness wires complete simulated ray tracing runs: it
// partitions a ray stream across SMXs, instantiates the requested
// kernel and architecture per SMX, runs the device, and merges results
// (per the paper's methodology, traces of rays are streamed into the
// traversal kernels, and performance is reported in Mrays/s).
package harness

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dmk"
	"repro/internal/geom"
	"repro/internal/kernels"
	"repro/internal/metrics"
	"repro/internal/progcheck"
	"repro/internal/simt"
	"repro/internal/tbc"
)

// archCaps returns the progcheck capabilities an architecture provides:
// only the DRS services gated blocks and TagCtrl instructions (its
// rdctrl gate and control co-processor).
func archCaps(a Arch) progcheck.Caps {
	if a == ArchDRS {
		return progcheck.Caps{Gate: true, CtrlTag: true}
	}
	return progcheck.Caps{}
}

// verifyKernel re-verifies a built kernel against the capabilities of
// the architecture actually attached to it. The constructors verify
// against the capabilities the kernel was designed for; this catches
// mismatched pairings (e.g. a gated kernel on an architecture with no
// gate hook, which would silently never stall).
func verifyKernel(arch Arch, k simt.Kernel) error {
	if fs := progcheck.Verify(arch.String(), k, archCaps(arch)); len(fs) > 0 {
		return fmt.Errorf("harness: kernel program rejected for %s: %s (run cmd/drslint for the full report, or set Options.SkipProgCheck for deliberately-broken test programs)", arch, fs[0].Msg)
	}
	return nil
}

// Arch selects the ray traversal architecture to simulate.
type Arch int

// The four architectures Figures 10 and 11 compare.
const (
	// ArchAila is the software baseline (while-while kernel).
	ArchAila Arch = iota
	// ArchDRS is the paper's dynamic ray shuffling architecture.
	ArchDRS
	// ArchDMK is the dynamic micro-kernel baseline.
	ArchDMK
	// ArchTBC is the thread block compaction baseline.
	ArchTBC
)

func (a Arch) String() string {
	switch a {
	case ArchAila:
		return "aila"
	case ArchDRS:
		return "drs"
	case ArchDMK:
		return "dmk"
	case ArchTBC:
		return "tbc"
	default:
		return "unknown"
	}
}

// Options configures a run.
type Options struct {
	Simt simt.Config
	// AilaWarps is the number of warps the while-while kernel spawns
	// per SMX (48 in the paper; the DRS kernel's warp count comes from
	// its Config).
	AilaWarps int
	Aila      kernels.AilaConfig
	WhileIf   kernels.WhileIfConfig
	DRS       core.Config
	DMK       dmk.Config
	TBC       tbc.Config
	// SkipProgCheck disables the progcheck verification of the kernel
	// program at build time (both the constructors' self-check and the
	// harness's architecture-capability check). Only for tests that run
	// deliberately malformed programs; real runs must verify.
	SkipProgCheck bool
	// CheckDeterminism is the harness's determinism assertion mode: the
	// whole simulation runs twice and Run fails if the two runs' device
	// stats (cycles, instruction counts, cache and register-file
	// counters) differ in any way. It doubles the runtime; use it when
	// validating engine changes. The epoch-barrier engine (the default
	// simt.EngineEpoch) must always pass; the legacy simt.EngineFree
	// engine is expected to fail it on multi-SMX configurations. With
	// Observe set the comparison also covers the full metrics registry,
	// naming the exact counter that diverged.
	CheckDeterminism bool
	// Observe attaches the unified metrics layer to the run: every
	// component registers its counters in a fresh registry
	// (Result.Metrics holds the end-of-run snapshot) and the
	// epoch-barrier engine samples the per-epoch time-series
	// (Result.Series) at every barrier. Adds no work to the simulated
	// hot paths; see internal/metrics.
	Observe bool
	// SeriesCap overrides the epoch time-series ring capacity
	// (0 = metrics.DefaultSeriesCap). The ring keeps the newest samples
	// and counts evictions.
	SeriesCap int
	// Parallelism is the worker-pool size the experiment cell scheduler
	// (internal/cellsched) uses to run independent Run simulations
	// concurrently: 0 means GOMAXPROCS, 1 forces the sequential path.
	// It never changes any result — each cell is an isolated device and
	// the scheduler assembles outputs in canonical cell order, so tables
	// and stats are byte-identical at every setting (drsbench -par N).
	// A single Run call ignores it; only grid runners consult it.
	Parallelism int
	// OnEpochSample, when set together with Observe, is invoked at every
	// epoch barrier with the device cycle and the sampled series row
	// (metrics.Series.OnSample). It runs on the engine goroutine with
	// all SMX workers parked; the row must be copied if retained. The
	// service layer feeds its live SSE progress streams from it. With
	// CheckDeterminism the hook fires for both runs.
	OnEpochSample func(cycle int64, row []int64)
}

// DefaultOptions returns the paper's configuration: Table 1 GPU,
// 48-warp Aila kernel with speculative traversal, default DRS.
func DefaultOptions() Options {
	return Options{
		Simt:      simt.DefaultConfig(),
		AilaWarps: 48,
		Aila:      kernels.AilaConfig{Speculative: true},
		DRS:       core.DefaultConfig(),
		DMK:       dmk.DefaultConfig(),
		TBC:       tbc.DefaultConfig(),
	}
}

// Result is a completed run.
type Result struct {
	Arch Arch
	GPU  *simt.GPUResult
	// Hits holds the committed hit for every input ray, in input order.
	Hits []geom.Hit
	// Rays is the number of rays traced.
	Rays int
	// Mrays is the simulated tracing rate in Mrays/s.
	Mrays float64
	// SIMDEff is the overall SIMD efficiency.
	SIMDEff float64
	// DRS aggregates the per-SMX DRS control stats (ArchDRS only).
	DRS core.Stats
	// DMKStats aggregates the per-SMX DMK stats (ArchDMK only).
	DMKStats dmk.Stats
	// TBCStats aggregates the per-SMX TBC stats (ArchTBC only).
	TBCStats tbc.Stats
	// Config is the effective device configuration the run used (after
	// per-architecture warp-count adjustments).
	Config simt.Config
	// Metrics is the end-of-run snapshot of the unified registry
	// (Options.Observe only).
	Metrics *metrics.Snapshot
	// Series is the per-epoch time-series (Options.Observe on the
	// epoch-barrier engine; empty on the free engine, which has no
	// deterministic sampling points).
	Series *metrics.Series
}

// Run simulates tracing the given rays on the chosen architecture.
func Run(arch Arch, rays []geom.Ray, data *kernels.SceneData, opt Options) (*Result, error) {
	return RunCtx(context.Background(), arch, rays, data, opt)
}

// RunCtx is Run with cooperative cancellation: the options are
// validated up front (typed *OptionsError) and ctx is threaded into the
// engine, which observes it at every epoch barrier, so a deadline or a
// client disconnect stops a long simulation within one epoch.
// Cancellation returns only an error, never a partial result, so an
// uncancelled RunCtx is byte-identical to Run.
func RunCtx(ctx context.Context, arch Arch, rays []geom.Ray, data *kernels.SceneData, opt Options) (*Result, error) {
	if err := opt.Validate(arch); err != nil {
		return nil, err
	}
	res, err := runOnce(ctx, arch, rays, data, opt)
	if err != nil || !opt.CheckDeterminism {
		return res, err
	}
	again, err := runOnce(ctx, arch, rays, data, opt)
	if err != nil {
		return nil, fmt.Errorf("harness: determinism check re-run: %w", err)
	}
	if err := compareRuns(res, again); err != nil {
		return nil, fmt.Errorf("harness: determinism check failed for %s: %w", arch, err)
	}
	return res, nil
}

// compareRuns reports the first divergence between two runs of the same
// configuration.
func compareRuns(a, b *Result) error {
	switch {
	case a.GPU.Stats != b.GPU.Stats:
		return fmt.Errorf("device stats diverged: cycles %d vs %d, instrs %d vs %d",
			a.GPU.Stats.Cycles, b.GPU.Stats.Cycles, a.GPU.Stats.WarpInstrs, b.GPU.Stats.WarpInstrs)
	case a.GPU.L1TexMissRate != b.GPU.L1TexMissRate:
		return fmt.Errorf("L1Tex miss rate diverged: %v vs %v", a.GPU.L1TexMissRate, b.GPU.L1TexMissRate)
	case a.GPU.RFStats != b.GPU.RFStats:
		return fmt.Errorf("register file counters diverged: %+v vs %+v", a.GPU.RFStats, b.GPU.RFStats)
	}
	if a.Metrics != nil && b.Metrics != nil {
		if d := a.Metrics.Diff(b.Metrics); d != "" {
			return fmt.Errorf("metrics registry diverged: %s", d)
		}
	}
	for i := range a.GPU.PerSMX {
		if a.GPU.PerSMX[i] != b.GPU.PerSMX[i] {
			return fmt.Errorf("SMX %d stats diverged: cycles %d vs %d",
				i, a.GPU.PerSMX[i].Cycles, b.GPU.PerSMX[i].Cycles)
		}
	}
	for i := range a.Hits {
		if a.Hits[i].TriIndex != b.Hits[i].TriIndex {
			return fmt.Errorf("hit %d diverged: tri %d vs %d", i, a.Hits[i].TriIndex, b.Hits[i].TriIndex)
		}
	}
	return nil
}

// runOnce performs one complete simulation.
func runOnce(ctx context.Context, arch Arch, rays []geom.Ray, data *kernels.SceneData, opt Options) (*Result, error) {
	if len(rays) == 0 {
		return nil, fmt.Errorf("harness: empty ray stream")
	}
	cfg := opt.Simt
	switch arch {
	case ArchAila, ArchDMK, ArchTBC:
		if opt.AilaWarps > 0 {
			cfg.MaxWarpsPerSMX = opt.AilaWarps
		}
	case ArchDRS:
		if err := opt.DRS.Validate(); err != nil {
			return nil, err
		}
		cfg.MaxWarpsPerSMX = opt.DRS.Warps()
	}
	var col *metrics.Collector
	if opt.Observe {
		col = metrics.NewCollector(opt.SeriesCap)
		col.Registry.Const("run/rays", int64(len(rays)))
		col.Registry.Const("run/arch", int64(arch))
		col.Registry.Const("run/num_smx", int64(cfg.NumSMX))
		col.Registry.Const("run/epoch_cycles", cfg.EpochLen())
		col.Series.OnSample = opt.OnEpochSample
		cfg.Collector = col
	}

	type smxOut struct {
		hits  []geom.Hit
		start int
		drs   *core.Control
		dmk   *dmk.Wrapper
		tbc   *tbc.Wrapper
	}
	outs := make([]*smxOut, cfg.NumSMX)

	factory := func(id int) (simt.SMXProgram, error) {
		start, end := simt.Partition(len(rays), cfg.NumSMX, id)
		pool := &kernels.Pool{Rays: rays[start:end]}
		out := &smxOut{start: start}
		outs[id] = out
		switch arch {
		case ArchAila:
			acfg := opt.Aila
			acfg.SkipVerify = acfg.SkipVerify || opt.SkipProgCheck
			k := kernels.NewAila(data, pool, cfg.MaxWarpsPerSMX*cfg.WarpSize, acfg)
			out.hits = k.Hits
			if !opt.SkipProgCheck {
				if err := verifyKernel(arch, k); err != nil {
					return simt.SMXProgram{}, err
				}
			}
			return simt.SMXProgram{Kernel: k}, nil
		case ArchDRS:
			slots := (opt.DRS.Rows() - 2) * cfg.WarpSize
			wcfg := opt.WhileIf
			wcfg.SkipVerify = wcfg.SkipVerify || opt.SkipProgCheck
			k := kernels.NewWhileIfConfigured(data, pool, slots, wcfg)
			out.hits = k.Hits
			if !opt.SkipProgCheck {
				if err := verifyKernel(arch, k); err != nil {
					return simt.SMXProgram{}, err
				}
			}
			ctrl, err := core.NewControl(opt.DRS, k)
			if err != nil {
				return simt.SMXProgram{}, err
			}
			out.drs = ctrl
			if col != nil {
				ctrl.RegisterMetrics(col, fmt.Sprintf("smx%d/drs", id))
			}
			return simt.SMXProgram{
				Kernel: k,
				Hooks:  ctrl.Hooks(),
				Launch: ctrl.Launch,
			}, nil
		case ArchDMK:
			acfg := kernels.AilaConfig{SkipVerify: opt.SkipProgCheck}
			k := kernels.NewAila(data, pool, cfg.MaxWarpsPerSMX*cfg.WarpSize, acfg)
			out.hits = k.Hits
			if !opt.SkipProgCheck {
				if err := verifyKernel(arch, k); err != nil {
					return simt.SMXProgram{}, err
				}
			}
			w := dmk.New(opt.DMK, k, cfg.MaxWarpsPerSMX, cfg.WarpSize)
			out.dmk = w
			if col != nil {
				w.RegisterMetrics(col.Registry, fmt.Sprintf("smx%d/dmk", id))
			}
			return simt.SMXProgram{Kernel: k, Hooks: w.Hooks()}, nil
		case ArchTBC:
			acfg := kernels.AilaConfig{SkipVerify: opt.SkipProgCheck}
			k := kernels.NewAila(data, pool, cfg.MaxWarpsPerSMX*cfg.WarpSize, acfg)
			out.hits = k.Hits
			if !opt.SkipProgCheck {
				if err := verifyKernel(arch, k); err != nil {
					return simt.SMXProgram{}, err
				}
			}
			w := tbc.New(opt.TBC, k, cfg.MaxWarpsPerSMX, cfg.WarpSize)
			out.tbc = w
			if col != nil {
				w.RegisterMetrics(col.Registry, fmt.Sprintf("smx%d/tbc", id))
			}
			return simt.SMXProgram{Kernel: k, Hooks: w.Hooks()}, nil
		default:
			return simt.SMXProgram{}, fmt.Errorf("harness: unknown arch %d", arch)
		}
	}

	gpu, err := simt.RunGPUCtx(ctx, cfg, factory)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Arch:   arch,
		GPU:    gpu,
		Hits:   make([]geom.Hit, len(rays)),
		Rays:   len(rays),
		Config: cfg,
	}
	for _, o := range outs {
		copy(res.Hits[o.start:], o.hits)
		if o.drs != nil {
			res.DRS.Add(o.drs.Stats())
		}
		if o.dmk != nil {
			res.DMKStats.Add(o.dmk.Stats())
		}
		if o.tbc != nil {
			res.TBCStats.Add(o.tbc.Stats())
		}
	}
	res.Mrays = gpu.Stats.MraysPerSec(int64(len(rays)), cfg.ClockMHz)
	res.SIMDEff = gpu.Stats.SIMDEfficiency(cfg.WarpSize)
	if col != nil {
		res.Metrics = col.Registry.Snapshot()
		res.Series = col.Series
	}
	return res, nil
}
