// Package harness wires complete simulated ray tracing runs: it
// partitions a ray stream across SMXs, instantiates the requested
// kernel and architecture per SMX, runs the device, and merges results
// (per the paper's methodology, traces of rays are streamed into the
// traversal kernels, and performance is reported in Mrays/s).
package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dmk"
	"repro/internal/geom"
	"repro/internal/kernels"
	"repro/internal/simt"
	"repro/internal/tbc"
)

// Arch selects the ray traversal architecture to simulate.
type Arch int

// The four architectures Figures 10 and 11 compare.
const (
	// ArchAila is the software baseline (while-while kernel).
	ArchAila Arch = iota
	// ArchDRS is the paper's dynamic ray shuffling architecture.
	ArchDRS
	// ArchDMK is the dynamic micro-kernel baseline.
	ArchDMK
	// ArchTBC is the thread block compaction baseline.
	ArchTBC
)

func (a Arch) String() string {
	switch a {
	case ArchAila:
		return "aila"
	case ArchDRS:
		return "drs"
	case ArchDMK:
		return "dmk"
	case ArchTBC:
		return "tbc"
	default:
		return "unknown"
	}
}

// Options configures a run.
type Options struct {
	Simt simt.Config
	// AilaWarps is the number of warps the while-while kernel spawns
	// per SMX (48 in the paper; the DRS kernel's warp count comes from
	// its Config).
	AilaWarps int
	Aila      kernels.AilaConfig
	WhileIf   kernels.WhileIfConfig
	DRS       core.Config
	DMK       dmk.Config
	TBC       tbc.Config
}

// DefaultOptions returns the paper's configuration: Table 1 GPU,
// 48-warp Aila kernel with speculative traversal, default DRS.
func DefaultOptions() Options {
	return Options{
		Simt:      simt.DefaultConfig(),
		AilaWarps: 48,
		Aila:      kernels.AilaConfig{Speculative: true},
		DRS:       core.DefaultConfig(),
		DMK:       dmk.DefaultConfig(),
		TBC:       tbc.DefaultConfig(),
	}
}

// Result is a completed run.
type Result struct {
	Arch Arch
	GPU  *simt.GPUResult
	// Hits holds the committed hit for every input ray, in input order.
	Hits []geom.Hit
	// Rays is the number of rays traced.
	Rays int
	// Mrays is the simulated tracing rate in Mrays/s.
	Mrays float64
	// SIMDEff is the overall SIMD efficiency.
	SIMDEff float64
	// DRS aggregates the per-SMX DRS control stats (ArchDRS only).
	DRS core.Stats
	// DMKStats aggregates the per-SMX DMK stats (ArchDMK only).
	DMKStats dmk.Stats
	// TBCStats aggregates the per-SMX TBC stats (ArchTBC only).
	TBCStats tbc.Stats
}

// Run simulates tracing the given rays on the chosen architecture.
func Run(arch Arch, rays []geom.Ray, data *kernels.SceneData, opt Options) (*Result, error) {
	if len(rays) == 0 {
		return nil, fmt.Errorf("harness: empty ray stream")
	}
	cfg := opt.Simt
	switch arch {
	case ArchAila, ArchDMK, ArchTBC:
		if opt.AilaWarps > 0 {
			cfg.MaxWarpsPerSMX = opt.AilaWarps
		}
	case ArchDRS:
		if err := opt.DRS.Validate(); err != nil {
			return nil, err
		}
		cfg.MaxWarpsPerSMX = opt.DRS.Warps()
	}

	type smxOut struct {
		hits  []geom.Hit
		start int
		drs   *core.Control
		dmk   *dmk.Wrapper
		tbc   *tbc.Wrapper
	}
	outs := make([]*smxOut, cfg.NumSMX)

	factory := func(id int) (simt.SMXProgram, error) {
		start, end := simt.Partition(len(rays), cfg.NumSMX, id)
		pool := &kernels.Pool{Rays: rays[start:end]}
		out := &smxOut{start: start}
		outs[id] = out
		switch arch {
		case ArchAila:
			k := kernels.NewAila(data, pool, cfg.MaxWarpsPerSMX*cfg.WarpSize, opt.Aila)
			out.hits = k.Hits
			return simt.SMXProgram{Kernel: k}, nil
		case ArchDRS:
			slots := (opt.DRS.Rows() - 2) * cfg.WarpSize
			k := kernels.NewWhileIfConfigured(data, pool, slots, opt.WhileIf)
			out.hits = k.Hits
			ctrl, err := core.NewControl(opt.DRS, k)
			if err != nil {
				return simt.SMXProgram{}, err
			}
			out.drs = ctrl
			return simt.SMXProgram{
				Kernel: k,
				Hooks:  ctrl.Hooks(),
				Launch: ctrl.Launch,
			}, nil
		case ArchDMK:
			k := kernels.NewAila(data, pool, cfg.MaxWarpsPerSMX*cfg.WarpSize, kernels.AilaConfig{})
			out.hits = k.Hits
			w := dmk.New(opt.DMK, k, cfg.MaxWarpsPerSMX, cfg.WarpSize)
			out.dmk = w
			return simt.SMXProgram{Kernel: k, Hooks: w.Hooks()}, nil
		case ArchTBC:
			k := kernels.NewAila(data, pool, cfg.MaxWarpsPerSMX*cfg.WarpSize, kernels.AilaConfig{})
			out.hits = k.Hits
			w := tbc.New(opt.TBC, k, cfg.MaxWarpsPerSMX, cfg.WarpSize)
			out.tbc = w
			return simt.SMXProgram{Kernel: k, Hooks: w.Hooks()}, nil
		default:
			return simt.SMXProgram{}, fmt.Errorf("harness: unknown arch %d", arch)
		}
	}

	gpu, err := simt.RunGPU(cfg, factory)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Arch: arch,
		GPU:  gpu,
		Hits: make([]geom.Hit, len(rays)),
		Rays: len(rays),
	}
	for _, o := range outs {
		copy(res.Hits[o.start:], o.hits)
		if o.drs != nil {
			s := o.drs.Stats()
			res.DRS.Remaps += s.Remaps
			res.DRS.SwapsStarted += s.SwapsStarted
			res.DRS.SwapsCompleted += s.SwapsCompleted
			res.DRS.SwapCycleSum += s.SwapCycleSum
			res.DRS.IdealShuffles += s.IdealShuffles
		}
		if o.dmk != nil {
			res.DMKStats.Add(o.dmk.Stats())
		}
		if o.tbc != nil {
			res.TBCStats.Add(o.tbc.Stats())
		}
	}
	res.Mrays = gpu.Stats.MraysPerSec(int64(len(rays)), cfg.ClockMHz)
	res.SIMDEff = gpu.Stats.SIMDEfficiency(cfg.WarpSize)
	return res, nil
}
