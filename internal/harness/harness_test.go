package harness

import (
	"testing"

	"repro/internal/bvh"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/kernels"
	"repro/internal/render"
	"repro/internal/reorder"
	"repro/internal/scene"
	"repro/internal/tbc"
	"repro/internal/trace"
)

// testWorkload builds a small scene, its BVH, and a two-bounce ray
// stream captured from the renderer.
func testWorkload(t testing.TB, b scene.Benchmark, tris int) (*kernels.SceneData, *trace.Set, *bvh.BVH) {
	t.Helper()
	s := scene.Generate(b, tris)
	bv, err := bvh.Build(s.Tris, bvh.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cam := render.CameraFor(b, 48, 36)
	res, err := render.Render(s, bv, cam, render.Config{
		Width: 48, Height: 36, SamplesPerPixel: 1, MaxDepth: 4, CaptureTraces: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return kernels.NewSceneData(bv), res.Traces, bv
}

// smallOptions shrinks the device so tests run fast.
func smallOptions() Options {
	opt := DefaultOptions()
	opt.Simt.NumSMX = 2
	opt.Simt.MaxCycles = 1 << 24
	opt.AilaWarps = 8
	// Scale the DRS machine down to match the Aila kernel so the small
	// test workloads exercise both at comparable occupancy, and shrink
	// the TBC blocks with it.
	drsCfg := core.DefaultConfig()
	drsCfg.WarpsOverride = 8
	tbcCfg := tbc.DefaultConfig()
	tbcCfg.WarpsPerBlock = 4
	opt.PolicyOverrides = []reorder.Policy{core.NewPolicy(drsCfg), tbc.NewPolicy(tbcCfg)}
	return opt
}

// verifyHits checks the architecture's committed hits against the CPU
// reference traversal.
func verifyHits(t *testing.T, name string, rays []geom.Ray, hits []geom.Hit, bv *bvh.BVH) {
	t.Helper()
	bad := 0
	for i, r := range rays {
		want := bv.Intersect(r, nil)
		got := hits[i]
		if got.TriIndex != want.TriIndex {
			// Tolerate coincident-surface ties at equal t.
			if got.TriIndex >= 0 && want.TriIndex >= 0 && abs(got.T-want.T) < 1e-4 {
				continue
			}
			bad++
			if bad <= 3 {
				t.Errorf("%s ray %d: got tri %d (t=%v), want tri %d (t=%v)",
					name, i, got.TriIndex, got.T, want.TriIndex, want.T)
			}
		}
	}
	if bad > 0 {
		t.Fatalf("%s: %d/%d wrong hits", name, bad, len(rays))
	}
}

func abs(f float32) float32 {
	if f < 0 {
		return -f
	}
	return f
}

func TestAllArchitecturesMatchReference(t *testing.T) {
	data, traces, bv := testWorkload(t, scene.ConferenceRoom, 1200)
	rays := traces.Bounce(2).Rays // incoherent secondary rays
	if len(rays) < 500 {
		t.Fatalf("workload too small: %d rays", len(rays))
	}
	opt := smallOptions()
	for _, arch := range []Arch{ArchAila, ArchDRS, ArchDMK, ArchTBC} {
		res, err := Run(arch, rays, data, opt)
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		verifyHits(t, arch.String(), rays, res.Hits, bv)
		if res.Mrays <= 0 {
			t.Errorf("%v: nonpositive Mrays", arch)
		}
		if res.SIMDEff <= 0 || res.SIMDEff > 1 {
			t.Errorf("%v: efficiency out of range: %v", arch, res.SIMDEff)
		}
	}
}

func TestDRSBeatsAilaOnSecondaryRays(t *testing.T) {
	// DRS needs a steady-state workload (several pool refills per ray
	// slot) and a scene that does not fit in the L1 texture cache
	// before its shuffling pays off; render a denser trace over a
	// bigger scene than the other tests use.
	s := scene.Generate(scene.ConferenceRoom, 8000)
	bv, err := bvh.Build(s.Tris, bvh.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cam := render.CameraFor(scene.ConferenceRoom, 128, 96)
	res, err := render.Render(s, bv, cam, render.Config{
		Width: 128, Height: 96, SamplesPerPixel: 1, MaxDepth: 4, CaptureTraces: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	data := kernels.NewSceneData(bv)
	rays := res.Traces.Bounce(3).Rays
	// Paper-scale warp counts on a single SMX: the DRS depends on
	// abundant warps to hide both memory latency and rdctrl stalls
	// (§4.3), so the scaled-down machine of smallOptions is unfair here.
	opt := DefaultOptions()
	opt.Simt.NumSMX = 1
	opt.Simt.MaxCycles = 1 << 26
	aila, err := Run(ArchAila, rays, data, opt)
	if err != nil {
		t.Fatal(err)
	}
	drs, err := Run(ArchDRS, rays, data, opt)
	if err != nil {
		t.Fatal(err)
	}
	if drs.SIMDEff <= aila.SIMDEff {
		t.Errorf("DRS efficiency %.3f not above Aila %.3f", drs.SIMDEff, aila.SIMDEff)
	}
	if drs.Mrays <= aila.Mrays {
		t.Errorf("DRS %.1f Mrays not above Aila %.1f", drs.Mrays, aila.Mrays)
	}
	if drs.DRS.SwapsCompleted == 0 {
		t.Errorf("DRS completed no swaps on incoherent rays")
	}
}

func TestIdealDRSAtLeastAsFast(t *testing.T) {
	data, traces, _ := testWorkload(t, scene.FairyForest, 1200)
	rays := traces.Bounce(2).Rays
	opt := smallOptions()
	real, err := Run(ArchDRS, rays, data, opt)
	if err != nil {
		t.Fatal(err)
	}
	idealCfg := core.DefaultConfig()
	idealCfg.WarpsOverride = 8
	idealCfg.Ideal = true
	opt.Policy = core.NewPolicy(idealCfg)
	ideal, err := Run(ArchDRS, rays, data, opt)
	if err != nil {
		t.Fatal(err)
	}
	if ideal.DRS.IdealShuffles == 0 {
		t.Errorf("ideal mode performed no shuffles")
	}
	// Allow a little modelling noise, but ideal shuffling should not be
	// significantly slower than real shuffling.
	if ideal.Mrays < real.Mrays*0.9 {
		t.Errorf("ideal DRS %.1f Mrays much slower than real %.1f", ideal.Mrays, real.Mrays)
	}
}

func TestEmptyStreamRejected(t *testing.T) {
	data, _, _ := testWorkload(t, scene.ConferenceRoom, 800)
	if _, err := Run(ArchAila, nil, data, smallOptions()); err == nil {
		t.Errorf("empty stream accepted")
	}
}

func TestPrimaryRaysMoreEfficientThanSecondary(t *testing.T) {
	// The premise of Figure 2, on the simulated pipeline.
	data, traces, _ := testWorkload(t, scene.ConferenceRoom, 1500)
	opt := smallOptions()
	b1, err := Run(ArchAila, traces.Bounce(1).Rays, data, opt)
	if err != nil {
		t.Fatal(err)
	}
	b3, err := Run(ArchAila, traces.Bounce(3).Rays, data, opt)
	if err != nil {
		t.Fatal(err)
	}
	if b1.SIMDEff <= b3.SIMDEff {
		t.Errorf("primary efficiency %.3f not above bounce-3 %.3f", b1.SIMDEff, b3.SIMDEff)
	}
}

func TestDMKReportsSpawnOverhead(t *testing.T) {
	data, traces, _ := testWorkload(t, scene.ConferenceRoom, 1200)
	rays := traces.Bounce(2).Rays
	res, err := Run(ArchDMK, rays, data, smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.DMKStats.Respawns == 0 {
		t.Errorf("DMK made no respawns on incoherent rays")
	}
	bd := res.GPU.Stats.UtilizationBreakdown(32)
	if bd.SI <= 0 {
		t.Errorf("DMK reported no SI instructions")
	}
	if res.GPU.Stats.SpawnConflictCycles == 0 {
		t.Errorf("no spawn conflict cycles recorded")
	}
}

func TestTBCSyncsAndCompacts(t *testing.T) {
	data, traces, _ := testWorkload(t, scene.ConferenceRoom, 1200)
	rays := traces.Bounce(2).Rays
	res, err := Run(ArchTBC, rays, data, smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.TBCStats.Compactions == 0 || res.TBCStats.WarpsFormed == 0 {
		t.Errorf("TBC did not compact: %+v", res.TBCStats)
	}
	if res.GPU.Stats.BarrierStallCycles == 0 {
		t.Errorf("TBC recorded no barrier stalls")
	}
}

func TestArchString(t *testing.T) {
	names := map[Arch]string{ArchAila: "aila", ArchDRS: "drs", ArchDMK: "dmk", ArchTBC: "tbc"}
	for a, n := range names {
		if a.String() != n {
			t.Errorf("%d name = %q", a, a.String())
		}
	}
	if Arch(99).String() != "unknown" {
		t.Errorf("unknown arch name")
	}
}
