package harness

import (
	"bytes"
	"testing"

	"repro/internal/scene"
	"repro/internal/trace"
)

// Hits must be identical regardless of how rays are partitioned across
// SMXs (no loss, duplication, or misindexing at partition boundaries).
func TestPartitioningPreservesHits(t *testing.T) {
	data, traces, _ := testWorkload(t, scene.FairyForest, 1500)
	rays := traces.Bounce(2).Rays
	opt := smallOptions()

	opt.Simt.NumSMX = 1
	one, err := Run(ArchAila, rays, data, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Simt.NumSMX = 5
	five, err := Run(ArchAila, rays, data, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rays {
		if one.Hits[i].TriIndex != five.Hits[i].TriIndex {
			t.Fatalf("ray %d: 1-SMX hit %d, 5-SMX hit %d", i, one.Hits[i].TriIndex, five.Hits[i].TriIndex)
		}
	}
}

// A trace stream written to the binary format and read back must
// simulate to identical results — the tracegen/drsbench file exchange.
func TestTraceFileRoundTripSimulatesIdentically(t *testing.T) {
	data, traces, _ := testWorkload(t, scene.ConferenceRoom, 1200)
	stream := traces.Bounce(2)
	var buf bytes.Buffer
	if err := stream.Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	opt := smallOptions()
	direct, err := Run(ArchAila, stream.Rays, data, opt)
	if err != nil {
		t.Fatal(err)
	}
	fromFile, err := Run(ArchAila, loaded.Rays, data, opt)
	if err != nil {
		t.Fatal(err)
	}
	if direct.GPU.Stats.WarpInstrs != fromFile.GPU.Stats.WarpInstrs {
		t.Errorf("instruction counts differ: %d vs %d",
			direct.GPU.Stats.WarpInstrs, fromFile.GPU.Stats.WarpInstrs)
	}
	for i := range direct.Hits {
		if direct.Hits[i].TriIndex != fromFile.Hits[i].TriIndex {
			t.Fatalf("ray %d hits differ", i)
		}
	}
}

// Simulations must be exactly deterministic at any SMX count: the
// epoch-barrier engine drains L2 requests in fixed (smxID, issue-order)
// order at each epoch boundary, so cache state — and therefore cycle
// counts — no longer depends on goroutine scheduling.
func TestSimulationDeterministic(t *testing.T) {
	data, traces, _ := testWorkload(t, scene.CrytekSponza, 1500)
	rays := traces.Bounce(2).Rays
	opt := smallOptions()

	opt.Simt.NumSMX = 1
	var one *Result
	for i := 0; i < 3; i++ {
		res, err := Run(ArchDRS, rays, data, opt)
		if err != nil {
			t.Fatal(err)
		}
		if one == nil {
			one = res
			continue
		}
		if res.GPU.Stats.Cycles != one.GPU.Stats.Cycles ||
			res.GPU.Stats.WarpInstrs != one.GPU.Stats.WarpInstrs ||
			res.DRS.SwapsCompleted != one.DRS.SwapsCompleted {
			t.Fatalf("single-SMX run %d differs: cycles %d vs %d, instrs %d vs %d, swaps %d vs %d",
				i, res.GPU.Stats.Cycles, one.GPU.Stats.Cycles,
				res.GPU.Stats.WarpInstrs, one.GPU.Stats.WarpInstrs,
				res.DRS.SwapsCompleted, one.DRS.SwapsCompleted)
		}
	}

	opt.Simt.NumSMX = 4
	var ref *Result
	for i := 0; i < 3; i++ {
		res, err := Run(ArchDRS, rays, data, opt)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		for j := range rays {
			if res.Hits[j].TriIndex != ref.Hits[j].TriIndex {
				t.Fatalf("multi-SMX run %d: hit %d differs", i, j)
			}
		}
		if res.GPU.Stats != ref.GPU.Stats {
			t.Errorf("multi-SMX run %d not bit-identical: cycles %d vs %d, instrs %d vs %d",
				i, res.GPU.Stats.Cycles, ref.GPU.Stats.Cycles,
				res.GPU.Stats.WarpInstrs, ref.GPU.Stats.WarpInstrs)
		}
	}
}

// All four architectures on all four scenes: hits must match the CPU
// reference (the heaviest correctness sweep in the suite).
func TestAllScenesAllArchsCorrect(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := smallOptions()
	for _, b := range scene.Benchmarks {
		data, traces, bv := testWorkload(t, b, 1200)
		rays := traces.Bounce(2).Rays
		if len(rays) > 2500 {
			rays = rays[:2500]
		}
		for _, arch := range []Arch{ArchAila, ArchDRS, ArchDMK, ArchTBC} {
			res, err := Run(arch, rays, data, opt)
			if err != nil {
				t.Fatalf("%v/%v: %v", b, arch, err)
			}
			verifyHits(t, b.String()+"/"+arch.String(), rays, res.Hits, bv)
		}
	}
}

// Occlusion (any-hit) mode: Aila and DRS must agree with the reference
// occlusion query for every ray.
func TestAnyHitParityAcrossArchitectures(t *testing.T) {
	data, traces, bv := testWorkload(t, scene.ConferenceRoom, 1200)
	rays := traces.Bounce(2).Rays
	if len(rays) > 2000 {
		rays = rays[:2000]
	}
	opt := smallOptions()
	opt.Aila.AnyHit = true
	opt.WhileIf.AnyHit = true
	for _, arch := range []Arch{ArchAila, ArchDRS} {
		res, err := Run(arch, rays, data, opt)
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		for i, r := range rays {
			want := bv.IntersectAny(r, nil)
			got := res.Hits[i].TriIndex >= 0
			if got != want {
				t.Fatalf("%v ray %d: occluded=%v, want %v", arch, i, got, want)
			}
		}
	}
}
