package harness

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/reorder"
)

// TestValidateRejections is the table test for the up-front Options
// validation: every malformed configuration must fail with a typed
// *OptionsError naming the offending field, never a deep panic.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		arch   Arch
		mutate func(*Options)
		field  string
	}{
		{
			name: "zero aila warps", arch: ArchAila,
			mutate: func(o *Options) { o.AilaWarps = 0 },
			field:  "AilaWarps",
		},
		{
			name: "negative aila warps on dmk", arch: ArchDMK,
			mutate: func(o *Options) { o.AilaWarps = -7 },
			field:  "AilaWarps",
		},
		{
			name: "zero aila warps on tbc", arch: ArchTBC,
			mutate: func(o *Options) { o.AilaWarps = 0 },
			field:  "AilaWarps",
		},
		{
			name: "broken drs config", arch: ArchDRS,
			mutate: func(o *Options) {
				cfg := core.DefaultConfig()
				cfg.SwapBuffers = -1
				o.PolicyOverrides = []reorder.Policy{core.NewPolicy(cfg)}
			},
			field: "Policy",
		},
		{
			name: "pinned policy name mismatch", arch: ArchDMK,
			mutate: func(o *Options) { o.Policy = core.NewPolicy(core.DefaultConfig()) },
			field:  "Policy",
		},
		{
			name: "unknown architecture", arch: Arch(99),
			mutate: func(o *Options) {},
			field:  "Arch",
		},
		{
			name: "negative parallelism", arch: ArchAila,
			mutate: func(o *Options) { o.Parallelism = -1 },
			field:  "Parallelism",
		},
		{
			name: "absurd parallelism", arch: ArchAila,
			mutate: func(o *Options) { o.Parallelism = MaxParallelism + 1 },
			field:  "Parallelism",
		},
		{
			name: "negative series cap", arch: ArchAila,
			mutate: func(o *Options) { o.SeriesCap = -1 },
			field:  "SeriesCap",
		},
		{
			name: "epoch length below floor", arch: ArchAila,
			mutate: func(o *Options) { o.Simt.EpochCycles = -4 },
			field:  "Simt.EpochCycles",
		},
		{
			name: "broken device config", arch: ArchAila,
			mutate: func(o *Options) { o.Simt.NumSMX = 0 },
			field:  "Simt",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opt := DefaultOptions()
			tc.mutate(&opt)
			err := opt.Validate(tc.arch)
			if err == nil {
				t.Fatalf("Validate accepted a %s configuration", tc.name)
			}
			oe, ok := AsOptionsError(err)
			if !ok {
				t.Fatalf("want *OptionsError, got %T: %v", err, err)
			}
			if oe.Field != tc.field {
				t.Fatalf("field = %q, want %q (reason: %s)", oe.Field, tc.field, oe.Reason)
			}
		})
	}
}

// TestValidateAcceptsDefaults: the paper configuration must pass for
// every architecture and every registered policy.
func TestValidateAcceptsDefaults(t *testing.T) {
	for _, arch := range []Arch{ArchAila, ArchDRS, ArchDMK, ArchTBC} {
		if err := DefaultOptions().Validate(arch); err != nil {
			t.Fatalf("defaults rejected for %s: %v", arch, err)
		}
	}
	for _, name := range Policies().Names() {
		if err := DefaultOptions().ValidatePolicy(name); err != nil {
			t.Fatalf("defaults rejected for policy %s: %v", name, err)
		}
	}
}

// TestValidateUnknownPolicy: an unknown name must fail with the
// registry's typed error — the single place names are judged.
func TestValidateUnknownPolicy(t *testing.T) {
	err := DefaultOptions().ValidatePolicy("warp-drive")
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	var ue *reorder.UnknownPolicyError
	if !errors.As(err, &ue) {
		t.Fatalf("want *reorder.UnknownPolicyError, got %T: %v", err, err)
	}
	if ue.Name != "warp-drive" {
		t.Fatalf("error names %q", ue.Name)
	}
}

// TestRunRejectsBeforeBuilding: the validation fires inside Run itself,
// so a malformed request never reaches device construction.
func TestRunRejectsBeforeBuilding(t *testing.T) {
	opt := DefaultOptions()
	opt.AilaWarps = 0
	rays := []geom.Ray{{}}
	_, err := Run(ArchAila, rays, nil, opt)
	if err == nil {
		t.Fatal("Run accepted zero AilaWarps")
	}
	if _, ok := AsOptionsError(err); !ok {
		t.Fatalf("want *OptionsError from Run, got %T: %v", err, err)
	}
}
