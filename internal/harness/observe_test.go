package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/scene"
	"repro/internal/simt"
)

// gaugeColumns are series columns that sample instantaneous state; every
// other column is cumulative and must agree with the registry total at
// the final barrier.
func isGaugeColumn(name string) bool {
	return strings.HasSuffix(name, "/live_warps") || strings.HasSuffix(name, "/l2_queue")
}

// TestSeriesTotalsMatchRegistry is the acceptance check for the epoch
// sampler: the last sample of every cumulative time-series column must
// equal the end-of-run registry total for the same path, exactly. The
// engine samples after the barrier's L2 drain specifically to make this
// hold; a divergence means the sampler and the registry disagree about
// what happened, and neither can be trusted.
func TestSeriesTotalsMatchRegistry(t *testing.T) {
	data, traces, _ := testWorkload(t, scene.ConferenceRoom, 1200)
	rays := traces.Bounce(2).Rays[:400]
	opt := smallOptions()
	opt.Observe = true

	for _, arch := range []Arch{ArchAila, ArchDRS, ArchDMK, ArchTBC} {
		res, err := Run(arch, rays, data, opt)
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		if res.Series == nil || res.Series.Len() == 0 {
			t.Fatalf("%v: no epoch samples (engine %v)", arch, opt.Simt.Engine)
		}
		checked := 0
		for _, col := range res.Series.Columns() {
			if isGaugeColumn(col) {
				continue
			}
			last, ok := res.Series.Last(col)
			if !ok {
				t.Fatalf("%v: Last(%q) not ok on non-empty series", arch, col)
			}
			total, ok := res.Metrics.Get(col)
			if !ok {
				// Columns like smx0/sampled_exec mirror registry paths
				// one-to-one; a column with no registry twin is a wiring bug.
				t.Errorf("%v: series column %q has no registry entry", arch, col)
				continue
			}
			if last != total {
				t.Errorf("%v: %s: final sample %d != registry total %d", arch, col, last, total)
			}
			checked++
		}
		if checked == 0 {
			t.Fatalf("%v: no cumulative columns checked", arch)
		}
	}
}

// TestChromeTraceExport checks the trace exporter end to end: it must
// emit well-formed Chrome trace-event JSON with the per-SMX thread
// structure, slices, and counters Perfetto expects.
func TestChromeTraceExport(t *testing.T) {
	data, traces, _ := testWorkload(t, scene.ConferenceRoom, 1200)
	rays := traces.Bounce(2).Rays[:400]
	opt := smallOptions()
	opt.Observe = true

	res, err := Run(ArchDRS, rays, data, opt)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := res.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   *int64         `json:"ts"`
			Dur  *int64         `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	counts := map[string]int{}
	threads := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		counts[ev.Ph]++
		switch ev.Ph {
		case "X":
			threads[ev.Tid] = true
			if ev.Ts == nil || ev.Dur == nil || *ev.Dur <= 0 {
				t.Fatalf("slice %q missing ts/dur or nonpositive dur", ev.Name)
			}
			if _, ok := ev.Args["issued_instrs"]; !ok {
				t.Errorf("slice %q lacks issued_instrs arg", ev.Name)
			}
		case "C":
			if ev.Ts == nil || len(ev.Args) == 0 {
				t.Fatalf("counter %q missing ts or args", ev.Name)
			}
		}
	}
	if counts["M"] < res.Config.NumSMX+1 {
		t.Errorf("want >= %d metadata events (process + per-SMX threads), got %d", res.Config.NumSMX+1, counts["M"])
	}
	if counts["X"] == 0 || counts["C"] == 0 {
		t.Errorf("trace has no slices or no counters: %v", counts)
	}
	if len(threads) != res.Config.NumSMX {
		t.Errorf("slices cover %d threads, want one per SMX (%d)", len(threads), res.Config.NumSMX)
	}

	// The free engine records no epoch series: the exporter must refuse
	// with a pointed error, not emit an empty trace.
	freeOpt := opt
	freeOpt.Simt.Engine = simt.EngineFree
	freeRes, err := Run(ArchAila, rays, data, freeOpt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := freeRes.ChromeTrace(); err == nil {
		t.Error("ChromeTrace on the free engine should fail (no epoch samples)")
	}

	// And with Observe off there is no series at all.
	plain, err := Run(ArchAila, rays, data, smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.ChromeTrace(); err == nil {
		t.Error("ChromeTrace without Options.Observe should fail")
	}
}
