// Package cluster is the in-process multi-worker test harness behind
// the distributed-drsd chaos suite: N full drsd stacks (service +
// persistent artifact store + shard proxy), each on its own real TCP
// listener and store directory, driven by kill/restart primitives that
// model the failures the design claims to survive.
//
//   - Kill is a crash, not a shutdown: connections are cut mid-response,
//     in-flight jobs are force-canceled at their next epoch barrier, and
//     the store is closed so nothing else lands in it. Whatever the index
//     and object files held at that instant is what the restart sees.
//   - Restart rebinds the same address and reopens the same store
//     directory with a fresh service — the crash-recovery path of the
//     artifact index (torn-tail truncation, orphan sweep) runs for real.
//
// The cluster's determinism contract makes chaos assertions sharp:
// whatever subset of workers survives, a spec's bytes must equal the
// single-process golden, because results are a pure function of the
// spec and the store verifies digests on every read.
package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/service"
	"repro/internal/shard"
)

// Worker is one drsd stack inside the cluster.
type Worker struct {
	// URL is the worker's base URL; it survives kill/restart.
	URL string
	// Dir is the worker's persistent store directory.
	Dir string

	addr  string
	alive bool
	svc   *service.Service
	store *artifact.Store
	srv   *http.Server
	done  chan struct{}
}

// Cluster drives N workers sharing one rendezvous router.
type Cluster struct {
	tb      testing.TB
	cfg     service.Config
	router  *shard.Router
	workers []*Worker
}

// New starts an n-worker cluster. cfg seeds every worker's service
// config (Store is per-worker and must be left nil; Runner may be set
// for controlled tests, nil runs the real experiment engine). Each
// worker gets its own listener on a kernel-assigned port and its own
// store directory under a test temp dir.
func New(tb testing.TB, n int, cfg service.Config) *Cluster {
	tb.Helper()
	if cfg.Store != nil {
		tb.Fatal("cluster: cfg.Store is per-worker; leave it nil")
	}
	c := &Cluster{tb: tb, cfg: cfg}
	var urls []string
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tb.Fatalf("cluster: listen: %v", err)
		}
		listeners[i] = ln
		w := &Worker{
			addr: ln.Addr().String(),
			URL:  "http://" + ln.Addr().String(),
			Dir:  tb.TempDir(),
		}
		c.workers = append(c.workers, w)
		urls = append(urls, w.URL)
	}
	router, err := shard.NewRouter(urls)
	if err != nil {
		tb.Fatalf("cluster: router: %v", err)
	}
	c.router = router
	for i, w := range c.workers {
		c.start(w, listeners[i])
	}
	tb.Cleanup(c.KillAll)
	return c
}

// start boots (or reboots) a worker on ln: reopen the store, build a
// fresh service over it, wrap it in the shard proxy, serve.
func (c *Cluster) start(w *Worker, ln net.Listener) {
	c.tb.Helper()
	store, err := artifact.Open(artifact.Config{Dir: w.Dir})
	if err != nil {
		c.tb.Fatalf("cluster: %s: open store: %v", w.URL, err)
	}
	cfg := c.cfg
	cfg.Store = store
	svc := service.New(cfg)
	proxy, err := shard.Wrap(svc.Handler(), c.router, w.URL, nil)
	if err != nil {
		c.tb.Fatalf("cluster: %s: wrap: %v", w.URL, err)
	}
	w.store = store
	w.svc = svc
	w.srv = &http.Server{Handler: proxy}
	w.done = make(chan struct{})
	w.alive = true
	go func(srv *http.Server, done chan struct{}) {
		srv.Serve(ln)
		close(done)
	}(w.srv, w.done)
}

// Router returns the cluster's shard router (every client and worker
// computes placement from the same worker set).
func (c *Cluster) Router() *shard.Router { return c.router }

// Worker returns worker i.
func (c *Cluster) Worker(i int) *Worker { return c.workers[i] }

// Workers returns the worker count.
func (c *Cluster) Workers() int { return len(c.workers) }

// IndexOf resolves a worker URL to its index.
func (c *Cluster) IndexOf(url string) int {
	for i, w := range c.workers {
		if w.URL == url {
			return i
		}
	}
	c.tb.Fatalf("cluster: no worker %s", url)
	return -1
}

// Client returns a read-through shard client over the cluster (no
// local store).
func (c *Cluster) Client() *shard.Client {
	return &shard.Client{Router: c.router}
}

// Kill crashes worker i: sever every connection (clients blocked on
// ?wait=1 see a transport error mid-response), force-cancel in-flight
// jobs, close the store. The on-disk state is whatever the crash left.
func (c *Cluster) Kill(i int) {
	c.tb.Helper()
	w := c.workers[i]
	if !w.alive {
		return
	}
	w.alive = false
	w.srv.Close()
	<-w.done
	// Clients (shard.Client, http.Post in tests) pool keep-alive
	// connections to the dead worker; drop them so the next request
	// dials fresh instead of failing on a stale socket.
	if tr, ok := http.DefaultTransport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
	// Force-drain: an already-expired context makes Drain cancel every
	// in-flight job immediately — the crash analogue for goroutines that
	// share this process.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	w.svc.Drain(expired)
	w.store.Close()
}

// KillAll crashes every live worker (cleanup).
func (c *Cluster) KillAll() {
	for i := range c.workers {
		c.Kill(i)
	}
}

// Restart boots worker i again on the same address over the same store
// directory. The index replay, torn-tail truncation and orphan sweep
// run exactly as a restarted daemon's would.
func (c *Cluster) Restart(i int) {
	c.tb.Helper()
	w := c.workers[i]
	if w.alive {
		c.tb.Fatalf("cluster: restart of live worker %s", w.URL)
	}
	ln := c.rebind(w.addr)
	c.start(w, ln)
	if tr, ok := http.DefaultTransport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
}

// rebind listens on the worker's original address, retrying briefly —
// the kernel can lag releasing a just-closed listening socket.
func (c *Cluster) rebind(addr string) net.Listener {
	c.tb.Helper()
	var lastErr error
	for attempt := 0; attempt < 100; attempt++ {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln
		}
		lastErr = err
		time.Sleep(20 * time.Millisecond)
	}
	c.tb.Fatalf("cluster: rebinding %s: %v", addr, lastErr)
	return nil
}

// WaitState polls worker i's status endpoint until the job reaches
// state (or any terminal state), failing after timeout's worth of
// 5ms polls. It returns the state observed.
func (c *Cluster) WaitState(i int, id string, state service.State, timeout time.Duration) service.State {
	c.tb.Helper()
	w := c.workers[i]
	const step = 5 * time.Millisecond
	for n := int64(0); ; n++ {
		var st struct {
			State service.State `json:"state"`
		}
		resp, err := http.Get(w.URL + "/v1/jobs/" + id)
		if err == nil {
			if resp.StatusCode == http.StatusOK {
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr == nil {
					json.Unmarshal(body, &st)
				}
			} else {
				resp.Body.Close()
			}
		}
		if st.State == state || st.State.Terminal() {
			return st.State
		}
		if n > int64(timeout/step) {
			c.tb.Fatalf("cluster: job %s on %s stuck in %q waiting for %q", id[:8], w.URL, st.State, state)
		}
		time.Sleep(step)
	}
}

// Metric reads one metrics-registry value from worker i.
func (c *Cluster) Metric(i int, path string) int64 {
	c.tb.Helper()
	w := c.workers[i]
	snap := w.svc.Metrics()
	v, ok := snap.Get(path)
	if !ok {
		c.tb.Fatalf("cluster: %s has no metric %q", w.URL, path)
	}
	return v
}

// SumMetric sums a metric over every live worker — the cluster-wide
// counters the exactly-once assertions check.
func (c *Cluster) SumMetric(path string) int64 {
	c.tb.Helper()
	var sum int64
	for i, w := range c.workers {
		if w.alive {
			sum += c.Metric(i, path)
		}
	}
	return sum
}
