package cluster

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
)

func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

// The chaos specs are deliberately tiny (the smoke-test scale): real
// engine, real grids, but small enough that the whole suite runs
// under -race in CI.
const (
	fig10Spec = `{"kind":"fig10","scene":"conference","tris":500,"width":48,"height":36,"bounces":2,"cmp_bounces":1}`
	runSpec   = `{"kind":"run","scene":"conference","arch":"drs","bounce":1,"tris":500,"width":48,"height":36}`
)

func specID(t *testing.T, specJSON string) string {
	t.Helper()
	spec, err := service.DecodeSpec([]byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	return spec.ID()
}

// singleProcessGolden runs the spec on a plain single-process service
// (no store, no cluster) — the reference bytes every chaos outcome
// must reproduce exactly.
func singleProcessGolden(t *testing.T, specJSON string) []byte {
	t.Helper()
	s := service.New(service.Config{Workers: 2})
	spec, err := service.DecodeSpec([]byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	j, _, err := s.Submit(spec, true)
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if j.State() != service.StateDone {
		_, msg := j.Artifact()
		t.Fatalf("golden run failed: %s (%s)", j.State(), msg)
	}
	golden, _ := j.Artifact()
	ctx, cancel := contextWithTimeout(10 * time.Second)
	defer cancel()
	s.Drain(ctx)
	return golden
}

func postJob(t *testing.T, url, specJSON string, wait bool) (int, []byte) {
	t.Helper()
	u := url + "/v1/jobs"
	if wait {
		u += "?wait=1"
	}
	resp, err := http.Post(u, "application/json", bytes.NewReader([]byte(specJSON)))
	if err != nil {
		return 0, nil // transport error: the chaos suite treats it as such
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil
	}
	return resp.StatusCode, body
}

// TestCrashMidGridFailsOverByteIdentical: a worker is killed while
// building a fig10 grid; the cluster still produces bytes identical to
// the single-process golden, and after the crashed worker restarts the
// artifact is served from the surviving stores.
func TestCrashMidGridFailsOverByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite runs the real engine")
	}
	golden := singleProcessGolden(t, fig10Spec)
	cl := New(t, 3, service.Config{Workers: 2})
	id := specID(t, fig10Spec)
	ownerIdx := cl.IndexOf(cl.Router().Owner(id))

	// Start the build on its owner (detached, so the kill hits a job in
	// flight, not a waiting client) and crash the owner once the grid
	// is underway.
	code, _ := postJob(t, cl.Worker(ownerIdx).URL, fig10Spec, false)
	if code != http.StatusAccepted {
		t.Fatalf("detached submit: HTTP %d", code)
	}
	cl.WaitState(ownerIdx, id, service.StateRunning, 30*time.Second)
	cl.Kill(ownerIdx)

	// A read-through client now resolves the same spec: the dead
	// primary is skipped in failover order and a survivor recomputes.
	ctx, cancel := contextWithTimeout(2 * time.Minute)
	defer cancel()
	res, err := cl.Client().Submit(ctx, []byte(fig10Spec))
	if err != nil {
		t.Fatalf("submit after crash: %v", err)
	}
	if res.Status != http.StatusOK {
		t.Fatalf("submit after crash: HTTP %d: %s", res.Status, res.Body)
	}
	if !bytes.Equal(res.Body, golden) {
		t.Fatalf("failover result diverges from single-process golden (%d vs %d bytes)", len(res.Body), len(golden))
	}

	// Restart the crashed worker: its index replays whatever the crash
	// left (possibly a torn tail), and the cluster still serves the
	// artifact — from a surviving store, in owner order.
	cl.Restart(ownerIdx)
	res2, ok, err := cl.Client().FetchArtifact(ctx, id)
	if err != nil || !ok {
		t.Fatalf("fetch after restart: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(res2.Body, golden) {
		t.Fatal("post-restart artifact diverges from golden")
	}
	// The restarted worker itself answers the spec byte-identically
	// (store hit or recompute — indistinguishable by contract).
	code, body := postJob(t, cl.Worker(ownerIdx).URL, fig10Spec, true)
	if code != http.StatusOK || !bytes.Equal(body, golden) {
		t.Fatalf("restarted owner: HTTP %d, bytes match %v", code, bytes.Equal(body, golden))
	}
}

// TestBitFlipDetectedOnReadAndHealed: flipping one bit in a stored
// artifact must never reach a client — the read detects the digest
// mismatch, drops the entry, and the next submission recomputes
// byte-identical output and re-stores it.
func TestBitFlipDetectedOnReadAndHealed(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite runs the real engine")
	}
	cl := New(t, 3, service.Config{Workers: 2})
	id := specID(t, runSpec)
	ownerIdx := cl.IndexOf(cl.Router().Owner(id))

	ctx, cancel := contextWithTimeout(2 * time.Minute)
	defer cancel()
	first, err := cl.Client().Submit(ctx, []byte(runSpec))
	if err != nil || first.Status != http.StatusOK {
		t.Fatalf("seed submit: %v (HTTP %d)", err, first.Status)
	}

	// Crash the owner, corrupt the stored body behind its back, and
	// restart it — the realistic shape of silent disk corruption: the
	// process that returns has no in-memory copy to fall back on.
	cl.Kill(ownerIdx)
	path := filepath.Join(cl.Worker(ownerIdx).Dir, "objects", id[:2], id)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading stored artifact: %v", err)
	}
	raw[len(raw)/3] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	cl.Restart(ownerIdx)

	// The corrupt copy is never served: the fetch comes back a clean
	// miss (owner dropped the entry; nobody else stored it).
	if res, ok, err := cl.Client().FetchArtifact(ctx, id); err != nil {
		t.Fatalf("fetch over corrupt store: %v", err)
	} else if ok && bytes.Equal(res.Body, raw) {
		t.Fatal("corrupted bytes were served")
	} else if ok && !bytes.Equal(res.Body, first.Body) {
		t.Fatal("fetch returned bytes that match neither original nor corruption")
	}
	if got := cl.Metric(ownerIdx, "store/corrupt"); got != 1 {
		t.Fatalf("owner store/corrupt = %d, want 1", got)
	}

	// Resubmission heals: recompute, byte-identical, re-stored.
	second, err := cl.Client().Submit(ctx, []byte(runSpec))
	if err != nil || second.Status != http.StatusOK {
		t.Fatalf("healing submit: %v (HTTP %d)", err, second.Status)
	}
	if !bytes.Equal(second.Body, first.Body) {
		t.Fatal("recomputed artifact diverges from the original")
	}
	res, ok, err := cl.Client().FetchArtifact(ctx, id)
	if err != nil || !ok || !bytes.Equal(res.Body, first.Body) {
		t.Fatalf("store after healing: ok=%v err=%v", ok, err)
	}
}

// TestRacedIdenticalSubmissionsBuildOnce: identical specs racing into
// every worker at once collapse — via proxy routing to the owner and
// the owner's singleflight — into exactly one execution cluster-wide,
// with byte-identical responses for every submitter.
func TestRacedIdenticalSubmissionsBuildOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite runs the real engine")
	}
	cl := New(t, 3, service.Config{Workers: 2})

	const n = 8
	codes := make([]int, n)
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Spread the race across every entry point in the cluster.
			codes[i], bodies[i] = postJob(t, cl.Worker(i%cl.Workers()).URL, fig10Spec, true)
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("submitter %d: HTTP %d: %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("submitter %d saw different bytes than submitter 0", i)
		}
	}
	if started := cl.SumMetric("service/jobs_started"); started != 1 {
		t.Fatalf("cluster-wide executions = %d for %d raced submissions, want exactly 1", started, n)
	}
	if hits := cl.SumMetric("service/artifact_hits"); hits != 0 {
		t.Fatalf("artifact_hits = %d during the race, want 0 (singleflight, not store, must collapse it)", hits)
	}
}

// TestRestartServesStoredArtifactWithoutRecompute: a worker that
// crashed *after* committing an artifact serves it from its store on
// restart — zero executions, identical bytes.
func TestRestartServesStoredArtifactWithoutRecompute(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite runs the real engine")
	}
	cl := New(t, 2, service.Config{Workers: 1})
	id := specID(t, runSpec)
	ownerIdx := cl.IndexOf(cl.Router().Owner(id))

	ctx, cancel := contextWithTimeout(2 * time.Minute)
	defer cancel()
	first, err := cl.Client().Submit(ctx, []byte(runSpec))
	if err != nil || first.Status != http.StatusOK {
		t.Fatalf("seed submit: %v", err)
	}

	cl.Kill(ownerIdx)
	cl.Restart(ownerIdx)

	code, body := postJob(t, cl.Worker(ownerIdx).URL, runSpec, true)
	if code != http.StatusOK || !bytes.Equal(body, first.Body) {
		t.Fatalf("restarted owner resubmission: HTTP %d, bytes match %v", code, bytes.Equal(body, first.Body))
	}
	if started := cl.Metric(ownerIdx, "service/jobs_started"); started != 0 {
		t.Fatalf("restarted owner executed %d jobs, want 0 (store hit)", started)
	}
	if hits := cl.Metric(ownerIdx, "service/artifact_hits"); hits != 1 {
		t.Fatalf("restarted owner artifact_hits = %d, want 1", hits)
	}

	// The result endpoint also serves the stored artifact even though
	// the in-memory job registry of the process "restarted".
	resp, err := http.Get(cl.Worker(ownerIdx).URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got, first.Body) {
		t.Fatalf("result after restart: HTTP %d", resp.StatusCode)
	}
}
