package regfile

import (
	"testing"

	"repro/internal/statcheck"
)

// TestCollectOperandsArbitration drives the operand collector through
// the bank-conflict edge cases: every operand in one bank, operands
// wrapping around the bank stripe (broadcast-style repeated banks), and
// degenerate operand counts.
func TestCollectOperandsArbitration(t *testing.T) {
	cases := []struct {
		name          string
		banks         int
		row, base     int
		nSrc          int
		wantConflicts int
		wantReads     int64
	}{
		{name: "no-sources", banks: 32, nSrc: 0, wantConflicts: 0, wantReads: 0},
		{name: "single-source", banks: 32, nSrc: 1, wantConflicts: 0, wantReads: 1},
		{name: "adjacent-spread", banks: 32, base: 4, nSrc: 4, wantConflicts: 0, wantReads: 4},
		// One bank serves every operand: n-1 extra cycles.
		{name: "all-same-bank", banks: 1, nSrc: 4, wantConflicts: 3, wantReads: 4},
		// The stripe wraps: 8 operands over 4 banks hit each bank twice
		// (broadcast of the bank pattern), costing one retry per reuse.
		{name: "stripe-wrap", banks: 4, nSrc: 8, wantConflicts: 4, wantReads: 8},
		// Row stagger shifts which banks are used but not the conflict
		// count: the stripe is a rotation.
		{name: "stripe-wrap-staggered", banks: 4, row: 3, nSrc: 8, wantConflicts: 4, wantReads: 8},
		// Max operands the verifier admits (progcheck maxSrcOps = 8) on
		// the full-width file: all distinct banks.
		{name: "max-src-ops", banks: 32, nSrc: 8, wantConflicts: 0, wantReads: 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.NumBanks = tc.banks
			f := New(cfg)
			got := f.CollectOperands(1, tc.row, tc.base, tc.nSrc)
			if got != tc.wantConflicts {
				t.Errorf("conflicts = %d, want %d", got, tc.wantConflicts)
			}
			st := f.Stats()
			if st.OperandReads != tc.wantReads {
				t.Errorf("operand reads = %d, want %d", st.OperandReads, tc.wantReads)
			}
			if st.OperandWrites != 1 {
				t.Errorf("operand writes = %d, want 1 (result writeback)", st.OperandWrites)
			}
			if st.BankConflictCycles != int64(tc.wantConflicts) {
				t.Errorf("conflict cycles = %d, want %d", st.BankConflictCycles, tc.wantConflicts)
			}
		})
	}
}

// TestShuffleVsOperandContention pins the arbitration between the swap
// engine and instruction operands in both orders, including the
// same-source-and-destination-bank degenerate transfer.
func TestShuffleVsOperandContention(t *testing.T) {
	t.Run("operands-then-shuffle", func(t *testing.T) {
		f := New(DefaultConfig())
		f.CollectOperands(2, 0, 0, 3) // banks 0..2 busy at cycle 2
		if f.TryShuffleTransfer(2, 0, 5, 1) {
			t.Error("transfer into a busy source bank succeeded")
		}
		if f.Stats().ShuffleRetryCycles != 1 {
			t.Errorf("retry cycles = %d, want 1", f.Stats().ShuffleRetryCycles)
		}
		// A transfer whose two banks avoid the operands proceeds in the
		// same cycle.
		if !f.TryShuffleTransfer(2, 10, 20, 0) {
			t.Error("transfer on free banks was blocked")
		}
	})
	t.Run("shuffle-then-operands", func(t *testing.T) {
		f := New(DefaultConfig())
		if !f.TryShuffleTransfer(2, 0, 1, 0) { // banks 0 and 1 busy
			t.Fatal("first transfer failed")
		}
		// Operands are not stalled by shuffle traffic in this model (the
		// collector has priority); they still count their own conflicts
		// only.
		if c := f.CollectOperands(2, 0, 0, 3); c != 0 {
			t.Errorf("operand conflicts = %d, want 0 (conflicts are intra-instruction)", c)
		}
		// But a second transfer now sees both reservations.
		if f.TryShuffleTransfer(2, 2, 3, 0) {
			t.Error("transfer overlapping operand banks succeeded")
		}
	})
	t.Run("same-bank-transfer", func(t *testing.T) {
		// Source and destination rows mapping reg to the same bank: the
		// transfer needs that single bank once and succeeds.
		cfg := DefaultConfig()
		cfg.NumBanks = 4
		f := New(cfg)
		if !f.TryShuffleTransfer(1, 0, 4, 2) { // rows 0 and 4 mod 4 = same bank
			t.Error("same-bank transfer failed on an idle file")
		}
		st := f.Stats()
		if st.ShuffleReads != 1 || st.ShuffleWrites != 1 {
			t.Errorf("shuffle accesses = %+v, want 1 read + 1 write", st)
		}
	})
}

// TestStatsAddCoverage pins that regfile.Stats.Add merges every numeric
// field — the device totals are folded with it, so a dropped field
// silently zeroes a reported counter.
func TestStatsAddCoverage(t *testing.T) {
	if err := statcheck.AddCovers(Stats{}); err != nil {
		t.Error(err)
	}
}
