package regfile

import "testing"

func TestConfigSize(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.SizeKB() != 256 {
		t.Errorf("GTX780 RF size = %dKB, want 256", cfg.SizeKB())
	}
}

func TestNewValidatesBanks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for 0 banks")
		}
	}()
	New(Config{NumBanks: 0})
}

func TestCollectOperandsCountsAccesses(t *testing.T) {
	f := New(DefaultConfig())
	f.CollectOperands(1, 0, 4, 3)
	st := f.Stats()
	if st.OperandReads != 3 || st.OperandWrites != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCollectOperandsNoConflictAdjacentRegs(t *testing.T) {
	f := New(DefaultConfig())
	// Three adjacent registers land in three different banks.
	if c := f.CollectOperands(1, 0, 0, 3); c != 0 {
		t.Errorf("adjacent regs conflicted: %d", c)
	}
}

func TestCollectOperandsConflictSameBank(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumBanks = 2
	f := New(cfg)
	// With 2 banks, regs 0 and 2 share bank 0: one conflict.
	if c := f.CollectOperands(1, 0, 0, 3); c != 1 {
		t.Errorf("conflicts = %d, want 1", c)
	}
	if f.Stats().BankConflictCycles != 1 {
		t.Errorf("conflict cycles = %d", f.Stats().BankConflictCycles)
	}
}

func TestRowStaggerChangesBanks(t *testing.T) {
	f := New(DefaultConfig())
	if f.bankOf(0, 5) == f.bankOf(1, 5) {
		t.Errorf("rows not staggered across banks")
	}
}

func TestShuffleTransferBlockedByOperands(t *testing.T) {
	cfg := DefaultConfig()
	f := New(cfg)
	// Instruction occupies banks for reg 0..2 on row 0 at cycle 5.
	f.CollectOperands(5, 0, 0, 3)
	// A transfer of reg 0 between rows 0 and 7 needs bank(0,0) which is busy.
	if f.TryShuffleTransfer(5, 0, 7, 0) {
		t.Errorf("transfer should be blocked at cycle 5")
	}
	if f.Stats().ShuffleRetryCycles != 1 {
		t.Errorf("retry cycles = %d", f.Stats().ShuffleRetryCycles)
	}
	// Next cycle the banks are free.
	if !f.TryShuffleTransfer(6, 0, 7, 0) {
		t.Errorf("transfer should succeed at cycle 6")
	}
	st := f.Stats()
	if st.ShuffleReads != 1 || st.ShuffleWrites != 1 {
		t.Errorf("shuffle access counts = %+v", st)
	}
}

func TestShuffleTransfersConflictWithEachOther(t *testing.T) {
	f := New(DefaultConfig())
	if !f.TryShuffleTransfer(3, 0, 1, 0) {
		t.Fatalf("first transfer failed")
	}
	// Same source bank (row 0, reg 0) again in the same cycle: blocked.
	if f.TryShuffleTransfer(3, 0, 2, 0) {
		t.Errorf("conflicting transfer succeeded")
	}
}

func TestAdvanceReleasesReservations(t *testing.T) {
	f := New(DefaultConfig())
	f.CollectOperands(1, 0, 0, 3)
	f.Advance(100)
	if !f.TryShuffleTransfer(100, 0, 1, 0) {
		t.Errorf("reservation persisted after Advance")
	}
	// Advance backwards is a no-op.
	f.Advance(50)
	if f.current != 100 {
		t.Errorf("Advance moved backwards: %d", f.current)
	}
}

func TestShuffleShare(t *testing.T) {
	f := New(DefaultConfig())
	for i := int64(0); i < 10; i++ {
		f.CollectOperands(i, 0, 0, 3) // 4 accesses each
	}
	for i := int64(10); i < 15; i++ {
		if !f.TryShuffleTransfer(i, 0, 1, 0) { // 2 accesses each
			t.Fatalf("transfer failed at %d", i)
		}
	}
	share := f.Stats().ShuffleShare()
	want := 10.0 / 50.0
	if share < want-1e-9 || share > want+1e-9 {
		t.Errorf("shuffle share = %v, want %v", share, want)
	}
	var empty Stats
	if empty.ShuffleShare() != 0 {
		t.Errorf("empty share nonzero")
	}
}
