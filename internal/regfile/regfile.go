// Package regfile models the per-SMX banked register file and operand
// collector of a Kepler-class GPU. Current GPU register files are built
// from single-ported SRAM banks; an operand collector buffers source
// operands and arbitrates bank accesses. The model tracks two things
// the experiments need:
//
//   - access counts, split between regular instruction operands and DRS
//     ray-shuffling traffic (§4.4 reports shuffling at 7.36% of accesses
//     for primary rays and 18.79% for secondary rays), and
//   - per-cycle bank occupancy, so the DRS swap engine's register moves
//     contend with instruction operands the way the paper describes
//     (swap time is "affected by the bank conflicts of a register file").
package regfile

import (
	"fmt"

	"repro/internal/metrics"
)

// Config holds register file parameters.
type Config struct {
	NumBanks     int // single-ported SRAM banks
	RegsPerSMX   int // total 32-bit registers per SMX (Table 1: 65536)
	WarpSize     int
	BytesPerSMXK int // derived size in KB
}

// DefaultConfig returns the GTX780 register file parameters: 65536
// registers per SMX (256 KB) across 32 banks.
func DefaultConfig() Config {
	return Config{NumBanks: 32, RegsPerSMX: 65536, WarpSize: 32}
}

// SizeKB returns the register file capacity in KB (4 bytes/register).
func (c Config) SizeKB() int { return c.RegsPerSMX * 4 / 1024 }

// Stats counts register file activity.
type Stats struct {
	// OperandReads/Writes are accesses made by instruction execution.
	OperandReads  int64
	OperandWrites int64
	// ShuffleReads/Writes are accesses made by the DRS swap engine.
	ShuffleReads  int64
	ShuffleWrites int64
	// BankConflictCycles counts extra cycles lost to intra-instruction
	// bank conflicts in the operand collector.
	BankConflictCycles int64
	// ShuffleRetryCycles counts swap-engine transfers deferred because
	// the target bank was busy with instruction operands.
	ShuffleRetryCycles int64
}

// Add merges o into s. Every numeric field must be merged here: the
// device-level register file counters are produced by folding the
// per-SMX stats with this method, so a field missed by Add silently
// vanishes from the reports (statcheck.AddCovers guards against that).
func (s *Stats) Add(o Stats) {
	s.OperandReads += o.OperandReads
	s.OperandWrites += o.OperandWrites
	s.ShuffleReads += o.ShuffleReads
	s.ShuffleWrites += o.ShuffleWrites
	s.BankConflictCycles += o.BankConflictCycles
	s.ShuffleRetryCycles += o.ShuffleRetryCycles
}

// TotalAccesses returns all reads and writes.
func (s Stats) TotalAccesses() int64 {
	return s.OperandReads + s.OperandWrites + s.ShuffleReads + s.ShuffleWrites
}

// ShuffleShare returns the fraction of accesses caused by shuffling.
func (s Stats) ShuffleShare() float64 {
	t := s.TotalAccesses()
	if t == 0 {
		return 0
	}
	return float64(s.ShuffleReads+s.ShuffleWrites) / float64(t)
}

// ringSize bounds how far ahead bank reservations are tracked.
const ringSize = 16

// File is the per-SMX register file model. It is not safe for
// concurrent use; each SMX goroutine owns one.
type File struct {
	cfg   Config
	stats Stats
	// busy is a ring of per-cycle bank occupancy bitmasks (bit i =
	// bank i busy). Supports up to 64 banks.
	busy    [ringSize]uint64
	current int64 // cycle corresponding to ring slot current%ringSize
}

// New creates a register file model.
func New(cfg Config) *File {
	if cfg.NumBanks <= 0 || cfg.NumBanks > 64 {
		panic(fmt.Sprintf("regfile: unsupported bank count %d", cfg.NumBanks))
	}
	if cfg.WarpSize <= 0 {
		cfg.WarpSize = 32
	}
	return &File{cfg: cfg}
}

// Config returns the file's configuration.
func (f *File) Config() Config { return f.cfg }

// Stats returns a snapshot of the counters.
func (f *File) Stats() Stats { return f.stats }

// RegisterMetrics registers the register file's counters under prefix
// ("smx3/rf") in the unified registry. The probes read the live fields,
// so registration costs nothing on the access paths.
func (f *File) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.RegisterStruct(prefix, &f.stats)
}

// Advance moves the model's notion of "now" to cycle c, releasing
// reservations of past cycles.
func (f *File) Advance(c int64) {
	if c <= f.current {
		return
	}
	for f.current < c {
		f.current++
		f.busy[f.current%ringSize] = 0
	}
}

// bankOf maps a (physical row, register index) pair to a bank. GPU
// register files stripe a warp's registers across banks; row staggering
// spreads different warps' same-numbered registers over different banks.
func (f *File) bankOf(row, reg int) int {
	return (reg + row) % f.cfg.NumBanks
}

// CollectOperands accounts for the operand reads and result write of
// one warp instruction executing on physical row `row` with nSrc source
// operands. It returns the extra cycles lost to bank conflicts among
// the sources (single-ported banks serve one operand per cycle) and
// reserves the banks for the current cycle.
func (f *File) CollectOperands(now int64, row, baseReg, nSrc int) int {
	f.Advance(now)
	slot := &f.busy[now%ringSize]
	conflicts := 0
	var used uint64
	for i := 0; i < nSrc; i++ {
		b := uint64(1) << uint(f.bankOf(row, baseReg+i))
		if used&b != 0 {
			conflicts++
		}
		used |= b
		f.stats.OperandReads++
	}
	f.stats.OperandWrites++
	*slot |= used
	f.stats.BankConflictCycles += int64(conflicts)
	return conflicts
}

// TryShuffleTransfer attempts one swap-engine register transfer (one
// variable of one ray) at cycle `now`: a read from (srcRow, reg) and a
// write to (dstRow, reg). It fails if either bank is already busy this
// cycle with instruction operands or another transfer. On success the
// banks are reserved and the access is counted.
func (f *File) TryShuffleTransfer(now int64, srcRow, dstRow, reg int) bool {
	f.Advance(now)
	slot := &f.busy[now%ringSize]
	sb := uint64(1) << uint(f.bankOf(srcRow, reg))
	db := uint64(1) << uint(f.bankOf(dstRow, reg))
	if *slot&(sb|db) != 0 {
		f.stats.ShuffleRetryCycles++
		return false
	}
	*slot |= sb | db
	f.stats.ShuffleReads++
	f.stats.ShuffleWrites++
	return true
}
