package memsys

import (
	"math/rand"
	"testing"
)

// smallL2Config returns a tiny L2 so modest request streams cause real
// evictions.
func smallL2Config() Config {
	cfg := DefaultConfig()
	cfg.L2KB = 16
	cfg.L2Assoc = 2
	return cfg
}

// genStreams builds per-SMX request streams sliced into epochs:
// streams[smx][epoch] is the ordered address list that SMX issues in
// that epoch. Addresses are drawn from a footprint a few times the L2
// so hit/miss decisions depend on LRU and eviction history.
func genStreams(rnd *rand.Rand, smxs, epochs, perEpoch int, cfg Config) [][][]uint64 {
	footprint := int64(cfg.L2KB) * 1024 * 4
	streams := make([][][]uint64, smxs)
	for s := range streams {
		streams[s] = make([][]uint64, epochs)
		for e := range streams[s] {
			reqs := make([]uint64, rnd.Intn(perEpoch+1))
			for i := range reqs {
				reqs[i] = uint64(rnd.Int63n(footprint)) &^ uint64(cfg.LineBytes-1)
			}
			streams[s][e] = reqs
		}
	}
	return streams
}

// drainDecisions runs the full stream through an OrderedL2, one Drain
// per epoch, enqueueing the SMX queues in the given per-epoch SMX
// visit order (which simulates goroutine scheduling: who fills their
// port first). It returns each request's miss decision keyed by
// (smx, epoch, index) — which must not depend on the visit order.
func drainDecisions(cfg Config, streams [][][]uint64, order func(epoch int) []int) map[[3]int]bool {
	smxs := len(streams)
	o := NewOrderedL2(cfg, smxs)
	dec := make(map[[3]int]bool)
	epochs := len(streams[0])
	for e := 0; e < epochs; e++ {
		for _, s := range order(e) {
			p := o.Port(s)
			for _, addr := range streams[s][e] {
				p.enqueue(addr)
			}
		}
		o.Drain()
		for s := 0; s < smxs; s++ {
			p := o.Port(s)
			for i := 0; i < p.Pending(); i++ {
				dec[[3]int{s, e, i}] = p.reqs[i].miss
			}
			p.Reset()
		}
	}
	return dec
}

// Property: the enqueue interleaving across SMXs within an epoch (the
// part goroutine scheduling controls) must not change any per-request
// hit/miss decision — the barrier drain serializes every epoch into
// the fixed (smxID, issue-order) order.
func TestOrderedDrainScheduleIndependent(t *testing.T) {
	cfg := smallL2Config()
	rnd := rand.New(rand.NewSource(42))
	streams := genStreams(rnd, 5, 20, 40, cfg)

	identity := func(int) []int { return []int{0, 1, 2, 3, 4} }
	ref := drainDecisions(cfg, streams, identity)

	for trial := 0; trial < 10; trial++ {
		perm := func(int) []int {
			p := rnd.Perm(5)
			return p
		}
		got := drainDecisions(cfg, streams, perm)
		if len(got) != len(ref) {
			t.Fatalf("trial %d: %d decisions, want %d", trial, len(got), len(ref))
		}
		for k, miss := range ref {
			if got[k] != miss {
				t.Fatalf("trial %d: request smx=%d epoch=%d idx=%d decided miss=%v, want %v",
					trial, k[0], k[1], k[2], got[k], miss)
			}
		}
	}
}

// Property: the ordered drain is equivalent to a sequential replay of
// the same requests in canonical (epoch, smxID, issue-order) order
// against a plain cache — the drain adds concurrency, not semantics.
func TestOrderedDrainMatchesSequentialReplay(t *testing.T) {
	cfg := smallL2Config()
	rnd := rand.New(rand.NewSource(7))
	streams := genStreams(rnd, 4, 15, 30, cfg)

	ref := drainDecisions(cfg, streams, func(int) []int { return []int{0, 1, 2, 3} })

	seq := newCache(cfg.L2KB, cfg.L2Assoc, cfg.LineBytes)
	for e := 0; e < len(streams[0]); e++ {
		for s := range streams {
			for i, addr := range streams[s][e] {
				miss := !seq.access(addr)
				if ref[[3]int{s, e, i}] != miss {
					t.Fatalf("request smx=%d epoch=%d idx=%d: drain miss=%v, sequential replay miss=%v",
						s, e, i, ref[[3]int{s, e, i}], miss)
				}
			}
		}
	}
}

// The drain must also leave deterministic aggregate stats, and ports
// must report pending counts and reset correctly.
func TestOrderedL2PortLifecycle(t *testing.T) {
	cfg := smallL2Config()
	o := NewOrderedL2(cfg, 2)
	if o.NumPorts() != 2 {
		t.Fatalf("NumPorts = %d, want 2", o.NumPorts())
	}
	p := o.Port(1)
	first := p.enqueue(0x0)
	p.enqueue(0x80)
	p.enqueue(0x0)
	if p.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", p.Pending())
	}
	o.Drain()
	// Cold cache: first two accesses miss, the repeat of line 0 hits.
	if !p.AnyMissed(first, 2) {
		t.Error("cold accesses did not miss")
	}
	if p.AnyMissed(first+2, 1) {
		t.Error("repeated line reported as missed")
	}
	st := o.Stats()
	if st.Accesses != 3 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 3 accesses / 2 misses", st)
	}
	if o.Drains() != 1 {
		t.Errorf("drains = %d, want 1", o.Drains())
	}
	p.Reset()
	if p.Pending() != 0 {
		t.Errorf("pending after reset = %d", p.Pending())
	}
}
