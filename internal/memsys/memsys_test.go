package memsys

import (
	"math/rand"
	"testing"
)

func newTestMem() (*SMXMem, *L2) {
	cfg := DefaultConfig()
	l2 := NewL2(cfg)
	return NewSMXMem(cfg, l2), l2
}

func TestColdMissThenHit(t *testing.T) {
	m, _ := newTestMem()
	lat1 := m.AccessLine(Tex, 0x1000)
	lat2 := m.AccessLine(Tex, 0x1000)
	if lat1 <= lat2 {
		t.Errorf("cold access (%d) should be slower than warm (%d)", lat1, lat2)
	}
	if lat2 != DefaultConfig().L1HitLat {
		t.Errorf("warm latency = %d, want L1 hit %d", lat2, DefaultConfig().L1HitLat)
	}
}

func TestSameLineIsHit(t *testing.T) {
	m, _ := newTestMem()
	m.AccessLine(Data, 0x2000)
	if lat := m.AccessLine(Data, 0x2000+64); lat != DefaultConfig().L1HitLat {
		t.Errorf("same-line access missed: %d", lat)
	}
}

func TestSpacesAreSeparateL1s(t *testing.T) {
	m, _ := newTestMem()
	m.AccessLine(Tex, 0x3000)
	// Data access to the same address must miss L1D but hit the shared L2.
	lat := m.AccessLine(Data, 0x3000)
	cfg := DefaultConfig()
	if lat != cfg.L1HitLat+cfg.L2HitLat {
		t.Errorf("cross-space latency = %d, want L2 hit %d", lat, cfg.L1HitLat+cfg.L2HitLat)
	}
}

func TestL2SharedAcrossSMXs(t *testing.T) {
	cfg := DefaultConfig()
	l2 := NewL2(cfg)
	a := NewSMXMem(cfg, l2)
	b := NewSMXMem(cfg, l2)
	a.AccessLine(Tex, 0x9000)
	lat := b.AccessLine(Tex, 0x9000)
	if lat != cfg.L1HitLat+cfg.L2HitLat {
		t.Errorf("expected L2 hit via sibling SMX, got %d", lat)
	}
}

func TestLRUEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1TexKB = 1 // 8 lines of 128B
	cfg.L1Assoc = 2
	l2 := NewL2(cfg)
	m := NewSMXMem(cfg, l2)
	// Fill one set beyond associativity: lines mapping to set 0.
	// numSets = 8/2 = 4; stride between same-set lines = 4*128.
	stride := uint64(4 * 128)
	m.AccessLine(Tex, 0)
	m.AccessLine(Tex, stride)
	m.AccessLine(Tex, 2*stride) // evicts line 0
	st := m.L1TexStats()
	if st.Misses != 3 {
		t.Fatalf("expected 3 cold misses, got %d", st.Misses)
	}
	m.AccessLine(Tex, 0) // must miss again (evicted)
	if got := m.L1TexStats().Misses; got != 4 {
		t.Errorf("expected LRU eviction miss, misses = %d", got)
	}
	m.AccessLine(Tex, 2*stride) // still resident
	if got := m.L1TexStats().Misses; got != 4 {
		t.Errorf("MRU line evicted unexpectedly, misses = %d", got)
	}
}

func TestWarpAccessCoalescing(t *testing.T) {
	m, _ := newTestMem()
	// 32 threads touching consecutive 4-byte words in one 128B line.
	addrs := make([]uint64, 32)
	for i := range addrs {
		addrs[i] = 0x4000 + uint64(i*4)
	}
	_, txns := m.WarpAccess(Data, addrs, 4)
	if txns != 1 {
		t.Errorf("fully coalesced access took %d transactions", txns)
	}
	// 32 threads touching 32 distinct lines.
	for i := range addrs {
		addrs[i] = 0x100000 + uint64(i)*128*7
	}
	_, txns = m.WarpAccess(Data, addrs, 4)
	if txns != 32 {
		t.Errorf("scattered access coalesced to %d transactions", txns)
	}
}

func TestWarpAccessStraddlesLines(t *testing.T) {
	m, _ := newTestMem()
	// A 64-byte object starting 32 bytes before a line boundary spans 2 lines.
	addrs := []uint64{128 - 32}
	_, txns := m.WarpAccess(Tex, addrs, 64)
	if txns != 2 {
		t.Errorf("straddling access = %d transactions, want 2", txns)
	}
}

func TestWarpAccessLatencyGrowsWithTxns(t *testing.T) {
	m, _ := newTestMem()
	one := []uint64{0}
	lat1, _ := m.WarpAccess(Tex, one, 4)
	var scattered []uint64
	for i := 0; i < 16; i++ {
		scattered = append(scattered, uint64(0x200000+i*128*5))
	}
	lat2, _ := m.WarpAccess(Tex, scattered, 4)
	if lat2 <= lat1 {
		t.Errorf("scattered warp access (%d) not slower than unit (%d)", lat2, lat1)
	}
}

func TestWarpAccessEmpty(t *testing.T) {
	m, _ := newTestMem()
	lat, txns := m.WarpAccess(Data, nil, 4)
	if lat != 0 || txns != 0 {
		t.Errorf("empty access = %d cycles %d txns", lat, txns)
	}
}

func TestStatsAndHitRate(t *testing.T) {
	m, _ := newTestMem()
	m.AccessLine(Tex, 0)
	m.AccessLine(Tex, 0)
	m.AccessLine(Tex, 0)
	st := m.L1TexStats()
	if st.Accesses != 3 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
	if hr := st.HitRate(); hr < 0.66 || hr > 0.67 {
		t.Errorf("hit rate = %v", hr)
	}
	if st.MissRate()+st.HitRate() != 1 {
		t.Errorf("rates don't sum to 1")
	}
	var empty CacheStats
	if empty.HitRate() != 0 || empty.MissRate() != 0 {
		t.Errorf("empty stats rates nonzero")
	}
}

func TestSmallerCacheMissesMore(t *testing.T) {
	// Sensitivity property behind the paper's backup-row thrashing
	// observation: a smaller working set fits, a bigger one thrashes.
	run := func(kb int) float64 {
		cfg := DefaultConfig()
		cfg.L1TexKB = kb
		l2 := NewL2(cfg)
		m := NewSMXMem(cfg, l2)
		rnd := rand.New(rand.NewSource(1))
		const footprint = 96 * 1024
		for i := 0; i < 20000; i++ {
			m.AccessLine(Tex, uint64(rnd.Intn(footprint)))
		}
		return m.L1TexStats().MissRate()
	}
	small := run(16)
	large := run(128)
	if small <= large {
		t.Errorf("16KB miss rate %v not worse than 128KB %v", small, large)
	}
}

func TestNilL2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for nil L2")
		}
	}()
	NewSMXMem(DefaultConfig(), nil)
}

func TestL2StatsSnapshot(t *testing.T) {
	cfg := DefaultConfig()
	l2 := NewL2(cfg)
	m := NewSMXMem(cfg, l2)
	m.AccessLine(Tex, 0x5000)
	if l2.Stats().Accesses != 1 {
		t.Errorf("L2 accesses = %d", l2.Stats().Accesses)
	}
	m.AccessLine(Tex, 0x5000) // L1 hit: must not touch L2
	if l2.Stats().Accesses != 1 {
		t.Errorf("L1 hit leaked to L2")
	}
}
