package memsys

import (
	"math/rand"
	"testing"
)

// refCache is an obviously-correct set-associative LRU cache used to
// cross-check the production cache's hit/miss decisions.
type refCache struct {
	sets      map[uint64][]uint64 // set -> lines in LRU order (front = MRU)
	assoc     int
	numSets   uint64
	lineBytes uint64
}

func newRefCache(totalKB, assoc, lineBytes int) *refCache {
	lines := totalKB * 1024 / lineBytes
	return &refCache{
		sets:      make(map[uint64][]uint64),
		assoc:     assoc,
		numSets:   uint64(lines / assoc),
		lineBytes: uint64(lineBytes),
	}
}

func (c *refCache) access(addr uint64) bool {
	line := addr / c.lineBytes
	set := line % c.numSets
	lines := c.sets[set]
	for i, l := range lines {
		if l == line {
			copy(lines[1:i+1], lines[:i])
			lines[0] = line
			return true
		}
	}
	lines = append([]uint64{line}, lines...)
	if len(lines) > c.assoc {
		lines = lines[:c.assoc]
	}
	c.sets[set] = lines
	return false
}

// Property: the production cache agrees with the reference on every
// access of random address streams with varying locality.
func TestCacheMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig()
		cfg.L1TexKB = 4 + rnd.Intn(3)*4
		cfg.L1Assoc = 1 + rnd.Intn(4)
		l2 := NewL2(cfg)
		m := NewSMXMem(cfg, l2)
		ref := newRefCache(cfg.L1TexKB, cfg.L1Assoc, cfg.LineBytes)
		footprint := uint64(16*1024 + rnd.Intn(256*1024))
		for i := 0; i < 30_000; i++ {
			var addr uint64
			if rnd.Intn(3) == 0 {
				addr = uint64(rnd.Intn(4096)) // hot region
			} else {
				addr = uint64(rnd.Int63()) % footprint
			}
			wantHit := ref.access(addr)
			lat := m.AccessLine(Tex, addr)
			gotHit := lat == cfg.L1HitLat
			if gotHit != wantHit {
				t.Fatalf("seed %d access %d addr %#x: hit=%v, reference=%v",
					seed, i, addr, gotHit, wantHit)
			}
		}
	}
}

// Property: warp access latency is monotone in the number of distinct
// lines touched (more transactions can never be faster, all-warm).
func TestWarpAccessMonotoneInLines(t *testing.T) {
	cfg := DefaultConfig()
	l2 := NewL2(cfg)
	m := NewSMXMem(cfg, l2)
	// Warm every line we will use.
	for i := 0; i < 64; i++ {
		m.AccessLine(Data, uint64(i)*128)
	}
	prev := -1
	for n := 1; n <= 32; n++ {
		addrs := make([]uint64, n)
		for i := range addrs {
			addrs[i] = uint64(i) * 128
		}
		lat, txns := m.WarpAccess(Data, addrs, 4)
		if txns != n {
			t.Fatalf("n=%d: txns=%d", n, txns)
		}
		if lat < prev {
			t.Fatalf("n=%d: latency %d dropped below %d", n, lat, prev)
		}
		prev = lat
	}
}
