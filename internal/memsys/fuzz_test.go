package memsys

import (
	"encoding/binary"
	"testing"
)

// decodeAccess turns fuzz bytes into one warp memory access: a space,
// an access size, and up to a warp's worth of lane addresses. The size
// is bounded so a single access spans at most a few cache lines, as
// real kernel accesses do; address bits are taken raw to explore the
// full line/set/tag space.
func decodeAccess(data []byte) (space Space, addrs []uint64, size uint32) {
	if len(data) < 3 {
		return Tex, nil, 0
	}
	space = Tex
	if data[0]&1 == 1 {
		space = Data
	}
	size = uint32(binary.LittleEndian.Uint16(data[1:3])) % 1025 // 0..1024
	data = data[3:]
	for len(data) >= 8 && len(addrs) < 32 {
		addrs = append(addrs, binary.LittleEndian.Uint64(data[:8]))
		data = data[8:]
	}
	return space, addrs, size
}

// refLineCount computes the number of distinct lines the access
// touches, capped at the coalescer's 64-transaction buffer, with a map
// instead of the coalescer's scan — an independent oracle.
func refLineCount(addrs []uint64, size uint32, lineBytes int) int {
	if size == 0 {
		size = 1
	}
	lb := uint64(lineBytes)
	seen := make(map[uint64]bool)
	for _, a := range addrs {
		if len(seen) >= 64 {
			break
		}
		first := a / lb
		end := a + uint64(size) - 1
		if end < a {
			end = ^uint64(0)
		}
		last := end / lb
		for l := first; l <= last && len(seen) < 64; l++ {
			seen[l] = true
		}
	}
	return len(seen)
}

// FuzzWarpCoalesce drives the per-warp coalescer with arbitrary lane
// address vectors and access sizes, in both immediate (locked L2) and
// ordered (epoch port) mode, checking the invariants the engine relies
// on: transaction counts match an independent line count, latencies are
// bounded by the declared worst case, pending-request bookkeeping is
// consistent with the port queue, and the whole computation is
// deterministic.
func FuzzWarpCoalesce(f *testing.F) {
	f.Add([]byte{0x00, 0x10, 0x00, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0x01, 0x00, 0x00, 0, 0, 0, 0, 0, 0, 0, 0}) // zero-size access
	// A strided warp: 32 lanes, 128B apart (one line each).
	strided := []byte{0x00, 0x04, 0x00}
	for i := 0; i < 32; i++ {
		var a [8]byte
		binary.LittleEndian.PutUint64(a[:], uint64(i)*128)
		strided = append(strided, a[:]...)
	}
	f.Add(strided)
	// Lane addresses near the top of the address space (line-span
	// arithmetic must not wrap).
	high := []byte{0x01, 0xff, 0xff}
	for i := 0; i < 4; i++ {
		var a [8]byte
		binary.LittleEndian.PutUint64(a[:], ^uint64(0)-uint64(i)*64)
		high = append(high, a[:]...)
	}
	f.Add(high)

	f.Fuzz(func(t *testing.T, data []byte) {
		space, addrs, size := decodeAccess(data)
		cfg := DefaultConfig()

		// Immediate mode (locked L2).
		m1 := NewSMXMem(cfg, NewL2(cfg))
		r1 := m1.WarpAccessEx(space, addrs, size)
		// Ordered mode (epoch port on SMX 0).
		o := NewOrderedL2(cfg, 1)
		m2 := NewSMXMemShared(cfg, 0, o)
		r2 := m2.WarpAccessEx(space, addrs, size)

		if len(addrs) == 0 {
			if r1 != (AccessResult{}) || r2 != (AccessResult{}) {
				t.Fatalf("empty warp produced work: %+v / %+v", r1, r2)
			}
			return
		}
		want := refLineCount(addrs, size, cfg.LineBytes)
		for name, r := range map[string]AccessResult{"immediate": r1, "ordered": r2} {
			if r.Transactions != want {
				t.Fatalf("%s: %d transactions, reference says %d", name, r.Transactions, want)
			}
			if r.Latency < cfg.L1HitLat {
				t.Fatalf("%s: latency %d below L1 hit latency %d", name, r.Latency, cfg.L1HitLat)
			}
			if r.Latency > r.MissLatency {
				t.Fatalf("%s: latency %d exceeds declared worst case %d", name, r.Latency, r.MissLatency)
			}
		}
		// The same lines go through both modes' L1s, so the L1 counters
		// must agree exactly.
		if m1.L1DataStats() != m2.L1DataStats() || m1.L1TexStats() != m2.L1TexStats() {
			t.Fatalf("L1 stats diverged between modes: %+v/%+v vs %+v/%+v",
				m1.L1DataStats(), m1.L1TexStats(), m2.L1DataStats(), m2.L1TexStats())
		}
		// Ordered-mode bookkeeping: the pending run must exactly cover the
		// port queue, and resolving it must not panic.
		port := m2.Port()
		if r2.PendingCount != port.Pending() || r2.PendingFirst != 0 {
			t.Fatalf("pending run [%d,+%d) inconsistent with port queue of %d",
				r2.PendingFirst, r2.PendingCount, port.Pending())
		}
		if r2.PendingCount > r2.Transactions {
			t.Fatalf("%d pending requests from %d transactions", r2.PendingCount, r2.Transactions)
		}
		o.Drain()
		missed := port.AnyMissed(r2.PendingFirst, r2.PendingCount)
		// A fresh L2 cannot hit on a first access: every queued line missed.
		if r2.PendingCount > 0 && !missed {
			t.Fatal("cold L2 reported a hit for a first-touch line")
		}
		if got := o.Stats().Accesses; got != int64(r2.PendingCount) {
			t.Fatalf("L2 saw %d accesses, expected the %d queued", got, r2.PendingCount)
		}
		port.Reset()
		if port.Pending() != 0 {
			t.Fatal("Reset left requests queued")
		}

		// Determinism: replaying the access on fresh state reproduces the
		// result and the cache counters bit for bit.
		m3 := NewSMXMem(cfg, NewL2(cfg))
		if r3 := m3.WarpAccessEx(space, addrs, size); r3 != r1 {
			t.Fatalf("replay diverged: %+v vs %+v", r3, r1)
		}
		if m3.L1DataStats() != m1.L1DataStats() || m3.Transactions() != m1.Transactions() {
			t.Fatal("replay cache counters diverged")
		}
	})
}
