// Package memsys models the GPU memory hierarchy of the simulated
// GTX780-class device: per-SMX L1 data and L1 texture caches, a shared
// L2, and a fixed-latency DRAM behind it. The traversal kernels access
// BVH nodes and triangles through the L1 texture cache (as in Aila's
// kernel) and ray records through the L1 data cache.
package memsys

import (
	"fmt"
	"sync"

	"repro/internal/metrics"
)

// Space identifies which path a memory access takes.
type Space uint8

// Memory spaces used by the kernels.
const (
	// Tex accesses go through the L1 texture cache (BVH nodes and
	// triangles in Aila's kernel layout).
	Tex Space = iota
	// Data accesses go through the L1 data cache (ray records, hit
	// records, pool counters).
	Data
)

// Config holds the hierarchy parameters (Table 1 of the paper plus
// standard Kepler latencies).
type Config struct {
	LineBytes int // cache line size

	L1DataKB    int
	L1TexKB     int
	L1Assoc     int
	L2KB        int // total, shared across SMXs
	L2Assoc     int
	L1HitLat    int // cycles from issue to data for an L1 hit
	L2HitLat    int // additional cycles for an L1 miss that hits L2
	DRAMLat     int // additional cycles for an L2 miss
	TxCycles    int // extra cycles per additional coalesced transaction
	NumSMX      int // number of SMXs sharing the L2
	L2SliceMask int // internal: derived
}

// DefaultConfig returns the GTX780 parameters used by the paper
// (Table 1): 48KB L1 data, 48KB L1 texture, 1536KB L2, 15 SMXs.
func DefaultConfig() Config {
	return Config{
		LineBytes: 128,
		L1DataKB:  48,
		L1TexKB:   48,
		L1Assoc:   6,
		L2KB:      1536,
		L2Assoc:   16,
		L1HitLat:  28,
		L2HitLat:  170,
		DRAMLat:   250,
		TxCycles:  4,
		NumSMX:    15,
	}
}

// CacheStats counts accesses and misses.
type CacheStats struct {
	Accesses int64
	Misses   int64
}

// HitRate returns the fraction of accesses that hit.
func (s CacheStats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return 1 - float64(s.Misses)/float64(s.Accesses)
}

// MissRate returns the fraction of accesses that missed.
func (s CacheStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// cache is a set-associative cache with LRU replacement, tracked at
// line-tag granularity (no data storage — the simulator only needs
// hit/miss behaviour).
type cache struct {
	sets      [][]uint64 // per-set tag list in LRU order (front = MRU)
	assoc     int
	numSets   int
	lineShift uint
	stats     CacheStats
}

func newCache(totalKB, assoc, lineBytes int) *cache {
	lines := totalKB * 1024 / lineBytes
	if assoc <= 0 {
		assoc = 4
	}
	numSets := lines / assoc
	if numSets < 1 {
		numSets = 1
	}
	shift := uint(0)
	for (1 << shift) < lineBytes {
		shift++
	}
	sets := make([][]uint64, numSets)
	for i := range sets {
		sets[i] = make([]uint64, 0, assoc)
	}
	return &cache{sets: sets, assoc: assoc, numSets: numSets, lineShift: shift}
}

// access looks up the line containing addr, updating LRU state, and
// reports whether it hit.
func (c *cache) access(addr uint64) bool {
	line := addr >> c.lineShift
	set := c.sets[line%uint64(c.numSets)]
	c.stats.Accesses++
	for i, tag := range set {
		if tag == line {
			// Move to front (MRU).
			copy(set[1:i+1], set[:i])
			set[0] = line
			return true
		}
	}
	c.stats.Misses++
	if len(set) < c.assoc {
		set = append(set, 0)
	}
	copy(set[1:], set[:len(set)-1])
	set[0] = line
	c.sets[line%uint64(c.numSets)] = set
	return false
}

// L2 is the free-running device-level cache shared by all SMXs. It is
// safe for concurrent use by the per-SMX goroutines, but its LRU and
// eviction state mutates in whatever order the goroutine scheduler
// interleaves the accesses, so multi-SMX cycle counts vary run to run.
// The deterministic engine uses OrderedL2 instead; this remains for the
// single-SMX examples and the legacy free-running engine.
type L2 struct {
	mu sync.Mutex
	c  *cache
}

// NewL2 builds the shared L2 from cfg.
func NewL2(cfg Config) *L2 {
	return &L2{c: newCache(cfg.L2KB, cfg.L2Assoc, cfg.LineBytes)}
}

// Access performs one L2 lookup.
func (l *L2) Access(addr uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.c.access(addr)
}

// Stats returns a snapshot of the L2 counters.
func (l *L2) Stats() CacheStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.c.stats
}

// RegisterMetrics registers the L2 counters under prefix ("l2"). The
// gauges take the lock, so they are safe to sample while SMX goroutines
// run (the free engine) — though only end-of-run snapshots are
// meaningful there.
func (l *L2) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.Gauge(prefix+"/accesses", func() int64 { return l.Stats().Accesses })
	reg.Gauge(prefix+"/misses", func() int64 { return l.Stats().Misses })
}

// ReqID identifies one request within an L2Port's current epoch queue.
type ReqID int32

// l2Req is one queued (and, after a drain, resolved) L2 line request —
// the replayable record the ordered drain consumes.
type l2Req struct {
	addr uint64
	miss bool
}

// L2Port is one SMX's private, ordered access point to the shared L2.
// During an epoch the owning SMX (single goroutine) appends its
// L2-bound line requests; at the epoch barrier OrderedL2.Drain applies
// every port's queue to the cache in fixed (smxID, issue-order) order
// and records each request's hit/miss outcome, which the SMX then reads
// back via AnyMissed. No locking anywhere: the port is written by one
// goroutine during the epoch and read/drained only at the barrier.
type L2Port struct {
	smxID int
	reqs  []l2Req
}

// enqueue records one L2-bound line request and returns its id within
// the current epoch.
func (p *L2Port) enqueue(addr uint64) ReqID {
	p.reqs = append(p.reqs, l2Req{addr: addr})
	return ReqID(len(p.reqs) - 1)
}

// AnyMissed reports whether any of the count requests starting at first
// missed the L2 at the last drain.
func (p *L2Port) AnyMissed(first ReqID, count int) bool {
	for i := first; i < first+ReqID(count); i++ {
		if p.reqs[i].miss {
			return true
		}
	}
	return false
}

// Pending returns the number of requests queued this epoch.
func (p *L2Port) Pending() int { return len(p.reqs) }

// Reset clears the epoch queue (after the owner has consumed the
// resolutions), retaining capacity.
func (p *L2Port) Reset() { p.reqs = p.reqs[:0] }

// OrderedL2 is the deterministic shared L2 of the epoch-barrier engine.
// SMXs never touch the cache directly: they enqueue line requests on
// their private L2Port during an epoch, and the engine calls Drain at
// the barrier, which applies all queues in fixed (smxID, issue-order)
// round-robin so hits, misses and evictions are identical on every run
// regardless of goroutine scheduling.
type OrderedL2 struct {
	c      *cache
	ports  []*L2Port
	drains int64
}

// NewOrderedL2 builds the ordered L2 with one port per SMX. numSMX is
// the device's SMX count (which may differ from cfg.NumSMX in scaled-
// down runs).
func NewOrderedL2(cfg Config, numSMX int) *OrderedL2 {
	if numSMX <= 0 {
		numSMX = 1
	}
	o := &OrderedL2{
		c:     newCache(cfg.L2KB, cfg.L2Assoc, cfg.LineBytes),
		ports: make([]*L2Port, numSMX),
	}
	for i := range o.ports {
		o.ports[i] = &L2Port{smxID: i}
	}
	return o
}

// Port returns SMX smxID's request port.
func (o *OrderedL2) Port(smxID int) *L2Port { return o.ports[smxID] }

// NumPorts returns the number of per-SMX ports.
func (o *OrderedL2) NumPorts() int { return len(o.ports) }

// Drain resolves every queued request against the cache in (smxID,
// issue-order) order. The engine calls it at the epoch barrier, with no
// SMX goroutine running; it must not race with enqueues.
//drslint:hotpath
func (o *OrderedL2) Drain() {
	for _, p := range o.ports {
		for i := range p.reqs {
			p.reqs[i].miss = !o.c.access(p.reqs[i].addr)
		}
	}
	o.drains++
}

// Drains returns how many epoch drains have run.
func (o *OrderedL2) Drains() int64 { return o.drains }

// Stats returns a snapshot of the L2 counters.
func (o *OrderedL2) Stats() CacheStats { return o.c.stats }

// RegisterMetrics registers the ordered L2's counters under prefix
// ("l2"): the shared cache's accesses and misses plus the epoch drain
// count. Probes read the live fields; the engine samples them only at
// barriers, when no SMX goroutine runs.
func (o *OrderedL2) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.Counter(prefix+"/accesses", &o.c.stats.Accesses)
	reg.Counter(prefix+"/misses", &o.c.stats.Misses)
	reg.Counter(prefix+"/drains", &o.drains)
}

// SharedL2 is a device-level L2 that per-SMX memories attach to: either
// the free-running locked L2 or the epoch-drained OrderedL2. The
// attach method is unexported so the two implementations stay in this
// package; construct per-SMX views with NewSMXMemShared.
type SharedL2 interface {
	attach(cfg Config, smxID int) *SMXMem
}

func (l *L2) attach(cfg Config, smxID int) *SMXMem { return NewSMXMem(cfg, l) }

func (o *OrderedL2) attach(cfg Config, smxID int) *SMXMem {
	return &SMXMem{
		cfg:  cfg,
		l1d:  newCache(cfg.L1DataKB, cfg.L1Assoc, cfg.LineBytes),
		l1t:  newCache(cfg.L1TexKB, cfg.L1Assoc, cfg.LineBytes),
		port: o.Port(smxID),
	}
}

// NewSMXMemShared creates SMX smxID's private caches attached to the
// given shared L2 (locked or ordered).
func NewSMXMemShared(cfg Config, smxID int, shared SharedL2) *SMXMem {
	if shared == nil {
		panic("memsys: nil shared L2")
	}
	return shared.attach(cfg, smxID)
}

// SMXMem is the per-SMX view of the hierarchy: private L1s over the
// shared L2. Exactly one of l2 (immediate mode: lookups answered
// inline through the locked L2) or port (ordered mode: L2-bound
// requests queue for the epoch drain) is non-nil.
type SMXMem struct {
	cfg  Config
	l1d  *cache
	l1t  *cache
	l2   *L2
	port *L2Port
	txns int64
}

// NewSMXMem creates the per-SMX caches, attached to the shared l2.
func NewSMXMem(cfg Config, l2 *L2) *SMXMem {
	if l2 == nil {
		panic("memsys: nil shared L2")
	}
	return &SMXMem{
		cfg: cfg,
		l1d: newCache(cfg.L1DataKB, cfg.L1Assoc, cfg.LineBytes),
		l1t: newCache(cfg.L1TexKB, cfg.L1Assoc, cfg.LineBytes),
		l2:  l2,
	}
}

// AccessLine performs one transaction for the line containing addr in
// the given space and returns its latency in cycles. In ordered mode an
// L1 miss queues the line on the SMX's L2 port and the returned latency
// is provisional (it assumes an L2 hit); callers that need the resolved
// outcome use WarpAccessEx and the epoch drain.
func (m *SMXMem) AccessLine(space Space, addr uint64) int {
	lat, _ := m.accessLine(space, addr)
	return lat
}

// accessLine is AccessLine plus a flag reporting whether the access was
// queued on the L2 port (ordered mode, L1 miss) rather than resolved.
func (m *SMXMem) accessLine(space Space, addr uint64) (lat int, queued bool) {
	m.txns++
	l1 := m.l1d
	if space == Tex {
		l1 = m.l1t
	}
	if l1.access(addr) {
		return m.cfg.L1HitLat, false
	}
	if m.port != nil {
		m.port.enqueue(addr)
		return m.cfg.L1HitLat + m.cfg.L2HitLat, true
	}
	if m.l2.Access(addr) {
		return m.cfg.L1HitLat + m.cfg.L2HitLat, false
	}
	return m.cfg.L1HitLat + m.cfg.L2HitLat + m.cfg.DRAMLat, false
}

// AccessResult describes one coalesced warp memory access.
type AccessResult struct {
	// Latency is the warp's stall in cycles. If PendingCount > 0 it is
	// provisional: it assumes every queued L2 request hits, and the
	// engine must raise the warp's ready cycle to issue+MissLatency at
	// the epoch barrier if any of them missed.
	Latency int
	// MissLatency is the warp latency if at least one pending request
	// misses the L2 (the DRAM round trip dominates every resolved line).
	MissLatency int
	// Transactions is the number of coalesced line transactions.
	Transactions int
	// PendingFirst and PendingCount identify the contiguous run of
	// requests this access queued on the SMX's L2 port; PendingCount is
	// 0 when the access resolved entirely in the private tier (or the
	// memory is in immediate mode).
	PendingFirst ReqID
	PendingCount int
}

// WarpAccess coalesces the addresses of one warp memory instruction
// into line transactions and returns the total warp latency plus the
// number of transactions. Latency is the max single-transaction latency
// plus a serialization cost per extra transaction, matching the
// stall-until-complete model the engine uses. In ordered mode the
// latency is provisional (see AccessResult); the engine uses
// WarpAccessEx instead.
func (m *SMXMem) WarpAccess(space Space, addrs []uint64, bytes uint32) (latency, transactions int) {
	r := m.WarpAccessEx(space, addrs, bytes)
	return r.Latency, r.Transactions
}

// WarpAccessEx is WarpAccess with the pending-request bookkeeping the
// epoch-barrier engine needs.
func (m *SMXMem) WarpAccessEx(space Space, addrs []uint64, bytes uint32) AccessResult {
	if len(addrs) == 0 {
		return AccessResult{}
	}
	if bytes == 0 {
		// A zero-size access still touches its line; without this the
		// last-line computation below underflows at addr 0.
		bytes = 1
	}
	lineBytes := uint64(m.cfg.LineBytes)
	// Collect unique lines. Warp size is small, a slice scan is fast.
	var lines [64]uint64
	n := 0
	for _, a := range addrs {
		if n == len(lines) {
			break // transaction buffer full; further lines coalesce nowhere
		}
		first := a / lineBytes
		end := a + uint64(bytes) - 1
		if end < a {
			end = ^uint64(0) // saturate: the access runs to the top of the address space
		}
		last := end / lineBytes
		for l := first; l <= last && n < len(lines); l++ {
			dup := false
			for i := 0; i < n; i++ {
				if lines[i] == l {
					dup = true
					break
				}
			}
			if !dup {
				lines[n] = l
				n++
			}
		}
	}
	res := AccessResult{Transactions: n}
	if m.port != nil {
		res.PendingFirst = ReqID(m.port.Pending())
	}
	maxLat := 0
	for i := 0; i < n; i++ {
		lat, queued := m.accessLine(space, lines[i]*lineBytes)
		if lat > maxLat {
			maxLat = lat
		}
		if queued {
			res.PendingCount++
		}
	}
	serial := (n - 1) * m.cfg.TxCycles
	res.Latency = maxLat + serial
	res.MissLatency = m.cfg.L1HitLat + m.cfg.L2HitLat + m.cfg.DRAMLat + serial
	return res
}

// Port returns the SMX's ordered L2 port, or nil in immediate mode.
func (m *SMXMem) Port() *L2Port { return m.port }

// RegisterMetrics registers the SMX's private cache counters under
// prefix: prefix/l1d/{accesses,misses}, prefix/l1t/{accesses,misses},
// and prefix/transactions.
func (m *SMXMem) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.Counter(prefix+"/l1d/accesses", &m.l1d.stats.Accesses)
	reg.Counter(prefix+"/l1d/misses", &m.l1d.stats.Misses)
	reg.Counter(prefix+"/l1t/accesses", &m.l1t.stats.Accesses)
	reg.Counter(prefix+"/l1t/misses", &m.l1t.stats.Misses)
	reg.Counter(prefix+"/transactions", &m.txns)
}

// L1DataStats returns a snapshot of the L1 data cache counters.
func (m *SMXMem) L1DataStats() CacheStats { return m.l1d.stats }

// L1TexStats returns a snapshot of the L1 texture cache counters.
func (m *SMXMem) L1TexStats() CacheStats { return m.l1t.stats }

// Transactions returns the number of line transactions performed.
func (m *SMXMem) Transactions() int64 { return m.txns }

// String summarizes the SMX's cache behaviour.
func (m *SMXMem) String() string {
	return fmt.Sprintf("L1D %.1f%% hit, L1T %.1f%% hit, %d txns",
		m.l1d.stats.HitRate()*100, m.l1t.stats.HitRate()*100, m.txns)
}
