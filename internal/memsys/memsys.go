// Package memsys models the GPU memory hierarchy of the simulated
// GTX780-class device: per-SMX L1 data and L1 texture caches, a shared
// L2, and a fixed-latency DRAM behind it. The traversal kernels access
// BVH nodes and triangles through the L1 texture cache (as in Aila's
// kernel) and ray records through the L1 data cache.
package memsys

import (
	"fmt"
	"sync"
)

// Space identifies which path a memory access takes.
type Space uint8

// Memory spaces used by the kernels.
const (
	// Tex accesses go through the L1 texture cache (BVH nodes and
	// triangles in Aila's kernel layout).
	Tex Space = iota
	// Data accesses go through the L1 data cache (ray records, hit
	// records, pool counters).
	Data
)

// Config holds the hierarchy parameters (Table 1 of the paper plus
// standard Kepler latencies).
type Config struct {
	LineBytes int // cache line size

	L1DataKB    int
	L1TexKB     int
	L1Assoc     int
	L2KB        int // total, shared across SMXs
	L2Assoc     int
	L1HitLat    int // cycles from issue to data for an L1 hit
	L2HitLat    int // additional cycles for an L1 miss that hits L2
	DRAMLat     int // additional cycles for an L2 miss
	TxCycles    int // extra cycles per additional coalesced transaction
	NumSMX      int // number of SMXs sharing the L2
	L2SliceMask int // internal: derived
}

// DefaultConfig returns the GTX780 parameters used by the paper
// (Table 1): 48KB L1 data, 48KB L1 texture, 1536KB L2, 15 SMXs.
func DefaultConfig() Config {
	return Config{
		LineBytes: 128,
		L1DataKB:  48,
		L1TexKB:   48,
		L1Assoc:   6,
		L2KB:      1536,
		L2Assoc:   16,
		L1HitLat:  28,
		L2HitLat:  170,
		DRAMLat:   250,
		TxCycles:  4,
		NumSMX:    15,
	}
}

// CacheStats counts accesses and misses.
type CacheStats struct {
	Accesses int64
	Misses   int64
}

// HitRate returns the fraction of accesses that hit.
func (s CacheStats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return 1 - float64(s.Misses)/float64(s.Accesses)
}

// MissRate returns the fraction of accesses that missed.
func (s CacheStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// cache is a set-associative cache with LRU replacement, tracked at
// line-tag granularity (no data storage — the simulator only needs
// hit/miss behaviour).
type cache struct {
	sets      [][]uint64 // per-set tag list in LRU order (front = MRU)
	assoc     int
	numSets   int
	lineShift uint
	stats     CacheStats
}

func newCache(totalKB, assoc, lineBytes int) *cache {
	lines := totalKB * 1024 / lineBytes
	if assoc <= 0 {
		assoc = 4
	}
	numSets := lines / assoc
	if numSets < 1 {
		numSets = 1
	}
	shift := uint(0)
	for (1 << shift) < lineBytes {
		shift++
	}
	sets := make([][]uint64, numSets)
	for i := range sets {
		sets[i] = make([]uint64, 0, assoc)
	}
	return &cache{sets: sets, assoc: assoc, numSets: numSets, lineShift: shift}
}

// access looks up the line containing addr, updating LRU state, and
// reports whether it hit.
func (c *cache) access(addr uint64) bool {
	line := addr >> c.lineShift
	set := c.sets[line%uint64(c.numSets)]
	c.stats.Accesses++
	for i, tag := range set {
		if tag == line {
			// Move to front (MRU).
			copy(set[1:i+1], set[:i])
			set[0] = line
			return true
		}
	}
	c.stats.Misses++
	if len(set) < c.assoc {
		set = append(set, 0)
	}
	copy(set[1:], set[:len(set)-1])
	set[0] = line
	c.sets[line%uint64(c.numSets)] = set
	return false
}

// L2 is the device-level cache shared by all SMXs. It is safe for
// concurrent use by the per-SMX goroutines.
type L2 struct {
	mu sync.Mutex
	c  *cache
}

// NewL2 builds the shared L2 from cfg.
func NewL2(cfg Config) *L2 {
	return &L2{c: newCache(cfg.L2KB, cfg.L2Assoc, cfg.LineBytes)}
}

// Access performs one L2 lookup.
func (l *L2) Access(addr uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.c.access(addr)
}

// Stats returns a snapshot of the L2 counters.
func (l *L2) Stats() CacheStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.c.stats
}

// SMXMem is the per-SMX view of the hierarchy: private L1s over the
// shared L2.
type SMXMem struct {
	cfg  Config
	l1d  *cache
	l1t  *cache
	l2   *L2
	txns int64
}

// NewSMXMem creates the per-SMX caches, attached to the shared l2.
func NewSMXMem(cfg Config, l2 *L2) *SMXMem {
	if l2 == nil {
		panic("memsys: nil shared L2")
	}
	return &SMXMem{
		cfg: cfg,
		l1d: newCache(cfg.L1DataKB, cfg.L1Assoc, cfg.LineBytes),
		l1t: newCache(cfg.L1TexKB, cfg.L1Assoc, cfg.LineBytes),
		l2:  l2,
	}
}

// AccessLine performs one transaction for the line containing addr in
// the given space and returns its latency in cycles.
func (m *SMXMem) AccessLine(space Space, addr uint64) int {
	m.txns++
	l1 := m.l1d
	if space == Tex {
		l1 = m.l1t
	}
	if l1.access(addr) {
		return m.cfg.L1HitLat
	}
	if m.l2.Access(addr) {
		return m.cfg.L1HitLat + m.cfg.L2HitLat
	}
	return m.cfg.L1HitLat + m.cfg.L2HitLat + m.cfg.DRAMLat
}

// WarpAccess coalesces the addresses of one warp memory instruction
// into line transactions and returns the total warp latency plus the
// number of transactions. Latency is the max single-transaction latency
// plus a serialization cost per extra transaction, matching the
// stall-until-complete model the engine uses.
func (m *SMXMem) WarpAccess(space Space, addrs []uint64, bytes uint32) (latency, transactions int) {
	if len(addrs) == 0 {
		return 0, 0
	}
	lineBytes := uint64(m.cfg.LineBytes)
	// Collect unique lines. Warp size is small, a slice scan is fast.
	var lines [64]uint64
	n := 0
	for _, a := range addrs {
		first := a / lineBytes
		last := (a + uint64(bytes) - 1) / lineBytes
		for l := first; l <= last; l++ {
			dup := false
			for i := 0; i < n; i++ {
				if lines[i] == l {
					dup = true
					break
				}
			}
			if !dup && n < len(lines) {
				lines[n] = l
				n++
			}
		}
	}
	maxLat := 0
	for i := 0; i < n; i++ {
		lat := m.AccessLine(space, lines[i]*lineBytes)
		if lat > maxLat {
			maxLat = lat
		}
	}
	return maxLat + (n-1)*m.cfg.TxCycles, n
}

// L1DataStats returns a snapshot of the L1 data cache counters.
func (m *SMXMem) L1DataStats() CacheStats { return m.l1d.stats }

// L1TexStats returns a snapshot of the L1 texture cache counters.
func (m *SMXMem) L1TexStats() CacheStats { return m.l1t.stats }

// Transactions returns the number of line transactions performed.
func (m *SMXMem) Transactions() int64 { return m.txns }

// String summarizes the SMX's cache behaviour.
func (m *SMXMem) String() string {
	return fmt.Sprintf("L1D %.1f%% hit, L1T %.1f%% hit, %d txns",
		m.l1d.stats.HitRate()*100, m.l1t.stats.HitRate()*100, m.txns)
}
