package memsys

import "testing"

// BenchmarkCacheAccess measures the steady-state cost of one cache
// lookup with its LRU move-to-front, alternating hits and conflict
// misses across sets. After the warm-up fill, access must be
// allocation-free (0 B/op): it runs once per line transaction of every
// memory instruction of every warp, and a single allocation here
// dominates full-suite wall-clock via the collector.
func BenchmarkCacheAccess(b *testing.B) {
	c := newCache(48, 6, 128) // the L1 shape: 48KB, 6-way, 128B lines
	// Warm every set past its associativity so the append-growth path
	// is done before measurement and misses evict.
	for a := uint64(0); a < 48*1024*8; a += 128 {
		c.access(a)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Mix of re-references (hits, move-to-front) and fresh lines
		// (misses, eviction shift).
		c.access(uint64(i%4096) * 128)
		c.access(uint64(i) * 128)
	}
}

// TestCacheAccessAllocFree pins the property the benchmark observes: a
// steady-state access (hit or evicting miss) performs zero heap
// allocations.
func TestCacheAccessAllocFree(t *testing.T) {
	c := newCache(48, 6, 128)
	for a := uint64(0); a < 48*1024*8; a += 128 {
		c.access(a)
	}
	n := int(testing.AllocsPerRun(1000, func() {
		c.access(0x1000)      // hit path
		c.access(0xdead0000)  // miss path (set full, evicts)
		c.access(0xbeef00000) // different set miss
	}))
	if n != 0 {
		t.Fatalf("cache.access allocated %d times per run; move-to-front must be allocation-free", n)
	}
}
