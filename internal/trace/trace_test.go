package trace

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/vec"
)

func makeStream(n int) *Stream {
	p := rng.NewPCG32(5, 5)
	s := &Stream{Scene: "test", Bounce: 2}
	for i := 0; i < n; i++ {
		o := vec.New(p.Float32()*10, p.Float32()*10, p.Float32()*10)
		d := vec.New(p.Float32()*2-1, p.Float32()*2-1, p.Float32()*2-1).Norm()
		s.Rays = append(s.Rays, geom.NewRay(o, d))
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	s := makeStream(137)
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scene != s.Scene || got.Bounce != s.Bounce {
		t.Errorf("metadata mismatch: %q/%d", got.Scene, got.Bounce)
	}
	if len(got.Rays) != len(s.Rays) {
		t.Fatalf("ray count %d vs %d", len(got.Rays), len(s.Rays))
	}
	for i := range got.Rays {
		if got.Rays[i] != s.Rays[i] {
			t.Fatalf("ray %d mismatch", i)
		}
	}
}

func TestRoundTripEmpty(t *testing.T) {
	s := &Stream{Scene: "empty", Bounce: 1}
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rays) != 0 {
		t.Errorf("expected no rays, got %d", len(got.Rays))
	}
}

func TestReadBadMagic(t *testing.T) {
	buf := bytes.NewBuffer([]byte{1, 2, 3, 4, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	if _, err := Read(buf); err == nil {
		t.Errorf("expected bad magic error")
	}
}

func TestReadTruncated(t *testing.T) {
	s := makeStream(10)
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := Read(bytes.NewReader(b[:len(b)-13])); err == nil {
		t.Errorf("expected truncation error")
	}
}

func TestSetAccessors(t *testing.T) {
	var set Set
	set.Scene = "x"
	for b := 1; b <= MaxBounces; b++ {
		set.Streams[b-1] = Stream{Bounce: b, Rays: make([]geom.Ray, b)}
	}
	if set.TotalRays() != 1+2+3+4+5+6+7+8 {
		t.Errorf("TotalRays = %d", set.TotalRays())
	}
	if set.Bounce(3).Bounce != 3 {
		t.Errorf("Bounce(3) = %+v", set.Bounce(3))
	}
}

func TestBouncePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	var set Set
	set.Bounce(0)
}

func TestCoherenceOrdering(t *testing.T) {
	// Parallel rays: coherence ~1.
	par := &Stream{}
	for i := 0; i < 128; i++ {
		par.Rays = append(par.Rays, geom.NewRay(vec.New(float32(i), 0, 0), vec.New(0, 0, 1)))
	}
	// Random rays: much lower coherence.
	random := makeStream(128)
	cp := par.Coherence(32)
	cr := random.Coherence(32)
	if cp < 0.999 {
		t.Errorf("parallel coherence = %v", cp)
	}
	if cr >= 0.9 {
		t.Errorf("random coherence suspiciously high: %v", cr)
	}
	if cp <= cr {
		t.Errorf("expected parallel > random coherence: %v vs %v", cp, cr)
	}
}

func TestCoherenceDegenerate(t *testing.T) {
	s := &Stream{}
	if s.Coherence(32) != 0 {
		t.Errorf("empty stream coherence should be 0")
	}
	if makeStream(8).Coherence(0) != 0 {
		t.Errorf("zero group size should be 0")
	}
}

func TestSetRoundTrip(t *testing.T) {
	var set Set
	set.Scene = "setscene"
	for b := 1; b <= 3; b++ {
		st := makeStream(10 * b)
		st.Scene = "setscene"
		st.Bounce = b
		set.Streams[b-1] = *st
	}
	var buf bytes.Buffer
	if err := set.WriteSet(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scene != "setscene" {
		t.Errorf("scene = %q", got.Scene)
	}
	if got.TotalRays() != set.TotalRays() {
		t.Errorf("total rays %d vs %d", got.TotalRays(), set.TotalRays())
	}
	for b := 1; b <= 3; b++ {
		if len(got.Bounce(b).Rays) != 10*b {
			t.Errorf("bounce %d rays = %d", b, len(got.Bounce(b).Rays))
		}
	}
	// Empty bounces stay empty.
	if len(got.Bounce(5).Rays) != 0 {
		t.Errorf("bounce 5 should be empty")
	}
}

func TestReadSetRejectsGarbage(t *testing.T) {
	if _, err := ReadSet(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff})); err == nil {
		t.Errorf("garbage header accepted")
	}
	var buf bytes.Buffer
	st := makeStream(3)
	st.Bounce = 99 // invalid bounce number inside a set
	if err := binaryWriteHeaderForTest(&buf, 1, st); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSet(&buf); err == nil {
		t.Errorf("invalid bounce accepted")
	}
}

// binaryWriteHeaderForTest writes a set header of n followed by the
// given stream, for malformed-input tests.
func binaryWriteHeaderForTest(buf *bytes.Buffer, n uint32, st *Stream) error {
	if err := binary.Write(buf, binary.LittleEndian, n); err != nil {
		return err
	}
	return st.Write(buf)
}
