package trace

import (
	"bytes"
	"testing"
)

// FuzzRead ensures the stream decoder never panics or over-allocates on
// arbitrary bytes, and that anything it accepts round-trips.
func FuzzRead(f *testing.F) {
	// Seed with valid encodings and truncations thereof.
	s := makeStream(17)
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte{0x31, 0x53, 0x52, 0x44}) // magic only
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must re-encode and re-decode to the same rays.
		var out bytes.Buffer
		if err := st.Write(&out); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		st2, err := Read(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(st2.Rays) != len(st.Rays) || st2.Bounce != st.Bounce {
			t.Fatalf("round-trip mismatch")
		}
	})
}

// FuzzReadSet does the same for the set container.
func FuzzReadSet(f *testing.F) {
	var set Set
	set.Scene = "s"
	st := makeStream(5)
	st.Bounce = 2
	set.Streams[1] = *st
	var buf bytes.Buffer
	if err := set.WriteSet(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		set, err := ReadSet(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := set.WriteSet(&out); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if _, err := ReadSet(&out); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}
