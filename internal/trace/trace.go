// Package trace defines the per-bounce ray stream format. The paper
// treats shading and ray generation as a black box: it captures traces
// of rays from PBRT and streams them into the ray tracing kernels.
// This package is our equivalent — the renderer records the rays of
// each bounce, and the simulated kernels consume those streams.
package trace

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/geom"
	"repro/internal/vec"
)

// MaxBounces is the paper's maximum path depth.
const MaxBounces = 8

// Stream is the set of rays traced at one bounce depth.
type Stream struct {
	Scene  string
	Bounce int // 1-based bounce number (B1 = primary rays)
	Rays   []geom.Ray
}

// Set holds the streams of all bounces for one render.
type Set struct {
	Scene   string
	Streams [MaxBounces]Stream
}

// TotalRays returns the total number of rays over all bounces.
func (s *Set) TotalRays() int {
	n := 0
	for _, st := range s.Streams {
		n += len(st.Rays)
	}
	return n
}

// Bounce returns the stream for 1-based bounce b.
func (s *Set) Bounce(b int) *Stream {
	if b < 1 || b > MaxBounces {
		panic(fmt.Sprintf("trace: bounce %d out of range", b))
	}
	return &s.Streams[b-1]
}

const magic = uint32(0x44525331) // "DRS1"

// Write serializes the stream in a compact little-endian binary format.
func (s *Stream) Write(w io.Writer) error {
	hdr := struct {
		Magic  uint32
		Bounce uint32
		Count  uint64
	}{magic, uint32(s.Bounce), uint64(len(s.Rays))}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	name := []byte(s.Scene)
	if err := binary.Write(w, binary.LittleEndian, uint32(len(name))); err != nil {
		return fmt.Errorf("trace: write name len: %w", err)
	}
	if _, err := w.Write(name); err != nil {
		return fmt.Errorf("trace: write name: %w", err)
	}
	buf := make([]float32, 0, 8*len(s.Rays))
	for _, r := range s.Rays {
		buf = append(buf,
			r.Origin.X, r.Origin.Y, r.Origin.Z,
			r.Dir.X, r.Dir.Y, r.Dir.Z,
			r.TMin, r.TMax)
	}
	if err := binary.Write(w, binary.LittleEndian, buf); err != nil {
		return fmt.Errorf("trace: write rays: %w", err)
	}
	return nil
}

// Read deserializes a stream written by Write.
func Read(r io.Reader) (*Stream, error) {
	var hdr struct {
		Magic  uint32
		Bounce uint32
		Count  uint64
	}
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if hdr.Magic != magic {
		return nil, fmt.Errorf("trace: bad magic %#x", hdr.Magic)
	}
	if hdr.Count > 1<<32 {
		return nil, fmt.Errorf("trace: implausible ray count %d", hdr.Count)
	}
	var nameLen uint32
	if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
		return nil, fmt.Errorf("trace: read name len: %w", err)
	}
	if nameLen > 4096 {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return nil, fmt.Errorf("trace: read name: %w", err)
	}
	// Read rays in bounded chunks: the header's count is untrusted, so
	// memory must grow only as data actually arrives (a hostile count
	// then fails at EOF instead of triggering a huge allocation).
	s := &Stream{Scene: string(name), Bounce: int(hdr.Bounce)}
	const chunk = 1 << 16
	buf := make([]float32, 0, 8*chunk)
	remaining := hdr.Count
	for remaining > 0 {
		n := uint64(chunk)
		if remaining < n {
			n = remaining
		}
		buf = buf[:8*n]
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, fmt.Errorf("trace: read rays: %w", err)
		}
		for i := uint64(0); i < n; i++ {
			o := buf[i*8:]
			s.Rays = append(s.Rays, geom.Ray{
				Origin: vec.New(o[0], o[1], o[2]),
				Dir:    vec.New(o[3], o[4], o[5]),
				TMin:   o[6],
				TMax:   o[7],
			})
		}
		remaining -= n
	}
	return s, nil
}

// WriteSet serializes all non-empty bounce streams of a set,
// length-prefixed, so a whole render's traces travel as one file.
func (s *Set) WriteSet(w io.Writer) error {
	n := uint32(0)
	for _, st := range s.Streams {
		if len(st.Rays) > 0 {
			n++
		}
	}
	if err := binary.Write(w, binary.LittleEndian, n); err != nil {
		return fmt.Errorf("trace: write set header: %w", err)
	}
	for i := range s.Streams {
		if len(s.Streams[i].Rays) == 0 {
			continue
		}
		if err := s.Streams[i].Write(w); err != nil {
			return err
		}
	}
	return nil
}

// ReadSet deserializes a set written by WriteSet.
func ReadSet(r io.Reader) (*Set, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("trace: read set header: %w", err)
	}
	if n > MaxBounces {
		return nil, fmt.Errorf("trace: set claims %d streams", n)
	}
	set := &Set{}
	for i := uint32(0); i < n; i++ {
		st, err := Read(r)
		if err != nil {
			return nil, err
		}
		if st.Bounce < 1 || st.Bounce > MaxBounces {
			return nil, fmt.Errorf("trace: stream with bounce %d", st.Bounce)
		}
		set.Scene = st.Scene
		set.Streams[st.Bounce-1] = *st
	}
	return set, nil
}

// Coherence estimates the directional coherence of consecutive ray
// groups of the given size: the mean over groups of the average dot
// product between each ray and the group's mean direction. Primary rays
// score near 1; randomized secondary rays score much lower. Used by
// tests and the divergence example to verify the workload matches the
// paper's premise.
func (s *Stream) Coherence(groupSize int) float64 {
	if groupSize <= 0 || len(s.Rays) == 0 {
		return 0
	}
	var total float64
	groups := 0
	for start := 0; start+groupSize <= len(s.Rays); start += groupSize {
		var mean vec.V3
		for i := start; i < start+groupSize; i++ {
			mean = mean.Add(s.Rays[i].Dir)
		}
		if mean.Len() == 0 {
			continue
		}
		mean = mean.Norm()
		var acc float64
		for i := start; i < start+groupSize; i++ {
			acc += float64(s.Rays[i].Dir.Dot(mean))
		}
		total += acc / float64(groupSize)
		groups++
	}
	if groups == 0 {
		return 0
	}
	return total / float64(groups)
}
