// Package warpsched defines the pluggable warp-scheduler registry, the
// scheduling-dimension sibling of internal/reorder's ray-reordering
// framework. A Scheduler packages one intra-SMX warp scheduling policy
// — greedy-then-oldest (the paper's Table 1 configuration), loose
// round-robin, or a WaSP-style distance-based prefetch-mimicking
// scheduler — behind a single interface, so the policy is a registry
// lookup instead of a hard-coded enum and new policies plug in without
// touching the engine.
//
// # Devirtualization contract
//
// The warp pick runs once per scheduler per cycle on the engine's
// hottest loop, so a Scheduler is not consulted through its interface
// at issue time. Instead Factory returns a simt.SchedFactory; NewSMX
// calls it once per SMX and stores the resulting SchedProgram's funcs
// in direct func fields next to the kernel Step binding (see
// internal/simt/sched.go). Per-SMX policy state (WaSP's issue
// counters) is allocated inside the factory; the bound funcs must not
// allocate, which TestWarpSchedZeroAlloc pins the same way
// TestSteadyCycleLoopZeroAlloc pins the engine's own loop.
//
// # Determinism obligations
//
// Policies run inside the bit-deterministic epoch-barrier engine: every
// pick must be a pure function of SchedView state, with ties broken
// lowest-warp-id first (the engine's own convention). No wall clock, no
// RNG, no map iteration — drslint enforces this for the package like
// any other engine code.
package warpsched

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/simt"
)

// Scheduler is one configured warp-scheduling policy. A Scheduler
// value owns its policy-specific configuration (WaSP's runner count
// and target distance); the harness asks it for the per-SMX factory.
type Scheduler interface {
	// Name is the registry key ("gto", "lrr", "wasp"). It appears in
	// result tables and the sweep figure.
	Name() string
	// Summary is the one-line description -list-scheds prints.
	Summary() string
	// Validate checks the policy's configuration before any device
	// state is built.
	Validate() error
	// Factory returns the per-SMX builder NewSMX devirtualizes the
	// policy through.
	Factory() simt.SchedFactory
}

// UnknownSchedulerError is the typed error for a scheduler name the
// registry does not know. Every layer that resolves names (harness
// options, drsbench flags, service job specs, arch configs) surfaces
// this one error type, so an unknown name fails in exactly one place.
type UnknownSchedulerError struct {
	// Name is the unresolved scheduler name.
	Name string
	// Known lists the registered names in registration order.
	Known []string
}

func (e *UnknownSchedulerError) Error() string {
	return fmt.Sprintf("warpsched: unknown scheduler %q; valid: %v", e.Name, e.Known)
}

// Registration is one registry row: the scheduler name and summary
// plus a factory for a default-configured instance.
type Registration struct {
	Name    string
	Summary string
	// New returns a freshly default-configured Scheduler. Callers that
	// need non-default parameters construct the value directly (the
	// configs are exported) and pass it via harness options.
	New func() Scheduler
}

// Registry maps scheduler names to registrations. The zero value is
// not usable; call NewRegistry.
type Registry struct {
	byName map[string]Registration
	order  []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]Registration)}
}

// Register adds a registration. Duplicate names and nil factories are
// registration-time bugs, reported as errors so a catalog test can pin
// the set.
func (r *Registry) Register(reg Registration) error {
	switch {
	case reg.Name == "":
		return fmt.Errorf("warpsched: registration with empty name")
	case reg.New == nil:
		return fmt.Errorf("warpsched: scheduler %q registered without a factory", reg.Name)
	}
	if _, dup := r.byName[reg.Name]; dup {
		return fmt.Errorf("warpsched: scheduler %q registered twice", reg.Name)
	}
	r.byName[reg.Name] = reg
	r.order = append(r.order, reg.Name)
	return nil
}

// MustRegister is Register that panics on error (catalog construction).
func (r *Registry) MustRegister(reg Registration) {
	if err := r.Register(reg); err != nil {
		panic(err)
	}
}

// Lookup returns the registration for name.
func (r *Registry) Lookup(name string) (Registration, bool) {
	reg, ok := r.byName[name]
	return reg, ok
}

// New returns a default-configured scheduler for name, or a typed
// *UnknownSchedulerError naming the valid set.
func (r *Registry) New(name string) (Scheduler, error) {
	reg, ok := r.byName[name]
	if !ok {
		return nil, &UnknownSchedulerError{Name: name, Known: r.Names()}
	}
	return reg.New(), nil
}

// Names returns the registered names in registration order (the
// canonical display and iteration order).
func (r *Registry) Names() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// SortedNames returns the registered names sorted lexicographically.
func (r *Registry) SortedNames() []string {
	out := r.Names()
	sort.Strings(out)
	return out
}

// builtin is the process-wide registry, built once. Registration order
// is the presentation order: the engine's historical default first.
var builtin = sync.OnceValue(func() *Registry {
	r := NewRegistry()
	r.MustRegister(Registration{
		Name:    "gto",
		Summary: NewGTO().Summary(),
		New:     func() Scheduler { return NewGTO() },
	})
	r.MustRegister(Registration{
		Name:    "lrr",
		Summary: NewLRR().Summary(),
		New:     func() Scheduler { return NewLRR() },
	})
	r.MustRegister(Registration{
		Name:    "wasp",
		Summary: DefaultWaSP().Summary(),
		New:     func() Scheduler { return DefaultWaSP() },
	})
	return r
})

// Builtin returns the registry of every built-in warp scheduler. It is
// the single source of the name→policy mapping: CLIs list it, the
// service and archconfig validate against it, and an unknown name
// fails here with a typed *UnknownSchedulerError and nowhere else.
func Builtin() *Registry { return builtin() }
