package warpsched_test

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/memsys"
	"repro/internal/simt"
	"repro/internal/warpsched"
)

// divergeKernel is a small looping kernel with four-way divergence and
// one texture load per arm — enough structure that scheduling order
// matters, while every policy must complete the same work. Lanes exit
// after a slot-dependent number of iterations.
type divergeKernel struct{}

func (divergeKernel) Blocks() []simt.BlockInfo {
	return []simt.BlockInfo{
		{Name: "head", Insts: 2, Reconv: 5},
		{Name: "a", Insts: 1, MemInsts: 1},
		{Name: "b", Insts: 2, MemInsts: 1},
		{Name: "c", Insts: 3, MemInsts: 1},
		{Name: "d", Insts: 1, MemInsts: 1},
		{Name: "join", Insts: 1},
	}
}

func (divergeKernel) Entry() int { return 0 }

type divergeState struct {
	iters []int
}

func (k *divergeState) Blocks() []simt.BlockInfo { return divergeKernel{}.Blocks() }
func (k *divergeState) Entry() int               { return 0 }

func (k *divergeState) Step(slot int32, block int, res *simt.StepResult) {
	switch block {
	case 0:
		res.Next = 1 + int(slot)%4
	case 1, 2, 3, 4:
		res.Next = 5
		res.NMem = 1
		res.Mem[0] = simt.MemAccess{Addr: uint64(slot) * 64, Bytes: 4, Space: memsys.Tex}
	case 5:
		k.iters[slot]++
		if k.iters[slot] >= 3+int(slot)%5 {
			res.Next = simt.BlockExit
		} else {
			res.Next = 0
		}
	}
}

func testConfig(warps int) simt.Config {
	cfg := simt.DefaultConfig()
	cfg.NumSMX = 1
	cfg.MaxWarpsPerSMX = warps
	cfg.MaxCycles = 1 << 22
	return cfg
}

// runSMX runs the diverge kernel to completion on one SMX under cfg.
func runSMX(t *testing.T, cfg simt.Config) simt.Stats {
	t.Helper()
	k := &divergeState{iters: make([]int, cfg.MaxWarpsPerSMX*cfg.WarpSize)}
	s, err := simt.NewSMX(0, cfg, k, simt.Hooks{}, memsys.NewL2(cfg.Mem))
	if err != nil {
		t.Fatal(err)
	}
	s.LaunchAll(0)
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestCatalog(t *testing.T) {
	reg := warpsched.Builtin()
	want := []string{"gto", "lrr", "wasp"}
	if got := reg.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("catalog names = %v, want %v", got, want)
	}
	for _, name := range want {
		r, ok := reg.Lookup(name)
		if !ok || r.Summary == "" {
			t.Errorf("%s: missing registration or empty summary", name)
		}
		s, err := reg.New(name)
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("New(%s).Name() = %s", name, s.Name())
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s default config rejected: %v", name, err)
		}
		if s.Factory() == nil {
			t.Errorf("%s: nil factory", name)
		}
	}
}

func TestUnknownScheduler(t *testing.T) {
	_, err := warpsched.Builtin().New("fifo")
	var ue *warpsched.UnknownSchedulerError
	if !errors.As(err, &ue) {
		t.Fatalf("want *UnknownSchedulerError, got %v", err)
	}
	if ue.Name != "fifo" || len(ue.Known) != 3 {
		t.Errorf("error carries name=%q known=%v", ue.Name, ue.Known)
	}
}

func TestRegistryRejectsBadRegistrations(t *testing.T) {
	r := warpsched.NewRegistry()
	if err := r.Register(warpsched.Registration{Name: "", New: func() warpsched.Scheduler { return warpsched.NewGTO() }}); err == nil {
		t.Error("empty name accepted")
	}
	if err := r.Register(warpsched.Registration{Name: "x"}); err == nil {
		t.Error("nil factory accepted")
	}
	ok := warpsched.Registration{Name: "x", New: func() warpsched.Scheduler { return warpsched.NewGTO() }}
	if err := r.Register(ok); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(ok); err == nil {
		t.Error("duplicate accepted")
	}
}

// The registry GTO/LRR policies must be byte-identical to the legacy
// enum schedulers: same scan, devirtualized the same way, so every
// counter of a completed run matches exactly.
func TestFactoryMatchesEnum(t *testing.T) {
	cases := []struct {
		name string
		enum simt.SchedPolicy
	}{
		{"gto", simt.SchedGTO},
		{"lrr", simt.SchedRR},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			legacy := testConfig(6)
			legacy.Scheduler = tc.enum
			viaEnum := runSMX(t, legacy)

			sched, err := warpsched.Builtin().New(tc.name)
			if err != nil {
				t.Fatal(err)
			}
			viaReg := testConfig(6)
			viaReg.Scheduler = tc.enum // factory must win over the enum
			viaReg.SchedFactory = sched.Factory()
			if got := runSMX(t, viaReg); got != viaEnum {
				t.Errorf("registry %s diverged from enum: %+v vs %+v", tc.name, got, viaEnum)
			}
		})
	}
}

// WaSP must be deterministic (two runs identical) and complete the
// same work as GTO: scheduling changes timing, never retirement or
// instruction counts.
func TestWaSPDeterministicSameWork(t *testing.T) {
	sched, err := warpsched.Builtin().New("wasp")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(8)
	cfg.SchedFactory = sched.Factory()
	a := runSMX(t, cfg)
	b := runSMX(t, cfg)
	if a != b {
		t.Errorf("wasp nondeterministic: %+v vs %+v", a, b)
	}

	gto := runSMX(t, testConfig(8))
	if a.Retired != gto.Retired {
		t.Errorf("retired differ from gto: %d vs %d", a.Retired, gto.Retired)
	}
	if a.WarpInstrs != gto.WarpInstrs {
		t.Errorf("instructions differ from gto: %d vs %d", a.WarpInstrs, gto.WarpInstrs)
	}
	if a.Cycles == 0 {
		t.Error("cycles not recorded")
	}
}

// The WaSP tier contract: a follower warp is only ever picked when
// none of the scheduler's runners is issuable (tiers 2/3 run strictly
// after tier 1 comes up empty). Asserted by wrapping the bound Pick
// with a checker that re-inspects runner issuability on every
// follower pick.
func TestWaSPRunnersFirst(t *testing.T) {
	w := warpsched.DefaultWaSP()
	inner := w.Factory()
	cfg := testConfig(8)
	cfg.SchedulersPerSMX = 2
	followerPicks := 0
	cfg.SchedFactory = func(v simt.SchedView) simt.SchedProgram {
		prog := inner(v)
		pick := prog.Pick
		prog.Pick = func(sched int) int {
			got := pick(sched)
			if got >= 0 && got/v.NumSchedulers() >= w.Runners {
				followerPicks++
				for k, r := 0, sched; k < w.Runners && r < v.NumWarps(); k, r = k+1, r+v.NumSchedulers() {
					if v.Issuable(r) {
						t.Fatalf("follower %d picked for scheduler %d while runner %d issuable", got, sched, r)
					}
				}
			}
			return got
		}
		return prog
	}
	runSMX(t, cfg)
	if followerPicks == 0 {
		t.Error("no follower ever picked; tier contract vacuously true")
	}
}

func TestWaSPValidate(t *testing.T) {
	for _, bad := range []warpsched.WaSP{
		{Runners: 0, Distance: 64},
		{Runners: -1, Distance: 64},
		{Runners: 300, Distance: 64},
		{Runners: 2, Distance: 0},
		{Runners: 2, Distance: -5},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%+v accepted", bad)
		}
	}
	if err := warpsched.DefaultWaSP().Validate(); err != nil {
		t.Errorf("default rejected: %v", err)
	}
}

// steadyKernel loops forever: the zero-alloc measurement needs live
// warps throughout.
type steadyKernel struct{}

func (steadyKernel) Blocks() []simt.BlockInfo {
	return []simt.BlockInfo{
		{Name: "head", Insts: 1, Reconv: 5},
		{Name: "a", Insts: 1, MemInsts: 1},
		{Name: "b", Insts: 1, MemInsts: 1},
		{Name: "c", Insts: 1, MemInsts: 1},
		{Name: "d", Insts: 1, MemInsts: 1},
		{Name: "join", Insts: 1},
	}
}

func (steadyKernel) Entry() int { return 0 }

func (steadyKernel) Step(slot int32, block int, res *simt.StepResult) {
	switch block {
	case 0:
		res.Next = 1 + int(slot)%4
	case 1, 2, 3, 4:
		res.Next = 5
		res.NMem = 1
		res.Mem[0] = simt.MemAccess{Addr: uint64(slot) * 64, Bytes: 4, Space: memsys.Tex}
	case 5:
		res.Next = 0
	}
}

// TestWarpSchedZeroAlloc is TestSteadyCycleLoopZeroAlloc for the
// registry schedulers: once warm, a 64-cycle epoch under LRR or WaSP
// performs zero heap allocations — the per-SMX policy state (WaSP's
// counters) is allocated by the factory at NewSMX, and the bound
// Pick/OnIssue funcs never allocate.
func TestWarpSchedZeroAlloc(t *testing.T) {
	for _, name := range []string{"lrr", "wasp"} {
		t.Run(name, func(t *testing.T) {
			sched, err := warpsched.Builtin().New(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := testConfig(8)
			cfg.SchedFactory = sched.Factory()
			ordered := memsys.NewOrderedL2(cfg.Mem, 1)
			s, err := simt.NewSMX(0, cfg, steadyKernel{}, simt.Hooks{}, ordered)
			if err != nil {
				t.Fatal(err)
			}
			s.LaunchAll(0)
			epoch := func() {
				if err := s.RunEpoch(s.Cycle() + 64); err != nil {
					t.Fatal(err)
				}
				ordered.Drain()
				s.ResolveEpoch()
			}
			for i := 0; i < 50; i++ {
				epoch()
			}
			if s.LiveWarps() == 0 {
				t.Fatal("kernel retired during warm-up")
			}
			if avg := testing.AllocsPerRun(20, epoch); avg != 0 {
				t.Errorf("%s steady-state epoch allocates: %.1f allocs (want 0)", name, avg)
			}
		})
	}
}
