package warpsched

import "repro/internal/simt"

// GTO is greedy-then-oldest, the engine's historical default and the
// paper's Table 1 configuration, re-homed behind the registry: keep
// issuing from the same warp; on a stall fall back to the issuable
// warp that has waited longest (lowest id on ties). The canonical scan
// lives in the engine (SchedView.PickGTO), so the registry policy and
// the legacy simt.SchedGTO enum are the same code and byte-identical
// by construction.
type GTO struct{}

// NewGTO returns the greedy-then-oldest scheduler.
func NewGTO() GTO { return GTO{} }

// Name implements Scheduler.
func (GTO) Name() string { return "gto" }

// Summary implements Scheduler.
func (GTO) Summary() string {
	return "greedy-then-oldest (Table 1 default): stay on the issuing warp, else oldest-first"
}

// Validate implements Scheduler; GTO has no parameters.
func (GTO) Validate() error { return nil }

// Factory implements Scheduler.
func (GTO) Factory() simt.SchedFactory {
	return func(v simt.SchedView) simt.SchedProgram {
		return simt.SchedProgram{Pick: v.PickGTO}
	}
}
