package warpsched

import (
	"fmt"

	"repro/internal/simt"
)

// WaSP is a distance-based prefetch-mimicking scheduler after "WaSP:
// Warp Scheduling to Mimic Prefetching in Graphics Workloads"
// (PAPERS.md): a few runner warps per scheduler race ahead of the
// pack, touching BVH nodes and triangles first so their DRAM misses
// warm the caches, and the following warps — held a configurable
// instruction distance behind — then hit the lines the runners already
// fetched.
//
// Pick order per scheduler, oldest-first (lowest warp id on ties)
// within each tier:
//
//  1. issuable runners — the first Runners warps of the scheduler's
//     stride — so the warm-up front keeps extending its lead;
//  2. issuable followers lagging the lead runner by at least Distance
//     issued instructions — far enough behind that the runner's
//     accesses have landed;
//  3. any remaining issuable follower.
//
// Tier 3 makes the policy soft: when only close followers can issue,
// they issue. WaSP never idles an issue slot to enforce the distance,
// so it cannot deadlock against gate/parking policies (DRS parks donor
// warps for whole bounce phases; a hard-blocking scheduler would wait
// on warps that cannot progress).
//
// Per-warp issue counters live in per-SMX state allocated by the
// factory; the bound Pick/OnIssue funcs allocate nothing.
type WaSP struct {
	// Runners is the number of runner warps per scheduler (the warm-up
	// front). The paper-shaped default is 2 — with 4 schedulers per
	// SMX that is an 8-warp front per SMX.
	Runners int
	// Distance is the issued-instruction lead a runner must have over
	// a follower before the follower is preferred (tier 2). Default
	// 64, roughly the instruction footprint of one traversal+leaf
	// round trip at the paper's block sizes.
	Distance int64
}

// DefaultWaSP returns the default WaSP configuration (2 runners per
// scheduler, distance 64).
func DefaultWaSP() WaSP { return WaSP{Runners: 2, Distance: 64} }

// Name implements Scheduler.
func (WaSP) Name() string { return "wasp" }

// Summary implements Scheduler.
func (w WaSP) Summary() string {
	return "WaSP-style prefetch mimicry: runner warps race ahead to warm caches, followers trail at a distance"
}

// Validate implements Scheduler.
func (w WaSP) Validate() error {
	switch {
	case w.Runners < 1 || w.Runners > 256:
		return fmt.Errorf("warpsched: wasp runner count %d out of range [1,256]", w.Runners)
	case w.Distance < 1:
		return fmt.Errorf("warpsched: wasp distance %d must be positive", w.Distance)
	}
	return nil
}

// Factory implements Scheduler.
func (w WaSP) Factory() simt.SchedFactory {
	runners, distance := w.Runners, w.Distance
	return func(v simt.SchedView) simt.SchedProgram {
		st := &waspState{
			v:         v,
			runners:   runners,
			distance:  distance,
			nwarps:    v.NumWarps(),
			nsched:    v.NumSchedulers(),
			issued:    make([]int64, v.NumWarps()),
			runnerMax: make([]int64, v.NumSchedulers()),
		}
		return simt.SchedProgram{Pick: st.pick, OnIssue: st.onIssue}
	}
}

// waspState is one SMX's WaSP instance: per-warp issue counters plus
// the per-scheduler lead-runner watermark. Single-goroutine, like the
// SMX that owns it.
type waspState struct {
	v        simt.SchedView
	runners  int
	distance int64
	nwarps   int
	nsched   int
	// issued counts instructions issued per warp.
	issued []int64
	// runnerMax[sched] is the max issued count over the scheduler's
	// runner warps — the front the distance is measured from.
	runnerMax []int64
}

// onIssue maintains the progress counters; it runs once per issued
// instruction and allocates nothing.
func (st *waspState) onIssue(w int) {
	st.issued[w]++
	if w/st.nsched < st.runners {
		if sched := w % st.nsched; st.issued[w] > st.runnerMax[sched] {
			st.runnerMax[sched] = st.issued[w]
		}
	}
}

// pick implements the three-tier scan. Each tier walks the
// scheduler's stride in ascending warp id, so ties break lowest-id
// first like the builtin policies.
func (st *waspState) pick(sched int) int {
	v := st.v
	// Tier 1: runners, oldest-first.
	best := -1
	var bestLast int64
	firstFollower := st.nwarps
	for k, w := 0, sched; w < st.nwarps; k, w = k+1, w+st.nsched {
		if k >= st.runners {
			firstFollower = w
			break
		}
		if !v.Issuable(w) {
			continue
		}
		if last := v.LastIssued(w); best < 0 || last < bestLast {
			best, bestLast = w, last
		}
	}
	if best >= 0 {
		return best
	}
	// Tier 2: followers safely behind the lead runner, oldest-first.
	lead := st.runnerMax[sched]
	for w := firstFollower; w < st.nwarps; w += st.nsched {
		if !v.Issuable(w) || lead-st.issued[w] < st.distance {
			continue
		}
		if last := v.LastIssued(w); best < 0 || last < bestLast {
			best, bestLast = w, last
		}
	}
	if best >= 0 {
		return best
	}
	// Tier 3: any issuable follower, oldest-first (never idle a slot
	// to enforce the distance).
	for w := firstFollower; w < st.nwarps; w += st.nsched {
		if !v.Issuable(w) || lead-st.issued[w] >= st.distance {
			continue
		}
		if last := v.LastIssued(w); best < 0 || last < bestLast {
			best, bestLast = w, last
		}
	}
	return best
}
