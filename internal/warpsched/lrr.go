package warpsched

import "repro/internal/simt"

// LRR is loose round-robin: rotate through the scheduler's warps
// starting after the one it issued from last, taking the first
// issuable one. Warps progress in lockstep-ish fashion, which spreads
// memory accesses evenly but gives up GTO's latency-hiding greediness
// — the classic ablation baseline. The canonical scan lives in the
// engine (SchedView.PickLRR), shared with the legacy simt.SchedRR
// enum.
type LRR struct{}

// NewLRR returns the loose round-robin scheduler.
func NewLRR() LRR { return LRR{} }

// Name implements Scheduler.
func (LRR) Name() string { return "lrr" }

// Summary implements Scheduler.
func (LRR) Summary() string {
	return "loose round-robin: rotate past the last issuing warp, first issuable wins"
}

// Validate implements Scheduler; LRR has no parameters.
func (LRR) Validate() error { return nil }

// Factory implements Scheduler.
func (LRR) Factory() simt.SchedFactory {
	return func(v simt.SchedView) simt.SchedProgram {
		return simt.SchedProgram{Pick: v.PickLRR}
	}
}
