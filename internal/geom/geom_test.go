package geom

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/vec"
)

func TestRayAt(t *testing.T) {
	r := NewRay(vec.New(1, 2, 3), vec.New(1, 0, 0))
	if got := r.At(5); got != vec.New(6, 2, 3) {
		t.Errorf("At(5) = %v", got)
	}
	if r.TMin <= 0 || r.TMax != Inf {
		t.Errorf("default ray range wrong: %v %v", r.TMin, r.TMax)
	}
}

func TestAABBUnionExtend(t *testing.T) {
	a := AABB{Min: vec.New(0, 0, 0), Max: vec.New(1, 1, 1)}
	b := AABB{Min: vec.New(2, -1, 0), Max: vec.New(3, 0.5, 2)}
	u := a.Union(b)
	if !u.ContainsBox(a) || !u.ContainsBox(b) {
		t.Errorf("union does not contain inputs: %v", u)
	}
	e := EmptyAABB()
	if !e.IsEmpty() {
		t.Errorf("EmptyAABB not empty")
	}
	if got := e.Union(a); got != a {
		t.Errorf("empty union = %v", got)
	}
	if got := e.Extend(vec.New(1, 2, 3)); got.Min != got.Max {
		t.Errorf("extend of empty should be a point: %v", got)
	}
	if e.SurfaceArea() != 0 {
		t.Errorf("empty box area = %v", e.SurfaceArea())
	}
}

func TestAABBSurfaceArea(t *testing.T) {
	a := AABB{Min: vec.New(0, 0, 0), Max: vec.New(1, 2, 3)}
	if got := a.SurfaceArea(); got != 22 {
		t.Errorf("SurfaceArea = %v, want 22", got)
	}
}

func TestAABBIntersectRay(t *testing.T) {
	box := AABB{Min: vec.New(-1, -1, -1), Max: vec.New(1, 1, 1)}
	r := NewRay(vec.New(-5, 0, 0), vec.New(1, 0, 0))
	tt, ok := box.IntersectRay(r, r.InvDir())
	if !ok {
		t.Fatalf("axis ray missed box")
	}
	if tt < 3.9 || tt > 4.1 {
		t.Errorf("entry t = %v, want ~4", tt)
	}
	// Miss case: parallel offset ray.
	r2 := NewRay(vec.New(-5, 2, 0), vec.New(1, 0, 0))
	if _, ok := box.IntersectRay(r2, r2.InvDir()); ok {
		t.Errorf("offset ray should miss")
	}
	// Ray starting inside.
	r3 := NewRay(vec.New(0, 0, 0), vec.New(0, 1, 0))
	if _, ok := box.IntersectRay(r3, r3.InvDir()); !ok {
		t.Errorf("inside ray should hit")
	}
	// Ray pointing away.
	r4 := NewRay(vec.New(-5, 0, 0), vec.New(-1, 0, 0))
	if _, ok := box.IntersectRay(r4, r4.InvDir()); ok {
		t.Errorf("away ray should miss")
	}
	// Respect TMax.
	r5 := NewRay(vec.New(-5, 0, 0), vec.New(1, 0, 0))
	r5.TMax = 2
	if _, ok := box.IntersectRay(r5, r5.InvDir()); ok {
		t.Errorf("box beyond TMax should miss")
	}
}

func TestTriangleBasics(t *testing.T) {
	tri := Triangle{A: vec.New(0, 0, 0), B: vec.New(1, 0, 0), C: vec.New(0, 1, 0)}
	if got := tri.Area(); got != 0.5 {
		t.Errorf("Area = %v", got)
	}
	n := tri.Normal().Norm()
	if n != vec.New(0, 0, 1) {
		t.Errorf("Normal = %v", n)
	}
	c := tri.Centroid()
	if !tri.Bounds().Contains(c) {
		t.Errorf("centroid outside bounds")
	}
}

func TestTriangleIntersect(t *testing.T) {
	tri := Triangle{A: vec.New(0, 0, 0), B: vec.New(1, 0, 0), C: vec.New(0, 1, 0)}
	// Hit through the interior.
	r := NewRay(vec.New(0.25, 0.25, -1), vec.New(0, 0, 1))
	tt, u, v, ok := tri.Intersect(r, Inf)
	if !ok {
		t.Fatalf("expected hit")
	}
	if tt < 0.99 || tt > 1.01 {
		t.Errorf("t = %v", tt)
	}
	if u < 0.24 || u > 0.26 || v < 0.24 || v > 0.26 {
		t.Errorf("barycentrics = %v %v", u, v)
	}
	// Miss outside.
	r2 := NewRay(vec.New(0.9, 0.9, -1), vec.New(0, 0, 1))
	if _, _, _, ok := tri.Intersect(r2, Inf); ok {
		t.Errorf("outside ray hit")
	}
	// Parallel ray.
	r3 := NewRay(vec.New(0, 0, -1), vec.New(1, 0, 0))
	if _, _, _, ok := tri.Intersect(r3, Inf); ok {
		t.Errorf("parallel ray hit")
	}
	// Behind origin.
	r4 := NewRay(vec.New(0.25, 0.25, 1), vec.New(0, 0, 1))
	if _, _, _, ok := tri.Intersect(r4, Inf); ok {
		t.Errorf("behind-origin hit")
	}
	// tMax clipping.
	if _, _, _, ok := tri.Intersect(r, 0.5); ok {
		t.Errorf("hit beyond tMax accepted")
	}
}

func TestNoHitSentinel(t *testing.T) {
	if NoHit.TriIndex != -1 || NoHit.T != Inf {
		t.Errorf("NoHit = %+v", NoHit)
	}
}

// Property: a ray aimed at a random point inside a box always hits it.
func TestQuickRayAtBoxHits(t *testing.T) {
	f := func(px, py, pz, ox, oy, oz float32) bool {
		box := AABB{Min: vec.New(-10, -10, -10), Max: vec.New(10, 10, 10)}
		target := vec.New(px, py, pz)           // inside box by construction
		origin := vec.New(ox, oy, oz).Scale(50) // can be in or out
		d := target.Sub(origin)
		if d.Len() < 1e-3 {
			return true
		}
		r := NewRay(origin, d.Norm())
		_, ok := box.IntersectRay(r, r.InvDir())
		return ok
	}
	cfg := &quick.Config{MaxCount: 300, Values: func(args []reflect.Value, rnd *rand.Rand) {
		for i := 0; i < 3; i++ { // target inside [-9,9]^3
			args[i] = reflect.ValueOf(float32(rnd.Float64()*18 - 9))
		}
		for i := 3; i < 6; i++ {
			args[i] = reflect.ValueOf(float32(rnd.Float64()*2 - 1))
		}
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: triangle hit point reconstructed from barycentrics matches
// the ray evaluation at the returned t.
func TestQuickTriangleBarycentricConsistency(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	randV := func(s float32) vec.V3 {
		return vec.New(
			float32(rnd.Float64()*2-1)*s,
			float32(rnd.Float64()*2-1)*s,
			float32(rnd.Float64()*2-1)*s)
	}
	for i := 0; i < 300; i++ {
		tri := Triangle{A: randV(5), B: randV(5), C: randV(5)}
		if tri.Area() < 1e-3 {
			continue
		}
		// Aim at a random interior point.
		u := float32(rnd.Float64())
		v := float32(rnd.Float64()) * (1 - u)
		p := tri.A.Scale(1 - u - v).Add(tri.B.Scale(u)).Add(tri.C.Scale(v))
		origin := p.Add(tri.Normal().Norm().Scale(3)).Add(randV(0.5))
		d := p.Sub(origin).Norm()
		r := NewRay(origin, d)
		tt, hu, hv, ok := tri.Intersect(r, Inf)
		if !ok {
			// Grazing precision misses are acceptable near edges.
			if u > 0.05 && v > 0.05 && u+v < 0.95 {
				t.Fatalf("interior aim missed: tri=%+v u=%v v=%v", tri, u, v)
			}
			continue
		}
		q := tri.A.Scale(1 - hu - hv).Add(tri.B.Scale(hu)).Add(tri.C.Scale(hv))
		if q.Sub(r.At(tt)).Len() > 1e-2 {
			t.Fatalf("barycentric point mismatch: %v vs %v", q, r.At(tt))
		}
	}
}

// Property: triangle bounds contain all three vertices.
func TestQuickTriangleBounds(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz, cx, cy, cz float32) bool {
		tri := Triangle{A: vec.New(ax, ay, az), B: vec.New(bx, by, bz), C: vec.New(cx, cy, cz)}
		b := tri.Bounds()
		return b.Contains(tri.A) && b.Contains(tri.B) && b.Contains(tri.C)
	}
	cfg := &quick.Config{MaxCount: 200, Values: func(args []reflect.Value, rnd *rand.Rand) {
		for i := range args {
			args[i] = reflect.ValueOf(float32(rnd.Float64()*100 - 50))
		}
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
