// Package geom provides the ray, bounding-box and triangle primitives
// shared by the CPU reference tracer and the simulated GPU kernels.
package geom

import (
	"math"

	"repro/internal/vec"
)

// Inf is a large float32 used as "no hit" ray parameter.
const Inf = float32(math.MaxFloat32)

// Ray is a half line origin + t*dir for t in [TMin, TMax].
type Ray struct {
	Origin vec.V3
	Dir    vec.V3
	TMin   float32
	TMax   float32
}

// NewRay builds a ray with the default parametric range (1e-4, Inf).
// The small TMin avoids self-intersection at the originating surface.
func NewRay(o, d vec.V3) Ray {
	return Ray{Origin: o, Dir: d, TMin: 1e-4, TMax: Inf}
}

// At returns the point at parameter t along the ray.
func (r Ray) At(t float32) vec.V3 { return r.Origin.Add(r.Dir.Scale(t)) }

// InvDir returns component-wise 1/Dir. Division by zero yields ±Inf,
// which the slab test below handles correctly for axis-parallel rays.
func (r Ray) InvDir() vec.V3 {
	return vec.V3{X: 1 / r.Dir.X, Y: 1 / r.Dir.Y, Z: 1 / r.Dir.Z}
}

// AABB is an axis-aligned bounding box.
type AABB struct {
	Min, Max vec.V3
}

// EmptyAABB returns the inverted box that absorbs any union.
func EmptyAABB() AABB {
	return AABB{Min: vec.Splat(Inf), Max: vec.Splat(-Inf)}
}

// Union returns the smallest box containing both a and b.
func (a AABB) Union(b AABB) AABB {
	return AABB{Min: a.Min.Min(b.Min), Max: a.Max.Max(b.Max)}
}

// Extend returns the smallest box containing a and point p.
func (a AABB) Extend(p vec.V3) AABB {
	return AABB{Min: a.Min.Min(p), Max: a.Max.Max(p)}
}

// Centroid returns the center of the box.
func (a AABB) Centroid() vec.V3 { return a.Min.Add(a.Max).Scale(0.5) }

// Diagonal returns Max - Min.
func (a AABB) Diagonal() vec.V3 { return a.Max.Sub(a.Min) }

// SurfaceArea returns the total surface area of the box; an empty
// (inverted) box has area 0.
func (a AABB) SurfaceArea() float32 {
	d := a.Diagonal()
	if d.X < 0 || d.Y < 0 || d.Z < 0 {
		return 0
	}
	return 2 * (d.X*d.Y + d.Y*d.Z + d.Z*d.X)
}

// Contains reports whether point p lies inside or on the box.
func (a AABB) Contains(p vec.V3) bool {
	return p.X >= a.Min.X && p.X <= a.Max.X &&
		p.Y >= a.Min.Y && p.Y <= a.Max.Y &&
		p.Z >= a.Min.Z && p.Z <= a.Max.Z
}

// ContainsBox reports whether b is fully inside a.
func (a AABB) ContainsBox(b AABB) bool {
	return a.Contains(b.Min) && a.Contains(b.Max)
}

// IsEmpty reports whether the box is inverted (contains nothing).
func (a AABB) IsEmpty() bool {
	d := a.Diagonal()
	return d.X < 0 || d.Y < 0 || d.Z < 0
}

// IntersectRay performs the slab test against ray r using precomputed
// inverse direction. It returns the entry parameter and whether the box
// is hit within (tmin, tmax).
func (a AABB) IntersectRay(r Ray, invDir vec.V3) (float32, bool) {
	t0x := (a.Min.X - r.Origin.X) * invDir.X
	t1x := (a.Max.X - r.Origin.X) * invDir.X
	if t0x > t1x {
		t0x, t1x = t1x, t0x
	}
	t0y := (a.Min.Y - r.Origin.Y) * invDir.Y
	t1y := (a.Max.Y - r.Origin.Y) * invDir.Y
	if t0y > t1y {
		t0y, t1y = t1y, t0y
	}
	t0z := (a.Min.Z - r.Origin.Z) * invDir.Z
	t1z := (a.Max.Z - r.Origin.Z) * invDir.Z
	if t0z > t1z {
		t0z, t1z = t1z, t0z
	}
	tEnter := max3(t0x, t0y, t0z)
	tExit := min3(t1x, t1y, t1z)
	tEnter = maxf(tEnter, r.TMin)
	tExit = minf(tExit, r.TMax)
	return tEnter, tEnter <= tExit
}

// Triangle is an indexed triangle with a material id. Vertices are
// stored inline so the simulated kernels can treat triangle records as
// fixed-size memory objects.
type Triangle struct {
	A, B, C  vec.V3
	Material int32
}

// Bounds returns the triangle's bounding box.
func (t Triangle) Bounds() AABB {
	return AABB{Min: t.A.Min(t.B).Min(t.C), Max: t.A.Max(t.B).Max(t.C)}
}

// Centroid returns the triangle's centroid.
func (t Triangle) Centroid() vec.V3 {
	return t.A.Add(t.B).Add(t.C).Scale(1.0 / 3.0)
}

// Normal returns the (unnormalized) geometric normal.
func (t Triangle) Normal() vec.V3 {
	return t.B.Sub(t.A).Cross(t.C.Sub(t.A))
}

// Area returns the triangle's surface area.
func (t Triangle) Area() float32 { return t.Normal().Len() / 2 }

// Hit records a ray/triangle intersection.
type Hit struct {
	T        float32 // ray parameter of the hit
	U, V     float32 // barycentric coordinates
	TriIndex int32   // index of the triangle hit, -1 if none
}

// NoHit is the sentinel returned when a ray misses everything.
var NoHit = Hit{T: Inf, TriIndex: -1}

// Intersect runs the Möller–Trumbore ray/triangle test. It returns the
// hit parameters and whether the ray hits within (r.TMin, tMax).
func (t Triangle) Intersect(r Ray, tMax float32) (tt, u, v float32, ok bool) {
	e1 := t.B.Sub(t.A)
	e2 := t.C.Sub(t.A)
	p := r.Dir.Cross(e2)
	det := e1.Dot(p)
	if det > -1e-9 && det < 1e-9 {
		return 0, 0, 0, false
	}
	inv := 1 / det
	s := r.Origin.Sub(t.A)
	u = s.Dot(p) * inv
	if u < 0 || u > 1 {
		return 0, 0, 0, false
	}
	q := s.Cross(e1)
	v = r.Dir.Dot(q) * inv
	if v < 0 || u+v > 1 {
		return 0, 0, 0, false
	}
	tt = e2.Dot(q) * inv
	if tt <= r.TMin || tt >= tMax {
		return 0, 0, 0, false
	}
	return tt, u, v, true
}

func maxf(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}

func max3(a, b, c float32) float32 { return maxf(a, maxf(b, c)) }
func min3(a, b, c float32) float32 { return minf(a, minf(b, c)) }
