// Package statcheck verifies, by reflection, that a Stats struct's Add
// method covers every numeric field. The simulator folds per-SMX stats
// into device totals through these Add methods; a field missed by Add
// does not fail anything — the counter silently reads zero in every
// report. That bug class already happened once (the DRS RaysMoved
// counter was dropped by a hand-written merge in the harness), so each
// Stats-owning package pins its Add with AddCovers in its tests.
//
// statcheck covers the dynamic half of the completeness story (Add
// merges, exercised from tests). The static half — every `metrics:`
// tag reached by a RegisterStruct call, every content-addressed spec
// field reached by its Canonical encoder — lives in internal/srcgraph
// and runs under `drslint -mode graph`.
package statcheck

import (
	"fmt"
	"reflect"
)

// probeValue is what AddCovers plants in each source field. It must
// survive both additive merges (0 + 7 = 7) and max-style merges
// (max(0, 7) = 7), so any merge that reads the field at all propagates
// a nonzero value.
const probeValue = 7

// AddCovers checks that the Add method of zero's type covers every
// exported numeric field (recursively through nested structs and
// arrays): for each field it builds a source value with only that field
// set, merges it into a zero destination with Add, and requires the
// field to come out nonzero. It returns an error naming the first
// uncovered field, or nil if Add covers everything.
//
// zero must be a struct value (e.g. regfile.Stats{}) whose pointer type
// has a method with signature Add(T).
func AddCovers(zero any) error {
	typ := reflect.TypeOf(zero)
	if typ == nil || typ.Kind() != reflect.Struct {
		return fmt.Errorf("statcheck: want a struct value, got %T", zero)
	}
	m, ok := reflect.PointerTo(typ).MethodByName("Add")
	if !ok {
		return fmt.Errorf("statcheck: %s has no Add method on its pointer type", typ)
	}
	if m.Type.NumIn() != 2 || m.Type.In(1) != typ || m.Type.NumOut() != 0 {
		return fmt.Errorf("statcheck: %s.Add has signature %s, want func(*%s) Add(%s)",
			typ, m.Type, typ.Name(), typ.Name())
	}
	var paths []fieldPath
	collectNumericPaths(typ, nil, &paths)
	if len(paths) == 0 {
		return fmt.Errorf("statcheck: %s has no exported numeric fields", typ)
	}
	for _, p := range paths {
		src := reflect.New(typ).Elem()
		setProbe(fieldAt(src, p))
		dst := reflect.New(typ)
		dst.MethodByName("Add").Call([]reflect.Value{src})
		if fieldAt(dst.Elem(), p).IsZero() {
			return fmt.Errorf("statcheck: %s.Add drops field %s (source had %d, merged destination has zero)",
				typ, p, probeValue)
		}
	}
	return nil
}

// fieldPath addresses one numeric leaf: a sequence of struct field or
// array element indices.
type fieldPath []pathStep

type pathStep struct {
	name  string // field name, or "[i]" for array elements
	index int
}

func (p fieldPath) String() string {
	s := ""
	for _, st := range p {
		if s != "" && st.name[0] != '[' {
			s += "."
		}
		s += st.name
	}
	return s
}

// collectNumericPaths walks typ, appending a path for every exported
// numeric leaf. For arrays one representative element (index 0) is
// enough: Add merges arrays with a loop or not at all.
func collectNumericPaths(typ reflect.Type, prefix fieldPath, out *[]fieldPath) {
	switch typ.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64:
		*out = append(*out, append(fieldPath{}, prefix...))
	case reflect.Struct:
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i)
			if !f.IsExported() {
				continue
			}
			collectNumericPaths(f.Type, append(prefix, pathStep{name: f.Name, index: i}), out)
		}
	case reflect.Array:
		if typ.Len() > 0 {
			collectNumericPaths(typ.Elem(), append(prefix, pathStep{name: "[0]", index: 0}), out)
		}
	}
}

// fieldAt resolves a path inside v.
func fieldAt(v reflect.Value, p fieldPath) reflect.Value {
	for _, st := range p {
		if v.Kind() == reflect.Array {
			v = v.Index(st.index)
		} else {
			v = v.Field(st.index)
		}
	}
	return v
}

func setProbe(v reflect.Value) {
	switch v.Kind() {
	case reflect.Float32, reflect.Float64:
		v.SetFloat(probeValue)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(probeValue)
	default:
		v.SetInt(probeValue)
	}
}
