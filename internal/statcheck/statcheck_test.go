package statcheck

import (
	"strings"
	"testing"
)

type good struct {
	A int64
	B int64
	// Hist exercises array coverage.
	Hist [4]int64
	// Max exercises max-style merges.
	Max int64
	// unexported fields are ignored.
	hidden int64 //nolint:unused
	// Rate is a non-merged derived field would be a bug — but floats
	// count as numeric and must be merged too.
	Rate float64
}

func (g *good) Add(o good) {
	g.A += o.A
	g.B += o.B
	for i := range g.Hist {
		g.Hist[i] += o.Hist[i]
	}
	if o.Max > g.Max {
		g.Max = o.Max
	}
	g.Rate += o.Rate
}

type leaky struct {
	A int64
	B int64 // not merged by Add
}

func (l *leaky) Add(o leaky) { l.A += o.A }

type nested struct {
	Inner good
	N     int64
}

func (n *nested) Add(o nested) {
	n.Inner.Add(o.Inner)
	n.N += o.N
}

type nestedLeaky struct {
	Inner leaky
	N     int64
}

func (n *nestedLeaky) Add(o nestedLeaky) {
	n.Inner.Add(o.Inner)
	n.N += o.N
}

type noAdd struct{ A int64 }

type badSig struct{ A int64 }

func (b *badSig) Add(o *badSig) { b.A += o.A }

func TestAddCovers(t *testing.T) {
	if err := AddCovers(good{}); err != nil {
		t.Errorf("good: %v", err)
	}
	if err := AddCovers(nested{}); err != nil {
		t.Errorf("nested: %v", err)
	}
	if err := AddCovers(leaky{}); err == nil {
		t.Error("leaky: uncovered field B not detected")
	} else if !strings.Contains(err.Error(), "B") {
		t.Errorf("leaky: error does not name field B: %v", err)
	}
	if err := AddCovers(nestedLeaky{}); err == nil {
		t.Error("nestedLeaky: uncovered nested field not detected")
	} else if !strings.Contains(err.Error(), "Inner.B") {
		t.Errorf("nestedLeaky: error does not name Inner.B: %v", err)
	}
	if err := AddCovers(noAdd{}); err == nil {
		t.Error("noAdd: missing Add method not detected")
	}
	if err := AddCovers(badSig{}); err == nil {
		t.Error("badSig: wrong Add signature not detected")
	}
	if err := AddCovers(42); err == nil {
		t.Error("non-struct input not rejected")
	}
	if err := AddCovers(nil); err == nil {
		t.Error("nil input not rejected")
	}
}
