package core

import (
	"fmt"

	"repro/internal/kernels"
	"repro/internal/metrics"
	"repro/internal/simt"
)

// Stats counts the DRS control's activity.
type Stats struct {
	// Remaps counts warp-to-row rebinds performed at rdctrl.
	Remaps int64
	// SwapsStarted / SwapsCompleted count ray moves through the swap
	// buffers; SwapCycleSum accumulates their durations so the mean can
	// be compared with the paper's per-configuration averages (§4.3).
	SwapsStarted   int64
	SwapsCompleted int64
	SwapCycleSum   int64
	// RaysMoved counts individual rays relocated by the swap engine.
	RaysMoved int64
	// IdealShuffles counts instantaneous reorganizations in Ideal mode.
	IdealShuffles int64
}

// Add merges o into s. Every numeric field must be merged: the device
// totals fold the per-SMX control stats with this method
// (statcheck.AddCovers guards field coverage).
func (s *Stats) Add(o Stats) {
	s.Remaps += o.Remaps
	s.SwapsStarted += o.SwapsStarted
	s.SwapsCompleted += o.SwapsCompleted
	s.SwapCycleSum += o.SwapCycleSum
	s.RaysMoved += o.RaysMoved
	s.IdealShuffles += o.IdealShuffles
}

// MeanSwapCycles returns the average duration of a completed ray move.
func (s Stats) MeanSwapCycles() float64 {
	if s.SwapsCompleted == 0 {
		return 0
	}
	return float64(s.SwapCycleSum) / float64(s.SwapsCompleted)
}

// transfer is one register variable move in flight through a swap
// buffer (read cycle + write cycle).
type transfer struct {
	doneAt int64
}

// move is one batched ray relocation between two rows. Each swap
// buffer holds one variable for up to warpSize-1 lanes (§4.5's
// 6 x (warpSize-1) x 32 bit sizing), so one operation carries up to 31
// rays: 17 row reads and 17 row writes move every selected ray's
// registers — twice that when the operation exchanges rays in both
// directions.
type move struct {
	srcRow, dstRow     int
	srcCells, dstCells []int
	exchange           bool
	started            int64
	varsIssued         int
	varsTotal          int
	inflight           []transfer
}

// role is one of the three shuffle engines (§3.2.4): fetch-state
// collecting, leaf-state collecting, inner-state ejecting.
type role struct {
	name    string
	buffers int
	op      *move
	// want is the ray state this role collects (StateFetch/StateLeaf)
	// or ejects (StateInner).
	want kernels.State
	// noMoveVersion caches a fruitless findMove: while the control's
	// mutation version is unchanged, re-planning would rescan every row
	// and reach the same nil. ^0 = no cached outcome.
	noMoveVersion uint64
	// opStore and the cell buffers are reused across this role's
	// operations (one op in flight per role at a time) so steady-state
	// shuffle planning does not allocate.
	opStore move
	srcBuf  []int
	dstBuf  []int
}

// Control is the per-SMX DRS control logic.
type Control struct {
	cfg    Config
	kernel *kernels.WhileIf
	smx    *simt.SMX

	// rows holds the ray state table organization: rows[r][c] is the
	// kernel slot in row r, cell c (-1 = empty cell).
	rows [][]int32
	// warpRow / rowWarp implement the renaming table.
	warpRow []int
	rowWarp []int
	// rowBusy counts in-flight moves touching the row; busy rows cannot
	// be bound to warps or used by new moves.
	rowBusy []int

	// Incremental ray state table bookkeeping: slotRow maps each kernel
	// slot to its current row, rowCounts[r][s] counts rays of state s
	// in row r, and workSlots counts all non-empty slots. The kernel's
	// state-change listener keeps these current so the gate and the
	// swap planner run in O(1)/O(rows) instead of scanning every cell.
	slotRow   []int32
	rowCounts [][4]int
	workSlots int
	// rowMixed / numMixed track which rows currently hold more than one
	// distinct non-empty state, so the swap planner can skip work when
	// every row is uniform.
	rowMixed []bool
	numMixed int

	// version counts every mutation of the state the gate and the swap
	// planner read: ray state transitions (onStateChange), row content
	// and busy changes (planMove/completeMove/idealShuffle) and binding
	// changes (bind/unbind). Pool().Remaining() is covered too: the
	// kernel fires the state listener on every pool fetch. A warp whose
	// gate stalled at version v must stall again at version v — the gate
	// records (warp, version) on stall and skips the O(rows) rescan
	// until something actually changes. Byte-identical by construction.
	version uint64
	// stallVersion[w] is the version at which warp w's gate last
	// returned a stall (^0 = never).
	stallVersion []uint64

	// traceOps, when set, receives a one-line description of every
	// planned swap (debugging/inspection aid).
	traceOps func(string)

	roles [3]role

	stats Stats

	scratch []int32
}

// NewControl builds the DRS control for one SMX, organizing the
// kernel's slots into rows. The kernel must have Rows()*warpSize slots.
func NewControl(cfg Config, kernel *kernels.WhileIf) (*Control, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ws := cfg.warpSize()
	nRows := cfg.Rows()
	nWarps := cfg.Warps()
	// The two reorganization rows are empty; all other rows hold live
	// slots. The kernel therefore needs (nRows-2)*ws slots.
	need := (nRows - 2) * ws
	if kernel.NumSlots() != need {
		return nil, fmt.Errorf("core: kernel has %d slots, config needs %d", kernel.NumSlots(), need)
	}
	c := &Control{
		cfg:     cfg,
		kernel:  kernel,
		rows:    make([][]int32, nRows),
		warpRow: make([]int, nWarps),
		rowWarp: make([]int, nRows),
		rowBusy: make([]int, nRows),
		scratch: make([]int32, ws),
	}
	c.stallVersion = make([]uint64, nWarps)
	for i := range c.stallVersion {
		c.stallVersion[i] = ^uint64(0)
	}
	c.slotRow = make([]int32, kernel.NumSlots())
	c.rowCounts = make([][4]int, nRows)
	slot := int32(0)
	for r := 0; r < nRows; r++ {
		c.rows[r] = make([]int32, ws)
		for l := 0; l < ws; l++ {
			if r < nRows-2 {
				c.rows[r][l] = slot
				c.slotRow[slot] = int32(r)
				c.rowCounts[r][kernel.StateOf(slot)]++
				if kernel.StateOf(slot) != kernels.StateEmpty {
					c.workSlots++
				}
				slot++
			} else {
				c.rows[r][l] = -1
			}
		}
		c.rowWarp[r] = -1
	}
	c.rowMixed = make([]bool, nRows)
	kernel.Listener = c.onStateChange
	for w := 0; w < nWarps; w++ {
		c.warpRow[w] = w
		c.rowWarp[w] = w
	}
	bpr := cfg.buffersPerRole()
	c.roles = [3]role{
		{name: "fetch-collect", buffers: bpr, want: kernels.StateFetch, noMoveVersion: ^uint64(0)},
		{name: "leaf-collect", buffers: bpr, want: kernels.StateLeaf, noMoveVersion: ^uint64(0)},
		{name: "inner-eject", buffers: bpr, want: kernels.StateInner, noMoveVersion: ^uint64(0)},
	}
	return c, nil
}

// Hooks returns the engine hooks wiring this control to an SMX.
func (c *Control) Hooks() simt.Hooks {
	return simt.Hooks{
		Gate: c.gate,
		Tick: c.tick,
	}
}

// Launch starts the SMX's warps on their initial rows.
func (c *Control) Launch(s *simt.SMX) {
	c.smx = s
	for w := 0; w < len(c.warpRow); w++ {
		s.LaunchMapped(w, c.maskedSlots(c.warpRow[w]))
	}
}

// Stats returns a snapshot of the control's counters.
func (c *Control) Stats() Stats { return c.stats }

// RegisterMetrics registers the control's counters under prefix
// ("smx3/drs") in the unified registry, and its swap activity as an
// epoch time-series column so shuffle traffic is visible per epoch.
func (c *Control) RegisterMetrics(col *metrics.Collector, prefix string) {
	col.Registry.RegisterStruct(prefix, &c.stats)
	col.Series.Column(prefix+"/swaps_started", func() int64 { return c.stats.SwapsStarted })
}

// Config returns the control's configuration.
func (c *Control) Config() Config { return c.cfg }

// maskedSlots returns the row's slots with empty-state cells masked to
// -1, reusing the scratch buffer.
func (c *Control) maskedSlots(row int) []int32 {
	out := c.scratch
	for l, s := range c.rows[row] {
		if s >= 0 && c.kernel.StateOf(s) != kernels.StateEmpty {
			out[l] = s
		} else {
			out[l] = -1
		}
	}
	return out
}

// onStateChange mirrors kernel ray state transitions into the row
// counters (the DRS ray state table updates of §3.2.2).
func (c *Control) onStateChange(slot int32, old, new kernels.State) {
	c.version++
	r := c.slotRow[slot]
	c.rowCounts[r][old]--
	c.rowCounts[r][new]++
	if old == kernels.StateEmpty {
		c.workSlots++
	}
	if new == kernels.StateEmpty {
		c.workSlots--
	}
	c.refreshMixed(int(r))
}

// refreshMixed recomputes row r's mixed flag from its counters.
func (c *Control) refreshMixed(r int) {
	distinct := 0
	for s := kernels.StateFetch; s <= kernels.StateLeaf; s++ {
		if c.rowCounts[r][s] > 0 {
			distinct++
		}
	}
	mixed := distinct > 1
	if mixed != c.rowMixed[r] {
		c.rowMixed[r] = mixed
		if mixed {
			c.numMixed++
		} else {
			c.numMixed--
		}
	}
}

// rowState classifies a row from the counters: its uniform non-empty
// state (if any), whether it is uniform, and whether it holds work.
func (c *Control) rowState(row int) (st kernels.State, uniform, anyWork bool) {
	counts := &c.rowCounts[row]
	distinct := 0
	for s := kernels.StateFetch; s <= kernels.StateLeaf; s++ {
		if counts[s] > 0 {
			distinct++
			st = s
		}
	}
	return st, distinct <= 1, distinct > 0
}

// anyWorkLeft reports whether any slot still holds a non-empty state.
func (c *Control) anyWorkLeft() bool { return c.workSlots > 0 }

// unbind releases warp w's row.
func (c *Control) unbind(w int) {
	if r := c.warpRow[w]; r >= 0 {
		c.rowWarp[r] = -1
		c.warpRow[w] = -1
		c.version++
	}
}

// bind attaches warp w to row r.
func (c *Control) bind(w, r int) {
	c.warpRow[w] = r
	c.rowWarp[r] = w
	c.version++
}

// gate implements the rdctrl issue semantics (§3.2.3): map the warp to
// a row of rays in the same state, or suspend its issue until ray
// shuffling produces one.
func (c *Control) gate(s *simt.SMX, warp int, now int64) simt.GateResult {
	// Stall memoization: the gate's whole decision reads state covered by
	// the mutation version (row counts, bindings, busy flags, pool
	// occupancy), and its only lasting side effects on the stall path —
	// unbind, an ideal regroup — bump it. So an unchanged version since
	// this warp's last stall means the full evaluation would stall again;
	// skip the O(rows) rescan. (The version is monotonic: equality
	// implies literally nothing changed in between.)
	if c.stallVersion[warp] == c.version {
		return simt.GateStall
	}
	if row := c.warpRow[warp]; row >= 0 {
		st, uniform, anyWork := c.rowState(row)
		full := anyWork && c.rowCounts[row][st] >= c.bindThreshold()
		if uniform && anyWork && c.rowBusy[row] == 0 &&
			(full || !c.canGrow(row, st)) {
			s.Warp(warp).SetMapping(c.maskedSlots(row), kernels.WiRdctrl)
			return simt.GateProceed
		}
		// The row diverged, drained, or should first be refilled by the
		// collectors: release it for shuffling.
		c.unbind(warp)
	}
	if c.cfg.Ideal {
		c.idealShuffle()
	}
	// Find the fullest unbound, un-busy, uniform row with work. A
	// partially-filled row is only handed out once shuffling cannot
	// grow it further (its state has no rays left in other free rows) —
	// otherwise the warp's issue stays suspended while the collectors
	// fill the row, like the filled leaf-collecting row of Figure 6.
	best, bestLive := -1, 0
	var bestState kernels.State
	for r := range c.rows {
		if c.rowWarp[r] >= 0 || c.rowBusy[r] > 0 {
			continue
		}
		st, uniform, anyWork := c.rowState(r)
		if !uniform || !anyWork {
			continue
		}
		if live := c.rowCounts[r][st]; live > bestLive {
			best, bestLive, bestState = r, live, st
		}
	}
	if best >= 0 {
		if bestLive >= c.bindThreshold() || !c.canGrow(best, bestState) {
			c.bind(warp, best)
			c.stats.Remaps++
			s.Warp(warp).SetMapping(c.maskedSlots(best), kernels.WiRdctrl)
			return simt.GateProceed
		}
	}
	if !c.anyWorkLeft() && c.kernel.Pool().Remaining() == 0 {
		return simt.GateExit
	}
	c.stallVersion[warp] = c.version
	return simt.GateStall
}

// bindThreshold returns the minimum live-ray count for handing a
// growable uniform row to a warp.
func (c *Control) bindThreshold() int {
	if c.cfg.BindThreshold > 0 {
		return c.cfg.BindThreshold
	}
	return c.cfg.warpSize() * 3 / 4
}

// canGrow reports whether shuffling could add more rays of the given
// state to row (some other unbound row still holds rays of it).
func (c *Control) canGrow(row int, st kernels.State) bool {
	for r := range c.rows {
		if r == row || c.rowWarp[r] >= 0 {
			continue
		}
		if c.rowCounts[r][st] > 0 {
			return true
		}
	}
	return false
}

// idealShuffle instantaneously regroups all rays of unbound rows by
// state (the one-cycle shuffle of Figure 8's idealized DRS). It is a
// no-op while every unbound row is already uniform.
func (c *Control) idealShuffle() {
	mixed := false
	if c.numMixed > 0 {
		for r := range c.rows {
			if c.rowMixed[r] && c.rowWarp[r] < 0 && c.rowBusy[r] == 0 {
				mixed = true
				break
			}
		}
	}
	if !mixed {
		return
	}
	c.version++
	var byState [4][]int32
	var freeRows []int
	for r := range c.rows {
		if c.rowWarp[r] >= 0 || c.rowBusy[r] > 0 {
			continue
		}
		freeRows = append(freeRows, r)
		for l, s := range c.rows[r] {
			if s >= 0 {
				st := c.kernel.StateOf(s)
				c.rowCounts[r][st]--
				if st != kernels.StateEmpty {
					byState[st] = append(byState[st], s)
				}
			}
			c.rows[r][l] = -1
		}
		c.refreshMixed(r)
	}
	ws := c.cfg.warpSize()
	capacity := len(freeRows) * ws
	remaining := 0
	for _, st := range []kernels.State{kernels.StateInner, kernels.StateLeaf, kernels.StateFetch} {
		remaining += len(byState[st])
	}
	pos := 0 // linear cell index over freeRows
	place := func(s int32) {
		r := freeRows[pos/ws]
		c.rows[r][pos%ws] = s
		c.slotRow[s] = int32(r)
		c.rowCounts[r][c.kernel.StateOf(s)]++
		c.refreshMixed(r)
		pos++
	}
	for _, st := range []kernels.State{kernels.StateInner, kernels.StateLeaf, kernels.StateFetch} {
		group := byState[st]
		if len(group) == 0 {
			continue
		}
		// Start each state on a fresh row so rows stay uniform — but
		// only if the padding still leaves room for every ray.
		if pad := (ws - pos%ws) % ws; pad > 0 && capacity-pos-pad >= remaining {
			pos += pad
		}
		for _, s := range group {
			place(s)
		}
		remaining -= len(group)
	}
	c.stats.IdealShuffles++
}

// tick advances the swap engine by one cycle (§3.2.4): each role
// progresses its in-flight register transfers and plans new ray moves.
func (c *Control) tick(s *simt.SMX, now int64) {
	if c.cfg.Ideal {
		return
	}
	for i := range c.roles {
		c.tickRole(&c.roles[i], s, now)
	}
}

func (c *Control) tickRole(r *role, s *simt.SMX, now int64) {
	if r.op != nil {
		op := r.op
		// Retire finished transfers.
		keep := op.inflight[:0]
		for _, t := range op.inflight {
			if t.doneAt > now {
				keep = append(keep, t)
			}
		}
		op.inflight = keep
		// Issue new transfers through free buffers, contending with the
		// register file banks.
		for len(op.inflight) < r.buffers && op.varsIssued < op.varsTotal {
			if !s.RF().TryShuffleTransfer(now, op.srcRow, op.dstRow, op.varsIssued%kernels.RayRegisters) {
				break // bank busy this cycle
			}
			op.inflight = append(op.inflight, transfer{doneAt: now + 2})
			op.varsIssued++
		}
		if op.varsIssued == op.varsTotal && len(op.inflight) == 0 {
			c.completeMove(op, now)
			r.op = nil
		}
	}
	if r.op == nil {
		r.op = c.planMove(r, now)
	}
}

// completeMove applies the batched ray relocation (or exchange) to the
// row table.
func (c *Control) completeMove(op *move, now int64) {
	for i := range op.srcCells {
		a := c.rows[op.srcRow][op.srcCells[i]]
		b := c.rows[op.dstRow][op.dstCells[i]]
		c.rows[op.dstRow][op.dstCells[i]] = a
		c.rows[op.srcRow][op.srcCells[i]] = b
		if a >= 0 {
			st := c.kernel.StateOf(a)
			c.rowCounts[op.srcRow][st]--
			c.rowCounts[op.dstRow][st]++
			c.slotRow[a] = int32(op.dstRow)
			c.stats.RaysMoved++
		}
		if b >= 0 {
			st := c.kernel.StateOf(b)
			c.rowCounts[op.dstRow][st]--
			c.rowCounts[op.srcRow][st]++
			c.slotRow[b] = int32(op.srcRow)
			c.stats.RaysMoved++
		}
	}
	c.refreshMixed(op.srcRow)
	c.refreshMixed(op.dstRow)
	c.rowBusy[op.srcRow]--
	c.rowBusy[op.dstRow]--
	c.version++
	c.stats.SwapsCompleted++
	c.stats.SwapCycleSum += now - op.started
}

// planMove selects the next batched ray move for a role following the
// greedy policy (§3.2.4): collect this role's state into a collector
// row, moving rays into empty cells when possible and exchanging them
// for rays of a different state otherwise.
func (c *Control) planMove(r *role, now int64) *move {
	// Fruitless plans are memoized on the mutation version: findMove is
	// pure, so until something changes it would rescan every row and
	// find nothing again.
	if r.noMoveVersion == c.version {
		return nil
	}
	src, dst, exch, srcCells, dstCells := c.findMove(r.want, r.srcBuf[:0], r.dstBuf[:0])
	if src < 0 {
		r.noMoveVersion = c.version
		return nil
	}
	c.rowBusy[src]++
	c.rowBusy[dst]++
	c.version++
	c.stats.SwapsStarted++
	if c.traceOps != nil {
		c.traceOps(fmt.Sprintf("op %s: donor=%d -> coll=%d rays=%d exch=%v donorCounts=%v collCounts=%v",
			r.name, src, dst, len(srcCells), exch, c.rowCounts[src], c.rowCounts[dst]))
	}
	vars := kernels.RayRegisters
	if exch {
		vars *= 2
	}
	// Recycle the role's op storage (one op in flight per role): the
	// cell slices alias the role's buffers, which the next plan reuses
	// only after completeMove has consumed them.
	r.srcBuf, r.dstBuf = srcCells, dstCells
	op := &r.opStore
	inflight := op.inflight[:0]
	*op = move{
		srcRow: src, dstRow: dst,
		srcCells: srcCells, dstCells: dstCells,
		exchange: exch, varsTotal: vars, started: now,
		inflight: inflight,
	}
	return op
}

// findMove plans one batched shuffle step for the given state: pick a
// donor row, pick the collector row, and pair up as many donor rays of
// the wanted state with collector cells as possible — empty cells
// first (plain moves), then cells holding a different live state
// (exchanges).
// The cell slices are appended into the caller's buffers (srcCells,
// dstCells) so steady-state planning does not allocate; findMove itself
// mutates nothing.
func (c *Control) findMove(want kernels.State, srcCells, dstCells []int) (srcRow, dstRow int, exchange bool, srcOut, dstOut []int) {
	// Donor first: a mixed unbound row holding a wanted ray. (Choosing
	// the donor before the collector matters at drain time, when the
	// last mixed row must not be selected as its own collector.) When
	// no mixed row offers one, a partially-filled uniform row may
	// donate so equal-state rows consolidate into full rows; the
	// strict fill ordering below prevents ping-ponging.
	donor := -1
	donorScore := -1
	for r := range c.rows {
		if !c.rowMixed[r] || c.rowWarp[r] >= 0 || c.rowBusy[r] > 0 {
			continue
		}
		counts := &c.rowCounts[r]
		if counts[want] == 0 {
			continue
		}
		distinct := 0
		for s := kernels.StateFetch; s <= kernels.StateLeaf; s++ {
			if counts[s] > 0 {
				distinct++
			}
		}
		// Extracting `want` uniformizes the row iff exactly two live
		// states remain; among those, prefer minority extraction (the
		// batch then also surely fits the swap buffers).
		score := 0
		if distinct == 2 {
			score = 2
			live := counts[kernels.StateFetch] + counts[kernels.StateInner] + counts[kernels.StateLeaf]
			if counts[want]*2 <= live {
				score = 3
			}
		}
		if score > donorScore {
			donorScore = score
			donor = r
		}
	}
	uniformDonor := false
	if donor < 0 {
		// Consolidation: the least-full unbound uniform row of this
		// state donates, provided a fuller (or equal, lower-indexed)
		// row exists to receive.
		least, leastN := -1, int(^uint(0)>>1)
		rows := 0
		for r := range c.rows {
			if c.rowWarp[r] >= 0 || c.rowBusy[r] > 0 || c.rowMixed[r] {
				continue
			}
			n := c.rowCounts[r][want]
			if n == 0 || n >= c.cfg.warpSize() {
				continue
			}
			rows++
			if n < leastN || (n == leastN && r > least) {
				least, leastN = r, n
			}
		}
		if rows < 2 {
			return -1, -1, false, nil, nil
		}
		donor = least
		uniformDonor = true
	}

	// Collector: the unbound row (other than the donor) that will
	// absorb the ray without creating a new mixed row. In preference
	// order: a row already holding rays of the wanted state (grow it),
	// then a row with no live rays at all (start a fresh collector),
	// then — only as a last resort — a row whose different-state ray is
	// exchanged away.
	ws := c.cfg.warpSize()
	grow, growBest := -1, 0
	fresh := -1
	exch, exchBest := -1, ws+1
	for r := range c.rows {
		if r == donor || c.rowWarp[r] >= 0 || c.rowBusy[r] > 0 {
			continue
		}
		counts := &c.rowCounts[r]
		if counts[want] >= c.bindThreshold() {
			// Bindable already: leave it for a warp instead of locking
			// it under another swap operation.
			continue
		}
		occupied := counts[kernels.StateEmpty] + counts[kernels.StateFetch] +
			counts[kernels.StateInner] + counts[kernels.StateLeaf]
		otherLive := counts[kernels.StateFetch] + counts[kernels.StateInner] +
			counts[kernels.StateLeaf] - counts[want]
		hasSpace := occupied < ws || counts[kernels.StateEmpty] > 0
		switch {
		case counts[want] > 0 && (hasSpace || otherLive > 0):
			if counts[want] > growBest {
				growBest = counts[want]
				grow = r
			}
		case otherLive == 0 && hasSpace:
			if fresh < 0 {
				fresh = r
			}
		case otherLive > 0:
			if otherLive < exchBest {
				exchBest = otherLive
				exch = r
			}
		}
	}
	coll := grow
	if coll < 0 && !uniformDonor {
		coll = fresh
	}
	if coll < 0 && !uniformDonor {
		coll = exch
	}
	if coll < 0 {
		return -1, -1, false, nil, nil
	}
	if uniformDonor {
		// Strict fill ordering so consolidation converges: rays flow
		// from the least-full row to a strictly fuller one (ties break
		// toward the lower row index).
		dn, cn := c.rowCounts[donor][want], c.rowCounts[coll][want]
		if cn < dn || (cn == dn && coll > donor) {
			return -1, -1, false, nil, nil
		}
	}
	// Pair donor rays with collector cells. One batched operation
	// carries up to warpSize-1 rays (the swap buffer capacity): empty
	// or drained collector cells take plain moves; cells holding a
	// different live state exchange.
	capacity := ws - 1
	for l, s := range c.rows[donor] {
		if s >= 0 && c.kernel.StateOf(s) == want {
			srcCells = append(srcCells, l)
			if len(srcCells) >= capacity {
				break
			}
		}
	}
	for _, pass := range [2]bool{false, true} {
		for l, s := range c.rows[coll] {
			if len(dstCells) >= len(srcCells) {
				break
			}
			dead := s < 0 || c.kernel.StateOf(s) == kernels.StateEmpty
			other := !dead && c.kernel.StateOf(s) != want
			if (!pass && dead) || (pass && other) {
				dstCells = append(dstCells, l)
				if pass {
					exchange = true
				}
			}
		}
	}
	if len(dstCells) == 0 {
		return -1, -1, false, nil, nil
	}
	srcCells = srcCells[:len(dstCells)]
	return donor, coll, exchange, srcCells, dstCells
}

// RowCount returns the number of rows the control manages.
func (c *Control) RowCount() int { return len(c.rows) }

// RowSlots returns a copy of row r's slot ids (testing helper).
func (c *Control) RowSlots(r int) []int32 {
	out := make([]int32, len(c.rows[r]))
	copy(out, c.rows[r])
	return out
}

// WarpRow returns the row warp w is bound to (-1 if unbound).
func (c *Control) WarpRow(w int) int { return c.warpRow[w] }

// CheckInvariants verifies the structural invariants of the renaming
// and row tables: every live slot appears in exactly one cell, bindings
// are bijective, and busy counters are non-negative.
func (c *Control) CheckInvariants() error {
	// Slot occupancy counted in a dense slice so the first violating
	// slot (lowest id) is reported deterministically.
	seen := make([]int, c.kernel.NumSlots())
	live := 0
	for r := range c.rows {
		for _, s := range c.rows[r] {
			if s < 0 {
				continue
			}
			if int(s) >= len(seen) {
				return fmt.Errorf("core: cell holds slot %d but kernel has %d slots", s, len(seen))
			}
			if seen[s] == 0 {
				live++
			}
			seen[s]++
		}
	}
	for s, n := range seen {
		if n > 1 {
			return fmt.Errorf("core: slot %d appears in %d cells", s, n)
		}
	}
	if live > c.kernel.NumSlots() {
		return fmt.Errorf("core: more cells than slots")
	}
	for w, r := range c.warpRow {
		if r >= 0 && c.rowWarp[r] != w {
			return fmt.Errorf("core: warp %d claims row %d but row maps to warp %d", w, r, c.rowWarp[r])
		}
	}
	for r, w := range c.rowWarp {
		if w >= 0 && c.warpRow[w] != r {
			return fmt.Errorf("core: row %d claims warp %d but warp maps to row %d", r, w, c.warpRow[w])
		}
		if c.rowBusy[r] < 0 {
			return fmt.Errorf("core: row %d busy count negative", r)
		}
	}
	return nil
}
