package core

import "testing"

func TestDebugEff(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarpsOverride = 8
	smx, ctrl, _, _, _ := buildDRS(t, cfg, 3000)
	st, err := smx.Run()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("cycles=%d instrs=%d ctrl=%d stalls=%d eff=%.3f",
		st.Cycles, st.WarpInstrs, st.CtrlInstrs, st.CtrlStalls, st.SIMDEfficiency(32))
	t.Logf("remaps=%d swaps=%d meanSwap=%.1f", ctrl.Stats().Remaps, ctrl.Stats().SwapsCompleted, ctrl.Stats().MeanSwapCycles())
	var buckets [5]int64
	for k := 1; k <= 32; k++ {
		buckets[(k-1)/8]++
	}
	var b [4]int64
	for k := 1; k <= 32; k++ {
		b[(k-1)/8] += st.ActiveHist[k]
	}
	t.Logf("hist W1:8=%d W9:16=%d W17:24=%d W25:32=%d (hist32=%d)", b[0], b[1], b[2], b[3], st.ActiveHist[32])
}
