package core
