package core

import (
	"math/rand"
	"testing"

	"repro/internal/bvh"
	"repro/internal/geom"
	"repro/internal/kernels"
	"repro/internal/memsys"
	"repro/internal/scene"
	"repro/internal/simt"
	"repro/internal/statcheck"
	"repro/internal/vec"
)

func TestConfigWarpsAndRows(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Warps() != 58 {
		t.Errorf("default (1 backup, no extra bank) warps = %d, want 58", cfg.Warps())
	}
	if cfg.Rows() != 61 {
		t.Errorf("default rows = %d, want 61 (58 warps + 1 backup + 2 empty)", cfg.Rows())
	}
	eb := cfg
	eb.ExtraBank = true
	if eb.Warps() != 60 {
		t.Errorf("extra-bank warps = %d, want 60", eb.Warps())
	}
	eb.BackupRows = 8
	if eb.Warps() != 60 || eb.Rows() != 70 {
		t.Errorf("extra-bank 8-row config: warps=%d rows=%d", eb.Warps(), eb.Rows())
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{BackupRows: -1, SwapBuffers: 6, WarpSize: 32},
		{BackupRows: 1, SwapBuffers: 1, WarpSize: 32},
		{BackupRows: 1, SwapBuffers: 6, WarpSize: 0},
		{BackupRows: 40, SwapBuffers: 6, WarpSize: 32}, // no warps left
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid: %+v", i, c)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	ideal := Config{BackupRows: 1, SwapBuffers: 0, Ideal: true, WarpSize: 32}
	if err := ideal.Validate(); err != nil {
		t.Errorf("ideal config should not need swap buffers: %v", err)
	}
}

func TestBuffersPerRole(t *testing.T) {
	for in, want := range map[int]int{6: 2, 9: 3, 12: 4, 18: 6, 3: 1} {
		c := Config{SwapBuffers: in}
		if got := c.buffersPerRole(); got != want {
			t.Errorf("buffersPerRole(%d) = %d, want %d", in, got, want)
		}
	}
}

// buildDRS constructs a small DRS machine over a scene.
func buildDRS(t testing.TB, cfg Config, nrays int) (*simt.SMX, *Control, *kernels.WhileIf, *kernels.Pool, *bvh.BVH) {
	t.Helper()
	s := scene.Generate(scene.ConferenceRoom, 1200)
	bv, err := bvh.Build(s.Tris, bvh.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	data := kernels.NewSceneData(bv)
	rnd := rand.New(rand.NewSource(5))
	rays := make([]geom.Ray, nrays)
	for i := range rays {
		o := vec.New(float32(rnd.Float64())*18+1, float32(rnd.Float64())*5+0.3, float32(rnd.Float64())*10+1)
		d := vec.New(float32(rnd.Float64()*2-1), float32(rnd.Float64()*2-1), float32(rnd.Float64()*2-1)).Norm()
		rays[i] = geom.NewRay(o, d)
	}
	pool := &kernels.Pool{Rays: rays}
	k := kernels.NewWhileIf(data, pool, (cfg.Rows()-2)*cfg.warpSize())
	ctrl, err := NewControl(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	scfg := simt.DefaultConfig()
	scfg.NumSMX = 1
	scfg.MaxWarpsPerSMX = cfg.Warps()
	scfg.MaxCycles = 1 << 23
	l2 := memsys.NewL2(scfg.Mem)
	smx, err := simt.NewSMX(0, scfg, k, ctrl.Hooks(), l2)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Launch(smx)
	return smx, ctrl, k, pool, bv
}

func TestNewControlSlotMismatch(t *testing.T) {
	s := scene.Generate(scene.ConferenceRoom, 600)
	bv, err := bvh.Build(s.Tris, bvh.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	k := kernels.NewWhileIf(kernels.NewSceneData(bv), &kernels.Pool{Rays: make([]geom.Ray, 1)}, 32)
	if _, err := NewControl(DefaultConfig(), k); err == nil {
		t.Errorf("slot mismatch accepted")
	}
}

func TestControlInitialInvariants(t *testing.T) {
	_, ctrl, _, _, _ := buildDRS(t, DefaultConfig(), 100)
	if err := ctrl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if ctrl.RowCount() != 61 {
		t.Errorf("rows = %d", ctrl.RowCount())
	}
	// The two reorganization rows are empty.
	for r := ctrl.RowCount() - 2; r < ctrl.RowCount(); r++ {
		for _, s := range ctrl.RowSlots(r) {
			if s != -1 {
				t.Errorf("reorg row %d not empty", r)
			}
		}
	}
	// Warps bound to their home rows.
	for w := 0; w < 58; w++ {
		if ctrl.WarpRow(w) != w {
			t.Errorf("warp %d bound to row %d", w, ctrl.WarpRow(w))
		}
	}
}

func TestDRSRunCorrectAndInvariant(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarpsOverride = 8 // small machine so 3000 rays reach steady state
	smx, ctrl, k, pool, bv := buildDRS(t, cfg, 3000)
	st, err := smx.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if pool.Remaining() != 0 {
		t.Fatalf("pool not drained: %d", pool.Remaining())
	}
	bad := 0
	for i, r := range pool.Rays {
		want := bv.Intersect(r, nil)
		if k.Hits[i].TriIndex != want.TriIndex {
			if k.Hits[i].TriIndex >= 0 && want.TriIndex >= 0 {
				d := k.Hits[i].T - want.T
				if d < 1e-4 && d > -1e-4 {
					continue
				}
			}
			bad++
		}
	}
	if bad > 0 {
		t.Errorf("%d/%d wrong hits", bad, len(pool.Rays))
	}
	if st.CtrlInstrs == 0 {
		t.Errorf("no rdctrl instructions issued")
	}
	if ctrl.Stats().SwapsCompleted == 0 {
		t.Errorf("no swaps completed")
	}
	if eff := st.SIMDEfficiency(32); eff < 0.5 {
		t.Errorf("DRS efficiency suspiciously low: %v", eff)
	}
	// Mean swap duration should be in a plausible range (the paper
	// reports ~31.6 cycles for 6 buffers).
	if mean := ctrl.Stats().MeanSwapCycles(); mean < 4 || mean > 200 {
		t.Errorf("mean swap cycles = %v, implausible", mean)
	}
}

func TestMoreSwapBuffersShortenSwaps(t *testing.T) {
	run := func(buffers int) float64 {
		cfg := DefaultConfig()
		cfg.SwapBuffers = buffers
		cfg.WarpsOverride = 8
		smx, ctrl, _, _, _ := buildDRS(t, cfg, 2000)
		if _, err := smx.Run(); err != nil {
			t.Fatal(err)
		}
		return ctrl.Stats().MeanSwapCycles()
	}
	six := run(6)
	eighteen := run(18)
	if six <= eighteen {
		t.Errorf("6 buffers (%v cycles) should be slower than 18 (%v)", six, eighteen)
	}
}

func TestIdealModeCompletes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ideal = true
	smx, ctrl, _, pool, _ := buildDRS(t, cfg, 2000)
	if _, err := smx.Run(); err != nil {
		t.Fatal(err)
	}
	if pool.Remaining() != 0 {
		t.Errorf("pool not drained")
	}
	if ctrl.Stats().SwapsCompleted != 0 {
		t.Errorf("ideal mode should not use the swap engine")
	}
	if ctrl.Stats().IdealShuffles == 0 {
		t.Errorf("ideal mode never shuffled")
	}
}

func TestBackupRowConfigsComplete(t *testing.T) {
	for _, rows := range []int{1, 2, 4, 8} {
		cfg := DefaultConfig()
		cfg.BackupRows = rows
		cfg.ExtraBank = true
		smx, ctrl, _, pool, _ := buildDRS(t, cfg, 1200)
		if _, err := smx.Run(); err != nil {
			t.Fatalf("backup=%d: %v", rows, err)
		}
		if pool.Remaining() != 0 {
			t.Errorf("backup=%d: pool not drained", rows)
		}
		if err := ctrl.CheckInvariants(); err != nil {
			t.Errorf("backup=%d: %v", rows, err)
		}
	}
}

func TestStatsMeanSwapCycles(t *testing.T) {
	var s Stats
	if s.MeanSwapCycles() != 0 {
		t.Errorf("empty mean should be 0")
	}
	s.SwapsCompleted = 4
	s.SwapCycleSum = 100
	if s.MeanSwapCycles() != 25 {
		t.Errorf("mean = %v", s.MeanSwapCycles())
	}
}

// TestStatsAddCoverage pins that core.Stats.Add merges every numeric
// field; harness.Run folds per-SMX control stats with it.
func TestStatsAddCoverage(t *testing.T) {
	if err := statcheck.AddCovers(Stats{}); err != nil {
		t.Error(err)
	}
}
