package core

import (
	"repro/internal/geom"
	"repro/internal/kernels"
	"repro/internal/progcheck"
	"repro/internal/reorder"
	"repro/internal/simt"
)

// Policy adapts the DRS architecture to the reorder.Policy interface:
// Kernel 1 (the while-if kernel) gated by the per-SMX Control, with
// the warp count derived from the row configuration. Shuffle costs are
// charged in-engine (gate stalls, swap-buffer serialization, register
// file contention), so the generic CostCycles stays zero.
type Policy struct {
	Cfg Config
}

// NewPolicy wraps a DRS configuration as a policy.
func NewPolicy(cfg Config) *Policy { return &Policy{Cfg: cfg} }

// Name implements reorder.Policy.
func (p *Policy) Name() string { return "drs" }

// Summary implements reorder.Policy.
func (p *Policy) Summary() string {
	return "dynamic ray shuffling: row renaming + swap engines keep warps state-uniform (the paper)"
}

// Validate implements reorder.Policy.
func (p *Policy) Validate() error { return p.Cfg.Validate() }

// Warps implements reorder.Policy: the DRS warp count comes from its
// row configuration, not the harness baseline.
func (p *Policy) Warps() int { return p.Cfg.Warps() }

// Caps implements reorder.Policy: only the DRS services gated blocks
// and TagCtrl instructions (its rdctrl gate and control co-processor).
func (p *Policy) Caps() progcheck.Caps { return progcheck.Caps{Gate: true, CtrlTag: true} }

// NewSMX implements reorder.Policy.
func (p *Policy) NewSMX(env Env) (reorder.Instance, error) {
	slots := (p.Cfg.Rows() - 2) * env.Cfg.WarpSize
	k := kernels.NewWhileIfConfigured(env.Data, env.Pool, slots, env.WhileIf)
	if env.Verify != nil {
		if err := env.Verify(k); err != nil {
			return nil, err
		}
	}
	ctrl, err := NewControl(p.Cfg, k)
	if err != nil {
		return nil, err
	}
	if env.Collector != nil {
		ctrl.RegisterMetrics(env.Collector, env.MetricsPrefix)
	}
	return &instance{k: k, ctrl: ctrl}, nil
}

// Env aliases reorder.Env so the method set reads naturally here.
type Env = reorder.Env

// instance is one SMX's DRS attachment.
type instance struct {
	k    *kernels.WhileIf
	ctrl *Control
}

func (i *instance) Program() simt.SMXProgram {
	return simt.SMXProgram{Kernel: i.k, Hooks: i.ctrl.Hooks(), Launch: i.ctrl.Launch}
}

func (i *instance) Hits() []geom.Hit { return i.k.Hits }

// TypedStats implements reorder.TypedStatser with the DRS Stats.
func (i *instance) TypedStats() any { return i.ctrl.Stats() }

// ReorderStats implements reorder.StatsReporter: swaps completed are
// the reordering events; in Ideal mode the instantaneous shuffles are.
func (i *instance) ReorderStats() reorder.Stats {
	st := i.ctrl.Stats()
	return reorder.Stats{
		Reorders:  st.SwapsCompleted + st.IdealShuffles,
		RaysMoved: st.RaysMoved,
	}
}
