package core

import (
	"math/rand"
	"testing"

	"repro/internal/kernels"
)

// The control's structural invariants (each live slot in exactly one
// cell, renaming bijective, busy counts sane) must hold at every point
// during a run, not just at the end. Drive the machine in slices and
// check between them.
func TestInvariantsHoldThroughoutRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarpsOverride = 6
	smx, ctrl, _, pool, _ := buildDRS(t, cfg, 2500)
	for i := 0; i < 10_000; i++ {
		if err := smx.RunFor(97); err != nil {
			t.Fatal(err)
		}
		if err := ctrl.CheckInvariants(); err != nil {
			t.Fatalf("after slice %d (cycle %d): %v", i, smx.Cycle(), err)
		}
		if smx.LiveWarps() == 0 {
			break
		}
	}
	if smx.LiveWarps() != 0 {
		t.Fatalf("machine did not finish")
	}
	if pool.Remaining() != 0 {
		t.Fatalf("pool not drained")
	}
}

// Row count bookkeeping must agree with a full recount at any moment.
func TestCountsMatchRecount(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarpsOverride = 6
	smx, ctrl, k, _, _ := buildDRS(t, cfg, 2000)
	rnd := rand.New(rand.NewSource(99))
	for i := 0; i < 60; i++ {
		if err := smx.RunFor(int64(50 + rnd.Intn(400))); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < ctrl.RowCount(); r++ {
			var recount [4]int
			for _, slot := range ctrl.RowSlots(r) {
				recount[k.StateOf(slot)]++
			}
			// Empty cells report StateEmpty via StateOf(-1); separate
			// them from drained slots by counting only real slots.
			var realEmpty int
			for _, slot := range ctrl.RowSlots(r) {
				if slot >= 0 && k.StateOf(slot) == kernels.StateEmpty {
					realEmpty++
				}
			}
			counts := ctrl.rowCounts[r]
			if counts[kernels.StateFetch] != recount[kernels.StateFetch] ||
				counts[kernels.StateInner] != recount[kernels.StateInner] ||
				counts[kernels.StateLeaf] != recount[kernels.StateLeaf] {
				t.Fatalf("row %d counts %v, recount %v (cycle %d)", r, counts, recount, smx.Cycle())
			}
			if counts[kernels.StateEmpty] < realEmpty {
				// Dropped drained slots may make the counter smaller,
				// never larger.
				t.Fatalf("row %d empty counter %d < real %d", r, counts[kernels.StateEmpty], realEmpty)
			}
		}
		if smx.LiveWarps() == 0 {
			break
		}
	}
}

// The mixed-row tracker must agree with a recount.
func TestMixedTrackerConsistent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarpsOverride = 6
	smx, ctrl, _, _, _ := buildDRS(t, cfg, 1500)
	for i := 0; i < 40; i++ {
		if err := smx.RunFor(211); err != nil {
			t.Fatal(err)
		}
		recount := 0
		for r := 0; r < ctrl.RowCount(); r++ {
			_, uniform, _ := ctrl.rowState(r)
			if !uniform {
				recount++
				if !ctrl.rowMixed[r] {
					t.Fatalf("row %d mixed but not flagged", r)
				}
			} else if ctrl.rowMixed[r] {
				t.Fatalf("row %d flagged mixed but uniform", r)
			}
		}
		if recount != ctrl.numMixed {
			t.Fatalf("numMixed %d, recount %d", ctrl.numMixed, recount)
		}
		if smx.LiveWarps() == 0 {
			break
		}
	}
}

// Warps bound to rows must always execute rays whose states were
// uniform at bind time; the gate must never bind a busy row.
func TestGateNeverBindsBusyRow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarpsOverride = 6
	smx, ctrl, _, _, _ := buildDRS(t, cfg, 1500)
	for i := 0; i < 50; i++ {
		if err := smx.RunFor(173); err != nil {
			t.Fatal(err)
		}
		for w := 0; w < smx.NumWarps(); w++ {
			r := ctrl.WarpRow(w)
			if r < 0 {
				continue
			}
			for i2 := range ctrl.roles {
				op := ctrl.roles[i2].op
				if op != nil && (op.srcRow == r || op.dstRow == r) {
					t.Fatalf("row %d bound to warp %d while role %s swaps it", r, w, ctrl.roles[i2].name)
				}
			}
		}
		if smx.LiveWarps() == 0 {
			break
		}
	}
}

// Ideal mode must also maintain invariants throughout.
func TestIdealInvariantsThroughout(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarpsOverride = 6
	cfg.Ideal = true
	smx, ctrl, _, _, _ := buildDRS(t, cfg, 1500)
	for i := 0; i < 100; i++ {
		if err := smx.RunFor(137); err != nil {
			t.Fatal(err)
		}
		if err := ctrl.CheckInvariants(); err != nil {
			t.Fatalf("cycle %d: %v", smx.Cycle(), err)
		}
		if smx.LiveWarps() == 0 {
			break
		}
	}
}
