// Package core implements the paper's contribution: the Dynamic Ray
// Shuffling (DRS) architecture. Live rays are organized into rows of
// warp-size slots; a renaming table maps warps to rows; a greedy swap
// engine moves rays between rows through a small set of swap buffers so
// that every row a warp executes has a uniform ray traversal state and
// the while-if kernel (Kernel 1) never diverges on its main control
// flow.
//
// The control attaches to the simt engine through two hooks: the issue
// gate on the kernel's rdctrl block (warp mapping, renaming, stalls and
// kernel exit) and the per-cycle tick (the swap engine). Ray "data
// movement" is modelled by moving slot ids between row cells while
// charging the paper's costs: 17 register transfers per moved ray,
// serialized through the configured number of swap buffers and
// contending with the register file banks.
package core

import "fmt"

// BaseWarps is the number of warps Kernel 1 can spawn per SMX when the
// extra register bank houses the backup rows (§4.1: 60 warps).
const BaseWarps = 60

// Config selects the DRS hardware parameters evaluated in §4.2–§4.3.
type Config struct {
	// BackupRows is the number of backup ray rows (1, 2, 4 or 8 in the
	// paper's sweep).
	BackupRows int
	// SwapBuffers is the total number of swap buffers, divided evenly
	// between the fetch-collecting, leaf-collecting and inner-ejecting
	// roles (6, 9, 12 or 18 in the paper's sweep).
	SwapBuffers int
	// ExtraBank places backup rows in an extra register bank. Without
	// it the original register file makes room, reducing the number of
	// spawned warps (60 -> 58 for one backup row).
	ExtraBank bool
	// Ideal makes ray shuffling complete in one cycle (the idealized
	// DRS of Figure 8).
	Ideal bool
	// WarpSize is the row width. Defaults to 32.
	WarpSize int
	// WarpsOverride, when positive, overrides the derived warp count
	// (useful for scaled-down machines in tests and sensitivity
	// studies). Zero uses the paper's formula.
	WarpsOverride int
	// BindThreshold is the minimum number of live rays a uniform row
	// needs before the gate hands it to a warp while the collectors
	// could still grow it. Zero uses the default of 3/4 of a row.
	BindThreshold int
}

// DefaultConfig returns the configuration §4.3 recommends: one backup
// row, six swap buffers, no extra register bank.
func DefaultConfig() Config {
	return Config{BackupRows: 1, SwapBuffers: 6, ExtraBank: false, WarpSize: 32}
}

// Validate reports the first invalid parameter.
func (c Config) Validate() error {
	switch {
	case c.BackupRows < 0:
		return fmt.Errorf("core: negative backup rows")
	case !c.Ideal && c.SwapBuffers < 3:
		return fmt.Errorf("core: need at least 3 swap buffers (one per role)")
	case c.WarpSize <= 0 || c.WarpSize > 32:
		return fmt.Errorf("core: warp size %d out of range", c.WarpSize)
	case c.Warps() <= 0:
		return fmt.Errorf("core: configuration leaves no warps")
	}
	return nil
}

// Warps returns the number of warps the kernel spawns under this
// configuration. With the extra register bank the full 60 warps fit;
// without it the register file gives up capacity for the backup rows
// (the paper's one-row-no-extra-bank point spawns 58 warps).
func (c Config) Warps() int {
	if c.WarpsOverride > 0 {
		return c.WarpsOverride
	}
	if c.ExtraBank {
		return BaseWarps
	}
	return BaseWarps - 2*c.BackupRows
}

// Rows returns the total ray rows: one per warp, the backup rows, and
// two rows of empty slots for reorganization (§3.2.2).
func (c Config) Rows() int { return c.Warps() + c.BackupRows + 2 }

// warpSize returns the configured row width with its default applied.
func (c Config) warpSize() int {
	if c.WarpSize <= 0 {
		return 32
	}
	return c.WarpSize
}

// buffersPerRole returns how many swap buffers each of the three
// shuffle roles owns.
func (c Config) buffersPerRole() int {
	n := c.SwapBuffers / 3
	if n < 1 {
		n = 1
	}
	return n
}
