// Package hwcost reproduces the hardware overhead arithmetic of §4.5:
// the storage requirements of the DRS (swap buffers, ray state table),
// of the DMK's spawn memory and of TBC's warp buffer, and the area
// scaling of the synthesized DRS design. The paper's HDL synthesis is
// substituted by this analytic model; the per-core area figure
// (0.042 mm² in TSMC 28 nm) is taken from the paper and scaled.
package hwcost

// Parameters of the GTX780-class device used throughout §4.5.
const (
	WarpSize       = 32
	RegFileKBPerSM = 256 // 65536 registers x 4 bytes
	NumSMX         = 15
	DieAreaMM2     = 550.0 // Kepler-sized GPU
	DRSCoreAreaMM2 = 0.042 // synthesized DRS area per core (paper, TSMC 28nm)
	DRSCycleNS     = 0.47  // synthesized critical path
)

// DRSCost is the DRS storage/area breakdown.
type DRSCost struct {
	SwapBufferBytes    int     // 6 x (warpSize-1) x 32 bits
	RayStateTableBytes int     // rows x 32 x 20 bits
	TotalPerSMXBytes   int     // with additional control state
	RegFileFraction    float64 // of the 256 KB register file
	AreaPerCoreMM2     float64
	TotalAreaFraction  float64 // of the 550 mm² die
	MaxFreqGHz         float64
}

// DRS computes the DRS hardware overhead for the given configuration
// (§4.5 uses 6 swap buffers and 61 rows: 58 warps + 1 backup + 2 empty).
func DRS(swapBuffers, rows int) DRSCost {
	swapBytes := swapBuffers * (WarpSize - 1) * 32 / 8
	// The ray state table stores one of four traversal states per live
	// ray: 2 bits per entry (61 x 32 entries = 488 bytes, matching the
	// paper's figure).
	stateBytes := rows * WarpSize * 2 / 8
	// "With some additional control state, the total storage
	// requirement is approximately 1.4 KB per SMX": the control adds
	// renaming and swap-request tracking on top of the two stores.
	controlBytes := 200
	total := swapBytes + stateBytes + controlBytes
	return DRSCost{
		SwapBufferBytes:    swapBytes,
		RayStateTableBytes: stateBytes,
		TotalPerSMXBytes:   total,
		RegFileFraction:    float64(total) / float64(RegFileKBPerSM*1024),
		AreaPerCoreMM2:     DRSCoreAreaMM2,
		TotalAreaFraction:  DRSCoreAreaMM2 * NumSMX / DieAreaMM2,
		MaxFreqGHz:         1.0 / DRSCycleNS,
	}
}

// DMKSpawnBytes returns the minimum on-chip spawn memory per SMX for
// the DMK baseline: capacity for every resident thread's live
// registers. §4.5: 54 x 32 x 17 x 32 bits = 114.75 KB (54 resident
// warps, 17 registers), excluding metadata.
func DMKSpawnBytes(warps, regsPerThread int) int {
	return warps * WarpSize * regsPerThread * 32 / 8
}

// TBCWarpBufferBytes returns TBC's warp-buffer storage per SMX: thread
// ids for the compaction buffer. §4.5: 10 x 32 x 64 bits = 2.5 KB
// (1024 max threads per block and 64 max warps per SMX on Kepler).
func TBCWarpBufferBytes() int {
	return 10 * 32 * 64 / 8
}
