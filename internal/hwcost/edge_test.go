package hwcost

import (
	"math"
	"testing"
)

// TestDRSZeroAndDegenerateInputs pins the analytic model's behaviour on
// the boundary configurations: no swap buffers, no rows, and both.
// The storage terms must go to zero while the constant control state
// remains, and no derived fraction may go negative or NaN.
func TestDRSZeroAndDegenerateInputs(t *testing.T) {
	cases := []struct {
		name          string
		buffers, rows int
		wantSwap      int
		wantState     int
	}{
		{name: "zero-everything", buffers: 0, rows: 0, wantSwap: 0, wantState: 0},
		{name: "zero-buffers", buffers: 0, rows: 61, wantSwap: 0, wantState: 488},
		{name: "zero-rows", buffers: 6, rows: 0, wantSwap: 744, wantState: 0},
		{name: "single-row", buffers: 1, rows: 1, wantSwap: 124, wantState: 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := DRS(tc.buffers, tc.rows)
			if d.SwapBufferBytes != tc.wantSwap {
				t.Errorf("swap bytes = %d, want %d", d.SwapBufferBytes, tc.wantSwap)
			}
			if d.RayStateTableBytes != tc.wantState {
				t.Errorf("state table bytes = %d, want %d", d.RayStateTableBytes, tc.wantState)
			}
			// The fixed control state keeps the total positive even with no
			// configured storage.
			if d.TotalPerSMXBytes != tc.wantSwap+tc.wantState+200 {
				t.Errorf("total = %d, want storage + 200B control", d.TotalPerSMXBytes)
			}
			for name, v := range map[string]float64{
				"RegFileFraction":   d.RegFileFraction,
				"TotalAreaFraction": d.TotalAreaFraction,
				"MaxFreqGHz":        d.MaxFreqGHz,
			} {
				if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("%s = %v, want finite positive", name, v)
				}
			}
		})
	}
}

// TestSpawnBytesOverflowAndZero pins DMKSpawnBytes at the boundaries:
// zero warps or registers store nothing, and device-scale inputs stay
// far from int overflow (the arithmetic multiplies three operands
// before dividing, so a naive refactor to 32-bit or a reordering could
// overflow silently).
func TestSpawnBytesOverflowAndZero(t *testing.T) {
	cases := []struct {
		name        string
		warps, regs int
		want        int
	}{
		{name: "zero-warps", warps: 0, regs: 17, want: 0},
		{name: "zero-regs", warps: 54, regs: 0, want: 0},
		{name: "single-thread-register", warps: 1, regs: 1, want: 128},
		// 1024 warps x 256 registers: far beyond any real SMX, still exact.
		{name: "huge-config", warps: 1024, regs: 256, want: 1024 * 32 * 256 * 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := DMKSpawnBytes(tc.warps, tc.regs)
			if got != tc.want {
				t.Errorf("DMKSpawnBytes(%d, %d) = %d, want %d", tc.warps, tc.regs, got, tc.want)
			}
			if got < 0 {
				t.Errorf("spawn bytes overflowed negative: %d", got)
			}
		})
	}
	// Monotonicity: more resident state never costs less.
	if DMKSpawnBytes(55, 17) <= DMKSpawnBytes(54, 17) {
		t.Error("spawn bytes not monotone in warps")
	}
	if DMKSpawnBytes(54, 18) <= DMKSpawnBytes(54, 17) {
		t.Error("spawn bytes not monotone in registers")
	}
}
