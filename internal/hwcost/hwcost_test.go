package hwcost

import "testing"

func TestDRSPaperArithmetic(t *testing.T) {
	// §4.5: 6 swap buffers, 61 rows (58 warps + 1 backup + 2 empty).
	d := DRS(6, 61)
	if d.SwapBufferBytes != 744 {
		t.Errorf("swap buffer bytes = %d, want 744", d.SwapBufferBytes)
	}
	if d.RayStateTableBytes != 488 {
		t.Errorf("ray state table bytes = %d, want 488", d.RayStateTableBytes)
	}
	if kb := float64(d.TotalPerSMXBytes) / 1024; kb < 1.3 || kb > 1.5 {
		t.Errorf("total per SMX = %.2f KB, want ~1.4", kb)
	}
	if pct := d.RegFileFraction * 100; pct < 0.5 || pct > 0.6 {
		t.Errorf("register file share = %.2f%%, want ~0.55%%", pct)
	}
	if pct := d.TotalAreaFraction * 100; pct < 0.10 || pct > 0.13 {
		t.Errorf("area share = %.3f%%, want ~0.11%%", pct)
	}
	if d.MaxFreqGHz < 2.0 {
		t.Errorf("max frequency = %.2f GHz, want > 2", d.MaxFreqGHz)
	}
}

func TestDMKSpawnBytes(t *testing.T) {
	// §4.5: 54 x 32 x 17 x 32 bits = 114.75 KB.
	got := DMKSpawnBytes(54, 17)
	if float64(got)/1024 != 114.75 {
		t.Errorf("spawn bytes = %d (%.2f KB), want 114.75 KB", got, float64(got)/1024)
	}
}

func TestTBCWarpBufferBytes(t *testing.T) {
	// §4.5: 10 x 32 x 64 bits = 2.5 KB.
	if got := TBCWarpBufferBytes(); float64(got)/1024 != 2.5 {
		t.Errorf("warp buffer = %d bytes, want 2.5 KB", got)
	}
}

func TestDRSScalesWithConfig(t *testing.T) {
	small := DRS(6, 61)
	moreBuffers := DRS(18, 61)
	moreRows := DRS(6, 70)
	if moreBuffers.SwapBufferBytes <= small.SwapBufferBytes {
		t.Errorf("buffer storage did not grow")
	}
	if moreRows.RayStateTableBytes <= small.RayStateTableBytes {
		t.Errorf("state table storage did not grow")
	}
}
