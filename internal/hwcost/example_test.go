package hwcost_test

import (
	"fmt"

	"repro/internal/hwcost"
)

// The §4.5 arithmetic for the paper's recommended configuration: six
// swap buffers and 61 ray rows (58 warps + 1 backup + 2 empty).
func ExampleDRS() {
	d := hwcost.DRS(6, 61)
	fmt.Printf("swap buffers: %d B\n", d.SwapBufferBytes)
	fmt.Printf("ray state table: %d B\n", d.RayStateTableBytes)
	fmt.Printf("register file share: %.2f%%\n", d.RegFileFraction*100)
	fmt.Printf("GPU area share: %.2f%%\n", d.TotalAreaFraction*100)
	// Output:
	// swap buffers: 744 B
	// ray state table: 488 B
	// register file share: 0.55%
	// GPU area share: 0.11%
}

func ExampleDMKSpawnBytes() {
	kb := float64(hwcost.DMKSpawnBytes(54, 17)) / 1024
	fmt.Printf("%.2f KB\n", kb)
	// Output: 114.75 KB
}
