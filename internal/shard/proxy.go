// Server-side routing. Wrap turns one drsd's HTTP handler into a
// cluster participant: submissions for content addresses another
// worker owns are forwarded to that owner (walking the failover order
// on transport errors), so no matter which worker a client talks to,
// identical specs converge on one process — the in-memory
// singleflight and the persistent store then collapse them to one
// execution cluster-wide.
package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/service"
)

// ForwardedHeader marks a proxied submission. A forwarded request is
// always served locally — the owner computed by the forwarding worker
// and by this worker agree (same router inputs), and the header makes
// that assumption safe against configuration skew: a cluster with
// disagreeing peer lists degrades to extra hops' worth of local
// execution, never a forwarding loop.
const ForwardedHeader = "X-Drsd-Forwarded"

// Proxy wraps a local drsd handler with shard routing.
type Proxy struct {
	local  http.Handler
	router *Router
	self   string
	hc     *http.Client
}

// Wrap builds the routing layer: local is the service's own handler,
// router spans every worker (including this one), and self is this
// worker's name in the router's worker set. hc transports forwarded
// requests (nil = http.DefaultClient; it must not time out faster
// than jobs run).
func Wrap(local http.Handler, router *Router, self string, hc *http.Client) (*Proxy, error) {
	found := false
	for _, w := range router.Workers() {
		if w == self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("shard: self %q is not in the worker set %v", self, router.Workers())
	}
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Proxy{local: local, router: router, self: self, hc: hc}, nil
}

// ServeHTTP routes one request: shard lookups answered here,
// submissions routed to their owner, everything else local.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/shard/"):
		p.handleShard(w, r)
	case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
		p.handleSubmit(w, r)
	default:
		p.local.ServeHTTP(w, r)
	}
}

// shardInfo is the JSON body of GET /v1/shard/{id}: the id's owner
// order and which member this worker is. Clients and scripts use it to
// find (or avoid) the worker a key lives on.
type shardInfo struct {
	ID     string   `json:"id"`
	Owners []string `json:"owners"`
	Self   string   `json:"self"`
}

func (p *Proxy) handleShard(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/shard/")
	if len(id) != 64 {
		http.Error(w, `{"error":"shard: id must be a hex sha-256"}`, http.StatusBadRequest)
		return
	}
	data, err := json.Marshal(shardInfo{ID: id, Owners: p.router.Owners(id), Self: p.self})
	if err != nil {
		http.Error(w, `{"error":"shard: encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(append(data, '\n'))
}

// handleSubmit routes one submission. The body is read up front (it is
// bounded by the spec size limit) so it can be both inspected for the
// content address and replayed to whichever handler wins.
func (p *Proxy) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, service.MaxSpecBytes+1))
	if err != nil {
		http.Error(w, `{"error":"shard: reading body"}`, http.StatusBadRequest)
		return
	}
	serveLocal := func() {
		r2 := r.Clone(r.Context())
		r2.Body = io.NopCloser(bytes.NewReader(body))
		r2.ContentLength = int64(len(body))
		p.local.ServeHTTP(w, r2)
	}
	if r.Header.Get(ForwardedHeader) != "" {
		serveLocal()
		return
	}
	spec, err := service.DecodeSpec(body)
	if err != nil {
		// Invalid specs are rejected locally — the local handler
		// produces the canonical 400 (and counts it).
		serveLocal()
		return
	}
	for _, owner := range p.router.Owners(spec.ID()) {
		if owner == p.self {
			serveLocal()
			return
		}
		if p.forward(w, r, owner, body) {
			return
		}
		// Transport error: the owner is down; the next one in the
		// failover order takes over.
	}
	// Unreachable (self is always in the owner order), but serve
	// locally rather than 500 if the router ever changes that.
	serveLocal()
}

// forward relays the submission to owner, streaming the response back.
// It reports true when the owner produced a response — any response,
// including an error status, is authoritative — and false on a
// transport failure, which sends the caller to the next owner.
func (p *Proxy) forward(w http.ResponseWriter, r *http.Request, owner string, body []byte) bool {
	url := owner + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedHeader, p.self)
	resp, err := p.hc.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Cache-Control"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}
