// Read-through client. drsctl (and the chaos harness) resolve a job
// in cost order: local artifact store first, then the owning shard's
// store over HTTP, and only then an actual submission — walking the
// id's owner order so a dead primary degrades to the next worker that
// every other participant also agrees is next. Bit-determinism is
// what makes this transparent: whichever source answers, the bytes
// are the same.
package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/artifact"
	"repro/internal/service"
)

// Source labels where a Result's bytes came from.
const (
	// SourceLocalStore is a hit in the client's own artifact store.
	SourceLocalStore = "local-store"
	// SourcePeerStore is a hit in an owning worker's store.
	SourcePeerStore = "peer-store"
	// SourceSubmit is a fresh (or deduped in-flight) execution.
	SourceSubmit = "submit"
)

// Result is one resolved job artifact.
type Result struct {
	// ID is the job content address.
	ID string
	// Body is the response body (the artifact bytes on success).
	Body []byte
	// Status is the HTTP status of the resolving response (200 for
	// store hits, including local ones).
	Status int
	// Source says which layer resolved it: SourceLocalStore,
	// SourcePeerStore or SourceSubmit.
	Source string
	// Worker is the worker URL that answered ("" for local hits).
	Worker string
}

// Client is the read-through shard client.
type Client struct {
	// Router orders workers per content address.
	Router *Router
	// Local, when set, is consulted before the network and updated
	// with every artifact the client obtains.
	Local *artifact.Store
	// HTTP is the transport (nil = http.DefaultClient). Submissions
	// block for job completion, so any Timeout must cover job runtime.
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// localGet consults the local store; a corrupt entry has already been
// dropped by Get, so every non-hit outcome means "keep resolving".
func (c *Client) localGet(id string) ([]byte, bool) {
	if c.Local == nil {
		return nil, false
	}
	body, _, err := c.Local.Get(id)
	if err != nil {
		return nil, false
	}
	return body, true
}

// localPut caches an obtained artifact; failure to cache never fails
// the request that obtained it.
func (c *Client) localPut(id string, body []byte) {
	if c.Local != nil {
		c.Local.Put(id, body)
	}
}

// FetchArtifact resolves an existing artifact without submitting:
// local store, then each owner's GET /v1/artifacts/{id}. The boolean
// reports whether anything was found; a false return with nil error
// means every layer answered a clean miss (404 or 410).
func (c *Client) FetchArtifact(ctx context.Context, id string) (*Result, bool, error) {
	if body, ok := c.localGet(id); ok {
		return &Result{ID: id, Body: body, Status: http.StatusOK, Source: SourceLocalStore}, true, nil
	}
	var errs []string
	for _, w := range c.Router.Owners(id) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, w+"/v1/artifacts/"+id, nil)
		if err != nil {
			return nil, false, err
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", w, err))
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", w, err))
			continue
		}
		if resp.StatusCode == http.StatusOK {
			c.localPut(id, body)
			return &Result{ID: id, Body: body, Status: resp.StatusCode, Source: SourcePeerStore, Worker: w}, true, nil
		}
		// 404 (never stored) and 410 (evicted) are authoritative
		// misses from this worker; other statuses are its problem, and
		// either way the next owner might still have the bytes.
	}
	if len(errs) == len(c.Router.Workers()) && len(errs) > 0 {
		return nil, false, fmt.Errorf("shard: no owner reachable for %s: %s", id[:12], strings.Join(errs, "; "))
	}
	return nil, false, nil
}

// retriableStatus reports whether a submission response is worth
// retrying on the next owner: backpressure (429) and draining (503)
// are properties of one worker, not of the job.
func retriableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// Submit resolves a job spec end to end: compute its content address,
// read through the store layers, and finally submit (?wait=1) to the
// id's owners in failover order. Transport errors and per-worker
// backpressure move to the next owner; any other response — success
// or a definitive failure like a 400 — is returned as-is.
func (c *Client) Submit(ctx context.Context, specJSON []byte) (*Result, error) {
	spec, err := service.DecodeSpec(specJSON)
	if err != nil {
		return nil, err
	}
	id := spec.ID()
	if res, ok, err := c.FetchArtifact(ctx, id); err != nil {
		return nil, err
	} else if ok {
		return res, nil
	}
	var errs []string
	for _, w := range c.Router.Owners(id) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, w+"/v1/jobs?wait=1", bytes.NewReader(specJSON))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.httpClient().Do(req)
		if err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", w, err))
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			// The worker died mid-response (the chaos suite does this
			// on purpose); the next owner recomputes the same bytes.
			errs = append(errs, fmt.Sprintf("%s: %v", w, err))
			continue
		}
		if retriableStatus(resp.StatusCode) {
			errs = append(errs, fmt.Sprintf("%s: HTTP %d", w, resp.StatusCode))
			continue
		}
		if resp.StatusCode == http.StatusOK {
			c.localPut(id, body)
		}
		return &Result{ID: id, Body: body, Status: resp.StatusCode, Source: SourceSubmit, Worker: w}, nil
	}
	return nil, fmt.Errorf("shard: every owner failed for %s: %s", id[:12], strings.Join(errs, "; "))
}

// ErrNoWorkers is returned by helpers that need a non-empty router.
var ErrNoWorkers = errors.New("shard: no workers configured")
