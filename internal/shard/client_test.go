package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/artifact"
	"repro/internal/service"
)

// fakeWorker is a minimal drsd stand-in: an artifact map served on
// GET /v1/artifacts/{id} and a scripted response for POST /v1/jobs.
type fakeWorker struct {
	t         *testing.T
	artifacts map[string][]byte
	submit    func(w http.ResponseWriter, r *http.Request)

	gets    atomic.Int64
	submits atomic.Int64
	srv     *httptest.Server
}

func newFakeWorker(t *testing.T) *fakeWorker {
	fw := &fakeWorker{t: t, artifacts: map[string][]byte{}}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/artifacts/{id}", func(w http.ResponseWriter, r *http.Request) {
		fw.gets.Add(1)
		body, ok := fw.artifacts[r.PathValue("id")]
		if !ok {
			http.Error(w, `{"error":"not found"}`, http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write(body)
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		fw.submits.Add(1)
		if fw.submit == nil {
			http.Error(w, `{"error":"no submit handler"}`, http.StatusInternalServerError)
			return
		}
		fw.submit(w, r)
	})
	fw.srv = httptest.NewServer(mux)
	t.Cleanup(fw.srv.Close)
	return fw
}

func (fw *fakeWorker) url() string { return fw.srv.URL }

// testSpecJSON is a valid spec whose id the tests resolve.
func testSpecJSON(t *testing.T) ([]byte, string) {
	t.Helper()
	raw := []byte(`{"kind":"run","scene":"conference","arch":"drs","tris":500,"width":32,"height":24}`)
	spec, err := service.DecodeSpec(raw)
	if err != nil {
		t.Fatalf("test spec invalid: %v", err)
	}
	return raw, spec.ID()
}

func routerOver(t *testing.T, workers ...*fakeWorker) *Router {
	t.Helper()
	urls := make([]string, len(workers))
	for i, w := range workers {
		urls[i] = w.url()
	}
	r, err := NewRouter(urls)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func testStore(t *testing.T) *artifact.Store {
	t.Helper()
	s, err := artifact.Open(artifact.Config{Dir: t.TempDir(), Now: func() int64 { return 1 }})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestClientLocalStoreHit(t *testing.T) {
	fw := newFakeWorker(t)
	_, id := testSpecJSON(t)
	store := testStore(t)
	if err := store.Put(id, []byte("cached-bytes")); err != nil {
		t.Fatal(err)
	}
	c := &Client{Router: routerOver(t, fw), Local: store}
	res, ok, err := c.FetchArtifact(context.Background(), id)
	if err != nil || !ok {
		t.Fatalf("fetch: ok=%v err=%v", ok, err)
	}
	if res.Source != SourceLocalStore || string(res.Body) != "cached-bytes" {
		t.Fatalf("got source=%s body=%q", res.Source, res.Body)
	}
	if fw.gets.Load() != 0 {
		t.Fatalf("local hit still made %d network gets", fw.gets.Load())
	}
}

func TestClientPeerStoreHitPopulatesLocal(t *testing.T) {
	fw := newFakeWorker(t)
	_, id := testSpecJSON(t)
	fw.artifacts[id] = []byte("peer-bytes")
	store := testStore(t)
	c := &Client{Router: routerOver(t, fw), Local: store}

	res, ok, err := c.FetchArtifact(context.Background(), id)
	if err != nil || !ok {
		t.Fatalf("fetch: ok=%v err=%v", ok, err)
	}
	if res.Source != SourcePeerStore || res.Worker != fw.url() {
		t.Fatalf("got source=%s worker=%s", res.Source, res.Worker)
	}
	// The hit is now cached: a second fetch is local and networkless.
	before := fw.gets.Load()
	res2, ok, err := c.FetchArtifact(context.Background(), id)
	if err != nil || !ok || res2.Source != SourceLocalStore {
		t.Fatalf("second fetch: ok=%v err=%v source=%s", ok, err, res2.Source)
	}
	if fw.gets.Load() != before {
		t.Fatal("second fetch hit the network despite local cache")
	}
}

func TestClientCleanMissIsNotAnError(t *testing.T) {
	fw := newFakeWorker(t)
	_, id := testSpecJSON(t)
	c := &Client{Router: routerOver(t, fw)}
	res, ok, err := c.FetchArtifact(context.Background(), id)
	if err != nil {
		t.Fatalf("clean miss errored: %v", err)
	}
	if ok || res != nil {
		t.Fatalf("clean miss reported a hit: %+v", res)
	}
}

func TestClientFetchAllOwnersDown(t *testing.T) {
	// A router over a closed server: transport errors everywhere.
	dead := httptest.NewServer(http.NotFoundHandler())
	url := dead.URL
	dead.Close()
	r, err := NewRouter([]string{url})
	if err != nil {
		t.Fatal(err)
	}
	_, id := testSpecJSON(t)
	c := &Client{Router: r}
	if _, ok, err := c.FetchArtifact(context.Background(), id); err == nil || ok {
		t.Fatalf("all-owners-down fetch: ok=%v err=%v, want error", ok, err)
	}
}

func TestClientSubmitFailsOverToNextOwner(t *testing.T) {
	spec, id := testSpecJSON(t)
	w1, w2 := newFakeWorker(t), newFakeWorker(t)
	for _, fw := range []*fakeWorker{w1, w2} {
		fw.submit = func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK)
			w.Write([]byte("artifact-bytes"))
		}
	}
	router := routerOver(t, w1, w2)
	owners := router.Owners(id)

	// Kill the primary owner; submission must land on the failover.
	primary, failover := w1, w2
	if owners[0] == w2.url() {
		primary, failover = w2, w1
	}
	primary.srv.Close()

	store := testStore(t)
	c := &Client{Router: router, Local: store}
	res, err := c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if res.Source != SourceSubmit || res.Worker != failover.url() || res.Status != http.StatusOK {
		t.Fatalf("got source=%s worker=%s status=%d, want submit on %s", res.Source, res.Worker, res.Status, failover.url())
	}
	if string(res.Body) != "artifact-bytes" {
		t.Fatalf("body %q", res.Body)
	}
	// Success is cached locally under the spec's content address.
	if body, _, err := store.Get(id); err != nil || string(body) != "artifact-bytes" {
		t.Fatalf("local cache after submit: %q, %v", body, err)
	}
}

func TestClientSubmitRetriesBackpressure(t *testing.T) {
	spec, id := testSpecJSON(t)
	w1, w2 := newFakeWorker(t), newFakeWorker(t)
	router := routerOver(t, w1, w2)
	owners := router.Owners(id)
	byURL := map[string]*fakeWorker{w1.url(): w1, w2.url(): w2}

	// Primary answers 429 (queue full); failover serves the job.
	byURL[owners[0]].submit = func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
	}
	byURL[owners[1]].submit = func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok-bytes"))
	}
	c := &Client{Router: router}
	res, err := c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if res.Worker != owners[1] || string(res.Body) != "ok-bytes" {
		t.Fatalf("got worker=%s body=%q, want failover %s", res.Worker, res.Body, owners[1])
	}
}

func TestClientSubmitDefinitiveErrorIsAuthoritative(t *testing.T) {
	spec, id := testSpecJSON(t)
	w1, w2 := newFakeWorker(t), newFakeWorker(t)
	router := routerOver(t, w1, w2)
	owners := router.Owners(id)
	byURL := map[string]*fakeWorker{w1.url(): w1, w2.url(): w2}

	byURL[owners[0]].submit = func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"failed"}`, http.StatusUnprocessableEntity)
	}
	byURL[owners[1]].submit = func(w http.ResponseWriter, r *http.Request) {
		t.Error("definitive failure leaked to the failover owner")
	}
	c := &Client{Router: router}
	res, err := c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if res.Status != http.StatusUnprocessableEntity || res.Worker != owners[0] {
		t.Fatalf("got status=%d worker=%s", res.Status, res.Worker)
	}
}

func TestClientSubmitInvalidSpec(t *testing.T) {
	c := &Client{Router: routerOver(t, newFakeWorker(t))}
	if _, err := c.Submit(context.Background(), []byte(`{"kind":"nope"}`)); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestProxyForwardsToOwnerAndMarksHeader(t *testing.T) {
	spec, id := testSpecJSON(t)

	// The "owner" worker records whether it saw the forwarded marker.
	var sawForwarded atomic.Bool
	var ownerBody atomic.Value
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" {
			sawForwarded.Store(r.Header.Get(ForwardedHeader) != "")
			b := make([]byte, r.ContentLength)
			r.Body.Read(b)
			ownerBody.Store(string(b))
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			w.Write([]byte(`{"served-by":"owner"}`))
			return
		}
		http.NotFound(w, r)
	}))
	defer owner.Close()

	localServed := false
	local := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		localServed = true
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"served-by":"local"}`))
	})

	// Build a two-worker router where the other worker owns the id;
	// self is a distinct name so forwarding must occur.
	self := "http://self.invalid"
	router, err := NewRouter([]string{self, owner.URL})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Wrap(local, router, self, nil)
	if err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs?wait=1", bytes.NewReader(spec))
	p.ServeHTTP(rec, req)

	wantLocal := router.Owner(id) == self
	if wantLocal {
		if !localServed {
			t.Fatal("self owns the id but the proxy did not serve locally")
		}
		return
	}
	if localServed {
		t.Fatal("proxy served locally for a peer-owned id")
	}
	if rec.Code != http.StatusOK || rec.Body.String() != `{"served-by":"owner"}` {
		t.Fatalf("forwarded response: %d %q", rec.Code, rec.Body.String())
	}
	if !sawForwarded.Load() {
		t.Fatal("forwarded request missing the forwarded header")
	}
	if ownerBody.Load().(string) != string(spec) {
		t.Fatalf("owner received body %q, want the original spec", ownerBody.Load())
	}
}

func TestProxyForwardedRequestStaysLocal(t *testing.T) {
	spec, _ := testSpecJSON(t)
	localServed := false
	local := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		localServed = true
		w.WriteHeader(http.StatusOK)
	})
	self := "http://self.invalid"
	router, err := NewRouter([]string{self, "http://peer.invalid"})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Wrap(local, router, self, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader(spec))
	req.Header.Set(ForwardedHeader, "http://peer.invalid")
	p.ServeHTTP(rec, req)
	if !localServed {
		t.Fatal("forwarded submission was not served locally (loop risk)")
	}
}

func TestProxyInvalidSpecServedLocally(t *testing.T) {
	localServed := false
	local := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		localServed = true
		http.Error(w, `{"error":"bad"}`, http.StatusBadRequest)
	})
	self := "http://self.invalid"
	router, err := NewRouter([]string{self, "http://peer.invalid"})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Wrap(local, router, self, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader([]byte(`{"kind":`)))
	p.ServeHTTP(rec, req)
	if !localServed || rec.Code != http.StatusBadRequest {
		t.Fatalf("invalid spec: local=%v code=%d", localServed, rec.Code)
	}
}

func TestProxyFailoverWhenOwnerUnreachable(t *testing.T) {
	spec, id := testSpecJSON(t)
	localServed := false
	local := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		localServed = true
		body := make([]byte, r.ContentLength)
		r.Body.Read(body)
		if string(body) != string(spec) {
			t.Errorf("local handler saw body %q", body)
		}
		w.WriteHeader(http.StatusOK)
	})
	// The peer is unreachable (closed server). Whichever of the two
	// owns the id, the submission must end up served locally — either
	// directly (self owns it) or by failover past the dead peer.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	self := "http://self.invalid"
	router, err := NewRouter([]string{self, deadURL})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Wrap(local, router, self, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader(spec))
	p.ServeHTTP(rec, req)
	if !localServed {
		t.Fatalf("id %s (owner %s): submission with dead peer never reached the local handler", id[:8], router.Owner(id))
	}
	if rec.Code != http.StatusOK {
		t.Fatalf("code %d", rec.Code)
	}
}

func TestProxyShardEndpoint(t *testing.T) {
	self := "http://self.invalid"
	peer := "http://peer.invalid"
	router, err := NewRouter([]string{self, peer})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Wrap(http.NotFoundHandler(), router, self, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, id := testSpecJSON(t)
	rec := httptest.NewRecorder()
	p.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/shard/"+id, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("code %d", rec.Code)
	}
	var info struct {
		ID     string   `json:"id"`
		Owners []string `json:"owners"`
		Self   string   `json:"self"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.ID != id || info.Self != self || len(info.Owners) != 2 {
		t.Fatalf("shard info %+v", info)
	}
	if fmt.Sprint(info.Owners) != fmt.Sprint(router.Owners(id)) {
		t.Fatalf("owners %v != router %v", info.Owners, router.Owners(id))
	}

	// Malformed id is a 400.
	rec = httptest.NewRecorder()
	p.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/shard/short", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("short id: code %d", rec.Code)
	}
}

func TestWrapRejectsUnknownSelf(t *testing.T) {
	router, err := NewRouter([]string{"http://a.invalid"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Wrap(http.NotFoundHandler(), router, "http://b.invalid", nil); err == nil {
		t.Fatal("Wrap accepted a self outside the worker set")
	}
}
