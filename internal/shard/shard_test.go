package shard

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// testIDs returns n deterministic content addresses (the generator is
// explicitly seeded — placement properties must be reproducible).
func testIDs(n int) []string {
	rng := rand.New(rand.NewSource(42))
	ids := make([]string, n)
	for i := range ids {
		sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d-%d", i, rng.Int63())))
		ids[i] = hex.EncodeToString(sum[:])
	}
	return ids
}

func workerSet(n int) []string {
	ws := make([]string, n)
	for i := range ws {
		ws[i] = fmt.Sprintf("http://worker-%c.example:83%02d", 'a'+i, i)
	}
	return ws
}

func TestNewRouterRejections(t *testing.T) {
	cases := [][]string{
		nil,
		{},
		{""},
		{"w1", "w1"},
		{"w1", ""},
	}
	for _, ws := range cases {
		if _, err := NewRouter(ws); err == nil {
			t.Errorf("NewRouter(%q) accepted an invalid worker set", ws)
		}
	}
	if _, err := NewRouter([]string{"w1"}); err != nil {
		t.Fatalf("singleton set rejected: %v", err)
	}
}

// TestPlacementTotal: every id receives a complete owner ordering — a
// permutation of the worker set, never missing or repeating a worker.
func TestPlacementTotal(t *testing.T) {
	workers := workerSet(5)
	r, err := NewRouter(workers)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]string(nil), workers...)
	sort.Strings(want)
	for _, id := range testIDs(500) {
		owners := r.Owners(id)
		if len(owners) != len(workers) {
			t.Fatalf("id %s placed on %d of %d workers", id[:8], len(owners), len(workers))
		}
		got := append([]string(nil), owners...)
		sort.Strings(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("id %s owner order %v is not a permutation of the worker set", id[:8], owners)
		}
	}
}

// TestPlacementDeterministic: placement is a pure function of
// (workers, id) — indifferent to construction order and to which
// router instance computes it.
func TestPlacementDeterministic(t *testing.T) {
	workers := workerSet(7)
	r1, err := NewRouter(workers)
	if err != nil {
		t.Fatal(err)
	}
	// Same set, reversed construction order.
	rev := make([]string, len(workers))
	for i, w := range workers {
		rev[len(workers)-1-i] = w
	}
	r2, err := NewRouter(rev)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range testIDs(500) {
		a, b := r1.Owners(id), r2.Owners(id)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("id %s: order-dependent placement %v vs %v", id[:8], a, b)
		}
		if !reflect.DeepEqual(a, r1.Owners(id)) {
			t.Fatalf("id %s: repeated call diverged", id[:8])
		}
	}
}

// TestPlacementMinimalDisruption: removing one of N workers remaps
// only that worker's keys. The differential placement snapshot —
// owner-per-id before and after — shows every other id keeping its
// owner, and the displaced ids landing exactly on their recorded
// first-failover worker.
func TestPlacementMinimalDisruption(t *testing.T) {
	workers := workerSet(6)
	full, err := NewRouter(workers)
	if err != nil {
		t.Fatal(err)
	}
	ids := testIDs(2000)

	// Snapshot before: primary owner and failover per id.
	before := make(map[string][]string, len(ids))
	perWorker := make(map[string]int)
	for _, id := range ids {
		owners := full.Owners(id)
		before[id] = owners
		perWorker[owners[0]]++
	}
	// Sanity: with 6 workers and 2000 keys every worker owns some.
	for _, w := range workers {
		if perWorker[w] == 0 {
			t.Fatalf("worker %s owns no keys out of %d — rendezvous badly skewed", w, len(ids))
		}
	}

	for _, victim := range workers {
		var survivors []string
		for _, w := range workers {
			if w != victim {
				survivors = append(survivors, w)
			}
		}
		reduced, err := NewRouter(survivors)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, id := range ids {
			prev := before[id]
			now := reduced.Owner(id)
			if prev[0] != victim {
				// Not the victim's key: its owner must not change.
				if now != prev[0] {
					t.Fatalf("removing %s moved id %s from %s to %s", victim, id[:8], prev[0], now)
				}
				continue
			}
			moved++
			// The victim's keys land exactly on the failover the full
			// router had already advertised.
			if now != prev[1] {
				t.Fatalf("id %s remapped to %s, want advertised failover %s", id[:8], now, prev[1])
			}
		}
		if moved != perWorker[victim] {
			t.Fatalf("removing %s moved %d keys, want exactly its %d", victim, moved, perWorker[victim])
		}
	}
}

// TestFailoverOrderConsistency: the tail of an id's owner order (its
// failover chain) is itself the owner order of the reduced worker set,
// so repeated failures keep every participant in agreement.
func TestFailoverOrderConsistency(t *testing.T) {
	workers := workerSet(5)
	full, err := NewRouter(workers)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range testIDs(200) {
		owners := full.Owners(id)
		for cut := 1; cut < len(workers); cut++ {
			reduced, err := NewRouter(owners[cut:])
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(reduced.Owners(id), owners[cut:]) {
				t.Fatalf("id %s: failover tail %v disagrees with reduced-set order %v",
					id[:8], owners[cut:], reduced.Owners(id))
			}
		}
	}
}

// TestScoreSeparator: the worker/id concatenation is delimited, so
// shifting bytes between the two cannot alias a score.
func TestScoreSeparator(t *testing.T) {
	if score("ab", "c") == score("a", "bc") {
		t.Fatal("score collides across the worker/id boundary")
	}
}

// TestPlacementGoldenSnapshot pins a handful of placements so an
// accidental change to the hash (a different digest, a different
// prefix width, a different tie-break) cannot slip in as a silent
// cluster-wide remap: every stored artifact would change owners.
func TestPlacementGoldenSnapshot(t *testing.T) {
	r, err := NewRouter([]string{"http://a:1", "http://b:2", "http://c:3"})
	if err != nil {
		t.Fatal(err)
	}
	golden := map[string]string{
		idFor("spec-1"): "http://a:1",
		idFor("spec-2"): "http://a:1",
		idFor("spec-3"): "http://c:3",
		idFor("spec-4"): "http://c:3",
	}
	for id, want := range golden {
		if got := r.Owner(id); got != want {
			t.Errorf("Owner(%s) = %s, want %s (rendezvous function changed?)", id[:8], got, want)
		}
	}
}

func idFor(tag string) string {
	sum := sha256.Sum256([]byte(tag))
	return hex.EncodeToString(sum[:])
}
