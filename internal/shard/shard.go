// Package shard routes content addresses onto a set of drsd workers.
//
// The router is rendezvous hashing (highest-random-weight): every
// (worker, id) pair gets a score — the first 8 bytes of
// SHA-256(worker || 0x00 || id) — and an id's owner order is its
// workers sorted by descending score. The properties the cluster
// leans on, each pinned by a property test:
//
//   - Total: every well-formed id has a full owner ordering over the
//     worker set; nothing ever fails to place.
//   - Deterministic: the ordering is a pure function of (workers, id).
//     Two routers built from the same worker set — on different
//     machines, in different processes, in either order — agree on
//     every placement. That agreement is what makes cross-node
//     singleflight work without any coordination service: every
//     client and every worker independently computes the same owner.
//   - Minimally disruptive: removing a worker reassigns only the ids
//     that worker owned; every other id keeps its owner. (Scores for
//     surviving workers are unchanged, so the argmax can only change
//     when the old argmax left.)
//   - Failover is the same ordering, continued: the owner order for an
//     id is its failover order, so when the primary is unreachable
//     every participant independently agrees on who is next.
package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Router maps content addresses onto a fixed worker set.
type Router struct {
	workers []string // canonical (sorted, deduped) worker names
}

// NewRouter builds a router over the given worker names (base URLs in
// the daemon; any non-empty strings in tests). Order does not matter —
// the set is canonicalized — but the set must be non-empty and free of
// duplicates and empty names.
func NewRouter(workers []string) (*Router, error) {
	if len(workers) == 0 {
		return nil, errors.New("shard: empty worker set")
	}
	seen := make(map[string]bool, len(workers))
	canon := make([]string, 0, len(workers))
	for _, w := range workers {
		if w == "" {
			return nil, errors.New("shard: empty worker name")
		}
		if seen[w] {
			return nil, fmt.Errorf("shard: duplicate worker %q", w)
		}
		seen[w] = true
		canon = append(canon, w)
	}
	sort.Strings(canon)
	return &Router{workers: canon}, nil
}

// Workers returns the canonical worker set.
func (r *Router) Workers() []string {
	out := make([]string, len(r.workers))
	copy(out, r.workers)
	return out
}

// score is the rendezvous weight of (worker, id): the big-endian
// uint64 prefix of SHA-256(worker || 0x00 || id). The separator keeps
// ("ab","c") and ("a","bc") from colliding.
func score(worker, id string) uint64 {
	h := sha256.New()
	h.Write([]byte(worker))
	h.Write([]byte{0})
	h.Write([]byte(id))
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return binary.BigEndian.Uint64(sum[:8])
}

// Owners returns every worker in descending preference order for id:
// element 0 is the owner, element 1 the first failover, and so on.
// Ties (cryptographically negligible, but the ordering must be total)
// break toward the lexically smaller worker name.
func (r *Router) Owners(id string) []string {
	type ranked struct {
		w string
		s uint64
	}
	rs := make([]ranked, len(r.workers))
	for i, w := range r.workers {
		rs[i] = ranked{w, score(w, id)}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].s != rs[j].s {
			return rs[i].s > rs[j].s
		}
		return rs[i].w < rs[j].w
	})
	out := make([]string, len(rs))
	for i, x := range rs {
		out[i] = x.w
	}
	return out
}

// Owner returns the primary owner of id.
func (r *Router) Owner(id string) string { return r.Owners(id)[0] }
