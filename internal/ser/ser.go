// Package ser implements a Shader-Execution-Reordering-style policy:
// reorder-at-hit. When a warp diverges, the threads leaving the
// majority path park in a bounded on-chip reorder window tagged with a
// coherence key derived from the thread's current hit object (the BVH
// child reference it is about to visit or test). A hardware regrouper
// re-forms full warps from the window sorted by coherence key, so the
// threads of a re-formed warp fetch the same (or neighbouring) nodes
// and triangles and their memory accesses coalesce — the mechanism
// behind ReorderThread()'s 20-100% production gains (SNIPPETS.md
// snippets 1-2).
//
// The model sits between DMK and DRS in cost: like DMK it re-forms
// warps from a shared pool at divergence, but the move is a hardware
// context handoff (a couple of injected instructions per re-formed
// warp), not a 17-register spawn-memory dump/load; like DRS it sorts
// by work coherence, but within a bounded window rather than over the
// whole resident ray population.
//
// Determinism: the window is a dense per-target table; spawning picks
// the fullest target (lowest target id on ties) and the entries sorted
// by (coherence key, slot id) — the slot id is the final tie-break, so
// the permutation is a pure function of simulation state.
package ser

import (
	"sort"

	"repro/internal/geom"
	"repro/internal/kernels"
	"repro/internal/metrics"
	"repro/internal/progcheck"
	"repro/internal/reorder"
	"repro/internal/simt"
)

// Config holds the SER parameters.
type Config struct {
	// WindowSize bounds the reorder window in thread contexts (the
	// sorting scope; production SER reorders within bounded hardware
	// windows, not globally). Divergences that would overflow the
	// window serialize on the IPDOM stack instead. Defaults to 8 warps
	// of threads.
	WindowSize int
	// MinDivergence is the smallest departing minority worth parking;
	// smaller splits serialize on the reconvergence stack. Defaults
	// to 2.
	MinDivergence int
	// MinOccupancy is the warp occupancy (in lanes) below which the
	// surviving majority also parks, freeing the warp for re-formation.
	// Defaults to 3/4 of a warp.
	MinOccupancy int
	// ReorderInstrs is the instruction overhead charged per re-formed
	// warp (the ReorderThread() handoff; SER is hardware-assisted, so
	// this is small). Defaults to 2.
	ReorderInstrs int
}

// DefaultConfig returns the evaluation defaults.
func DefaultConfig() Config {
	return Config{WindowSize: 256, MinDivergence: 2, MinOccupancy: 24, ReorderInstrs: 2}
}

// Stats counts SER activity.
type Stats struct {
	// Reorders counts warps re-formed from the window.
	Reorders int64
	// ThreadsMoved counts thread contexts parked and re-grouped.
	ThreadsMoved int64
	// WindowHighWater is the maximum window occupancy in threads.
	WindowHighWater int64
	// Serialized counts divergences that fell back to the IPDOM stack
	// (window full, divergence too small, or stacked reconvergence).
	Serialized int64
}

// Add merges o into s (statcheck.AddCovers guards field coverage).
func (s *Stats) Add(o Stats) {
	s.Reorders += o.Reorders
	s.ThreadsMoved += o.ThreadsMoved
	if o.WindowHighWater > s.WindowHighWater {
		s.WindowHighWater = o.WindowHighWater
	}
	s.Serialized += o.Serialized
}

// entry is one parked thread context: its kernel slot and coherence
// key.
type entry struct {
	key  int64
	slot int32
}

// Wrapper attaches SER behaviour to the baseline kernel through the
// engine's divergence hook plus a regrouper tick.
type Wrapper struct {
	cfg      Config
	k        *kernels.Aila
	warpSize int

	// window holds parked threads per branch target, indexed densely by
	// block id (no map iteration anywhere near the spawn decision).
	window [][]entry
	count  int

	stats Stats
}

// New creates the per-SMX SER wrapper.
func New(cfg Config, k *kernels.Aila, warpSize int) *Wrapper {
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 8 * warpSize
	}
	if cfg.MinDivergence <= 0 {
		cfg.MinDivergence = 2
	}
	if cfg.MinOccupancy <= 0 {
		cfg.MinOccupancy = warpSize * 3 / 4
	}
	if cfg.ReorderInstrs <= 0 {
		cfg.ReorderInstrs = 2
	}
	return &Wrapper{
		cfg:      cfg,
		k:        k,
		warpSize: warpSize,
		window:   make([][]entry, len(k.Blocks())),
	}
}

// Hooks returns the engine hooks implementing SER.
func (w *Wrapper) Hooks() simt.Hooks {
	return simt.Hooks{
		OnDiverge:  w.onDiverge,
		Tick:       w.tick,
		OnWarpDone: w.onWarpDone,
	}
}

// Stats returns a snapshot of the wrapper's counters.
func (w *Wrapper) Stats() Stats { return w.stats }

// RegisterMetrics registers the wrapper's counters under prefix
// ("smx3/ser") in the unified registry, plus the live window occupancy
// as a gauge.
func (w *Wrapper) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.RegisterStruct(prefix, &w.stats)
	reg.Gauge(prefix+"/window_threads", func() int64 { return int64(w.count) })
}

// WindowThreads returns the current reorder-window occupancy.
func (w *Wrapper) WindowThreads() int { return w.count }

// hitKey derives a thread's coherence key: the identity hash of the
// hit-object reference it will work on next — the leaf being tested,
// a postponed leaf, or the child node about to be visited. Packed
// child references are already unique per node/leaf, and nearby BVH
// nodes have nearby indices, so sorting raw references groups equal
// hit objects first and spatial neighbours second. Threads about to
// fetch a fresh ray key on their ray index, preserving stream order.
func (w *Wrapper) hitKey(slot int32) int64 {
	c := w.k.Ctx(slot)
	switch {
	case c.CurLeaf != kernels.RefNone:
		return c.CurLeaf
	case c.Pending != kernels.RefNone:
		return c.Pending
	case c.Cur != kernels.RefNone:
		return c.Cur
	default:
		return int64(c.RayIndex)
	}
}

// onDiverge intercepts warp divergence: departing threads park in the
// reorder window keyed by hit object; the surviving majority keeps
// running. A split too small to pay for reordering, a stacked
// reconvergence, or a full window serializes on the IPDOM stack
// instead — the window bound is what makes this SER-style rather than
// a global sort.
func (w *Wrapper) onDiverge(s *simt.SMX, warp, block int, lanes []int, targets []int) bool {
	counts := make(map[int]int, 4)
	for _, t := range targets {
		counts[t]++
	}
	major, majorN := targets[0], 0
	//drslint:allow map-range -- lowest-target tie-break makes the pick order-independent
	for t, n := range counts {
		if n > majorN || (n == majorN && t < major) {
			major, majorN = t, n
		}
	}

	dumpAll := majorN < w.cfg.MinOccupancy
	departing := len(lanes) - majorN
	if dumpAll {
		departing = len(lanes)
	}
	wp := s.Warp(warp)
	switch {
	case !dumpAll && departing < w.cfg.MinDivergence:
		w.stats.Serialized++
		return false
	case wp.StackDepth() > 1:
		// Threads parked at an outer reconvergence point would be
		// dropped by a remap; serialize this divergence.
		w.stats.Serialized++
		return false
	case w.count+departing > w.cfg.WindowSize:
		w.stats.Serialized++
		return false
	}

	slots := wp.Slots()
	newSlots := make([]int32, w.warpSize)
	for i := range newSlots {
		newSlots[i] = -1
	}
	keep := 0
	for i, l := range lanes {
		if !dumpAll && targets[i] == major {
			newSlots[keep] = slots[l]
			keep++
			continue
		}
		w.park(targets[i], slots[l])
	}
	wp.SetMapping(newSlots, major)
	s.RecountLive()
	w.trySpawn(s)
	return true
}

// park deposits one thread context in the window.
func (w *Wrapper) park(target int, slot int32) {
	w.window[target] = append(w.window[target], entry{key: w.hitKey(slot), slot: slot})
	w.count++
	if int64(w.count) > w.stats.WindowHighWater {
		w.stats.WindowHighWater = int64(w.count)
	}
	w.stats.ThreadsMoved++
}

// onWarpDone lets the regrouper reuse a retiring warp.
func (w *Wrapper) onWarpDone(s *simt.SMX, warp int) {
	w.trySpawn(s)
}

// tick is the regrouper's cycle hook.
func (w *Wrapper) tick(s *simt.SMX, now int64) {
	if w.count == 0 {
		return
	}
	w.trySpawn(s)
}

// trySpawn re-forms warps from the window: the fullest target first
// (lowest target id on ties), its entries sorted by coherence key with
// the slot id as the final tie-break. Full warps only, until nothing
// else is running (the drain phase re-forms partial warps so no parked
// thread is stranded).
func (w *Wrapper) trySpawn(s *simt.SMX) {
	if w.count == 0 {
		return
	}
	for {
		best, bestN := -1, 0
		for t, q := range w.window {
			if len(q) > bestN {
				best, bestN = t, len(q)
			}
		}
		if best < 0 || bestN == 0 {
			return
		}
		if bestN < w.warpSize && s.LiveWarps() > 0 {
			return
		}
		var free *simt.Warp
		for i := 0; i < s.NumWarps(); i++ {
			if s.Warp(i).Done() {
				free = s.Warp(i)
				break
			}
		}
		if free == nil {
			return
		}
		q := w.window[best]
		sort.Slice(q, func(i, j int) bool {
			if q[i].key != q[j].key {
				return q[i].key < q[j].key
			}
			return q[i].slot < q[j].slot
		})
		n := bestN
		if n > w.warpSize {
			n = w.warpSize
		}
		slots := make([]int32, w.warpSize)
		for i := range slots {
			slots[i] = -1
		}
		for i := 0; i < n; i++ {
			slots[i] = q[i].slot
		}
		w.window[best] = q[n:]
		w.count -= n
		free.Resume(slots, best)
		s.RecountLive()
		w.stats.Reorders++
		// The ReorderThread() handoff: a short hardware context move,
		// not a spawn-memory round trip.
		s.InjectInstrs(free, w.cfg.ReorderInstrs, n, simt.TagSI, 0)
	}
}

// Policy adapts SER to the reorder.Policy interface.
type Policy struct {
	Cfg Config
}

// NewPolicy wraps a SER configuration as a policy.
func NewPolicy(cfg Config) *Policy { return &Policy{Cfg: cfg} }

// Name implements reorder.Policy.
func (p *Policy) Name() string { return "ser" }

// Summary implements reorder.Policy.
func (p *Policy) Summary() string {
	return "SER-style reorder-at-hit: divergent threads regrouped by hit-object key in a bounded window"
}

// Validate implements reorder.Policy: the constructor defaults every
// non-positive parameter, so only negatives are rejected.
func (p *Policy) Validate() error {
	if p.Cfg.WindowSize < 0 || p.Cfg.MinDivergence < 0 || p.Cfg.MinOccupancy < 0 || p.Cfg.ReorderInstrs < 0 {
		return errNegativeConfig
	}
	return nil
}

// Warps implements reorder.Policy: 0 accepts the harness warp count.
func (p *Policy) Warps() int { return 0 }

// Caps implements reorder.Policy.
func (p *Policy) Caps() progcheck.Caps { return progcheck.Caps{} }

// NewSMX implements reorder.Policy. SER composes with the stock kernel
// (speculative traversal included): reorder-at-hit is orthogonal to
// what the kernel does between hits, which is how production SER ships.
func (p *Policy) NewSMX(env reorder.Env) (reorder.Instance, error) {
	k := kernels.NewAila(env.Data, env.Pool, env.Cfg.MaxWarpsPerSMX*env.Cfg.WarpSize, env.Aila)
	if env.Verify != nil {
		if err := env.Verify(k); err != nil {
			return nil, err
		}
	}
	w := New(p.Cfg, k, env.Cfg.WarpSize)
	if env.Collector != nil {
		w.RegisterMetrics(env.Collector.Registry, env.MetricsPrefix)
	}
	return &instance{k: k, w: w}, nil
}

// instance is one SMX's SER attachment.
type instance struct {
	k *kernels.Aila
	w *Wrapper
}

func (i *instance) Program() simt.SMXProgram {
	return simt.SMXProgram{Kernel: i.k, Hooks: i.w.Hooks()}
}

func (i *instance) Hits() []geom.Hit { return i.k.Hits }

// TypedStats implements reorder.TypedStatser with the SER Stats.
func (i *instance) TypedStats() any { return i.w.Stats() }

// ReorderStats implements reorder.StatsReporter.
func (i *instance) ReorderStats() reorder.Stats {
	st := i.w.Stats()
	return reorder.Stats{Reorders: st.Reorders, RaysMoved: st.ThreadsMoved}
}

// errNegativeConfig keeps Validate allocation-free and comparable.
var errNegativeConfig = &configError{}

type configError struct{}

func (*configError) Error() string {
	return "ser: configuration values must not be negative (zero selects the default)"
}
