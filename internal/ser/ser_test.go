package ser_test

import (
	"testing"

	"repro/internal/bvh"
	"repro/internal/geom"
	"repro/internal/harness"
	"repro/internal/kernels"
	"repro/internal/render"
	"repro/internal/reorder"
	"repro/internal/scene"
	"repro/internal/ser"
	"repro/internal/statcheck"
)

// workload builds a small incoherent secondary-ray stream.
func workload(t *testing.T) ([]geom.Ray, *kernels.SceneData, *bvh.BVH) {
	t.Helper()
	s := scene.Generate(scene.ConferenceRoom, 1200)
	bv, err := bvh.Build(s.Tris, bvh.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cam := render.CameraFor(scene.ConferenceRoom, 48, 36)
	res, err := render.Render(s, bv, cam, render.Config{
		Width: 48, Height: 36, SamplesPerPixel: 1, MaxDepth: 4, CaptureTraces: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rays := res.Traces.Bounce(2).Rays
	if len(rays) < 300 {
		t.Fatalf("workload too small: %d rays", len(rays))
	}
	return rays, kernels.NewSceneData(bv), bv
}

func smallOptions() harness.Options {
	opt := harness.DefaultOptions()
	opt.Simt.NumSMX = 2
	opt.Simt.MaxCycles = 1 << 24
	opt.AilaWarps = 8
	return opt
}

// TestSERMatchesReference: reorder-at-hit must not change any hit, and
// the run must be bit-deterministic (the harness replays the whole
// simulation and byte-compares).
func TestSERMatchesReference(t *testing.T) {
	rays, data, bv := workload(t)
	opt := smallOptions()
	opt.CheckDeterminism = true
	res, err := harness.RunNamed("ser", rays, data, opt)
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	for i, r := range rays {
		want := bv.Intersect(r, nil)
		got := res.Hits[i]
		if got.TriIndex != want.TriIndex {
			if got.TriIndex >= 0 && want.TriIndex >= 0 && abs(got.T-want.T) < 1e-4 {
				continue
			}
			bad++
			if bad <= 3 {
				t.Errorf("ray %d: got tri %d (t=%v), want tri %d (t=%v)",
					i, got.TriIndex, got.T, want.TriIndex, want.T)
			}
		}
	}
	if bad > 0 {
		t.Fatalf("%d/%d wrong hits", bad, len(rays))
	}
	if res.Policy != "ser" {
		t.Errorf("Result.Policy = %q", res.Policy)
	}
	if res.Arch != harness.Arch(-1) {
		t.Errorf("Result.Arch = %d, want -1 for a post-enum policy", res.Arch)
	}
}

// TestSERReordersIncoherentRays: on bounce-2 rays the window must see
// real traffic and re-form warps, and the bounded window must hold.
func TestSERReordersIncoherentRays(t *testing.T) {
	rays, data, _ := workload(t)
	cfg := ser.DefaultConfig()
	opt := smallOptions()
	opt.Policy = ser.NewPolicy(cfg)
	res, err := harness.RunNamed("ser", rays, data, opt)
	if err != nil {
		t.Fatal(err)
	}
	st := res.SERStats
	if st.Reorders == 0 || st.ThreadsMoved == 0 {
		t.Fatalf("SER did not reorder: %+v", st)
	}
	if st.WindowHighWater > int64(cfg.WindowSize) {
		t.Fatalf("window high water %d exceeds bound %d", st.WindowHighWater, cfg.WindowSize)
	}
	if res.Reorder.Reorders != st.Reorders || res.Reorder.RaysMoved != st.ThreadsMoved {
		t.Errorf("generic stats %+v disagree with typed stats %+v", res.Reorder, st)
	}
	// The injected handoff instructions must show up as SI work.
	if bd := res.GPU.Stats.UtilizationBreakdown(32); bd.SI <= 0 {
		t.Errorf("SER charged no SI instructions")
	}
}

// TestSERTinyWindowSerializes: a window too small to park anything must
// fall back to IPDOM serialization and still trace correctly.
func TestSERTinyWindowSerializes(t *testing.T) {
	rays, data, bv := workload(t)
	rays = rays[:200]
	cfg := ser.DefaultConfig()
	cfg.WindowSize = 1 // below any MinDivergence split
	opt := smallOptions()
	opt.Policy = ser.NewPolicy(cfg)
	res, err := harness.RunNamed("ser", rays, data, opt)
	if err != nil {
		t.Fatal(err)
	}
	st := res.SERStats
	if st.ThreadsMoved != 0 {
		t.Fatalf("1-thread window parked %d threads", st.ThreadsMoved)
	}
	if st.Serialized == 0 {
		t.Errorf("no serialized divergences recorded")
	}
	for i, r := range rays {
		want := bv.Intersect(r, nil)
		if res.Hits[i].TriIndex != want.TriIndex && abs(res.Hits[i].T-want.T) >= 1e-4 {
			t.Fatalf("ray %d wrong with serializing window", i)
		}
	}
}

func TestSERPolicyValidate(t *testing.T) {
	p := ser.NewPolicy(ser.Config{WindowSize: -1})
	if p.Validate() == nil {
		t.Fatal("negative WindowSize accepted")
	}
	if err := ser.NewPolicy(ser.Config{}).Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	var _ reorder.Policy = p
}

func TestSERStatsAddCovers(t *testing.T) {
	if err := statcheck.AddCovers(ser.Stats{}); err != nil {
		t.Fatal(err)
	}
}

func abs(f float32) float32 {
	if f < 0 {
		return -f
	}
	return f
}
