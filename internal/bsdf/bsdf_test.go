package bsdf

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/scene"
	"repro/internal/vec"
)

func TestCosineSampleHemisphereAboveSurface(t *testing.T) {
	p := rng.NewPCG32(1, 1)
	normals := []vec.V3{
		vec.New(0, 1, 0), vec.New(0, 0, 1), vec.New(1, 0, 0),
		vec.New(0.3, 0.6, -0.5).Norm(),
	}
	for _, n := range normals {
		for i := 0; i < 500; i++ {
			d := CosineSampleHemisphere(n, p.Float32(), p.Float32())
			if d.Dot(n) < -1e-4 {
				t.Fatalf("sample below surface: n=%v d=%v", n, d)
			}
			if l := d.Len(); l < 0.99 || l > 1.01 {
				t.Fatalf("sample not unit: %v", l)
			}
		}
	}
}

func TestCosineSampleMeanCos(t *testing.T) {
	// For cosine-weighted sampling, E[cos theta] = 2/3.
	p := rng.NewPCG32(3, 5)
	n := vec.New(0, 1, 0)
	var sum float64
	const N = 50000
	for i := 0; i < N; i++ {
		d := CosineSampleHemisphere(n, p.Float32(), p.Float32())
		sum += float64(d.Dot(n))
	}
	mean := sum / N
	if math.Abs(mean-2.0/3.0) > 0.01 {
		t.Errorf("mean cos = %v, want ~0.667", mean)
	}
}

func TestMirrorReflects(t *testing.T) {
	m := scene.Material{Kind: scene.Mirror, Albedo: vec.New(0.9, 0.9, 0.9)}
	n := vec.New(0, 1, 0)
	wi := vec.New(1, -1, 0).Norm()
	s := SampleBSDF(m, n, wi, 0.5, 0.5)
	if !s.OK {
		t.Fatalf("mirror sample failed")
	}
	want := vec.New(1, 1, 0).Norm()
	if s.Dir.Sub(want).Len() > 1e-5 {
		t.Errorf("mirror dir = %v, want %v", s.Dir, want)
	}
	if s.Weight != m.Albedo {
		t.Errorf("mirror weight = %v", s.Weight)
	}
}

func TestLambertAboveSurface(t *testing.T) {
	m := scene.Material{Kind: scene.Diffuse, Albedo: vec.New(0.5, 0.5, 0.5)}
	p := rng.NewPCG32(9, 2)
	n := vec.New(0, 0, 1)
	wi := vec.New(0.3, 0.2, -0.9).Norm()
	ok := 0
	for i := 0; i < 1000; i++ {
		s := SampleBSDF(m, n, wi, p.Float32(), p.Float32())
		if s.OK {
			ok++
			if s.Dir.Dot(n) < -1e-4 {
				t.Fatalf("diffuse sample below surface")
			}
		}
	}
	if ok < 990 {
		t.Errorf("too many rejected diffuse samples: %d/1000 ok", ok)
	}
}

func TestGlossyLobeAroundMirror(t *testing.T) {
	m := scene.Material{Kind: scene.Glossy, Albedo: vec.New(0.7, 0.7, 0.7), Roughness: 0.2}
	p := rng.NewPCG32(4, 8)
	n := vec.New(0, 1, 0)
	wi := vec.New(1, -1, 0).Norm()
	mirror := vec.Reflect(wi, n).Norm()
	var sumCos float64
	cnt := 0
	for i := 0; i < 2000; i++ {
		s := SampleBSDF(m, n, wi, p.Float32(), p.Float32())
		if !s.OK {
			continue
		}
		cnt++
		sumCos += float64(s.Dir.Dot(mirror))
		if s.Dir.Dot(n) < -1e-4 {
			t.Fatalf("glossy sample below surface")
		}
	}
	if cnt == 0 {
		t.Fatalf("all glossy samples rejected")
	}
	if mean := sumCos / float64(cnt); mean < 0.9 {
		t.Errorf("glossy lobe too wide for roughness 0.2: mean cos to mirror = %v", mean)
	}
}

func TestGlossyRougherIsWider(t *testing.T) {
	width := func(rough float32) float64 {
		m := scene.Material{Kind: scene.Glossy, Albedo: vec.Splat(0.7), Roughness: rough}
		p := rng.NewPCG32(4, 8)
		n := vec.New(0, 1, 0)
		wi := vec.New(1, -1, 0).Norm()
		mirror := vec.Reflect(wi, n).Norm()
		var sum float64
		cnt := 0
		for i := 0; i < 4000; i++ {
			s := SampleBSDF(m, n, wi, p.Float32(), p.Float32())
			if s.OK {
				sum += float64(s.Dir.Dot(mirror))
				cnt++
			}
		}
		return sum / float64(cnt)
	}
	tight := width(0.1)
	wide := width(0.8)
	if tight <= wide {
		t.Errorf("expected tighter lobe for lower roughness: %v vs %v", tight, wide)
	}
}

func TestEmissiveAbsorbs(t *testing.T) {
	m := scene.Material{Kind: scene.Emissive, Emission: vec.Splat(5)}
	s := SampleBSDF(m, vec.New(0, 1, 0), vec.New(0, -1, 0), 0.3, 0.4)
	if s.OK {
		t.Errorf("emissive should not scatter")
	}
}
