// Package bsdf implements the surface scattering models used by the
// path tracer: Lambertian diffuse, perfect mirror, and a simple glossy
// (Phong-lobe) reflector. Each model supports importance sampling so the
// renderer can extend paths the way the paper's PBRT workload does.
package bsdf

import (
	"math"

	"repro/internal/scene"
	"repro/internal/vec"
)

// Sample is the result of sampling a BSDF: a new direction, the
// throughput weight (BSDF * cos / pdf already folded in), and whether
// the sample is valid.
type Sample struct {
	Dir    vec.V3
	Weight vec.V3
	OK     bool
}

// SampleBSDF samples an outgoing direction at a surface with material
// m, geometric normal n (unit, facing the incoming ray's side), and
// incoming direction wi (pointing INTO the surface). u1, u2 are uniform
// random numbers in [0,1).
func SampleBSDF(m scene.Material, n, wi vec.V3, u1, u2 float32) Sample {
	switch m.Kind {
	case scene.Mirror:
		d := vec.Reflect(wi, n)
		return Sample{Dir: d, Weight: m.Albedo, OK: true}
	case scene.Glossy:
		return sampleGlossy(m, n, wi, u1, u2)
	case scene.Emissive:
		// Lights absorb; path terminates at lights in the integrator.
		return Sample{}
	default:
		return sampleLambert(m, n, u1, u2)
	}
}

// sampleLambert cosine-samples the hemisphere around n. With cosine
// sampling, weight = albedo exactly.
func sampleLambert(m scene.Material, n vec.V3, u1, u2 float32) Sample {
	d := CosineSampleHemisphere(n, u1, u2)
	if d.Dot(n) <= 0 {
		return Sample{}
	}
	return Sample{Dir: d, Weight: m.Albedo, OK: true}
}

// sampleGlossy samples a Phong lobe around the mirror direction. The
// exponent derives from roughness: low roughness -> tight lobe.
func sampleGlossy(m scene.Material, n, wi vec.V3, u1, u2 float32) Sample {
	r := m.Roughness
	if r <= 0 {
		r = 0.1
	}
	exp := 2/(r*r) - 2
	if exp < 1 {
		exp = 1
	}
	mirror := vec.Reflect(wi, n).Norm()
	// Sample around the mirror direction with a power-cosine lobe.
	cosTheta := float32(math.Pow(float64(u1), 1/float64(exp+1)))
	sinTheta := float32(math.Sqrt(math.Max(0, 1-float64(cosTheta*cosTheta))))
	phi := 2 * math.Pi * float64(u2)
	t, b := vec.OrthoBasis(mirror)
	d := t.Scale(sinTheta * float32(math.Cos(phi))).
		Add(b.Scale(sinTheta * float32(math.Sin(phi)))).
		Add(mirror.Scale(cosTheta))
	if d.Dot(n) <= 0 {
		return Sample{} // lobe dipped below the surface
	}
	// Weight approximates albedo (lobe pdf cancels the lobe itself;
	// the cos/normalization ratio is folded into albedo for speed —
	// adequate for workload generation, which is this package's role).
	return Sample{Dir: d.Norm(), Weight: m.Albedo, OK: true}
}

// CosineSampleHemisphere returns a cosine-weighted direction in the
// hemisphere around unit normal n.
func CosineSampleHemisphere(n vec.V3, u1, u2 float32) vec.V3 {
	r := float32(math.Sqrt(float64(u1)))
	phi := 2 * math.Pi * float64(u2)
	x := r * float32(math.Cos(phi))
	y := r * float32(math.Sin(phi))
	z := float32(math.Sqrt(math.Max(0, 1-float64(u1))))
	t, b := vec.OrthoBasis(n)
	return t.Scale(x).Add(b.Scale(y)).Add(n.Scale(z)).Norm()
}
