package artifact

import (
	"bytes"
	"testing"
)

// FuzzArtifactIndex holds the index codec to its contract: decoding
// arbitrary bytes never panics; whatever decodes cleanly re-encodes to
// a log that decodes to the same records (a store that replays its own
// index must reconstruct exactly the state that wrote it); and a
// reported truncation always points at a valid prefix that itself
// decodes cleanly — that offset is what Open truncates the file to, so
// a lie here would destroy good records.
func FuzzArtifactIndex(f *testing.F) {
	valid := idOf("seed")
	digest := idOf("digest")
	f.Add([]byte(`{"op":"put","id":"` + valid + `","digest":"` + digest + `","size":3,"unix":100}` + "\n"))
	f.Add([]byte(`{"op":"evict","id":"` + valid + `","unix":200}` + "\n"))
	f.Add([]byte(`{"op":"drop","id":"` + valid + `","unix":300}` + "\n"))
	// Truncated tail: a crash mid-append.
	f.Add([]byte(`{"op":"put","id":"` + valid + `","digest":"` + digest + `","size":3,"unix":100}` + "\n" +
		`{"op":"put","id":"` + valid + `","dig`))
	// Duplicate key inside one record.
	f.Add([]byte(`{"op":"put","op":"evict","id":"` + valid + `","unix":1}` + "\n"))
	// Digest that is not a hex sha-256.
	f.Add([]byte(`{"op":"put","id":"` + valid + `","digest":"beef","size":3,"unix":1}` + "\n"))
	// Unknown field, unknown op, trailing garbage, empty line.
	f.Add([]byte(`{"op":"put","id":"` + valid + `","digest":"` + digest + `","size":3,"unix":1,"extra":true}` + "\n"))
	f.Add([]byte(`{"op":"compact","id":"` + valid + `","unix":1}` + "\n"))
	f.Add([]byte(`{"op":"evict","id":"` + valid + `","unix":1} {}` + "\n"))
	f.Add([]byte("\n"))
	f.Add([]byte(`{"op":"evict","id":"` + valid + `","size":9,"unix":1}` + "\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := decodeIndex(data)
		if err != nil {
			if err.Offset < 0 || err.Offset > len(data) || err.Line < 1 {
				t.Fatalf("error location out of range: %+v (len %d)", err, len(data))
			}
			// The valid prefix must stand on its own: Open truncates to
			// Offset and replays, so it has to decode cleanly and to
			// the same records.
			prefix, perr := decodeIndex(data[:err.Offset])
			if perr != nil {
				t.Fatalf("reported prefix does not decode: %v", perr)
			}
			if len(prefix) != len(recs) {
				t.Fatalf("prefix decodes %d records, error path returned %d", len(prefix), len(recs))
			}
		}
		// Round-trip: re-encoding every decoded record yields a log
		// that decodes to identical records.
		var buf bytes.Buffer
		for i := range recs {
			line, eerr := encodeRecord(&recs[i])
			if eerr != nil {
				t.Fatalf("decoded record %d refuses to re-encode: %v", i, eerr)
			}
			buf.Write(line)
		}
		again, aerr := decodeIndex(buf.Bytes())
		if aerr != nil {
			t.Fatalf("re-encoded log does not decode: %v", aerr)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip lost records: %d -> %d", len(recs), len(again))
		}
		for i := range recs {
			if recs[i] != again[i] {
				t.Fatalf("record %d changed in round trip: %+v -> %+v", i, recs[i], again[i])
			}
		}
	})
}
