// Package artifact is the persistent content-addressed result store
// behind drsd: a directory of job artifacts keyed by the service's
// content address (hex SHA-256 of the canonical job spec), each entry
// carrying the SHA-256 digest of its body so every read re-verifies
// the bytes it returns.
//
// The store exists because the simulator's results are
// bit-deterministic: a job's artifact is a pure function of its spec,
// so a stored artifact is provably byte-equal to recomputation. That
// makes the cache semantically invisible — a hit is a correctness
// no-op — and it makes corruption *detectable*: any byte that rots on
// disk breaks the stored digest, Get returns a typed ErrCorrupt, and
// the caller recomputes. The store never has to trust the disk.
//
// Durability model (crash anywhere, restart, no loss of integrity):
//
//   - Bodies are written to tmp/<id>, fsync'd, then renamed into
//     objects/<id[:2]>/<id>. A crash mid-write leaves only a tmp file;
//     a crash between rename and index append leaves an orphan object.
//     Both are deleted on the next Open.
//   - The index is an append-only JSONL log (index.go). Each Put or
//     eviction appends exactly one line after its object operation, so
//     the index never references bytes that are not fully on disk. A
//     crash mid-append leaves a truncated final line, which replay
//     tolerates and drops (the object it described becomes an orphan).
//   - Eviction appends a tombstone line before unlinking the body, so
//     "evicted" is distinguishable from "never stored" across
//     restarts — drsctl surfaces the two as different exit codes.
//
// Concurrency: a Store is safe for concurrent Put/Get/GC from any
// number of goroutines; one mutex serializes index and object
// mutation (artifacts are small relative to simulation cost, so the
// serialization is invisible next to the work it saves).
package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Typed store errors. Callers branch on them: ErrCorrupt and
// ErrEvicted both mean "recompute", but only ErrCorrupt increments the
// corruption counters, and ErrEvicted maps to a distinct drsctl exit
// code (a job that existed and was garbage-collected is not a job the
// cluster never heard of).
var (
	// ErrNotFound reports an id the store has never held.
	ErrNotFound = errors.New("artifact: not found")
	// ErrEvicted reports an id whose body the GC policy removed; the
	// tombstone survives restarts.
	ErrEvicted = errors.New("artifact: evicted by gc")
	// ErrCorrupt reports a body whose bytes no longer match the digest
	// recorded at Put time. The entry is dropped so the next Get is a
	// clean miss and the caller's recompute can re-store it.
	ErrCorrupt = errors.New("artifact: stored bytes fail digest verification")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("artifact: store is closed")
	// ErrBadID reports an id that is not a 64-char lowercase hex
	// string. IDs name files; nothing else may reach the filesystem.
	ErrBadID = errors.New("artifact: id is not a hex sha-256")
)

// Meta describes one stored artifact.
type Meta struct {
	// Digest is the hex SHA-256 of the body, computed at Put and
	// re-verified on every Get.
	Digest string
	// Size is the body length in bytes.
	Size int64
	// PutUnix is the store clock's unix-seconds reading at Put time
	// (the age the GC policy evicts by).
	PutUnix int64
}

// Config shapes a store.
type Config struct {
	// Dir is the store root. Created if absent.
	Dir string
	// MaxBytes caps the total stored body bytes; GC evicts
	// oldest-first until under the cap (0 = unbounded).
	MaxBytes int64
	// MaxAge evicts artifacts older than this at GC time
	// (0 = no age limit).
	MaxAge time.Duration
	// Now supplies the store clock in unix seconds. nil selects the
	// real clock; tests inject virtual time so GC-age tests never
	// sleep. Artifact bytes themselves are never stamped — the clock
	// only orders evictions.
	Now func() int64
}

// Store is a persistent content-addressed artifact store rooted at one
// directory.
type Store struct {
	cfg Config

	mu      sync.Mutex
	entries map[string]*entry // id -> live entry or tombstone
	order   []string          // ids in first-seen order (deterministic iteration)
	bytes   int64             // total live body bytes
	log     *os.File          // index append handle
	closed  bool

	// Counters read by the registered gauges. Guarded by mu; gauges
	// take the lock too, so snapshots see consistent values.
	puts, gets, hits, misses int64
	corrupt, evicted, gcRuns int64
}

// entry is the in-memory index record for one id.
type entry struct {
	meta    Meta
	evicted bool // tombstone: body removed by GC
}

// Open loads (or creates) the store at cfg.Dir: replays the index log,
// deletes tmp leftovers and orphan objects from interrupted Puts, and
// opens the log for appending.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, errors.New("artifact: empty store dir")
	}
	if cfg.Now == nil {
		cfg.Now = realNow
	}
	for _, d := range []string{cfg.Dir, filepath.Join(cfg.Dir, "objects"), filepath.Join(cfg.Dir, "tmp")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("artifact: creating %s: %w", d, err)
		}
	}
	s := &Store{cfg: cfg, entries: make(map[string]*entry)}
	if err := s.replay(); err != nil {
		return nil, err
	}
	if err := s.sweepOrphans(); err != nil {
		return nil, err
	}
	log, err := os.OpenFile(s.indexPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("artifact: opening index: %w", err)
	}
	s.log = log
	return s, nil
}

func (s *Store) indexPath() string { return filepath.Join(s.cfg.Dir, "index") }

// objectPath fans ids out over 256 subdirectories so no single
// directory grows unboundedly.
func (s *Store) objectPath(id string) string {
	return filepath.Join(s.cfg.Dir, "objects", id[:2], id)
}

// replay rebuilds the in-memory index from the log. Later records win
// (a re-Put after eviction replaces the tombstone); a truncated final
// line — the signature of a crash mid-append — is dropped, leaving the
// object it described to the orphan sweep.
func (s *Store) replay() error {
	data, err := os.ReadFile(s.indexPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("artifact: reading index: %w", err)
	}
	recs, derr := decodeIndex(data)
	if derr != nil && !derr.Truncated {
		return fmt.Errorf("artifact: %w", derr)
	}
	for i := range recs {
		s.applyRecord(&recs[i])
	}
	if derr != nil && derr.Truncated {
		// Drop the partial tail so the next append starts on a clean
		// line boundary.
		if err := os.Truncate(s.indexPath(), int64(derr.Offset)); err != nil {
			return fmt.Errorf("artifact: truncating torn index tail: %w", err)
		}
	}
	return nil
}

// applyRecord folds one decoded index record into the in-memory map.
func (s *Store) applyRecord(r *record) {
	prev, seen := s.entries[r.ID]
	if !seen {
		s.order = append(s.order, r.ID)
	} else if !prev.evicted {
		s.bytes -= prev.meta.Size
	}
	switch r.Op {
	case opPut:
		s.entries[r.ID] = &entry{meta: Meta{Digest: r.Digest, Size: r.Size, PutUnix: r.Unix}}
		s.bytes += r.Size
	case opEvict:
		s.entries[r.ID] = &entry{evicted: true}
	case opDrop:
		delete(s.entries, r.ID)
		for i, o := range s.order {
			if o == r.ID {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
	}
}

// sweepOrphans removes tmp leftovers and object files the index does
// not reference — the debris of crashes between write, rename and
// index append. An object without an index record has no digest and
// can never be served, so deletion is the only safe disposition.
func (s *Store) sweepOrphans() error {
	tmps, err := os.ReadDir(filepath.Join(s.cfg.Dir, "tmp"))
	if err != nil {
		return fmt.Errorf("artifact: reading tmp: %w", err)
	}
	for _, e := range tmps {
		if err := os.Remove(filepath.Join(s.cfg.Dir, "tmp", e.Name())); err != nil {
			return fmt.Errorf("artifact: sweeping tmp: %w", err)
		}
	}
	fans, err := os.ReadDir(filepath.Join(s.cfg.Dir, "objects"))
	if err != nil {
		return fmt.Errorf("artifact: reading objects: %w", err)
	}
	for _, fan := range fans {
		if !fan.IsDir() {
			continue
		}
		dir := filepath.Join(s.cfg.Dir, "objects", fan.Name())
		objs, err := os.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("artifact: reading %s: %w", dir, err)
		}
		for _, o := range objs {
			id := o.Name()
			if e, ok := s.entries[id]; ok && !e.evicted {
				continue
			}
			if err := os.Remove(filepath.Join(dir, id)); err != nil {
				return fmt.Errorf("artifact: sweeping orphan %s: %w", id, err)
			}
		}
	}
	return nil
}

// validID reports whether id is a well-formed content address: exactly
// 64 lowercase hex characters.
func validID(id string) bool {
	if len(id) != 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Put stores body under id, replacing any previous entry or tombstone.
// The body lands via write-to-temp-then-rename, the index line lands
// after the rename, and the index append is flushed before Put
// returns — so a Put that returned is durable, and a Put that crashed
// is invisible.
func (s *Store) Put(id string, body []byte) error {
	if !validID(id) {
		return fmt.Errorf("%w: %q", ErrBadID, id)
	}
	sum := sha256.Sum256(body)
	meta := Meta{Digest: hex.EncodeToString(sum[:]), Size: int64(len(body))}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	meta.PutUnix = s.cfg.Now()

	tmp := filepath.Join(s.cfg.Dir, "tmp", id)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("artifact: staging %s: %w", id[:12], err)
	}
	if _, err := f.Write(body); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("artifact: writing %s: %w", id[:12], err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("artifact: syncing %s: %w", id[:12], err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("artifact: closing %s: %w", id[:12], err)
	}
	dst := s.objectPath(id)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("artifact: fan dir for %s: %w", id[:12], err)
	}
	if err := os.Rename(tmp, dst); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("artifact: publishing %s: %w", id[:12], err)
	}
	if err := s.appendLocked(&record{Op: opPut, ID: id, Digest: meta.Digest, Size: meta.Size, Unix: meta.PutUnix}); err != nil {
		return err
	}
	s.applyRecord(&record{Op: opPut, ID: id, Digest: meta.Digest, Size: meta.Size, Unix: meta.PutUnix})
	s.puts++
	return nil
}

// appendLocked writes one index record as a single line and syncs it.
func (s *Store) appendLocked(r *record) error {
	line, err := encodeRecord(r)
	if err != nil {
		return err
	}
	if _, err := s.log.Write(line); err != nil {
		return fmt.Errorf("artifact: appending index: %w", err)
	}
	if err := s.log.Sync(); err != nil {
		return fmt.Errorf("artifact: syncing index: %w", err)
	}
	return nil
}

// Get returns the stored body for id after re-verifying it against the
// digest recorded at Put time. A verification failure removes the
// entry and its body and returns ErrCorrupt: the caller recomputes,
// and determinism guarantees the recomputation equals what the store
// should have held.
func (s *Store) Get(id string) ([]byte, Meta, error) {
	if !validID(id) {
		return nil, Meta{}, fmt.Errorf("%w: %q", ErrBadID, id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, Meta{}, ErrClosed
	}
	s.gets++
	e, ok := s.entries[id]
	if !ok {
		s.misses++
		return nil, Meta{}, ErrNotFound
	}
	if e.evicted {
		s.misses++
		return nil, Meta{}, ErrEvicted
	}
	body, err := os.ReadFile(s.objectPath(id))
	if err != nil {
		// The index promised a body the filesystem no longer has —
		// treat exactly like corruption: drop and recompute.
		s.dropCorruptLocked(id, e)
		return nil, Meta{}, fmt.Errorf("%w (%s: body unreadable: %v)", ErrCorrupt, id[:12], err)
	}
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != e.meta.Digest {
		s.dropCorruptLocked(id, e)
		return nil, Meta{}, fmt.Errorf("%w (%s)", ErrCorrupt, id[:12])
	}
	s.hits++
	return body, e.meta, nil
}

// dropCorruptLocked removes a failed entry so the next Get is a clean
// miss. The eviction tombstone is deliberately NOT used: corruption is
// not a policy decision, and a recompute should re-store under the
// same id.
func (s *Store) dropCorruptLocked(id string, e *entry) {
	s.corrupt++
	s.bytes -= e.meta.Size
	delete(s.entries, id)
	for i, o := range s.order {
		if o == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	os.Remove(s.objectPath(id))
	// Best-effort drop record so a restart does not resurrect the
	// corrupt entry; if the append itself fails the orphan sweep on
	// the next Open removes the (already unlinked) body anyway.
	s.appendLocked(&record{Op: opDrop, ID: id, Unix: s.cfg.Now()})
}

// Stat reports an id's disposition without reading the body: the meta
// for a live entry, ErrEvicted for a tombstone, ErrNotFound otherwise.
func (s *Store) Stat(id string) (Meta, error) {
	if !validID(id) {
		return Meta{}, fmt.Errorf("%w: %q", ErrBadID, id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Meta{}, ErrClosed
	}
	e, ok := s.entries[id]
	switch {
	case !ok:
		return Meta{}, ErrNotFound
	case e.evicted:
		return Meta{}, ErrEvicted
	}
	return e.meta, nil
}

// Len returns the number of live (non-tombstone) artifacts.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	//drslint:allow map-range -- pure count of live entries; no order dependence
	for _, e := range s.entries {
		if !e.evicted {
			n++
		}
	}
	return n
}

// Bytes returns the total live body bytes.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// GC applies the size and age policy: every live artifact older than
// MaxAge is evicted, then oldest-first eviction continues until total
// bytes fit under MaxBytes. Eviction order is deterministic —
// (PutUnix, id) ascending — so two stores with identical histories
// evict identically. Returns how many artifacts were evicted.
func (s *Store) GC() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	s.gcRuns++
	now := s.cfg.Now()

	type cand struct {
		id   string
		meta Meta
	}
	var live []cand
	for _, id := range s.order {
		if e := s.entries[id]; !e.evicted {
			live = append(live, cand{id, e.meta})
		}
	}
	sort.Slice(live, func(i, j int) bool {
		if live[i].meta.PutUnix != live[j].meta.PutUnix {
			return live[i].meta.PutUnix < live[j].meta.PutUnix
		}
		return live[i].id < live[j].id
	})

	maxAge := int64(s.cfg.MaxAge / time.Second)
	over := func() bool { return s.cfg.MaxBytes > 0 && s.bytes > s.cfg.MaxBytes }
	n := 0
	for _, c := range live {
		tooOld := maxAge > 0 && now-c.meta.PutUnix > maxAge
		if !tooOld && !over() {
			if maxAge == 0 {
				break // sorted oldest-first: nothing further evicts
			}
			continue
		}
		if err := s.evictLocked(c.id, c.meta, now); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// evictLocked tombstones one live entry: the evict record lands in the
// index first, then the body is unlinked, so a crash between the two
// leaves an orphan body (swept on Open), never a served-but-evicted
// inconsistency.
func (s *Store) evictLocked(id string, meta Meta, now int64) error {
	if err := s.appendLocked(&record{Op: opEvict, ID: id, Unix: now}); err != nil {
		return err
	}
	s.entries[id] = &entry{evicted: true}
	s.bytes -= meta.Size
	s.evicted++
	if err := os.Remove(s.objectPath(id)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("artifact: removing evicted %s: %w", id[:12], err)
	}
	return nil
}

// Register wires the store's gauges into a metrics registry under
// prefix (e.g. "store"): object/byte occupancy, hit/miss/corruption
// traffic, and the GC policy's activity — the numbers an operator
// watches to size MaxBytes.
func (s *Store) Register(reg *metrics.Registry, prefix string) {
	reg.Const(prefix+"/max_bytes", s.cfg.MaxBytes)
	reg.Const(prefix+"/max_age_seconds", int64(s.cfg.MaxAge/time.Second))
	g := func(name string, f func() int64) { reg.Gauge(prefix+"/"+name, f) }
	g("objects", func() int64 { return int64(s.Len()) })
	g("bytes", s.Bytes)
	g("puts", s.counter(&s.puts))
	g("gets", s.counter(&s.gets))
	g("hits", s.counter(&s.hits))
	g("misses", s.counter(&s.misses))
	g("corrupt", s.counter(&s.corrupt))
	g("evicted", s.counter(&s.evicted))
	g("gc_runs", s.counter(&s.gcRuns))
}

// counter returns a gauge closure reading one mu-guarded counter.
func (s *Store) counter(p *int64) func() int64 {
	return func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return *p
	}
}

// Close flushes and closes the index log. Further calls return
// ErrClosed — the cluster chaos harness relies on that to make an
// in-process "kill" stop a zombie service from writing to a store a
// restarted worker has reopened.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.closed = true
	return s.log.Close()
}

// VerifyAll re-reads and re-hashes every live artifact, returning the
// ids that failed verification (each is dropped exactly as a failed
// Get would). Used by tests and by operators after suspect storage.
func (s *Store) VerifyAll() []string {
	s.mu.Lock()
	ids := make([]string, 0, len(s.order))
	for _, id := range s.order {
		if e := s.entries[id]; e != nil && !e.evicted {
			ids = append(ids, id)
		}
	}
	s.mu.Unlock()
	var bad []string
	for _, id := range ids {
		if _, _, err := s.Get(id); errors.Is(err, ErrCorrupt) {
			bad = append(bad, id)
		}
	}
	return bad
}
