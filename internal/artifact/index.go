// Index log codec. The index is a JSONL append-only log: one record
// per line, each a fixed-field JSON object. The decoder is strict the
// same way the service's spec decoder is strict — unknown fields,
// duplicate keys, malformed hex digests and impossible sizes are typed
// errors, never silently-accepted garbage — because the index is the
// only thing standing between a restarted daemon and serving bytes it
// cannot vouch for. The single tolerated irregularity is a truncated
// final line (a crash mid-append), reported with Truncated=true so
// Open can drop the torn tail and continue.
package artifact

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Index record operations.
const (
	// opPut records a stored body: id, digest, size, put time.
	opPut = "put"
	// opEvict records a GC tombstone for id.
	opEvict = "evict"
	// opDrop records a corruption-triggered removal: the id is
	// forgotten entirely (a later Get is ErrNotFound, not ErrEvicted),
	// because corruption is an integrity event, not a policy decision.
	opDrop = "drop"
)

// record is one index log line. Field order is the canonical encoding
// (encodeRecord uses plain Marshal of this struct).
type record struct {
	Op     string `json:"op"`
	ID     string `json:"id"`
	Digest string `json:"digest,omitempty"`
	Size   int64  `json:"size,omitempty"`
	Unix   int64  `json:"unix"`
}

// IndexError reports where and why index decoding stopped.
type IndexError struct {
	// Line is the 1-based line number of the offending record.
	Line int
	// Offset is the byte offset of the start of the offending line —
	// the length of the valid prefix, which Open truncates to when the
	// error is a torn tail.
	Offset int
	// Truncated marks the one recoverable case: the final line is
	// incomplete (no terminating newline or a cut-off JSON object),
	// the signature of a crash mid-append.
	Truncated bool
	// Reason says what was wrong.
	Reason string
}

func (e *IndexError) Error() string {
	kind := "invalid"
	if e.Truncated {
		kind = "truncated"
	}
	return fmt.Sprintf("index line %d (offset %d): %s record: %s", e.Line, e.Offset, kind, e.Reason)
}

// encodeRecord renders one record as a newline-terminated JSON line.
func encodeRecord(r *record) ([]byte, error) {
	if err := checkRecord(r); err != nil {
		return nil, fmt.Errorf("artifact: refusing to encode %s", err)
	}
	b, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("artifact: encoding index record: %w", err)
	}
	return append(b, '\n'), nil
}

// checkRecord validates one decoded (or to-be-encoded) record.
func checkRecord(r *record) *IndexError {
	bad := func(reason string) *IndexError { return &IndexError{Reason: reason} }
	switch r.Op {
	case opPut:
		if !validID(r.Digest) {
			return bad(fmt.Sprintf("digest %q is not a hex sha-256", r.Digest))
		}
		if r.Size < 0 {
			return bad(fmt.Sprintf("negative size %d", r.Size))
		}
	case opEvict, opDrop:
		if r.Digest != "" || r.Size != 0 {
			return bad(fmt.Sprintf("%s record carries put fields", r.Op))
		}
	default:
		return bad(fmt.Sprintf("unknown op %q", r.Op))
	}
	if !validID(r.ID) {
		return bad(fmt.Sprintf("id %q is not a hex sha-256", r.ID))
	}
	return nil
}

// decodeIndex parses an index log. On success it returns every record.
// On failure it returns the records decoded before the error plus an
// *IndexError locating it; Truncated distinguishes a torn final line
// (recoverable — the valid prefix stands) from interior corruption
// (not recoverable — the store refuses to open on it rather than
// serve an index it cannot fully account for).
func decodeIndex(data []byte) ([]record, *IndexError) {
	var recs []record
	offset := 0
	for line := 1; offset < len(data); line++ {
		nl := bytes.IndexByte(data[offset:], '\n')
		if nl < 0 {
			return recs, &IndexError{Line: line, Offset: offset, Truncated: true,
				Reason: "no terminating newline"}
		}
		raw := data[offset : offset+nl]
		rec, reason := decodeRecord(raw)
		if reason != "" {
			e := &IndexError{Line: line, Offset: offset, Reason: reason}
			// A malformed final line is a torn append even when the
			// newline made it to disk before the crash took the rest.
			e.Truncated = offset+nl+1 >= len(data)
			return recs, e
		}
		recs = append(recs, *rec)
		offset += nl + 1
	}
	return recs, nil
}

// decodeRecord parses one line strictly: exactly one JSON object, no
// unknown fields, no duplicate keys, no trailing content, and the
// field values themselves must make sense for the op.
func decodeRecord(raw []byte) (*record, string) {
	if err := checkLineDuplicateKeys(raw); err != "" {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var r record
	if err := dec.Decode(&r); err != nil {
		return nil, err.Error()
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, "trailing data after record object"
	}
	if err := checkRecord(&r); err != nil {
		return nil, err.Reason
	}
	return &r, ""
}

// checkLineDuplicateKeys rejects a record whose object repeats a key:
// encoding/json keeps the last duplicate, which would let two
// textually different lines decode to one record and hide which value
// actually protected the bytes.
func checkLineDuplicateKeys(raw []byte) string {
	dec := json.NewDecoder(bytes.NewReader(raw))
	depth := 0
	seen := make(map[string]bool)
	expectKey := false
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return ""
		}
		if err != nil {
			return err.Error()
		}
		switch t := tok.(type) {
		case json.Delim:
			switch t {
			case '{':
				depth++
				expectKey = depth == 1
			case '}':
				depth--
			case '[', ']':
				// Records hold no arrays, but the strict decoder will
				// reject the field type; nothing to track here.
			}
		case string:
			if depth == 1 && expectKey {
				if seen[t] {
					return fmt.Sprintf("duplicate key %q", t)
				}
				seen[t] = true
				expectKey = false
			} else if depth == 1 {
				expectKey = true
			}
		default:
			if depth == 1 {
				expectKey = true
			}
		}
	}
}
