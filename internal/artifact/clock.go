package artifact

import "time"

// realNow is the default store clock. It is the single wall-clock read
// in the package: artifact bytes and content addresses never see it —
// it only orders GC evictions — and every test injects virtual time
// through Config.Now instead.
func realNow() int64 {
	//drslint:allow wallclock -- GC eviction ordering only; artifact bytes and ids never depend on the clock
	return time.Now().Unix()
}
