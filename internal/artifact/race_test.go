package artifact

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestConcurrentPutGetGC hammers one store directory from many
// goroutines doing Put, Get and GC at once. Run under -race this is
// the store's concurrency proof; in any mode it asserts the integrity
// invariant that a Get never returns wrong bytes — every outcome is
// either the exact stored body or a typed miss.
func TestConcurrentPutGetGC(t *testing.T) {
	s, _ := openTest(t, t.TempDir(), Config{MaxBytes: 2000})

	const (
		workers = 8
		keys    = 16
		rounds  = 40
	)
	bodyOf := func(k int) []byte {
		return bytes.Repeat([]byte{byte('a' + k)}, 100)
	}
	ids := make([]string, keys)
	for k := range ids {
		ids[k] = idOf(fmt.Sprintf("key-%d", k))
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := (w + r) % keys
				switch r % 3 {
				case 0:
					if err := s.Put(ids[k], bodyOf(k)); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				case 1:
					body, _, err := s.Get(ids[k])
					switch {
					case err == nil:
						if !bytes.Equal(body, bodyOf(k)) {
							t.Errorf("get %d returned wrong bytes", k)
							return
						}
					case errors.Is(err, ErrNotFound), errors.Is(err, ErrEvicted):
						// Legitimate interleavings with Put/GC.
					default:
						t.Errorf("get: %v", err)
						return
					}
				case 2:
					if _, err := s.GC(); err != nil {
						t.Errorf("gc: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// The store must still be coherent: every live artifact verifies.
	if bad := s.VerifyAll(); len(bad) != 0 {
		t.Fatalf("artifacts failed verification after concurrent traffic: %v", bad)
	}
	if s.cfg.MaxBytes > 0 {
		if _, err := s.GC(); err != nil {
			t.Fatal(err)
		}
		if got := s.Bytes(); got > s.cfg.MaxBytes {
			t.Fatalf("bytes %d exceed cap %d after final GC", got, s.cfg.MaxBytes)
		}
	}
}

// TestConcurrentReopenHammer closes and reopens the store between
// bursts of concurrent traffic, asserting the replayed index always
// reconstructs a verifiable store.
func TestConcurrentReopenHammer(t *testing.T) {
	dir := t.TempDir()
	for gen := 0; gen < 3; gen++ {
		clk := &fakeClock{now: int64(1000 * (gen + 1))}
		s, err := Open(Config{Dir: dir, MaxAge: 10 * time.Minute, Now: clk.Now})
		if err != nil {
			t.Fatalf("gen %d open: %v", gen, err)
		}
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for r := 0; r < 10; r++ {
					id := idOf(fmt.Sprintf("g%d-w%d-r%d", gen, w, r))
					if err := s.Put(id, []byte(id)); err != nil {
						t.Errorf("put: %v", err)
						return
					}
					if body, _, err := s.Get(id); err != nil || string(body) != id {
						t.Errorf("get after put: %q, %v", body, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		if bad := s.VerifyAll(); len(bad) != 0 {
			t.Fatalf("gen %d: verification failures %v", gen, bad)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Final reopen sees every generation's artifacts.
	s, err := Open(Config{Dir: dir, Now: func() int64 { return 0 }})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Len(); got != 3*4*10 {
		t.Fatalf("final len = %d, want %d", got, 3*4*10)
	}
}
