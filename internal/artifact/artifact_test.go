package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

// fakeClock is a virtual store clock: tests advance it explicitly, so
// age-based GC tests never sleep.
type fakeClock struct{ now int64 }

func (c *fakeClock) Now() int64       { return c.now }
func (c *fakeClock) Advance(s int64)  { c.now += s }

// idOf builds a deterministic content address from a tag.
func idOf(tag string) string {
	sum := sha256.Sum256([]byte(tag))
	return hex.EncodeToString(sum[:])
}

func openTest(t *testing.T, dir string, cfg Config) (*Store, *fakeClock) {
	t.Helper()
	clk := &fakeClock{now: 1000}
	cfg.Dir = dir
	cfg.Now = clk.Now
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s, clk
}

func TestPutGetRoundtrip(t *testing.T) {
	s, _ := openTest(t, t.TempDir(), Config{})
	id := idOf("a")
	body := []byte(`{"result":"bytes"}`)
	if err := s.Put(id, body); err != nil {
		t.Fatalf("put: %v", err)
	}
	got, meta, err := s.Get(id)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if string(got) != string(body) {
		t.Fatalf("body = %q, want %q", got, body)
	}
	sum := sha256.Sum256(body)
	if meta.Digest != hex.EncodeToString(sum[:]) || meta.Size != int64(len(body)) {
		t.Fatalf("meta = %+v", meta)
	}
	if s.Len() != 1 || s.Bytes() != int64(len(body)) {
		t.Fatalf("len=%d bytes=%d", s.Len(), s.Bytes())
	}
}

func TestGetMissAndBadID(t *testing.T) {
	s, _ := openTest(t, t.TempDir(), Config{})
	if _, _, err := s.Get(idOf("missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	for _, bad := range []string{"", "abc", strings.Repeat("g", 64), strings.Repeat("A", 64), "../../etc/passwd"} {
		if _, _, err := s.Get(bad); !errors.Is(err, ErrBadID) {
			t.Fatalf("Get(%q): want ErrBadID, got %v", bad, err)
		}
		if err := s.Put(bad, []byte("x")); !errors.Is(err, ErrBadID) {
			t.Fatalf("Put(%q): want ErrBadID, got %v", bad, err)
		}
		if _, err := s.Stat(bad); !errors.Is(err, ErrBadID) {
			t.Fatalf("Stat(%q): want ErrBadID, got %v", bad, err)
		}
	}
}

func TestReopenServesPersistedArtifacts(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTest(t, dir, Config{})
	ids := []string{idOf("a"), idOf("b"), idOf("c")}
	for i, id := range ids {
		if err := s.Put(id, []byte(fmt.Sprintf("body-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite one id: the replayed index must keep the last record.
	if err := s.Put(ids[1], []byte("body-1-v2")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, _ := openTest(t, dir, Config{})
	for i, id := range ids {
		want := fmt.Sprintf("body-%d", i)
		if i == 1 {
			want = "body-1-v2"
		}
		got, _, err := s2.Get(id)
		if err != nil {
			t.Fatalf("reopened get %d: %v", i, err)
		}
		if string(got) != want {
			t.Fatalf("reopened body %d = %q, want %q", i, got, want)
		}
	}
	if s2.Len() != 3 {
		t.Fatalf("reopened len = %d, want 3", s2.Len())
	}
}

func TestCorruptionDetectedOnRead(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTest(t, dir, Config{})
	id := idOf("victim")
	if err := s.Put(id, []byte("pristine artifact bytes")); err != nil {
		t.Fatal(err)
	}
	// Flip one bit on disk behind the store's back.
	path := filepath.Join(dir, "objects", id[:2], id)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[3] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(id); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	// The entry is gone: the next Get is a clean miss, so a recompute
	// can re-store under the same id.
	if _, _, err := s.Get(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after corruption drop: want ErrNotFound, got %v", err)
	}
	if err := s.Put(id, []byte("pristine artifact bytes")); err != nil {
		t.Fatalf("re-put after corruption: %v", err)
	}
	if got, _, err := s.Get(id); err != nil || string(got) != "pristine artifact bytes" {
		t.Fatalf("re-stored get = %q, %v", got, err)
	}
	s.Close()

	// The drop record persists: a restart does not resurrect the
	// now-re-stored entry's corrupt history.
	s2, _ := openTest(t, dir, Config{})
	if got, _, err := s2.Get(id); err != nil || string(got) != "pristine artifact bytes" {
		t.Fatalf("reopened get = %q, %v", got, err)
	}
}

func TestCorruptionDropPersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTest(t, dir, Config{})
	id := idOf("victim")
	if err := s.Put(id, []byte("bytes")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "objects", id[:2], id)
	if err := os.WriteFile(path, []byte("wrong"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(id); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	s.Close()
	s2, _ := openTest(t, dir, Config{})
	if _, _, err := s2.Get(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after restart: want ErrNotFound (drop record), got %v", err)
	}
}

func TestMissingBodyIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTest(t, dir, Config{})
	id := idOf("gone")
	if err := s.Put(id, []byte("bytes")); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "objects", id[:2], id)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(id); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt for missing body, got %v", err)
	}
}

func TestGCSizePolicyEvictsOldestFirst(t *testing.T) {
	dir := t.TempDir()
	s, clk := openTest(t, dir, Config{MaxBytes: 25})
	ids := []string{idOf("a"), idOf("b"), idOf("c")}
	for _, id := range ids {
		if err := s.Put(id, []byte("0123456789")); err != nil { // 10 bytes each
			t.Fatal(err)
		}
		clk.Advance(10)
	}
	n, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	// Oldest (ids[0]) went; the other two stay.
	if _, _, err := s.Get(ids[0]); !errors.Is(err, ErrEvicted) {
		t.Fatalf("oldest: want ErrEvicted, got %v", err)
	}
	for _, id := range ids[1:] {
		if _, _, err := s.Get(id); err != nil {
			t.Fatalf("survivor %s: %v", id[:8], err)
		}
	}
	if s.Bytes() != 20 {
		t.Fatalf("bytes after gc = %d, want 20", s.Bytes())
	}
}

func TestGCAgePolicy(t *testing.T) {
	dir := t.TempDir()
	s, clk := openTest(t, dir, Config{MaxAge: 100 * time.Second})
	old, young := idOf("old"), idOf("young")
	if err := s.Put(old, []byte("old-bytes")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(150)
	if err := s.Put(young, []byte("young-bytes")); err != nil {
		t.Fatal(err)
	}
	n, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	if _, _, err := s.Get(old); !errors.Is(err, ErrEvicted) {
		t.Fatalf("old: want ErrEvicted, got %v", err)
	}
	if _, _, err := s.Get(young); err != nil {
		t.Fatalf("young evicted too: %v", err)
	}
}

func TestEvictionSurvivesRestartAndRePut(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTest(t, dir, Config{MaxBytes: 1})
	id := idOf("e")
	if err := s.Put(id, []byte("too big for the cap")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GC(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Stat(id); !errors.Is(err, ErrEvicted) {
		t.Fatalf("want ErrEvicted, got %v", err)
	}
	s.Close()

	s2, _ := openTest(t, dir, Config{})
	if _, _, err := s2.Get(id); !errors.Is(err, ErrEvicted) {
		t.Fatalf("tombstone lost across restart: %v", err)
	}
	// A re-Put replaces the tombstone.
	if err := s2.Put(id, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if got, _, err := s2.Get(id); err != nil || string(got) != "fresh" {
		t.Fatalf("re-put get = %q, %v", got, err)
	}
}

func TestTruncatedIndexTailTolerated(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTest(t, dir, Config{})
	a, b := idOf("a"), idOf("b")
	if err := s.Put(a, []byte("aaa")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(b, []byte("bbb")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Tear the final line mid-record, as a crash mid-append would.
	path := filepath.Join(dir, "index")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, _ := openTest(t, dir, Config{})
	if _, _, err := s2.Get(a); err != nil {
		t.Fatalf("valid prefix lost: %v", err)
	}
	// b's record was torn: it must read as never-stored, and its
	// orphaned body must be swept.
	if _, _, err := s2.Get(b); !errors.Is(err, ErrNotFound) {
		t.Fatalf("torn record: want ErrNotFound, got %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "objects", b[:2], b)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("orphan body not swept: %v", err)
	}
	// The torn tail was truncated away: appending must produce a
	// well-formed log (reopen once more to prove it).
	if err := s2.Put(b, []byte("bbb-again")); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, _ := openTest(t, dir, Config{})
	if got, _, err := s3.Get(b); err != nil || string(got) != "bbb-again" {
		t.Fatalf("post-truncation append: %q, %v", got, err)
	}
}

func TestInteriorIndexCorruptionRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTest(t, dir, Config{})
	if err := s.Put(idOf("a"), []byte("aaa")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(idOf("b"), []byte("bbb")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	path := filepath.Join(dir, "index")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the FIRST line; the second stays intact, so this is not
	// a torn tail and the store must refuse to open.
	raw[2] = 'X'
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir, Now: func() int64 { return 0 }}); err == nil {
		t.Fatal("open succeeded on interior index corruption")
	}
}

func TestTmpLeftoversSweptOnOpen(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTest(t, dir, Config{})
	s.Close()
	stale := filepath.Join(dir, "tmp", idOf("stale"))
	if err := os.WriteFile(stale, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	openTest(t, dir, Config{})
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("tmp leftover survived open: %v", err)
	}
}

func TestClosedStoreRejectsEverything(t *testing.T) {
	s, _ := openTest(t, t.TempDir(), Config{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	id := idOf("x")
	if err := s.Put(id, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("put: want ErrClosed, got %v", err)
	}
	if _, _, err := s.Get(id); !errors.Is(err, ErrClosed) {
		t.Fatalf("get: want ErrClosed, got %v", err)
	}
	if _, err := s.Stat(id); !errors.Is(err, ErrClosed) {
		t.Fatalf("stat: want ErrClosed, got %v", err)
	}
	if _, err := s.GC(); !errors.Is(err, ErrClosed) {
		t.Fatalf("gc: want ErrClosed, got %v", err)
	}
	if err := s.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close: want ErrClosed, got %v", err)
	}
}

func TestVerifyAll(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTest(t, dir, Config{})
	good, bad := idOf("good"), idOf("bad")
	if err := s.Put(good, []byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(bad, []byte("bad")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "objects", bad[:2], bad), []byte("rot"), 0o644); err != nil {
		t.Fatal(err)
	}
	failed := s.VerifyAll()
	if len(failed) != 1 || failed[0] != bad {
		t.Fatalf("VerifyAll = %v, want [%s]", failed, bad[:8])
	}
	if _, _, err := s.Get(good); err != nil {
		t.Fatalf("good artifact damaged by verify: %v", err)
	}
}

func TestMetricsGauges(t *testing.T) {
	s, clk := openTest(t, t.TempDir(), Config{MaxBytes: 10, MaxAge: time.Minute})
	reg := metrics.NewRegistry()
	s.Register(reg, "store")

	if err := s.Put(idOf("a"), []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(1)
	if err := s.Put(idOf("b"), []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(idOf("a")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(idOf("miss")); !errors.Is(err, ErrNotFound) {
		t.Fatal(err)
	}
	if _, err := s.GC(); err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{
		"store/max_bytes":       10,
		"store/max_age_seconds": 60,
		"store/objects":         1,
		"store/bytes":           10,
		"store/puts":            2,
		"store/gets":            2,
		"store/hits":            1,
		"store/misses":          1,
		"store/corrupt":         0,
		"store/evicted":         1,
		"store/gc_runs":         1,
	}
	for path, v := range want {
		got, ok := reg.Value(path)
		if !ok {
			t.Fatalf("gauge %s not registered", path)
		}
		if got != v {
			t.Fatalf("%s = %d, want %d", path, got, v)
		}
	}
}

func TestGCDeterministicTieBreak(t *testing.T) {
	// Two artifacts stored at the same clock reading: eviction order
	// must fall back to id order, so two stores with identical
	// histories evict identically.
	run := func() []string {
		dir := t.TempDir()
		s, _ := openTest(t, dir, Config{MaxBytes: 10})
		for _, tag := range []string{"t1", "t2", "t3"} {
			if err := s.Put(idOf(tag), []byte("0123456789")); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.GC(); err != nil {
			t.Fatal(err)
		}
		var evicted []string
		for _, tag := range []string{"t1", "t2", "t3"} {
			if _, err := s.Stat(idOf(tag)); errors.Is(err, ErrEvicted) {
				evicted = append(evicted, tag)
			}
		}
		return evicted
	}
	a, b := run(), run()
	if len(a) != 2 || fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("eviction order diverged: %v vs %v", a, b)
	}
}
