package service

import (
	"encoding/json"
	"os"
	"testing"
)

// goldenSpec is one row of testdata/spec_golden.json: a submission body
// with the canonical encoding and content address it produced before
// the optional policy field existed.
type goldenSpec struct {
	Input     string `json:"input"`
	Canonical string `json:"canonical"`
	ID        string `json:"id"`
}

// TestSpecGoldenAddresses holds the content-address contract across the
// policy-field addition: every representative pre-policy spec must
// still decode to the exact canonical bytes and SHA-256 address that
// were captured before the field existed. A failure here means
// deployed drsd job stores and client caches silently re-address — do
// not update the golden file to make it pass; fix the encoding.
func TestSpecGoldenAddresses(t *testing.T) {
	raw, err := os.ReadFile("testdata/spec_golden.json")
	if err != nil {
		t.Fatal(err)
	}
	var rows []goldenSpec
	if err := json.Unmarshal(raw, &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) < 8 {
		t.Fatalf("golden corpus has %d rows; want the full pre-policy set", len(rows))
	}
	for _, row := range rows {
		spec, err := DecodeSpec([]byte(row.Input))
		if err != nil {
			t.Errorf("pre-policy spec no longer decodes: %s: %v", row.Input, err)
			continue
		}
		if got := string(spec.Canonical()); got != row.Canonical {
			t.Errorf("canonical drift for %s:\n got %s\nwant %s", row.Input, got, row.Canonical)
		}
		if got := spec.ID(); got != row.ID {
			t.Errorf("content address drift for %s:\n got %s\nwant %s", row.Input, got, row.ID)
		}
	}
}

// TestSpecPolicyFolding: the policy field's normalization rules. Legacy
// spellings fold into arch (same job, same pre-policy address); new
// policy names survive into the encoding and get distinct addresses.
func TestSpecPolicyFolding(t *testing.T) {
	legacy, err := DecodeSpec([]byte(`{"kind":"run","scene":"conference","arch":"drs"}`))
	if err != nil {
		t.Fatal(err)
	}
	folds := []string{
		`{"kind":"run","scene":"conference","policy":"drs"}`,
		`{"kind":"run","scene":"conference","arch":"drs","policy":"drs"}`,
		`{"kind":"run","scene":"conference"}`, // omission normalizes to drs
	}
	for _, body := range folds {
		spec, err := DecodeSpec([]byte(body))
		if err != nil {
			t.Errorf("%s: %v", body, err)
			continue
		}
		if spec.ID() != legacy.ID() {
			t.Errorf("%s did not fold to the legacy drs address:\n got %s\nwant %s",
				body, spec.Canonical(), legacy.Canonical())
		}
		if spec.PolicyName() != "drs" {
			t.Errorf("%s: PolicyName = %q", body, spec.PolicyName())
		}
	}

	ser, err := DecodeSpec([]byte(`{"kind":"run","scene":"conference","policy":"ser"}`))
	if err != nil {
		t.Fatal(err)
	}
	if ser.ID() == legacy.ID() {
		t.Fatal("a new policy name must change the content address")
	}
	if ser.Policy != "ser" || ser.Arch != "" || ser.PolicyName() != "ser" {
		t.Fatalf("new policy name mangled by normalization: %+v", ser)
	}
	again, err := DecodeSpec(ser.Canonical())
	if err != nil {
		t.Fatalf("policy spec canonical encoding does not re-decode: %v", err)
	}
	if again.ID() != ser.ID() {
		t.Fatal("policy spec address unstable across round-trip")
	}
}

// TestSpecPolicyRejections: the new field's failure modes are typed
// SpecErrors, and unknown names carry the registry's judgment.
func TestSpecPolicyRejections(t *testing.T) {
	cases := []struct {
		name, body, field string
	}{
		{"unknown policy", `{"kind":"run","scene":"conference","policy":"warp-drive"}`, "policy"},
		{"policy conflicts with arch", `{"kind":"run","scene":"conference","arch":"aila","policy":"ser"}`, "policy"},
		{"policy on grid job", `{"kind":"fig10","policy":"ser"}`, "policy"},
		{"duplicate policy key", `{"kind":"run","scene":"conference","policy":"ser","policy":"drs"}`, "policy"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeSpec([]byte(tc.body))
			if err == nil {
				t.Fatalf("accepted: %s", tc.body)
			}
			se, ok := AsSpecError(err)
			if !ok {
				t.Fatalf("want *SpecError, got %T: %v", err, err)
			}
			if se.Field != tc.field {
				t.Fatalf("field = %q, want %q (%v)", se.Field, tc.field, err)
			}
		})
	}
}

// TestSpecArchSchedFolding: the device-model and scheduler fields'
// normalization rules, mirroring the policy fold. Naming the defaults
// explicitly ("gtx780", "gto") collapses to the pre-field encoding and
// address; genuinely new names survive and re-address.
func TestSpecArchSchedFolding(t *testing.T) {
	legacy, err := DecodeSpec([]byte(`{"kind":"run","scene":"conference","arch":"drs"}`))
	if err != nil {
		t.Fatal(err)
	}
	folds := []string{
		`{"kind":"run","scene":"conference","arch":"drs","arch_config":"gtx780"}`,
		`{"kind":"run","scene":"conference","arch":"drs","sched":"gto"}`,
		`{"kind":"run","scene":"conference","arch":"drs","arch_config":"gtx780","sched":"gto"}`,
	}
	for _, body := range folds {
		spec, err := DecodeSpec([]byte(body))
		if err != nil {
			t.Errorf("%s: %v", body, err)
			continue
		}
		if spec.ArchConfig != "" || spec.Sched != "" {
			t.Errorf("%s: defaults not folded: %+v", body, spec)
		}
		if spec.ID() != legacy.ID() {
			t.Errorf("%s did not fold to the pre-field address:\n got %s\nwant %s",
				body, spec.Canonical(), legacy.Canonical())
		}
	}

	modern, err := DecodeSpec([]byte(`{"kind":"run","scene":"conference","arch":"drs","arch_config":"modern-mid","sched":"wasp"}`))
	if err != nil {
		t.Fatal(err)
	}
	if modern.ID() == legacy.ID() {
		t.Fatal("a non-default device model must change the content address")
	}
	if modern.ArchConfig != "modern-mid" || modern.Sched != "wasp" {
		t.Fatalf("non-default names mangled by normalization: %+v", modern)
	}
	again, err := DecodeSpec(modern.Canonical())
	if err != nil {
		t.Fatalf("arch/sched spec canonical encoding does not re-decode: %v", err)
	}
	if again.ID() != modern.ID() {
		t.Fatal("arch/sched spec address unstable across round-trip")
	}

	// The two fields address independently: sched alone and arch alone
	// are distinct jobs.
	schedOnly, err := DecodeSpec([]byte(`{"kind":"run","scene":"conference","arch":"drs","sched":"lrr"}`))
	if err != nil {
		t.Fatal(err)
	}
	archOnly, err := DecodeSpec([]byte(`{"kind":"run","scene":"conference","arch":"drs","arch_config":"modern-mid"}`))
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{legacy.ID(): true, modern.ID(): true, schedOnly.ID(): true, archOnly.ID(): true}
	if len(ids) != 4 {
		t.Fatalf("expected 4 distinct addresses, got %d", len(ids))
	}
}

// TestSpecArchSchedRejections: the new fields' failure modes are typed
// SpecErrors carrying each registry's judgment, on every job kind.
func TestSpecArchSchedRejections(t *testing.T) {
	cases := []struct {
		name, body, field string
	}{
		{"unknown arch config", `{"kind":"run","scene":"conference","arch_config":"gtx1080"}`, "arch_config"},
		{"unknown sched", `{"kind":"run","scene":"conference","sched":"fifo"}`, "sched"},
		{"unknown sched on grid job", `{"kind":"table2","sched":"fifo"}`, "sched"},
		{"unknown arch config on grid job", `{"kind":"fig10","arch_config":"gtx1080"}`, "arch_config"},
		{"duplicate sched key", `{"kind":"run","scene":"conference","sched":"lrr","sched":"wasp"}`, "sched"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeSpec([]byte(tc.body))
			if err == nil {
				t.Fatalf("accepted: %s", tc.body)
			}
			se, ok := AsSpecError(err)
			if !ok {
				t.Fatalf("want *SpecError, got %T: %v", err, err)
			}
			if se.Field != tc.field {
				t.Fatalf("field = %q, want %q (%v)", se.Field, tc.field, err)
			}
		})
	}
}
