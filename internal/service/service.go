package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/artifact"
	"repro/internal/experiments"
	"repro/internal/metrics"
)

// Admission errors. The HTTP layer maps them to 429 and 503; drsctl
// surfaces them verbatim.
var (
	// ErrQueueFull is returned when the bounded admission queue has no
	// room. Backpressure is explicit: the caller decides whether to
	// retry later, never the server.
	ErrQueueFull = errors.New("service: admission queue full")
	// ErrDraining is returned once graceful shutdown has begun; the
	// service finishes what it admitted but takes nothing new.
	ErrDraining = errors.New("service: draining, not admitting jobs")
)

// transientError marks an error worth retrying (see MarkTransient).
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// MarkTransient wraps err so the worker retries the attempt with
// backoff instead of failing the job. Simulation errors are
// deterministic and never transient; the marker exists for runner
// wrappers that touch genuinely flaky resources (and for tests).
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err carries the MarkTransient marker.
func IsTransient(err error) bool {
	var te *transientError
	return errors.As(err, &te)
}

// Runner executes one job spec. progress receives epoch-barrier
// samples for observed run jobs; implementations must honor ctx (the
// per-job deadline, client disconnects and force-drain all arrive
// through it) and must produce output bytes that are a pure function
// of the spec — the determinism contract of the whole service rests on
// that. nil selects the built-in experiment runner.
type Runner func(ctx context.Context, spec *JobSpec, progress func(cycle, epochs int64)) ([]byte, error)

// Config sizes the service. The zero value of each field selects the
// default noted on it.
type Config struct {
	// Workers is the job worker pool size (default 2). Each job then
	// fans out internally on the cell scheduler per its spec's
	// Parallelism, so this bounds concurrent jobs, not concurrent work.
	Workers int
	// QueueDepth bounds the admission queue (default 16). Submissions
	// beyond running+queued capacity get ErrQueueFull.
	QueueDepth int
	// DefaultTimeout is the per-job execution deadline when the spec
	// does not set one (default 10m). The clock starts when a worker
	// picks the job up, so queue depth cannot change a job's outcome.
	DefaultTimeout time.Duration
	// MaxAttempts bounds execution attempts per job (default 3; only
	// transient failures retry).
	MaxAttempts int
	// RetryBaseDelay is the first retry backoff, doubled per attempt
	// (default 50ms).
	RetryBaseDelay time.Duration
	// EpochEventEvery thins the epoch progress stream: one event per N
	// barriers (default 16; 1 = every barrier).
	EpochEventEvery int64
	// MaxJobEvents caps a job's buffered event stream (default 1024).
	// Epoch events beyond the cap are counted and dropped; state
	// transitions always land.
	MaxJobEvents int
	// Runner overrides job execution (tests). nil = the built-in
	// experiment runner over the shared workload cache.
	Runner Runner
	// Clock paces retry backoff and job deadlines (nil = the real
	// clock). Tests inject a virtual clock so retry/deadline paths run
	// without sleeping.
	Clock Clock
	// Store, when set, is the persistent artifact store: submissions
	// whose content address is already stored are served from it
	// without executing, completed jobs are written through to it, and
	// GET /v1/artifacts/{id} exposes it to shard peers. Corrupt
	// entries detected on read fall back to recomputation.
	Store *artifact.Store
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Minute
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBaseDelay <= 0 {
		c.RetryBaseDelay = 50 * time.Millisecond
	}
	if c.EpochEventEvery <= 0 {
		c.EpochEventEvery = 16
	}
	if c.MaxJobEvents <= 0 {
		c.MaxJobEvents = 1024
	}
	if c.Clock == nil {
		c.Clock = realClock{}
	}
	return c
}

// Service is the deterministic job service: a content-addressed job
// registry, a bounded admission queue, a worker pool, and one shared
// workload cache. See the package comment for the contract.
type Service struct {
	cfg   Config
	cache *experiments.WorkloadCache
	reg   *metrics.Registry

	// baseCtx parents every job context; baseCancel is the force-drain
	// hammer when the drain deadline passes.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // job IDs in admission order (deterministic listing)
	queue    chan *Job
	draining bool

	wg sync.WaitGroup // worker goroutines

	// Counters behind GET /metrics. Atomics because workers and
	// handlers bump them concurrently; the registry's gauges read them
	// with Load at snapshot time.
	submitted        atomic.Int64
	deduped          atomic.Int64
	rejectedFull     atomic.Int64
	rejectedDraining atomic.Int64
	rejectedInvalid  atomic.Int64
	started          atomic.Int64
	completed        atomic.Int64
	failed           atomic.Int64
	canceled         atomic.Int64
	retries          atomic.Int64
	panics           atomic.Int64
	running          atomic.Int64
	artifactHits     atomic.Int64
	artifactCorrupt  atomic.Int64
	artifactPutFails atomic.Int64
}

// New starts a service: the worker pool is live on return and Drain is
// the only way to stop it.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:        cfg,
		cache:      experiments.NewWorkloadCache(),
		reg:        metrics.NewRegistry(),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
		queue:      make(chan *Job, cfg.QueueDepth),
	}
	s.registerMetrics()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.runJob(j)
			}
		}()
	}
	return s
}

// registerMetrics wires the service counters and the workload cache
// into the registry GET /metrics snapshots. Registration happens once,
// before any concurrent access; snapshots afterwards only read.
func (s *Service) registerMetrics() {
	s.reg.Const("service/workers", int64(s.cfg.Workers))
	s.reg.Const("service/queue_cap", int64(s.cfg.QueueDepth))
	s.reg.Gauge("service/queue_len", func() int64 { return int64(len(s.queue)) })
	s.reg.Gauge("service/jobs_submitted", s.submitted.Load)
	s.reg.Gauge("service/jobs_deduped", s.deduped.Load)
	s.reg.Gauge("service/jobs_rejected_queue_full", s.rejectedFull.Load)
	s.reg.Gauge("service/jobs_rejected_draining", s.rejectedDraining.Load)
	s.reg.Gauge("service/jobs_rejected_invalid", s.rejectedInvalid.Load)
	s.reg.Gauge("service/jobs_started", s.started.Load)
	s.reg.Gauge("service/jobs_completed", s.completed.Load)
	s.reg.Gauge("service/jobs_failed", s.failed.Load)
	s.reg.Gauge("service/jobs_canceled", s.canceled.Load)
	s.reg.Gauge("service/jobs_running", s.running.Load)
	s.reg.Gauge("service/retries", s.retries.Load)
	s.reg.Gauge("service/panics_recovered", s.panics.Load)
	s.reg.Gauge("service/workload_builds", func() int64 { return s.cache.Stats().Builds })
	s.reg.Gauge("service/workload_hits", func() int64 { return s.cache.Stats().Hits })
	if s.cfg.Store != nil {
		// Submissions answered from the persistent store without
		// executing, corrupt entries that fell back to recomputation,
		// and write-through failures (the job still succeeds; only
		// durability is lost).
		s.reg.Gauge("service/artifact_hits", s.artifactHits.Load)
		s.reg.Gauge("service/artifact_corrupt_recomputes", s.artifactCorrupt.Load)
		s.reg.Gauge("service/artifact_put_failures", s.artifactPutFails.Load)
		s.cfg.Store.Register(s.reg, "store")
	}
}

// Metrics snapshots the service registry (canonical sorted JSON via
// Snapshot.MarshalJSON).
func (s *Service) Metrics() *metrics.Snapshot { return s.reg.Snapshot() }

// Draining reports whether graceful shutdown has begun.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Job returns the job with the given content address.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every known job in admission order.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, len(s.order))
	for i, id := range s.order {
		out[i] = s.jobs[id]
	}
	return out
}

// Submit admits a normalized, validated spec. Identical specs
// singleflight: if the content address already maps to a queued,
// running or done job, that job is returned with deduped=true and no
// new work is admitted — N concurrent submissions of one spec are one
// execution and one artifact. Failed and canceled jobs are replaced by
// a fresh attempt. detached marks fire-and-forget submissions that
// must outlive client disconnects.
func (s *Service) Submit(spec *JobSpec, detached bool) (j *Job, dedup bool, err error) {
	id := spec.ID()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.rejectedDraining.Add(1)
		return nil, false, ErrDraining
	}
	if prev, ok := s.jobs[id]; ok && !replaceable(prev.State()) {
		s.deduped.Add(1)
		if detached {
			prev.markDetached()
		}
		return prev, true, nil
	}
	// Persistent-store read-through: a stored artifact is provably the
	// bytes an execution would produce (results are a pure function of
	// the spec), so a hit becomes an already-done job without touching
	// the queue. A corrupt entry has been dropped by Get and falls
	// through to recomputation; eviction and absence just mean "run it".
	if s.cfg.Store != nil {
		body, _, err := s.cfg.Store.Get(id)
		switch {
		case err == nil:
			s.artifactHits.Add(1)
			j = newJob(s.baseCtx, id, spec, detached, s.cfg.MaxJobEvents)
			j.finish(StateDone, body, "")
			if _, seen := s.jobs[id]; !seen {
				s.order = append(s.order, id)
			}
			s.jobs[id] = j
			return j, true, nil
		case errors.Is(err, artifact.ErrCorrupt):
			s.artifactCorrupt.Add(1)
		}
	}
	j = newJob(s.baseCtx, id, spec, detached, s.cfg.MaxJobEvents)
	select {
	case s.queue <- j:
	default:
		s.rejectedFull.Add(1)
		j.cancel()
		return nil, false, ErrQueueFull
	}
	if _, seen := s.jobs[id]; !seen {
		s.order = append(s.order, id)
	}
	s.jobs[id] = j
	s.submitted.Add(1)
	return j, false, nil
}

// replaceable reports whether a terminal state allows resubmission to
// start a fresh execution (done results are kept forever and reserved).
func replaceable(st State) bool {
	return st == StateFailed || st == StateCanceled
}

// noteInvalid counts a rejected submission payload (HTTP layer).
func (s *Service) noteInvalid() { s.rejectedInvalid.Add(1) }

// runJob drives one job to a terminal state on a worker goroutine:
// deadline, attempts, retry backoff, panic recovery, classification.
func (s *Service) runJob(j *Job) {
	s.started.Add(1)
	s.running.Add(1)
	defer s.running.Add(-1)

	timeout := s.cfg.DefaultTimeout
	if j.Spec.TimeoutMS > 0 {
		timeout = time.Duration(j.Spec.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := s.cfg.Clock.WithTimeout(j.ctx, timeout)
	defer cancel()

	var lastErr error
	for attempt := 1; ; attempt++ {
		j.setRunning(attempt)
		out, err := s.attempt(ctx, j)
		if err == nil {
			s.storeArtifact(j.ID, out)
			j.finish(StateDone, out, "")
			s.completed.Add(1)
			return
		}
		lastErr = err
		if ctx.Err() != nil || !IsTransient(err) || attempt >= s.cfg.MaxAttempts {
			break
		}
		s.retries.Add(1)
		j.emitRetry(attempt, err)
		backoff := s.cfg.RetryBaseDelay << (attempt - 1)
		select {
		case <-ctx.Done():
		case <-s.cfg.Clock.After(backoff):
		}
		if ctx.Err() != nil {
			break
		}
	}
	switch {
	case errors.Is(j.ctx.Err(), context.Canceled):
		// The job's own scope was canceled: every waiter disconnected,
		// or a force-drain tore the service down.
		j.finish(StateCanceled, nil, "canceled: "+lastErr.Error())
		s.canceled.Add(1)
	case errors.Is(ctx.Err(), context.DeadlineExceeded):
		j.finish(StateFailed, nil, fmt.Sprintf("deadline %v exceeded: %s", timeout, lastErr))
		s.failed.Add(1)
	default:
		j.finish(StateFailed, nil, lastErr.Error())
		s.failed.Add(1)
	}
}

// storeArtifact writes a completed job's bytes through to the
// persistent store (before waiters wake, so a served result is already
// durable) and applies the GC policy. Store failure never fails the
// job — the bytes are still in memory and recomputable — it only costs
// durability, and the counter makes that visible.
func (s *Service) storeArtifact(id string, body []byte) {
	if s.cfg.Store == nil {
		return
	}
	if err := s.cfg.Store.Put(id, body); err != nil {
		s.artifactPutFails.Add(1)
		return
	}
	if _, err := s.cfg.Store.GC(); err != nil {
		s.artifactPutFails.Add(1)
	}
}

// attempt runs one execution attempt with panic containment: a
// crashing simulation fails its own job, never the daemon. Panics are
// deterministic in this codebase (same spec, same panic), so they are
// not retried.
func (s *Service) attempt(ctx context.Context, j *Job) (artifact []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			err = fmt.Errorf("service: job %s panicked: %v", j.ID[:12], r)
		}
	}()
	run := s.cfg.Runner
	if run == nil {
		run = s.run
	}
	return run(ctx, j.Spec, j.emitEpoch)
}

// Drain is graceful shutdown: stop admitting (Submit returns
// ErrDraining), let the workers finish everything already admitted,
// and return once the pool is idle. If ctx expires first, every
// outstanding job context is canceled — in-flight engines abort at
// their next epoch barrier — the pool is waited out, and the forced
// shutdown is reported as an error.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("service: already draining")
	}
	s.draining = true
	close(s.queue) // workers exit after emptying it
	s.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
	}
	s.baseCancel()
	<-idle
	return fmt.Errorf("service: drain deadline passed, canceled in-flight jobs: %w", ctx.Err())
}
