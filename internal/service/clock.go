package service

import (
	"context"
	"time"
)

// Clock is the service's only source of time: retry backoff waits and
// per-job execution deadlines both go through it. The indirection is
// what keeps the retry/deadline test suite virtual-time — tests inject
// a clock they advance by hand and never sleep — and it confines the
// repo's wall-clock lint surface for the service to the one real
// implementation below. Job results never observe the clock: a timeout
// changes *whether* a spec produces bytes, never *which* bytes.
type Clock interface {
	// After returns a channel that delivers once, d from now.
	After(d time.Duration) <-chan time.Time
	// WithTimeout derives a context that is canceled with
	// context.DeadlineExceeded once d has elapsed.
	WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc)
}

// realClock is the production Clock.
type realClock struct{}

func (realClock) After(d time.Duration) <-chan time.Time {
	//drslint:allow wallclock -- retry backoff pacing only; job artifacts are a pure function of the spec
	return time.After(d)
}

func (realClock) WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, d)
}
