package service

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/archconfig"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/scene"
)

// params maps a normalized spec onto experiment parameters, pointing
// every job at the process-wide workload cache so identical scenes
// build once across the daemon's lifetime. The spec was validated, so
// its device-model and scheduler names resolve; an error here means the
// catalog changed under a persisted spec and is surfaced, not panicked.
func (s *Service) params(spec *JobSpec) (experiments.Params, error) {
	p := experiments.DefaultParams()
	p.Tris = spec.Tris
	p.Width = spec.Width
	p.Height = spec.Height
	p.SPP = spec.SPP
	p.MaxRaysPerBounce = spec.MaxRaysPerBounce
	p.Bounces = spec.Bounces
	p.Options.Parallelism = spec.Parallelism
	p.Cache = s.cache
	if spec.ArchConfig != "" {
		ac, err := archconfig.Builtin(spec.ArchConfig)
		if err != nil {
			return p, &SpecError{Field: "arch_config", Reason: err.Error()}
		}
		p.Options, err = harness.ApplyArch(ac, p.Options)
		if err != nil {
			return p, &SpecError{Field: "arch_config", Reason: err.Error()}
		}
	}
	if spec.Sched != "" {
		p.Options.Sched = spec.Sched
	}
	return p, nil
}

// scenesOf resolves a grid job's scene selection: one named benchmark,
// or all four when the spec leaves it empty. The spec was validated,
// so the name resolves.
func scenesOf(spec *JobSpec) ([]scene.Benchmark, error) {
	if spec.Scene == "" {
		return nil, nil // runners default to scene.Benchmarks
	}
	b, err := ParseScene(spec.Scene)
	if err != nil {
		return nil, &SpecError{Field: "scene", Reason: err.Error()}
	}
	return []scene.Benchmark{b}, nil
}

// runArtifact is the result body of a run job. Field order is fixed —
// json.Marshal of a struct is deterministic — and nothing in it
// depends on wall clock, queue position or worker identity, so equal
// specs produce equal bytes.
type runArtifact struct {
	ID            string          `json:"id"`
	Kind          string          `json:"kind"`
	Scene         string          `json:"scene"`
	Arch          string          `json:"arch"`
	Policy        string          `json:"policy,omitempty"`
	ArchConfig    string          `json:"arch_config,omitempty"`
	Sched         string          `json:"sched,omitempty"`
	Bounce        int             `json:"bounce"`
	Rays          int             `json:"rays"`
	Cycles        int64           `json:"cycles"`
	WarpInstrs    int64           `json:"warp_instrs"`
	Mrays         float64         `json:"mrays"`
	SIMDEff       float64         `json:"simd_eff"`
	Epochs        int             `json:"epochs,omitempty"`
	EpochsDropped int64           `json:"epochs_dropped,omitempty"`
	Metrics       json.RawMessage `json:"metrics,omitempty"`
}

// gridArtifact is the result body of a fig10 or table2 job: the raw
// cells plus the paper-layout text renders.
type gridArtifact struct {
	ID         string `json:"id"`
	Kind       string `json:"kind"`
	ArchConfig string `json:"arch_config,omitempty"`
	Sched      string `json:"sched,omitempty"`
	Cells      any    `json:"cells"`
	Text       string `json:"text"`
}

// run is the built-in Runner: it executes a validated spec against the
// experiment runners and encodes the deterministic result artifact.
func (s *Service) run(ctx context.Context, spec *JobSpec, progress func(cycle, epochs int64)) ([]byte, error) {
	p, err := s.params(spec)
	if err != nil {
		return nil, err
	}
	switch spec.Kind {
	case KindRun:
		return s.runSingle(ctx, spec, p, progress)
	case KindFig10:
		scenes, err := scenesOf(spec)
		if err != nil {
			return nil, err
		}
		cells, err := experiments.Figure10Ctx(ctx, p, spec.CmpBounces, scenes)
		if err != nil {
			return nil, err
		}
		text := experiments.RenderFigure10(cells, spec.CmpBounces) + "\n" +
			experiments.RenderFigure11(cells, spec.CmpBounces)
		return marshalArtifact(gridArtifact{ID: spec.ID(), Kind: spec.Kind, ArchConfig: spec.ArchConfig, Sched: spec.Sched, Cells: cells, Text: text})
	case KindTable2:
		scenes, err := scenesOf(spec)
		if err != nil {
			return nil, err
		}
		cells, err := experiments.Table2Ctx(ctx, p, spec.SweepBounces, scenes)
		if err != nil {
			return nil, err
		}
		return marshalArtifact(gridArtifact{
			ID: spec.ID(), Kind: spec.Kind, ArchConfig: spec.ArchConfig, Sched: spec.Sched, Cells: cells,
			Text: experiments.RenderTable2(cells, spec.SweepBounces),
		})
	default:
		return nil, &SpecError{Field: "kind", Reason: fmt.Sprintf("unknown kind %q", spec.Kind)}
	}
}

// runSingle executes a single-device run job: one scene, one
// architecture, one bounce stream, optionally observed. Observed jobs
// feed the progress stream from the engine's epoch barriers, thinned
// to one event per Config.EpochEventEvery barriers.
func (s *Service) runSingle(ctx context.Context, spec *JobSpec, p experiments.Params, progress func(cycle, epochs int64)) ([]byte, error) {
	b, err := ParseScene(spec.Scene)
	if err != nil {
		return nil, &SpecError{Field: "scene", Reason: err.Error()}
	}
	// The spec was validated, so the effective policy name — the policy
	// field, or the legacy arch spelling — resolves in the registry.
	name := spec.PolicyName()
	if _, err := harness.Policies().New(name); err != nil {
		return nil, &SpecError{Field: "policy", Reason: err.Error()}
	}
	w, err := s.cache.Get(b, p)
	if err != nil {
		return nil, err
	}
	rays := w.BounceRays(spec.Bounce, p)
	if len(rays) == 0 {
		return nil, fmt.Errorf("service: %s bounce %d has no rays at this scale", b, spec.Bounce)
	}
	opt := p.Options
	opt.Observe = spec.Observe
	if spec.Observe && progress != nil {
		every := s.cfg.EpochEventEvery
		var epochs int64 // engine goroutine only; barriers serialize it
		opt.OnEpochSample = func(cycle int64, _ []int64) {
			epochs++
			if epochs%every == 0 {
				progress(cycle, epochs)
			}
		}
	}
	res, err := harness.RunNamedCtx(ctx, name, rays, w.Data, opt)
	if err != nil {
		return nil, err
	}
	art := runArtifact{
		ID:         spec.ID(),
		Kind:       spec.Kind,
		Scene:      spec.Scene,
		Arch:       spec.Arch,
		Policy:     spec.Policy,
		ArchConfig: spec.ArchConfig,
		Sched:      spec.Sched,
		Bounce:     spec.Bounce,
		Rays:       res.Rays,
		Cycles:     res.GPU.Stats.Cycles,
		WarpInstrs: res.GPU.Stats.WarpInstrs,
		Mrays:      res.Mrays,
		SIMDEff:    res.SIMDEff,
	}
	if res.Metrics != nil {
		snap, err := res.Metrics.MarshalJSON()
		if err != nil {
			return nil, err
		}
		art.Metrics = snap
	}
	if res.Series != nil {
		art.Epochs = res.Series.Len()
		art.EpochsDropped = res.Series.Dropped()
	}
	return marshalArtifact(art)
}

// marshalArtifact encodes a result body. Artifacts are compared
// byte-for-byte by the determinism tests and the CI smoke run, so the
// encoding must stay canonical: plain Marshal of fixed-order structs,
// no maps, no timestamps.
func marshalArtifact(v any) ([]byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("service: encoding result artifact: %w", err)
	}
	return append(data, '\n'), nil
}
