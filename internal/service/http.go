package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/artifact"
)

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
	Field string `json:"field,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}

func writeError(w http.ResponseWriter, code int, err error) {
	body := errorBody{Error: err.Error()}
	if se, ok := AsSpecError(err); ok {
		body.Field = se.Field
	}
	writeJSON(w, code, body)
}

// submitResponse is the body of an async (202) submission and of the
// deduped notice header path.
type submitResponse struct {
	ID      string `json:"id"`
	State   State  `json:"state"`
	Deduped bool   `json:"deduped"`
}

// Handler returns the service's HTTP API:
//
//	POST /v1/jobs              submit a spec; ?wait=1 blocks for the result
//	GET  /v1/jobs              list jobs in admission order
//	GET  /v1/jobs/{id}         status
//	GET  /v1/jobs/{id}/result  result artifact (or failure body)
//	GET  /v1/jobs/{id}/events  SSE progress stream
//	GET  /v1/artifacts/{id}    persistent store lookup (404 unknown, 410 evicted)
//	GET  /healthz              liveness + drain state
//	GET  /metrics              canonical sorted-JSON metrics snapshot
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/artifacts/{id}", s.handleArtifact)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: reading body: %w", err))
		return
	}
	spec, err := DecodeSpec(body)
	if err != nil {
		s.noteInvalid()
		writeError(w, http.StatusBadRequest, err)
		return
	}
	wait := r.URL.Query().Get("wait") == "1"
	j, deduped, err := s.Submit(spec, !wait)
	switch {
	case err == nil:
	case err == ErrQueueFull:
		writeError(w, http.StatusTooManyRequests, err)
		return
	case err == ErrDraining:
		writeError(w, http.StatusServiceUnavailable, err)
		return
	default:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !wait {
		writeJSON(w, http.StatusAccepted, submitResponse{ID: j.ID, State: j.State(), Deduped: deduped})
		return
	}
	// Blocking submission: hold a waiter reference so a disconnect of
	// the last interested client cancels the run, then serve the
	// terminal outcome.
	j.addWaiter()
	defer j.releaseWaiter()
	select {
	case <-j.Done():
		s.writeOutcome(w, j)
	case <-r.Context().Done():
		// Client gone; releaseWaiter may cancel the job. Nothing can be
		// written to a dead connection.
	}
}

// writeOutcome serves a terminal job: the artifact bytes verbatim for
// done (so every waiter and every later fetch sees identical bytes),
// a failure body otherwise.
func (s *Service) writeOutcome(w http.ResponseWriter, j *Job) {
	artifact, errMsg := j.Artifact()
	switch j.State() {
	case StateDone:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(artifact)
	case StateCanceled:
		writeJSON(w, http.StatusConflict, errorBody{Error: errMsg})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: errMsg})
	}
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	statuses := make([]Status, len(jobs))
	for i, j := range jobs {
		statuses[i] = j.Status()
	}
	writeJSON(w, http.StatusOK, statuses)
}

// lookup resolves the {id} path segment, writing a 404 on a miss.
func (s *Service) lookup(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: no job %s", id))
		return nil, false
	}
	return j, true
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.lookup(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.Job(id)
	if !ok {
		// Not in the in-memory registry — but a restarted daemon's
		// persistent store may still hold the artifact. The two misses
		// are distinct contract points: 404 means the job is unknown
		// here, 410 means it existed and its artifact was evicted
		// (resubmitting the spec recomputes the same bytes).
		s.serveStored(w, id)
		return
	}
	if st := j.State(); !st.Terminal() {
		writeJSON(w, http.StatusAccepted, submitResponse{ID: j.ID, State: st})
		return
	}
	s.writeOutcome(w, j)
}

// serveStored answers a result/artifact fetch from the persistent
// store alone: 200 with the verbatim bytes, 410 Gone for an evicted
// entry, 404 for everything else (unknown, corrupt-dropped, no store).
func (s *Service) serveStored(w http.ResponseWriter, id string) {
	if s.cfg.Store == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: no job %s", id))
		return
	}
	body, _, err := s.cfg.Store.Get(id)
	switch {
	case err == nil:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(body)
	case errors.Is(err, artifact.ErrEvicted):
		writeError(w, http.StatusGone, fmt.Errorf("service: artifact %s evicted from the store; resubmit the spec to recompute it", id))
	default:
		writeError(w, http.StatusNotFound, fmt.Errorf("service: no job %s", id))
	}
}

// handleArtifact is the shard peer read path: the persistent store and
// nothing else — no execution, no in-memory jobs. Peers use the
// 404/410 distinction the same way drsctl does.
func (s *Service) handleArtifact(w http.ResponseWriter, r *http.Request) {
	s.serveStored(w, r.PathValue("id"))
}

// handleEvents streams a job's progress as server-sent events: every
// buffered event from sequence 0, then live events as they land, until
// the terminal state event has been delivered (event: end closes the
// stream). Watching is read-only — it takes no waiter reference, so
// observing a job never keeps it alive or cancels it.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("service: streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	var next int64
	for {
		events, changed, terminal := j.eventsSince(next)
		for _, e := range events {
			data, err := json.Marshal(e)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, data)
			next = e.Seq + 1
		}
		flusher.Flush()
		if terminal {
			// eventsSince snapshots events and the terminal flag under
			// one lock, and finish appends the terminal transition
			// before flipping state — so terminal here means the whole
			// stream has been delivered.
			fmt.Fprintf(w, "event: end\ndata: {}\n\n")
			flusher.Flush()
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, struct {
			Status string `json:"status"`
		}{Status: "draining"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("{\"status\":\"ok\"}\n"))
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	data, err := s.Metrics().MarshalJSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(append(data, '\n'))
}
