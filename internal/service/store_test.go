package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/artifact"
)

// countingRunner returns spec-determined bytes and counts executions.
func countingRunner(calls *atomic.Int64) Runner {
	return func(ctx context.Context, spec *JobSpec, _ func(cycle, epochs int64)) ([]byte, error) {
		calls.Add(1)
		return []byte(`{"id":"` + spec.ID() + `"}`), nil
	}
}

func openStore(t *testing.T, dir string) *artifact.Store {
	t.Helper()
	st, err := artifact.Open(artifact.Config{Dir: dir, Now: func() int64 { return 1 }})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestStoreWriteThroughAndRestartHit: a completed job lands in the
// store; a fresh service over the same directory serves the spec from
// the store without executing, byte-identically.
func TestStoreWriteThroughAndRestartHit(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64

	st1 := openStore(t, dir)
	s1 := New(Config{Workers: 1, Runner: countingRunner(&calls), Store: st1})
	spec := testSpec(t, 0)
	j, _, err := s1.Submit(spec, true)
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	want, _ := j.Artifact()
	if j.State() != StateDone || len(want) == 0 {
		t.Fatalf("job state %s", j.State())
	}
	if body, _, err := st1.Get(spec.ID()); err != nil || !bytes.Equal(body, want) {
		t.Fatalf("write-through missing: %v", err)
	}
	drainAll(t, s1)
	st1.Close()

	// "Restart": new store over the same dir, new service, empty job map.
	st2 := openStore(t, dir)
	s2 := New(Config{Workers: 1, Runner: countingRunner(&calls), Store: st2})
	j2, dedup, err := s2.Submit(testSpec(t, 0), true)
	if err != nil {
		t.Fatal(err)
	}
	if !dedup {
		t.Fatal("store hit not reported as deduped")
	}
	<-j2.Done()
	got, _ := j2.Artifact()
	if j2.State() != StateDone || !bytes.Equal(got, want) {
		t.Fatalf("restart hit: state %s, bytes equal %v", j2.State(), bytes.Equal(got, want))
	}
	if calls.Load() != 1 {
		t.Fatalf("runner ran %d times across restart, want 1 (store hit)", calls.Load())
	}
	if hits, _ := s2.Metrics().Get("service/artifact_hits"); hits != 1 {
		t.Fatalf("artifact_hits = %d, want 1", hits)
	}
	drainAll(t, s2)
}

// TestStoreCorruptFallsBackToRecompute: a bit-flipped stored artifact
// must never be served — the service recomputes and re-stores, and the
// recomputed bytes match what the intact store held.
func TestStoreCorruptFallsBackToRecompute(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64

	st := openStore(t, dir)
	s := New(Config{Workers: 1, Runner: countingRunner(&calls), Store: st})
	spec := testSpec(t, 0)
	j, _, err := s.Submit(spec, true)
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	want, _ := j.Artifact()
	drainAll(t, s)
	st.Close()

	// Flip one bit in the stored body.
	id := spec.ID()
	path := filepath.Join(dir, "objects", id[:2], id)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	s2 := New(Config{Workers: 1, Runner: countingRunner(&calls), Store: st2})
	j2, _, err := s2.Submit(testSpec(t, 0), true)
	if err != nil {
		t.Fatal(err)
	}
	<-j2.Done()
	got, _ := j2.Artifact()
	if j2.State() != StateDone || !bytes.Equal(got, want) {
		t.Fatalf("recompute after corruption: state %s, bytes match %v", j2.State(), bytes.Equal(got, want))
	}
	if calls.Load() != 2 {
		t.Fatalf("runner ran %d times, want 2 (original + corrupt recompute)", calls.Load())
	}
	if n, _ := s2.Metrics().Get("service/artifact_corrupt_recomputes"); n != 1 {
		t.Fatalf("artifact_corrupt_recomputes = %d, want 1", n)
	}
	// The recompute re-stored a good copy.
	if body, _, err := st2.Get(id); err != nil || !bytes.Equal(body, want) {
		t.Fatalf("store after recompute: %v", err)
	}
	drainAll(t, s2)
}

// TestArtifactEndpointContract: GET /v1/artifacts/{id} and the result
// fallback expose the 200 / 404 / 410 contract drsctl and shard peers
// key off.
func TestArtifactEndpointContract(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64
	st, err := artifact.Open(artifact.Config{
		Dir: dir, MaxBytes: 1, // any artifact exceeds the cap, so GC evicts it
		Now: func() int64 { return 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	s := New(Config{Workers: 1, Runner: countingRunner(&calls), Store: st})
	defer drainAll(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	spec := testSpec(t, 0)
	j, _, err := s.Submit(spec, true)
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}

	// The 1-byte cap evicted the artifact at write-through GC time:
	// the store knows the id but no longer holds the bytes → 410.
	if code, _ := get("/v1/artifacts/" + spec.ID()); code != http.StatusGone {
		t.Fatalf("evicted artifact: code %d, want 410", code)
	}
	// Unknown id → 404 on both the artifact and result endpoints.
	unknown := testSpec(t, 1).ID()
	if code, _ := get("/v1/artifacts/" + unknown); code != http.StatusNotFound {
		t.Fatalf("unknown artifact: code %d, want 404", code)
	}
	if code, _ := get("/v1/jobs/" + unknown + "/result"); code != http.StatusNotFound {
		t.Fatalf("unknown result: code %d, want 404", code)
	}
	// The in-memory job still serves its result regardless of eviction.
	if code, body := get("/v1/jobs/" + spec.ID() + "/result"); code != http.StatusOK {
		t.Fatalf("live result: code %d body %s", code, body)
	}

	// Distinct error text for evicted vs unknown (drsctl matches on
	// status, humans on the message).
	_, body := get("/v1/artifacts/" + spec.ID())
	var eb struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &eb); err != nil || !bytes.Contains([]byte(eb.Error), []byte("evicted")) {
		t.Fatalf("eviction error body %q", body)
	}
}

// TestResultServedFromStoreAfterRestart: the result endpoint of a
// restarted daemon (empty job registry) serves stored artifacts.
func TestResultServedFromStoreAfterRestart(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64
	st := openStore(t, dir)
	s := New(Config{Workers: 1, Runner: countingRunner(&calls), Store: st})
	spec := testSpec(t, 0)
	j, _, err := s.Submit(spec, true)
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	want, _ := j.Artifact()
	drainAll(t, s)
	st.Close()

	st2 := openStore(t, dir)
	s2 := New(Config{Workers: 1, Runner: countingRunner(&calls), Store: st2})
	defer drainAll(t, s2)
	srv := httptest.NewServer(s2.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/jobs/" + spec.ID() + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("restarted result: code %d, bytes match %v", resp.StatusCode, bytes.Equal(buf.Bytes(), want))
	}
	if calls.Load() != 1 {
		t.Fatalf("result fetch triggered execution: %d calls", calls.Load())
	}
}
