package service

import (
	"context"
	"sync"
)

// State is a job's lifecycle position. The machine is linear with two
// failure exits:
//
//	queued -> running -> done
//	                  -> failed    (error, deadline, exhausted retries)
//	                  -> canceled  (every waiting client disconnected,
//	                                or the daemon force-drained)
//
// done, failed and canceled are terminal. A done job is immortal — its
// artifact keeps serving resubmissions of the same spec; failed and
// canceled jobs are replaced by a fresh attempt on resubmission.
type State string

// The five job states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Event types on a job's progress stream.
const (
	// EventState marks a state transition.
	EventState = "state"
	// EventEpoch is a live epoch-barrier progress sample from the
	// engine (observed run jobs only).
	EventEpoch = "epoch"
	// EventRetry marks a failed attempt about to be retried.
	EventRetry = "retry"
)

// Event is one entry on a job's progress stream, delivered over SSE by
// GET /v1/jobs/{id}/events. Seq is dense and monotonic per job, so a
// reader that reconnects can resume from the last sequence it saw.
type Event struct {
	Seq   int64  `json:"seq"`
	Type  string `json:"type"`
	State State  `json:"state,omitempty"`
	// Cycle and Epochs carry epoch progress: the device cycle of the
	// barrier and how many barriers the run has passed.
	Cycle  int64 `json:"cycle,omitempty"`
	Epochs int64 `json:"epochs,omitempty"`
	// Attempt and Error annotate retry and failure events.
	Attempt int    `json:"attempt,omitempty"`
	Error   string `json:"error,omitempty"`
}

// Status is the JSON shape of GET /v1/jobs/{id}. It deliberately holds
// no timestamps: a job's externally visible state is a pure function of
// its spec and lifecycle position.
type Status struct {
	ID            string   `json:"id"`
	State         State    `json:"state"`
	Spec          *JobSpec `json:"spec"`
	Attempts      int      `json:"attempts"`
	Error         string   `json:"error,omitempty"`
	Events        int      `json:"events"`
	EventsDropped int64    `json:"events_dropped,omitempty"`
	ResultBytes   int      `json:"result_bytes"`
}

// Job is one admitted execution: a spec, its content address, and the
// lifecycle state the workers drive. All mutation happens under mu;
// done closes exactly once at the terminal transition and changed is
// swapped (close-and-replace) on every visible change so pollers and
// SSE streams wake without locks being held across waits.
type Job struct {
	// ID is the content address: hex SHA-256 of the canonical spec.
	ID string
	// Spec is the normalized, validated spec this job executes.
	Spec *JobSpec

	// ctx is the job's cancellation scope, derived from the service
	// base context at admission. cancel fires when every waiting client
	// disconnects (non-detached jobs) or when a force-drain tears the
	// service down; the engine observes it at its next epoch barrier.
	ctx    context.Context
	cancel context.CancelFunc

	maxEvents int

	mu       sync.Mutex
	state    State
	errMsg   string
	artifact []byte
	attempts int
	events   []Event
	dropped  int64
	changed  chan struct{}
	done     chan struct{}
	waiters  int
	detached bool
}

func newJob(base context.Context, id string, spec *JobSpec, detached bool, maxEvents int) *Job {
	ctx, cancel := context.WithCancel(base)
	j := &Job{
		ID:        id,
		Spec:      spec,
		ctx:       ctx,
		cancel:    cancel,
		maxEvents: maxEvents,
		state:     StateQueued,
		changed:   make(chan struct{}),
		done:      make(chan struct{}),
		detached:  detached,
	}
	j.events = append(j.events, Event{Seq: 0, Type: EventState, State: StateQueued})
	return j
}

// notifyLocked wakes every watcher. Callers hold j.mu.
func (j *Job) notifyLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// appendLocked adds an event with the next sequence number, dropping
// epoch events once the buffer is full (state transitions always land,
// so the stream's terminal event is never lost). Callers hold j.mu.
func (j *Job) appendLocked(e Event) {
	if e.Type == EventEpoch && len(j.events) >= j.maxEvents {
		j.dropped++
		return
	}
	e.Seq = int64(len(j.events))
	j.events = append(j.events, e)
	j.notifyLocked()
}

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// setRunning records the start of an execution attempt.
func (j *Job) setRunning(attempt int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.attempts = attempt
	if j.state != StateRunning {
		j.state = StateRunning
		j.appendLocked(Event{Type: EventState, State: StateRunning, Attempt: attempt})
	}
}

// emitEpoch publishes one epoch-barrier progress sample. It runs on the
// engine goroutine at a barrier; the lock is uncontended unless a
// client is concurrently reading the stream.
func (j *Job) emitEpoch(cycle, epochs int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.appendLocked(Event{Type: EventEpoch, Cycle: cycle, Epochs: epochs})
}

// emitRetry publishes a retry notice for a failed attempt.
func (j *Job) emitRetry(attempt int, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.appendLocked(Event{Type: EventRetry, Attempt: attempt, Error: err.Error()})
}

// finish moves the job to a terminal state exactly once.
func (j *Job) finish(state State, artifact []byte, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.artifact = artifact
	j.errMsg = errMsg
	j.appendLocked(Event{Type: EventState, State: state, Error: errMsg})
	close(j.done)
	j.cancel() // release the context's resources; the run is over
}

// Done returns a channel closed at the terminal transition.
func (j *Job) Done() <-chan struct{} { return j.done }

// Artifact returns the result bytes (StateDone only) and the error
// message of a failed or canceled job.
func (j *Job) Artifact() ([]byte, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.artifact, j.errMsg
}

// Status snapshots the job for the status endpoint.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID:            j.ID,
		State:         j.state,
		Spec:          j.Spec,
		Attempts:      j.attempts,
		Error:         j.errMsg,
		Events:        len(j.events),
		EventsDropped: j.dropped,
		ResultBytes:   len(j.artifact),
	}
}

// eventsSince returns a copy of the events with sequence >= seq, a
// channel that closes on the next change, and whether the job is
// terminal. SSE streams loop on it: drain, flush, then wait on the
// channel (or the client's context).
func (j *Job) eventsSince(seq int64) ([]Event, <-chan struct{}, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []Event
	if int(seq) < len(j.events) {
		out = append(out, j.events[seq:]...)
	}
	return out, j.changed, j.state.Terminal()
}

// addWaiter registers a client blocked on this job's completion.
func (j *Job) addWaiter() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.waiters++
}

// releaseWaiter drops one waiting client. When the last waiter of a
// non-detached job disconnects before the job finishes, the job's
// context is canceled: nobody is left to read the result, so the
// engine aborts at its next epoch barrier instead of burning cycles.
func (j *Job) releaseWaiter() {
	j.mu.Lock()
	j.waiters--
	abandon := j.waiters == 0 && !j.detached && !j.state.Terminal()
	j.mu.Unlock()
	if abandon {
		j.cancel()
	}
}

// markDetached pins the job: it keeps running even with zero waiters.
// Async submissions detach their job; a later async resubmission of a
// spec first submitted with wait=1 detaches the existing job too.
func (j *Job) markDetached() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.detached = true
}
