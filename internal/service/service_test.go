package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testSpec returns a distinct valid run spec per tag.
func testSpec(t *testing.T, tag int) *JobSpec {
	t.Helper()
	spec, err := DecodeSpec([]byte(fmt.Sprintf(
		`{"kind":"run","scene":"conference","arch":"drs","bounce":%d}`, 1+tag%8)))
	if err != nil {
		t.Fatal(err)
	}
	if tag >= 8 {
		spec.Tris = 4000 + tag // keep specs distinct beyond the bounce range
	}
	return spec
}

// blockingRunner returns a runner that parks until released (or ctx
// ends) and counts its invocations.
type blockingRunner struct {
	calls   atomic.Int64
	release chan struct{}
	entered chan struct{} // one tick per invocation
}

func newBlockingRunner(buf int) *blockingRunner {
	return &blockingRunner{
		release: make(chan struct{}),
		entered: make(chan struct{}, buf),
	}
}

func (b *blockingRunner) run(ctx context.Context, spec *JobSpec, _ func(cycle, epochs int64)) ([]byte, error) {
	b.calls.Add(1)
	b.entered <- struct{}{}
	select {
	case <-b.release:
		return []byte(`{"id":"` + spec.ID() + `"}`), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func drainAll(t *testing.T, s *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestQueueFullRejection: with one worker parked on a job and the
// admission queue at capacity, the next distinct submission must be
// rejected with the typed queue-full error, not blocked or dropped.
func TestQueueFullRejection(t *testing.T) {
	br := newBlockingRunner(4)
	s := New(Config{Workers: 1, QueueDepth: 2, Runner: br.run})

	if _, _, err := s.Submit(testSpec(t, 0), true); err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	<-br.entered // worker is now parked inside job 0
	for i := 1; i <= 2; i++ {
		if _, _, err := s.Submit(testSpec(t, i), true); err != nil {
			t.Fatalf("submit %d should queue: %v", i, err)
		}
	}
	_, _, err := s.Submit(testSpec(t, 3), true)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if got, _ := s.Metrics().Get("service/jobs_rejected_queue_full"); got != 1 {
		t.Fatalf("rejected_queue_full = %d, want 1", got)
	}
	close(br.release)
	drainAll(t, s)
}

// TestDedupSingleflight: N concurrent submissions of one spec are one
// execution — one runner call, one workload, identical artifact bytes
// for every submitter.
func TestDedupSingleflight(t *testing.T) {
	br := newBlockingRunner(16)
	s := New(Config{Workers: 2, QueueDepth: 16, Runner: br.run})
	spec := testSpec(t, 0)

	const n = 8
	jobs := make([]*Job, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			j, _, err := s.Submit(testSpec(t, 0), true)
			if err != nil {
				t.Errorf("submit: %v", err)
				return
			}
			jobs[i] = j
		}()
	}
	wg.Wait()
	<-br.entered
	close(br.release)
	drainAll(t, s)

	var ref []byte
	for i, j := range jobs {
		if j == nil {
			t.Fatalf("submitter %d got no job", i)
		}
		if j.ID != spec.ID() {
			t.Fatalf("submitter %d got job %s, want %s", i, j.ID, spec.ID())
		}
		if j.State() != StateDone {
			t.Fatalf("job state %s, want done", j.State())
		}
		artifact, _ := j.Artifact()
		if i == 0 {
			ref = artifact
		} else if !bytes.Equal(artifact, ref) {
			t.Fatalf("submitter %d saw different artifact bytes", i)
		}
	}
	if calls := br.calls.Load(); calls != 1 {
		t.Fatalf("runner ran %d times for %d submissions, want 1", calls, n)
	}
	if got, _ := s.Metrics().Get("service/jobs_deduped"); got != n-1 {
		t.Fatalf("jobs_deduped = %d, want %d", got, n-1)
	}
	if got, _ := s.Metrics().Get("service/jobs_submitted"); got != 1 {
		t.Fatalf("jobs_submitted = %d, want 1", got)
	}
}

// TestDeadlineExpiry: a job whose spec deadline passes fails with a
// deadline error; the worker survives to run the next job. The clock
// is virtual: the test advances it past the deadline by hand and
// never sleeps.
func TestDeadlineExpiry(t *testing.T) {
	clk := &virtualClock{}
	br := newBlockingRunner(4)
	s := New(Config{Workers: 1, QueueDepth: 4, Runner: br.run, Clock: clk})
	spec := testSpec(t, 0)
	spec.TimeoutMS = 30

	j, _, err := s.Submit(spec, true)
	if err != nil {
		t.Fatal(err)
	}
	<-br.entered // the worker holds the job and its deadline is armed
	clk.Advance(31 * time.Millisecond)
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("job did not finish after its virtual 30ms deadline passed")
	}
	if j.State() != StateFailed {
		t.Fatalf("state %s, want failed", j.State())
	}
	if _, msg := j.Artifact(); !bytes.Contains([]byte(msg), []byte("deadline")) {
		t.Fatalf("failure message %q does not name the deadline", msg)
	}
	close(br.release)
	j2, _, err := s.Submit(testSpec(t, 1), true)
	if err != nil {
		t.Fatalf("submit after deadline failure: %v", err)
	}
	<-j2.Done()
	if j2.State() != StateDone {
		t.Fatalf("next job state %s, want done", j2.State())
	}
	drainAll(t, s)
}

// TestRetryTransient: transient failures retry with backoff up to
// MaxAttempts; the third attempt succeeds. Backoff runs on the
// virtual clock, which records the exact doubling schedule the
// service asked for while the test itself never sleeps.
func TestRetryTransient(t *testing.T) {
	clk := &virtualClock{}
	var calls atomic.Int64
	runner := func(ctx context.Context, spec *JobSpec, _ func(cycle, epochs int64)) ([]byte, error) {
		if calls.Add(1) < 3 {
			return nil, MarkTransient(errors.New("flaky"))
		}
		return []byte("ok"), nil
	}
	base := 50 * time.Millisecond
	s := New(Config{Workers: 1, MaxAttempts: 3, RetryBaseDelay: base, Runner: runner, Clock: clk})
	j, _, err := s.Submit(testSpec(t, 0), true)
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if j.State() != StateDone {
		_, msg := j.Artifact()
		t.Fatalf("state %s (%s), want done after retries", j.State(), msg)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("runner ran %d times, want 3", got)
	}
	if st := j.Status(); st.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", st.Attempts)
	}
	// Two backoffs happened — base then 2*base — in virtual time only.
	if want := 3 * base; clk.Waited() != want {
		t.Fatalf("virtual backoff total %v, want %v (base + doubled)", clk.Waited(), want)
	}
	drainAll(t, s)
}

// TestNonTransientDoesNotRetry: a deterministic failure fails the job
// on the first attempt.
func TestNonTransientDoesNotRetry(t *testing.T) {
	var calls atomic.Int64
	runner := func(ctx context.Context, spec *JobSpec, _ func(cycle, epochs int64)) ([]byte, error) {
		calls.Add(1)
		return nil, errors.New("deterministic failure")
	}
	s := New(Config{Workers: 1, MaxAttempts: 3, RetryBaseDelay: time.Millisecond, Runner: runner})
	j, _, err := s.Submit(testSpec(t, 0), true)
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if j.State() != StateFailed || calls.Load() != 1 {
		t.Fatalf("state %s after %d calls, want failed after 1", j.State(), calls.Load())
	}
	drainAll(t, s)
}

// TestPanicRecovery: a panicking job fails itself — with the panic in
// the error, no retry — and the daemon keeps serving.
func TestPanicRecovery(t *testing.T) {
	var calls atomic.Int64
	runner := func(ctx context.Context, spec *JobSpec, _ func(cycle, epochs int64)) ([]byte, error) {
		if calls.Add(1) == 1 {
			panic("kernel exploded")
		}
		return []byte("ok"), nil
	}
	s := New(Config{Workers: 1, MaxAttempts: 3, Runner: runner})
	j, _, err := s.Submit(testSpec(t, 0), true)
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if j.State() != StateFailed {
		t.Fatalf("state %s, want failed", j.State())
	}
	if _, msg := j.Artifact(); !bytes.Contains([]byte(msg), []byte("kernel exploded")) {
		t.Fatalf("failure message %q does not carry the panic", msg)
	}
	if got, _ := s.Metrics().Get("service/panics_recovered"); got != 1 {
		t.Fatalf("panics_recovered = %d, want 1", got)
	}
	j2, _, err := s.Submit(testSpec(t, 1), true)
	if err != nil {
		t.Fatalf("daemon did not survive the panic: %v", err)
	}
	<-j2.Done()
	if j2.State() != StateDone {
		t.Fatalf("post-panic job state %s, want done", j2.State())
	}
	drainAll(t, s)
}

// TestFailedJobReplacedOnResubmit: done jobs dedup forever, but a
// failed job is replaced by a fresh execution.
func TestFailedJobReplacedOnResubmit(t *testing.T) {
	var calls atomic.Int64
	runner := func(ctx context.Context, spec *JobSpec, _ func(cycle, epochs int64)) ([]byte, error) {
		if calls.Add(1) == 1 {
			return nil, errors.New("first time fails")
		}
		return []byte("ok"), nil
	}
	s := New(Config{Workers: 1, Runner: runner})
	j1, _, err := s.Submit(testSpec(t, 0), true)
	if err != nil {
		t.Fatal(err)
	}
	<-j1.Done()
	if j1.State() != StateFailed {
		t.Fatalf("first run state %s, want failed", j1.State())
	}
	j2, deduped, err := s.Submit(testSpec(t, 0), true)
	if err != nil {
		t.Fatal(err)
	}
	if deduped || j2 == j1 {
		t.Fatal("failed job was deduped instead of replaced")
	}
	<-j2.Done()
	if j2.State() != StateDone {
		t.Fatalf("replacement state %s, want done", j2.State())
	}
	j3, deduped, err := s.Submit(testSpec(t, 0), true)
	if err != nil {
		t.Fatal(err)
	}
	if !deduped || j3 != j2 {
		t.Fatal("done job was not deduped")
	}
	drainAll(t, s)
}

// TestDrainOrdering: everything admitted before Drain completes; a
// submission racing the drain gets the typed draining error; Drain
// returns only after the pool is idle.
func TestDrainOrdering(t *testing.T) {
	var mu sync.Mutex
	var finished []string
	runner := func(ctx context.Context, spec *JobSpec, _ func(cycle, epochs int64)) ([]byte, error) {
		mu.Lock()
		finished = append(finished, spec.ID())
		mu.Unlock()
		return []byte("ok"), nil
	}
	s := New(Config{Workers: 2, QueueDepth: 16, Runner: runner})
	const n = 6
	jobs := make([]*Job, n)
	for i := 0; i < n; i++ {
		j, _, err := s.Submit(testSpec(t, i), true)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs[i] = j
	}
	drainAll(t, s)

	for i, j := range jobs {
		if j.State() != StateDone {
			t.Fatalf("job %d state %s after drain, want done", i, j.State())
		}
	}
	mu.Lock()
	ran := len(finished)
	mu.Unlock()
	if ran != n {
		t.Fatalf("drain returned with %d of %d jobs executed", ran, n)
	}
	if _, _, err := s.Submit(testSpec(t, n), true); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit: want ErrDraining, got %v", err)
	}
	if !s.Draining() {
		t.Fatal("Draining() false after drain")
	}
}

// TestForcedDrainCancelsInFlight: when the drain deadline passes, the
// stuck job's context is canceled, the worker comes home, and Drain
// reports the forced shutdown.
func TestForcedDrainCancelsInFlight(t *testing.T) {
	br := newBlockingRunner(1) // never released: the job only ends via ctx
	s := New(Config{Workers: 1, Runner: br.run})
	j, _, err := s.Submit(testSpec(t, 0), true)
	if err != nil {
		t.Fatal(err)
	}
	<-br.entered
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("forced drain reported success")
	}
	<-j.Done()
	if st := j.State(); st != StateCanceled {
		t.Fatalf("state %s after forced drain, want canceled", st)
	}
}

// TestWaiterDisconnectCancels: when the last waiter of a non-detached
// job lets go, the job's context cancels and the run aborts.
func TestWaiterDisconnectCancels(t *testing.T) {
	br := newBlockingRunner(1)
	s := New(Config{Workers: 1, Runner: br.run})
	j, _, err := s.Submit(testSpec(t, 0), false)
	if err != nil {
		t.Fatal(err)
	}
	j.addWaiter()
	<-br.entered
	j.releaseWaiter()
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("job did not cancel after its last waiter left")
	}
	if j.State() != StateCanceled {
		t.Fatalf("state %s, want canceled", j.State())
	}
	drainAll(t, s)
}
