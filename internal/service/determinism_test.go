package service

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"
)

// tinySpec is a real simulation small enough for the unit suite:
// conference room at minimal scale, observed DRS run of bounce 1.
// Observe makes the artifact carry the full metrics registry snapshot,
// so the byte comparison below covers every counter in the device.
const tinySpec = `{"kind":"run","scene":"conference","arch":"drs","bounce":1,` +
	`"tris":500,"width":48,"height":36,"spp":1,"observe":true}`

// TestServiceDeterminismAcrossShapes is the differential test of the
// service contract: the same job spec must produce byte-identical
// result artifacts regardless of queue depth, worker count, or
// submission races. Three independently configured service instances
// (including one hammered by four concurrent submissions) must agree
// on every byte.
func TestServiceDeterminismAcrossShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation; skipped in -short")
	}
	spec, err := DecodeSpec([]byte(tinySpec))
	if err != nil {
		t.Fatal(err)
	}

	runOne := func(cfg Config, submits int) []byte {
		t.Helper()
		s := New(cfg)
		jobs := make([]*Job, submits)
		var wg sync.WaitGroup
		for i := 0; i < submits; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				spec, err := DecodeSpec([]byte(tinySpec))
				if err != nil {
					t.Error(err)
					return
				}
				j, _, err := s.Submit(spec, true)
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				jobs[i] = j
			}()
		}
		wg.Wait()
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Fatalf("drain: %v", err)
		}
		var ref []byte
		for i, j := range jobs {
			if j == nil {
				t.Fatal("missing job")
			}
			if j.State() != StateDone {
				_, msg := j.Artifact()
				t.Fatalf("job state %s (%s)", j.State(), msg)
			}
			artifact, _ := j.Artifact()
			if i == 0 {
				ref = artifact
			} else if !bytes.Equal(artifact, ref) {
				t.Fatalf("submitter %d saw different bytes on one instance", i)
			}
		}
		if got := s.cache.Stats().Builds; got != 1 {
			t.Fatalf("%d workload builds for %d identical submissions, want 1", got, submits)
		}
		return ref
	}

	shapes := []struct {
		name    string
		cfg     Config
		submits int
	}{
		{"1 worker, queue 1", Config{Workers: 1, QueueDepth: 1}, 1},
		{"4 workers, queue 32", Config{Workers: 4, QueueDepth: 32}, 1},
		{"2 workers, racing submits", Config{Workers: 2, QueueDepth: 8}, 4},
	}
	var ref []byte
	for i, sh := range shapes {
		artifact := runOne(sh.cfg, sh.submits)
		if len(artifact) == 0 {
			t.Fatalf("%s: empty artifact", sh.name)
		}
		if i == 0 {
			ref = artifact
			continue
		}
		if !bytes.Equal(artifact, ref) {
			t.Fatalf("%s diverged from %s:\n%s\nvs\n%s", sh.name, shapes[0].name, artifact, ref)
		}
	}
	if !bytes.Contains(ref, []byte(`"id":"`+spec.ID()+`"`)) {
		t.Fatalf("artifact does not carry the content address %s:\n%s", spec.ID(), ref)
	}
}

// TestGridJobRunsDeterministically: a fig10 grid job at two different
// internal parallelism-independent service shapes returns identical
// bytes (the grid itself asserts positional assembly; this checks the
// service plumbing end to end).
func TestGridJobRunsDeterministically(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation; skipped in -short")
	}
	const gridSpec = `{"kind":"fig10","scene":"conference","tris":500,` +
		`"width":48,"height":36,"spp":1,"bounces":2,"cmp_bounces":1}`
	var ref []byte
	for i, workers := range []int{1, 3} {
		s := New(Config{Workers: workers})
		spec, err := DecodeSpec([]byte(gridSpec))
		if err != nil {
			t.Fatal(err)
		}
		j, _, err := s.Submit(spec, true)
		if err != nil {
			t.Fatal(err)
		}
		<-j.Done()
		if j.State() != StateDone {
			_, msg := j.Artifact()
			t.Fatalf("grid job state %s (%s)", j.State(), msg)
		}
		artifact, _ := j.Artifact()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		if err := s.Drain(ctx); err != nil {
			t.Fatalf("drain: %v", err)
		}
		cancel()
		if i == 0 {
			ref = artifact
		} else if !bytes.Equal(artifact, ref) {
			t.Fatalf("fig10 artifact diverged between service shapes:\n%s\nvs\n%s", artifact, ref)
		}
	}
}

// TestArchSchedJobRunsDeterministically: a run job on a non-default
// device model and scheduler executes end to end and returns identical
// bytes across two independent service instances; the artifact labels
// the model and scheduler it ran.
func TestArchSchedJobRunsDeterministically(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation; skipped in -short")
	}
	const archSpec = `{"kind":"run","scene":"conference","arch":"drs","bounce":1,` +
		`"tris":500,"width":48,"height":36,"spp":1,"arch_config":"modern-mid","sched":"wasp"}`
	runOne := func() []byte {
		t.Helper()
		s := New(Config{Workers: 2, QueueDepth: 4})
		spec, err := DecodeSpec([]byte(archSpec))
		if err != nil {
			t.Fatal(err)
		}
		j, _, err := s.Submit(spec, true)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Fatal(err)
		}
		if j.State() != StateDone {
			_, msg := j.Artifact()
			t.Fatalf("job state %s (%s)", j.State(), msg)
		}
		artifact, _ := j.Artifact()
		return artifact
	}
	a, b := runOne(), runOne()
	if !bytes.Equal(a, b) {
		t.Fatalf("arch/sched job diverged across instances:\n%s\nvs\n%s", a, b)
	}
	if !bytes.Contains(a, []byte(`"arch_config":"modern-mid"`)) || !bytes.Contains(a, []byte(`"sched":"wasp"`)) {
		t.Fatalf("artifact does not label the device model and scheduler:\n%s", a)
	}
}
