// Package service is the deterministic simulation job service behind
// cmd/drsd: an HTTP/JSON API that accepts simulation and experiment
// requests, validates them into canonical job specs, content-addresses
// each spec so concurrent identical submissions singleflight into one
// execution, and runs them on a bounded worker pool over the
// process-wide workload cache.
//
// Determinism is the contract the whole layer is built around: a job's
// identity is the SHA-256 of its canonical spec encoding, its result
// artifact is a pure function of that spec (no timestamps, no queue or
// worker state), and the underlying engine is the epoch-barrier
// simulator — so the same spec returns byte-identical result bodies
// regardless of queue depth, worker count, or how many clients raced
// to submit it. See DESIGN.md §9.
package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/archconfig"
	"repro/internal/harness"
	"repro/internal/scene"
	"repro/internal/trace"
)

// Job kinds the service accepts.
const (
	// KindRun is a single-device simulation: one scene, one
	// architecture, one bounce stream.
	KindRun = "run"
	// KindFig10 is the Figure 10/11 comparison grid (four architectures
	// per scene and bounce).
	KindFig10 = "fig10"
	// KindTable2 is the Table 2 swap-buffer sweep.
	KindTable2 = "table2"
)

// Spec bounds. Requests beyond them are rejected at admission — absurd
// render sizes or ray caps would otherwise tie a worker up for hours.
const (
	// MaxDim bounds the trace render width and height.
	MaxDim = 4096
	// MaxSPP bounds samples per pixel.
	MaxSPP = 256
	// MaxSampleBudget bounds width*height*spp, the number of primary
	// paths the trace render generates.
	MaxSampleBudget = 1 << 24
	// MaxTris bounds the per-scene triangle budget.
	MaxTris = 2_000_000
	// MaxRayCap bounds the per-bounce ray cap.
	MaxRayCap = 64_000_000
	// MaxTimeoutMS bounds the per-job deadline (one hour).
	MaxTimeoutMS = 3_600_000
	// MaxSpecBytes bounds the JSON encoding of a submitted spec.
	MaxSpecBytes = 1 << 16
)

// JobSpec is a validated, normalized job request. The JSON field order
// of this struct is the canonical encoding: Canonical marshals the
// normalized spec and ID hashes those bytes, so two requests that
// normalize to the same spec are one job.
//
// TimeoutMS is deliberately part of the content address: a deadline can
// change the observable outcome (a result vs a deadline error), and the
// contract is that one spec has exactly one outcome.
type JobSpec struct {
	// Kind selects the job type: run, fig10 or table2.
	Kind string `json:"kind"`
	// Scene names the benchmark (conference, fairy, sponza, plants).
	// Required for run jobs; empty on grid jobs means all four.
	Scene string `json:"scene"`
	// Arch names the architecture for run jobs: aila, drs, dmk, tbc.
	Arch string `json:"arch"`
	// Policy names the reordering policy for run jobs — any name in the
	// harness registry (see drsbench -list-policies). Optional: omission
	// falls back to Arch (itself defaulting to drs), and Normalize folds
	// the four legacy architecture names back into Arch, so every spec
	// expressible before this field existed keeps its exact canonical
	// encoding and content address. omitempty is what guarantees that:
	// an absent policy must not appear in the preimage. The fold rules
	// keep the encoding total — a normalized spec never carries a policy
	// value that duplicates Arch, so no two distinct jobs share bytes.
	//drslint:allow spec-hash -- omitempty is required for content-address backward compatibility; Normalize makes empty-vs-legacy-name collisions canonical, not ambiguous
	Policy string `json:"policy,omitempty"`
	// ArchConfig names the builtin device model the job runs on — any
	// name in the archconfig catalog (see drsbench -list-archs). Valid
	// on every kind. Optional: omission keeps the paper's gtx780 device,
	// and Normalize folds an explicit "gtx780" back to empty, so every
	// spec expressible before this field existed keeps its exact
	// canonical encoding and content address. omitempty guarantees an
	// absent model never appears in the preimage; the fold keeps the
	// encoding total, so no two distinct jobs share bytes.
	//drslint:allow spec-hash -- omitempty is required for content-address backward compatibility; Normalize folds the default model name so empty-vs-gtx780 is canonical, not ambiguous
	ArchConfig string `json:"arch_config,omitempty"`
	// Sched names the warp-scheduler policy — any name in the harness
	// scheduler registry (see drsbench -list-scheds). Valid on every
	// kind. Optional: omission keeps the device default (GTO), and
	// Normalize folds an explicit "gto" back to empty — the registry gto
	// is byte-identical to the historical enum scheduler, so the fold
	// collapses two spellings of the same simulation into one address.
	//drslint:allow spec-hash -- omitempty is required for content-address backward compatibility; Normalize folds the default scheduler name so empty-vs-gto is canonical, not ambiguous
	Sched string `json:"sched,omitempty"`
	// Bounce is the trace bounce a run job simulates (1-based).
	Bounce int `json:"bounce"`
	// Tris is the per-scene triangle budget (0 = paper full scale).
	Tris int `json:"tris"`
	// Width, Height, SPP shape the trace-generating render.
	Width  int `json:"width"`
	Height int `json:"height"`
	SPP    int `json:"spp"`
	// MaxRaysPerBounce caps each bounce stream (0 = no cap).
	MaxRaysPerBounce int `json:"max_rays_per_bounce"`
	// Bounces caps how many bounces grid jobs simulate.
	Bounces int `json:"bounces"`
	// SweepBounces is the per-bounce row count of table2 jobs.
	SweepBounces int `json:"sweep_bounces"`
	// CmpBounces is the per-bounce row count of fig10 jobs.
	CmpBounces int `json:"cmp_bounces"`
	// Parallelism is the cell-scheduler worker count inside the job
	// (0 = GOMAXPROCS). It never changes the result bytes.
	Parallelism int `json:"parallelism"`
	// Observe attaches the metrics registry and epoch series to run
	// jobs; the end-of-run snapshot lands in the result artifact and
	// the per-epoch barriers feed the SSE progress stream.
	Observe bool `json:"observe"`
	// TimeoutMS is the execution deadline in milliseconds, measured
	// from when a worker picks the job up (not submission, so queue
	// depth cannot change the outcome). 0 selects the server default.
	TimeoutMS int64 `json:"timeout_ms"`
}

// SpecError reports one invalid spec field; the HTTP layer maps it to
// a 400 with the field name.
type SpecError struct {
	Field  string `json:"field"`
	Reason string `json:"reason"`
}

func (e *SpecError) Error() string {
	return fmt.Sprintf("service: invalid spec: %s: %s", e.Field, e.Reason)
}

// AsSpecError unwraps err to a *SpecError if there is one.
func AsSpecError(err error) (*SpecError, bool) {
	var se *SpecError
	ok := errors.As(err, &se)
	return se, ok
}

// sceneNames lists the valid benchmark names in canonical order.
func sceneNames() []string {
	names := make([]string, len(scene.Benchmarks))
	for i, b := range scene.Benchmarks {
		names[i] = b.String()
	}
	return names
}

// ParseScene resolves a benchmark name.
func ParseScene(name string) (scene.Benchmark, error) {
	for _, b := range scene.Benchmarks {
		if b.String() == name {
			return b, nil
		}
	}
	return 0, fmt.Errorf("unknown scene %q; valid: %v", name, sceneNames())
}

// ParseArch resolves a legacy architecture name.
func ParseArch(name string) (harness.Arch, error) {
	for _, a := range legacyArchNames {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown arch %q; valid: aila drs dmk tbc", name)
}

// Normalize applies the service defaults to unset fields, in place.
// Submissions are hashed after normalization, so an explicit
// `"tris": 4000` and an omitted tris are the same job.
func (s *JobSpec) Normalize() {
	if s.Tris == 0 {
		s.Tris = 4000
	}
	if s.Width == 0 {
		s.Width = 160
	}
	if s.Height == 0 {
		s.Height = 120
	}
	if s.SPP == 0 {
		s.SPP = 1
	}
	if s.Bounces == 0 {
		s.Bounces = trace.MaxBounces
	}
	if s.Kind == KindRun && s.Bounce == 0 {
		s.Bounce = 1
	}
	// Policy folding keeps content addresses stable: a policy spelled
	// with one of the four legacy architecture names collapses into the
	// arch field (the pre-policy encoding of the same job), and a policy
	// that merely repeats arch is dropped. Only genuinely new policy
	// names survive into the canonical encoding.
	if s.Kind == KindRun {
		if s.Policy != "" && s.Arch == "" && isLegacyArch(s.Policy) {
			s.Arch, s.Policy = s.Policy, ""
		}
		if s.Policy == s.Arch {
			s.Policy = ""
		}
		if s.Policy == "" && s.Arch == "" {
			s.Arch = harness.ArchDRS.String()
		}
	}
	// Device-model folding, same contract as the policy fold above: the
	// gtx780 model and the gto scheduler are exactly what every
	// pre-field spec already ran (the builtin gtx780 config reproduces
	// the hard-coded device byte for byte, and the registry gto is the
	// enum scheduler devirtualized), so naming either explicitly is the
	// same job as omitting it.
	if s.ArchConfig == archconfig.DefaultName {
		s.ArchConfig = ""
	}
	if s.Sched == "gto" {
		s.Sched = ""
	}
	if s.Kind == KindTable2 && s.SweepBounces == 0 {
		s.SweepBounces = 4
	}
	if s.Kind == KindFig10 && s.CmpBounces == 0 {
		s.CmpBounces = 3
	}
}

// Validate checks every field of a normalized spec and returns a typed
// *SpecError for the first rejection.
func (s *JobSpec) Validate() error {
	switch s.Kind {
	case KindRun:
		if _, err := ParseScene(s.Scene); err != nil {
			return &SpecError{Field: "scene", Reason: err.Error()}
		}
		if s.Policy != "" {
			// Normalize already folded legacy names and duplicates away,
			// so a surviving policy means arch must be empty.
			if s.Arch != "" {
				return &SpecError{Field: "policy", Reason: fmt.Sprintf("policy %q conflicts with arch %q; set one of the two", s.Policy, s.Arch)}
			}
			if _, err := harness.Policies().New(s.Policy); err != nil {
				return &SpecError{Field: "policy", Reason: err.Error()}
			}
		} else if _, err := ParseArch(s.Arch); err != nil {
			return &SpecError{Field: "arch", Reason: err.Error()}
		}
		if s.Bounce < 1 || s.Bounce > trace.MaxBounces {
			return &SpecError{Field: "bounce", Reason: fmt.Sprintf("bounce %d out of range [1,%d]", s.Bounce, trace.MaxBounces)}
		}
	case KindFig10, KindTable2:
		if s.Scene != "" {
			if _, err := ParseScene(s.Scene); err != nil {
				return &SpecError{Field: "scene", Reason: err.Error()}
			}
		}
		if s.Arch != "" {
			return &SpecError{Field: "arch", Reason: fmt.Sprintf("%s jobs compare fixed architectures; arch must be empty", s.Kind)}
		}
		if s.Policy != "" {
			return &SpecError{Field: "policy", Reason: fmt.Sprintf("%s jobs compare fixed architectures; policy must be empty", s.Kind)}
		}
		if s.Bounce != 0 {
			return &SpecError{Field: "bounce", Reason: fmt.Sprintf("%s jobs sweep bounces; bounce must be empty", s.Kind)}
		}
		if s.Observe {
			return &SpecError{Field: "observe", Reason: "observed mode applies to run jobs only"}
		}
	case "":
		return &SpecError{Field: "kind", Reason: "missing job kind; valid: run fig10 table2"}
	default:
		return &SpecError{Field: "kind", Reason: fmt.Sprintf("unknown kind %q; valid: run fig10 table2", s.Kind)}
	}
	// Both registries are the single judges of their names; the typed
	// errors carry the known-name lists into the 400 body.
	if s.ArchConfig != "" {
		if _, err := archconfig.Builtin(s.ArchConfig); err != nil {
			return &SpecError{Field: "arch_config", Reason: err.Error()}
		}
	}
	if s.Sched != "" {
		if _, err := harness.Schedulers().New(s.Sched); err != nil {
			return &SpecError{Field: "sched", Reason: err.Error()}
		}
	}
	switch {
	case s.Tris < 0 || s.Tris > MaxTris:
		return &SpecError{Field: "tris", Reason: fmt.Sprintf("triangle budget %d out of range [0,%d]", s.Tris, MaxTris)}
	case s.Width < 1 || s.Width > MaxDim:
		return &SpecError{Field: "width", Reason: fmt.Sprintf("width %d out of range [1,%d]", s.Width, MaxDim)}
	case s.Height < 1 || s.Height > MaxDim:
		return &SpecError{Field: "height", Reason: fmt.Sprintf("height %d out of range [1,%d]", s.Height, MaxDim)}
	case s.SPP < 1 || s.SPP > MaxSPP:
		return &SpecError{Field: "spp", Reason: fmt.Sprintf("spp %d out of range [1,%d]", s.SPP, MaxSPP)}
	case s.Width*s.Height*s.SPP > MaxSampleBudget:
		return &SpecError{Field: "spp", Reason: fmt.Sprintf("render budget %dx%dx%d exceeds %d samples", s.Width, s.Height, s.SPP, MaxSampleBudget)}
	case s.MaxRaysPerBounce < 0 || s.MaxRaysPerBounce > MaxRayCap:
		return &SpecError{Field: "max_rays_per_bounce", Reason: fmt.Sprintf("ray cap %d out of range [0,%d]", s.MaxRaysPerBounce, MaxRayCap)}
	case s.Bounces < 1 || s.Bounces > trace.MaxBounces:
		return &SpecError{Field: "bounces", Reason: fmt.Sprintf("bounce count %d out of range [1,%d]", s.Bounces, trace.MaxBounces)}
	case s.SweepBounces < 0 || s.SweepBounces > trace.MaxBounces:
		return &SpecError{Field: "sweep_bounces", Reason: fmt.Sprintf("sweep bounce count %d out of range [0,%d]", s.SweepBounces, trace.MaxBounces)}
	case s.CmpBounces < 0 || s.CmpBounces > trace.MaxBounces:
		return &SpecError{Field: "cmp_bounces", Reason: fmt.Sprintf("comparison bounce count %d out of range [0,%d]", s.CmpBounces, trace.MaxBounces)}
	case s.Parallelism < 0 || s.Parallelism > harness.MaxParallelism:
		return &SpecError{Field: "parallelism", Reason: fmt.Sprintf("worker count %d out of range [0,%d]", s.Parallelism, harness.MaxParallelism)}
	case s.TimeoutMS < 0 || s.TimeoutMS > MaxTimeoutMS:
		return &SpecError{Field: "timeout_ms", Reason: fmt.Sprintf("timeout %dms out of range [0,%d]", s.TimeoutMS, MaxTimeoutMS)}
	}
	return nil
}

// legacyArchNames are the four method names that predate the policy
// field; specs spelling them via policy fold back into arch.
var legacyArchNames = []harness.Arch{harness.ArchAila, harness.ArchDRS, harness.ArchDMK, harness.ArchTBC}

func isLegacyArch(name string) bool {
	for _, a := range legacyArchNames {
		if a.String() == name {
			return true
		}
	}
	return false
}

// PolicyName returns the reordering policy a normalized run spec
// selects: the policy field when set, otherwise the legacy arch
// spelling (both route through the same harness registry).
func (s *JobSpec) PolicyName() string {
	if s.Policy != "" {
		return s.Policy
	}
	return s.Arch
}

// Canonical returns the canonical encoding of a normalized spec: the
// fixed-field-order JSON this struct marshals to. Equal specs encode to
// equal bytes; the encoding is the job's content address preimage.
func (s *JobSpec) Canonical() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// A JobSpec holds only ints, bools and strings; Marshal cannot
		// fail on it.
		panic(fmt.Sprintf("service: canonical encoding failed: %v", err))
	}
	return b
}

// ID returns the job's content address: the hex SHA-256 of the
// canonical encoding.
func (s *JobSpec) ID() string {
	sum := sha256.Sum256(s.Canonical())
	return hex.EncodeToString(sum[:])
}

// DecodeSpec parses, normalizes and validates a job spec from JSON.
// The decoder is strict where encoding/json is lenient: unknown fields,
// duplicate keys, payloads over MaxSpecBytes, trailing garbage and
// non-integer numbers are all typed errors, never panics — the fuzz
// test holds it to that.
func DecodeSpec(data []byte) (*JobSpec, error) {
	if len(data) > MaxSpecBytes {
		return nil, &SpecError{Field: "body", Reason: fmt.Sprintf("spec is %d bytes; limit %d", len(data), MaxSpecBytes)}
	}
	if err := checkDuplicateKeys(data); err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, &SpecError{Field: "body", Reason: err.Error()}
	}
	// Reject trailing content after the spec object ("{}{}" or "{} x").
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, &SpecError{Field: "body", Reason: "trailing data after spec object"}
	}
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// checkDuplicateKeys walks the JSON token stream and rejects objects
// that repeat a key. encoding/json silently keeps the last duplicate,
// which would let two textually different payloads normalize into the
// same job while a non-Go client saw different fields win.
func checkDuplicateKeys(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	type frame struct {
		object bool
		seen   map[string]bool
		isKey  bool
	}
	var stack []*frame
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return &SpecError{Field: "body", Reason: err.Error()}
		}
		top := func() *frame {
			if len(stack) == 0 {
				return nil
			}
			return stack[len(stack)-1]
		}
		switch t := tok.(type) {
		case json.Delim:
			switch t {
			case '{':
				stack = append(stack, &frame{object: true, seen: make(map[string]bool), isKey: true})
			case '[':
				stack = append(stack, &frame{})
			case '}', ']':
				stack = stack[:len(stack)-1]
				if f := top(); f != nil && f.object {
					f.isKey = true
				}
			}
		case string:
			if f := top(); f != nil && f.object && f.isKey {
				if f.seen[t] {
					return &SpecError{Field: t, Reason: fmt.Sprintf("duplicate key %q", t)}
				}
				f.seen[t] = true
				f.isKey = false
			} else if f != nil && f.object {
				f.isKey = true
			}
		default:
			if f := top(); f != nil && f.object {
				f.isKey = true
			}
		}
	}
}
