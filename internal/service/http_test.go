package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func postSpec(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

const specConfDRS = `{"kind":"run","scene":"conference","arch":"drs"}`

// TestHTTPLifecycle drives the full API surface with a fast fake
// runner: submit (async + dedup), status, result, list, health,
// metrics.
func TestHTTPLifecycle(t *testing.T) {
	runner := func(ctx context.Context, spec *JobSpec, _ func(cycle, epochs int64)) ([]byte, error) {
		return []byte(`{"id":"` + spec.ID() + `"}` + "\n"), nil
	}
	s := New(Config{Workers: 1, Runner: runner})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, body := postSpec(t, srv.URL+"/v1/jobs", specConfDRS)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: %d %s", resp.StatusCode, body)
	}
	var sub submitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatalf("submit body %s: %v", body, err)
	}
	if sub.Deduped {
		t.Fatal("first submission marked deduped")
	}

	j, ok := s.Job(sub.ID)
	if !ok {
		t.Fatal("job not registered")
	}
	<-j.Done()

	// Waited resubmission of the same spec: dedup, artifact verbatim.
	resp, waited := postSpec(t, srv.URL+"/v1/jobs?wait=1", specConfDRS)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wait submit: %d %s", resp.StatusCode, waited)
	}
	artifact, _ := j.Artifact()
	if !bytes.Equal(waited, artifact) {
		t.Fatalf("waited body %q != artifact %q", waited, artifact)
	}

	get := func(path string, wantCode int) []byte {
		t.Helper()
		r, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		data, _ := io.ReadAll(r.Body)
		if r.StatusCode != wantCode {
			t.Fatalf("GET %s: %d %s (want %d)", path, r.StatusCode, data, wantCode)
		}
		return data
	}

	var st Status
	if err := json.Unmarshal(get("/v1/jobs/"+sub.ID, 200), &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.ResultBytes == 0 {
		t.Fatalf("status %+v", st)
	}
	if got := get("/v1/jobs/"+sub.ID+"/result", 200); !bytes.Equal(got, artifact) {
		t.Fatalf("result %q != artifact %q", got, artifact)
	}
	get("/v1/jobs/no-such-job", 404)

	var list []Status
	if err := json.Unmarshal(get("/v1/jobs", 200), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != sub.ID {
		t.Fatalf("list %+v", list)
	}

	health := get("/healthz", 200)
	if !bytes.Contains(health, []byte("ok")) {
		t.Fatalf("healthz %s", health)
	}
	var snap map[string]int64
	if err := json.Unmarshal(get("/metrics", 200), &snap); err != nil {
		t.Fatal(err)
	}
	if snap["service/jobs_submitted"] != 1 || snap["service/jobs_deduped"] != 1 {
		t.Fatalf("metrics %v", snap)
	}

	if r, body := postSpec(t, srv.URL+"/v1/jobs", `{"kind":"bogus"}`); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec: %d %s", r.StatusCode, body)
	}
}

// TestHTTPSSEProgress: the events stream carries queued -> running,
// epoch progress from the runner, the terminal state, and the end
// marker, in order.
func TestHTTPSSEProgress(t *testing.T) {
	release := make(chan struct{})
	runner := func(ctx context.Context, spec *JobSpec, progress func(cycle, epochs int64)) ([]byte, error) {
		progress(64, 1)
		progress(128, 2)
		<-release
		return []byte("done-artifact\n"), nil
	}
	s := New(Config{Workers: 1, Runner: runner})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	_, body := postSpec(t, srv.URL+"/v1/jobs", specConfDRS)
	var sub submitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: %d", resp.StatusCode)
	}
	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	var kinds []string
	deadline := time.After(10 * time.Second)
	released := false
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("stream ended early; saw %v", kinds)
			}
			if rest, found := strings.CutPrefix(line, "event: "); found {
				kinds = append(kinds, rest)
				if rest == "epoch" && !released {
					released = true
					close(release)
				}
				if rest == "end" {
					want := []string{"state", "state", "epoch", "epoch", "state", "end"}
					if fmt.Sprint(kinds) != fmt.Sprint(want) {
						t.Fatalf("event kinds %v, want %v", kinds, want)
					}
					return
				}
			}
		case <-deadline:
			t.Fatalf("no end event; saw %v", kinds)
		}
	}
}

// TestHTTPClientDisconnectCancels: dropping the only ?wait=1 client of
// a non-detached job cancels the run at the service layer.
func TestHTTPClientDisconnectCancels(t *testing.T) {
	entered := make(chan string, 1)
	runner := func(ctx context.Context, spec *JobSpec, _ func(cycle, epochs int64)) ([]byte, error) {
		entered <- spec.ID()
		<-ctx.Done() // only a cancellation ends this job
		return nil, ctx.Err()
	}
	s := New(Config{Workers: 1, Runner: runner})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		srv.URL+"/v1/jobs?wait=1", strings.NewReader(specConfDRS))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	result := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		result <- err
	}()
	id := <-entered // runner is live; the waiter is attached
	cancel()        // client disconnects
	<-result

	j, ok := s.Job(id)
	if !ok {
		t.Fatal("job not registered")
	}
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("job survived its only client's disconnect")
	}
	if j.State() != StateCanceled {
		t.Fatalf("state %s, want canceled", j.State())
	}
}

// TestHTTPQueueFullAndDraining: the backpressure and drain rejections
// surface as 429 and 503.
func TestHTTPQueueFullAndDraining(t *testing.T) {
	br := newBlockingRunner(4)
	s := New(Config{Workers: 1, QueueDepth: 1, Runner: br.run})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var codes []int
	for i := 0; i < 3; i++ {
		body := fmt.Sprintf(`{"kind":"run","scene":"conference","arch":"drs","bounce":%d}`, i+1)
		resp, _ := postSpec(t, srv.URL+"/v1/jobs", body)
		codes = append(codes, resp.StatusCode)
		if i == 0 {
			<-br.entered // park the worker before filling the queue
		}
	}
	if codes[0] != 202 || codes[1] != 202 || codes[2] != http.StatusTooManyRequests {
		t.Fatalf("codes %v, want [202 202 429]", codes)
	}

	close(br.release)
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- s.Drain(ctx)
	}()
	// Poll until the drain flag flips, then verify the HTTP rejection.
	for i := 0; ; i++ {
		if s.Draining() {
			break
		}
		if i > 1000 {
			t.Fatal("service never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	resp, _ := postSpec(t, srv.URL+"/v1/jobs", `{"kind":"run","scene":"fairy","arch":"aila"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: %d, want 503", resp.StatusCode)
	}
	r, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: %d, want 503", r.StatusCode)
	}
	if err := <-done; err != nil {
		t.Fatalf("drain: %v", err)
	}
}
