package service

import (
	"context"
	"sync"
	"time"
)

// virtualClock is the test Clock: time is a number it owns. After
// auto-advances — the wait is recorded and the channel fires at once,
// so backoff paths run at full speed while the test can still assert
// exactly how long the service *would* have slept. Deadlines expire
// when the virtual now passes them, via After's auto-advance or the
// test calling Advance. No test using it ever sleeps.
type virtualClock struct {
	mu     sync.Mutex
	now    time.Duration
	waited time.Duration // total virtual time After was asked to wait
	ctxs   []*virtualTimeoutCtx
}

func (c *virtualClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	c.now += d
	c.waited += d
	expired := c.dueLocked()
	c.mu.Unlock()
	fire(expired)
	ch := make(chan time.Time, 1)
	ch <- time.Time{}
	return ch
}

func (c *virtualClock) WithTimeout(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	inner, cancel := context.WithCancel(parent)
	c.mu.Lock()
	v := &virtualTimeoutCtx{Context: inner, cancel: cancel, deadline: c.now + d}
	c.ctxs = append(c.ctxs, v)
	due := c.dueLocked()
	c.mu.Unlock()
	fire(due)
	return v, cancel
}

// Advance moves virtual time forward and expires every deadline it
// passes.
func (c *virtualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	due := c.dueLocked()
	c.mu.Unlock()
	fire(due)
}

// Waited reports the total duration After calls would have slept.
func (c *virtualClock) Waited() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.waited
}

// dueLocked collects the contexts whose deadline has passed; expiry
// runs outside the clock lock so a cancellation callback can never
// deadlock back into the clock.
func (c *virtualClock) dueLocked() []*virtualTimeoutCtx {
	var due []*virtualTimeoutCtx
	kept := c.ctxs[:0]
	for _, v := range c.ctxs {
		if c.now >= v.deadline {
			due = append(due, v)
		} else {
			kept = append(kept, v)
		}
	}
	c.ctxs = kept
	return due
}

func fire(due []*virtualTimeoutCtx) {
	for _, v := range due {
		v.expire()
	}
}

// virtualTimeoutCtx is a cancelable context whose Err reports
// DeadlineExceeded once the virtual clock expires it — the same
// observable contract as context.WithTimeout.
type virtualTimeoutCtx struct {
	context.Context
	cancel   context.CancelFunc
	deadline time.Duration

	mu      sync.Mutex
	expired bool
}

// expire marks the deadline as passed before closing Done, so any
// goroutine woken by Done sees DeadlineExceeded, never bare Canceled.
func (v *virtualTimeoutCtx) expire() {
	v.mu.Lock()
	v.expired = true
	v.mu.Unlock()
	v.cancel()
}

func (v *virtualTimeoutCtx) Err() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.expired {
		return context.DeadlineExceeded
	}
	return v.Context.Err()
}

func (v *virtualTimeoutCtx) Deadline() (time.Time, bool) {
	// Virtual deadlines have no wall-clock expression; callers that
	// want expiry must watch Done.
	return time.Time{}, false
}
