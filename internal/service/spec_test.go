package service

import (
	"bytes"
	"strings"
	"testing"
)

func TestDecodeSpecDefaults(t *testing.T) {
	spec, err := DecodeSpec([]byte(`{"kind":"run","scene":"conference","arch":"drs"}`))
	if err != nil {
		t.Fatalf("DecodeSpec: %v", err)
	}
	if spec.Bounce != 1 || spec.Tris != 4000 || spec.Width != 160 || spec.Height != 120 || spec.SPP != 1 {
		t.Fatalf("defaults not applied: %+v", spec)
	}
	if len(spec.ID()) != 64 {
		t.Fatalf("ID %q is not a hex SHA-256", spec.ID())
	}
}

// TestDecodeSpecNormalizationIsContentAddressed: explicit defaults and
// omitted fields are the same job.
func TestDecodeSpecNormalizationIsContentAddressed(t *testing.T) {
	a, err := DecodeSpec([]byte(`{"kind":"run","scene":"conference","arch":"drs"}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecodeSpec([]byte(`{"arch":"drs","bounce":1,"scene":"conference","kind":"run","tris":4000,"width":160,"height":120,"spp":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() != b.ID() {
		t.Fatalf("equivalent specs hash differently:\n%s\n%s", a.Canonical(), b.Canonical())
	}
	if !bytes.Equal(a.Canonical(), b.Canonical()) {
		t.Fatalf("canonical encodings differ:\n%s\n%s", a.Canonical(), b.Canonical())
	}
}

// TestDecodeSpecTimeoutChangesID: the deadline is part of the content
// address because it can change the observable outcome.
func TestDecodeSpecTimeoutChangesID(t *testing.T) {
	a, err := DecodeSpec([]byte(`{"kind":"run","scene":"conference","arch":"drs"}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecodeSpec([]byte(`{"kind":"run","scene":"conference","arch":"drs","timeout_ms":5000}`))
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() == b.ID() {
		t.Fatal("timeout_ms did not change the content address")
	}
}

func TestDecodeSpecRejections(t *testing.T) {
	cases := []struct {
		name  string
		body  string
		field string // "" = any field
	}{
		{"empty object", `{}`, "kind"},
		{"unknown kind", `{"kind":"nope"}`, "kind"},
		{"unknown field", `{"kind":"run","scene":"conference","arch":"drs","frobnicate":1}`, "body"},
		{"duplicate key", `{"kind":"run","kind":"run","scene":"conference","arch":"drs"}`, "kind"},
		{"nested duplicate key ok at top", `{"kind":"run","scene":"conference","scene":"fairy","arch":"drs"}`, "scene"},
		{"trailing garbage", `{"kind":"run","scene":"conference","arch":"drs"} {}`, "body"},
		{"not an object", `[1,2,3]`, "body"},
		{"float width", `{"kind":"run","scene":"conference","arch":"drs","width":64.5}`, "body"},
		{"huge float width", `{"kind":"run","scene":"conference","arch":"drs","width":1e308}`, "body"},
		{"infinity is invalid json", `{"kind":"run","scene":"conference","arch":"drs","width":Infinity}`, "body"},
		{"nan is invalid json", `{"kind":"run","scene":"conference","arch":"drs","spp":NaN}`, "body"},
		{"negative width", `{"kind":"run","scene":"conference","arch":"drs","width":-1}`, "width"},
		{"absurd width", `{"kind":"run","scene":"conference","arch":"drs","width":1000000}`, "width"},
		{"absurd sample budget", `{"kind":"run","scene":"conference","arch":"drs","width":4096,"height":4096,"spp":4}`, "spp"},
		{"unknown scene", `{"kind":"run","scene":"atrium","arch":"drs"}`, "scene"},
		{"unknown arch", `{"kind":"run","scene":"conference","arch":"rtx"}`, "arch"},
		{"bounce out of range", `{"kind":"run","scene":"conference","arch":"drs","bounce":9}`, "bounce"},
		{"arch on grid job", `{"kind":"fig10","arch":"drs"}`, "arch"},
		{"bounce on grid job", `{"kind":"table2","bounce":2}`, "bounce"},
		{"observe on grid job", `{"kind":"fig10","observe":true}`, "observe"},
		{"negative tris", `{"kind":"fig10","tris":-5}`, "tris"},
		{"absurd tris", `{"kind":"fig10","tris":2000001}`, "tris"},
		{"negative timeout", `{"kind":"fig10","timeout_ms":-1}`, "timeout_ms"},
		{"absurd timeout", `{"kind":"fig10","timeout_ms":3600001}`, "timeout_ms"},
		{"absurd parallelism", `{"kind":"fig10","parallelism":5000}`, "parallelism"},
		{"oversize body", `{"kind":"run","scene":"conference","arch":"drs","pad":"` + strings.Repeat("x", MaxSpecBytes) + `"}`, "body"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeSpec([]byte(tc.body))
			if err == nil {
				t.Fatalf("accepted: %s", tc.body)
			}
			se, ok := AsSpecError(err)
			if !ok {
				t.Fatalf("want *SpecError, got %T: %v", err, err)
			}
			if tc.field != "" && se.Field != tc.field {
				t.Fatalf("field = %q, want %q (%v)", se.Field, tc.field, err)
			}
		})
	}
}

// FuzzJobSpec holds the strict decoder to its contract on arbitrary
// input: no panics ever, and every accepted spec is normalized,
// validates clean, and round-trips through its canonical encoding to
// the same content address.
func FuzzJobSpec(f *testing.F) {
	seeds := []string{
		`{"kind":"run","scene":"conference","arch":"drs"}`,
		`{"kind":"run","scene":"sponza","arch":"aila","bounce":3,"observe":true,"timeout_ms":60000}`,
		`{"kind":"fig10","cmp_bounces":2,"bounces":3}`,
		`{"kind":"table2","scene":"fairy","sweep_bounces":2}`,
		`{"kind":"run","kind":"run"}`,
		`{"kind":"run","scene":"conference","arch":"drs","width":1e308}`,
		`{"width":-1}`,
		`[]`,
		`{`,
		``,
		`{"kind":"run","scene":"conference","arch":"drs","spp":9999999}`,
		`{"kind":"run","scene":"conference","policy":"warp-drive"}`,
		`{"kind":"run","scene":"conference","policy":"ser","policy":"drs"}`,
		`{"kind":"run","scene":"conference","policy":""}`,
		`{"kind":"run","scene":"conference","policy":"sort"}`,
		`{"kind":"run","scene":"conference","arch":"drs","policy":"drs"}`,
		`{"kind":"run","scene":"conference","arch":"drs","arch_config":"modern-mid","sched":"wasp"}`,
		`{"kind":"run","scene":"conference","arch":"drs","arch_config":"gtx780","sched":"gto"}`,
		`{"kind":"table2","arch_config":"modern-big","sched":"lrr"}`,
		`{"kind":"run","scene":"conference","arch_config":"gtx1080"}`,
		`{"kind":"run","scene":"conference","sched":"fifo"}`,
		`{"kind":"run","scene":"conference","sched":"gto","sched":"lrr"}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		spec, err := DecodeSpec([]byte(body))
		if err != nil {
			if spec != nil {
				t.Fatal("non-nil spec alongside error")
			}
			return
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("accepted spec fails revalidation: %v", err)
		}
		id := spec.ID()
		if len(id) != 64 {
			t.Fatalf("ID %q is not 64 hex chars", id)
		}
		again, err := DecodeSpec(spec.Canonical())
		if err != nil {
			t.Fatalf("canonical encoding does not re-decode: %v\n%s", err, spec.Canonical())
		}
		if again.ID() != id {
			t.Fatalf("content address unstable across round-trip: %s vs %s", id, again.ID())
		}
	})
}
