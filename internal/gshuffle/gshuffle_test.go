package gshuffle

import (
	"testing"

	"repro/internal/memsys"
	"repro/internal/simt"
)

func runAutomaton(t testing.TB, cfg Config, shuffle bool, seed uint64) (simt.Stats, *Automaton, *Control) {
	t.Helper()
	a := NewAutomaton(cfg, seed)
	scfg := simt.DefaultConfig()
	scfg.NumSMX = 1
	scfg.MaxWarpsPerSMX = cfg.Warps
	scfg.WarpSize = cfg.WarpSize
	scfg.MaxCycles = 1 << 24
	l2 := memsys.NewL2(scfg.Mem)

	var ctrl *Control
	hooks := simt.Hooks{}
	if shuffle {
		var err error
		ctrl, err = NewControl(cfg, a)
		if err != nil {
			t.Fatal(err)
		}
		hooks = ctrl.Hooks()
	} else {
		// Unshuffled baseline: pass the gate through unconditionally so
		// the same kernel runs with fixed warp-to-row mapping.
		hooks = simt.Hooks{
			Gate: func(s *simt.SMX, warp int, now int64) simt.GateResult {
				if !a.WorkLeft() {
					return simt.GateExit
				}
				return simt.GateProceed
			},
		}
	}
	smx, err := simt.NewSMX(0, scfg, a, hooks, l2)
	if err != nil {
		t.Fatal(err)
	}
	if shuffle {
		ctrl.Launch(smx)
	} else {
		smx.LaunchAll(0)
	}
	st, err := smx.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st, a, ctrl
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Rows: 12, Warps: 8, WarpSize: 0, ReleaseFraction: 0.5, TaskRegisters: 8, SwapBuffers: 6},
		{Rows: 8, Warps: 8, WarpSize: 32, ReleaseFraction: 0.5, TaskRegisters: 8, SwapBuffers: 6},
		{Rows: 12, Warps: 8, WarpSize: 32, ReleaseFraction: 0, TaskRegisters: 8, SwapBuffers: 6},
		{Rows: 12, Warps: 8, WarpSize: 32, ReleaseFraction: 1.5, TaskRegisters: 8, SwapBuffers: 6},
		{Rows: 12, Warps: 8, WarpSize: 32, ReleaseFraction: 0.5, TaskRegisters: 0, SwapBuffers: 6},
		{Rows: 12, Warps: 8, WarpSize: 32, ReleaseFraction: 0.5, TaskRegisters: 8, SwapBuffers: 0},
		{Rows: 12, Warps: 0, WarpSize: 32, ReleaseFraction: 0.5, TaskRegisters: 8, SwapBuffers: 6},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should fail: %+v", i, c)
		}
	}
}

// The workload must run to completion both ways, retiring every task.
func TestAutomatonCompletesBothWays(t *testing.T) {
	cfg := DefaultConfig()
	total := cfg.Warps * cfg.WarpSize
	for _, shuffle := range []bool{false, true} {
		_, a, _ := runAutomaton(t, cfg, shuffle, 7)
		if a.Retired() != total {
			t.Errorf("shuffle=%v: retired %d of %d tasks", shuffle, a.Retired(), total)
		}
		if a.WorkLeft() {
			t.Errorf("shuffle=%v: work left", shuffle)
		}
	}
}

// The headline claim of §4.6: generalized data shuffling lifts SIMD
// efficiency for a non-raytracing divergent workload.
func TestShufflingLiftsEfficiency(t *testing.T) {
	cfg := DefaultConfig()
	base, _, _ := runAutomaton(t, cfg, false, 7)
	shuf, _, ctrl := runAutomaton(t, cfg, true, 7)
	be := base.SIMDEfficiency(cfg.WarpSize)
	se := shuf.SIMDEfficiency(cfg.WarpSize)
	if se <= be {
		t.Errorf("shuffled efficiency %.3f not above baseline %.3f", se, be)
	}
	if ctrl.Stats().SwapsCompleted == 0 {
		t.Errorf("no swaps performed")
	}
	if ctrl.Stats().Remaps == 0 {
		t.Errorf("no remaps performed")
	}
}

// §4.6 point 3: relaxing the release fraction below 1.0 must produce
// partial binds (warps released before full uniformity), and a strict
// fraction of 1.0 must not.
func TestReleaseFractionControlsPartialBinds(t *testing.T) {
	relaxed := DefaultConfig()
	relaxed.ReleaseFraction = 0.6
	_, _, ctrlRelaxed := runAutomaton(t, relaxed, true, 11)
	if ctrlRelaxed.Stats().PartialBinds == 0 {
		t.Errorf("relaxed fraction produced no partial binds")
	}

	strict := DefaultConfig()
	strict.ReleaseFraction = 1.0
	_, _, ctrlStrict := runAutomaton(t, strict, true, 11)
	if ctrlStrict.Stats().PartialBinds != 0 {
		t.Errorf("strict fraction produced %d partial binds", ctrlStrict.Stats().PartialBinds)
	}
}

// Determinism: same seed, same results.
func TestAutomatonDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a, _, _ := runAutomaton(t, cfg, true, 3)
	b, _, _ := runAutomaton(t, cfg, true, 3)
	if a.Cycles != b.Cycles || a.WarpInstrs != b.WarpInstrs {
		t.Errorf("nondeterministic: %d/%d vs %d/%d", a.Cycles, a.WarpInstrs, b.Cycles, b.WarpInstrs)
	}
}

func TestMeanSwapCycles(t *testing.T) {
	var s Stats
	if s.MeanSwapCycles() != 0 {
		t.Errorf("empty mean nonzero")
	}
	s.SwapsCompleted = 2
	s.SwapCycleSum = 50
	if s.MeanSwapCycles() != 25 {
		t.Errorf("mean = %v", s.MeanSwapCycles())
	}
}
