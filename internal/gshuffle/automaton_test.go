package gshuffle

import (
	"testing"

	"repro/internal/memsys"
	"repro/internal/rng"
	"repro/internal/simt"
)

// tinyAutomaton builds an automaton whose task table the test controls
// directly: phases and budgets set by hand, rngs seeded deterministically.
func tinyAutomaton(tasks []autoTask) *Automaton {
	cfg := DefaultConfig()
	a := NewAutomaton(cfg, 1)
	// Only the hand-built prefix is live; everything else is finished.
	for i := range a.tasks {
		a.tasks[i] = autoTask{phase: -1, rng: a.tasks[i].rng}
	}
	copy(a.tasks, tasks)
	a.left = 0
	for _, t := range a.tasks {
		if t.phase >= 0 {
			a.left++
		}
	}
	a.retired = 0
	return a
}

// TestAutomatonDispatchRouting: the gated dispatch block routes each
// phase to its body block and finished tasks to exit.
func TestAutomatonDispatchRouting(t *testing.T) {
	cases := []struct {
		name  string
		phase int
		want  int
	}{
		{"phase 0 to advance", 0, abAdvance},
		{"phase 1 to interact", 1, abInteract},
		{"phase 2 to settle", 2, abSettle},
		{"done to exit", -1, simt.BlockExit},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := tinyAutomaton([]autoTask{{
				phase: tc.phase, budget: [3]int{1, 1, 1}, rng: rng.NewPCG32(7, 7),
			}})
			var res simt.StepResult
			a.Step(0, abDispatch, &res)
			if res.Next != tc.want {
				t.Fatalf("dispatch(phase %d) -> block %d, want %d", tc.phase, res.Next, tc.want)
			}
			if got := a.PhaseOf(0); got != tc.phase {
				t.Fatalf("dispatch mutated phase: %d", got)
			}
		})
	}
}

// TestAutomatonBodyTransitions: each body block consumes budget and
// transitions the state machine on exhaustion; transitions notify the
// listener with the correct old/new pair.
func TestAutomatonBodyTransitions(t *testing.T) {
	cases := []struct {
		name      string
		phase     int
		block     int
		budget    [3]int
		wantPhase int
		wantOld   int // listener old phase; -2 = no event expected
	}{
		{"advance with budget left stays", 0, abAdvance, [3]int{2, 1, 1}, 0, -2},
		{"advance exhausted moves to interact", 0, abAdvance, [3]int{1, 1, 1}, 1, 0},
		{"interact with budget left stays", 1, abInteract, [3]int{0, 3, 1}, 1, -2},
		{"interact exhausted moves to settle", 1, abInteract, [3]int{0, 1, 1}, 2, 1},
		{"settle with budget left stays", 2, abSettle, [3]int{0, 0, 2}, 2, -2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := tinyAutomaton([]autoTask{{
				phase: tc.phase, budget: tc.budget, rng: rng.NewPCG32(7, 7),
			}})
			gotOld, events := -2, 0
			a.SetListener(func(slot int32, old, new int) {
				if slot != 0 {
					t.Fatalf("listener slot %d", slot)
				}
				gotOld, events = old, events+1
			})
			var res simt.StepResult
			a.Step(0, tc.block, &res)
			if res.Next != abDispatch {
				t.Fatalf("body block must return to dispatch, got %d", res.Next)
			}
			if got := a.PhaseOf(0); got != tc.wantPhase {
				t.Fatalf("phase = %d, want %d", got, tc.wantPhase)
			}
			if tc.wantOld == -2 {
				if events != 0 {
					t.Fatalf("unexpected transition event (old=%d)", gotOld)
				}
			} else if events != 1 || gotOld != tc.wantOld {
				t.Fatalf("events=%d old=%d, want 1 event from old %d", events, gotOld, tc.wantOld)
			}
		})
	}
}

// TestAutomatonSettleOutcome: exhausting settle either retires the task
// or restarts it at advance with fresh in-range budgets — which one is
// decided by the task's own deterministic rng, so the test predicts the
// branch with an identically-seeded twin.
func TestAutomatonSettleOutcome(t *testing.T) {
	retired, restarted := false, false
	for stream := uint64(0); stream < 32 && !(retired && restarted); stream++ {
		twin := rng.NewPCG32(99, stream)
		wantRetire := twin.IntN(3) == 0
		a := tinyAutomaton([]autoTask{{
			phase: 2, budget: [3]int{0, 0, 1}, rng: rng.NewPCG32(99, stream),
		}})
		var res simt.StepResult
		a.Step(0, abSettle, &res)
		if res.Next != abDispatch {
			t.Fatalf("settle must return to dispatch, got %d", res.Next)
		}
		if wantRetire {
			retired = true
			if a.PhaseOf(0) != -1 {
				t.Fatalf("stream %d: rng chose retirement but phase = %d", stream, a.PhaseOf(0))
			}
			if a.Retired() != 1 || a.WorkLeft() {
				t.Fatalf("stream %d: retirement bookkeeping: retired=%d left=%v", stream, a.Retired(), a.WorkLeft())
			}
		} else {
			restarted = true
			if a.PhaseOf(0) != 0 {
				t.Fatalf("stream %d: rng chose restart but phase = %d", stream, a.PhaseOf(0))
			}
			b := a.tasks[0].budget
			if b[0] < 1 || b[0] > 6 || b[1] < 1 || b[1] > 4 || b[2] < 1 || b[2] > 3 {
				t.Fatalf("stream %d: restart budgets out of range: %v", stream, b)
			}
			if a.Retired() != 0 || !a.WorkLeft() {
				t.Fatalf("stream %d: restart bookkeeping: retired=%d left=%v", stream, a.Retired(), a.WorkLeft())
			}
		}
	}
	if !retired || !restarted {
		t.Fatalf("32 streams never exercised both settle outcomes (retired=%v restarted=%v)", retired, restarted)
	}
}

func TestAutomatonEdges(t *testing.T) {
	a := NewAutomaton(DefaultConfig(), 3)
	if got := a.PhaseOf(-1); got != -1 {
		t.Fatalf("PhaseOf(-1) = %d", got)
	}
	if a.Entry() != abDispatch || a.Phases() != 3 {
		t.Fatalf("entry/phases: %d/%d", a.Entry(), a.Phases())
	}
	// Spare-row slots start finished and never count as work.
	live := DefaultConfig().Warps * DefaultConfig().WarpSize
	if got := a.PhaseOf(int32(live)); got != -1 {
		t.Fatalf("spare slot starts in phase %d, want done", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad block id did not panic")
		}
	}()
	var res simt.StepResult
	a.Step(0, 99, &res)
}

// TestAutomatonMappingsNeverReferenceInactiveLanes is the property test
// over the full shuffled run: every warp mapping the control emits
// (launch and every gate re-bind) must reference only live tasks —
// never a finished task or an empty cell presented as live — must keep
// the mapped lanes phase-uniform (the release contract masks minority
// lanes off rather than running them), and must never map one task
// into two lanes. The automaton's data-dependent transitions drive the
// row state, so this sweeps the state space a hand-built table cannot.
func TestAutomatonMappingsNeverReferenceInactiveLanes(t *testing.T) {
	for _, seed := range []uint64{1, 42} {
		for _, frac := range []float64{1.0, 0.75, 0.5} {
			cfg := DefaultConfig()
			cfg.ReleaseFraction = frac
			a := NewAutomaton(cfg, seed)
			ctrl, err := NewControl(cfg, a)
			if err != nil {
				t.Fatal(err)
			}
			inner := ctrl.Hooks()
			violations := 0
			checkWarp := func(s *simt.SMX, warp int) {
				slots := s.Warp(warp).Slots()
				phase := -1
				seen := make(map[int32]bool, len(slots))
				for _, slot := range slots {
					if slot < 0 {
						continue // masked lane: legal
					}
					if seen[slot] {
						violations++
						t.Errorf("seed %d frac %v: warp %d maps slot %d twice", seed, frac, warp, slot)
					}
					seen[slot] = true
					p := a.PhaseOf(slot)
					if p < 0 {
						violations++
						t.Errorf("seed %d frac %v: warp %d mapping references inactive slot %d", seed, frac, warp, slot)
					} else if phase == -1 {
						phase = p
					} else if p != phase {
						violations++
						t.Errorf("seed %d frac %v: warp %d mixes phases %d and %d", seed, frac, warp, phase, p)
					}
				}
			}
			hooks := simt.Hooks{
				Gate: func(s *simt.SMX, warp int, now int64) simt.GateResult {
					res := inner.Gate(s, warp, now)
					if res == simt.GateProceed && violations < 8 {
						checkWarp(s, warp)
					}
					return res
				},
				Tick: inner.Tick,
			}
			scfg := simt.DefaultConfig()
			scfg.NumSMX = 1
			scfg.MaxWarpsPerSMX = cfg.Warps
			scfg.WarpSize = cfg.WarpSize
			scfg.MaxCycles = 1 << 24
			smx, err := simt.NewSMX(0, scfg, a, hooks, memsys.NewL2(scfg.Mem))
			if err != nil {
				t.Fatal(err)
			}
			ctrl.Launch(smx)
			for w := 0; w < cfg.Warps; w++ {
				checkWarp(smx, w) // the launch mappings obey the same contract
			}
			if _, err := smx.Run(); err != nil {
				t.Fatal(err)
			}
			if a.WorkLeft() || a.Retired() != cfg.Warps*cfg.WarpSize {
				t.Fatalf("seed %d frac %v: run left work behind: retired %d of %d",
					seed, frac, a.Retired(), cfg.Warps*cfg.WarpSize)
			}
		}
	}
}
