package gshuffle

import (
	"repro/internal/rng"
	"repro/internal/simt"
)

// Automaton is the demonstration workload: a divergent Monte Carlo
// task system in which every task walks a random number of steps
// through three phases (advance, interact, settle) with data-dependent
// durations — the kind of irregular state machine (transport codes,
// agent simulation, graph walks) the paper's future-work section has
// in mind. Without shuffling, warps diverge exactly like ray traversal
// warps do.
type Automaton struct {
	cfg     Config
	blocks  []simt.BlockInfo
	tasks   []autoTask
	left    int
	listen  func(slot int32, old, new int)
	retired int
}

type autoTask struct {
	phase  int // -1 = done
	budget [3]int
	rng    *rng.PCG32
}

// Automaton block ids: one gated dispatch plus one body per phase.
const (
	abDispatch = 0
	abAdvance  = 1
	abInteract = 2
	abSettle   = 3
)

// NewAutomaton creates the task table: (Rows-1)*WarpSize slots, of
// which the first Warps*WarpSize hold live tasks (the same task count a
// fixed-mapping baseline of the same warp count processes; the spare
// rows' slots start finished and serve as reorganization space).
func NewAutomaton(cfg Config, seed uint64) *Automaton {
	slots := (cfg.Rows - 1) * cfg.WarpSize
	live := cfg.Warps * cfg.WarpSize
	a := &Automaton{
		cfg: cfg,
		blocks: []simt.BlockInfo{
			abDispatch: {Name: "dispatch", Insts: 2, SrcOps: 1, Gated: true, Tag: simt.TagCtrl, Reconv: abDispatch},
			abAdvance:  {Name: "advance", Insts: 24, SrcOps: 3},
			abInteract: {Name: "interact", Insts: 40, SrcOps: 3},
			abSettle:   {Name: "settle", Insts: 12, SrcOps: 2},
		},
		tasks: make([]autoTask, slots),
	}
	for i := range a.tasks {
		r := rng.NewPCG32(seed, uint64(i)*2654435761+1)
		if i < live {
			a.tasks[i] = autoTask{
				phase:  0,
				budget: [3]int{1 + r.IntN(6), 1 + r.IntN(4), 1 + r.IntN(3)},
				rng:    r,
			}
			a.left++
		} else {
			a.tasks[i] = autoTask{phase: -1, rng: r}
		}
	}
	return a
}

// Blocks implements simt.Kernel.
func (a *Automaton) Blocks() []simt.BlockInfo { return a.blocks }

// Entry implements simt.Kernel.
func (a *Automaton) Entry() int { return abDispatch }

// Phases implements TaskKernel.
func (a *Automaton) Phases() int { return 3 }

// PhaseOf implements TaskKernel.
func (a *Automaton) PhaseOf(slot int32) int {
	if slot < 0 {
		return -1
	}
	return a.tasks[slot].phase
}

// WorkLeft implements TaskKernel.
func (a *Automaton) WorkLeft() bool { return a.left > 0 }

// SetListener implements TaskKernel.
func (a *Automaton) SetListener(fn func(slot int32, old, new int)) { a.listen = fn }

// Retired returns the number of finished tasks.
func (a *Automaton) Retired() int { return a.retired }

// setPhase transitions a task and notifies the control.
func (a *Automaton) setPhase(slot int32, phase int) {
	t := &a.tasks[slot]
	if t.phase == phase {
		return
	}
	old := t.phase
	t.phase = phase
	if phase < 0 {
		a.left--
		a.retired++
	}
	if a.listen != nil {
		a.listen(slot, old, phase)
	}
}

// Step implements simt.Kernel.
func (a *Automaton) Step(slot int32, block int, res *simt.StepResult) {
	t := &a.tasks[slot]
	res.NMem = 0
	switch block {
	case abDispatch:
		switch t.phase {
		case 0:
			res.Next = abAdvance
		case 1:
			res.Next = abInteract
		case 2:
			res.Next = abSettle
		default:
			res.Next = simt.BlockExit
		}
	case abAdvance, abInteract, abSettle:
		phase := block - 1
		t.budget[phase]--
		if t.budget[phase] > 0 {
			// Stay in this phase for another dispatch round.
			res.Next = abDispatch
			return
		}
		// Move to the next phase; from settle, either finish or loop
		// back to advance with a fresh (data-dependent) budget.
		switch phase {
		case 0:
			a.setPhase(slot, 1)
		case 1:
			a.setPhase(slot, 2)
		default:
			if t.rng.IntN(3) == 0 {
				// Finished: the lane retires at its next dispatch, so
				// the warp itself survives to pick up other rows.
				a.setPhase(slot, -1)
				res.Next = abDispatch
				return
			}
			t.budget = [3]int{1 + t.rng.IntN(6), 1 + t.rng.IntN(4), 1 + t.rng.IntN(3)}
			a.setPhase(slot, 0)
		}
		res.Next = abDispatch
	default:
		panic("gshuffle: bad block")
	}
}
