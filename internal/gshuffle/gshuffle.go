// Package gshuffle implements the generalized dynamic state shuffling
// architecture the paper sketches as future work (§4.6): applying the
// DRS idea to divergent workloads other than ray tracing. The sketch
// lists three properties, all realized here:
//
//  1. the DATA of different warps is shuffled, not the threads — task
//     contexts move between register rows while warps stay intact;
//  2. no block-wide reconvergence stack is needed — divergence is
//     resolved by the state table, so warps never synchronize with each
//     other;
//  3. a warp is released for issue as soon as its SIMD utilization is
//     "improved to some extent" — the gate accepts a row once a single
//     phase reaches a configurable majority fraction, masking off the
//     minority lanes instead of waiting for perfect uniformity (the
//     relaxation that avoids TBC-style synchronization latencies).
//
// Tasks are state machines over a small set of phases; the shuffle
// control keeps rows phase-homogeneous enough for efficient execution,
// exactly as the DRS keeps ray rows state-homogeneous.
package gshuffle

import (
	"fmt"

	"repro/internal/simt"
)

// TaskKernel is a divergent workload expressed as per-slot state
// machines over `Phases` phases. The engine executes one gated dispatch
// block plus one body block per phase; after each body, a task reports
// its next phase (or done).
type TaskKernel interface {
	simt.Kernel
	// Phases returns the number of phases (body blocks).
	Phases() int
	// PhaseOf returns the slot's current phase, or -1 when the slot has
	// no work left.
	PhaseOf(slot int32) int
	// WorkLeft reports whether any slot anywhere still has work (used
	// for the exit decision).
	WorkLeft() bool
	// SetListener registers the control's phase-transition callback.
	SetListener(func(slot int32, old, new int))
}

// Config tunes the generalized shuffler.
type Config struct {
	// Rows is the number of task rows (warps + spare rows).
	Rows int
	// Warps is the number of resident warps (must be < Rows).
	Warps int
	// WarpSize is the row width.
	WarpSize int
	// ReleaseFraction is the §4.6 relaxation: a row is handed to a warp
	// once its best phase holds at least this fraction of its live
	// tasks (1.0 demands DRS-style uniformity). Values in (0, 1].
	ReleaseFraction float64
	// TaskRegisters is the number of live registers a task move
	// transfers (the analogue of the 17 ray registers).
	TaskRegisters int
	// SwapBuffers is the total swap buffer count, shared round-robin
	// across phases.
	SwapBuffers int
}

// DefaultConfig returns a small machine with the §4.6 relaxation at
// 75% majority release.
func DefaultConfig() Config {
	return Config{
		Rows:            12,
		Warps:           8,
		WarpSize:        32,
		ReleaseFraction: 0.75,
		TaskRegisters:   8,
		SwapBuffers:     6,
	}
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	switch {
	case c.WarpSize <= 0 || c.WarpSize > 32:
		return fmt.Errorf("gshuffle: warp size %d out of range", c.WarpSize)
	case c.Warps <= 0:
		return fmt.Errorf("gshuffle: need warps")
	case c.Rows <= c.Warps:
		return fmt.Errorf("gshuffle: need spare rows (%d rows for %d warps)", c.Rows, c.Warps)
	case c.ReleaseFraction <= 0 || c.ReleaseFraction > 1:
		return fmt.Errorf("gshuffle: release fraction %v out of (0,1]", c.ReleaseFraction)
	case c.TaskRegisters <= 0:
		return fmt.Errorf("gshuffle: task registers must be positive")
	case c.SwapBuffers <= 0:
		return fmt.Errorf("gshuffle: need swap buffers")
	}
	return nil
}

// Stats counts shuffler activity.
type Stats struct {
	Remaps         int64
	SwapsCompleted int64
	SwapCycleSum   int64
	PartialBinds   int64 // rows released below full uniformity (§4.6 point 3)
}

// Control is the generalized shuffling control: a phase table over task
// rows, warp renaming, and a per-phase collector swap engine.
type Control struct {
	cfg    Config
	kernel TaskKernel

	rows    [][]int32
	slotRow []int32
	counts  [][]int // per row, per phase (+1 column for "done")
	warpRow []int
	rowWarp []int
	rowBusy []int

	// one batched swap op in flight per phase collector
	ops []*swapOp

	stats   Stats
	scratch []int32

	// traceTick, when set, observes swap-engine activity (debug aid).
	traceTick func(phase int, op *swapOp, now int64, ok bool)
}

type swapOp struct {
	srcRow, dstRow     int
	srcCells, dstCells []int
	started            int64
	transfersLeft      int
	nextDone           int64
}

// NewControl organizes the kernel's slots into rows. The kernel must
// have (Rows-1)*WarpSize slots; one row starts empty for reorganizing.
func NewControl(cfg Config, kernel TaskKernel) (*Control, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Control{
		cfg:     cfg,
		kernel:  kernel,
		rows:    make([][]int32, cfg.Rows),
		warpRow: make([]int, cfg.Warps),
		rowWarp: make([]int, cfg.Rows),
		rowBusy: make([]int, cfg.Rows),
		counts:  make([][]int, cfg.Rows),
		ops:     make([]*swapOp, kernel.Phases()),
		scratch: make([]int32, cfg.WarpSize),
	}
	nSlots := (cfg.Rows - 1) * cfg.WarpSize
	c.slotRow = make([]int32, nSlots)
	slot := int32(0)
	for r := 0; r < cfg.Rows; r++ {
		c.rows[r] = make([]int32, cfg.WarpSize)
		c.counts[r] = make([]int, kernel.Phases()+1)
		for l := 0; l < cfg.WarpSize; l++ {
			if r < cfg.Rows-1 {
				c.rows[r][l] = slot
				c.slotRow[slot] = int32(r)
				c.bump(r, kernel.PhaseOf(slot), 1)
				slot++
			} else {
				c.rows[r][l] = -1
			}
		}
		c.rowWarp[r] = -1
	}
	for w := 0; w < cfg.Warps; w++ {
		c.warpRow[w] = w
		c.rowWarp[w] = w
	}
	kernel.SetListener(c.onPhaseChange)
	return c, nil
}

// bump adjusts the row's count for a phase (-1 = done column).
func (c *Control) bump(row, phase, delta int) {
	col := phase
	if col < 0 {
		col = len(c.counts[row]) - 1
	}
	c.counts[row][col] += delta
}

func (c *Control) onPhaseChange(slot int32, old, new int) {
	r := int(c.slotRow[slot])
	c.bump(r, old, -1)
	c.bump(r, new, 1)
}

// Hooks wires the control to an SMX.
func (c *Control) Hooks() simt.Hooks {
	return simt.Hooks{Gate: c.gate, Tick: c.tick}
}

// Launch starts the warps on their initial rows.
func (c *Control) Launch(s *simt.SMX) {
	for w := 0; w < c.cfg.Warps; w++ {
		s.LaunchMapped(w, c.maskedSlots(c.warpRow[w], c.bestPhase(c.warpRow[w])))
	}
}

// Stats returns a snapshot of the counters.
func (c *Control) Stats() Stats { return c.stats }

// bestPhase returns the phase with the most tasks in the row and its
// count.
func (c *Control) bestPhase(row int) int {
	best, bestN := -1, 0
	for p := 0; p < c.kernel.Phases(); p++ {
		if n := c.counts[row][p]; n > bestN {
			best, bestN = p, n
		}
	}
	return best
}

// live returns the number of unfinished tasks in the row.
func (c *Control) live(row int) int {
	n := 0
	for p := 0; p < c.kernel.Phases(); p++ {
		n += c.counts[row][p]
	}
	return n
}

// maskedSlots maps the row's slots, keeping only tasks in `phase` (the
// §4.6 partial release masks other lanes off).
func (c *Control) maskedSlots(row, phase int) []int32 {
	out := c.scratch
	for l, s := range c.rows[row] {
		if s >= 0 && c.kernel.PhaseOf(s) == phase {
			out[l] = s
		} else {
			out[l] = -1
		}
	}
	return out
}

// acceptable reports whether a row meets the release fraction for its
// best phase.
func (c *Control) acceptable(row int) (int, bool) {
	phase := c.bestPhase(row)
	if phase < 0 {
		return -1, false
	}
	live := c.live(row)
	need := int(c.cfg.ReleaseFraction * float64(live))
	if need < 1 {
		need = 1
	}
	return phase, c.counts[row][phase] >= need
}

// gate implements the dispatch semantics: map the warp to a row whose
// dominant phase meets the release fraction; otherwise stall.
func (c *Control) gate(s *simt.SMX, warp int, now int64) simt.GateResult {
	if row := c.warpRow[warp]; row >= 0 {
		if phase, ok := c.acceptable(row); ok && c.rowBusy[row] == 0 {
			if c.counts[row][phase] < c.live(row) {
				c.stats.PartialBinds++
			}
			s.Warp(warp).SetMapping(c.maskedSlots(row, phase), c.kernel.Entry())
			return simt.GateProceed
		}
		c.rowWarp[row] = -1
		c.warpRow[warp] = -1
	}
	// Fullest acceptable unbound row.
	best, bestN, bestPhase := -1, 0, -1
	for r := range c.rows {
		if c.rowWarp[r] >= 0 || c.rowBusy[r] > 0 {
			continue
		}
		if phase, ok := c.acceptable(r); ok {
			if n := c.counts[r][phase]; n > bestN {
				best, bestN, bestPhase = r, n, phase
			}
		}
	}
	if best >= 0 {
		c.warpRow[warp] = best
		c.rowWarp[best] = warp
		c.stats.Remaps++
		if bestN < c.live(best) {
			c.stats.PartialBinds++
		}
		s.Warp(warp).SetMapping(c.maskedSlots(best, bestPhase), c.kernel.Entry())
		return simt.GateProceed
	}
	if !c.kernel.WorkLeft() {
		return simt.GateExit
	}
	return simt.GateStall
}

// tick advances one batched swap per phase collector, exactly like the
// DRS swap engine but with one collector per phase.
func (c *Control) tick(s *simt.SMX, now int64) {
	for p := range c.ops {
		if op := c.ops[p]; op != nil {
			for op.transfersLeft > 0 && op.nextDone <= now {
				if !s.RF().TryShuffleTransfer(now, op.srcRow, op.dstRow, op.transfersLeft) {
					if c.traceTick != nil {
						c.traceTick(p, op, now, false)
					}
					break
				}
				op.transfersLeft--
				op.nextDone = now + 2
				if c.traceTick != nil {
					c.traceTick(p, op, now, true)
				}
			}
			if op.transfersLeft == 0 && op.nextDone <= now {
				c.completeOp(op, now)
				c.ops[p] = nil
			}
		}
		if c.ops[p] == nil {
			c.ops[p] = c.plan(p, now)
		}
	}
}

func (c *Control) completeOp(op *swapOp, now int64) {
	for i := range op.srcCells {
		a := c.rows[op.srcRow][op.srcCells[i]]
		b := c.rows[op.dstRow][op.dstCells[i]]
		c.rows[op.dstRow][op.dstCells[i]] = a
		c.rows[op.srcRow][op.srcCells[i]] = b
		if a >= 0 {
			c.bump(op.srcRow, c.kernel.PhaseOf(a), -1)
			c.bump(op.dstRow, c.kernel.PhaseOf(a), 1)
			c.slotRow[a] = int32(op.dstRow)
		}
		if b >= 0 {
			c.bump(op.dstRow, c.kernel.PhaseOf(b), -1)
			c.bump(op.srcRow, c.kernel.PhaseOf(b), 1)
			c.slotRow[b] = int32(op.srcRow)
		}
	}
	c.rowBusy[op.srcRow]--
	c.rowBusy[op.dstRow]--
	c.stats.SwapsCompleted++
	c.stats.SwapCycleSum += now - op.started
}

// plan finds the next batched move for phase p: extract p-tasks from
// the row where they are most in the minority into the row where they
// are most concentrated (with space or exchangeable cells).
func (c *Control) plan(p int, now int64) *swapOp {
	ws := c.cfg.WarpSize
	// Donor: unbound row where phase p is present but NOT dominant.
	donor := -1
	for r := range c.rows {
		if c.rowWarp[r] >= 0 || c.rowBusy[r] > 0 || c.counts[r][p] == 0 {
			continue
		}
		if c.bestPhase(r) != p {
			donor = r
			break
		}
	}
	if donor < 0 {
		return nil
	}
	// Collector: unbound row ≠ donor, preferring rows that already hold
	// phase p (grow them), then rows with no live tasks at all (start
	// fresh — never seed a new mixed row), then exchanges as a last
	// resort. The tiering prevents the planner from ping-ponging a
	// minority task between two mixed rows.
	grow, growBest := -1, 0
	fresh := -1
	exch := -1
	for r := range c.rows {
		if r == donor || c.rowWarp[r] >= 0 || c.rowBusy[r] > 0 {
			continue
		}
		n := c.counts[r][p]
		if n >= ws {
			continue
		}
		other := c.live(r) - n
		free := ws - c.live(r) // includes done tasks' cells
		switch {
		case n > 0 && (free > 0 || other > 0):
			if n > growBest {
				grow, growBest = r, n
			}
		case other == 0 && free > 0:
			if fresh < 0 {
				fresh = r
			}
		case other > 0:
			if exch < 0 {
				exch = r
			}
		}
	}
	coll := grow
	if coll < 0 {
		coll = fresh
	}
	if coll < 0 {
		coll = exch
	}
	if coll < 0 {
		return nil
	}
	op := &swapOp{srcRow: donor, dstRow: coll, started: now}
	for l, s := range c.rows[donor] {
		if s >= 0 && c.kernel.PhaseOf(s) == p {
			op.srcCells = append(op.srcCells, l)
			if len(op.srcCells) >= ws-1 {
				break
			}
		}
	}
	for _, pass := range [2]bool{false, true} {
		for l, s := range c.rows[coll] {
			if len(op.dstCells) >= len(op.srcCells) {
				break
			}
			dead := s < 0 || c.kernel.PhaseOf(s) < 0
			other := !dead && c.kernel.PhaseOf(s) != p
			if (!pass && dead) || (pass && other) {
				op.dstCells = append(op.dstCells, l)
			}
		}
	}
	if len(op.dstCells) == 0 {
		return nil
	}
	op.srcCells = op.srcCells[:len(op.dstCells)]
	op.transfersLeft = c.cfg.TaskRegisters
	c.rowBusy[donor]++
	c.rowBusy[coll]++
	return op
}

// MeanSwapCycles returns the average batched swap duration.
func (s Stats) MeanSwapCycles() float64 {
	if s.SwapsCompleted == 0 {
		return 0
	}
	return float64(s.SwapCycleSum) / float64(s.SwapsCompleted)
}
