// Package camera provides the pinhole camera that generates primary
// rays. Primary rays from a pinhole camera are coherent, which is the
// property the paper relies on when explaining why bounce #1 has high
// SIMD efficiency.
package camera

import (
	"math"

	"repro/internal/geom"
	"repro/internal/vec"
)

// Pinhole is a simple perspective camera.
type Pinhole struct {
	origin     vec.V3
	lowerLeft  vec.V3
	horizontal vec.V3
	vertical   vec.V3
	width      int
	height     int
}

// New creates a pinhole camera looking from `from` toward `at`, with
// `up` as the up hint, a vertical field of view in degrees, and the
// image resolution.
func New(from, at, up vec.V3, vfovDeg float64, width, height int) *Pinhole {
	aspect := float64(width) / float64(height)
	theta := vfovDeg * math.Pi / 180
	halfH := float32(math.Tan(theta / 2))
	halfW := float32(aspect) * halfH
	w := from.Sub(at).Norm()
	u := up.Cross(w).Norm()
	v := w.Cross(u)
	return &Pinhole{
		origin:     from,
		lowerLeft:  from.Sub(u.Scale(halfW)).Sub(v.Scale(halfH)).Sub(w),
		horizontal: u.Scale(2 * halfW),
		vertical:   v.Scale(2 * halfH),
		width:      width,
		height:     height,
	}
}

// Width returns the image width in pixels.
func (c *Pinhole) Width() int { return c.width }

// Height returns the image height in pixels.
func (c *Pinhole) Height() int { return c.height }

// Ray generates the primary ray through pixel (px, py) at subpixel
// offset (sx, sy) in [0, 1).
func (c *Pinhole) Ray(px, py int, sx, sy float32) geom.Ray {
	s := (float32(px) + sx) / float32(c.width)
	t := 1 - (float32(py)+sy)/float32(c.height)
	dir := c.lowerLeft.
		Add(c.horizontal.Scale(s)).
		Add(c.vertical.Scale(t)).
		Sub(c.origin).Norm()
	return geom.NewRay(c.origin, dir)
}
