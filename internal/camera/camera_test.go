package camera

import (
	"testing"

	"repro/internal/vec"
)

func TestCameraDimensions(t *testing.T) {
	c := New(vec.New(0, 0, 0), vec.New(0, 0, -1), vec.New(0, 1, 0), 60, 640, 480)
	if c.Width() != 640 || c.Height() != 480 {
		t.Errorf("dims = %dx%d", c.Width(), c.Height())
	}
}

func TestCenterRayPointsAtTarget(t *testing.T) {
	from := vec.New(1, 2, 3)
	at := vec.New(4, 2, -5)
	c := New(from, at, vec.New(0, 1, 0), 55, 200, 100)
	r := c.Ray(100, 50, 0, 0)
	if r.Origin != from {
		t.Errorf("origin = %v", r.Origin)
	}
	want := at.Sub(from).Norm()
	if r.Dir.Sub(want).Len() > 0.05 {
		t.Errorf("center ray dir %v, want ~%v", r.Dir, want)
	}
}

func TestRaysAreUnit(t *testing.T) {
	c := New(vec.New(0, 1, 5), vec.New(0, 1, 0), vec.New(0, 1, 0), 70, 64, 48)
	for py := 0; py < 48; py += 7 {
		for px := 0; px < 64; px += 7 {
			r := c.Ray(px, py, 0.5, 0.5)
			if l := r.Dir.Len(); l < 0.999 || l > 1.001 {
				t.Fatalf("ray (%d,%d) not unit: %v", px, py, l)
			}
		}
	}
}

func TestCornerRaysDiverge(t *testing.T) {
	c := New(vec.New(0, 0, 0), vec.New(0, 0, -1), vec.New(0, 1, 0), 60, 100, 100)
	tl := c.Ray(0, 0, 0, 0)
	br := c.Ray(99, 99, 1, 1)
	if tl.Dir.Dot(br.Dir) > 0.99 {
		t.Errorf("corner rays too similar: %v vs %v", tl.Dir, br.Dir)
	}
	// Top-left should have +y and -x relative to view center.
	if tl.Dir.Y <= 0 || tl.Dir.X >= 0 {
		t.Errorf("top-left ray oriented wrong: %v", tl.Dir)
	}
}

func TestNeighboringRaysCoherent(t *testing.T) {
	// Primary-ray coherence is the property the paper relies on for
	// bounce-1 SIMD efficiency: adjacent pixels give nearly parallel rays.
	c := New(vec.New(0, 0, 0), vec.New(0, 0, -1), vec.New(0, 1, 0), 60, 640, 480)
	a := c.Ray(320, 240, 0.5, 0.5)
	b := c.Ray(321, 240, 0.5, 0.5)
	if a.Dir.Dot(b.Dir) < 0.99999 {
		t.Errorf("adjacent rays not coherent: dot = %v", a.Dir.Dot(b.Dir))
	}
}
