// Package raysort implements the classic stream-reordering alternative
// to dynamic shuffling: sort the whole ray stream up front by a Morton
// key over ray origin and direction, then trace with the stock
// while-while kernel. Rays that start near each other and point the
// same way traverse the same BVH subtrees, so the sorted stream packs
// coherent rays into the same warps before launch — the ray-sorting
// family of the coherence literature (Pharr et al. reordering,
// Garanzha & Loop's compression-sorting-decompression pipeline).
//
// Unlike DRS/DMK/TBC/SER, nothing happens at divergence: all the
// benefit (and all the cost) is in the pre-pass. The modeled cost is
// the sort's GPU time, reported through reorder.Stats.CostCycles and
// folded into the harness throughput figure; the trace itself is
// byte-identical to running "aila" on the permuted stream.
//
// Determinism: the key is a pure function of the ray and the stream's
// bounding box, ties break on the original stream index (stable sort),
// and the permutation is applied before SMX partitioning so every
// engine sees the same deterministic input.
package raysort

import (
	"sort"

	"repro/internal/geom"
	"repro/internal/kernels"
	"repro/internal/progcheck"
	"repro/internal/reorder"
	"repro/internal/simt"
	"repro/internal/vec"
)

// Config holds the sort parameters.
type Config struct {
	// OriginBits is the number of Morton bits per origin axis
	// (quantized against the stream's bounding box). Defaults to 10
	// (the 30-bit curve the LBVH builder uses).
	OriginBits int
	// DirBits is the number of bits per direction axis, appended below
	// the origin key so rays from the same cell sort by heading.
	// Defaults to 2.
	DirBits int
	// RaysPerCycle models the sort throughput: a GPU radix sort is
	// memory-bound and processes a handful of keys per clock across the
	// chip. Defaults to 8.
	RaysPerCycle int
}

// DefaultConfig returns the evaluation defaults.
func DefaultConfig() Config {
	return Config{OriginBits: 10, DirBits: 2, RaysPerCycle: 8}
}

// Policy adapts global ray sorting to the reorder.Policy interface.
// It is both a Policy and a StreamSorter: the harness calls SortStream
// once on the full stream before partitioning rays across SMXs,
// applies the permutation, charges the returned cost against the run's
// throughput, and records it as the run/sort_cost_cycles metric.
// SortStream is pure — the policy holds no run state, so the harness's
// determinism re-run reuses the same instance safely.
type Policy struct {
	Cfg Config
}

// NewPolicy wraps a sort configuration as a policy.
func NewPolicy(cfg Config) *Policy { return &Policy{Cfg: cfg} }

// Name implements reorder.Policy.
func (p *Policy) Name() string { return "sort" }

// Summary implements reorder.Policy.
func (p *Policy) Summary() string {
	return "global ray sorting: Morton order over origin+direction before launch, stock kernel after"
}

// Validate implements reorder.Policy: the key must fit in 64 bits and
// negatives signal caller confusion (zero selects the default).
func (p *Policy) Validate() error {
	cfg := p.Cfg.withDefaults()
	if p.Cfg.OriginBits < 0 || p.Cfg.DirBits < 0 || p.Cfg.RaysPerCycle < 0 {
		return &ConfigError{Reason: "values must not be negative (zero selects the default)"}
	}
	if bits := 3 * (cfg.OriginBits + cfg.DirBits); bits > 63 {
		return &ConfigError{Reason: "OriginBits+DirBits exceed the 64-bit key"}
	}
	return nil
}

// Warps implements reorder.Policy: 0 accepts the harness warp count.
func (p *Policy) Warps() int { return 0 }

// Caps implements reorder.Policy.
func (p *Policy) Caps() progcheck.Caps { return progcheck.Caps{} }

func (c Config) withDefaults() Config {
	if c.OriginBits <= 0 {
		c.OriginBits = 10
	}
	if c.DirBits <= 0 {
		c.DirBits = 2
	}
	if c.RaysPerCycle <= 0 {
		c.RaysPerCycle = 8
	}
	return c
}

// SortStream implements reorder.StreamSorter: it returns the
// permutation (perm[newIndex] = oldIndex) ordering the stream along
// the Morton curve, and the modeled cost of computing it on the GPU.
func (p *Policy) SortStream(rays []geom.Ray) (perm []int, costCycles int64) {
	cfg := p.Cfg.withDefaults()
	perm = make([]int, len(rays))
	for i := range perm {
		perm[i] = i
	}
	if len(rays) == 0 {
		return perm, 0
	}

	// Stream bounds for origin quantization (directions quantize by
	// sign+dominance, no bounds needed).
	minO, maxO := rays[0].Origin, rays[0].Origin
	for _, r := range rays[1:] {
		minO = minO.Min(r.Origin)
		maxO = maxO.Max(r.Origin)
	}
	diag := maxO.Sub(minO)
	inv := func(d float32) float32 {
		if d <= 0 {
			return 0
		}
		return 1 / d
	}
	sx, sy, sz := inv(diag.X), inv(diag.Y), inv(diag.Z)

	keys := make([]uint64, len(rays))
	for i, r := range rays {
		keys[i] = rayKey(r, minO, sx, sy, sz, cfg.OriginBits, cfg.DirBits)
	}
	sort.SliceStable(perm, func(a, b int) bool {
		return keys[perm[a]] < keys[perm[b]]
	})

	// Modeled cost: a memory-bound radix sort streaming the key array.
	costCycles = (int64(len(rays)) + int64(cfg.RaysPerCycle) - 1) / int64(cfg.RaysPerCycle)
	return perm, costCycles
}

// rayKey builds the Morton key: origin cell bits interleaved on top,
// direction bits below, so rays sort first by cell and then by
// heading within the cell.
func rayKey(r geom.Ray, minO vec.V3, sx, sy, sz float32, originBits, dirBits int) uint64 {
	scale := float32(uint32(1)<<uint(originBits)) - 1
	ox := quantize((r.Origin.X-minO.X)*sx, scale)
	oy := quantize((r.Origin.Y-minO.Y)*sy, scale)
	oz := quantize((r.Origin.Z-minO.Z)*sz, scale)
	key := interleave3(ox, oy, oz, originBits)

	dscale := float32(uint32(1)<<uint(dirBits)) - 1
	dx := quantize((r.Dir.X+1)*0.5, dscale)
	dy := quantize((r.Dir.Y+1)*0.5, dscale)
	dz := quantize((r.Dir.Z+1)*0.5, dscale)
	return key<<uint(3*dirBits) | interleave3(dx, dy, dz, dirBits)
}

// quantize clamps v to [0,1] and scales to an integer cell.
func quantize(v, scale float32) uint32 {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return uint32(v * scale)
}

// interleave3 builds a 3*bits-bit Morton code bit by bit. The stream
// is sorted once per run; clarity beats the magic-constant spread.
func interleave3(x, y, z uint32, bits int) uint64 {
	var code uint64
	for b := bits - 1; b >= 0; b-- {
		code = code<<3 |
			uint64(x>>uint(b)&1)<<2 |
			uint64(y>>uint(b)&1)<<1 |
			uint64(z>>uint(b)&1)
	}
	return code
}

// NewSMX implements reorder.Policy: after the pre-pass the trace is
// the stock baseline (with whatever kernel options the run selects).
func (p *Policy) NewSMX(env reorder.Env) (reorder.Instance, error) {
	k := kernels.NewAila(env.Data, env.Pool, env.Cfg.MaxWarpsPerSMX*env.Cfg.WarpSize, env.Aila)
	if env.Verify != nil {
		if err := env.Verify(k); err != nil {
			return nil, err
		}
	}
	return &instance{k: k}, nil
}

// instance is one SMX's view of the sorted run. The sort itself is
// stream-global; per-SMX there is nothing to hook.
type instance struct {
	k *kernels.Aila
}

func (i *instance) Program() simt.SMXProgram { return simt.SMXProgram{Kernel: i.k} }

func (i *instance) Hits() []geom.Hit { return i.k.Hits }

// ReorderStats implements reorder.StatsReporter: per-SMX there is
// nothing to report — the harness accounts the stream-level sort
// (one reorder of the whole stream plus its modeled cost) itself.
func (i *instance) ReorderStats() reorder.Stats { return reorder.Stats{} }

// ConfigError reports an invalid sort configuration.
type ConfigError struct {
	Reason string
}

func (e *ConfigError) Error() string { return "raysort: " + e.Reason }
