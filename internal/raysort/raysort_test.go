package raysort_test

import (
	"testing"

	"repro/internal/bvh"
	"repro/internal/geom"
	"repro/internal/harness"
	"repro/internal/kernels"
	"repro/internal/raysort"
	"repro/internal/render"
	"repro/internal/reorder"
	"repro/internal/scene"
	"repro/internal/vec"
)

// TestSortStreamPermutation: the result must be a permutation, must be
// deterministic, and must preserve stream order among identical rays
// (stable tie-break).
func TestSortStreamPermutation(t *testing.T) {
	p := raysort.NewPolicy(raysort.DefaultConfig())
	rays := make([]geom.Ray, 257)
	for i := range rays {
		// A scrambled but deterministic cloud of origins and directions.
		f := float32(i*2654435761%1000) / 1000
		g := float32(i*40503%997) / 997
		rays[i] = geom.Ray{
			Origin: vec.New(f*10-5, g*4, float32(i%7)),
			Dir:    vec.New(g*2-1, f*2-1, 0.5).Norm(),
			TMax:   1e30,
		}
	}
	perm, cost := p.SortStream(rays)
	if len(perm) != len(rays) {
		t.Fatalf("perm length %d", len(perm))
	}
	seen := make([]bool, len(rays))
	for _, oi := range perm {
		if oi < 0 || oi >= len(rays) || seen[oi] {
			t.Fatalf("not a permutation: index %d", oi)
		}
		seen[oi] = true
	}
	if cost <= 0 {
		t.Fatalf("cost = %d, want positive", cost)
	}
	perm2, cost2 := p.SortStream(rays)
	for i := range perm {
		if perm[i] != perm2[i] {
			t.Fatalf("permutation not deterministic at %d", i)
		}
	}
	if cost != cost2 {
		t.Fatalf("cost not deterministic: %d vs %d", cost, cost2)
	}

	same := make([]geom.Ray, 64)
	for i := range same {
		same[i] = rays[0]
	}
	idPerm, _ := p.SortStream(same)
	for i, oi := range idPerm {
		if oi != i {
			t.Fatalf("identical rays reordered: perm[%d] = %d (tie-break must keep stream order)", i, oi)
		}
	}
}

func TestSortStreamEmptyAndValidate(t *testing.T) {
	p := raysort.NewPolicy(raysort.DefaultConfig())
	perm, cost := p.SortStream(nil)
	if len(perm) != 0 || cost != 0 {
		t.Fatalf("empty stream: perm=%v cost=%d", perm, cost)
	}
	if err := raysort.NewPolicy(raysort.Config{OriginBits: -1}).Validate(); err == nil {
		t.Fatal("negative OriginBits accepted")
	}
	if err := raysort.NewPolicy(raysort.Config{OriginBits: 20, DirBits: 20}).Validate(); err == nil {
		t.Fatal("oversized key accepted")
	}
	if err := raysort.NewPolicy(raysort.Config{}).Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	var _ reorder.Policy = p
	var _ reorder.StreamSorter = p
}

// TestSortPolicyEndToEnd: tracing the sorted stream must return hits in
// the original input order, identical to the CPU reference, and charge
// the modeled sort cost against throughput.
func TestSortPolicyEndToEnd(t *testing.T) {
	s := scene.Generate(scene.ConferenceRoom, 1200)
	bv, err := bvh.Build(s.Tris, bvh.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cam := render.CameraFor(scene.ConferenceRoom, 48, 36)
	res, err := render.Render(s, bv, cam, render.Config{
		Width: 48, Height: 36, SamplesPerPixel: 1, MaxDepth: 4, CaptureTraces: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rays := res.Traces.Bounce(2).Rays
	if len(rays) < 300 {
		t.Fatalf("workload too small: %d rays", len(rays))
	}
	data := kernels.NewSceneData(bv)
	opt := harness.DefaultOptions()
	opt.Simt.NumSMX = 2
	opt.Simt.MaxCycles = 1 << 24
	opt.AilaWarps = 8
	opt.CheckDeterminism = true
	run, err := harness.RunNamed("sort", rays, data, opt)
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	for i, r := range rays {
		want := bv.Intersect(r, nil)
		got := run.Hits[i]
		if got.TriIndex != want.TriIndex {
			if got.TriIndex >= 0 && want.TriIndex >= 0 && abs(got.T-want.T) < 1e-4 {
				continue
			}
			bad++
		}
	}
	if bad > 0 {
		t.Fatalf("%d/%d hits out of place after inverse mapping", bad, len(rays))
	}
	if run.Reorder.CostCycles <= 0 {
		t.Errorf("no sort cost charged: %+v", run.Reorder)
	}
	if run.Reorder.RaysMoved != int64(len(rays)) {
		t.Errorf("RaysMoved = %d, want %d", run.Reorder.RaysMoved, len(rays))
	}
	// The charged cost must depress Mrays relative to the raw device rate.
	raw := run.GPU.Stats.MraysPerSec(int64(len(rays)), run.Config.ClockMHz)
	if run.Mrays >= raw {
		t.Errorf("Mrays %.2f not below raw %.2f despite %d cost cycles",
			run.Mrays, raw, run.Reorder.CostCycles)
	}
}

func abs(f float32) float32 {
	if f < 0 {
		return -f
	}
	return f
}
