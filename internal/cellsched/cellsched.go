// Package cellsched is a deterministic parallel scheduler for
// experiment cells. The paper's evaluation is a grid of independent
// device simulations — (scene x architecture x bounce) for Figures
// 10/11, (scene x buffer config) for Table 2, backup-row sweeps for
// Figures 8/9 — and each cell is an isolated simulated device, so the
// cells can run concurrently without changing any cell's result.
//
// Determinism argument: a cell's Run closure is a pure function of the
// cell's inputs (the epoch-barrier engine makes each device simulation
// bit-reproducible regardless of goroutine scheduling, see DESIGN.md
// §3), cells share no mutable state (workloads come from a build-once
// Cache and are read-only after construction), and Run assembles
// results positionally in the caller's canonical cell order. Worker
// count and completion order therefore cannot affect the output: the
// result slice — and everything rendered from it — is byte-identical
// at -par 1 and -par N. The experiment differential tests assert this
// mechanically.
//
// Error propagation is deterministic too: workers claim cells in index
// order, so when a cell fails, every lower-index cell has already been
// claimed; Run stops issuing new cells, waits for the in-flight ones,
// and reports the failure with the lowest index — first-by-key in the
// canonical order, not first-by-time.
package cellsched

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Cell is one independent unit of an experiment grid: a stable key in
// the grid's canonical order and a closure that computes the cell's
// value. Run must be safe to call concurrently with other cells' Run
// closures (it must not mutate state shared between cells).
type Cell[T any] struct {
	// Key names the cell in errors and logs ("fig10/conference/drs/B2").
	Key string
	// Run computes the cell. It is called at most once.
	Run func() (T, error)
}

// Run executes the cells on a bounded worker pool and returns their
// values in cell order. par is the worker count: <= 0 means
// runtime.GOMAXPROCS(0). par == 1 degenerates to a plain sequential
// loop; any par produces byte-identical results (see the package
// comment).
//
// If any cell fails, Run cancels the remaining unstarted cells, waits
// for in-flight ones, and returns the error of the failing cell with
// the lowest index, wrapped with its Key.
func Run[T any](cells []Cell[T], par int) ([]T, error) {
	return RunCtx(context.Background(), cells, par)
}

// RunCtx is Run with cooperative cancellation: once ctx is done,
// workers stop claiming new cells, wait for the in-flight ones (whose
// Run closures observe the same cancellation at their next internal
// check, provided the caller threaded ctx into them), and RunCtx
// returns an error. An uncancelled RunCtx behaves exactly like Run:
// same results, byte for byte, at any worker count.
//
// Error reporting stays deterministic under cancellation: the failing
// cell with the lowest index wins, exactly as in Run. Only if no
// claimed cell reported an error does RunCtx fall back to ctx.Err()
// (cells were skipped, so the grid is incomplete).
func RunCtx[T any](ctx context.Context, cells []Cell[T], par int) ([]T, error) {
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(cells) {
		par = len(cells)
	}
	out := make([]T, len(cells))
	if par <= 1 {
		// Sequential path: identical semantics, no goroutines. The first
		// error in index order is the same error the parallel path
		// reports (workers claim indices monotonically and drain).
		for i := range cells {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("cellsched: cancelled before cell %q: %w", cells[i].Key, err)
			}
			v, err := cells[i].Run()
			if err != nil {
				return nil, fmt.Errorf("cellsched: cell %q: %w", cells[i].Key, err)
			}
			out[i] = v
		}
		return out, nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	errs := make([]error, len(cells))
	claimed := 0
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(cells) || failed.Load() {
					return
				}
				v, err := cells[i].Run()
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	claimed = int(next.Load())
	// Index order, not completion order: the lowest-index failure wins,
	// and every cell below it has completed (claims are monotonic).
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cellsched: cell %q: %w", cells[i].Key, err)
		}
	}
	if err := ctx.Err(); err != nil && claimed < len(cells) {
		return nil, fmt.Errorf("cellsched: cancelled with %d of %d cells unclaimed: %w",
			len(cells)-min(claimed, len(cells)), len(cells), err)
	}
	return out, nil
}
