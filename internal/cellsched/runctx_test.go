package cellsched

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

// labelCells builds n deterministic cells whose results encode their
// index, for output comparison across schedulers.
func labelCells(n int) []Cell[string] {
	cells := make([]Cell[string], n)
	for i := range cells {
		cells[i] = Cell[string]{
			Key: fmt.Sprintf("cell%03d", i),
			Run: func() (string, error) {
				return fmt.Sprintf("v%d=%d", i, i*i), nil
			},
		}
	}
	return cells
}

// TestRunCtxUncancelledMatchesRun is the differential satellite: an
// uncancelled RunCtx must be byte-identical to Run at parallelism 1, 2
// and 4.
func TestRunCtxUncancelledMatchesRun(t *testing.T) {
	cells := labelCells(37)
	for _, par := range []int{1, 2, 4} {
		want, err := Run(cells, par)
		if err != nil {
			t.Fatalf("Run(par=%d): %v", par, err)
		}
		got, err := RunCtx(context.Background(), cells, par)
		if err != nil {
			t.Fatalf("RunCtx(par=%d): %v", par, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("par=%d: RunCtx diverged from Run:\n got %v\nwant %v", par, got, want)
		}
	}
}

func TestRunCtxCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	cells := []Cell[int]{{
		Key: "never",
		Run: func() (int, error) { ran.Add(1); return 0, nil },
	}}
	for _, par := range []int{1, 4} {
		_, err := RunCtx(ctx, cells, par)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("par=%d: want context.Canceled, got %v", par, err)
		}
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("cancelled scheduler still ran %d cells", n)
	}
}

// TestRunCtxStopsClaiming cancels mid-run and checks that workers stop
// claiming new cells. Every cell cancels the context, so a worker can
// run at most one cell before its next claim check sees the
// cancellation — the run count is bounded by the worker count, far
// below the grid size.
func TestRunCtxStopsClaiming(t *testing.T) {
	const n = 64
	for _, par := range []int{1, 2, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		cells := make([]Cell[int], n)
		for i := range cells {
			cells[i] = Cell[int]{
				Key: fmt.Sprintf("c%d", i),
				Run: func() (int, error) {
					ran.Add(1)
					cancel()
					return i, nil
				},
			}
		}
		_, err := RunCtx(ctx, cells, par)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("par=%d: want context.Canceled, got %v", par, err)
		}
		if got := ran.Load(); got > int64(par) {
			t.Fatalf("par=%d: %d cells ran after cancellation (want <= %d)", par, got, par)
		}
	}
}

// TestRunCtxCellErrorBeatsCancellation: when a cell fails and the
// context is also cancelled, the deterministic lowest-index cell error
// must win, matching Run's error rule.
func TestRunCtxCellErrorBeatsCancellation(t *testing.T) {
	boom := errors.New("boom")
	for _, par := range []int{1, 2} {
		ctx, cancel := context.WithCancel(context.Background())
		cells := []Cell[int]{
			{Key: "a", Run: func() (int, error) { cancel(); return 0, boom }},
			{Key: "b", Run: func() (int, error) { return 1, nil }},
		}
		_, err := RunCtx(ctx, cells, par)
		cancel()
		if !errors.Is(err, boom) {
			t.Fatalf("par=%d: want cell error %v to win, got %v", par, boom, err)
		}
	}
}
