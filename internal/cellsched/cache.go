package cellsched

import "sync"

// CacheStats counts Cache traffic. Builds always equals Misses: every
// miss builds exactly once, and concurrent requesters of an in-flight
// key block on that one build (and count as hits).
type CacheStats struct {
	Hits   int64
	Misses int64
	Builds int64
}

// Cache is a build-once, keep-forever cache for expensive shared
// inputs (scene workloads: render + BVH + trace capture). It is safe
// for concurrent use by cells: the first requester of a key runs the
// build while later requesters block until it completes, so a value is
// built exactly once no matter how many cells want it or how they are
// scheduled. Build errors are cached like values — every requester of
// a failed key gets the same error, deterministically.
//
// Values must be treated as immutable once returned: cells share them
// concurrently.
type Cache[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*cacheEntry[V]
	stats   CacheStats
}

type cacheEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// NewCache returns an empty cache.
func NewCache[K comparable, V any]() *Cache[K, V] {
	return &Cache[K, V]{entries: make(map[K]*cacheEntry[V])}
}

// Get returns the value for key, running build to produce it if this is
// the key's first request. Concurrent Gets of the same key share one
// build.
func (c *Cache[K, V]) Get(key K, build func() (V, error)) (V, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry[V]{}
		c.entries[key] = e
		c.stats.Misses++
		c.stats.Builds++
	} else {
		c.stats.Hits++
	}
	c.mu.Unlock()
	e.once.Do(func() { e.val, e.err = build() })
	return e.val, e.err
}

// Stats returns a snapshot of the hit/miss/build counters.
func (c *Cache[K, V]) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of distinct keys ever requested.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
