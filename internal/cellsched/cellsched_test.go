package cellsched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func squareCells(n int) []Cell[int] {
	cells := make([]Cell[int], n)
	for i := range cells {
		i := i
		cells[i] = Cell[int]{
			Key: fmt.Sprintf("cell%d", i),
			Run: func() (int, error) { return i * i, nil },
		}
	}
	return cells
}

// Results must be positional and identical for every worker count.
func TestRunOrderIndependentOfWorkers(t *testing.T) {
	const n = 100
	want, err := Run(squareCells(n), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{0, 2, 3, 4, 16, 200} {
		got, err := Run(squareCells(n), par)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("par=%d: out[%d] = %d, want %d", par, i, got[i], want[i])
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	out, err := Run([]Cell[int]{}, 4)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty grid: out=%v err=%v", out, err)
	}
}

// Each cell must run exactly once regardless of worker count.
func TestRunEachCellOnce(t *testing.T) {
	const n = 64
	var counts [n]atomic.Int64
	cells := make([]Cell[int], n)
	for i := range cells {
		i := i
		cells[i] = Cell[int]{Key: fmt.Sprintf("c%d", i), Run: func() (int, error) {
			counts[i].Add(1)
			return i, nil
		}}
	}
	if _, err := Run(cells, 8); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Errorf("cell %d ran %d times", i, got)
		}
	}
}

// The reported error must be the failing cell with the lowest index
// (first-by-key), not whichever failed first in time — even when a
// later cell fails instantly and an earlier one fails slowly.
func TestRunErrorFirstByKeyNotFirstByTime(t *testing.T) {
	errEarly := errors.New("early failure")
	errLate := errors.New("late failure")
	// Gate cell 2 (the earlier failing index) so it cannot finish until
	// cell 7 (the later index) has already failed.
	lateFailed := make(chan struct{})
	cells := make([]Cell[int], 10)
	for i := range cells {
		i := i
		cells[i] = Cell[int]{Key: fmt.Sprintf("c%d", i), Run: func() (int, error) {
			switch i {
			case 2:
				<-lateFailed
				return 0, errEarly
			case 7:
				close(lateFailed)
				return 0, errLate
			default:
				return i, nil
			}
		}}
	}
	for run := 0; run < 20; run++ {
		lateFailed = make(chan struct{})
		_, err := Run(cells, 4)
		if err == nil {
			t.Fatal("no error reported")
		}
		if !errors.Is(err, errEarly) {
			t.Fatalf("run %d: got %v, want the lowest-index failure %v", run, err, errEarly)
		}
		if got := err.Error(); got != `cellsched: cell "c2": early failure` {
			t.Fatalf("error text %q", got)
		}
	}
}

// Sequential path reports the same first-by-index error.
func TestRunErrorSequentialMatchesParallel(t *testing.T) {
	boom := errors.New("boom")
	cells := make([]Cell[int], 5)
	for i := range cells {
		i := i
		cells[i] = Cell[int]{Key: fmt.Sprintf("c%d", i), Run: func() (int, error) {
			if i >= 3 {
				return 0, boom
			}
			return i, nil
		}}
	}
	seqErr := func() string {
		_, err := Run(cells, 1)
		return err.Error()
	}()
	_, parErr := Run(cells, 4)
	if parErr == nil || parErr.Error() != seqErr {
		t.Fatalf("parallel error %v, sequential %q", parErr, seqErr)
	}
}

// A failure must stop unstarted cells from running. The non-failing
// cells pause briefly so the failing store is visible long before the
// surviving worker could claim the whole grid.
func TestRunCancelsAfterFailure(t *testing.T) {
	var started atomic.Int64
	cells := make([]Cell[int], 1000)
	for i := range cells {
		i := i
		cells[i] = Cell[int]{Key: fmt.Sprintf("c%d", i), Run: func() (int, error) {
			started.Add(1)
			if i == 0 {
				return 0, errors.New("fail fast")
			}
			time.Sleep(time.Millisecond)
			return i, nil
		}}
	}
	if _, err := Run(cells, 2); err == nil {
		t.Fatal("no error")
	}
	if n := started.Load(); n >= 100 {
		t.Errorf("%d cells ran despite an early failure", n)
	}
}

func TestCacheBuildOnceUnderContention(t *testing.T) {
	c := NewCache[string, int]()
	var builds atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("k%d", i%5)
				v, err := c.Get(key, func() (int, error) {
					builds.Add(1)
					return 42, nil
				})
				if err != nil || v != 42 {
					t.Errorf("get %s: v=%d err=%v", key, v, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := builds.Load(); got != 5 {
		t.Errorf("builds = %d, want 5 (one per distinct key)", got)
	}
	st := c.Stats()
	if st.Builds != 5 || st.Misses != 5 {
		t.Errorf("stats builds/misses = %d/%d, want 5/5", st.Builds, st.Misses)
	}
	if st.Hits != 16*100-5 {
		t.Errorf("hits = %d, want %d", st.Hits, 16*100-5)
	}
	if c.Len() != 5 {
		t.Errorf("len = %d, want 5", c.Len())
	}
}

// Build errors are cached: every requester sees the same error and the
// build still runs only once.
func TestCacheErrorCached(t *testing.T) {
	c := NewCache[int, int]()
	boom := errors.New("build exploded")
	var builds atomic.Int64
	for i := 0; i < 3; i++ {
		_, err := c.Get(7, func() (int, error) {
			builds.Add(1)
			return 0, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("get %d: err=%v", i, err)
		}
	}
	if builds.Load() != 1 {
		t.Errorf("failed build ran %d times, want 1", builds.Load())
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}
