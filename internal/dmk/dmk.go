// Package dmk implements the Dynamic Micro-Kernel baseline (Zambreno &
// Steffen, MICRO 2010) the paper compares against in §4.4. On warp
// divergence, the threads that leave the majority path dump their live
// registers to an on-chip spawn memory; a spawner re-forms full warps
// per micro-kernel (branch target) from the queued contexts. The
// regrouping achieves high SIMD utilization for the traversal work, but
// pays for it with explicit spawn-related (SI) data dumping/loading
// instructions and spawn-memory contention — exactly the costs the
// paper identifies as the reason DMK's performance gains lag its
// SIMD-efficiency gains.
package dmk

import (
	"repro/internal/kernels"
	"repro/internal/metrics"
	"repro/internal/simt"
)

// Config holds the DMK parameters.
type Config struct {
	// SpawnBanks is the number of on-chip spawn memory banks (the
	// paper's evaluation configures 32 per SMX).
	SpawnBanks int
	// RegsPerThread is the number of live registers dumped and loaded
	// per respawned thread (17, the live ray variables).
	RegsPerThread int
	// MinOccupancy is the warp occupancy (in lanes) below which the
	// remaining majority threads also dump, ending the warp so the
	// spawner can re-form a full one.
	MinOccupancy int
	// FlushThreshold is how many departing threads a warp accumulates
	// before it writes them to spawn memory in one batched dump (the
	// dump instructions are shared by all departing threads).
	FlushThreshold int
	// MinSpawn is the smallest diverging minority worth dumping to
	// spawn memory; smaller divergences serialize on the ordinary
	// reconvergence stack instead (spawning has a cost, so DMK only
	// spawns micro-kernels when regrouping pays for itself).
	MinSpawn int
}

// DefaultConfig matches the paper's DMK evaluation: 32 spawn banks, 17
// registers per thread; the spawn policy (re-spawn below 20/32
// occupancy, dump minorities of 2+) is calibrated so DMK's efficiency
// gain over the baseline matches the paper's ~29-point improvement.
func DefaultConfig() Config {
	return Config{
		SpawnBanks:     32,
		RegsPerThread:  kernels.RayRegisters,
		MinOccupancy:   20,
		FlushThreshold: 16,
		MinSpawn:       2,
	}
}

// Stats counts DMK activity.
type Stats struct {
	Respawns     int64 // full warps re-formed by the spawner
	ThreadsMoved int64 // thread contexts dumped or loaded
	// QueueHighWater is the maximum spawn-memory occupancy in threads.
	QueueHighWater int64
}

// Add merges o into s.
func (s *Stats) Add(o Stats) {
	s.Respawns += o.Respawns
	s.ThreadsMoved += o.ThreadsMoved
	if o.QueueHighWater > s.QueueHighWater {
		s.QueueHighWater = o.QueueHighWater
	}
}

// Wrapper attaches DMK behaviour to the baseline kernel through the
// engine's divergence hook plus a spawner tick.
type Wrapper struct {
	cfg      Config
	k        *kernels.Aila
	warpSize int

	// queues holds dumped thread slots per micro-kernel (branch target).
	queues map[int][]int32
	queued int

	// pending buffers each warp's departing threads until a batched
	// dump flushes them to spawn memory.
	pending [][]pendingThread

	// spawnFreeAt serializes spawn-memory access: requests queue behind
	// one another, modelling the bank contention the paper measures.
	spawnFreeAt int64

	stats Stats
}

// New creates the per-SMX DMK wrapper.
func New(cfg Config, k *kernels.Aila, numWarps, warpSize int) *Wrapper {
	if cfg.SpawnBanks <= 0 {
		cfg.SpawnBanks = 32
	}
	if cfg.RegsPerThread <= 0 {
		cfg.RegsPerThread = kernels.RayRegisters
	}
	if cfg.MinOccupancy <= 0 {
		cfg.MinOccupancy = warpSize * 3 / 4
	}
	if cfg.FlushThreshold <= 0 {
		cfg.FlushThreshold = warpSize / 2
	}
	return &Wrapper{
		cfg:      cfg,
		k:        k,
		warpSize: warpSize,
		queues:   make(map[int][]int32),
		pending:  make([][]pendingThread, numWarps),
	}
}

// pendingThread is a departing thread awaiting its batched dump.
type pendingThread struct {
	slot   int32
	target int
}

// Hooks returns the engine hooks implementing DMK.
func (w *Wrapper) Hooks() simt.Hooks {
	return simt.Hooks{
		OnDiverge:  w.onDiverge,
		Tick:       w.tick,
		OnWarpDone: w.onWarpDone,
	}
}

// Stats returns a snapshot of the wrapper's counters.
func (w *Wrapper) Stats() Stats { return w.stats }

// RegisterMetrics registers the wrapper's counters under prefix
// ("smx3/dmk") in the unified registry, plus the live spawn-memory
// occupancy as a gauge.
func (w *Wrapper) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.RegisterStruct(prefix, &w.stats)
	reg.Gauge(prefix+"/queued_threads", func() int64 { return int64(w.queued) })
}

// QueuedThreads returns the current spawn-memory occupancy.
func (w *Wrapper) QueuedThreads() int { return w.queued }

// spawnAccess charges one spawn-memory transfer of `threads` contexts.
// The spawn memory is banked, so concurrent transfers overlap; each
// access pays its own bank-serialized duration, plus a bounded queueing
// penalty when it lands while an earlier transfer still occupies the
// banks (the conflict cycles §4.4 quantifies). Returns the stall
// cycles the accessing warp observes.
func (w *Wrapper) spawnAccess(s *simt.SMX, threads int) int {
	words := threads * w.cfg.RegsPerThread
	duration := int64((words + w.cfg.SpawnBanks - 1) / w.cfg.SpawnBanks)
	now := s.Cycle()
	conflict := int64(0)
	if w.spawnFreeAt > now {
		conflict = w.spawnFreeAt - now
		// Banked memory overlaps transfers; the serialization penalty
		// is bounded by a small multiple of the access's own length.
		if max := 3 * duration; conflict > max {
			conflict = max
		}
	}
	w.spawnFreeAt = now + conflict + duration
	s.AddSpawnConflict(conflict + duration)
	return int(conflict + duration)
}

// onDiverge intercepts warp divergence: threads leaving the majority
// path join the warp's pending dump buffer; batched dumps flush them to
// spawn memory. If the surviving majority is too thin, the whole warp
// dumps, ends, and leaves re-formation to the spawner.
func (w *Wrapper) onDiverge(s *simt.SMX, warp, block int, lanes []int, targets []int) bool {
	counts := make(map[int]int, 4)
	for _, t := range targets {
		counts[t]++
	}
	major, majorN := targets[0], 0
	//drslint:allow map-range -- lowest-target tie-break makes the pick order-independent
	for t, n := range counts {
		if n > majorN || (n == majorN && t < major) {
			major, majorN = t, n
		}
	}

	wp := s.Warp(warp)
	minority := len(lanes) - majorN
	dumpAllCheck := majorN < w.cfg.MinOccupancy
	if !dumpAllCheck && minority < w.cfg.MinSpawn {
		// Too small to be worth a spawn: serialize on the IPDOM stack.
		return false
	}
	if wp.StackDepth() > 1 {
		// Threads are parked at an outer reconvergence point; re-forming
		// the warp would drop them. Serialize this divergence too.
		return false
	}
	slots := wp.Slots()
	newSlots := make([]int32, w.warpSize)
	for i := range newSlots {
		newSlots[i] = -1
	}
	dumpAll := majorN < w.cfg.MinOccupancy
	keep := 0
	for i, l := range lanes {
		if !dumpAll && targets[i] == major {
			newSlots[keep] = slots[l]
			keep++
			continue
		}
		w.pending[warp] = append(w.pending[warp], pendingThread{slot: slots[l], target: targets[i]})
	}
	if dumpAll || len(w.pending[warp]) >= w.cfg.FlushThreshold {
		w.flush(s, warp)
	}
	wp.SetMapping(newSlots, major)
	s.RecountLive()
	if dumpAll {
		// The warp just ended; give the spawner a chance to re-form it
		// immediately so drain-phase threads are never stranded.
		w.tick(s, s.Cycle())
	}
	return true
}

// flush writes warp's pending threads to spawn memory in one batched
// dump: 17 store instructions shared by the departing threads, plus the
// serialized spawn-memory time.
func (w *Wrapper) flush(s *simt.SMX, warp int) {
	p := w.pending[warp]
	if len(p) == 0 {
		return
	}
	for _, t := range p {
		w.queues[t.target] = append(w.queues[t.target], t.slot)
	}
	w.queued += len(p)
	if int64(w.queued) > w.stats.QueueHighWater {
		w.stats.QueueHighWater = int64(w.queued)
	}
	w.stats.ThreadsMoved += int64(len(p))
	// Dump stores are posted: they occupy the spawn memory (queueing
	// later accesses behind them) but do not block the issuing warp
	// beyond their instruction slots.
	w.spawnAccess(s, len(p))
	s.InjectInstrs(s.Warp(warp), w.cfg.RegsPerThread, len(p), simt.TagSI, 0)
	w.pending[warp] = p[:0]
}

// onWarpDone flushes a retiring warp's pending threads and lets the
// spawner reuse the warp.
func (w *Wrapper) onWarpDone(s *simt.SMX, warp int) {
	w.flush(s, warp)
	w.tick(s, s.Cycle())
}

// tick is the spawner: it re-forms full warps from the fullest queue
// using retired warps, and drains partial queues once no warp is
// running.
func (w *Wrapper) tick(s *simt.SMX, now int64) {
	if w.queued == 0 {
		return
	}
	for {
		best, bestN := -1, 0
		//drslint:allow map-range -- lowest-target tie-break makes the pick order-independent
		for t, q := range w.queues {
			if len(q) > bestN || (len(q) == bestN && best >= 0 && t < best) {
				best, bestN = t, len(q)
			}
		}
		if best < 0 {
			return
		}
		// Spawn a full warp, or a partial one if nothing else is
		// running (drain phase).
		if bestN < w.warpSize && s.LiveWarps() > 0 {
			return
		}
		var free *simt.Warp
		for i := 0; i < s.NumWarps(); i++ {
			if s.Warp(i).Done() {
				free = s.Warp(i)
				break
			}
		}
		if free == nil {
			return
		}
		n := bestN
		if n > w.warpSize {
			n = w.warpSize
		}
		q := w.queues[best]
		slots := make([]int32, w.warpSize)
		for i := range slots {
			slots[i] = -1
		}
		for i := 0; i < n; i++ {
			slots[i] = q[len(q)-1-i]
		}
		w.queues[best] = q[:len(q)-n]
		if len(w.queues[best]) == 0 {
			delete(w.queues, best)
		}
		w.queued -= n
		free.Resume(slots, best)
		s.RecountLive()
		w.stats.Respawns++
		w.stats.ThreadsMoved += int64(n)
		stall := w.spawnAccess(s, n)
		// Loading is 17 explicit load instructions (SI).
		s.InjectInstrs(free, w.cfg.RegsPerThread, n, simt.TagSI, stall)
	}
}
