package dmk

import (
	"repro/internal/geom"
	"repro/internal/kernels"
	"repro/internal/progcheck"
	"repro/internal/reorder"
	"repro/internal/simt"
)

// Policy adapts the DMK baseline to the reorder.Policy interface: the
// non-speculative while-while kernel (micro-kernels respawn mid-loop,
// which speculative postponing would fight) wrapped by the divergence
// hook + spawner. Spawn costs are charged in-engine (SI instructions,
// spawn-memory conflicts), so the generic CostCycles stays zero.
type Policy struct {
	Cfg Config
}

// NewPolicy wraps a DMK configuration as a policy.
func NewPolicy(cfg Config) *Policy { return &Policy{Cfg: cfg} }

// Name implements reorder.Policy.
func (p *Policy) Name() string { return "dmk" }

// Summary implements reorder.Policy.
func (p *Policy) Summary() string {
	return "dynamic micro-kernels: divergent threads dump to spawn memory, spawner re-forms full warps"
}

// Validate implements reorder.Policy. The constructor defaults every
// non-positive parameter, so any configuration is runnable; reject
// only negatives, which signal caller confusion rather than "use the
// default".
func (p *Policy) Validate() error {
	return nonNegative(map[string]int{
		"SpawnBanks":     p.Cfg.SpawnBanks,
		"RegsPerThread":  p.Cfg.RegsPerThread,
		"MinOccupancy":   p.Cfg.MinOccupancy,
		"FlushThreshold": p.Cfg.FlushThreshold,
		"MinSpawn":       p.Cfg.MinSpawn,
	})
}

// Warps implements reorder.Policy: 0 accepts the harness warp count.
func (p *Policy) Warps() int { return 0 }

// Caps implements reorder.Policy.
func (p *Policy) Caps() progcheck.Caps { return progcheck.Caps{} }

// NewSMX implements reorder.Policy.
func (p *Policy) NewSMX(env reorder.Env) (reorder.Instance, error) {
	// DMK runs the plain non-speculative kernel regardless of the
	// harness's Aila options: the MICRO 2010 baseline respawns
	// micro-kernels at divergence, which replaces the speculative
	// postponing heuristic rather than composing with it.
	acfg := kernels.AilaConfig{SkipVerify: env.SkipProgCheck}
	k := kernels.NewAila(env.Data, env.Pool, env.Cfg.MaxWarpsPerSMX*env.Cfg.WarpSize, acfg)
	if env.Verify != nil {
		if err := env.Verify(k); err != nil {
			return nil, err
		}
	}
	w := New(p.Cfg, k, env.Cfg.MaxWarpsPerSMX, env.Cfg.WarpSize)
	if env.Collector != nil {
		w.RegisterMetrics(env.Collector.Registry, env.MetricsPrefix)
	}
	return &instance{k: k, w: w}, nil
}

// instance is one SMX's DMK attachment.
type instance struct {
	k *kernels.Aila
	w *Wrapper
}

func (i *instance) Program() simt.SMXProgram {
	return simt.SMXProgram{Kernel: i.k, Hooks: i.w.Hooks()}
}

func (i *instance) Hits() []geom.Hit { return i.k.Hits }

// TypedStats implements reorder.TypedStatser with the DMK Stats.
func (i *instance) TypedStats() any { return i.w.Stats() }

// ReorderStats implements reorder.StatsReporter.
func (i *instance) ReorderStats() reorder.Stats {
	st := i.w.Stats()
	return reorder.Stats{Reorders: st.Respawns, RaysMoved: st.ThreadsMoved}
}

// nonNegative rejects the first negative parameter by name, in sorted
// key order so the error is deterministic.
func nonNegative(fields map[string]int) error {
	var bad string
	//drslint:allow map-range -- lowest-name tie-break makes the pick order-independent
	for name, v := range fields {
		if v < 0 && (bad == "" || name < bad) {
			bad = name
		}
	}
	if bad != "" {
		return &ConfigError{Field: bad, Value: fields[bad]}
	}
	return nil
}

// ConfigError reports a negative DMK parameter.
type ConfigError struct {
	Field string
	Value int
}

func (e *ConfigError) Error() string {
	return "dmk: " + e.Field + " must not be negative"
}
