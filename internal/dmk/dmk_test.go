package dmk

import (
	"math/rand"
	"testing"

	"repro/internal/bvh"
	"repro/internal/geom"
	"repro/internal/kernels"
	"repro/internal/memsys"
	"repro/internal/scene"
	"repro/internal/simt"
	"repro/internal/statcheck"
	"repro/internal/vec"
)

func buildDMK(t testing.TB, nrays, warps int) (*simt.SMX, *Wrapper, *kernels.Aila, *kernels.Pool, *bvh.BVH) {
	t.Helper()
	s := scene.Generate(scene.ConferenceRoom, 1200)
	bv, err := bvh.Build(s.Tris, bvh.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	data := kernels.NewSceneData(bv)
	rnd := rand.New(rand.NewSource(3))
	rays := make([]geom.Ray, nrays)
	for i := range rays {
		o := vec.New(float32(rnd.Float64())*18+1, float32(rnd.Float64())*5+0.3, float32(rnd.Float64())*10+1)
		d := vec.New(float32(rnd.Float64()*2-1), float32(rnd.Float64()*2-1), float32(rnd.Float64()*2-1)).Norm()
		rays[i] = geom.NewRay(o, d)
	}
	pool := &kernels.Pool{Rays: rays}
	k := kernels.NewAila(data, pool, warps*32, kernels.AilaConfig{})
	w := New(DefaultConfig(), k, warps, 32)
	cfg := simt.DefaultConfig()
	cfg.NumSMX = 1
	cfg.MaxWarpsPerSMX = warps
	cfg.MaxCycles = 1 << 24
	l2 := memsys.NewL2(cfg.Mem)
	smx, err := simt.NewSMX(0, cfg, k, w.Hooks(), l2)
	if err != nil {
		t.Fatal(err)
	}
	smx.LaunchAll(0)
	return smx, w, k, pool, bv
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.SpawnBanks != 32 {
		t.Errorf("spawn banks = %d", cfg.SpawnBanks)
	}
	if cfg.RegsPerThread != kernels.RayRegisters {
		t.Errorf("regs per thread = %d", cfg.RegsPerThread)
	}
}

func TestDMKTracesCorrectly(t *testing.T) {
	smx, w, k, pool, bv := buildDMK(t, 1500, 8)
	st, err := smx.Run()
	if err != nil {
		t.Fatal(err)
	}
	if pool.Remaining() != 0 {
		t.Fatalf("pool not drained")
	}
	if w.QueuedThreads() != 0 {
		t.Errorf("threads stranded in spawn memory: %d", w.QueuedThreads())
	}
	bad := 0
	for i, r := range pool.Rays {
		want := bv.Intersect(r, nil)
		got := k.Hits[i]
		if got.TriIndex != want.TriIndex {
			if got.TriIndex >= 0 && want.TriIndex >= 0 {
				d := got.T - want.T
				if d < 1e-4 && d > -1e-4 {
					continue
				}
			}
			bad++
		}
	}
	if bad > 0 {
		t.Errorf("%d/%d wrong hits", bad, len(pool.Rays))
	}
	if w.Stats().Respawns == 0 {
		t.Errorf("no respawns on incoherent rays")
	}
	if st.SIInstrs == 0 {
		t.Errorf("no SI instructions recorded")
	}
	if st.SpawnConflictCycles == 0 {
		t.Errorf("no spawn contention recorded")
	}
}

func TestDMKImprovesEfficiencyOverBaseline(t *testing.T) {
	// Run the same incoherent workload with and without DMK.
	smxD, _, _, _, _ := buildDMK(t, 2000, 8)
	stD, err := smxD.Run()
	if err != nil {
		t.Fatal(err)
	}

	s := scene.Generate(scene.ConferenceRoom, 1200)
	bv, err := bvh.Build(s.Tris, bvh.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	data := kernels.NewSceneData(bv)
	rnd := rand.New(rand.NewSource(3))
	rays := make([]geom.Ray, 2000)
	for i := range rays {
		o := vec.New(float32(rnd.Float64())*18+1, float32(rnd.Float64())*5+0.3, float32(rnd.Float64())*10+1)
		d := vec.New(float32(rnd.Float64()*2-1), float32(rnd.Float64()*2-1), float32(rnd.Float64()*2-1)).Norm()
		rays[i] = geom.NewRay(o, d)
	}
	pool := &kernels.Pool{Rays: rays}
	k := kernels.NewAila(data, pool, 8*32, kernels.AilaConfig{})
	cfg := simt.DefaultConfig()
	cfg.NumSMX = 1
	cfg.MaxWarpsPerSMX = 8
	cfg.MaxCycles = 1 << 24
	l2 := memsys.NewL2(cfg.Mem)
	smxB, err := simt.NewSMX(0, cfg, k, simt.Hooks{}, l2)
	if err != nil {
		t.Fatal(err)
	}
	smxB.LaunchAll(0)
	stB, err := smxB.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stD.SIMDEfficiency(32) <= stB.SIMDEfficiency(32) {
		t.Errorf("DMK efficiency %.3f not above baseline %.3f",
			stD.SIMDEfficiency(32), stB.SIMDEfficiency(32))
	}
}

func TestStatsAdd(t *testing.T) {
	var a, b Stats
	a.Respawns = 2
	a.QueueHighWater = 5
	b.Respawns = 3
	b.ThreadsMoved = 7
	b.QueueHighWater = 9
	a.Add(b)
	if a.Respawns != 5 || a.ThreadsMoved != 7 || a.QueueHighWater != 9 {
		t.Errorf("merged = %+v", a)
	}
}

// TestStatsAddCoverage pins that dmk.Stats.Add merges every numeric
// field (QueueHighWater merges as a max and must still be covered).
func TestStatsAddCoverage(t *testing.T) {
	if err := statcheck.AddCovers(Stats{}); err != nil {
		t.Error(err)
	}
}
