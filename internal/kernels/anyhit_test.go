package kernels

import (
	"testing"

	"repro/internal/scene"
	"repro/internal/simt"
)

// The any-hit Aila kernel must agree with the reference occlusion query
// on whether each ray hits anything.
func TestAilaAnyHitMatchesReference(t *testing.T) {
	data, bv := testData(t, scene.ConferenceRoom, 1200)
	rays := randomRays(600, 17)
	pool := &Pool{Rays: rays}
	k := NewAila(data, pool, 4*32, AilaConfig{Speculative: true, AnyHit: true})
	runKernel(t, k, 4, nil)
	for i, r := range rays {
		want := bv.IntersectAny(r, nil)
		got := k.Hits[i].TriIndex >= 0
		if got != want {
			t.Fatalf("ray %d: occluded=%v, reference=%v", i, got, want)
		}
	}
}

// Any-hit queries must test strictly fewer triangles than closest-hit
// on average (they stop at the first hit).
func TestAnyHitDoesLessWork(t *testing.T) {
	data, _ := testData(t, scene.ConferenceRoom, 1500)
	rays := randomRays(1500, 19)
	run := func(anyHit bool) int64 {
		pool := &Pool{Rays: rays}
		k := NewAila(data, pool, 8*32, AilaConfig{Speculative: true, AnyHit: anyHit})
		st := runKernel(t, k, 8, nil)
		return st.WarpInstrs
	}
	closest := run(false)
	occl := run(true)
	if occl >= closest {
		t.Errorf("any-hit issued %d instrs, closest-hit %d — expected fewer", occl, closest)
	}
}

// The while-if kernel's any-hit mode must agree with the reference when
// driven through the single-thread state machine.
func TestWhileIfAnyHitMatchesReference(t *testing.T) {
	data, bv := testData(t, scene.CrytekSponza, 1200)
	rays := randomRays(60, 23)
	pool := &Pool{Rays: rays}
	k := NewWhileIfConfigured(data, pool, 32, WhileIfConfig{AnyHit: true})
	var res simt.StepResult
	slot := int32(0)
	for iter := 0; iter < 5_000_000; iter++ {
		k.Step(slot, WiRdctrl, &res)
		if res.Next == simt.BlockExit {
			break
		}
		block := res.Next
		for {
			k.Step(slot, block, &res)
			if res.Next == WiRdctrl {
				break
			}
			block = res.Next
		}
	}
	if pool.Remaining() != 0 {
		t.Fatalf("pool not drained")
	}
	for i, r := range rays {
		want := bv.IntersectAny(r, nil)
		got := k.Hits[i].TriIndex >= 0
		if got != want {
			t.Fatalf("ray %d: occluded=%v, reference=%v", i, got, want)
		}
	}
}
