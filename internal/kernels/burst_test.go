package kernels

import (
	"testing"

	"repro/internal/scene"
	"repro/internal/simt"
)

// Every burst configuration must still produce reference-correct hits
// when driven through the single-thread state machine.
func TestWhileIfBurstConfigsCorrect(t *testing.T) {
	data, bv := testData(t, scene.ConferenceRoom, 1000)
	rays := randomRays(40, 13)
	for _, burst := range []int{1, 2, 8, 64} {
		pool := &Pool{Rays: rays}
		k := NewWhileIfConfigured(data, pool, 32, WhileIfConfig{InnerBurst: burst, LeafBurst: burst})
		var res simt.StepResult
		slot := int32(0)
		for iter := 0; iter < 5_000_000; iter++ {
			k.Step(slot, WiRdctrl, &res)
			if res.Next == simt.BlockExit {
				break
			}
			block := res.Next
			for res.Next != WiRdctrl || block != WiRdctrl {
				k.Step(slot, block, &res)
				if res.Next == WiRdctrl {
					break
				}
				block = res.Next
			}
		}
		if pool.Remaining() != 0 {
			t.Fatalf("burst %d: pool not drained", burst)
		}
		for i, r := range rays {
			want := bv.Intersect(r, nil)
			if k.Hits[i].TriIndex != want.TriIndex {
				if k.Hits[i].TriIndex >= 0 && want.TriIndex >= 0 && absf(k.Hits[i].T-want.T) < 1e-4 {
					continue
				}
				t.Errorf("burst %d ray %d: got %d want %d", burst, i, k.Hits[i].TriIndex, want.TriIndex)
			}
		}
	}
}

// Larger bursts must reduce the number of rdctrl round trips.
func TestLargerBurstsFewerRdctrlRounds(t *testing.T) {
	data, _ := testData(t, scene.ConferenceRoom, 1000)
	rays := randomRays(60, 21)
	rounds := func(burst int) int {
		pool := &Pool{Rays: rays}
		k := NewWhileIfConfigured(data, pool, 32, WhileIfConfig{InnerBurst: burst, LeafBurst: burst})
		var res simt.StepResult
		n := 0
		slot := int32(0)
		for iter := 0; iter < 5_000_000; iter++ {
			k.Step(slot, WiRdctrl, &res)
			n++
			if res.Next == simt.BlockExit {
				break
			}
			block := res.Next
			for {
				k.Step(slot, block, &res)
				if res.Next == WiRdctrl {
					break
				}
				block = res.Next
			}
		}
		return n
	}
	small := rounds(1)
	big := rounds(16)
	if big >= small {
		t.Errorf("burst 16 used %d rounds, burst 1 used %d", big, small)
	}
}

func TestWhileIfConfigDefaults(t *testing.T) {
	c := WhileIfConfig{}.withDefaults()
	if c.InnerBurst != InnerBurst || c.LeafBurst != LeafBurst {
		t.Errorf("defaults = %+v", c)
	}
	c = WhileIfConfig{InnerBurst: 7, LeafBurst: 9}.withDefaults()
	if c.InnerBurst != 7 || c.LeafBurst != 9 {
		t.Errorf("explicit config changed: %+v", c)
	}
}
