package kernels

import (
	"repro/internal/geom"
	"repro/internal/progcheck"
	"repro/internal/simt"
)

// Block ids of the while-if kernel (Kernel 1 of the paper). The main
// loop reads a control value via the gated rdctrl block, then executes
// exactly one of the three if-bodies, stores the next ray state, and
// returns to rdctrl.
const (
	// WiRdctrl is the gated control block; the DRS hardware may remap
	// the warp to a different row of rays here, or stall its issue.
	WiRdctrl = 0
	// WiFetch is the first if-body: fetch a new ray and initialize.
	WiFetch = 1
	// WiInner is the second if-body: traverse one inner node.
	WiInner = 2
	// WiLeaf is the third if-body: ray-triangle intersection tests.
	WiLeaf = 3
)

// Burst bounds: each if-body invocation processes up to this many
// traversal steps before storing reg_ray_state and returning to
// rdctrl. The paper's compiled main loop is "over 300 lines of
// instructions" with a single rdctrl; bounded bursts reproduce that
// ratio while leaving the minor intra-body divergence the paper says
// keeps the DRS below 100% SIMD efficiency.
const (
	InnerBurst = 4
	LeafBurst  = 4
)

// WhileIfConfig tunes Kernel 1's if-body burst bounds (the DESIGN.md
// leaf-unroll ablation). Zero fields use the defaults above.
type WhileIfConfig struct {
	InnerBurst int
	LeafBurst  int
	// AnyHit makes Kernel 1 an occlusion (shadow-ray) kernel.
	AnyHit bool
	// SkipVerify skips the constructor-time progcheck verification
	// (for tests that build deliberately malformed variants).
	SkipVerify bool
}

func (c WhileIfConfig) withDefaults() WhileIfConfig {
	if c.InnerBurst <= 0 {
		c.InnerBurst = InnerBurst
	}
	if c.LeafBurst <= 0 {
		c.LeafBurst = LeafBurst
	}
	return c
}

// WhileIf is Kernel 1: Aila's kernel restructured into the layered
// while-if form, with speculative traversal removed (§4.1). One
// instance runs per SMX; the DRS control (internal/core) owns the
// warp-to-row mapping and consults the per-slot States.
type WhileIf struct {
	data *SceneData
	pool *Pool
	cfg  WhileIfConfig

	ctxs []Ctx
	// Hits receives the committed hit for every pool ray index.
	Hits []geom.Hit

	// Listener, if set, is notified of every ray state transition (the
	// DRS control mirrors these into its ray state table counters).
	Listener func(slot int32, old, new State)

	blocks []simt.BlockInfo
}

// setState transitions a slot's ray state, notifying the listener.
func (k *WhileIf) setState(slot int32, s State) {
	c := &k.ctxs[slot]
	if c.State == s {
		return
	}
	old := c.State
	c.State = s
	if k.Listener != nil {
		k.Listener(slot, old, s)
	}
}

// NewWhileIf creates the while-if kernel with the given number of ray
// slots (rows * warpSize; the DRS organizes slots into rows).
func NewWhileIf(data *SceneData, pool *Pool, slots int) *WhileIf {
	return NewWhileIfConfigured(data, pool, slots, WhileIfConfig{})
}

// NewWhileIfConfigured is NewWhileIf with explicit burst bounds.
func NewWhileIfConfigured(data *SceneData, pool *Pool, slots int, cfg WhileIfConfig) *WhileIf {
	k := &WhileIf{
		data: data,
		pool: pool,
		cfg:  cfg.withDefaults(),
		ctxs: make([]Ctx, slots),
		Hits: make([]geom.Hit, len(pool.Rays)),
	}
	for i := range k.Hits {
		k.Hits[i] = geom.NoHit
	}
	for i := range k.ctxs {
		k.ctxs[i].State = StateFetch
		k.ctxs[i].Pending = RefNone
		k.ctxs[i].CurLeaf = RefNone
		k.ctxs[i].Cur = RefNone
	}
	k.blocks = []simt.BlockInfo{
		WiRdctrl: {Name: "rdctrl", Insts: 3, SrcOps: 1, Gated: true, Tag: simt.TagCtrl, Reconv: WiRdctrl},
		WiFetch:  {Name: "fetch", Insts: 18, MemInsts: 1, SrcOps: 2},
		WiInner:  {Name: "inner", Insts: 26, MemInsts: 2, SrcOps: 3, Reconv: WiRdctrl},
		WiLeaf:   {Name: "leaf", Insts: 18, MemInsts: 2, SrcOps: 3, Reconv: WiRdctrl},
	}
	if !cfg.SkipVerify {
		// Kernel 1's rdctrl is gated and TagCtrl-classified, which only
		// a DRS-capable architecture can service.
		progcheck.MustVerify("whileif", k, progcheck.Caps{Gate: true, CtrlTag: true})
	}
	return k
}

// whileIfSuccs is the static CFG. Every body block returns to rdctrl —
// the dispatch loop reconverges on itself (Reconv: WiRdctrl), which the
// verifier accepts under the loop-header rule since the textbook
// post-dominator of a persistent dispatch loop is the kernel exit.
var whileIfSuccs = [][]int{
	WiRdctrl: {WiFetch, WiInner, WiLeaf, simt.BlockExit},
	WiFetch:  {WiRdctrl},
	WiInner:  {WiInner, WiRdctrl},
	WiLeaf:   {WiLeaf, WiRdctrl},
}

// Successors implements simt.StaticCFG.
func (k *WhileIf) Successors(block int) []int { return whileIfSuccs[block] }

// Blocks implements simt.Kernel.
func (k *WhileIf) Blocks() []simt.BlockInfo { return k.blocks }

// Entry implements simt.Kernel: every warp starts at rdctrl.
func (k *WhileIf) Entry() int { return WiRdctrl }

// Ctx returns the context of a slot.
func (k *WhileIf) Ctx(slot int32) *Ctx { return &k.ctxs[slot] }

// NumSlots returns the number of ray slots.
func (k *WhileIf) NumSlots() int { return len(k.ctxs) }

// StateOf returns the ray traversal state of a slot — the DRS ray
// state table reads this (it is the reg_ray_state value).
func (k *WhileIf) StateOf(slot int32) State {
	if slot < 0 {
		return StateEmpty
	}
	return k.ctxs[slot].State
}

// Pool returns the SMX's ray pool.
func (k *WhileIf) Pool() *Pool { return k.pool }

// Step implements simt.Kernel.
func (k *WhileIf) Step(slot int32, block int, res *simt.StepResult) {
	c := &k.ctxs[slot]
	res.NMem = 0
	switch block {
	case WiRdctrl:
		// The DRS gate has already ensured the row's states are
		// uniform; each lane branches by its own state (identical
		// across the warp).
		c.Burst = 0
		switch c.State {
		case StateFetch:
			res.Next = WiFetch
		case StateInner:
			res.Next = WiInner
		case StateLeaf:
			res.Next = WiLeaf
		default:
			// Empty slots are masked off by the gate; if one slips
			// through, retire it.
			res.Next = simt.BlockExit
		}

	case WiFetch:
		r, idx, ok := k.pool.Fetch()
		if !ok {
			c.HasRay = false
			k.setState(slot, StateEmpty)
			res.Next = WiRdctrl
			return
		}
		c.initRay(r, idx)
		c.State = StateFetch // undo initRay's direct write; notify below
		k.setState(slot, StateInner)
		res.Mem[0] = rayLoad(k.data, idx)
		res.NMem = 1
		res.Next = WiRdctrl

	case WiInner:
		addr := c.nodeStep(k.data)
		res.Mem[0] = texAccess(addr, 64)
		res.NMem = 1
		k.settleAfterTraversal(slot, c, res)
		c.Burst++
		// Keep traversing within this if-body while the ray stays in
		// the inner state and the burst bound allows; lanes that leave
		// early wait at the rdctrl reconvergence point (the minor
		// intra-body divergence of §4.4).
		if c.State == StateInner && c.Burst < int32(k.cfg.InnerBurst) {
			res.Next = WiInner
		} else {
			res.Next = WiRdctrl
		}

	case WiLeaf:
		res.Next = WiRdctrl
		if c.CurLeaf == RefNone {
			// First visit to this leaf: latch it from Cur.
			ref := c.Cur
			c.Cur = c.pop()
			if !c.beginLeaf(ref) {
				// Empty leaf: settle the state and go back to control.
				k.settleAfterTraversal(slot, c, res)
				return
			}
		}
		addr, more := c.triStep(k.data)
		res.Mem[0] = texAccess(addr, 48)
		res.NMem = 1
		c.Burst++
		if k.cfg.AnyHit && c.Hit.TriIndex >= 0 {
			// Occlusion query: the first hit settles the ray.
			c.abortTraversal()
			k.settleAfterTraversal(slot, c, res)
			return
		}
		if more {
			// State stays leaf; continue within the body while the
			// burst bound allows.
			if c.Burst < int32(k.cfg.LeafBurst) {
				res.Next = WiLeaf
			}
			return
		}
		c.CurLeaf = RefNone
		k.settleAfterTraversal(slot, c, res)
		if c.State == StateLeaf && c.Burst < int32(k.cfg.LeafBurst) {
			res.Next = WiLeaf // next leaf, same if-body invocation
		}

	default:
		panic("kernels: whileif: bad block")
	}
}

// settleAfterTraversal inspects Cur after a traversal step and stores
// the next ray state (the reg_ray_state write at the end of each
// if-body). A completed ray commits its hit here and enters the fetch
// state.
func (k *WhileIf) settleAfterTraversal(slot int32, c *Ctx, res *simt.StepResult) {
	switch {
	case c.Cur == RefNone:
		// Ray finished: store the hit.
		k.Hits[c.RayIndex] = c.finalHit()
		if res.NMem < 2 {
			res.Mem[res.NMem] = dataAccess(k.data.HitAddr(c.RayIndex), 16)
			res.NMem++
		}
		c.HasRay = false
		k.setState(slot, StateFetch)
	case isLeaf(c.Cur):
		k.setState(slot, StateLeaf)
	default:
		k.setState(slot, StateInner)
	}
}
