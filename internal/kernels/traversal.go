// Package kernels implements the ray traversal kernels the paper
// evaluates as basic-block programs for the simt engine:
//
//   - Aila: the software baseline — the "while-while" kernel with
//     persistent threads, speculative traversal (postponed leaves with a
//     warp-wide break vote) and terminated-ray replacement, per Aila et
//     al.'s Kepler kernel that the paper uses as its comparison point.
//   - WhileIf: Kernel 1 of the paper — the layered "while-if" kernel
//     driven by the rdctrl instruction, built on Aila's kernel by
//     removing speculative traversal; it is the kernel the DRS hardware
//     (internal/core) schedules.
//
// Both kernels share the per-thread traversal semantics in this file,
// operating on the flattened BVH from internal/bvh and on per-slot
// contexts that stand in for the 17 live ray registers of the paper.
package kernels

import (
	"fmt"
	"math"

	"repro/internal/bvh"
	"repro/internal/geom"
	"repro/internal/memsys"
	"repro/internal/simt"
	"repro/internal/vec"
)

// RayRegisters is the number of live per-ray register variables the
// paper reports for Kernel 1 ("the variables of a ray are composed of
// 17 integers and floats"); the DRS swap engine moves this many values
// per shuffled ray.
const RayRegisters = 17

// RefNone is the absent child reference.
const RefNone = int64(math.MinInt64)

// Child references pack either an inner node index (>= 0) or a leaf
// (first triangle, count) pair into an int64.
func innerChild(idx int32) int64 { return int64(idx) }

func leafChild(first, count int32) int64 {
	return -((int64(first) << 16) | int64(count)) - 1
}

func isLeaf(ref int64) bool { return ref < 0 && ref != RefNone }

func leafBounds(ref int64) (first, count int32) {
	v := -(ref + 1)
	return int32(v >> 16), int32(v & 0xffff)
}

// childOf converts a bvh.Node child encoding to a child reference.
func childOf(idx, count int32) int64 {
	if idx >= 0 {
		return innerChild(idx)
	}
	return leafChild(^idx, count)
}

// maxTravStack bounds the per-ray traversal stack.
const maxTravStack = 96

// Ctx is the per-slot traversal context: the live state of one ray,
// corresponding to the ray registers the DRS shuffles.
type Ctx struct {
	HasRay bool
	Ray    geom.Ray
	InvDir vec.V3
	Hit    geom.Hit

	Stack [maxTravStack]int64
	SP    int

	// Cur is the next child reference to visit (inner or leaf).
	Cur int64
	// Pending is a postponed leaf (speculative traversal, Aila only).
	Pending int64
	// CurLeaf and LeafIdx track the leaf currently being tested.
	CurLeaf int64
	LeafIdx int32

	// RayIndex is the ray's index in the pool, for result storage.
	RayIndex int32

	// Burst counts the traversal steps taken in the current if-body
	// invocation of the while-if kernel; bodies process up to a bounded
	// burst of nodes/triangles per rdctrl round.
	Burst int32

	// State is the ray traversal state the DRS ray state table tracks
	// (the reg_ray_state special register of the paper).
	State State
}

// State is the ray traversal state (§3.2.2 of the paper).
type State uint8

// Ray traversal states.
const (
	// StateEmpty marks a slot holding no work (the pool is exhausted or
	// the slot was never filled).
	StateEmpty State = iota
	// StateFetch marks a terminated slot that must fetch a new ray.
	StateFetch
	// StateInner marks a ray that must traverse inner nodes.
	StateInner
	// StateLeaf marks a ray that must test leaf objects.
	StateLeaf
)

func (s State) String() string {
	switch s {
	case StateEmpty:
		return "empty"
	case StateFetch:
		return "fetch"
	case StateInner:
		return "inner"
	case StateLeaf:
		return "leaf"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// SceneData is the GPU-resident scene: the flattened BVH plus the
// simulated base addresses of each array, used to generate memory
// traffic. Nodes and triangles are read through the L1 texture cache,
// matching Aila's kernel.
type SceneData struct {
	BVH *bvh.BVH

	NodeBase uint64
	TriBase  uint64
	RayBase  uint64
	HitBase  uint64
}

// NewSceneData lays out the scene in the simulated address space.
func NewSceneData(b *bvh.BVH) *SceneData {
	const base = uint64(0x1000_0000)
	nodeBytes := uint64(len(b.Nodes)) * bvh.NodeBytes
	triBytes := uint64(len(b.Tris)) * bvh.TriBytes
	return &SceneData{
		BVH:      b,
		NodeBase: base,
		TriBase:  base + align(nodeBytes),
		RayBase:  base + align(nodeBytes) + align(triBytes),
		HitBase:  base + align(nodeBytes) + align(triBytes) + 1<<30,
	}
}

func align(n uint64) uint64 { return (n + 4095) &^ 4095 }

// NodeAddr returns the simulated address of inner node i.
func (d *SceneData) NodeAddr(i int32) uint64 {
	return d.NodeBase + uint64(i)*bvh.NodeBytes
}

// TriAddr returns the simulated address of reordered triangle i.
func (d *SceneData) TriAddr(i int32) uint64 {
	return d.TriBase + uint64(i)*bvh.TriBytes
}

// RayAddr returns the simulated address of pool ray i.
func (d *SceneData) RayAddr(i int32) uint64 {
	return d.RayBase + uint64(i)*32
}

// HitAddr returns the simulated address of hit record i.
func (d *SceneData) HitAddr(i int32) uint64 {
	return d.HitBase + uint64(i)*16
}

// Pool is one SMX's slice of the ray stream, consumed by terminated
// threads. Each SMX owns a pool, so no synchronization is needed.
type Pool struct {
	Rays []geom.Ray
	next int
}

// Fetch pops the next ray, returning its pool index, or ok=false when
// the pool is dry.
func (p *Pool) Fetch() (geom.Ray, int32, bool) {
	if p.next >= len(p.Rays) {
		return geom.Ray{}, 0, false
	}
	r := p.Rays[p.next]
	i := int32(p.next)
	p.next++
	return r, i, true
}

// Remaining returns the number of unfetched rays.
func (p *Pool) Remaining() int { return len(p.Rays) - p.next }

// initRay loads a fresh ray into the context.
func (c *Ctx) initRay(r geom.Ray, index int32) {
	c.HasRay = true
	c.Ray = r
	c.InvDir = r.InvDir()
	c.Hit = geom.NoHit
	c.Hit.T = r.TMax
	c.SP = 0
	c.Cur = innerChild(0) // root
	c.Pending = RefNone
	c.CurLeaf = RefNone
	c.LeafIdx = 0
	c.RayIndex = index
	c.State = StateInner
}

// terminate clears the ray, leaving the final hit for commit.
func (c *Ctx) terminate() {
	c.HasRay = false
	c.State = StateFetch
}

// push adds a child reference to the traversal stack.
func (c *Ctx) push(ref int64) {
	if c.SP >= maxTravStack {
		panic("kernels: traversal stack overflow")
	}
	c.Stack[c.SP] = ref
	c.SP++
}

// pop removes and returns the top reference, or RefNone if empty.
func (c *Ctx) pop() int64 {
	if c.SP == 0 {
		return RefNone
	}
	c.SP--
	return c.Stack[c.SP]
}

// nodeStep visits the inner node in c.Cur: tests both children and
// advances Cur (near child), pushing the far child. Returns the fetch
// address of the visited node. On return, Cur holds the next reference
// (inner, leaf, or RefNone when traversal is exhausted).
func (c *Ctx) nodeStep(d *SceneData) uint64 {
	idx := int32(c.Cur)
	n := &d.BVH.Nodes[idx]
	r := c.Ray
	r.TMax = c.Hit.T
	tl, okl := n.LBounds.IntersectRay(r, c.InvDir)
	tr, okr := n.RBounds.IntersectRay(r, c.InvDir)
	lRef := childOf(n.Left, n.LCount)
	rRef := childOf(n.Right, n.RCount)
	switch {
	case okl && okr:
		near, far := lRef, rRef
		if tr < tl {
			near, far = rRef, lRef
		}
		c.push(far)
		c.Cur = near
	case okl:
		c.Cur = lRef
	case okr:
		c.Cur = rRef
	default:
		c.Cur = c.pop()
	}
	return d.NodeAddr(idx)
}

// triStep tests triangle LeafIdx of the current leaf, advancing the
// index. Returns the triangle fetch address and whether the leaf has
// more triangles after this one.
func (c *Ctx) triStep(d *SceneData) (addr uint64, more bool) {
	first, count := leafBounds(c.CurLeaf)
	i := first + c.LeafIdx
	addr = d.TriAddr(i)
	if t, u, v, ok := d.BVH.Tris[i].Intersect(c.Ray, c.Hit.T); ok {
		c.Hit.T = t
		c.Hit.U = u
		c.Hit.V = v
		c.Hit.TriIndex = d.BVH.TriIndex[i]
	}
	c.LeafIdx++
	return addr, c.LeafIdx < count
}

// beginLeaf arranges for the context to start testing the given leaf.
// Empty (zero-count) leaves are skipped, returning false.
func (c *Ctx) beginLeaf(ref int64) bool {
	_, count := leafBounds(ref)
	if count == 0 {
		return false
	}
	c.CurLeaf = ref
	c.LeafIdx = 0
	return true
}

// abortTraversal clears all remaining traversal work (used by any-hit
// queries once occlusion is established).
func (c *Ctx) abortTraversal() {
	c.SP = 0
	c.Cur = RefNone
	c.Pending = RefNone
	c.CurLeaf = RefNone
	c.LeafIdx = 0
}

// finalHit returns the hit to commit (NoHit if nothing was found).
func (c *Ctx) finalHit() geom.Hit {
	if c.Hit.TriIndex < 0 {
		return geom.NoHit
	}
	return c.Hit
}

// texAccess builds a texture-path memory access.
func texAccess(addr uint64, bytes uint32) simt.MemAccess {
	return simt.MemAccess{Addr: addr, Bytes: bytes, Space: memsys.Tex}
}

// dataAccess builds a data-path memory access.
func dataAccess(addr uint64, bytes uint32) simt.MemAccess {
	return simt.MemAccess{Addr: addr, Bytes: bytes, Space: memsys.Data}
}
