package kernels

import (
	"testing"

	"repro/internal/progcheck"
	"repro/internal/scene"
	"repro/internal/simt"
)

// TestSeedKernelsVerifyClean locks the repo's shipped kernel programs
// to a clean progcheck status: every variant passes static verification
// and a dynamic exploration over a real scene with no findings. A
// regression here means a block-table or Step edit broke a declared
// invariant (see the "Authoring kernels" section of DESIGN.md).
func TestSeedKernelsVerifyClean(t *testing.T) {
	data, _ := testData(t, scene.ConferenceRoom, 1500)
	const slots = 128
	rays := randomRays(slots, 7)

	drs := progcheck.Caps{Gate: true, CtrlTag: true}
	type variant struct {
		name  string
		caps  progcheck.Caps
		build func(pool *Pool) simt.Kernel
	}
	variants := []variant{
		{"aila", progcheck.Caps{}, func(p *Pool) simt.Kernel {
			return NewAila(data, p, slots, AilaConfig{Speculative: true})
		}},
		{"aila-nospec", progcheck.Caps{}, func(p *Pool) simt.Kernel {
			return NewAila(data, p, slots, AilaConfig{})
		}},
		{"aila-anyhit", progcheck.Caps{}, func(p *Pool) simt.Kernel {
			return NewAila(data, p, slots, AilaConfig{Speculative: true, AnyHit: true})
		}},
		{"whileif", drs, func(p *Pool) simt.Kernel {
			return NewWhileIf(data, p, slots)
		}},
		{"whileif-anyhit", drs, func(p *Pool) simt.Kernel {
			return NewWhileIfConfigured(data, p, slots, WhileIfConfig{AnyHit: true})
		}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			k := v.build(&Pool{Rays: rays})
			if fs := progcheck.Verify(v.name, k, v.caps); len(fs) != 0 {
				t.Errorf("static verification findings:\n%v", fs)
			}
			fs, cov := progcheck.Explore(v.name, k, progcheck.ExploreConfig{Slots: slots})
			if len(fs) != 0 {
				t.Errorf("exploration findings:\n%v", fs)
			}
			if cov.BlocksVisited < 2 || cov.EdgesObserved < 2 {
				t.Errorf("exploration barely moved: %+v", cov)
			}
		})
	}
}
