package kernels

import (
	"math/rand"
	"testing"

	"repro/internal/bvh"
	"repro/internal/geom"
	"repro/internal/memsys"
	"repro/internal/scene"
	"repro/internal/simt"
	"repro/internal/vec"
)

func testData(t testing.TB, b scene.Benchmark, tris int) (*SceneData, *bvh.BVH) {
	t.Helper()
	s := scene.Generate(b, tris)
	bv, err := bvh.Build(s.Tris, bvh.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return NewSceneData(bv), bv
}

func randomRays(n int, seed int64) []geom.Ray {
	rnd := rand.New(rand.NewSource(seed))
	rays := make([]geom.Ray, n)
	for i := range rays {
		o := vec.New(
			float32(rnd.Float64())*18+1, float32(rnd.Float64())*5+0.3,
			float32(rnd.Float64())*10+1)
		d := vec.New(
			float32(rnd.Float64()*2-1), float32(rnd.Float64()*2-1),
			float32(rnd.Float64()*2-1))
		for d.Len() < 1e-2 {
			d = vec.New(float32(rnd.Float64()*2-1), float32(rnd.Float64()*2-1), float32(rnd.Float64()*2-1))
		}
		rays[i] = geom.NewRay(o, d.Norm())
	}
	return rays
}

func TestChildRefEncoding(t *testing.T) {
	if !isLeaf(leafChild(0, 1)) {
		t.Errorf("leafChild(0,1) not a leaf")
	}
	if isLeaf(innerChild(5)) {
		t.Errorf("innerChild is a leaf")
	}
	if isLeaf(RefNone) {
		t.Errorf("RefNone is a leaf")
	}
	for _, tc := range []struct{ first, count int32 }{
		{0, 0}, {1, 8}, {123456, 3}, {1 << 30, 255},
	} {
		f, c := leafBounds(leafChild(tc.first, tc.count))
		if f != tc.first || c != tc.count {
			t.Errorf("roundtrip (%d,%d) -> (%d,%d)", tc.first, tc.count, f, c)
		}
	}
}

func TestSceneDataAddresses(t *testing.T) {
	data, bv := testData(t, scene.ConferenceRoom, 800)
	if data.NodeAddr(1)-data.NodeAddr(0) != bvh.NodeBytes {
		t.Errorf("node stride wrong")
	}
	if data.TriAddr(1)-data.TriAddr(0) != bvh.TriBytes {
		t.Errorf("tri stride wrong")
	}
	// Regions must not overlap.
	nodesEnd := data.NodeAddr(int32(len(bv.Nodes)))
	if data.TriBase < nodesEnd {
		t.Errorf("tri base overlaps nodes")
	}
	trisEnd := data.TriAddr(int32(len(bv.Tris)))
	if data.RayBase < trisEnd {
		t.Errorf("ray base overlaps tris")
	}
	if data.HitBase <= data.RayBase {
		t.Errorf("hit base overlaps rays")
	}
}

func TestPool(t *testing.T) {
	rays := randomRays(5, 1)
	p := &Pool{Rays: rays}
	for i := 0; i < 5; i++ {
		r, idx, ok := p.Fetch()
		if !ok || idx != int32(i) || r != rays[i] {
			t.Fatalf("fetch %d wrong", i)
		}
	}
	if _, _, ok := p.Fetch(); ok {
		t.Errorf("fetch from dry pool succeeded")
	}
	if p.Remaining() != 0 {
		t.Errorf("remaining = %d", p.Remaining())
	}
}

// Drive a single context through the per-thread traversal semantics and
// compare against the reference intersector.
func TestCtxTraversalMatchesReference(t *testing.T) {
	data, bv := testData(t, scene.ConferenceRoom, 1500)
	rays := randomRays(300, 7)
	for i, r := range rays {
		var c Ctx
		c.Pending = RefNone
		c.CurLeaf = RefNone
		c.initRay(r, int32(i))
		steps := 0
		for c.Cur != RefNone {
			if isLeaf(c.Cur) {
				ref := c.Cur
				c.Cur = c.pop()
				if c.beginLeaf(ref) {
					for {
						_, more := c.triStep(data)
						if !more {
							break
						}
					}
				}
				continue
			}
			c.nodeStep(data)
			steps++
			if steps > 100000 {
				t.Fatalf("ray %d: traversal did not terminate", i)
			}
		}
		want := bv.Intersect(r, nil)
		got := c.finalHit()
		if got.TriIndex != want.TriIndex {
			if got.TriIndex >= 0 && want.TriIndex >= 0 && absf(got.T-want.T) < 1e-4 {
				continue
			}
			t.Fatalf("ray %d: got tri %d t=%v, want tri %d t=%v",
				i, got.TriIndex, got.T, want.TriIndex, want.T)
		}
	}
}

func absf(f float32) float32 {
	if f < 0 {
		return -f
	}
	return f
}

// runKernel executes a kernel on one SMX and returns its stats.
func runKernel(t *testing.T, k simt.Kernel, warps int, launch func(*simt.SMX)) simt.Stats {
	t.Helper()
	cfg := simt.DefaultConfig()
	cfg.NumSMX = 1
	cfg.MaxWarpsPerSMX = warps
	cfg.MaxCycles = 1 << 24
	l2 := memsys.NewL2(cfg.Mem)
	s, err := simt.NewSMX(0, cfg, k, simt.Hooks{}, l2)
	if err != nil {
		t.Fatal(err)
	}
	if launch != nil {
		launch(s)
	} else {
		s.LaunchAll(0)
	}
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestAilaKernelTracesCorrectly(t *testing.T) {
	data, bv := testData(t, scene.ConferenceRoom, 1200)
	rays := randomRays(600, 3)
	for _, spec := range []bool{false, true} {
		pool := &Pool{Rays: rays}
		k := NewAila(data, pool, 4*32, AilaConfig{Speculative: spec})
		st := runKernel(t, k, 4, nil)
		if st.WarpInstrs == 0 {
			t.Fatalf("no instructions issued")
		}
		bad := 0
		for i, r := range rays {
			want := bv.Intersect(r, nil)
			if k.Hits[i].TriIndex != want.TriIndex {
				if k.Hits[i].TriIndex >= 0 && want.TriIndex >= 0 && absf(k.Hits[i].T-want.T) < 1e-4 {
					continue
				}
				bad++
			}
		}
		if bad > 0 {
			t.Errorf("spec=%v: %d/%d wrong hits", spec, bad, len(rays))
		}
	}
}

func TestAilaSpeculationImprovesEfficiency(t *testing.T) {
	data, _ := testData(t, scene.ConferenceRoom, 1500)
	rays := randomRays(2000, 11)
	run := func(spec bool) float64 {
		pool := &Pool{Rays: rays}
		k := NewAila(data, pool, 8*32, AilaConfig{Speculative: spec})
		st := runKernel(t, k, 8, nil)
		return st.SIMDEfficiency(32)
	}
	off := run(false)
	on := run(true)
	if on <= off {
		t.Errorf("speculative traversal did not improve efficiency: %.3f vs %.3f", on, off)
	}
}

func TestWhileIfStatesAndBlocks(t *testing.T) {
	data, _ := testData(t, scene.ConferenceRoom, 800)
	pool := &Pool{Rays: randomRays(10, 5)}
	k := NewWhileIf(data, pool, 64)
	if k.Entry() != WiRdctrl {
		t.Errorf("entry = %d", k.Entry())
	}
	if !k.Blocks()[WiRdctrl].Gated {
		t.Errorf("rdctrl not gated")
	}
	if k.Blocks()[WiRdctrl].Tag != simt.TagCtrl {
		t.Errorf("rdctrl not tagged ctrl")
	}
	// All slots start in fetch state.
	for s := int32(0); s < 64; s++ {
		if k.StateOf(s) != StateFetch {
			t.Errorf("slot %d initial state = %v", s, k.StateOf(s))
		}
	}
	if k.StateOf(-1) != StateEmpty {
		t.Errorf("negative slot should be empty")
	}
}

// Drive the while-if kernel manually (without the DRS) through its
// state machine for a single thread and verify the hit.
func TestWhileIfSingleThreadSemantics(t *testing.T) {
	data, bv := testData(t, scene.ConferenceRoom, 1000)
	rays := randomRays(30, 9)
	pool := &Pool{Rays: rays}
	k := NewWhileIf(data, pool, 32)
	var res simt.StepResult
	slot := int32(0)
	for iter := 0; iter < 2_000_000; iter++ {
		k.Step(slot, WiRdctrl, &res)
		if res.Next == simt.BlockExit {
			break
		}
		block := res.Next
		for {
			k.Step(slot, block, &res)
			if res.Next == WiRdctrl {
				break
			}
			block = res.Next
		}
	}
	if pool.Remaining() != 0 {
		t.Fatalf("pool not drained: %d", pool.Remaining())
	}
	for i, r := range rays {
		want := bv.Intersect(r, nil)
		if k.Hits[i].TriIndex != want.TriIndex {
			if k.Hits[i].TriIndex >= 0 && want.TriIndex >= 0 && absf(k.Hits[i].T-want.T) < 1e-4 {
				continue
			}
			t.Errorf("ray %d: got %d want %d", i, k.Hits[i].TriIndex, want.TriIndex)
		}
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		StateEmpty: "empty", StateFetch: "fetch", StateInner: "inner", StateLeaf: "leaf",
	} {
		if s.String() != want {
			t.Errorf("%d = %q", s, s.String())
		}
	}
}

func TestTravStackOverflowPanics(t *testing.T) {
	var c Ctx
	defer func() {
		if recover() == nil {
			t.Errorf("expected overflow panic")
		}
	}()
	for i := 0; i < maxTravStack+1; i++ {
		c.push(innerChild(int32(i)))
	}
}
