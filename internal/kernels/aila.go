package kernels

import (
	"repro/internal/geom"
	"repro/internal/progcheck"
	"repro/internal/simt"
)

// Block ids of the Aila while-while kernel. The graph mirrors the
// structured while-while source: a persistent outer loop whose body is
// an inner-node while loop, a leaf while loop, and a commit/fetch tail.
const (
	ailaFetch    = 0 // fetch a new ray from the pool and initialize
	ailaInner    = 1 // one inner-node traversal step (while node is inner)
	ailaLeafChk  = 2 // leaf-while condition: pick the next leaf to test
	ailaLeaf     = 3 // one ray-triangle intersection test
	ailaOuterChk = 4 // outer condition: continue traversal or finish ray
	ailaCommit   = 5 // store the hit, then replace the terminated ray
)

// AilaConfig controls the baseline kernel's optimizations.
type AilaConfig struct {
	// Speculative enables postponed-leaf speculative traversal with the
	// warp-wide break vote (on in Aila's kernel; Kernel 1 removes it).
	Speculative bool
	// AnyHit makes the kernel an occlusion (shadow-ray) kernel: a ray
	// terminates at its first hit instead of searching for the closest.
	AnyHit bool
	// SkipVerify skips the constructor-time progcheck verification
	// (for tests that build deliberately malformed variants).
	SkipVerify bool
}

// Aila is the software baseline ray traversal kernel ("while-while"
// with persistent threads, speculative traversal and terminated-ray
// replacement). One instance runs per SMX.
type Aila struct {
	cfg  AilaConfig
	data *SceneData
	pool *Pool

	ctxs []Ctx
	// Hits receives the committed hit for every pool ray index.
	Hits []geom.Hit

	blocks []simt.BlockInfo
}

// NewAila creates the baseline kernel for one SMX with the given
// number of thread slots (warps * warpSize).
func NewAila(data *SceneData, pool *Pool, slots int, cfg AilaConfig) *Aila {
	k := &Aila{
		cfg:  cfg,
		data: data,
		pool: pool,
		ctxs: make([]Ctx, slots),
		Hits: make([]geom.Hit, len(pool.Rays)),
	}
	for i := range k.Hits {
		k.Hits[i] = geom.NoHit
	}
	for i := range k.ctxs {
		k.ctxs[i].State = StateFetch
		k.ctxs[i].Pending = RefNone
		k.ctxs[i].CurLeaf = RefNone
		k.ctxs[i].Cur = RefNone
	}
	k.blocks = []simt.BlockInfo{
		ailaFetch:    {Name: "fetch", Insts: 18, MemInsts: 1, SrcOps: 2},
		ailaInner:    {Name: "inner", Insts: 25, MemInsts: 1, SrcOps: 3, Reconv: ailaLeafChk},
		ailaLeafChk:  {Name: "leafchk", Insts: 5, SrcOps: 2, Reconv: ailaOuterChk},
		ailaLeaf:     {Name: "leaf", Insts: 17, MemInsts: 1, SrcOps: 3, Reconv: ailaLeafChk},
		ailaOuterChk: {Name: "outerchk", Insts: 6, SrcOps: 2, Reconv: ailaInner},
		ailaCommit:   {Name: "commit", Insts: 7, MemInsts: 1, SrcOps: 2},
	}
	if !cfg.SkipVerify {
		progcheck.MustVerify("aila", k, progcheck.Caps{})
	}
	return k
}

// ailaSuccs is the static CFG: every target Step (and Vote, which can
// only pick from the per-lane candidates) may produce per block.
// outerchk's back-edge to inner is the paper's persistent-threads trick:
// warps with a terminated ray jump back through the traversal loop to
// pick up replacement work, so reconvergence is declared at the loop
// header rather than the textbook post-dominator (commit).
var ailaSuccs = [][]int{
	ailaFetch:    {ailaInner, simt.BlockExit},
	ailaInner:    {ailaInner, ailaLeafChk},
	ailaLeafChk:  {ailaLeaf, ailaLeafChk, ailaOuterChk},
	ailaLeaf:     {ailaLeaf, ailaLeafChk},
	ailaOuterChk: {ailaCommit, ailaInner},
	ailaCommit:   {ailaFetch},
}

// Successors implements simt.StaticCFG.
func (k *Aila) Successors(block int) []int { return ailaSuccs[block] }

// Blocks implements simt.Kernel.
func (k *Aila) Blocks() []simt.BlockInfo { return k.blocks }

// Entry implements simt.Kernel: threads start by fetching a ray.
func (k *Aila) Entry() int { return ailaFetch }

// Ctx returns the context of a slot (for tests and the DMK/TBC
// wrappers).
func (k *Aila) Ctx(slot int32) *Ctx { return &k.ctxs[slot] }

// NumSlots returns the number of thread slots.
func (k *Aila) NumSlots() int { return len(k.ctxs) }

// Step implements simt.Kernel.
func (k *Aila) Step(slot int32, block int, res *simt.StepResult) {
	c := &k.ctxs[slot]
	res.NMem = 0
	switch block {
	case ailaFetch:
		r, idx, ok := k.pool.Fetch()
		if !ok {
			c.State = StateEmpty
			res.Next = simt.BlockExit
			return
		}
		c.initRay(r, idx)
		res.Next = ailaInner
		res.Mem[0] = rayLoad(k.data, idx)
		res.NMem = 1

	case ailaInner:
		res.Next = k.innerStep(c, res)

	case ailaLeafChk:
		// Pick the next leaf to test: a postponed leaf first, then a
		// leaf in Cur.
		switch {
		case c.Pending != RefNone:
			ref := c.Pending
			c.Pending = RefNone
			if c.beginLeaf(ref) {
				res.Next = ailaLeaf
			} else {
				res.Next = ailaLeafChk // skip empty leaf, recheck
			}
		case isLeaf(c.Cur):
			ref := c.Cur
			c.Cur = c.pop()
			if c.beginLeaf(ref) {
				res.Next = ailaLeaf
			} else {
				res.Next = ailaLeafChk
			}
		default:
			res.Next = ailaOuterChk
		}

	case ailaLeaf:
		addr, more := c.triStep(k.data)
		res.Mem[0] = texAccess(addr, 48)
		res.NMem = 1
		if k.cfg.AnyHit && c.Hit.TriIndex >= 0 {
			// Occlusion query: the first hit settles the ray.
			c.abortTraversal()
			res.Next = ailaLeafChk
			return
		}
		if more {
			res.Next = ailaLeaf
		} else {
			c.CurLeaf = RefNone
			res.Next = ailaLeafChk
		}

	case ailaOuterChk:
		if c.Cur == RefNone && c.SP == 0 && c.Pending == RefNone {
			res.Next = ailaCommit
		} else {
			res.Next = ailaInner
		}

	case ailaCommit:
		k.Hits[c.RayIndex] = c.finalHit()
		res.Mem[0] = dataAccess(k.data.HitAddr(c.RayIndex), 16)
		res.NMem = 1
		c.terminate()
		res.Next = ailaFetch

	default:
		panic("kernels: aila: bad block")
	}
}

// innerStep handles one iteration of the inner-node while loop for one
// thread, including the speculative postponed-leaf policy.
func (k *Aila) innerStep(c *Ctx, res *simt.StepResult) int {
	// A leaf (or exhausted traversal) in Cur ends the inner loop unless
	// speculation can postpone it.
	if c.Cur == RefNone {
		return ailaLeafChk
	}
	if isLeaf(c.Cur) {
		if k.cfg.Speculative && c.Pending == RefNone {
			c.Pending = c.Cur
			c.Cur = c.pop()
			if c.Cur == RefNone || isLeaf(c.Cur) {
				return ailaLeafChk
			}
			// Fall through to visit the popped inner node this step.
		} else {
			return ailaLeafChk
		}
	}
	addr := c.nodeStep(k.data)
	res.Mem[0] = texAccess(addr, 64)
	res.NMem = 1
	c.State = StateInner
	// Speculative postpone: a freshly found leaf is parked so the
	// thread keeps doing useful inner-node work with the rest of the
	// warp instead of idling until the leaf phase.
	if k.cfg.Speculative && isLeaf(c.Cur) && c.Pending == RefNone {
		c.Pending = c.Cur
		c.Cur = c.pop()
	}
	if c.Cur != RefNone && !isLeaf(c.Cur) {
		return ailaInner
	}
	return ailaLeafChk
}

// Vote implements simt.WarpVoter: Aila's speculative break — once every
// active lane of the inner loop either holds a postponed leaf or has
// finished traversal, the whole warp breaks to leaf processing
// together instead of speculating further.
func (k *Aila) Vote(warp, block int, slots []int32, res []*simt.StepResult) {
	if !k.cfg.Speculative || block != ailaInner {
		return
	}
	for i, r := range res {
		if r.Next != ailaInner {
			continue
		}
		if k.ctxs[slots[i]].Pending == RefNone {
			// Someone still traverses without a postponed leaf: keep
			// speculating, no break.
			return
		}
	}
	// Everyone has leaf work (or is done): break the loop warp-wide.
	for _, r := range res {
		if r.Next == ailaInner {
			r.Next = ailaLeafChk
		}
	}
}

// rayLoad builds the data-cache access that fetching ray idx performs.
func rayLoad(d *SceneData, idx int32) simt.MemAccess {
	return dataAccess(d.RayAddr(idx), 32)
}
