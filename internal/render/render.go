// Package render implements the CPU path tracer used to generate the
// paper's workload. Its job here is not image quality: it reproduces the
// paper's methodology of rendering each benchmark scene with path
// tracing (max depth 8, low-discrepancy sampling) and capturing the rays
// of every bounce into per-bounce trace streams that are then fed to the
// simulated GPU ray traversal kernels.
package render

import (
	"fmt"
	"image"
	"image/color"
	"io"
	"math"
	"runtime"
	"sync"

	"repro/internal/bsdf"
	"repro/internal/bvh"
	"repro/internal/camera"
	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/scene"
	"repro/internal/trace"
	"repro/internal/vec"
)

// Config controls a render.
type Config struct {
	Width, Height   int
	SamplesPerPixel int
	MaxDepth        int  // maximum path depth; the paper uses 8
	CaptureTraces   bool // record per-bounce ray streams
	Workers         int  // parallel workers; 0 = GOMAXPROCS
}

// DefaultConfig returns a small, fast configuration suitable for tests;
// the paper-scale configuration is 640x480 with 64 spp.
func DefaultConfig() Config {
	return Config{Width: 160, Height: 120, SamplesPerPixel: 4, MaxDepth: trace.MaxBounces, CaptureTraces: true}
}

// PaperConfig returns the paper's render parameters (§4.1).
func PaperConfig() Config {
	return Config{Width: 640, Height: 480, SamplesPerPixel: 64, MaxDepth: trace.MaxBounces, CaptureTraces: true}
}

// Result is the output of a render: the image and, if requested, the
// per-bounce ray streams.
type Result struct {
	Image  *image.RGBA
	Traces *trace.Set
	// Film holds linear radiance per pixel for analysis.
	Film []vec.V3
}

// CameraFor returns a reasonable viewpoint for each benchmark scene.
func CameraFor(b scene.Benchmark, width, height int) *camera.Pinhole {
	switch b {
	case scene.ConferenceRoom:
		return camera.New(vec.New(2, 2.2, 1.5), vec.New(12, 1.5, 7), vec.New(0, 1, 0), 60, width, height)
	case scene.FairyForest:
		return camera.New(vec.New(4, 2.5, 4), vec.New(0, 0.8, 0), vec.New(0, 1, 0), 50, width, height)
	case scene.CrytekSponza:
		return camera.New(vec.New(3, 2, 7), vec.New(25, 6, 7), vec.New(0, 1, 0), 65, width, height)
	case scene.Plants:
		return camera.New(vec.New(0, 3, 18), vec.New(0, 1, 0), vec.New(0, 1, 0), 55, width, height)
	default:
		return camera.New(vec.New(0, 1, 5), vec.New(0, 1, 0), vec.New(0, 1, 0), 60, width, height)
	}
}

// Render path-traces scene s (with acceleration structure bv) from
// camera cam and returns the image plus captured traces.
func Render(s *scene.Scene, bv *bvh.BVH, cam *camera.Pinhole, cfg Config) (*Result, error) {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("render: invalid resolution %dx%d", cfg.Width, cfg.Height)
	}
	if cfg.SamplesPerPixel <= 0 {
		return nil, fmt.Errorf("render: samples per pixel must be positive")
	}
	if cfg.MaxDepth <= 0 || cfg.MaxDepth > trace.MaxBounces {
		return nil, fmt.Errorf("render: max depth %d out of range [1,%d]", cfg.MaxDepth, trace.MaxBounces)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	res := &Result{
		Image: image.NewRGBA(image.Rect(0, 0, cfg.Width, cfg.Height)),
		Film:  make([]vec.V3, cfg.Width*cfg.Height),
	}
	if cfg.CaptureTraces {
		res.Traces = &trace.Set{Scene: s.Name}
		for b := 0; b < trace.MaxBounces; b++ {
			res.Traces.Streams[b] = trace.Stream{Scene: s.Name, Bounce: b + 1}
		}
	}

	// Captured rays are buffered per image row and assembled in row
	// order after the workers finish: the stream the simulator consumes
	// must not depend on which worker rendered which rows (worker count
	// follows GOMAXPROCS, and row assignment is scheduling order).
	var rowRays [][trace.MaxBounces][]geom.Ray
	if cfg.CaptureTraces {
		rowRays = make([][trace.MaxBounces][]geom.Ray, cfg.Height)
	}
	var wg sync.WaitGroup
	rows := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for py := range rows {
				var local *[trace.MaxBounces][]geom.Ray
				if cfg.CaptureTraces {
					local = &rowRays[py]
				}
				for px := 0; px < cfg.Width; px++ {
					pixel := renderPixel(s, bv, cam, cfg, px, py, local)
					res.Film[py*cfg.Width+px] = pixel
				}
			}
		}()
	}
	for py := 0; py < cfg.Height; py++ {
		rows <- py
	}
	close(rows)
	wg.Wait()
	if cfg.CaptureTraces {
		for py := range rowRays {
			for b := 0; b < trace.MaxBounces; b++ {
				res.Traces.Streams[b].Rays = append(res.Traces.Streams[b].Rays, rowRays[py][b]...)
			}
		}
	}

	// Tone map to the output image.
	inv := 1 / float32(cfg.SamplesPerPixel)
	for py := 0; py < cfg.Height; py++ {
		for px := 0; px < cfg.Width; px++ {
			c := res.Film[py*cfg.Width+px].Scale(inv)
			res.Image.SetRGBA(px, py, color.RGBA{
				R: tone(c.X), G: tone(c.Y), B: tone(c.Z), A: 255,
			})
		}
	}
	return res, nil
}

// renderPixel traces all samples of one pixel, accumulating radiance
// and recording per-bounce rays into local trace buffers.
func renderPixel(s *scene.Scene, bv *bvh.BVH, cam *camera.Pinhole, cfg Config, px, py int, traces *[trace.MaxBounces][]geom.Ray) vec.V3 {
	pixelSeed := uint64(py)*uint64(cfg.Width) + uint64(px)
	sampler := rng.NewHalton(pixelSeed)
	rand := rng.NewPCG32(pixelSeed, 77)
	var acc vec.V3
	for sp := 0; sp < cfg.SamplesPerPixel; sp++ {
		sampler.StartSample(uint64(sp))
		sx, sy := sampler.Next2D()
		ray := cam.Ray(px, py, sx, sy)
		throughput := vec.Splat(1)
		var radiance vec.V3
		for depth := 1; depth <= cfg.MaxDepth; depth++ {
			if cfg.CaptureTraces {
				traces[depth-1] = append(traces[depth-1], ray)
			}
			hit := bv.Intersect(ray, nil)
			if hit.TriIndex < 0 {
				// Escaped the scene: dim ambient sky term.
				radiance = radiance.Add(throughput.Mul(vec.New(0.03, 0.04, 0.06)))
				break
			}
			tri := s.Tris[hit.TriIndex]
			mat := s.Materials[tri.Material]
			if mat.Kind == scene.Emissive {
				radiance = radiance.Add(throughput.Mul(mat.Emission))
				break
			}
			n := tri.Normal().Norm()
			if n.Dot(ray.Dir) > 0 {
				n = n.Neg()
			}
			u1, u2 := sampler.Next2D()
			// Decorrelate across bounces using the PCG stream once the
			// Halton dimensions run out of quality.
			if depth > 3 {
				u1, u2 = rand.Float32(), rand.Float32()
			}
			sample := bsdf.SampleBSDF(mat, n, ray.Dir, u1, u2)
			if !sample.OK {
				break
			}
			throughput = throughput.Mul(sample.Weight)
			// Russian roulette would bias the per-bounce ray counts the
			// experiments rely on, so paths run to full depth like the
			// paper's fixed 8-bounce workload.
			origin := ray.At(hit.T).Add(n.Scale(1e-3))
			ray = geom.NewRay(origin, sample.Dir)
		}
		acc = acc.Add(radiance)
	}
	return acc
}

func tone(x float32) uint8 {
	// Simple Reinhard + gamma 2.2.
	if x < 0 {
		x = 0
	}
	v := x / (1 + x)
	g := pow32(v, 1/2.2)
	u := int(g*255 + 0.5)
	if u > 255 {
		u = 255
	}
	return uint8(u)
}

func pow32(x, y float32) float32 {
	return float32(math.Pow(float64(x), float64(y)))
}

// WritePPM writes the image in binary PPM format.
func WritePPM(w io.Writer, img *image.RGBA) error {
	b := img.Bounds()
	if _, err := fmt.Fprintf(w, "P6\n%d %d\n255\n", b.Dx(), b.Dy()); err != nil {
		return err
	}
	buf := make([]byte, 0, b.Dx()*b.Dy()*3)
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			c := img.RGBAAt(x, y)
			buf = append(buf, c.R, c.G, c.B)
		}
	}
	_, err := w.Write(buf)
	return err
}
