package render

import (
	"bytes"
	"testing"

	"repro/internal/bvh"
	"repro/internal/scene"
	"repro/internal/trace"
)

func renderSmall(t testing.TB, b scene.Benchmark, cfg Config) (*scene.Scene, *Result) {
	t.Helper()
	s := scene.Generate(b, 1500)
	bv, err := bvh.Build(s.Tris, bvh.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cam := CameraFor(b, cfg.Width, cfg.Height)
	res, err := Render(s, bv, cam, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, res
}

func TestRenderProducesImageAndTraces(t *testing.T) {
	cfg := Config{Width: 40, Height: 30, SamplesPerPixel: 2, MaxDepth: 8, CaptureTraces: true}
	_, res := renderSmall(t, scene.ConferenceRoom, cfg)
	if res.Image.Bounds().Dx() != 40 || res.Image.Bounds().Dy() != 30 {
		t.Errorf("image dims wrong: %v", res.Image.Bounds())
	}
	if res.Traces == nil {
		t.Fatalf("no traces captured")
	}
	// Bounce 1 has exactly one ray per sample.
	want := 40 * 30 * 2
	if got := len(res.Traces.Bounce(1).Rays); got != want {
		t.Errorf("bounce-1 rays = %d, want %d", got, want)
	}
	// Ray counts per bounce are non-increasing.
	for b := 2; b <= 8; b++ {
		if len(res.Traces.Bounce(b).Rays) > len(res.Traces.Bounce(b-1).Rays) {
			t.Errorf("bounce %d has more rays than bounce %d", b, b-1)
		}
	}
	// In a closed room with full-depth paths, deep bounces still exist.
	if len(res.Traces.Bounce(4).Rays) == 0 {
		t.Errorf("no bounce-4 rays in closed room")
	}
}

func TestRenderConfigValidation(t *testing.T) {
	s := scene.Generate(scene.ConferenceRoom, 1000)
	bv, err := bvh.Build(s.Tris, bvh.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cam := CameraFor(scene.ConferenceRoom, 10, 10)
	bad := []Config{
		{Width: 0, Height: 10, SamplesPerPixel: 1, MaxDepth: 4},
		{Width: 10, Height: 10, SamplesPerPixel: 0, MaxDepth: 4},
		{Width: 10, Height: 10, SamplesPerPixel: 1, MaxDepth: 0},
		{Width: 10, Height: 10, SamplesPerPixel: 1, MaxDepth: 99},
	}
	for i, cfg := range bad {
		if _, err := Render(s, bv, cam, cfg); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

func TestRenderDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := Config{Width: 24, Height: 16, SamplesPerPixel: 2, MaxDepth: 6, CaptureTraces: false, Workers: 1}
	_, res1 := renderSmall(t, scene.FairyForest, cfg)
	cfg.Workers = 4
	_, res2 := renderSmall(t, scene.FairyForest, cfg)
	for i := range res1.Film {
		if res1.Film[i] != res2.Film[i] {
			t.Fatalf("pixel %d differs across worker counts", i)
		}
	}
}

func TestSecondaryRaysLessCoherent(t *testing.T) {
	// The paper's core premise (Fig. 2): primary rays are coherent,
	// secondary rays are not.
	cfg := Config{Width: 64, Height: 48, SamplesPerPixel: 1, MaxDepth: 8, CaptureTraces: true}
	_, res := renderSmall(t, scene.ConferenceRoom, cfg)
	c1 := res.Traces.Bounce(1).Coherence(32)
	c3 := res.Traces.Bounce(3).Coherence(32)
	if c1 < 0.95 {
		t.Errorf("primary coherence = %v, want high", c1)
	}
	if c3 > c1-0.2 {
		t.Errorf("bounce-3 coherence %v not much lower than primary %v", c3, c1)
	}
}

func TestRenderImageNotBlack(t *testing.T) {
	cfg := Config{Width: 32, Height: 24, SamplesPerPixel: 4, MaxDepth: 8, CaptureTraces: false}
	_, res := renderSmall(t, scene.ConferenceRoom, cfg)
	lit := 0
	for _, p := range res.Film {
		if p.MaxComp() > 0.01 {
			lit++
		}
	}
	if frac := float64(lit) / float64(len(res.Film)); frac < 0.3 {
		t.Errorf("only %.0f%% of pixels lit; renderer or lights broken", frac*100)
	}
}

func TestAllBenchmarksRender(t *testing.T) {
	cfg := Config{Width: 16, Height: 12, SamplesPerPixel: 1, MaxDepth: trace.MaxBounces, CaptureTraces: true}
	for _, b := range scene.Benchmarks {
		_, res := renderSmall(t, b, cfg)
		if res.Traces.TotalRays() < 16*12 {
			t.Errorf("%v: too few rays traced: %d", b, res.Traces.TotalRays())
		}
	}
}

func TestWritePPM(t *testing.T) {
	cfg := Config{Width: 8, Height: 6, SamplesPerPixel: 1, MaxDepth: 2, CaptureTraces: false}
	_, res := renderSmall(t, scene.ConferenceRoom, cfg)
	var buf bytes.Buffer
	if err := WritePPM(&buf, res.Image); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if !bytes.HasPrefix(b, []byte("P6\n8 6\n255\n")) {
		t.Errorf("bad PPM header: %q", b[:16])
	}
	wantLen := len("P6\n8 6\n255\n") + 8*6*3
	if len(b) != wantLen {
		t.Errorf("PPM length = %d, want %d", len(b), wantLen)
	}
}
