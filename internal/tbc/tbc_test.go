package tbc

import (
	"math/rand"
	"testing"

	"repro/internal/bvh"
	"repro/internal/geom"
	"repro/internal/kernels"
	"repro/internal/memsys"
	"repro/internal/scene"
	"repro/internal/simt"
	"repro/internal/statcheck"
	"repro/internal/vec"
)

func buildTBC(t testing.TB, nrays, warps, wpb int) (*simt.SMX, *Wrapper, *kernels.Aila, *kernels.Pool, *bvh.BVH) {
	t.Helper()
	s := scene.Generate(scene.ConferenceRoom, 1200)
	bv, err := bvh.Build(s.Tris, bvh.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	data := kernels.NewSceneData(bv)
	rnd := rand.New(rand.NewSource(3))
	rays := make([]geom.Ray, nrays)
	for i := range rays {
		o := vec.New(float32(rnd.Float64())*18+1, float32(rnd.Float64())*5+0.3, float32(rnd.Float64())*10+1)
		d := vec.New(float32(rnd.Float64()*2-1), float32(rnd.Float64()*2-1), float32(rnd.Float64()*2-1)).Norm()
		rays[i] = geom.NewRay(o, d)
	}
	pool := &kernels.Pool{Rays: rays}
	k := kernels.NewAila(data, pool, warps*32, kernels.AilaConfig{})
	w := New(Config{WarpsPerBlock: wpb}, k, warps, 32)
	cfg := simt.DefaultConfig()
	cfg.NumSMX = 1
	cfg.MaxWarpsPerSMX = warps
	cfg.MaxCycles = 1 << 24
	l2 := memsys.NewL2(cfg.Mem)
	smx, err := simt.NewSMX(0, cfg, k, w.Hooks(), l2)
	if err != nil {
		t.Fatal(err)
	}
	smx.LaunchAll(0)
	return smx, w, k, pool, bv
}

func TestBlockAssignment(t *testing.T) {
	k := &kernels.Aila{}
	w := New(Config{WarpsPerBlock: 6}, k, 14, 32)
	if len(w.blocks) != 3 {
		t.Fatalf("14 warps / 6 per block = %d blocks, want 3", len(w.blocks))
	}
	if len(w.blocks[2].warps) != 2 {
		t.Errorf("last block has %d warps, want 2", len(w.blocks[2].warps))
	}
	if w.warpBlock[13] != 2 {
		t.Errorf("warp 13 in block %d", w.warpBlock[13])
	}
}

func TestTBCTracesCorrectly(t *testing.T) {
	smx, w, k, pool, bv := buildTBC(t, 1500, 12, 6)
	st, err := smx.Run()
	if err != nil {
		t.Fatal(err)
	}
	if pool.Remaining() != 0 {
		t.Fatalf("pool not drained")
	}
	bad := 0
	for i, r := range pool.Rays {
		want := bv.Intersect(r, nil)
		got := k.Hits[i]
		if got.TriIndex != want.TriIndex {
			if got.TriIndex >= 0 && want.TriIndex >= 0 {
				d := got.T - want.T
				if d < 1e-4 && d > -1e-4 {
					continue
				}
			}
			bad++
		}
	}
	if bad > 0 {
		t.Errorf("%d/%d wrong hits", bad, len(pool.Rays))
	}
	if w.Stats().Compactions == 0 || w.Stats().Syncs == 0 {
		t.Errorf("TBC never compacted: %+v", w.Stats())
	}
	if st.BarrierStallCycles == 0 {
		t.Errorf("no barrier stalls recorded")
	}
	// No threads may be stranded in pending lists.
	for _, tb := range w.blocks {
		for target, perLane := range tb.pending {
			for _, col := range perLane {
				if len(col) > 0 {
					t.Fatalf("threads stranded pending target %d", target)
				}
			}
		}
	}
}

func TestTBCEfficiencyAboveBaseline(t *testing.T) {
	smxT, _, _, _, _ := buildTBC(t, 2000, 12, 6)
	stT, err := smxT.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Baseline without TBC on the same workload.
	s := scene.Generate(scene.ConferenceRoom, 1200)
	bv, err := bvh.Build(s.Tris, bvh.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	data := kernels.NewSceneData(bv)
	rnd := rand.New(rand.NewSource(3))
	rays := make([]geom.Ray, 2000)
	for i := range rays {
		o := vec.New(float32(rnd.Float64())*18+1, float32(rnd.Float64())*5+0.3, float32(rnd.Float64())*10+1)
		d := vec.New(float32(rnd.Float64()*2-1), float32(rnd.Float64()*2-1), float32(rnd.Float64()*2-1)).Norm()
		rays[i] = geom.NewRay(o, d)
	}
	pool := &kernels.Pool{Rays: rays}
	k := kernels.NewAila(data, pool, 12*32, kernels.AilaConfig{})
	cfg := simt.DefaultConfig()
	cfg.NumSMX = 1
	cfg.MaxWarpsPerSMX = 12
	cfg.MaxCycles = 1 << 24
	l2 := memsys.NewL2(cfg.Mem)
	smxB, err := simt.NewSMX(0, cfg, k, simt.Hooks{}, l2)
	if err != nil {
		t.Fatal(err)
	}
	smxB.LaunchAll(0)
	stB, err := smxB.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stT.SIMDEfficiency(32) <= stB.SIMDEfficiency(32) {
		t.Errorf("TBC efficiency %.3f not above baseline %.3f",
			stT.SIMDEfficiency(32), stB.SIMDEfficiency(32))
	}
}

func TestStatsAdd(t *testing.T) {
	var a, b Stats
	a.Compactions = 1
	b.Compactions = 2
	b.WarpsFormed = 5
	b.Syncs = 7
	a.Add(b)
	if a.Compactions != 3 || a.WarpsFormed != 5 || a.Syncs != 7 {
		t.Errorf("merged = %+v", a)
	}
}

// TestStatsAddCoverage pins that tbc.Stats.Add merges every numeric
// field; harness.Run folds per-SMX TBC stats with it.
func TestStatsAddCoverage(t *testing.T) {
	if err := statcheck.AddCovers(Stats{}); err != nil {
		t.Error(err)
	}
}
