package tbc

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/kernels"
	"repro/internal/progcheck"
	"repro/internal/reorder"
	"repro/internal/simt"
)

// Policy adapts the TBC baseline to the reorder.Policy interface: the
// non-speculative while-while kernel with block-wide barrier
// compaction. Synchronization costs are charged in-engine (barrier
// stalls), so the generic CostCycles stays zero.
type Policy struct {
	Cfg Config
}

// NewPolicy wraps a TBC configuration as a policy.
func NewPolicy(cfg Config) *Policy { return &Policy{Cfg: cfg} }

// Name implements reorder.Policy.
func (p *Policy) Name() string { return "tbc" }

// Summary implements reorder.Policy.
func (p *Policy) Summary() string {
	return "thread block compaction: block-wide barriers at divergence, lane-aligned warp re-formation"
}

// Validate implements reorder.Policy: the constructor defaults a
// non-positive block size, so only negatives are rejected.
func (p *Policy) Validate() error {
	if p.Cfg.WarpsPerBlock < 0 {
		return fmt.Errorf("tbc: WarpsPerBlock must not be negative")
	}
	return nil
}

// Warps implements reorder.Policy: 0 accepts the harness warp count.
func (p *Policy) Warps() int { return 0 }

// Caps implements reorder.Policy.
func (p *Policy) Caps() progcheck.Caps { return progcheck.Caps{} }

// NewSMX implements reorder.Policy.
func (p *Policy) NewSMX(env reorder.Env) (reorder.Instance, error) {
	// Like DMK, TBC wraps the plain non-speculative kernel: block-wide
	// synchronization replaces the speculative postponing heuristic.
	acfg := kernels.AilaConfig{SkipVerify: env.SkipProgCheck}
	k := kernels.NewAila(env.Data, env.Pool, env.Cfg.MaxWarpsPerSMX*env.Cfg.WarpSize, acfg)
	if env.Verify != nil {
		if err := env.Verify(k); err != nil {
			return nil, err
		}
	}
	w := New(p.Cfg, k, env.Cfg.MaxWarpsPerSMX, env.Cfg.WarpSize)
	if env.Collector != nil {
		w.RegisterMetrics(env.Collector.Registry, env.MetricsPrefix)
	}
	return &instance{k: k, w: w}, nil
}

// instance is one SMX's TBC attachment.
type instance struct {
	k *kernels.Aila
	w *Wrapper
}

func (i *instance) Program() simt.SMXProgram {
	return simt.SMXProgram{Kernel: i.k, Hooks: i.w.Hooks()}
}

func (i *instance) Hits() []geom.Hit { return i.k.Hits }

// TypedStats implements reorder.TypedStatser with the TBC Stats.
func (i *instance) TypedStats() any { return i.w.Stats() }

// ReorderStats implements reorder.StatsReporter.
func (i *instance) ReorderStats() reorder.Stats {
	st := i.w.Stats()
	// Lane-aligned compaction moves at most a warp per warp formed; the
	// formed-warp count is the closest thread-movement analogue TBC
	// tracks (threads stay in their SIMD lane, so "moved" means
	// re-grouped into a different warp).
	return reorder.Stats{Reorders: st.Compactions, RaysMoved: st.WarpsFormed}
}
