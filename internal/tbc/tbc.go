// Package tbc implements the Thread Block Compaction baseline (Fung &
// Aamodt, HPCA 2011) the paper compares against in §4.4. Warps of a
// thread block synchronize at divergent branches; their threads are
// then compacted into new warps per branch target under the per-SIMD-
// lane register file constraint (a thread can only move to its own lane
// of another warp). A block-wide reconvergence discipline serializes
// the targets. The two costs the paper identifies — synchronization
// latency and imperfect compaction under the lane constraint — fall out
// of this model directly.
package tbc

import (
	"sort"

	"repro/internal/kernels"
	"repro/internal/metrics"
	"repro/internal/simt"
)

// Config holds the TBC parameters.
type Config struct {
	// WarpsPerBlock is the thread block size in warps (6 in the paper's
	// evaluation, matching the configuration of the TBC paper).
	WarpsPerBlock int
}

// DefaultConfig matches the paper's TBC evaluation: 6 warps per block.
func DefaultConfig() Config { return Config{WarpsPerBlock: 6} }

// Stats counts TBC activity.
type Stats struct {
	Compactions int64 // block-wide compaction events
	WarpsFormed int64 // compacted warps launched
	// Syncs counts warps arriving at compaction barriers.
	Syncs int64
}

// Add merges o into s.
func (s *Stats) Add(o Stats) {
	s.Compactions += o.Compactions
	s.WarpsFormed += o.WarpsFormed
	s.Syncs += o.Syncs
}

// tblock is the runtime state of one thread block.
type tblock struct {
	warps []int // member warp ids
	// running is the set of member warps currently executing.
	running map[int]bool
	// parked maps parked warp id -> the cycle it parked (for barrier
	// stall accounting).
	parked map[int]int64
	// pending holds deposited threads per branch target, per lane.
	pending map[int][][]int32
}

// Wrapper attaches TBC behaviour to the baseline kernel.
type Wrapper struct {
	cfg       Config
	k         *kernels.Aila
	warpSize  int
	blocks    []*tblock
	warpBlock []int
	stats     Stats
}

// New creates the per-SMX TBC wrapper for numWarps resident warps.
func New(cfg Config, k *kernels.Aila, numWarps, warpSize int) *Wrapper {
	if cfg.WarpsPerBlock <= 0 {
		cfg.WarpsPerBlock = 6
	}
	w := &Wrapper{
		cfg:       cfg,
		k:         k,
		warpSize:  warpSize,
		warpBlock: make([]int, numWarps),
	}
	for start := 0; start < numWarps; start += cfg.WarpsPerBlock {
		end := start + cfg.WarpsPerBlock
		if end > numWarps {
			end = numWarps
		}
		tb := &tblock{
			running: make(map[int]bool),
			parked:  make(map[int]int64),
			pending: make(map[int][][]int32),
		}
		for wi := start; wi < end; wi++ {
			tb.warps = append(tb.warps, wi)
			tb.running[wi] = true
			w.warpBlock[wi] = len(w.blocks)
		}
		w.blocks = append(w.blocks, tb)
	}
	return w
}

// Hooks returns the engine hooks implementing TBC. Warps park at the
// block-wide barrier when they diverge or fall under 3/4 occupancy;
// full uniform warps keep running until then (their in-flight work
// delays the block's compaction — the synchronization latency the
// paper identifies as TBC's limiting cost).
func (w *Wrapper) Hooks() simt.Hooks {
	return simt.Hooks{
		OnBlockEnd: w.onBlockEnd,
		OnWarpDone: w.onWarpDone,
	}
}

// Stats returns a snapshot of the wrapper's counters.
func (w *Wrapper) Stats() Stats { return w.stats }

// RegisterMetrics registers the wrapper's counters under prefix
// ("smx3/tbc") in the unified registry.
func (w *Wrapper) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.RegisterStruct(prefix, &w.stats)
}

// onBlockEnd parks the warp at the block barrier, depositing its
// threads, and compacts once every running member has arrived. Full
// warps that branched uniformly continue without synchronizing.
func (w *Wrapper) onBlockEnd(s *simt.SMX, warp, block int, lanes []int, targets []int) bool {
	uniform := true
	for _, t := range targets[1:] {
		if t != targets[0] {
			uniform = false
			break
		}
	}
	if uniform && len(lanes) >= w.warpSize*3/4 {
		return false // keep running at full occupancy
	}
	tb := w.blocks[w.warpBlock[warp]]
	wp := s.Warp(warp)
	slots := wp.Slots()
	for i, l := range lanes {
		t := targets[i]
		perLane := tb.pending[t]
		if perLane == nil {
			perLane = make([][]int32, w.warpSize)
			tb.pending[t] = perLane
		}
		perLane[l] = append(perLane[l], slots[l])
	}
	delete(tb.running, warp)
	tb.parked[warp] = s.Cycle()
	wp.Park()
	w.stats.Syncs++
	// Compact once half the block has synchronized (enough arrivals to
	// aggregate threads), or when nothing is left running.
	if len(tb.running) == 0 || len(tb.parked)*3 >= len(tb.warps) {
		w.compact(s, tb)
	}
	s.RecountLive()
	return true
}

// onWarpDone re-parks retired warps so compaction can hand them the
// block's remaining pending threads; a block whose last running warp
// retires can then compact.
func (w *Wrapper) onWarpDone(s *simt.SMX, warp int) {
	tb := w.blocks[w.warpBlock[warp]]
	if !tb.running[warp] {
		return
	}
	delete(tb.running, warp)
	tb.parked[warp] = s.Cycle()
	if len(tb.running) == 0 {
		w.compact(s, tb)
		s.RecountLive()
	}
}

// compact forms lane-aligned warps for the pending targets (largest
// first) and resumes parked warps with them. Targets that do not fit in
// the available warps stay pending until the next barrier.
func (w *Wrapper) compact(s *simt.SMX, tb *tblock) {
	if len(tb.parked) == 0 {
		return
	}
	// Deterministic warp pool, ordered by id.
	ids := make([]int, 0, len(tb.parked))
	//drslint:allow map-range -- collected ids are sorted before use
	for wid := range tb.parked {
		ids = append(ids, wid)
	}
	sort.Ints(ids)

	// Targets ordered by pending thread count, descending.
	type tcount struct {
		target int
		n      int
	}
	var order []tcount
	//drslint:allow map-range -- counts are order-independent and the result is sorted
	for t, perLane := range tb.pending {
		n := 0
		for _, col := range perLane {
			n += len(col)
		}
		if n > 0 {
			order = append(order, tcount{t, n})
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].n != order[j].n {
			return order[i].n > order[j].n
		}
		return order[i].target < order[j].target
	})

	now := s.Cycle()
	next := 0 // next warp id index to hand out
	drain := len(tb.running) == 0
	for _, tc := range order {
		if next >= len(ids) {
			break
		}
		// Before the drain phase, only spend warps on targets with a
		// full warp's worth of threads; thin targets keep aggregating.
		if !drain && tc.n < w.warpSize {
			continue
		}
		perLane := tb.pending[tc.target]
		// Warps needed = deepest lane (the lane-alignment constraint of
		// a per-SIMD-lane register file).
		need := 0
		for _, col := range perLane {
			if len(col) > need {
				need = len(col)
			}
		}
		formed := need
		if formed > len(ids)-next {
			formed = len(ids) - next
		}
		for i := 0; i < formed; i++ {
			slots := make([]int32, w.warpSize)
			for l := 0; l < w.warpSize; l++ {
				col := perLane[l]
				if i < len(col) {
					slots[l] = col[len(col)-1-i]
				} else {
					slots[l] = -1
				}
			}
			wid := ids[next]
			next++
			s.AddBarrierStall(now - tb.parked[wid])
			s.Warp(wid).Resume(slots, tc.target)
			delete(tb.parked, wid)
			tb.running[wid] = true
			w.stats.WarpsFormed++
		}
		// Remove the consumed threads (the top `formed` of each lane).
		empty := true
		for l := range perLane {
			col := perLane[l]
			take := formed
			if take > len(col) {
				take = len(col)
			}
			perLane[l] = col[:len(col)-take]
			if len(perLane[l]) > 0 {
				empty = false
			}
		}
		if empty {
			delete(tb.pending, tc.target)
		}
	}
	w.stats.Compactions++
	if len(tb.running) > 0 {
		return
	}
	// Nothing was formed and nothing runs: the block is out of work;
	// retire the remaining parked warps.
	if len(tb.pending) == 0 {
		// Iterate the pre-sorted id snapshot, not the map: warps consumed
		// by the formation phase above are gone from parked already.
		for _, wid := range ids {
			if _, still := tb.parked[wid]; !still {
				continue
			}
			empty := make([]int32, w.warpSize)
			for i := range empty {
				empty[i] = -1
			}
			s.Warp(wid).Resume(empty, 0)
			delete(tb.parked, wid)
		}
	}
}
