// Package rng provides the deterministic random number sources used by
// the renderer: a PCG32 generator for decorrelated per-path randomness
// and a scrambled Halton sequence for low-discrepancy pixel sampling
// (the paper renders with PBRT's low-discrepancy sampler).
package rng

// PCG32 is the PCG-XSH-RR 32-bit generator (O'Neill 2014). It is small,
// fast and statistically strong enough for Monte Carlo rendering.
type PCG32 struct {
	state uint64
	inc   uint64
}

// NewPCG32 seeds a generator from a seed and a stream selector.
// Distinct streams produce decorrelated sequences.
func NewPCG32(seed, stream uint64) *PCG32 {
	p := &PCG32{inc: stream<<1 | 1}
	p.Next()
	p.state += seed
	p.Next()
	return p
}

// Next returns the next 32 random bits.
func (p *PCG32) Next() uint32 {
	old := p.state
	p.state = old*6364136223846793005 + p.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Float32 returns a uniform sample in [0, 1).
func (p *PCG32) Float32() float32 {
	// 24 mantissa bits keep the result strictly below 1.
	return float32(p.Next()>>8) * (1.0 / (1 << 24))
}

// IntN returns a uniform integer in [0, n). n must be positive.
func (p *PCG32) IntN(n int) int {
	if n <= 0 {
		panic("rng: IntN needs positive n")
	}
	// Lemire-style rejection-free bound is overkill here; modulo bias is
	// negligible for the small n used by the renderer, but we use the
	// multiply-shift trick anyway because it is cheap.
	return int(uint64(p.Next()) * uint64(n) >> 32)
}

// primes holds the radical-inverse bases for the Halton sampler.
var primes = [...]uint32{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53}

// RadicalInverse returns the base-b radical inverse of i, the core of
// Halton low-discrepancy sequences.
func RadicalInverse(baseIndex int, i uint64) float32 {
	b := uint64(primes[baseIndex%len(primes)])
	invB := 1.0 / float64(b)
	var rev uint64
	invBN := 1.0
	for i > 0 {
		next := i / b
		digit := i - next*b
		rev = rev*b + digit
		invBN *= invB
		i = next
	}
	v := float64(rev) * invBN
	if v >= 1 {
		v = 0.99999994
	}
	return float32(v)
}

// Halton produces low-discrepancy sample vectors. Dimension d of sample
// index i is the base-primes[d] radical inverse of i with a per-pixel
// Cranley-Patterson rotation so different pixels are decorrelated.
type Halton struct {
	index  uint64
	dim    int
	rotate [len(primes)]float32
}

// NewHalton creates a sampler for a pixel-distinct stream. The rotation
// offsets are drawn from a PCG stream keyed by the pixel.
func NewHalton(pixelSeed uint64) *Halton {
	h := &Halton{}
	p := NewPCG32(pixelSeed, 0x9e3779b97f4a7c15)
	for i := range h.rotate {
		h.rotate[i] = p.Float32()
	}
	return h
}

// StartSample positions the sampler at sample index i, dimension 0.
func (h *Halton) StartSample(i uint64) {
	h.index = i
	h.dim = 0
}

// Next1D returns the next dimension of the current sample vector.
func (h *Halton) Next1D() float32 {
	d := h.dim
	h.dim++
	v := RadicalInverse(d, h.index) + h.rotate[d%len(primes)]
	if v >= 1 {
		v -= 1
	}
	return v
}

// Next2D returns the next two dimensions.
func (h *Halton) Next2D() (float32, float32) {
	return h.Next1D(), h.Next1D()
}
