package rng

import (
	"math"
	"testing"
)

func TestPCG32Deterministic(t *testing.T) {
	a := NewPCG32(42, 1)
	b := NewPCG32(42, 1)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
}

func TestPCG32StreamsDiffer(t *testing.T) {
	a := NewPCG32(42, 1)
	b := NewPCG32(42, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams too correlated: %d/100 equal", same)
	}
}

func TestFloat32Range(t *testing.T) {
	p := NewPCG32(7, 3)
	for i := 0; i < 10000; i++ {
		v := p.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 out of range: %v", v)
		}
	}
}

func TestFloat32Mean(t *testing.T) {
	p := NewPCG32(11, 5)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += float64(p.Float32())
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestIntN(t *testing.T) {
	p := NewPCG32(1, 1)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := p.IntN(7)
		if v < 0 || v >= 7 {
			t.Fatalf("IntN out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("bucket %d count %d far from uniform", i, c)
		}
	}
}

func TestIntNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("IntN(0) should panic")
		}
	}()
	NewPCG32(1, 1).IntN(0)
}

func TestRadicalInverseBase2(t *testing.T) {
	// Base-2 radical inverse of 1,2,3,4 = 0.5, 0.25, 0.75, 0.125.
	want := []float32{0, 0.5, 0.25, 0.75, 0.125}
	for i, w := range want {
		got := RadicalInverse(0, uint64(i))
		if diff := float64(got - w); math.Abs(diff) > 1e-6 {
			t.Errorf("RadicalInverse(2, %d) = %v, want %v", i, got, w)
		}
	}
}

func TestRadicalInverseRange(t *testing.T) {
	for d := 0; d < len(primes); d++ {
		for i := uint64(0); i < 1000; i++ {
			v := RadicalInverse(d, i)
			if v < 0 || v >= 1 {
				t.Fatalf("radical inverse out of range: dim %d idx %d = %v", d, i, v)
			}
		}
	}
}

func TestHaltonStratification(t *testing.T) {
	// The first 16 base-2 samples must land in distinct 1/16 strata.
	h := NewHalton(0)
	seen := make(map[int]bool)
	for i := uint64(0); i < 16; i++ {
		h.StartSample(i)
		v := h.Next1D()
		stratum := int(v * 16)
		if seen[stratum] {
			t.Fatalf("stratum %d hit twice", stratum)
		}
		seen[stratum] = true
	}
}

func TestHaltonDimensionsAdvance(t *testing.T) {
	h := NewHalton(3)
	h.StartSample(5)
	a := h.Next1D()
	b := h.Next1D()
	h.StartSample(5)
	a2, b2 := h.Next2D()
	if a != a2 || b != b2 {
		t.Errorf("Next2D disagrees with two Next1D calls")
	}
}

func TestHaltonPixelDecorrelation(t *testing.T) {
	h0 := NewHalton(0)
	h1 := NewHalton(1)
	same := 0
	for i := uint64(0); i < 64; i++ {
		h0.StartSample(i)
		h1.StartSample(i)
		if h0.Next1D() == h1.Next1D() {
			same++
		}
	}
	if same > 4 {
		t.Errorf("pixel streams too similar: %d/64", same)
	}
}

func BenchmarkPCG32(b *testing.B) {
	p := NewPCG32(1, 1)
	for i := 0; i < b.N; i++ {
		_ = p.Float32()
	}
}

func BenchmarkHalton(b *testing.B) {
	h := NewHalton(1)
	for i := 0; i < b.N; i++ {
		h.StartSample(uint64(i))
		_, _ = h.Next2D()
	}
}
