package archconfig

import (
	"strings"
	"testing"
)

// FuzzArchConfig holds the decoder to its contract: arbitrary bytes
// produce either a valid config or a typed *ConfigError — never a
// panic, and never a config that fails Validate. Accepted configs must
// also survive a normalize/validate round trip (Decode's output is a
// fixed point).
func FuzzArchConfig(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"name":"gtx780"}`,
		`{"name":"modern-mid","smx_count":48,"l2_kb":6144,"dram_lat":350}`,
		`{"name":"x","smx_count":4,"smx_count":8}`,
		`{"name":"x","warp_width":64}`,
		`{"name":"x","warp_width":"wide"}`,
		`{"name":"x","smx_count":-3}`,
		`{"name":"x","line_bytes":100}`,
		`{"name":"x","l2_hit_lat":1}`,
		`{"name":"x","sched":"fifo"}`,
		`{"name":"x","drs_swap_buffers":1}`,
		`{"name":"x"} {}`,
		`{"name":"x","unknown_field":1}`,
		`{"name":[1,2]}`,
		`[{"name":"x"}]`,
		`not json at all`,
		`{"name":"x","smx_count":1e300}`,
		`{"name":"x","smx_count":3.5}`,
		`{"name":"` + strings.Repeat("a", 65) + `"}`,
		"{\"name\":\"x\",\n\"rf_banks\":0}",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Decode(data)
		if err != nil {
			if _, ok := AsConfigError(err); !ok {
				t.Fatalf("non-typed decode error %T: %v", err, err)
			}
			return
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("Decode accepted a config Validate rejects: %v\nconfig: %+v", verr, c)
		}
		if n := c.Normalized(); n != c {
			t.Fatalf("decoded config is not a normalize fixed point:\n%+v\n%+v", c, n)
		}
	})
}
