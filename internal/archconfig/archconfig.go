// Package archconfig externalizes the simulated device model into
// strict, declarative JSON, following the Accel-Sim methodology
// (PAPERS.md): the machine a run simulates — SMX count, warp
// width/warps-per-SMX, schedulers per SMX, L1/L2 cache geometry,
// hit/miss/DRAM latencies, register-file and DRS pool budgets — is
// validated data, not Go constants. The four builtin architectures'
// historical device configurations are checked-in configs
// (testdata/archs/ at the repo root) proven byte-identical to their
// hard-coded ancestors, and "modern-shaped" devices (more SMXs, wider
// L2, deeper DRAM) are one JSON file away.
//
// The decoder is spec-style, mirroring internal/service's JobSpec
// pipeline: duplicate keys, unknown fields, trailing garbage and
// oversized payloads are typed *ConfigError rejections, never silent
// accept-and-ignore; Normalize makes an omitted field identical to its
// explicit GTX780 default; Validate cross-checks against the engine
// caps progcheck verifies (warp width vs the uint32 lane-mask bound)
// and against the component validators (simt, memsys, core).
//
// Conversion methods (Simt, DRS) translate a validated config into the
// component configurations the harness wires together;
// harness.ApplyArch is the single place a config is applied to a run.
package archconfig

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/memsys"
	"repro/internal/progcheck"
	"repro/internal/regfile"
	"repro/internal/simt"
	"repro/internal/warpsched"
)

// Config is one declarative device model. The zero value of every
// field means "use the GTX780 default" (Normalize substitutes it), so
// a config file states only what differs from Table 1. Field order
// here is the documentation order; JSON objects are unordered and the
// decoder rejects duplicates.
type Config struct {
	// Name identifies the device model ("gtx780", "modern-mid"). It is
	// the registry key JobSpecs and -arch-config reference; lowercase
	// [a-z0-9-], required.
	Name string `json:"name"`
	// Summary is an optional one-line description for -list-archs.
	Summary string `json:"summary,omitempty"`

	// WarpWidth is the SIMD lane count per warp (≤ 32: the engine
	// tracks lane activity in uint32 masks; see progcheck.MaxWarpWidth).
	WarpWidth int `json:"warp_width,omitempty"`
	// SMXCount is the number of SMXs per device.
	SMXCount int `json:"smx_count,omitempty"`
	// SchedulersPerSMX is the number of warp schedulers per SMX.
	SchedulersPerSMX int `json:"schedulers_per_smx,omitempty"`
	// DispatchPerScheduler is the number of instruction dispatch units
	// per scheduler.
	DispatchPerScheduler int `json:"dispatch_per_scheduler,omitempty"`
	// WarpsPerSMX is the resident warp budget policies that accept the
	// harness warp count run with (harness Options.AilaWarps). Policies
	// with their own machine sizing (DRS derives warps from its row
	// configuration) ignore it.
	WarpsPerSMX int `json:"warps_per_smx,omitempty"`
	// ClockMHz is the SMX clock.
	ClockMHz int `json:"clock_mhz,omitempty"`
	// Sched names the device's default warp scheduler ("gto", "lrr",
	// "wasp"; warpsched.Builtin() judges it). An explicit harness/spec
	// scheduler overrides it.
	Sched string `json:"sched,omitempty"`

	// LineBytes is the cache line size of every level.
	LineBytes int `json:"line_bytes,omitempty"`
	// L1DataKB and L1TexKB size the per-SMX L1 data and texture caches.
	L1DataKB int `json:"l1_data_kb,omitempty"`
	L1TexKB  int `json:"l1_tex_kb,omitempty"`
	// L1Assoc is the associativity of both L1s.
	L1Assoc int `json:"l1_assoc,omitempty"`
	// L2KB sizes the device-wide shared L2; L2Assoc its associativity.
	L2KB    int `json:"l2_kb,omitempty"`
	L2Assoc int `json:"l2_assoc,omitempty"`
	// L1HitLat is cycles from issue to data for an L1 hit; L2HitLat the
	// additional cycles for an L1 miss that hits L2; DRAMLat the
	// additional cycles for an L2 miss. The epoch-barrier engine's
	// determinism proof needs L1HitLat+L2HitLat to exceed the epoch
	// length, which simt.Config.EpochLen clamps automatically.
	L1HitLat int `json:"l1_hit_lat,omitempty"`
	L2HitLat int `json:"l2_hit_lat,omitempty"`
	DRAMLat  int `json:"dram_lat,omitempty"`
	// TxCycles is the extra cycles per additional coalesced transaction.
	TxCycles int `json:"tx_cycles,omitempty"`

	// RFBanks is the number of single-ported register-file SRAM banks;
	// RFRegsPerSMX the total 32-bit registers per SMX.
	RFBanks      int `json:"rf_banks,omitempty"`
	RFRegsPerSMX int `json:"rf_regs_per_smx,omitempty"`

	// DRSBackupRows, DRSSwapBuffers and DRSExtraBank are the DRS pool
	// budgets (paper §4.3): backup ray rows, swap buffers split across
	// the three collector roles, and whether backup rows live in an
	// extra register bank instead of displacing spawned warps.
	DRSBackupRows  int  `json:"drs_backup_rows,omitempty"`
	DRSSwapBuffers int  `json:"drs_swap_buffers,omitempty"`
	DRSExtraBank   bool `json:"drs_extra_bank,omitempty"`
}

// ConfigError reports one invalid config field — the archconfig
// counterpart of service.SpecError. Err, when non-nil, carries the
// underlying typed error (warpsched.UnknownSchedulerError for a bad
// scheduler name) through errors.As.
type ConfigError struct {
	// Field is the JSON field name ("warp_width"), or "body" for
	// decode-level failures.
	Field string
	// Reason says what is wrong with it.
	Reason string
	// Err is the underlying error, if a typed one exists.
	Err error
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("archconfig: invalid config: %s: %s", e.Field, e.Reason)
}

func (e *ConfigError) Unwrap() error { return e.Err }

// AsConfigError unwraps err to a *ConfigError if there is one.
func AsConfigError(err error) (*ConfigError, bool) {
	var ce *ConfigError
	ok := errors.As(err, &ce)
	return ce, ok
}

// UnknownArchError is the typed error for a device-model name the
// builtin catalog does not know, mirroring reorder.UnknownPolicyError:
// every layer that resolves arch names (harness options, drsbench
// flags, service job specs) surfaces this one type, so an unknown name
// fails in exactly one place.
type UnknownArchError struct {
	// Name is the unresolved device-model name.
	Name string
	// Known lists the catalog names in registration order.
	Known []string
}

func (e *UnknownArchError) Error() string {
	return fmt.Sprintf("archconfig: unknown architecture %q; valid: %v", e.Name, e.Known)
}

// Normalize substitutes the GTX780 default for every omitted
// (zero-valued) field, making an omitted field byte-identical in
// effect to its explicit default. Name and Summary are identity, not
// device shape, and are left alone; DRSExtraBank's zero value is the
// default itself.
func (c *Config) Normalize() {
	def := func(p *int, d int) {
		if *p == 0 {
			*p = d
		}
	}
	def(&c.WarpWidth, 32)
	def(&c.SMXCount, 15)
	def(&c.SchedulersPerSMX, 4)
	def(&c.DispatchPerScheduler, 2)
	def(&c.WarpsPerSMX, 48)
	def(&c.ClockMHz, 980)
	if c.Sched == "" {
		c.Sched = "gto"
	}
	def(&c.LineBytes, 128)
	def(&c.L1DataKB, 48)
	def(&c.L1TexKB, 48)
	def(&c.L1Assoc, 6)
	def(&c.L2KB, 1536)
	def(&c.L2Assoc, 16)
	def(&c.L1HitLat, 28)
	def(&c.L2HitLat, 170)
	def(&c.DRAMLat, 250)
	def(&c.TxCycles, 4)
	def(&c.RFBanks, 32)
	def(&c.RFRegsPerSMX, 65536)
	def(&c.DRSBackupRows, 1)
	def(&c.DRSSwapBuffers, 6)
}

// Normalized returns a normalized copy.
func (c Config) Normalized() Config {
	c.Normalize()
	return c
}

// Validate checks a normalized config and returns a typed
// *ConfigError for the first rejected field. The checks are
// cross-checked against the engine caps progcheck verifies (warp width
// vs the uint32 lane-mask bound) and finished by the component
// validators themselves (simt, memsys via simt, core), so a config
// that validates here builds a runnable device.
func (c Config) Validate() error {
	switch {
	case c.Name == "":
		return &ConfigError{Field: "name", Reason: "required"}
	case !validName(c.Name):
		return &ConfigError{Field: "name", Reason: fmt.Sprintf("%q must be 1-64 chars of [a-z0-9-]", c.Name)}
	case c.WarpWidth < 1 || c.WarpWidth > progcheck.MaxWarpWidth:
		return &ConfigError{Field: "warp_width", Reason: fmt.Sprintf("%d out of range [1,%d] (the engine tracks lanes in uint32 masks; progcheck.MaxWarpWidth)", c.WarpWidth, progcheck.MaxWarpWidth)}
	case c.SMXCount < 1 || c.SMXCount > 1024:
		return &ConfigError{Field: "smx_count", Reason: fmt.Sprintf("%d out of range [1,1024]", c.SMXCount)}
	case c.SchedulersPerSMX < 1 || c.SchedulersPerSMX > 64:
		return &ConfigError{Field: "schedulers_per_smx", Reason: fmt.Sprintf("%d out of range [1,64]", c.SchedulersPerSMX)}
	case c.DispatchPerScheduler < 1 || c.DispatchPerScheduler > 8:
		return &ConfigError{Field: "dispatch_per_scheduler", Reason: fmt.Sprintf("%d out of range [1,8]", c.DispatchPerScheduler)}
	case c.WarpsPerSMX < 1 || c.WarpsPerSMX > 1024:
		return &ConfigError{Field: "warps_per_smx", Reason: fmt.Sprintf("%d out of range [1,1024]", c.WarpsPerSMX)}
	case c.ClockMHz < 1 || c.ClockMHz > 10000:
		return &ConfigError{Field: "clock_mhz", Reason: fmt.Sprintf("%d out of range [1,10000] MHz", c.ClockMHz)}
	case c.LineBytes < 32 || c.LineBytes > 512 || c.LineBytes&(c.LineBytes-1) != 0:
		return &ConfigError{Field: "line_bytes", Reason: fmt.Sprintf("%d must be a power of two in [32,512]", c.LineBytes)}
	case c.L1DataKB < 1 || c.L1DataKB > 1024:
		return &ConfigError{Field: "l1_data_kb", Reason: fmt.Sprintf("%d out of range [1,1024]", c.L1DataKB)}
	case c.L1TexKB < 1 || c.L1TexKB > 1024:
		return &ConfigError{Field: "l1_tex_kb", Reason: fmt.Sprintf("%d out of range [1,1024]", c.L1TexKB)}
	case c.L1Assoc < 1 || c.L1Assoc > 64:
		return &ConfigError{Field: "l1_assoc", Reason: fmt.Sprintf("%d out of range [1,64]", c.L1Assoc)}
	case c.L2KB < 1 || c.L2KB > 1<<20:
		return &ConfigError{Field: "l2_kb", Reason: fmt.Sprintf("%d out of range [1,%d]", c.L2KB, 1<<20)}
	case c.L2Assoc < 1 || c.L2Assoc > 64:
		return &ConfigError{Field: "l2_assoc", Reason: fmt.Sprintf("%d out of range [1,64]", c.L2Assoc)}
	case c.L1HitLat < 1:
		return &ConfigError{Field: "l1_hit_lat", Reason: fmt.Sprintf("%d must be positive", c.L1HitLat)}
	case c.L2HitLat < c.L1HitLat:
		return &ConfigError{Field: "l2_hit_lat", Reason: fmt.Sprintf("%d must be at least the L1 hit latency %d (it is the additional L1-miss cost)", c.L2HitLat, c.L1HitLat)}
	case c.DRAMLat < c.L2HitLat:
		return &ConfigError{Field: "dram_lat", Reason: fmt.Sprintf("%d must be at least the L2 hit latency %d (it is the additional L2-miss cost)", c.DRAMLat, c.L2HitLat)}
	case c.TxCycles < 1 || c.TxCycles > 64:
		return &ConfigError{Field: "tx_cycles", Reason: fmt.Sprintf("%d out of range [1,64]", c.TxCycles)}
	case c.RFBanks < 1 || c.RFBanks > 256:
		return &ConfigError{Field: "rf_banks", Reason: fmt.Sprintf("%d out of range [1,256]", c.RFBanks)}
	case c.RFRegsPerSMX < 1024 || c.RFRegsPerSMX > 1<<24:
		return &ConfigError{Field: "rf_regs_per_smx", Reason: fmt.Sprintf("%d out of range [1024,%d]", c.RFRegsPerSMX, 1<<24)}
	case c.DRSBackupRows < 1 || c.DRSBackupRows > 16:
		return &ConfigError{Field: "drs_backup_rows", Reason: fmt.Sprintf("%d out of range [1,16]", c.DRSBackupRows)}
	case c.DRSSwapBuffers < 3 || c.DRSSwapBuffers > 64:
		return &ConfigError{Field: "drs_swap_buffers", Reason: fmt.Sprintf("%d out of range [3,64] (one swap buffer per collector role minimum)", c.DRSSwapBuffers)}
	}
	if _, err := warpsched.Builtin().New(c.Sched); err != nil {
		return &ConfigError{Field: "sched", Reason: err.Error(), Err: err}
	}
	// Component validators have the final word: a config this package
	// accepts must build a runnable device.
	if err := c.Simt().Validate(); err != nil {
		return &ConfigError{Field: "body", Reason: fmt.Sprintf("device config rejected: %v", err)}
	}
	if err := c.DRS().Validate(); err != nil {
		return &ConfigError{Field: "body", Reason: fmt.Sprintf("DRS config rejected: %v", err)}
	}
	return nil
}

func validName(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '-' && (c < 'a' || c > 'z') && (c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// Simt translates the device model into the engine configuration.
// Runtime knobs that are not device shape — Engine, EpochCycles,
// MaxCycles, Collector, the scheduler factory — are left zero for the
// caller (harness.ApplyArch preserves them from the base options).
// MaxWarpsPerSMX carries WarpsPerSMX; the harness still substitutes a
// policy's own warp count exactly as it does for the hard-coded
// defaults.
func (c Config) Simt() simt.Config {
	return simt.Config{
		WarpSize:             c.WarpWidth,
		NumSMX:               c.SMXCount,
		SchedulersPerSMX:     c.SchedulersPerSMX,
		DispatchPerScheduler: c.DispatchPerScheduler,
		MaxWarpsPerSMX:       c.WarpsPerSMX,
		ClockMHz:             c.ClockMHz,
		Mem: memsys.Config{
			LineBytes: c.LineBytes,
			L1DataKB:  c.L1DataKB,
			L1TexKB:   c.L1TexKB,
			L1Assoc:   c.L1Assoc,
			L2KB:      c.L2KB,
			L2Assoc:   c.L2Assoc,
			L1HitLat:  c.L1HitLat,
			L2HitLat:  c.L2HitLat,
			DRAMLat:   c.DRAMLat,
			TxCycles:  c.TxCycles,
			NumSMX:    c.SMXCount,
		},
		RF: regfile.Config{
			NumBanks:   c.RFBanks,
			RegsPerSMX: c.RFRegsPerSMX,
			WarpSize:   c.WarpWidth,
		},
	}
}

// DRS translates the DRS pool budgets into the core policy
// configuration the paper's architecture runs with on this device.
func (c Config) DRS() core.Config {
	return core.Config{
		BackupRows:  c.DRSBackupRows,
		SwapBuffers: c.DRSSwapBuffers,
		ExtraBank:   c.DRSExtraBank,
		WarpSize:    c.WarpWidth,
	}
}
