package archconfig

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/simt"
	"repro/internal/warpsched"
)

func TestDecodeEmptyObjectNeedsName(t *testing.T) {
	_, err := Decode([]byte(`{}`))
	ce, ok := AsConfigError(err)
	if !ok || ce.Field != "name" {
		t.Fatalf("want name ConfigError, got %v", err)
	}
}

// An omitted field must behave exactly like its explicit GTX780
// default: decoding a name-only config equals decoding the fully
// explicit gtx780 file.
func TestNormalizeOmittedEqualsExplicit(t *testing.T) {
	minimal, err := Decode([]byte(`{"name":"gtx780"}`))
	if err != nil {
		t.Fatal(err)
	}
	full, err := Builtin(DefaultName)
	if err != nil {
		t.Fatal(err)
	}
	// Summary is documentation, not device shape.
	minimal.Summary = full.Summary
	if minimal != full {
		t.Errorf("minimal decode != builtin:\n%+v\n%+v", minimal, full)
	}
}

func TestDecodeRejections(t *testing.T) {
	cases := []struct {
		name  string
		body  string
		field string
	}{
		{"duplicate key", `{"name":"x","smx_count":4,"smx_count":8}`, "smx_count"},
		{"unknown field", `{"name":"x","smx_counts":4}`, "body"},
		{"trailing garbage", `{"name":"x"} {}`, "body"},
		{"wrong type", `{"name":"x","warp_width":"wide"}`, "warp_width"},
		{"non-object", `[1,2]`, "body"},
		{"not json", `shader model 6`, "body"},
		{"oversized", `{"name":"` + strings.Repeat("a", MaxConfigBytes) + `"}`, "body"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode([]byte(tc.body))
			ce, ok := AsConfigError(err)
			if !ok {
				t.Fatalf("want *ConfigError, got %v", err)
			}
			if ce.Field != tc.field {
				t.Errorf("field = %q, want %q (err: %v)", ce.Field, tc.field, err)
			}
		})
	}
}

func TestValidateRanges(t *testing.T) {
	base := func() Config { return Config{Name: "t"}.Normalized() }
	cases := []struct {
		field  string
		mutate func(*Config)
	}{
		{"name", func(c *Config) { c.Name = "Bad Name!" }},
		{"warp_width", func(c *Config) { c.WarpWidth = 64 }},
		{"warp_width", func(c *Config) { c.WarpWidth = -1 }},
		{"smx_count", func(c *Config) { c.SMXCount = 4096 }},
		{"schedulers_per_smx", func(c *Config) { c.SchedulersPerSMX = 100 }},
		{"dispatch_per_scheduler", func(c *Config) { c.DispatchPerScheduler = 9 }},
		{"warps_per_smx", func(c *Config) { c.WarpsPerSMX = 5000 }},
		{"clock_mhz", func(c *Config) { c.ClockMHz = 20000 }},
		{"line_bytes", func(c *Config) { c.LineBytes = 100 }},
		{"l1_data_kb", func(c *Config) { c.L1DataKB = 2048 }},
		{"l1_tex_kb", func(c *Config) { c.L1TexKB = -3 }},
		{"l1_assoc", func(c *Config) { c.L1Assoc = 100 }},
		{"l2_kb", func(c *Config) { c.L2KB = 1 << 21 }},
		{"l2_assoc", func(c *Config) { c.L2Assoc = 65 }},
		{"l1_hit_lat", func(c *Config) { c.L1HitLat = -1 }},
		{"l2_hit_lat", func(c *Config) { c.L2HitLat = 5 }},
		{"dram_lat", func(c *Config) { c.DRAMLat = 10 }},
		{"tx_cycles", func(c *Config) { c.TxCycles = 100 }},
		{"rf_banks", func(c *Config) { c.RFBanks = 1000 }},
		{"rf_regs_per_smx", func(c *Config) { c.RFRegsPerSMX = 100 }},
		{"drs_backup_rows", func(c *Config) { c.DRSBackupRows = 17 }},
		{"drs_swap_buffers", func(c *Config) { c.DRSSwapBuffers = 2 }},
		{"sched", func(c *Config) { c.Sched = "fifo" }},
	}
	for _, tc := range cases {
		c := base()
		tc.mutate(&c)
		err := c.Validate()
		ce, ok := AsConfigError(err)
		if !ok {
			t.Errorf("%s: want *ConfigError, got %v", tc.field, err)
			continue
		}
		if ce.Field != tc.field {
			t.Errorf("mutation of %s rejected under field %q: %v", tc.field, ce.Field, err)
		}
	}
	if err := base().Validate(); err != nil {
		t.Errorf("normalized base rejected: %v", err)
	}
}

// A bad scheduler name must surface the registry's typed error through
// the ConfigError wrapper.
func TestValidateSchedUnwraps(t *testing.T) {
	c := Config{Name: "t", Sched: "fifo"}.Normalized()
	err := c.Validate()
	var ue *warpsched.UnknownSchedulerError
	if !errors.As(err, &ue) || ue.Name != "fifo" {
		t.Fatalf("want wrapped UnknownSchedulerError, got %v", err)
	}
}

// The catalog: every builtin validates, gtx780 translates to exactly
// the hard-coded component defaults, and the four builtin architecture
// configs differ from gtx780 only where documented.
func TestBuiltinCatalog(t *testing.T) {
	want := []string{"gtx780", "aila", "drs", "dmk", "tbc", "modern-mid", "modern-big"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("catalog = %v, want %v", got, want)
	}
	for _, name := range want {
		c, err := Builtin(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if c.Summary == "" {
			t.Errorf("%s: empty summary", name)
		}
	}

	gtx, _ := Builtin(DefaultName)
	wantSimt := simt.DefaultConfig()
	// reflect.DeepEqual because simt.Config carries the (nil here)
	// scheduler-factory func field and is no longer ==-comparable.
	if got := gtx.Simt(); !reflect.DeepEqual(got, wantSimt) {
		t.Errorf("gtx780.Simt() != simt.DefaultConfig():\n%+v\n%+v", got, wantSimt)
	}
	if got, want := gtx.DRS(), core.DefaultConfig(); got != want {
		t.Errorf("gtx780.DRS() != core.DefaultConfig():\n%+v\n%+v", got, want)
	}
	if gtx.WarpsPerSMX != 48 || gtx.Sched != "gto" {
		t.Errorf("gtx780 warp budget/sched: %d/%s", gtx.WarpsPerSMX, gtx.Sched)
	}

	// The four architecture configs share the gtx780 device; only
	// identity (and drs's residency documentation) differs.
	for _, name := range []string{"aila", "drs", "dmk", "tbc"} {
		c, _ := Builtin(name)
		n := c
		n.Name, n.Summary, n.WarpsPerSMX = gtx.Name, gtx.Summary, gtx.WarpsPerSMX
		if n != gtx {
			t.Errorf("%s deviates from gtx780 beyond name/summary/warps: %+v", name, c)
		}
	}
	drs, _ := Builtin("drs")
	if drs.WarpsPerSMX != 58 {
		t.Errorf("drs warps_per_smx = %d, want 58 (60 rows - 2x1 backup)", drs.WarpsPerSMX)
	}
	if got, want := core.DefaultConfig().Warps(), 58; got != want {
		t.Fatalf("core default warp derivation moved: %d != %d; update the drs config", got, want)
	}
}

func TestUnknownArch(t *testing.T) {
	_, err := Builtin("gtx1080")
	var ue *UnknownArchError
	if !errors.As(err, &ue) {
		t.Fatalf("want *UnknownArchError, got %v", err)
	}
	if ue.Name != "gtx1080" || len(ue.Known) != 7 {
		t.Errorf("error carries name=%q known=%v", ue.Name, ue.Known)
	}
}

// TestCheckedInConfigs proves the files under testdata/archs/ are the
// builtin catalog: every file decodes to exactly its builtin entry,
// and every builtin has a file. The files are the user-facing
// documentation of the format; drift between them and the Go catalog
// would make that documentation a lie.
func TestCheckedInConfigs(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "archs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		c, err := Decode(data)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if want := strings.TrimSuffix(e.Name(), ".json"); c.Name != want {
			t.Errorf("%s: config names itself %q", e.Name(), c.Name)
		}
		b, err := Builtin(c.Name)
		if err != nil {
			t.Errorf("%s: not a builtin: %v", e.Name(), err)
			continue
		}
		if c != b {
			t.Errorf("%s: file differs from builtin:\nfile:    %+v\nbuiltin: %+v", e.Name(), c, b)
		}
		seen[c.Name] = true
	}
	for _, name := range Names() {
		if !seen[name] {
			t.Errorf("builtin %s has no checked-in file under testdata/archs/", name)
		}
	}
	if len(seen) < 6 {
		t.Errorf("only %d checked-in configs; want the four builtin architectures plus two modern shapes (and the gtx780 ancestor)", len(seen))
	}
}

// Round-trip: marshaling a builtin and decoding it lands on the same
// config (the format is total over the catalog).
func TestBuiltinRoundTrip(t *testing.T) {
	for _, name := range Names() {
		c, _ := Builtin(name)
		data, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Decode(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if back != c {
			t.Errorf("%s: round trip changed config", name)
		}
	}
}

func TestDecodeFile(t *testing.T) {
	c, err := DecodeFile(filepath.Join("..", "..", "testdata", "archs", "modern-mid.json"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "modern-mid" || c.SMXCount != 48 {
		t.Errorf("unexpected config: %+v", c)
	}
	if _, err := DecodeFile(filepath.Join("..", "..", "testdata", "archs", "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
