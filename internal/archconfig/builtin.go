package archconfig

import "sync"

// DefaultName is the device model every run used before configs
// existed: the paper's Table 1 GTX780. The service folds an explicit
// DefaultName back to "omitted" (exactly like the policy field's
// legacy names), so pre-config job specs keep their content addresses.
const DefaultName = "gtx780"

// builtinConfigs returns the catalog in registration order: the
// GTX780 ancestor, the four builtin architectures' historical device
// configurations, then the modern-shaped examples. Every entry is
// normalized and must pass Validate (the catalog test pins this);
// testdata/archs/<name>.json at the repo root carries the same
// configs as checked-in files, proven equal by TestCheckedInConfigs.
func builtinConfigs() []Config {
	gtx := Config{
		Name:    DefaultName,
		Summary: "paper Table 1 GeForce GTX780 (Kepler): 15 SMX, 48-warp occupancy, 1.5MB L2",
	}.Normalized()

	aila := gtx
	aila.Name = "aila"
	aila.Summary = "GTX780 as the aila/while-while software baseline ran it (48 warps/SMX)"

	drs := gtx
	drs.Name = "drs"
	drs.Summary = "GTX780 as the paper's DRS runs configured it: 58 spawned warps (60 rows - 2x1 backup), 6 swap buffers"
	// DRS derives its warp count from the row configuration
	// (core.Config.Warps: 60 - 2*BackupRows with no extra bank); the
	// value here documents the residency and feeds policies that accept
	// the harness count when this device is paired with them.
	drs.WarpsPerSMX = 58

	dmk := gtx
	dmk.Name = "dmk"
	dmk.Summary = "GTX780 as the dynamic micro-kernel baseline ran it (48 warps/SMX)"

	tbc := gtx
	tbc.Name = "tbc"
	tbc.Summary = "GTX780 as the thread block compaction baseline ran it (48 warps/SMX)"

	// Modern-shaped devices: the question the 2017 paper could not ask.
	// Neither models one specific product; they are "more SMXs, wider
	// L2, deeper DRAM latency in cycles" shapes in the Accel-Sim
	// tradition of configurable device families.
	mid := Config{
		Name:     "modern-mid",
		Summary:  "modern mid-range shape: 48 SMX @ 1.5GHz, 128KB L1, 6MB L2, deeper DRAM",
		SMXCount: 48,
		ClockMHz: 1500,
		L1DataKB: 128,
		L1TexKB:  128,
		L1Assoc:  8,
		L2KB:     6144,
		L1HitLat: 32,
		L2HitLat: 188,
		DRAMLat:  350,
	}.Normalized()

	big := Config{
		Name:        "modern-big",
		Summary:     "modern flagship shape: 128 SMX @ 1.8GHz, 64-warp occupancy, 24MB L2, deepest DRAM",
		SMXCount:    128,
		WarpsPerSMX: 64,
		ClockMHz:    1800,
		L1DataKB:    128,
		L1TexKB:     128,
		L1Assoc:     8,
		L2KB:        24576,
		L2Assoc:     32,
		L1HitLat:    34,
		L2HitLat:    200,
		DRAMLat:     420,
	}.Normalized()

	return []Config{gtx, aila, drs, dmk, tbc, mid, big}
}

// catalog indexes the builtin configs by name once.
var catalog = sync.OnceValue(func() map[string]Config {
	m := make(map[string]Config)
	for _, c := range builtinConfigs() {
		m[c.Name] = c
	}
	return m
})

// catalogOrder lists the builtin names in registration order.
var catalogOrder = sync.OnceValue(func() []string {
	cs := builtinConfigs()
	names := make([]string, len(cs))
	for i, c := range cs {
		names[i] = c.Name
	}
	return names
})

// Builtin returns the named builtin device model (normalized), or a
// typed *UnknownArchError naming the valid set. It is the single place
// an arch-config name is judged: drsbench flags, harness options and
// service job specs all resolve through it.
func Builtin(name string) (Config, error) {
	c, ok := catalog()[name]
	if !ok {
		return Config{}, &UnknownArchError{Name: name, Known: Names()}
	}
	return c, nil
}

// Names returns the builtin device-model names in registration order
// (the canonical display and iteration order).
func Names() []string {
	order := catalogOrder()
	out := make([]string, len(order))
	copy(out, order)
	return out
}
