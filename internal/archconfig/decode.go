package archconfig

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// MaxConfigBytes bounds the JSON encoding of a device-model config.
const MaxConfigBytes = 1 << 16

// Decode parses, normalizes and validates one device-model config from
// strict JSON. The pipeline mirrors service.DecodeSpec: oversized
// payloads, duplicate keys (encoding/json silently keeps the last,
// which would let two textually different configs describe one
// device), unknown fields, trailing garbage and non-integer numbers
// are all typed *ConfigError rejections, never panics — FuzzArchConfig
// holds it to that. A config Decode returns always passes Validate.
func Decode(data []byte) (Config, error) {
	if len(data) > MaxConfigBytes {
		return Config{}, &ConfigError{Field: "body", Reason: fmt.Sprintf("config is %d bytes; limit %d", len(data), MaxConfigBytes)}
	}
	if err := checkDuplicateKeys(data); err != nil {
		return Config{}, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return Config{}, &ConfigError{Field: decodeErrField(err), Reason: err.Error()}
	}
	// Reject trailing content after the config object ("{}{}" or "{} x").
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return Config{}, &ConfigError{Field: "body", Reason: "trailing data after config object"}
	}
	c.Normalize()
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// DecodeFile is Decode over a file's contents (drsbench's
// -arch-config @path form).
func DecodeFile(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, &ConfigError{Field: "body", Reason: err.Error(), Err: err}
	}
	return Decode(data)
}

// decodeErrField extracts the offending JSON field from an
// encoding/json error when it names one, so a type mismatch reports
// "warp_width: ... cannot unmarshal string" under its own field rather
// than a generic body error.
func decodeErrField(err error) string {
	if te, ok := err.(*json.UnmarshalTypeError); ok && te.Field != "" {
		return te.Field
	}
	return "body"
}

// checkDuplicateKeys walks the JSON token stream and rejects objects
// that repeat a key (same walk as the service's spec decoder).
func checkDuplicateKeys(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	type frame struct {
		object bool
		seen   map[string]bool
		isKey  bool
	}
	var stack []*frame
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return &ConfigError{Field: "body", Reason: err.Error()}
		}
		top := func() *frame {
			if len(stack) == 0 {
				return nil
			}
			return stack[len(stack)-1]
		}
		switch t := tok.(type) {
		case json.Delim:
			switch t {
			case '{':
				stack = append(stack, &frame{object: true, seen: make(map[string]bool), isKey: true})
			case '[':
				stack = append(stack, &frame{})
			case '}', ']':
				stack = stack[:len(stack)-1]
				if f := top(); f != nil && f.object {
					f.isKey = true
				}
			}
		case string:
			if f := top(); f != nil && f.object && f.isKey {
				if f.seen[t] {
					return &ConfigError{Field: t, Reason: fmt.Sprintf("duplicate key %q", t)}
				}
				f.seen[t] = true
				f.isKey = false
			} else if f != nil && f.object {
				f.isKey = true
			}
		default:
			if f := top(); f != nil && f.object {
				f.isKey = true
			}
		}
	}
}
