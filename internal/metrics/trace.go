package metrics

import (
	"bytes"
	"fmt"
	"io"
	"strings"
)

// Trace accumulates events in the Chrome trace-event JSON format (the
// "JSON Array Format" chrome://tracing and Perfetto load). Timestamps
// are in microseconds by convention; the simulator maps one device
// cycle to one microsecond, so the trace timeline reads directly in
// cycles.
//
// Events are written in append order and all encoding is done by this
// package (no map iteration), so a trace of a deterministic run is
// byte-identical across runs.
type Trace struct {
	buf    bytes.Buffer
	events int
}

// Arg is one key/value pair of an event's args object. Args are
// encoded in slice order.
type Arg struct {
	Name  string
	Value int64
}

// NewTrace creates an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Events returns the number of events recorded.
func (t *Trace) Events() int { return t.events }

func (t *Trace) begin() {
	if t.events > 0 {
		t.buf.WriteByte(',')
	}
	t.buf.WriteByte('\n')
	t.events++
}

func writeArgs(buf *bytes.Buffer, args []Arg) {
	buf.WriteString(`"args":{`)
	for i, a := range args {
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(buf, "%q:%d", a.Name, a.Value)
	}
	buf.WriteByte('}')
}

// ProcessName emits the metadata event naming process pid.
func (t *Trace) ProcessName(pid int, name string) {
	t.begin()
	fmt.Fprintf(&t.buf,
		`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%q}}`, pid, name)
}

// ThreadName emits the metadata event naming thread tid of process pid.
func (t *Trace) ThreadName(pid, tid int, name string) {
	t.begin()
	fmt.Fprintf(&t.buf,
		`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%q}}`, pid, tid, name)
}

// Slice emits a complete ("X") duration event: a phase of length dur
// starting at ts on (pid, tid).
func (t *Trace) Slice(pid, tid int, name string, ts, dur int64, args []Arg) {
	t.begin()
	fmt.Fprintf(&t.buf,
		`{"name":%q,"ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d,`, name, ts, dur, pid, tid)
	writeArgs(&t.buf, args)
	t.buf.WriteByte('}')
}

// Counter emits a counter ("C") event: the named counter's series
// values at ts. Each Arg becomes one stacked series in the counter
// track.
func (t *Trace) Counter(pid int, name string, ts int64, args []Arg) {
	t.begin()
	fmt.Fprintf(&t.buf, `{"name":%q,"ph":"C","ts":%d,"pid":%d,`, name, ts, pid)
	writeArgs(&t.buf, args)
	t.buf.WriteByte('}')
}

// Instant emits an instant ("i") event at ts on (pid, tid), scoped to
// the thread.
func (t *Trace) Instant(pid, tid int, name string, ts int64) {
	t.begin()
	fmt.Fprintf(&t.buf,
		`{"name":%q,"ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d}`, name, ts, pid, tid)
}

// WriteJSON writes the complete trace object. The output loads in
// Perfetto / chrome://tracing.
func (t *Trace) WriteJSON(w io.Writer) error {
	if _, err := io.WriteString(w, `{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	if _, err := w.Write(t.buf.Bytes()); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}

// MarshalJSON returns the trace as one JSON document (WriteJSON's
// output).
func (t *Trace) MarshalJSON() ([]byte, error) {
	var sb strings.Builder
	if err := t.WriteJSON(&sb); err != nil {
		return nil, err
	}
	return []byte(sb.String()), nil
}
