package metrics

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestCounterGaugeConstSnapshot(t *testing.T) {
	r := NewRegistry()
	var c int64
	r.Counter("smx0/warp_instrs", &c)
	r.Gauge("smx0/live_warps", func() int64 { return 7 })
	r.Const("run/rays", 1234)
	c = 41
	s := r.Snapshot()
	if s.Len() != 3 || r.Len() != 3 {
		t.Fatalf("len = %d / %d, want 3", s.Len(), r.Len())
	}
	if v, ok := s.Get("smx0/warp_instrs"); !ok || v != 41 {
		t.Errorf("counter = %d,%v", v, ok)
	}
	if v, ok := s.Get("smx0/live_warps"); !ok || v != 7 {
		t.Errorf("gauge = %d,%v", v, ok)
	}
	if v, ok := s.Get("run/rays"); !ok || v != 1234 {
		t.Errorf("const = %d,%v", v, ok)
	}
	if _, ok := s.Get("nope"); ok {
		t.Errorf("missing path found")
	}
	if v, ok := r.Value("smx0/warp_instrs"); !ok || v != 41 {
		t.Errorf("live value = %d,%v", v, ok)
	}
	if _, ok := r.Value("nope"); ok || r.Has("nope") || !r.Has("run/rays") {
		t.Errorf("Has/Value on missing path")
	}
	// Snapshots capture; later increments must not leak in.
	c = 100
	if v, _ := s.Get("smx0/warp_instrs"); v != 41 {
		t.Errorf("snapshot mutated to %d", v)
	}
}

func TestSnapshotJSONCanonical(t *testing.T) {
	r := NewRegistry()
	var b, a int64 = 2, 1
	r.Counter("z/b", &b)
	r.Counter("a/a", &a)
	got, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	want := `{"a/a":1,"z/b":2}`
	if string(got) != want {
		t.Errorf("json = %s, want %s", got, want)
	}
	// Must be valid JSON for downstream tooling.
	var m map[string]int64
	if err := json.Unmarshal(got, &m); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if m["a/a"] != 1 || m["z/b"] != 2 {
		t.Errorf("roundtrip = %v", m)
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	var a int64
	r.Counter("x/a", &a)
	s1 := r.Snapshot()
	a = 5
	s2 := r.Snapshot()
	if d := s1.Diff(s2); d == "" {
		t.Errorf("diff missed divergence")
	}
	if d := s2.Diff(r.Snapshot()); d != "" {
		t.Errorf("identical snapshots diff: %s", d)
	}
	r2 := NewRegistry()
	r2.Const("x/a", 5)
	r2.Const("x/b", 1)
	if d := s2.Diff(r2.Snapshot()); d == "" {
		t.Errorf("extra path not reported")
	}
	if d := r2.Snapshot().Diff(s2); d == "" {
		t.Errorf("missing path not reported")
	}
}

func TestRegisterPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"duplicate", func(r *Registry) { r.Const("a", 1); r.Const("a", 2) }},
		{"empty path", func(r *Registry) { r.Const("", 1) }},
		{"uppercase", func(r *Registry) { r.Const("A/b", 1) }},
		{"empty segment", func(r *Registry) { r.Const("a//b", 1) }},
		{"trailing slash", func(r *Registry) { r.Const("a/", 1) }},
		{"leading slash", func(r *Registry) { r.Const("/a", 1) }},
		{"nil counter", func(r *Registry) { r.Counter("a", nil) }},
		{"nil gauge", func(r *Registry) { r.Gauge("a", nil) }},
		{"non-struct", func(r *Registry) { x := 3; r.RegisterStruct("a", &x) }},
		{"non-pointer", func(r *Registry) { r.RegisterStruct("a", struct{ X int64 }{}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.fn(NewRegistry())
		})
	}
}

type innerStats struct {
	Hits int64
}

type demoStats struct {
	WarpInstrs int64
	SIInstrs   int64
	Hist       [3]int64
	Small      int32
	Plain      int
	Skipped    int64   `metrics:"-"`
	Renamed    int64   `metrics:"other_name"`
	Rate       float64 // non-integer: skipped
	unexported int64
	Inner      innerStats
}

func TestRegisterStruct(t *testing.T) {
	var d demoStats
	d.unexported = 1 // silence unused-field vet noise
	_ = d.unexported
	r := NewRegistry()
	r.RegisterStruct("smx1", &d)
	d.WarpInstrs = 10
	d.SIInstrs = 2
	d.Hist = [3]int64{5, 6, 7}
	d.Small = 3
	d.Plain = 4
	d.Skipped = 99
	d.Renamed = 8
	d.Inner.Hits = 11
	s := r.Snapshot()
	want := map[string]int64{
		"smx1/warp_instrs": 10,
		"smx1/si_instrs":   2,
		"smx1/hist/0":      5,
		"smx1/hist/1":      6,
		"smx1/hist/2":      7,
		"smx1/small":       3,
		"smx1/plain":       4,
		"smx1/other_name":  8,
		"smx1/inner/hits":  11,
	}
	if s.Len() != len(want) {
		t.Errorf("registered %d metrics (%v), want %d", s.Len(), s.Paths, len(want))
	}
	for path, v := range want {
		if got, ok := s.Get(path); !ok || got != v {
			t.Errorf("%s = %d,%v want %d", path, got, ok, v)
		}
	}
	if _, ok := s.Get("smx1/skipped"); ok {
		t.Errorf("metrics:\"-\" field registered")
	}
	if _, ok := s.Get("smx1/rate"); ok {
		t.Errorf("float field registered")
	}
}

func TestSnakeCase(t *testing.T) {
	cases := map[string]string{
		"WarpInstrs":      "warp_instrs",
		"SIInstrs":        "si_instrs",
		"Cycles":          "cycles",
		"L1TexMiss":       "l1_tex_miss",
		"QueueHighWater":  "queue_high_water",
		"BankConflictCyc": "bank_conflict_cyc",
	}
	for in, want := range cases {
		if got := snakeCase(in); got != want {
			t.Errorf("snakeCase(%s) = %s, want %s", in, got, want)
		}
	}
}

func TestSeriesRing(t *testing.T) {
	s := NewSeries(3)
	var c int64
	s.Column("x/cum", func() int64 { return c })
	s.Column("x/gauge", func() int64 { return 2 * c })
	if got := s.Columns(); len(got) != 2 || got[0] != "x/cum" || got[1] != "x/gauge" {
		t.Fatalf("columns = %v", got)
	}
	for i := int64(1); i <= 5; i++ {
		c = i * 10
		s.Sample(i * 64)
	}
	if s.Len() != 3 || s.Cap() != 3 || s.Dropped() != 2 {
		t.Fatalf("len=%d cap=%d dropped=%d", s.Len(), s.Cap(), s.Dropped())
	}
	// Oldest retained sample is the 3rd.
	cycle, row := s.At(0)
	if cycle != 3*64 || row[0] != 30 || row[1] != 60 {
		t.Errorf("At(0) = %d %v", cycle, row)
	}
	cycle, row = s.At(2)
	if cycle != 5*64 || row[0] != 50 {
		t.Errorf("At(2) = %d %v", cycle, row)
	}
	if v, ok := s.Last("x/gauge"); !ok || v != 100 {
		t.Errorf("Last = %d,%v", v, ok)
	}
	if _, ok := s.Last("nope"); ok {
		t.Errorf("Last on missing column")
	}
	if s.ColumnIndex("x/gauge") != 1 || s.ColumnIndex("nope") != -1 {
		t.Errorf("ColumnIndex wrong")
	}
}

func TestSeriesJSONAndPanics(t *testing.T) {
	s := NewSeries(0)
	if s.Cap() != DefaultSeriesCap {
		t.Errorf("default cap = %d", s.Cap())
	}
	var v int64 = 3
	s.Column("a", func() int64 { return v })
	s.Sample(64)
	got, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"columns":["a"],"dropped":0,"rows":[[64,3]]}`
	if string(got) != want {
		t.Errorf("json = %s, want %s", got, want)
	}
	for name, fn := range map[string]func(){
		"late column":  func() { s.Column("b", func() int64 { return 0 }) },
		"dup column":   func() { NewSeries(2).Column("a", nil) },
		"out of range": func() { s.At(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
	if _, ok := s.Last("a"); !ok {
		t.Errorf("Last lost after panics")
	}
	empty := NewSeries(4)
	empty.Column("a", func() int64 { return 1 })
	if _, ok := empty.Last("a"); ok {
		t.Errorf("Last on empty series")
	}
}

func TestTraceFormat(t *testing.T) {
	tr := NewTrace()
	tr.ProcessName(0, "gpu")
	tr.ThreadName(0, 3, "smx3")
	tr.Slice(0, 3, "exec", 0, 64, []Arg{{"issued", 12}, {"stalled", 1}})
	tr.Counter(0, "smx3 occupancy", 64, []Arg{{"active_warps", 8}})
	tr.Instant(0, 3, "drain", 64)
	if tr.Events() != 5 {
		t.Errorf("events = %d", tr.Events())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("parsed %d events", len(doc.TraceEvents))
	}
	if doc.TraceEvents[2]["ph"] != "X" || doc.TraceEvents[2]["dur"] != float64(64) {
		t.Errorf("slice event = %v", doc.TraceEvents[2])
	}
	args := doc.TraceEvents[3]["args"].(map[string]any)
	if args["active_warps"] != float64(8) {
		t.Errorf("counter args = %v", args)
	}
	// Determinism: an identical build encodes to identical bytes.
	tr2 := NewTrace()
	tr2.ProcessName(0, "gpu")
	tr2.ThreadName(0, 3, "smx3")
	tr2.Slice(0, 3, "exec", 0, 64, []Arg{{"issued", 12}, {"stalled", 1}})
	tr2.Counter(0, "smx3 occupancy", 64, []Arg{{"active_warps", 8}})
	tr2.Instant(0, 3, "drain", 64)
	var buf2 bytes.Buffer
	if err := tr2.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Errorf("identical traces encoded differently")
	}
	m, err := json.Marshal(tr)
	if err != nil || len(m) == 0 {
		t.Errorf("MarshalJSON: %v", err)
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector(0)
	if c.Registry == nil || c.Series == nil || c.Series.Cap() != DefaultSeriesCap {
		t.Fatalf("collector defaults wrong: %+v", c)
	}
	c2 := NewCollector(16)
	if c2.Series.Cap() != 16 {
		t.Errorf("cap = %d", c2.Series.Cap())
	}
}

func TestValidPath(t *testing.T) {
	for p, want := range map[string]bool{
		"a":        true,
		"smx0/l1d": true,
		"a_b/c9":   true,
		"":         false,
		"a/":       false,
		"/a":       false,
		"a//b":     false,
		"A":        false,
		"a-b":      false,
		"a b":      false,
	} {
		if got := validPath(p); got != want {
			t.Errorf("validPath(%q) = %v, want %v", p, got, want)
		}
	}
}
