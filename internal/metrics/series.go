package metrics

import (
	"bytes"
	"fmt"
)

// seriesCol is one sampled column: a name and the probe the sampler
// reads.
type seriesCol struct {
	name string
	fn   probe
}

// Series is the per-epoch time-series: a fixed set of named columns
// sampled together at every epoch barrier into a ring buffer of rows.
// Columns carry cumulative counters (warp instructions issued so far)
// or instantaneous gauges (live warps, L2 queue depth); both kinds are
// deterministic because sampling happens only at barriers, on the
// engine goroutine, at fixed device cycles.
//
// The ring keeps the newest Cap samples; Dropped counts evictions so
// exporters can say what was cut rather than silently truncating. For
// cumulative columns the final sample always equals the end-of-run
// registry total — the engine samples after the last epoch's barrier
// work, and nothing runs afterwards — which is what lets tests tie the
// two views together exactly.
type Series struct {
	cols    []seriesCol
	byName  map[string]int
	cap     int
	cycles  []int64 // ring storage, len == n
	rows    [][]int64
	start   int // index of the oldest sample
	n       int
	dropped int64
	sealed  bool

	// OnSample, when non-nil, is invoked after every Sample with the
	// device cycle and the freshly captured row (column order matches
	// Columns). It runs on the sampling goroutine — for the epoch-barrier
	// engine that is the engine goroutine at a barrier, with every SMX
	// worker parked — so the callback sees a consistent snapshot and must
	// not block the barrier for long. The service layer uses it to feed
	// live progress streams; the row slice is owned by the series and
	// must be copied if retained.
	OnSample func(cycle int64, row []int64)
}

// NewSeries creates a series with the given ring capacity.
func NewSeries(capacity int) *Series {
	if capacity <= 0 {
		capacity = DefaultSeriesCap
	}
	return &Series{byName: make(map[string]int), cap: capacity}
}

// Column registers a sampled column. All columns must be registered
// before the first Sample; registering later panics (rows would change
// width mid-run).
func (s *Series) Column(name string, fn func() int64) {
	if !validPath(name) {
		panic(fmt.Sprintf("metrics: invalid series column %q", name))
	}
	if _, dup := s.byName[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate series column %q", name))
	}
	if fn == nil {
		panic(fmt.Sprintf("metrics: nil probe for series column %q", name))
	}
	if s.sealed {
		panic(fmt.Sprintf("metrics: column %q registered after sampling started", name))
	}
	s.byName[name] = len(s.cols)
	s.cols = append(s.cols, seriesCol{name: name, fn: fn})
}

// Sample reads every column at the given device cycle and appends the
// row, evicting the oldest sample if the ring is full.
func (s *Series) Sample(cycle int64) {
	s.sealed = true
	row := make([]int64, len(s.cols))
	for i := range s.cols {
		row[i] = s.cols[i].fn()
	}
	if s.OnSample != nil {
		s.OnSample(cycle, row)
	}
	if s.n < s.cap {
		s.cycles = append(s.cycles, cycle)
		s.rows = append(s.rows, row)
		s.n++
		return
	}
	s.cycles[s.start] = cycle
	s.rows[s.start] = row
	s.start = (s.start + 1) % s.cap
	s.dropped++
}

// Len returns the number of retained samples.
func (s *Series) Len() int { return s.n }

// Cap returns the ring capacity.
func (s *Series) Cap() int { return s.cap }

// Dropped returns how many old samples the ring evicted.
func (s *Series) Dropped() int64 { return s.dropped }

// Columns returns the column names in registration order. The slice
// must not be mutated.
func (s *Series) Columns() []string {
	names := make([]string, len(s.cols))
	for i := range s.cols {
		names[i] = s.cols[i].name
	}
	return names
}

// ColumnIndex returns the index of the named column in every row, or
// -1.
func (s *Series) ColumnIndex(name string) int {
	i, ok := s.byName[name]
	if !ok {
		return -1
	}
	return i
}

// At returns retained sample i (0 = oldest): its device cycle and the
// row of column values in registration order. The row must not be
// mutated.
func (s *Series) At(i int) (cycle int64, row []int64) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("metrics: series index %d out of range [0,%d)", i, s.n))
	}
	idx := (s.start + i) % s.cap
	return s.cycles[idx], s.rows[idx]
}

// Last returns the newest sample of the named column.
func (s *Series) Last(name string) (int64, bool) {
	i, ok := s.byName[name]
	if !ok || s.n == 0 {
		return 0, false
	}
	_, row := s.At(s.n - 1)
	return row[i], true
}

// MarshalJSON encodes the series canonically: column names in
// registration order, then one row per retained sample as
// [cycle, v0, v1, ...]. Like Snapshot, equal series encode to equal
// bytes.
func (s *Series) MarshalJSON() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(`{"columns":[`)
	for i := range s.cols {
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf, "%q", s.cols[i].name)
	}
	fmt.Fprintf(&buf, `],"dropped":%d,"rows":[`, s.dropped)
	for i := 0; i < s.n; i++ {
		if i > 0 {
			buf.WriteByte(',')
		}
		cycle, row := s.At(i)
		fmt.Fprintf(&buf, "[%d", cycle)
		for _, v := range row {
			fmt.Fprintf(&buf, ",%d", v)
		}
		buf.WriteByte(']')
	}
	buf.WriteString("]}")
	return buf.Bytes(), nil
}
